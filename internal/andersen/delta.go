// Difference propagation in wave order, with an optional parallel wave
// front solve — the delta Andersen solver behind WithDeltaPropagation
// and WithParallelSolve.
//
// Each round: (1) condense the copy graph's strongly connected
// components so the remainder is a DAG and assign every node a level
// (its longest-path depth from the sources); (2) run one wave — process
// levels ("fronts") in order, each node pulling its predecessors' wave
// deltas into its own set, so a bit crosses every edge at most once per
// appearance; (3) feed the wave deltas to the complex constraints
// (loads, stores, indirect calls), whose new copy edges transfer the
// source's current set once in full and seed the target's pending delta
// for the next round. The fixpoint is reached when a round adds no
// pending bits.
//
// The wave is what parallelizes: no copy edge connects two nodes of the
// same front (an edge always increases the level), so a front's nodes
// can be fanned across a worker pool with per-node mutation ownership —
// each worker writes only the pts/out sets of its own nodes and reads
// only deltas frozen by the previous front's barrier. No locks or
// atomics are needed on the propagation path.
package andersen

import (
	"slices"
	"sync"

	"bootstrap/internal/bitset"
	"bootstrap/internal/ir"
)

// parFrontMin is the smallest front worth fanning out: below this the
// per-front barrier costs more than the propagation it parallelizes.
const parFrontMin = 64

// activateDelta registers a canonical node with the wave machinery.
func (s *solver) activateDelta(v int32) {
	if s.out[v] == nil {
		s.out[v] = &bitset.Set{}
		s.active = append(s.active, v)
	}
}

func (s *solver) solveDelta() {
	nv := len(s.pts)
	s.out = make([]*bitset.Set, nv)
	s.copyIn = make([][]int32, nv)
	for v := 0; v < nv; v++ {
		if !s.pts[v].Empty() || len(s.copyTo[v]) > 0 || len(s.loads[v]) > 0 || len(s.stores[v]) > 0 {
			s.activateDelta(int32(v))
		}
	}
	for v := range s.calls {
		s.activateDelta(int32(v))
	}
	// Copy targets receive bits even if they carry no constraint of
	// their own; the index loop sees nodes activated as it goes.
	for i := 0; i < len(s.active); i++ {
		for _, w := range s.copyTo[s.active[i]] {
			s.activateDelta(w)
		}
	}
	parallel := s.parWorkers > 1 && len(s.active) >= s.parThreshold

	index := make([]int32, nv)
	low := make([]int32, nv)
	level := make([]int32, nv)
	onStack := make([]bool, nv)
	mark := make([]bool, nv)

	for {
		s.stats.Waves++
		fronts := s.condenseDelta(index, low, level, onStack, mark)
		span := s.tracer.Start("andersen", "wave", s.traceTID).
			Arg("wave", int(s.stats.Waves)).
			Arg("fronts", len(fronts)).
			Arg("nodes", len(s.active))
		s.runWave(fronts, parallel)
		span.End()
		s.dirty = false
		s.complexDelta()
		if !s.dirty {
			return
		}
	}
}

// condenseDelta collapses copy-graph SCCs, rebuilds the canonical
// deduplicated adjacency (successors and predecessors) and returns the
// wave fronts: active nodes bucketed by longest-path level in the
// condensed DAG. The scratch slices are owned by solveDelta and reused
// across rounds.
func (s *solver) condenseDelta(index, low, level []int32, onStack, mark []bool) [][]int32 {
	// Canonicalize and dedupe the active list.
	act := s.active[:0]
	for _, v := range s.active {
		if r := s.find(v); !mark[r] {
			mark[r] = true
			act = append(act, r)
		}
	}
	s.active = act
	for _, v := range act {
		mark[v] = false
		index[v] = -1
	}

	// Iterative Tarjan; SCCs are emitted sinks-first, so the reverse of
	// the emission order is a topological order of the condensation.
	var sccRoots []int32
	var tstack []int32
	type frame struct {
		v  int32
		ci int
	}
	var frames []frame
	next := int32(0)
	for _, sv := range act {
		if index[sv] != -1 {
			continue
		}
		frames = append(frames[:0], frame{v: sv})
		index[sv], low[sv] = next, next
		next++
		tstack = append(tstack, sv)
		onStack[sv] = true
		for len(frames) > 0 {
			fr := &frames[len(frames)-1]
			edges := s.copyTo[fr.v]
			if fr.ci < len(edges) {
				w := s.find(edges[fr.ci])
				fr.ci++
				if w == fr.v {
					continue
				}
				if index[w] == -1 {
					index[w], low[w] = next, next
					next++
					tstack = append(tstack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && index[w] < low[fr.v] {
					low[fr.v] = index[w]
				}
				continue
			}
			if low[fr.v] == index[fr.v] {
				var scc []int32
				for {
					w := tstack[len(tstack)-1]
					tstack = tstack[:len(tstack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == fr.v {
						break
					}
				}
				if len(scc) > 1 {
					// Keep fr.v the representative: later cross edges to
					// merged members must resolve to an emitted node.
					scc[0], scc[len(scc)-1] = scc[len(scc)-1], scc[0]
					s.stats.Collapses++
					s.mergeSCC(scc)
				}
				sccRoots = append(sccRoots, fr.v)
			}
			done := fr.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[done] < low[parent.v] {
					low[parent.v] = low[done]
				}
			}
		}
	}

	// Re-canonicalize after the merges, then rebuild deduplicated
	// successor and predecessor lists over representatives only.
	act = s.active[:0]
	for _, v := range s.active {
		if r := s.find(v); !mark[r] {
			mark[r] = true
			act = append(act, r)
		}
	}
	s.active = act
	for _, v := range act {
		mark[v] = false
		level[v] = 0
		s.copyIn[v] = s.copyIn[v][:0]
	}
	for _, v := range act {
		edges := s.copyTo[v][:0]
		for _, w := range s.copyTo[v] {
			if w = s.find(w); w != v {
				edges = append(edges, w)
			}
		}
		slices.Sort(edges)
		edges = slices.Compact(edges)
		s.copyTo[v] = edges
		for _, w := range edges {
			s.copyIn[w] = append(s.copyIn[w], v)
		}
	}
	// Levels: walk representatives in topological order and push
	// longest-path depths along the (acyclic) remaining edges.
	maxLevel := int32(0)
	for i := len(sccRoots) - 1; i >= 0; i-- {
		v := sccRoots[i]
		if s.find(v) != v {
			continue
		}
		lv := level[v] + 1
		for _, w := range s.copyTo[v] {
			if level[w] < lv {
				level[w] = lv
				if lv > maxLevel {
					maxLevel = lv
				}
			}
		}
	}
	fronts := make([][]int32, maxLevel+1)
	for _, v := range act {
		fronts[level[v]] = append(fronts[level[v]], v)
	}
	return fronts
}

// waveCounts accumulates per-worker statistics so the propagation path
// stays free of shared writes.
type waveCounts struct{ passes, fired, merged int64 }

// waveNode folds v's pending bits and its predecessors' wave deltas
// into pts[v], exposing the newly arrived bits as out[v]. Only v's own
// sets are written; predecessor deltas were frozen by earlier fronts.
func (s *solver) waveNode(v int32, c *waveCounts) {
	ov := s.out[v]
	ov.Reset()
	ov.UnionWith(s.pending[v])
	for _, u := range s.copyIn[v] {
		ou := s.out[u]
		if ou.Empty() {
			continue
		}
		c.fired++
		if s.pts[v].UnionInto(ou, ov) {
			c.merged++
		}
	}
	if !ov.Empty() {
		c.passes++
	}
}

func (s *solver) runWave(fronts [][]int32, parallel bool) {
	var c waveCounts
	for _, front := range fronts {
		if parallel && len(front) >= parFrontMin {
			s.stats.ParFronts++
			s.stats.ParNodes += int64(len(front))
			s.runFrontParallel(front)
			continue
		}
		for _, v := range front {
			s.waveNode(v, &c)
		}
	}
	s.stats.Passes += c.passes
	s.stats.DeltaEdgesFired += c.fired
	s.stats.DeltaMerges += c.merged
}

// runFrontParallel fans one front across the worker pool in contiguous
// chunks. The WaitGroup barrier between fronts is the only
// synchronization: within a front, workers touch disjoint nodes.
func (s *solver) runFrontParallel(front []int32) {
	nw := s.parWorkers
	if maxW := (len(front) + parFrontMin - 1) / parFrontMin; nw > maxW {
		nw = maxW
	}
	chunk := (len(front) + nw - 1) / nw
	counts := make([]waveCounts, nw)
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(front))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(c *waveCounts, nodes []int32) {
			defer wg.Done()
			for _, v := range nodes {
				s.waveNode(v, c)
			}
		}(&counts[w], front[lo:hi])
	}
	wg.Wait()
	for _, c := range counts {
		s.stats.Passes += c.passes
		s.stats.DeltaEdgesFired += c.fired
		s.stats.DeltaMerges += c.merged
	}
}

// complexDelta feeds each node's wave delta to its complex constraints.
// New edges added here (and the bits their one-time full transfer
// contributes) mark the solver dirty, scheduling another round. Every
// consumed pending set is cleared up front, before any constraint runs:
// addCopy seeds the *target's* pending, so an interleaved reset would
// wipe bits seeded moments earlier by another node's constraints (and a
// node's own re-added bits must survive into the next wave either way).
func (s *solver) complexDelta() {
	for _, v := range s.active {
		if !s.out[v].Empty() {
			s.pending[v].Reset()
		}
	}
	for _, v := range s.active {
		ov := s.out[v]
		if ov.Empty() {
			continue
		}
		ld, st := s.loads[v], s.stores[v]
		cs := s.calls[int(v)]
		if len(ld) == 0 && len(st) == 0 && cs == nil {
			continue
		}
		ov.ForEach(func(o int) bool {
			for _, x := range ld {
				s.addCopy(int32(o), x) // x = *v, v -> o: x ⊇ pts(o)
			}
			for _, y := range st {
				s.addCopy(y, int32(o)) // *v = y: o ⊇ pts(y)
			}
			if cs != nil {
				if fn := s.prog.Var(ir.VarID(o)); fn.Kind == ir.KindFunc {
					s.bindCalls(cs, fn.Fn)
				}
			}
			return true
		})
	}
}
