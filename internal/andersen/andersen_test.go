package andersen

import (
	"math/rand"
	"testing"

	"bootstrap/internal/frontend"
	"bootstrap/internal/ir"
	"bootstrap/internal/steens"
	"bootstrap/internal/synth"
)

func analyze(t *testing.T, src string) (*ir.Program, *Analysis) {
	t.Helper()
	p, err := frontend.LowerSource(src)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p, Analyze(p)
}

func v(t *testing.T, p *ir.Program, name string) ir.VarID {
	t.Helper()
	id, ok := p.VarByName[name]
	if !ok {
		t.Fatalf("no variable %q", name)
	}
	return id
}

func ptsNames(p *ir.Program, a *Analysis, x ir.VarID) map[string]bool {
	out := map[string]bool{}
	for _, o := range a.PointsTo(x) {
		out[p.VarName(o)] = true
	}
	return out
}

// TestFigure2Precision reproduces Figure 2's Andersen side: after p=&a;
// q=&b; r=&c; q=p; q=r the out-degree-3 node is q -> {a,b,c}, while p and r
// keep their singleton sets — more precise than Steensgaard.
func TestFigure2Precision(t *testing.T) {
	p, a := analyze(t, `
		int a, b, c;
		int *p, *q, *r;
		void main() {
			p = &a;
			q = &b;
			r = &c;
			q = p;
			q = r;
		}
	`)
	q := ptsNames(p, a, v(t, p, "q"))
	for _, want := range []string{"a", "b", "c"} {
		if !q[want] {
			t.Errorf("pts(q) missing %s: %v", want, q)
		}
	}
	pp := ptsNames(p, a, v(t, p, "p"))
	if len(pp) != 1 || !pp["a"] {
		t.Errorf("pts(p) = %v, want exactly {a}", pp)
	}
	rr := ptsNames(p, a, v(t, p, "r"))
	if len(rr) != 1 || !rr["c"] {
		t.Errorf("pts(r) = %v, want exactly {c}", rr)
	}
	if !a.MayAlias(v(t, p, "q"), v(t, p, "p")) {
		t.Error("q and p share a; MayAlias should hold")
	}
	if a.MayAlias(v(t, p, "p"), v(t, p, "r")) {
		t.Error("p and r share nothing; MayAlias should not hold")
	}
}

func TestLoadStore(t *testing.T) {
	p, a := analyze(t, `
		int a, b;
		int *x, *y, *l;
		int **px;
		void main() {
			x = &a;
			y = &b;
			px = &x;
			*px = y;
			l = *px;
		}
	`)
	l := ptsNames(p, a, v(t, p, "l"))
	if !l["a"] || !l["b"] {
		t.Errorf("pts(l) = %v, want a and b (flow-insensitive)", l)
	}
	x := ptsNames(p, a, v(t, p, "x"))
	if !x["a"] || !x["b"] {
		t.Errorf("pts(x) = %v, want a and b via *px = y", x)
	}
	y := ptsNames(p, a, v(t, p, "y"))
	if len(y) != 1 || !y["b"] {
		t.Errorf("pts(y) = %v, want exactly {b}: stores are directional", y)
	}
}

func TestDirectionality(t *testing.T) {
	// q = p must not pollute p (the key precision win over Steensgaard).
	p, a := analyze(t, `
		int a, b;
		int *p, *q;
		void main() {
			p = &a;
			q = &b;
			q = p;
		}
	`)
	pp := ptsNames(p, a, v(t, p, "p"))
	if pp["b"] {
		t.Errorf("pts(p) = %v must not contain b", pp)
	}
	sa := steens.Analyze(p)
	// Steensgaard unifies: its pts(p) contains both — Andersen's is a
	// strict subset here.
	spts := map[string]bool{}
	for _, o := range sa.PointsToVars(v(t, p, "p")) {
		spts[p.VarName(o)] = true
	}
	if !spts["a"] || !spts["b"] {
		t.Errorf("Steensgaard pts(p) = %v, want a and b", spts)
	}
}

func TestInterprocedural(t *testing.T) {
	p, a := analyze(t, `
		int g1, g2;
		int *id(int *v) { return v; }
		void main() {
			int *r1, *r2;
			r1 = id(&g1);
			r2 = id(&g2);
		}
	`)
	r1 := ptsNames(p, a, v(t, p, "main.r1"))
	// Context-insensitive: both calls conflate.
	if !r1["g1"] || !r1["g2"] {
		t.Errorf("pts(r1) = %v, want g1 and g2", r1)
	}
}

func TestHeapObjects(t *testing.T) {
	p, a := analyze(t, `
		void main() {
			int *x, *y;
			x = malloc;
			y = malloc;
		}
	`)
	if a.MayAlias(v(t, p, "main.x"), v(t, p, "main.y")) {
		t.Error("distinct allocation sites must not alias")
	}
	if len(a.PointsTo(v(t, p, "main.x"))) != 1 {
		t.Error("x should point to exactly its own allocation site")
	}
}

func TestIndirectCallOnTheFly(t *testing.T) {
	p, a := analyze(t, `
		void *fp;
		int g;
		int *f1(int *x) { return x; }
		void noaddr(int *x) { }
		void main() {
			int *r;
			fp = &f1;
			r = (*fp)(&g);
		}
	`)
	r := ptsNames(p, a, v(t, p, "main.r"))
	if !r["g"] {
		t.Errorf("pts(r) = %v, want g via indirect call", r)
	}
	fx := ptsNames(p, a, v(t, p, "f1.x"))
	if !fx["g"] {
		t.Errorf("pts(f1.x) = %v, want g", fx)
	}
	nx := ptsNames(p, a, v(t, p, "noaddr.x"))
	if len(nx) != 0 {
		t.Errorf("pts(noaddr.x) = %v, want empty (never called)", nx)
	}
	targets := a.Targets(v(t, p, "fp"))
	if len(targets) != 1 || p.Func(targets[0]).Name != "f1" {
		t.Errorf("Targets(fp) = %v, want [f1]", targets)
	}
}

func TestClusters(t *testing.T) {
	p, a := analyze(t, `
		int a, b, c;
		int *p, *q, *r;
		void main() {
			p = &a;
			q = &b;
			r = &c;
			q = p;
			q = r;
		}
	`)
	clusters := map[ir.VarID][]ir.VarID{}
	for i, oc := range a.Clusters() {
		clusters[oc.Obj] = oc.Ptrs
		if i > 0 && a.Clusters()[i-1].Obj >= oc.Obj {
			t.Fatalf("Clusters() not in ascending Obj order at %d", i)
		}
	}
	// Cluster of a = {p, q}; of b = {q}; of c = {q, r}.
	want := map[string][]string{
		"a": {"p", "q"},
		"b": {"q"},
		"c": {"q", "r"},
	}
	for obj, wantPtrs := range want {
		got := map[string]bool{}
		for _, ptr := range clusters[v(t, p, obj)] {
			got[p.VarName(ptr)] = true
		}
		for _, w := range wantPtrs {
			if !got[w] {
				t.Errorf("cluster(%s) = %v, missing %s", obj, got, w)
			}
		}
		for g := range got {
			found := false
			for _, w := range wantPtrs {
				if g == w {
					found = true
				}
			}
			if !found && (g == "p" || g == "q" || g == "r") {
				t.Errorf("cluster(%s) contains unexpected %s", obj, g)
			}
		}
	}
	if a.MaxClusterSize() < 2 {
		t.Errorf("MaxClusterSize = %d, want >= 2", a.MaxClusterSize())
	}
}

// TestStmtFilter: restricting the analysis to a statement slice must drop
// the effects of excluded statements (paper's Prog_Q construction).
func TestStmtFilter(t *testing.T) {
	p, err := frontend.LowerSource(`
		int a, b;
		int *x, *y;
		void main() {
			x = &a;
			y = &b;
			x = y;
		}
	`)
	if err != nil {
		t.Fatal(err)
	}
	// Exclude the statement x = y.
	var exclude ir.Loc = ir.NoLoc
	for _, n := range p.Nodes {
		if n.Stmt.Op == ir.OpCopy && p.VarName(n.Stmt.Dst) == "x" && p.VarName(n.Stmt.Src) == "y" {
			exclude = n.Loc
		}
	}
	if exclude == ir.NoLoc {
		t.Fatal("did not find x = y")
	}
	a := Analyze(p, WithStmtFilter(func(l ir.Loc) bool { return l != exclude }))
	x := ptsNames(p, a, v(t, p, "x"))
	if x["b"] {
		t.Errorf("filtered analysis: pts(x) = %v must not contain b", x)
	}
	full := Analyze(p)
	if !ptsNames(p, full, v(t, p, "x"))["b"] {
		t.Error("unfiltered analysis should see x = y")
	}
}

// TestRefinesSteensgaard: every Andersen points-to fact stays within the
// Steensgaard partitioning (the cascade invariant the bootstrapping
// framework relies on).
func TestRefinesSteensgaard(t *testing.T) {
	srcs := []string{
		`int a, b; int *x, *y; int **px;
		 void main() { x = &a; y = &b; px = &x; *px = y; y = *px; }`,
		`int g1, g2; int *id(int *v) { return v; }
		 void main() { int *r; r = id(&g1); r = id(&g2); }`,
		`int *p; int a; void main() { p = &a; *p = p; }`,
	}
	for _, src := range srcs {
		p, err := frontend.LowerSource(src)
		if err != nil {
			t.Fatal(err)
		}
		aa := Analyze(p)
		sa := steens.Analyze(p)
		for vid := 0; vid < p.NumVars(); vid++ {
			for _, o := range aa.PointsTo(ir.VarID(vid)) {
				// Steensgaard's points-to set of vid must include o.
				found := false
				for _, so := range sa.PointsToVars(ir.VarID(vid)) {
					if so == o {
						found = true
					}
				}
				if !found {
					t.Errorf("src %q: Andersen says %s -> %s but Steensgaard's set lacks it",
						src, p.VarName(ir.VarID(vid)), p.VarName(o))
				}
			}
		}
	}
}

func TestEmptyProgram(t *testing.T) {
	p, a := analyze(t, `void main() { }`)
	if got := a.MaxClusterSize(); got != 0 {
		t.Errorf("MaxClusterSize = %d, want 0", got)
	}
	if len(a.Clusters()) != 0 {
		t.Error("empty program should have no clusters")
	}
	_ = p
}

// TestCycleEliminationEquivalence: collapsing copy cycles must not change
// any points-to set — on a hand-built cycle and on random programs.
func TestCycleEliminationEquivalence(t *testing.T) {
	srcs := []string{
		// A long copy cycle through which an address flows.
		`int o1, o2;
		 int *p0, *p1, *p2, *p3, *p4;
		 void main() {
			p0 = &o1;
			p1 = p0; p2 = p1; p3 = p2; p4 = p3; p0 = p4;
			while (*) { p2 = p4; p4 = &o2; }
		 }`,
		// Cycle via load/store complex constraints.
		`int a; int *x, *y; int **px, **py;
		 void main() {
			x = &a;
			px = &x; py = &y;
			*py = *px;
			*px = *py;
		 }`,
	}
	for _, src := range srcs {
		p, err := frontend.LowerSource(src)
		if err != nil {
			t.Fatal(err)
		}
		base := Analyze(p)
		elim := Analyze(p, withCycleInterval(1))
		for v := 0; v < p.NumVars(); v++ {
			if !base.PointsToSet(ir.VarID(v)).Equal(elim.PointsToSet(ir.VarID(v))) {
				t.Errorf("src %q: pts(%s) differs: base %v, cycle-elim %v",
					src, p.VarName(ir.VarID(v)),
					base.PointsTo(ir.VarID(v)), elim.PointsTo(ir.VarID(v)))
			}
		}
	}
}

// TestCycleEliminationRandom cross-checks on random programs.
func TestCycleEliminationRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short mode")
	}
	cfg := synth.DefaultRandomConfig()
	cfg.Funcs = 3
	cfg.Recursion = true
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		src := synth.RandomSource(rng, cfg)
		p, err := frontend.LowerSource(src)
		if err != nil {
			t.Fatal(err)
		}
		base := Analyze(p)
		elim := Analyze(p, withCycleInterval(1))
		for v := 0; v < p.NumVars(); v++ {
			if !base.PointsToSet(ir.VarID(v)).Equal(elim.PointsToSet(ir.VarID(v))) {
				t.Fatalf("seed %d: pts(%s) differs: base %v, cycle-elim %v\nprogram:\n%s",
					seed, p.VarName(ir.VarID(v)),
					base.PointsTo(ir.VarID(v)), elim.PointsTo(ir.VarID(v)), src)
			}
		}
	}
}
