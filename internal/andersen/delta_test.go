package andersen

import (
	"math/rand"
	"testing"

	"bootstrap/internal/frontend"
	"bootstrap/internal/ir"
	"bootstrap/internal/obs"
	"bootstrap/internal/synth"
)

// TestDeltaSolveBasics checks the delta solver on the package's
// canonical hand-written example.
func TestDeltaSolveBasics(t *testing.T) {
	src := `
		int a, b;
		int *p, *q, *s;
		int **r, **u;
		void main() {
			p = &a;
			q = p;
			r = &q;
			*r = &b;
			s = *r;
			u = r;
			*u = s;
		}
	`
	p, err := frontend.LowerSource(src)
	if err != nil {
		t.Fatal(err)
	}
	base := Analyze(p)
	delta := Analyze(p, WithDeltaPropagation())
	for v := 0; v < p.NumVars(); v++ {
		if !base.PointsToSet(ir.VarID(v)).Equal(delta.PointsToSet(ir.VarID(v))) {
			t.Errorf("pts(%s) differs: base %v, delta %v",
				p.VarName(ir.VarID(v)), base.PointsTo(ir.VarID(v)), delta.PointsTo(ir.VarID(v)))
		}
	}
	st := delta.SolverStats()
	if st.Waves == 0 {
		t.Error("delta solve reported zero waves")
	}
	if st.DeltaEdgesFired == 0 {
		t.Error("delta solve reported zero edge firings")
	}
}

// TestDeltaSolveRandom asserts the delta solver is bit-identical to the
// serial full-propagation baseline on random programs — the ISSUE's
// differential guarantee for -no-delta.
func TestDeltaSolveRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short mode")
	}
	cfg := synth.DefaultRandomConfig()
	cfg.Funcs = 3
	cfg.Recursion = true
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		src := synth.RandomSource(rng, cfg)
		p, err := frontend.LowerSource(src)
		if err != nil {
			t.Fatal(err)
		}
		base := Analyze(p)
		delta := Analyze(p, WithDeltaPropagation())
		for v := 0; v < p.NumVars(); v++ {
			if !base.PointsToSet(ir.VarID(v)).Equal(delta.PointsToSet(ir.VarID(v))) {
				t.Fatalf("seed %d: pts(%s) differs: base %v, delta %v\nprogram:\n%s",
					seed, p.VarName(ir.VarID(v)),
					base.PointsTo(ir.VarID(v)), delta.PointsTo(ir.VarID(v)), src)
			}
		}
	}
}

// TestParallelSolveRandom forces the parallel wave-front path (threshold
// 1 activates it on every program) and asserts bit-identical results.
// Run under -race this doubles as the solver's race-freedom proof.
func TestParallelSolveRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short mode")
	}
	cfg := synth.DefaultRandomConfig()
	cfg.Funcs = 3
	cfg.Recursion = true
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		src := synth.RandomSource(rng, cfg)
		p, err := frontend.LowerSource(src)
		if err != nil {
			t.Fatal(err)
		}
		base := Analyze(p)
		par := Analyze(p, WithParallelSolve(4, 1))
		for v := 0; v < p.NumVars(); v++ {
			if !base.PointsToSet(ir.VarID(v)).Equal(par.PointsToSet(ir.VarID(v))) {
				t.Fatalf("seed %d: pts(%s) differs: base %v, parallel %v\nprogram:\n%s",
					seed, p.VarName(ir.VarID(v)),
					base.PointsTo(ir.VarID(v)), par.PointsTo(ir.VarID(v)), src)
			}
		}
	}
}

// TestParallelFrontOccupancy checks the parallel path actually engages
// on a wide program (many independent chains make wide fronts) and
// reports occupancy counters.
func TestParallelFrontOccupancy(t *testing.T) {
	cfg := synth.DefaultRandomConfig()
	cfg.Funcs = 6
	rng := rand.New(rand.NewSource(7))
	var src string
	// Grow until the front width crosses parFrontMin so the pool engages.
	for tries := 0; ; tries++ {
		src = synth.RandomSource(rng, cfg)
		p, err := frontend.LowerSource(src)
		if err != nil {
			t.Fatal(err)
		}
		a := Analyze(p, WithParallelSolve(4, 1))
		if st := a.SolverStats(); st.ParFronts > 0 {
			if st.ParNodes < st.ParFronts {
				t.Fatalf("occupancy underflow: %d nodes across %d fronts", st.ParNodes, st.ParFronts)
			}
			m := obs.NewMetrics()
			st.Record(m)
			return
		}
		if tries > 50 {
			t.Skip("no front wide enough to engage the pool; nothing to assert")
		}
	}
}

// TestDeltaWithStmtFilter exercises the per-partition configuration:
// a statement filter plus delta propagation, as the cluster builder
// applies to oversized partitions.
func TestDeltaWithStmtFilter(t *testing.T) {
	src := `
		int a, b;
		int *p, *q, *r, *s;
		void main() {
			p = &a;
			q = &b;
			r = p;
			r = q;
			s = r;
		}
	`
	p, err := frontend.LowerSource(src)
	if err != nil {
		t.Fatal(err)
	}
	keep := func(loc ir.Loc) bool { return int(loc)%2 == 0 }
	base := Analyze(p, WithStmtFilter(keep))
	delta := Analyze(p, WithStmtFilter(keep), WithDeltaPropagation())
	for v := 0; v < p.NumVars(); v++ {
		if !base.PointsToSet(ir.VarID(v)).Equal(delta.PointsToSet(ir.VarID(v))) {
			t.Errorf("pts(%s) differs under filter: base %v, delta %v",
				p.VarName(ir.VarID(v)), base.PointsTo(ir.VarID(v)), delta.PointsTo(ir.VarID(v)))
		}
	}
}
