// Package andersen implements Andersen's inclusion-based, flow- and
// context-insensitive points-to analysis (Andersen 1994) — the second stage
// of the paper's bootstrapping cascade. Unlike Steensgaard's bidirectional
// unification, Andersen's analysis respects assignment direction, so its
// points-to sets are subsets of the Steensgaard ones; the inverse points-to
// sets are the paper's Andersen clusters.
//
// The solver is a standard difference-propagation worklist over a copy-edge
// graph with load/store complex constraints, using sparse bit sets. An
// optional statement filter restricts constraint generation to a slice of
// the program — this is how the bootstrapping framework runs Andersen's
// analysis on one Steensgaard partition's relevant statements only.
// Indirect-call placeholders are resolved on the fly: when a function value
// flows into a call's function pointer, the matching parameter and return
// bindings are added as copy edges.
package andersen

import (
	"sort"
	"sync"

	"bootstrap/internal/bitset"
	"bootstrap/internal/ir"
	"bootstrap/internal/obs"
)

// Option configures Analyze.
type Option func(*config)

type config struct {
	keep         func(ir.Loc) bool
	cycleEli     bool
	interval     int
	delta        bool
	parWorkers   int
	parThreshold int
	tracer       *obs.Tracer
	traceTID     int
}

// WithStmtFilter restricts the analysis to statements for which keep
// returns true. Statements outside the filter are treated as skips, exactly
// as the paper's Prog_Q replaces irrelevant assignments with skip.
func WithStmtFilter(keep func(ir.Loc) bool) Option {
	return func(c *config) { c.keep = keep }
}

// WithCycleElimination turns on periodic collapsing of strongly connected
// components in the copy-edge graph (in the spirit of Hardekopf & Lin,
// PLDI 2007, which the paper cites as a drop-in replacement for its
// Andersen stage). Nodes in a copy cycle provably share their final
// points-to set, so collapsing them removes redundant propagation. The
// result is identical to the baseline solver; only the work changes.
func WithCycleElimination() Option {
	return func(c *config) { c.cycleEli = true }
}

// withCycleInterval lowers the collapse trigger for tests.
func withCycleInterval(n int) Option {
	return func(c *config) { c.cycleEli = true; c.interval = n }
}

// WithDeltaPropagation switches the solver to difference propagation in
// wave order: each node carries its full points-to set plus the bits not
// yet seen by its consumers, every round condenses the copy graph's
// strongly connected components (so the remainder is a DAG), and one
// wave pushes all pending bits through the DAG in topological order.
// Each copy edge therefore fires O(changes) times instead of once per
// worklist pop of its source. The result is bit-identical to the
// default solver; only the work changes. Delta mode subsumes
// WithCycleElimination — condensation is structural, not periodic.
func WithDeltaPropagation() Option {
	return func(c *config) { c.delta = true }
}

// WithParallelSolve fans each wave front across a bounded worker pool.
// A front is one topological level of the condensed copy DAG, so no
// edge connects two nodes of the same front; each worker owns the nodes
// it processes (it writes only their sets and reads only earlier
// fronts' frozen deltas), making the hot path lock-free. Parallelism
// activates only when at least threshold nodes carry constraints —
// below that the fan-out costs more than the propagation. Implies
// WithDeltaPropagation.
func WithParallelSolve(workers, threshold int) Option {
	// Normalize before capturing: one Option value is applied by every
	// concurrent clusterer solve, so the closure must not write its
	// captured variables.
	if threshold <= 0 {
		threshold = DefaultParSolveThreshold
	}
	return func(c *config) {
		c.delta = true
		c.parWorkers = workers
		c.parThreshold = threshold
	}
}

// DefaultParSolveThreshold is the constrained-node count above which
// WithParallelSolve actually fans out, when no explicit threshold is
// given (tuned on the bench workloads: below a few hundred nodes the
// barrier per front dominates).
const DefaultParSolveThreshold = 512

// WithTracer emits one span per solve wave on the given track of tr
// (nil-safe). Only the delta solver produces waves.
func WithTracer(tr *obs.Tracer, tid int) Option {
	return func(c *config) { c.tracer = tr; c.traceTID = tid }
}

// SolverStats reports how much work the constraint solver did — the
// instrumentation window behind the `-stats` flag and the bench cache
// columns. Passes counts worklist nodes processed; Collapses counts
// cycle-elimination sweeps; Merged counts the variables folded into a
// cycle representative (0 without WithCycleElimination).
type SolverStats struct {
	Passes    int64
	Collapses int
	Merged    int

	// Delta-propagation counters (zero for the legacy solver).
	Waves           int64 // condense+propagate+complex rounds run
	DeltaEdgesFired int64 // copy edges that carried a non-empty delta
	DeltaMerges     int64 // edge firings that actually grew the target
	ParFronts       int64 // wave fronts fanned across the worker pool
	ParNodes        int64 // nodes processed inside parallel fronts
}

// Analysis is the result of Andersen's analysis.
type Analysis struct {
	prog  *ir.Program
	pts   []*bitset.Set // var -> points-to set over VarIDs
	rep   []int32       // cycle-elimination representative (identity without it)
	stats SolverStats

	clustersOnce sync.Once
	clusters     []ObjCluster
}

// SolverStats returns the solver's work counters.
func (a *Analysis) SolverStats() SolverStats { return a.stats }

// Record adds the solver's work counters to a metrics registry (nil-safe
// no-op without one). Call it once per solve; the registry accumulates
// across solves.
func (s SolverStats) Record(m *obs.Metrics) {
	m.Counter("bootstrap_andersen_passes_total",
		"constraint worklist nodes processed by the Andersen solver").Add(s.Passes)
	m.Counter("bootstrap_andersen_collapses_total",
		"online cycle-elimination sweeps run by the Andersen solver").Add(int64(s.Collapses))
	m.Counter("bootstrap_andersen_merged_total",
		"variables folded into a cycle representative by the Andersen solver").Add(int64(s.Merged))
	m.Counter("bootstrap_andersen_delta_waves_total",
		"propagation waves run by the delta Andersen solver").Add(s.Waves)
	m.Counter("bootstrap_andersen_delta_edges_fired_total",
		"copy edges that carried a non-empty delta in the delta Andersen solver").Add(s.DeltaEdgesFired)
	m.Counter("bootstrap_andersen_delta_merges_total",
		"delta edge firings that grew the target points-to set").Add(s.DeltaMerges)
	m.Counter("bootstrap_andersen_par_fronts_total",
		"wave fronts fanned across the parallel solve worker pool").Add(s.ParFronts)
	m.Counter("bootstrap_andersen_par_nodes_total",
		"nodes processed inside parallel wave fronts").Add(s.ParNodes)
	if s.ParFronts > 0 {
		m.Gauge("bootstrap_andersen_par_front_occupancy",
			"mean nodes per parallel wave front in the latest solve").
			Set(float64(s.ParNodes) / float64(s.ParFronts))
	}
}

type indirectCall struct {
	fptr ir.VarID
	args []ir.VarID
	dst  ir.VarID
}

type solver struct {
	prog *ir.Program
	pts  []*bitset.Set
	prev []*bitset.Set // processed snapshot for difference propagation

	copyTo  [][]int32     // v -> successors along copy edges (pts(succ) ⊇ pts(v))
	edgeSet []*bitset.Set // dedupe copy edges
	loads   [][]int32     // y -> xs with x = *y
	stores  [][]int32     // x -> ys with *x = y
	calls   map[int][]indirectCall

	work   []int32
	inWork []bool
	stats  SolverStats

	// Cycle elimination state.
	cycleEli      bool
	interval      int
	rep           []int32
	sinceCollapse int

	// Delta-propagation state (nil for the legacy solver). pending[v]
	// holds bits already in pts[v] that v's consumers have not seen;
	// out[v] is the delta v exposed during the current wave.
	pending []*bitset.Set
	out     []*bitset.Set
	copyIn  [][]int32 // canonical predecessor lists, rebuilt per round
	active  []int32   // canonical nodes carrying any constraint
	dirty   bool      // pending bits were added since the last wave

	parWorkers   int
	parThreshold int
	tracer       *obs.Tracer
	traceTID     int
}

// Analyze runs Andersen's analysis over p (optionally restricted).
func Analyze(p *ir.Program, opts ...Option) *Analysis {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	nv := p.NumVars()
	s := &solver{
		prog:    p,
		pts:     make([]*bitset.Set, nv),
		copyTo:  make([][]int32, nv),
		edgeSet: make([]*bitset.Set, nv),
		loads:   make([][]int32, nv),
		stores:  make([][]int32, nv),
		calls:   map[int][]indirectCall{},
		inWork:  make([]bool, nv),
	}
	s.cycleEli = cfg.cycleEli
	s.interval = cfg.interval
	if s.interval <= 0 {
		s.interval = 1000
	}
	s.rep = make([]int32, nv)
	for i := 0; i < nv; i++ {
		s.pts[i] = &bitset.Set{}
		s.edgeSet[i] = &bitset.Set{}
		s.rep[i] = int32(i)
	}
	if cfg.delta {
		s.pending = make([]*bitset.Set, nv)
		for i := range s.pending {
			s.pending[i] = &bitset.Set{}
		}
		s.parWorkers = cfg.parWorkers
		s.parThreshold = cfg.parThreshold
		s.tracer = cfg.tracer
		s.traceTID = cfg.traceTID
	} else {
		s.prev = make([]*bitset.Set, nv)
		for i := range s.prev {
			s.prev[i] = &bitset.Set{}
		}
	}
	for _, n := range p.Nodes {
		if cfg.keep != nil && !cfg.keep(n.Loc) {
			continue
		}
		s.constrain(n.Stmt)
	}
	if cfg.delta {
		s.solveDelta()
	} else {
		s.solve()
	}
	return &Analysis{prog: p, pts: s.pts, rep: s.rep, stats: s.stats}
}

// find returns v's cycle-elimination representative with path halving.
func (s *solver) find(v int32) int32 {
	for s.rep[v] != v {
		s.rep[v] = s.rep[s.rep[v]]
		v = s.rep[v]
	}
	return v
}

func (s *solver) push(v int32) {
	v = s.find(v)
	if !s.inWork[v] {
		s.inWork[v] = true
		s.work = append(s.work, v)
	}
}

// addCopy adds the inclusion pts(to) ⊇ pts(from). A new edge transfers
// the source's current set once in full; in delta mode the actually
// added bits seed the target's pending delta for the next wave.
func (s *solver) addCopy(from, to int32) {
	from, to = s.find(from), s.find(to)
	if from == to {
		return
	}
	if !s.edgeSet[from].Add(int(to)) {
		return
	}
	s.copyTo[from] = append(s.copyTo[from], to)
	if s.pending != nil {
		if s.out != nil { // nil until solveDelta; constrain-time nodes are scanned there
			s.activateDelta(from)
			s.activateDelta(to)
		}
		if s.pts[to].UnionInto(s.pts[from], s.pending[to]) {
			s.dirty = true
		}
		return
	}
	if s.pts[to].UnionWith(s.pts[from]) {
		s.push(to)
	}
}

func (s *solver) constrain(st ir.Stmt) {
	switch st.Op {
	case ir.OpAddr:
		if s.pts[st.Dst].Add(int(st.Src)) {
			if s.pending != nil {
				s.pending[st.Dst].Add(int(st.Src))
				s.dirty = true
			}
			s.push(int32(st.Dst))
		}
	case ir.OpCopy:
		s.addCopy(int32(st.Src), int32(st.Dst))
	case ir.OpLoad: // dst = *src
		s.loads[st.Src] = append(s.loads[st.Src], int32(st.Dst))
		s.push(int32(st.Src))
	case ir.OpStore: // *dst = src
		s.stores[st.Dst] = append(s.stores[st.Dst], int32(st.Src))
		s.push(int32(st.Dst))
	case ir.OpCall:
		if st.Callee != ir.NoFunc {
			return // direct calls are bound by explicit copy nodes
		}
		s.calls[int(st.FPtr)] = append(s.calls[int(st.FPtr)], indirectCall{
			fptr: st.FPtr, args: st.Args, dst: st.Dst,
		})
		s.push(int32(st.FPtr))
	}
}

func (s *solver) solve() {
	for len(s.work) > 0 {
		s.stats.Passes++
		if s.cycleEli {
			s.sinceCollapse++
			if s.sinceCollapse > s.interval {
				s.sinceCollapse = 0
				s.stats.Collapses++
				s.collapseCycles()
			}
		}
		v := s.find(s.work[len(s.work)-1])
		s.work = s.work[:len(s.work)-1]
		s.inWork[v] = false

		delta := s.prev[v].DiffFrom(s.pts[v])
		if !delta.Empty() {
			s.prev[v].UnionWith(delta)
			// Complex constraints consume the delta.
			delta.ForEach(func(o int) bool {
				for _, x := range s.loads[v] {
					s.addCopy(int32(o), x) // x = *v, v -> o: x ⊇ pts(o)
				}
				for _, y := range s.stores[v] {
					s.addCopy(y, int32(o)) // *v = y: o ⊇ pts(y)
				}
				if cs := s.calls[int(v)]; cs != nil {
					if fn := s.prog.Var(ir.VarID(o)); fn.Kind == ir.KindFunc {
						s.bindCalls(cs, fn.Fn)
					}
				}
				return true
			})
		}
		// Propagate along copy edges.
		for _, w := range s.copyTo[v] {
			w = s.find(w)
			if w == v {
				continue
			}
			if s.pts[w].UnionWith(s.pts[v]) {
				s.push(w)
			}
		}
	}
}

// collapseCycles finds strongly connected components of the (canonical)
// copy-edge graph and merges each multi-node component into its
// representative: members of a copy cycle have mutually inclusive, hence
// equal, final points-to sets.
func (s *solver) collapseCycles() {
	n := len(s.pts)
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int32
	next := int32(0)
	type frame struct {
		v  int32
		ci int
	}
	for start := 0; start < n; start++ {
		sv := s.find(int32(start))
		if index[sv] != -1 {
			continue
		}
		frames := []frame{{v: sv}}
		index[sv], low[sv] = next, next
		next++
		stack = append(stack, sv)
		onStack[sv] = true
		for len(frames) > 0 {
			fr := &frames[len(frames)-1]
			edges := s.copyTo[fr.v]
			if fr.ci < len(edges) {
				w := s.find(edges[fr.ci])
				fr.ci++
				if w == fr.v {
					continue
				}
				if index[w] == -1 {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && index[w] < low[fr.v] {
					low[fr.v] = index[w]
				}
				continue
			}
			if low[fr.v] == index[fr.v] {
				var scc []int32
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == fr.v {
						break
					}
				}
				if len(scc) > 1 {
					s.mergeSCC(scc)
				}
			}
			done := *fr
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[done.v] < low[parent.v] {
					low[parent.v] = low[done.v]
				}
			}
		}
	}
}

// mergeSCC folds all members of a copy cycle into the first member.
func (s *solver) mergeSCC(scc []int32) {
	root := scc[0]
	for _, m := range scc[1:] {
		if s.find(m) == s.find(root) {
			continue
		}
		s.stats.Merged++
		s.rep[s.find(m)] = s.find(root)
		s.pts[root].UnionWith(s.pts[m])
		s.edgeSet[root].UnionWith(s.edgeSet[m])
		s.copyTo[root] = append(s.copyTo[root], s.copyTo[m]...)
		s.loads[root] = append(s.loads[root], s.loads[m]...)
		s.stores[root] = append(s.stores[root], s.stores[m]...)
		if cs := s.calls[int(m)]; len(cs) > 0 {
			s.calls[int(root)] = append(s.calls[int(root)], cs...)
			delete(s.calls, int(m))
		}
		if s.pending != nil {
			// Un-propagated bits of every member stay pending on the
			// representative; propagated bits already reached all of the
			// members' successors (new edges transfer in full on add).
			s.pending[root].UnionWith(s.pending[m])
			s.pending[m] = &bitset.Set{}
		}
		s.copyTo[m], s.loads[m], s.stores[m] = nil, nil, nil
	}
	if s.prev != nil {
		// Force full reprocessing of the merged node: the members'
		// processed snapshots may disagree, so start over from empty.
		s.prev[root] = &bitset.Set{}
		s.push(root)
	}
}

func (s *solver) bindCalls(cs []indirectCall, f ir.FuncID) {
	fn := s.prog.Func(f)
	for _, c := range cs {
		if len(c.args) != len(fn.Params) {
			continue
		}
		if c.dst != ir.NoVar && fn.Ret == ir.NoVar {
			continue
		}
		for i, a := range c.args {
			if a != ir.NoVar {
				s.addCopy(int32(a), int32(fn.Params[i]))
			}
		}
		if c.dst != ir.NoVar {
			s.addCopy(int32(fn.Ret), int32(c.dst))
		}
	}
}

// canon resolves v through the (frozen) cycle-elimination mapping.
func (a *Analysis) canon(v ir.VarID) int32 {
	r := int32(v)
	for a.rep[r] != r {
		r = a.rep[r]
	}
	return r
}

// PointsToSet returns v's points-to set. The caller must not modify it.
func (a *Analysis) PointsToSet(v ir.VarID) *bitset.Set { return a.pts[a.canon(v)] }

// PointsTo returns the objects v may point to, in increasing VarID order.
func (a *Analysis) PointsTo(v ir.VarID) []ir.VarID {
	set := a.PointsToSet(v)
	out := make([]ir.VarID, 0, set.Len())
	set.ForEach(func(o int) bool { out = append(out, ir.VarID(o)); return true })
	return out
}

// MayAlias reports whether p and q may point to a common object.
func (a *Analysis) MayAlias(p, q ir.VarID) bool {
	return a.PointsToSet(p).Intersects(a.PointsToSet(q))
}

// Targets resolves the functions a function pointer may call.
func (a *Analysis) Targets(fptr ir.VarID) []ir.FuncID {
	var out []ir.FuncID
	a.PointsToSet(fptr).ForEach(func(o int) bool {
		if v := a.prog.Var(ir.VarID(o)); v.Kind == ir.KindFunc {
			out = append(out, v.Fn)
		}
		return true
	})
	return out
}

// ObjCluster is one Andersen cluster: the pointers that may point at Obj.
type ObjCluster struct {
	Obj  ir.VarID
	Ptrs []ir.VarID // ascending; callers must not modify
}

// Clusters returns the paper's Andersen clusters: for every object o
// pointed at by someone, the set of pointers that may point to o. A pointer
// appears in every cluster of every object it may target, so clusters form
// a disjunctive (not disjoint) alias cover (Theorem 7).
//
// The slice is ordered by Obj, computed once and cached — an Analysis is
// immutable after Analyze, so repeated calls (e.g. per oversized partition
// in the cover builder, or from concurrent FSCS fallbacks) share it.
func (a *Analysis) Clusters() []ObjCluster {
	a.clustersOnce.Do(func() {
		byObj := map[ir.VarID][]ir.VarID{}
		// The outer loop ascends over v, so each Ptrs list is born sorted.
		for v := 0; v < a.prog.NumVars(); v++ {
			a.PointsToSet(ir.VarID(v)).ForEach(func(o int) bool {
				byObj[ir.VarID(o)] = append(byObj[ir.VarID(o)], ir.VarID(v))
				return true
			})
		}
		a.clusters = make([]ObjCluster, 0, len(byObj))
		for o, ptrs := range byObj {
			a.clusters = append(a.clusters, ObjCluster{Obj: o, Ptrs: ptrs})
		}
		sort.Slice(a.clusters, func(i, j int) bool { return a.clusters[i].Obj < a.clusters[j].Obj })
	})
	return a.clusters
}

// MaxClusterSize returns the cardinality of the largest Andersen cluster.
func (a *Analysis) MaxClusterSize() int {
	max := 0
	for _, c := range a.Clusters() {
		if len(c.Ptrs) > max {
			max = len(c.Ptrs)
		}
	}
	return max
}
