package andersen

import (
	"testing"

	"bootstrap/internal/frontend"
	"bootstrap/internal/ir"
)

// Repro: complexDelta resets pending[v] for every node with a non-empty
// wave delta, including bits seeded moments earlier in the same loop by
// another node's addCopy.
func TestDeltaPendingWipe(t *testing.T) {
	src := `
		int B, C;
		int **p;
		int *y, *w, *tt, *v6;
		void main() {
			p = &tt;
			y = &B;
			w = &C;
			*p = y;
			tt = w;
			v6 = tt;
		}
	`
	p, err := frontend.LowerSource(src)
	if err != nil {
		t.Fatal(err)
	}
	base := Analyze(p)
	delta := Analyze(p, WithDeltaPropagation())
	for v := 0; v < p.NumVars(); v++ {
		if !base.PointsToSet(ir.VarID(v)).Equal(delta.PointsToSet(ir.VarID(v))) {
			t.Errorf("pts(%s) differs: base %v, delta %v",
				p.VarName(ir.VarID(v)), base.PointsTo(ir.VarID(v)), delta.PointsTo(ir.VarID(v)))
		}
	}
}
