// Package faults provides deterministic fault injection for the
// per-cluster FSCS scheduler. A Plan maps cluster IDs to faults; the
// scheduler installs the plan's hook into each engine attempt (via
// fscs.WithHook), so panics, slowness and forced budget exhaustion fire
// at exact worklist positions instead of depending on wall-clock timing.
// This is what makes the fault-tolerance layer testable without flaky
// sleeps: a panic always happens on the same tuple of the same cluster.
package faults

import (
	"fmt"
	"os"
	"sync"
	"time"

	"bootstrap/internal/fscs"
)

// Kind selects what a fault does when it fires.
type Kind uint8

const (
	// None is the zero fault; it never fires.
	None Kind = iota
	// Panic panics inside the engine's worklist loop, simulating an
	// engine bug. The scheduler must recover it into a cluster failure.
	Panic
	// Slow sleeps Delay on every charged tuple, simulating a cluster that
	// is too expensive to finish before its wall-clock deadline.
	Slow
	// Budget aborts the engine with an error wrapping fscs.ErrBudget,
	// simulating budget exhaustion regardless of the configured budget.
	Budget
	// Kill terminates the whole process at the armed tuple — no panic to
	// recover, no deferred cleanup, exactly what a worker crash, OOM kill
	// or machine loss looks like to a distributed coordinator. The
	// coordinator's lease expiry (not this process) is what must recover.
	Kill
)

var kindNames = [...]string{"none", "panic", "slow", "budget", "kill"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", k)
}

// Fault describes one injected failure.
type Fault struct {
	Kind Kind
	// AfterTuples arms the fault only once the engine has processed this
	// many worklist tuples (0 = fire on the first tuple).
	AfterTuples int64
	// Delay is the per-tuple sleep of a Slow fault.
	Delay time.Duration
	// Attempts bounds how many engine attempts the fault fires on: 0
	// means every attempt (the cluster can only be demoted), n > 0 means
	// only the first n attempts (so a ladder retry recovers).
	Attempts int
}

type state struct {
	f        Fault
	attempts int // engine attempts handed a hook so far
}

// Plan is a set of per-cluster faults, plus an optional global every-Nth
// fault that fires across clusters. The zero value is unusable; use
// NewPlan. A Plan is safe for concurrent use by the scheduler's workers,
// and may be re-armed while analyses that hold it are running — that is
// how a long-lived server turns chaos on and off under live traffic.
type Plan struct {
	mu        sync.Mutex
	byCluster map[int]*state

	// Global every-Nth fault: fires on every nth Hook request (counted
	// in arrival order across all clusters) that has no per-cluster
	// fault of its own.
	nth      int
	nthFault Fault
	nthCount int64
}

// NewPlan returns an empty fault plan.
func NewPlan() *Plan { return &Plan{byCluster: map[int]*state{}} }

// Set arms a fault for one cluster, replacing any previous fault for it.
// It returns the plan for chaining.
func (p *Plan) Set(clusterID int, f Fault) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.byCluster[clusterID] = &state{f: f}
	return p
}

// EveryNth arms a global fault: every nth Hook request (counted in
// arrival order across all clusters) whose cluster has no fault of its
// own receives f. n <= 0 disarms. The counter restarts on each call, so
// re-arming under live traffic stays deterministic. Returns the plan for
// chaining.
func (p *Plan) EveryNth(n int, f Fault) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.nth, p.nthFault, p.nthCount = n, f, 0
	return p
}

// Active reports whether any fault is currently armed — per-cluster or
// global. Nil plans are inactive. The scheduler bypasses the result
// cache exactly while the plan is active, so a disarmed plan costs
// nothing.
func (p *Plan) Active() bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.nth > 0 && p.nthFault.Kind != None {
		return true
	}
	for _, st := range p.byCluster {
		if st.f.Kind != None {
			return true
		}
	}
	return false
}

// Hook returns the engine hook for the next attempt on clusterID, or nil
// when the cluster has no (remaining) fault. Each call counts as one
// attempt against Fault.Attempts.
func (p *Plan) Hook(clusterID int) fscs.Hook {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.byCluster[clusterID]
	if !ok || st.f.Kind == None {
		if p.nth > 0 && p.nthFault.Kind != None {
			p.nthCount++
			if p.nthCount%int64(p.nth) == 0 {
				return hookFor(clusterID, p.nthFault)
			}
		}
		return nil
	}
	st.attempts++
	if st.f.Attempts > 0 && st.attempts > st.f.Attempts {
		return nil // fault spent: this attempt runs clean
	}
	return hookFor(clusterID, st.f)
}

// exit is how a Kill fault leaves the process. Tests that only want to
// observe that a kill *would* fire swap it out; the worker binaries keep
// os.Exit so death is immediate — no recover, no deferred unwinding.
var exit func(code int) = os.Exit

// KillExitCode is the status a Kill fault exits with, distinguishable
// from a clean worker shutdown (0) and a flag/usage error (2).
const KillExitCode = 7

// SetExitForTest replaces the Kill fault's process-exit function and
// returns a restore func. Only tests should call this.
func SetExitForTest(f func(int)) (restore func()) {
	old := exit
	exit = f
	return func() { exit = old }
}

// hookFor builds the engine hook that makes f fire.
func hookFor(clusterID int, f Fault) fscs.Hook {
	return func(tuples int64) error {
		if tuples <= f.AfterTuples {
			return nil
		}
		switch f.Kind {
		case Panic:
			panic(fmt.Sprintf("faults: injected panic in cluster %d at tuple %d", clusterID, tuples))
		case Slow:
			time.Sleep(f.Delay)
		case Budget:
			return fmt.Errorf("faults: injected exhaustion in cluster %d: %w", clusterID, fscs.ErrBudget)
		case Kill:
			fmt.Fprintf(os.Stderr, "faults: injected kill in cluster %d at tuple %d\n", clusterID, tuples)
			exit(KillExitCode)
		}
		return nil
	}
}

// Attempts reports how many engine attempts have been handed a hook for
// clusterID — i.e. how often the scheduler (re)tried it.
func (p *Plan) Attempts(clusterID int) int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if st, ok := p.byCluster[clusterID]; ok {
		return st.attempts
	}
	return 0
}
