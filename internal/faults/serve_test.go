package faults

import (
	"testing"
	"time"
)

func TestEveryNthGlobalFault(t *testing.T) {
	p := NewPlan().EveryNth(3, Fault{Kind: Budget})
	fired := 0
	for i := 0; i < 9; i++ {
		if p.Hook(i) != nil {
			fired++
		}
	}
	if fired != 3 {
		t.Errorf("every-3rd fault fired %d times in 9 requests, want 3", fired)
	}
	// Per-cluster faults take precedence and do not advance the global
	// counter.
	p = NewPlan().Set(7, Fault{Kind: Panic}).EveryNth(2, Fault{Kind: Budget})
	if p.Hook(7) == nil {
		t.Errorf("per-cluster fault did not fire")
	}
	if p.Hook(1) != nil { // global count 1
		t.Errorf("global fault fired early")
	}
	if p.Hook(2) == nil { // global count 2
		t.Errorf("global fault did not fire on the 2nd uncovered request")
	}
}

func TestEveryNthDisarmRestartsCounter(t *testing.T) {
	p := NewPlan().EveryNth(2, Fault{Kind: Budget})
	p.Hook(0) // count 1
	p.EveryNth(2, Fault{Kind: Budget})
	if p.Hook(0) != nil {
		t.Errorf("re-arming did not restart the counter")
	}
	p.EveryNth(0, Fault{})
	for i := 0; i < 5; i++ {
		if p.Hook(i) != nil {
			t.Errorf("disarmed plan fired")
		}
	}
}

func TestActive(t *testing.T) {
	var nilPlan *Plan
	if nilPlan.Active() {
		t.Errorf("nil plan active")
	}
	p := NewPlan()
	if p.Active() {
		t.Errorf("empty plan active")
	}
	p.EveryNth(4, Fault{Kind: Budget})
	if !p.Active() {
		t.Errorf("armed global fault not active")
	}
	p.EveryNth(0, Fault{})
	if p.Active() {
		t.Errorf("disarmed plan still active")
	}
	p.Set(3, Fault{Kind: Panic})
	if !p.Active() {
		t.Errorf("armed per-cluster fault not active")
	}
	p.Set(3, Fault{})
	if p.Active() {
		t.Errorf("cleared per-cluster fault still active")
	}
}

func TestServeInjectorLatency(t *testing.T) {
	var nilInj *ServeInjector
	if nilInj.QueryDelay() != 0 || nilInj.ReloadPause() != 0 || nilInj.LatencyArmed() {
		t.Errorf("nil injector not inert")
	}
	i := NewServeInjector()
	if i.LatencyArmed() {
		t.Errorf("fresh injector armed")
	}
	i.SetLatency(3, 10*time.Millisecond)
	if !i.LatencyArmed() {
		t.Errorf("armed injector reports disarmed")
	}
	spikes := 0
	for n := 0; n < 9; n++ {
		if i.QueryDelay() > 0 {
			spikes++
		}
	}
	if spikes != 3 || i.Spikes() != 3 {
		t.Errorf("every-3rd latency spiked %d/%d times in 9 queries, want 3", spikes, i.Spikes())
	}
	i.SetLatency(0, 0)
	if i.LatencyArmed() || i.QueryDelay() != 0 {
		t.Errorf("disarmed injector still spiking")
	}
}

func TestServeInjectorReloadPause(t *testing.T) {
	i := NewServeInjector()
	if i.ReloadPause() != 0 {
		t.Errorf("fresh injector pauses reloads")
	}
	i.SetReloadPause(25 * time.Millisecond)
	if i.ReloadPause() != 25*time.Millisecond {
		t.Errorf("ReloadPause = %v", i.ReloadPause())
	}
	i.SetReloadPause(0)
	if i.ReloadPause() != 0 {
		t.Errorf("reload pause not disarmed")
	}
}
