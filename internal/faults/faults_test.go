package faults

import (
	"errors"
	"testing"
	"time"

	"bootstrap/internal/fscs"
)

func TestPlanHookSelectsCluster(t *testing.T) {
	p := NewPlan().Set(3, Fault{Kind: Budget})
	if p.Hook(1) != nil {
		t.Error("cluster without a fault should get no hook")
	}
	h := p.Hook(3)
	if h == nil {
		t.Fatal("faulted cluster should get a hook")
	}
	if err := h(1); !errors.Is(err, fscs.ErrBudget) {
		t.Errorf("budget fault = %v, want wrapped fscs.ErrBudget", err)
	}
}

func TestAfterTuplesArming(t *testing.T) {
	p := NewPlan().Set(0, Fault{Kind: Budget, AfterTuples: 2})
	h := p.Hook(0)
	if err := h(1); err != nil {
		t.Errorf("tuple 1: %v, want nil (fault armed after 2)", err)
	}
	if err := h(2); err != nil {
		t.Errorf("tuple 2: %v, want nil", err)
	}
	if err := h(3); err == nil {
		t.Error("tuple 3 should trip the fault")
	}
}

func TestAttemptsSpendTheFault(t *testing.T) {
	p := NewPlan().Set(7, Fault{Kind: Budget, Attempts: 1})
	if h := p.Hook(7); h == nil {
		t.Fatal("first attempt should be faulted")
	}
	if h := p.Hook(7); h != nil {
		t.Error("second attempt should run clean (fault spent)")
	}
	if got := p.Attempts(7); got != 2 {
		t.Errorf("Attempts = %d, want 2", got)
	}
}

func TestPanicFault(t *testing.T) {
	p := NewPlan().Set(0, Fault{Kind: Panic})
	h := p.Hook(0)
	defer func() {
		if recover() == nil {
			t.Error("panic fault should panic")
		}
	}()
	_ = h(1)
}

func TestSlowFault(t *testing.T) {
	p := NewPlan().Set(0, Fault{Kind: Slow, Delay: 5 * time.Millisecond})
	h := p.Hook(0)
	start := time.Now()
	if err := h(1); err != nil {
		t.Errorf("slow fault returned %v", err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Error("slow fault should sleep")
	}
}

func TestNilPlanSafe(t *testing.T) {
	var p *Plan
	if p.Hook(0) != nil || p.Attempts(0) != 0 {
		t.Error("nil plan should inject nothing")
	}
}

// TestKillFaultFiresDeterministically swaps the process-exit function
// and checks a Kill fault fires exactly at its armed tuple — the
// determinism the dist worker-kill tests lean on.
func TestKillFaultFiresDeterministically(t *testing.T) {
	var killedAt int64 = -1
	restore := SetExitForTest(func(code int) {
		if code != KillExitCode {
			t.Errorf("kill exit code = %d, want %d", code, KillExitCode)
		}
		panic("fake-exit") // unwind instead of dying
	})
	defer restore()

	p := NewPlan().Set(3, Fault{Kind: Kill, AfterTuples: 5})
	hook := p.Hook(3)
	if hook == nil {
		t.Fatal("no hook for armed kill fault")
	}
	func() {
		defer func() {
			if r := recover(); r != nil {
				if r != "fake-exit" {
					t.Fatalf("unexpected panic %v", r)
				}
			}
		}()
		for tuples := int64(0); tuples <= 10; tuples++ {
			if err := hook(tuples); err != nil {
				t.Fatalf("hook error at tuple %d: %v", tuples, err)
			}
			killedAt = tuples
		}
	}()
	// hook(t) fires once tuples > AfterTuples, so the last survivor is 5.
	if killedAt != 5 {
		t.Errorf("kill fired after tuple %d, want last clean tuple 5", killedAt)
	}
}
