package faults

import (
	"sync"
	"time"
)

// ServeInjector injects deterministic faults into the alias daemon's
// request paths: periodic latency spikes on admitted queries and a pause
// inside reload (between analyzing the new program and swapping the
// snapshot) that widens the window a torn-snapshot bug would need. Like
// Plan, everything is counter-based — the Nth query always spikes, never
// a random one — so chaos tests replay exactly.
//
// All methods are nil-safe no-ops, so servers thread an injector
// unconditionally and pay nothing when chaos is off. An injector may be
// re-armed while the server is live.
type ServeInjector struct {
	mu           sync.Mutex
	latencyEvery int
	latency      time.Duration
	reloadPause  time.Duration
	queries      int64
	spikes       int64
}

// NewServeInjector returns a disarmed injector.
func NewServeInjector() *ServeInjector { return &ServeInjector{} }

// SetLatency arms a latency spike of d on every nth admitted query
// (counted across all clients). n <= 0 or d <= 0 disarms; the counter
// restarts either way.
func (i *ServeInjector) SetLatency(n int, d time.Duration) {
	if i == nil {
		return
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if n <= 0 || d <= 0 {
		n, d = 0, 0
	}
	i.latencyEvery, i.latency, i.queries = n, d, 0
}

// SetReloadPause arms (or with 0 disarms) the reload race-window pause.
func (i *ServeInjector) SetReloadPause(d time.Duration) {
	if i == nil {
		return
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.reloadPause = d
}

// QueryDelay counts one admitted query and returns the latency spike it
// should suffer (0 for most). The caller is responsible for sleeping —
// under its own deadline, so a spike degrades the query rather than
// hanging it.
func (i *ServeInjector) QueryDelay() time.Duration {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.latencyEvery <= 0 {
		return 0
	}
	i.queries++
	if i.queries%int64(i.latencyEvery) != 0 {
		return 0
	}
	i.spikes++
	return i.latency
}

// LatencyArmed reports whether a latency spike is armed.
func (i *ServeInjector) LatencyArmed() bool {
	if i == nil {
		return false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.latencyEvery > 0
}

// ReloadPause returns the armed reload pause (0 when disarmed).
func (i *ServeInjector) ReloadPause() time.Duration {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.reloadPause
}

// Spikes reports how many latency spikes have fired.
func (i *ServeInjector) Spikes() int64 {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.spikes
}
