package check_test

import (
	"context"
	"math/rand"
	"testing"

	"bootstrap/internal/check"
	"bootstrap/internal/core"
	"bootstrap/internal/exact"
	"bootstrap/internal/frontend"
	"bootstrap/internal/ir"
	"bootstrap/internal/synth"
)

// diffAppendix seeds one known race (ddr_g: thread_diff_a writes under
// dmA, thread_diff_b without) and one known use-after-free (ub_d, an
// alias of the freed ua_d) into every random program of the
// differential suite. Names are chosen to never collide with the
// random generator's a%d/p%d/q%d/m%d/l%d families.
const diffAppendix = `
lock dmA;
lock *dlA;
int ddr_g;
int *ua_d;
int *ub_d;
void acquire(lock *l) { }
void release(lock *l) { }
void thread_diff_a() {
	dlA = &dmA;
	acquire(dlA);
	ddr_g = 1;
	release(dlA);
}
void thread_diff_b() {
	ddr_g = 2;
}
void thread_diff_u() {
	ua_d = malloc;
	ub_d = ua_d;
	free(ua_d);
	*ub_d = 1;
}
`

// diffSource is one differential subject: a seeded random program (with
// lock traffic and free sites of its own) plus the known-bug appendix.
func diffSource(seed int64) string {
	cfg := synth.DefaultRandomConfig()
	cfg.Locks = 2
	return synth.RandomSource(rand.New(rand.NewSource(seed)), cfg) + diffAppendix
}

// TestDifferentialKnobs: the seeded race and use-after-free are found
// on every random program under every solver knob combination, and the
// full fingerprint set is bit-identical across knobs — precision
// switches and parallelism must change speed, never findings.
func TestDifferentialKnobs(t *testing.T) {
	knobs := []struct {
		name string
		mut  func(*core.Config)
	}{
		{"default", func(*core.Config) {}},
		{"no-delta", func(c *core.Config) { c.DisableDeltaProp = true }},
		{"steens-precise", func(c *core.Config) { c.SteensPrecise = true }},
		{"workers-1", func(c *core.Config) { c.Workers = 1 }},
		{"workers-8", func(c *core.Config) { c.Workers = 8 }},
	}
	for seed := int64(0); seed < 5; seed++ {
		src := diffSource(seed)
		var want []string
		for _, k := range knobs {
			cfg := core.Config{Mode: core.ModeAndersen, AndersenThreshold: 4, Workers: 2}
			k.mut(&cfg)
			passes := check.All()
			a := analyzeLazy(t, src, passes, cfg)
			rep := check.Run(context.Background(), a, check.Options{Passes: passes})
			for _, res := range rep.Results {
				if res.Err != nil {
					t.Fatalf("seed %d %s: pass %s: %v", seed, k.name, res.Pass, res.Err)
				}
				if res.Incomplete {
					t.Fatalf("seed %d %s: pass %s incomplete without a deadline", seed, k.name, res.Pass)
				}
			}
			diags := rep.Diagnostics()
			for _, bug := range []synth.SeededBug{
				{Rule: "race", Var: "ddr_g"},
				{Rule: "use-after-free", Var: "ub_d"},
			} {
				if !found(diags, bug) {
					t.Errorf("seed %d %s: seeded %s on %s not found\n%s",
						seed, k.name, bug.Rule, bug.Var, check.FormatText(rep))
				}
			}
			got := rep.Fingerprints()
			if want == nil {
				want = got
				continue
			}
			if len(got) != len(want) {
				t.Errorf("seed %d %s: %d findings, default knob had %d", seed, k.name, len(got), len(want))
				continue
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("seed %d %s: fingerprint drift at %d: %s vs %s",
						seed, k.name, i, got[i], want[i])
				}
			}
		}
	}
}

// TestDifferentialExactFreeSites: at every free site reachable by the
// exact path oracle, the oracle's points-to set for the freed pointer
// is contained in the analysis's — the soundness fact the UAF pass's
// object-overlap reporting rests on. At least one site must be
// non-trivial (oracle-reached with a concrete target), or the suite is
// vacuous.
func TestDifferentialExactFreeSites(t *testing.T) {
	nontrivial := 0
	for seed := int64(0); seed < 5; seed++ {
		prog, err := frontend.LowerSource(diffSource(seed))
		if err != nil {
			t.Fatalf("seed %d: lower: %v", seed, err)
		}
		oracle := exact.Explore(prog, exact.Options{})
		a, err := core.AnalyzeProgram(prog, core.Config{
			Mode: core.ModeAndersen, AndersenThreshold: 4, Workers: 2,
		})
		if err != nil {
			t.Fatalf("seed %d: analyze: %v", seed, err)
		}
		for _, n := range prog.Nodes {
			if n.Stmt.Op != ir.OpNullify || !n.Stmt.Free {
				continue
			}
			exactObjs := oracle.PointsTo(n.Stmt.Dst, n.Loc)
			if len(exactObjs) > 0 {
				nontrivial++
			}
			objs, _ := a.PointsTo(n.Stmt.Dst, n.Loc)
			super := map[ir.VarID]bool{}
			for _, o := range objs {
				super[o] = true
			}
			for _, o := range exactObjs {
				if !super[o] {
					t.Errorf("seed %d: free(%s) at L%d: oracle target %s missing from analysis points-to %v",
						seed, prog.VarName(n.Stmt.Dst), n.Loc, prog.VarName(o), objs)
				}
			}
		}
	}
	if nontrivial == 0 {
		t.Fatal("no oracle-reached free site had a concrete target; the suite is vacuous")
	}
}
