package check

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// SARIF 2.1.0 output: the static-analysis interchange format GitHub
// code scanning, VS Code SARIF viewers and most CI systems ingest. Only
// the schema subset the checker populates is modeled — tool metadata
// with one reportingDescriptor per (pass, rule), and one result per
// diagnostic with physical location (line = IR Loc + 1), logical
// location (enclosing function), partialFingerprints (the baseline
// suppression key) and relatedLocations (witnesses).

const (
	sarifVersion = "2.1.0"
	sarifSchema  = "https://json.schemastore.org/sarif-2.1.0.json"
	// FingerprintKey is the partialFingerprints entry carrying the
	// diagnostic's stable fingerprint; versioned so a future hash change
	// does not silently mismatch old baselines.
	FingerprintKey = "aliaslint/v1"
)

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID              string            `json:"ruleId"`
	Level               string            `json:"level"`
	Message             sarifMessage      `json:"message"`
	Locations           []sarifLocation   `json:"locations"`
	RelatedLocations    []sarifLocation   `json:"relatedLocations,omitempty"`
	PartialFingerprints map[string]string `json:"partialFingerprints"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical  `json:"physicalLocation"`
	LogicalLocations []sarifLogical `json:"logicalLocations,omitempty"`
	Message          *sarifMessage  `json:"message,omitempty"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine int `json:"startLine"`
}

type sarifLogical struct {
	FullyQualifiedName string `json:"fullyQualifiedName"`
	Kind               string `json:"kind,omitempty"`
}

// ruleID qualifies a rule with its pass ("lockset/race").
func ruleID(pass, rule string) string { return pass + "/" + rule }

// WriteSARIF renders the report as a SARIF 2.1.0 log with one run.
func WriteSARIF(w io.Writer, rep *Report) error {
	driver := sarifDriver{Name: "aliaslint"}
	ruleSeen := map[string]bool{}
	for _, res := range rep.Results {
		for _, d := range res.Diags {
			id := ruleID(d.Pass, d.Rule)
			if ruleSeen[id] {
				continue
			}
			ruleSeen[id] = true
			driver.Rules = append(driver.Rules, sarifRule{
				ID:               id,
				ShortDescription: sarifMessage{Text: res.Doc},
			})
		}
	}
	sort.Slice(driver.Rules, func(i, j int) bool { return driver.Rules[i].ID < driver.Rules[j].ID })

	results := []sarifResult{} // non-nil: SARIF requires the property
	loc := func(l sarifRegionLine, fn, msg string) sarifLocation {
		sl := sarifLocation{
			PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: rep.Source},
				Region:           sarifRegion{StartLine: int(l) + 1},
			},
		}
		if fn != "" {
			sl.LogicalLocations = []sarifLogical{{FullyQualifiedName: fn, Kind: "function"}}
		}
		if msg != "" {
			sl.Message = &sarifMessage{Text: msg}
		}
		return sl
	}
	for _, res := range rep.Results {
		for _, d := range res.Diags {
			r := sarifResult{
				RuleID:    ruleID(d.Pass, d.Rule),
				Level:     d.Severity.String(),
				Message:   sarifMessage{Text: d.Message},
				Locations: []sarifLocation{loc(sarifRegionLine(d.Loc), d.Func, "")},
				PartialFingerprints: map[string]string{
					FingerprintKey: d.Fingerprint,
				},
			}
			if d.Snapshot != 0 {
				r.PartialFingerprints["aliaslint/snapshot"] = fmt.Sprint(d.Snapshot)
			}
			for _, rel := range d.Related {
				r.RelatedLocations = append(r.RelatedLocations, loc(sarifRegionLine(rel.Loc), "", rel.Message))
			}
			results = append(results, r)
		}
	}

	log := sarifLog{
		Version: sarifVersion,
		Schema:  sarifSchema,
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// sarifRegionLine is an IR Loc widened for line arithmetic.
type sarifRegionLine int64

// ReadBaseline extracts the fingerprint set from a previous run's SARIF
// log — the -baseline input that suppresses known findings.
func ReadBaseline(r io.Reader) (map[string]bool, error) {
	var log sarifLog
	if err := json.NewDecoder(r).Decode(&log); err != nil {
		return nil, fmt.Errorf("check: parsing baseline SARIF: %w", err)
	}
	out := map[string]bool{}
	for _, run := range log.Runs {
		for _, res := range run.Results {
			if fp := res.PartialFingerprints[FingerprintKey]; fp != "" {
				out[fp] = true
			}
		}
	}
	return out, nil
}
