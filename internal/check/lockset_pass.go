package check

import (
	"context"
	"fmt"
	"sort"

	"bootstrap/internal/ir"
	"bootstrap/internal/lockset"
)

// locksetSrc adapts the framework's deadline-scoped Core handle to
// lockset.Source, so the detector's lock resolution rides the
// demand-driven cascade: clusters containing lock pointers solve on
// first touch, and an expired pass deadline degrades resolution to the
// fallback (which is never a must-singleton, so unresolved locks stay
// conservative — no false races are introduced, some may be missed and
// the pass reports incomplete).
type locksetSrc struct {
	ctx context.Context
	c   *Core
}

func (s locksetSrc) Program() *ir.Program { return s.c.Prog() }
func (s locksetSrc) PointsTo(p ir.VarID, loc ir.Loc) ([]ir.VarID, bool) {
	return s.c.PointsTo(s.ctx, p, loc)
}

// LocksetPass is the paper's motivating client — lockset-based data-race
// detection — on the checker framework.
type LocksetPass struct {
	// Config tunes the detector (zero value = defaults).
	Config lockset.Config
}

// Name implements Pass.
func (p *LocksetPass) Name() string { return "lockset" }

// Doc implements Pass.
func (p *LocksetPass) Doc() string {
	return "lockset-based data race detection over must-alias-resolved lock objects"
}

// Footprint implements Pass: race detection needs must-aliases only for
// lock pointers, so only clusters containing one are demanded.
func (p *LocksetPass) Footprint(prog *ir.Program) func(*ir.Var) bool {
	return lockset.LockDemand
}

// Run implements Pass.
func (p *LocksetPass) Run(ctx context.Context, c *Core) ([]Diagnostic, error) {
	det := lockset.NewDetectorSource(locksetSrc{ctx: ctx, c: c}, p.Config)
	races, _ := det.Detect()
	prog := c.Prog()
	out := make([]Diagnostic, 0, len(races))
	for _, r := range races {
		out = append(out, Diagnostic{
			Rule:     "race",
			Severity: SeverityWarning,
			Loc:      r.A.Loc,
			Subject:  prog.VarName(r.Var),
			Message:  r.Format(prog),
			Related: []Related{{
				Loc: r.B.Loc,
				Message: fmt.Sprintf("conflicting %s in thread %s",
					accessKind(r.B.Write), prog.Func(r.B.Thread).Name),
			}},
		})
	}
	return out, ctx.Err()
}

func accessKind(write bool) string {
	if write {
		return "write"
	}
	return "read"
}

// DeadlockPass detects potential deadlocks: it builds the lock-order
// graph over must-alias-resolved lock objects across thread entries
// (an edge h→a for every acquisition of a while h is definitely held)
// and reports its cycles, each with both acquisition witnesses.
type DeadlockPass struct {
	Config lockset.Config
}

// Name implements Pass.
func (p *DeadlockPass) Name() string { return "deadlock" }

// Doc implements Pass.
func (p *DeadlockPass) Doc() string {
	return "lock-order inversion (deadlock) detection over the cross-thread lock-order graph"
}

// Footprint implements Pass: like lockset, only lock-pointer clusters.
func (p *DeadlockPass) Footprint(prog *ir.Program) func(*ir.Var) bool {
	return lockset.LockDemand
}

// Run implements Pass.
func (p *DeadlockPass) Run(ctx context.Context, c *Core) ([]Diagnostic, error) {
	det := lockset.NewDetectorSource(locksetSrc{ctx: ctx, c: c}, p.Config)
	det.Detect()
	edges := det.Order()
	prog := c.Prog()

	// First witness per (held, acquired) object pair; edges arrive in
	// canonical order, so witnesses are deterministic.
	witness := map[pair]lockset.OrderEdge{}
	for _, e := range edges {
		key := pair{e.Held, e.Acquired}
		if _, ok := witness[key]; !ok {
			witness[key] = e
		}
	}

	var out []Diagnostic
	reported := map[pair]bool{}
	emit := func(a, b ir.VarID) {
		// Canonical orientation: the primary witness acquires the
		// lexicographically-larger lock while holding the smaller.
		if prog.VarName(b) < prog.VarName(a) {
			a, b = b, a
		}
		if reported[pair{a, b}] {
			return
		}
		reported[pair{a, b}] = true
		fwd, rev := witness[pair{a, b}], witness[pair{b, a}]
		out = append(out, Diagnostic{
			Rule:     "deadlock",
			Severity: SeverityWarning,
			Loc:      fwd.Loc,
			Subject:  prog.VarName(a) + "<->" + prog.VarName(b),
			Message: fmt.Sprintf(
				"lock-order inversion between %s and %s: %s acquired while holding %s at L%d (thread %s), but %s acquired while holding %s at L%d (thread %s)",
				prog.VarName(a), prog.VarName(b),
				prog.VarName(b), prog.VarName(a), fwd.Loc, prog.Func(fwd.Thread).Name,
				prog.VarName(a), prog.VarName(b), rev.Loc, prog.Func(rev.Thread).Name),
			Related: []Related{{
				Loc: rev.Loc,
				Message: fmt.Sprintf("reverse acquisition: %s acquired while holding %s (thread %s)",
					prog.VarName(a), prog.VarName(b), prog.Func(rev.Thread).Name),
			}},
		})
	}

	// Pairwise inversions: both h→a and a→h observed.
	for _, e := range edges {
		if _, ok := witness[pair{e.Acquired, e.Held}]; ok {
			emit(e.Held, e.Acquired)
		}
	}

	// Longer cycles (a→b→c→a with no 2-cycle among them) via SCCs of
	// the order graph: any SCC with ≥2 locks and no reported pairwise
	// inversion inside it must contain a longer cycle — walk one and
	// report every acquisition on it as a witness.
	for _, scc := range orderSCCs(witness) {
		if len(scc) < 2 {
			continue
		}
		covered := false
		for i := 0; i < len(scc) && !covered; i++ {
			for j := i + 1; j < len(scc); j++ {
				a, b := scc[i], scc[j]
				if prog.VarName(b) < prog.VarName(a) {
					a, b = b, a
				}
				if reported[pair{a, b}] {
					covered = true
					break
				}
			}
		}
		if covered {
			continue
		}
		cyc := cycleWithin(scc, witness)
		if len(cyc) < 2 {
			continue
		}
		names := make([]string, len(cyc))
		for i, v := range cyc {
			names[i] = prog.VarName(v)
		}
		sort.Strings(names)
		first := witness[pair{cyc[0], cyc[1]}]
		d := Diagnostic{
			Rule:     "deadlock",
			Severity: SeverityWarning,
			Loc:      first.Loc,
			Subject:  joinStrings(names, "<->"),
			Message: fmt.Sprintf("lock-order cycle over %d locks (%s)",
				len(cyc), joinStrings(names, ", ")),
		}
		for i := range cyc {
			e := witness[pair{cyc[i], cyc[(i+1)%len(cyc)]}]
			d.Related = append(d.Related, Related{
				Loc: e.Loc,
				Message: fmt.Sprintf("%s acquired while holding %s (thread %s)",
					prog.VarName(e.Acquired), prog.VarName(e.Held), prog.Func(e.Thread).Name),
			})
		}
		out = append(out, d)
	}
	return out, ctx.Err()
}

func joinStrings(ss []string, sep string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += sep
		}
		out += s
	}
	return out
}

// pair is a directed (held, acquired) lock-object pair — an edge key in
// the lock-order graph.
type pair struct{ a, b ir.VarID }

// orderSCCs computes the strongly connected components of the lock-order
// graph (Tarjan), each returned sorted by lock id, components sorted by
// their smallest member.
func orderSCCs(witness map[pair]lockset.OrderEdge) [][]ir.VarID {
	adj := map[ir.VarID][]ir.VarID{}
	nodeSet := map[ir.VarID]bool{}
	for key := range witness {
		adj[key.a] = append(adj[key.a], key.b)
		nodeSet[key.a], nodeSet[key.b] = true, true
	}
	nodes := make([]ir.VarID, 0, len(nodeSet))
	for v := range nodeSet {
		nodes = append(nodes, v)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for v := range adj {
		sort.Slice(adj[v], func(i, j int) bool { return adj[v][i] < adj[v][j] })
	}

	index := map[ir.VarID]int{}
	low := map[ir.VarID]int{}
	onStack := map[ir.VarID]bool{}
	var stack []ir.VarID
	next := 0
	var sccs [][]ir.VarID

	var strongconnect func(v ir.VarID)
	strongconnect = func(v ir.VarID) {
		index[v], low[v] = next, next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []ir.VarID
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sort.Slice(scc, func(i, j int) bool { return scc[i] < scc[j] })
			sccs = append(sccs, scc)
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	sort.Slice(sccs, func(i, j int) bool { return sccs[i][0] < sccs[j][0] })
	return sccs
}

// cycleWithin finds one directed cycle confined to the SCC, starting
// from its smallest member, returned as the node sequence (closing edge
// implied from last back to first).
func cycleWithin(scc []ir.VarID, witness map[pair]lockset.OrderEdge) []ir.VarID {
	in := map[ir.VarID]bool{}
	for _, v := range scc {
		in[v] = true
	}
	adj := map[ir.VarID][]ir.VarID{}
	for key := range witness {
		if in[key.a] && in[key.b] {
			adj[key.a] = append(adj[key.a], key.b)
		}
	}
	for v := range adj {
		sort.Slice(adj[v], func(i, j int) bool { return adj[v][i] < adj[v][j] })
	}
	start := scc[0]
	var path []ir.VarID
	onPath := map[ir.VarID]bool{}
	var dfs func(v ir.VarID) bool
	dfs = func(v ir.VarID) bool {
		path = append(path, v)
		onPath[v] = true
		for _, w := range adj[v] {
			if w == start && len(path) >= 2 {
				return true
			}
			if !onPath[w] {
				if dfs(w) {
					return true
				}
			}
		}
		path = path[:len(path)-1]
		onPath[v] = false
		return false
	}
	if dfs(start) {
		return path
	}
	return nil
}
