package check

import (
	"context"

	"bootstrap/internal/ir"
	"bootstrap/internal/nullcheck"
)

// nullSrc adapts the Core handle to nullcheck.Source: dereference-state
// queries ride the demand-driven cascade under the pass deadline.
type nullSrc struct {
	ctx context.Context
	c   *Core
}

func (s nullSrc) Program() *ir.Program        { return s.c.Prog() }
func (s nullSrc) ReachableFuncs() []ir.FuncID { return s.c.Reachable() }
func (s nullSrc) DerefState(p ir.VarID, loc ir.Loc) ([]ir.VarID, bool, bool, bool) {
	return s.c.DerefState(s.ctx, p, loc)
}

// derefFootprint collects every pointer the program dereferences: the
// source of a load, the destination of a store, the pointer of a
// write-through touch. This is the nullcheck (and use-after-free) demand
// set — only clusters containing a dereferenced pointer are solved.
func derefFootprint(prog *ir.Program) func(*ir.Var) bool {
	set := map[ir.VarID]bool{}
	for _, n := range prog.Nodes {
		switch n.Stmt.Op {
		case ir.OpLoad:
			set[n.Stmt.Src] = true
		case ir.OpStore:
			set[n.Stmt.Dst] = true
		case ir.OpTouch:
			if n.Stmt.Src != ir.NoVar {
				set[n.Stmt.Src] = true
			}
		}
	}
	return func(v *ir.Var) bool { return set[v.ID] }
}

// NullcheckPass is the flow-sensitive null/uninitialized-dereference
// checker on the framework.
type NullcheckPass struct{}

// Name implements Pass.
func (p *NullcheckPass) Name() string { return "nullcheck" }

// Doc implements Pass.
func (p *NullcheckPass) Doc() string {
	return "flow-sensitive null and uninitialized-pointer dereference detection"
}

// Footprint implements Pass: only clusters containing a dereferenced
// pointer matter.
func (p *NullcheckPass) Footprint(prog *ir.Program) func(*ir.Var) bool {
	return derefFootprint(prog)
}

// Run implements Pass. Fingerprints are preset with the warning's own
// exported Fingerprint, so batch (aliaslint) and served (aliasd /check)
// reports are byte-identical for the same snapshot.
func (p *NullcheckPass) Run(ctx context.Context, c *Core) ([]Diagnostic, error) {
	warnings := nullcheck.CheckSource(nullSrc{ctx: ctx, c: c})
	prog := c.Prog()
	out := make([]Diagnostic, 0, len(warnings))
	for _, w := range warnings {
		sev := SeverityWarning
		if w.Severity == nullcheck.DefiniteNull {
			sev = SeverityError
		}
		out = append(out, Diagnostic{
			Rule:        "null-deref",
			Severity:    sev,
			Loc:         w.Loc,
			Subject:     prog.VarName(w.Ptr),
			Message:     w.Format(prog),
			Fingerprint: w.Fingerprint(prog),
		})
	}
	return out, ctx.Err()
}
