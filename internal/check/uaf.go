package check

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"bootstrap/internal/ir"
)

// UAFPass detects use-after-free and double-free: free(p) lowers to a
// Free-marked nullify (paper, Remark 1), and the pass tracks the freed
// pointers and freed objects forward through each root's interprocedural
// CFG as a may-analysis (union at joins). A later dereference of a freed
// pointer — directly, through a copy, or through any pointer whose
// flow-sensitive value set lies in the freed objects — is a
// use-after-free; a second free of the same pointer or object is a
// double-free.
//
// Object resolution rides the demand-driven handle: PointsTo at the free
// site yields the pre-free value set (the analysis state on entry to the
// free node). Imprecise (deadline-degraded) value sets are never used to
// report object-overlap findings — degradation loses findings and flags
// the pass incomplete, it never fabricates them.
type UAFPass struct {
	// ThreadPrefix marks additional dataflow roots beside the program
	// entry (default "thread_", matching the lockset model).
	ThreadPrefix string
}

// Name implements Pass.
func (p *UAFPass) Name() string { return "uaf" }

// Doc implements Pass.
func (p *UAFPass) Doc() string {
	return "flow-sensitive use-after-free and double-free detection"
}

// Footprint implements Pass: clusters containing a dereferenced or a
// freed pointer.
func (p *UAFPass) Footprint(prog *ir.Program) func(*ir.Var) bool {
	deref := derefFootprint(prog)
	freed := map[ir.VarID]bool{}
	for _, n := range prog.Nodes {
		if n.Stmt.Op == ir.OpNullify && n.Stmt.Free {
			freed[n.Stmt.Dst] = true
		}
	}
	return func(v *ir.Var) bool { return deref(v) || freed[v.ID] }
}

// uafState is the may-state at a program point: pointers known freed
// (pointer variable -> earliest witnessing free site, killed by
// reassignment) and objects known freed (object -> earliest witness,
// never killed — the allocation is gone on every path through a free).
type uafState struct {
	ptrs map[ir.VarID]ir.Loc
	objs map[ir.VarID]ir.Loc
}

func (s *uafState) clone() *uafState {
	c := &uafState{ptrs: make(map[ir.VarID]ir.Loc, len(s.ptrs)), objs: make(map[ir.VarID]ir.Loc, len(s.objs))}
	for k, v := range s.ptrs {
		c.ptrs[k] = v
	}
	for k, v := range s.objs {
		c.objs[k] = v
	}
	return c
}

// join unions t into s (min witness loc for determinism), reporting
// whether s changed.
func (s *uafState) join(t *uafState) bool {
	if t == nil {
		return false
	}
	changed := false
	for k, v := range t.ptrs {
		if old, ok := s.ptrs[k]; !ok || v < old {
			s.ptrs[k] = v
			changed = true
		}
	}
	for k, v := range t.objs {
		if old, ok := s.objs[k]; !ok || v < old {
			s.objs[k] = v
			changed = true
		}
	}
	return changed
}

func (s *uafState) equalKeys(t *uafState) bool {
	if len(s.ptrs) != len(t.ptrs) || len(s.objs) != len(t.objs) {
		return false
	}
	for k, v := range t.ptrs {
		if old, ok := s.ptrs[k]; !ok || old != v {
			return false
		}
	}
	for k, v := range t.objs {
		if old, ok := s.objs[k]; !ok || old != v {
			return false
		}
	}
	return true
}

// uafRun carries one Run's dataflow state.
type uafRun struct {
	ctx  context.Context
	c    *Core
	prog *ir.Program
	in   map[ir.Loc]*uafState
}

// transfer applies the node at loc to a copy of s.
func (r *uafRun) transfer(loc ir.Loc, s *uafState) *uafState {
	st := r.prog.Node(loc).Stmt
	switch st.Op {
	case ir.OpNullify:
		out := s.clone()
		if st.Free {
			// The freed objects are whatever the pointer may reference
			// just before the free — the node's entry state.
			if objs, precise := r.c.PointsTo(r.ctx, st.Dst, loc); precise {
				for _, o := range objs {
					if old, ok := out.objs[o]; !ok || loc < old {
						out.objs[o] = loc
					}
				}
			}
			out.ptrs[st.Dst] = loc
		} else {
			// p = null: the pointer no longer dangles.
			delete(out.ptrs, st.Dst)
		}
		return out
	case ir.OpCopy:
		out := s.clone()
		if w, ok := out.ptrs[st.Src]; ok {
			out.ptrs[st.Dst] = w // the copy dangles too
		} else {
			delete(out.ptrs, st.Dst)
		}
		return out
	case ir.OpAddr, ir.OpLoad:
		if _, ok := s.ptrs[st.Dst]; ok {
			out := s.clone()
			delete(out.ptrs, st.Dst) // reassignment revives the pointer
			return out
		}
	}
	return s
}

// flowFunction propagates the state through one function from its entry
// state, updating r.in, and returns the states observed at call sites.
func (r *uafRun) flowFunction(f ir.FuncID, entry *uafState) map[ir.FuncID]*uafState {
	fn := r.prog.Func(f)
	callEntries := map[ir.FuncID]*uafState{}
	if r.in[fn.Entry] == nil {
		r.in[fn.Entry] = &uafState{ptrs: map[ir.VarID]ir.Loc{}, objs: map[ir.VarID]ir.Loc{}}
	}
	r.in[fn.Entry].join(entry)
	work := []ir.Loc{fn.Entry}
	for len(work) > 0 {
		loc := work[len(work)-1]
		work = work[:len(work)-1]
		out := r.transfer(loc, r.in[loc])
		n := r.prog.Node(loc)
		if n.Stmt.Op == ir.OpCall && n.Stmt.Callee != ir.NoFunc {
			cur := callEntries[n.Stmt.Callee]
			if cur == nil {
				cur = &uafState{ptrs: map[ir.VarID]ir.Loc{}, objs: map[ir.VarID]ir.Loc{}}
				callEntries[n.Stmt.Callee] = cur
			}
			cur.join(r.in[loc])
		}
		for _, succ := range n.Succs {
			cur := r.in[succ]
			if cur == nil {
				cur = &uafState{ptrs: map[ir.VarID]ir.Loc{}, objs: map[ir.VarID]ir.Loc{}}
				r.in[succ] = cur
				cur.join(out)
				work = append(work, succ)
				continue
			}
			if !cur.equalKeys(out) && cur.join(out) {
				work = append(work, succ)
			}
		}
	}
	return callEntries
}

// Run implements Pass.
func (p *UAFPass) Run(ctx context.Context, c *Core) ([]Diagnostic, error) {
	prefix := p.ThreadPrefix
	if prefix == "" {
		prefix = "thread_"
	}
	prog := c.Prog()
	var roots []ir.FuncID
	if prog.Entry != ir.NoFunc {
		roots = append(roots, prog.Entry)
	}
	for _, f := range prog.Funcs {
		if strings.HasPrefix(f.Name, prefix) {
			roots = append(roots, f.ID)
		}
	}

	var out []Diagnostic
	seen := map[string]bool{}
	for _, root := range roots {
		r := &uafRun{ctx: ctx, c: c, prog: prog, in: map[ir.Loc]*uafState{}}
		// Interprocedural fixpoint over entry states, mirroring the
		// lockset propagation (union where lockset intersects).
		entry := map[ir.FuncID]*uafState{
			root: {ptrs: map[ir.VarID]ir.Loc{}, objs: map[ir.VarID]ir.Loc{}},
		}
		for changed := true; changed; {
			changed = false
			funcs := make([]ir.FuncID, 0, len(entry))
			for f := range entry {
				funcs = append(funcs, f)
			}
			sort.Slice(funcs, func(i, j int) bool { return funcs[i] < funcs[j] })
			for _, f := range funcs {
				for callee, st := range r.flowFunction(f, entry[f]) {
					cur, ok := entry[callee]
					if !ok {
						cur = &uafState{ptrs: map[ir.VarID]ir.Loc{}, objs: map[ir.VarID]ir.Loc{}}
						entry[callee] = cur
						changed = true
					}
					if cur.join(st) {
						changed = true
					}
				}
			}
		}
		// Report against the converged states.
		funcs := make([]ir.FuncID, 0, len(entry))
		for f := range entry {
			funcs = append(funcs, f)
		}
		sort.Slice(funcs, func(i, j int) bool { return funcs[i] < funcs[j] })
		for _, f := range funcs {
			out = append(out, r.reportFunc(f, seen)...)
		}
	}
	return out, ctx.Err()
}

// reportFunc scans one function's reached nodes against the converged
// states and emits deduplicated diagnostics.
func (r *uafRun) reportFunc(f ir.FuncID, seen map[string]bool) []Diagnostic {
	prog := r.prog
	fn := prog.Func(f)
	var out []Diagnostic
	emit := func(d Diagnostic) {
		key := fmt.Sprintf("%s|%s|%d|%d", d.Rule, d.Subject, d.Loc, d.Related[0].Loc)
		if seen[key] {
			return
		}
		seen[key] = true
		out = append(out, d)
	}
	for _, loc := range fn.Nodes {
		st := r.in[loc]
		if st == nil {
			continue
		}
		n := prog.Node(loc)
		if n.Stmt.Op == ir.OpNullify && n.Stmt.Free {
			ptr := n.Stmt.Dst
			if w, ok := st.ptrs[ptr]; ok {
				emit(Diagnostic{
					Rule:     "double-free",
					Severity: SeverityError,
					Loc:      loc,
					Subject:  prog.VarName(ptr),
					Message: fmt.Sprintf("double free of %s: already freed at L%d",
						prog.VarName(ptr), w),
					Related: []Related{{Loc: w, Message: "first freed here"}},
				})
				continue
			}
			if objs, precise := r.c.PointsTo(r.ctx, ptr, loc); precise {
				if w, obj, ok := freedOverlap(objs, st.objs); ok {
					emit(Diagnostic{
						Rule:     "double-free",
						Severity: SeverityWarning,
						Loc:      loc,
						Subject:  prog.VarName(ptr),
						Message: fmt.Sprintf("double free through %s: object %s already freed at L%d",
							prog.VarName(ptr), prog.VarName(obj), w),
						Related: []Related{{Loc: w, Message: "first freed here"}},
					})
				}
			}
			continue
		}
		var ptr ir.VarID = ir.NoVar
		switch n.Stmt.Op {
		case ir.OpLoad:
			ptr = n.Stmt.Src
		case ir.OpStore:
			ptr = n.Stmt.Dst
		case ir.OpTouch:
			if n.Stmt.Src != ir.NoVar {
				ptr = n.Stmt.Src
			}
		}
		if ptr == ir.NoVar {
			continue
		}
		if w, ok := st.ptrs[ptr]; ok {
			emit(Diagnostic{
				Rule:     "use-after-free",
				Severity: SeverityError,
				Loc:      loc,
				Subject:  prog.VarName(ptr),
				Message: fmt.Sprintf("dereference of %s after free at L%d",
					prog.VarName(ptr), w),
				Related: []Related{{Loc: w, Message: "freed here"}},
			})
			continue
		}
		objs, precise := r.c.PointsTo(r.ctx, ptr, loc)
		if !precise || len(objs) == 0 {
			continue
		}
		if w, obj, ok := freedOverlap(objs, st.objs); ok {
			sev := SeverityWarning
			if allFreed(objs, st.objs) {
				sev = SeverityError
			}
			emit(Diagnostic{
				Rule:     "use-after-free",
				Severity: sev,
				Loc:      loc,
				Subject:  prog.VarName(ptr),
				Message: fmt.Sprintf("dereference of %s may reach object %s freed at L%d",
					prog.VarName(ptr), prog.VarName(obj), w),
				Related: []Related{{Loc: w, Message: "freed here"}},
			})
		}
	}
	return out
}

// freedOverlap finds the overlap of a value set with the freed objects,
// returning the earliest-witness freed object (ties broken by object
// id — objs is sorted).
func freedOverlap(objs []ir.VarID, freed map[ir.VarID]ir.Loc) (ir.Loc, ir.VarID, bool) {
	best := ir.VarID(0)
	var bestLoc ir.Loc
	found := false
	for _, o := range objs {
		w, ok := freed[o]
		if !ok {
			continue
		}
		if !found || w < bestLoc {
			found, bestLoc, best = true, w, o
		}
	}
	return bestLoc, best, found
}

func allFreed(objs []ir.VarID, freed map[ir.VarID]ir.Loc) bool {
	for _, o := range objs {
		if _, ok := freed[o]; !ok {
			return false
		}
	}
	return len(objs) > 0
}
