// Package check is the pluggable checker framework: the layer that
// turns the bootstrapped alias analysis into a static-analysis tool.
// The paper's whole point is that a scalable flow- and context-sensitive
// alias analysis unlocks *client* analyses (its motivating application
// is lockset-based race detection for drivers); this package gives those
// clients one shape.
//
// A Pass declares its name, the pointer/variable footprint it needs
// (lock pointers, dereferenced pointers, freed pointers), and a Run
// method that receives a demand-driven Core handle. The handle answers
// queries through the context-first core API: clusters solve lazily on
// first touch (single-flight EnsureCluster, warmed by the persistent
// result cache, so a cache-warm lint run is near-free), and a pass
// deadline that expires mid-solve degrades answers to the sound
// flow-insensitive fallback instead of blocking — the pass finishes and
// reports `incomplete`, never stalling the other passes.
//
// Every diagnostic carries a stable fingerprint — a hash of symbolic
// content (rule, function, statement text, subject), never raw
// locations — used for baseline suppression: a SARIF file from a
// previous run hides known findings, which makes the tool adoptable on
// a codebase with existing debt.
package check

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"time"

	"bootstrap/internal/cluster"
	"bootstrap/internal/core"
	"bootstrap/internal/ir"
	"bootstrap/internal/obs"
)

// Severity classifies a diagnostic; the names are SARIF levels.
type Severity uint8

const (
	// SeverityNote is informational.
	SeverityNote Severity = iota
	// SeverityWarning is a possible bug (may-analysis verdict).
	SeverityWarning
	// SeverityError is a definite (or definitely-reachable) bug.
	SeverityError
)

func (s Severity) String() string {
	switch s {
	case SeverityError:
		return "error"
	case SeverityWarning:
		return "warning"
	}
	return "note"
}

// Related is a secondary location attached to a diagnostic — a witness:
// the other access of a race, the first free of a double free, the
// conflicting acquisition of a lock-order inversion.
type Related struct {
	Loc     ir.Loc
	Message string
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Pass and Rule identify the check ("lockset"/"race",
	// "uaf"/"double-free", ...). Run fills Pass.
	Pass string
	Rule string

	Severity Severity
	// Loc anchors the finding; Func is the enclosing function's name.
	Loc  ir.Loc
	Func string
	// Subject names what the finding is about (the racy object, the
	// freed pointer, the lock pair) — part of the fingerprint, so two
	// findings at the same statement about different objects stay
	// distinct.
	Subject string
	Message string
	Related []Related

	// Fingerprint is the stable identity used for baseline suppression.
	// Passes may preset it (nullcheck uses Warning.Fingerprint so batch
	// and served output agree); Run computes it when empty.
	Fingerprint string

	// Snapshot is the serving snapshot that produced the finding
	// (stamped by aliasd's /check endpoint; zero in batch runs).
	Snapshot int64
}

// fingerprint hashes the diagnostic's symbolic content: rule, enclosing
// function, statement text and subject, plus each witness's statement
// text. Raw locations are excluded on purpose — fingerprints survive
// renumbering, reruns and reloads of the same source.
func (d *Diagnostic) fingerprint(prog *ir.Program) string {
	h := fnv.New64a()
	parts := []string{d.Pass, d.Rule, d.Func, prog.StmtString(d.Loc), d.Subject}
	for _, r := range d.Related {
		parts = append(parts, prog.StmtString(r.Loc))
	}
	for _, part := range parts {
		h.Write([]byte(part))
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Pass is one pluggable checker.
type Pass interface {
	// Name is the pass's stable identifier (flag values, /check
	// requests, SARIF rule prefixes).
	Name() string
	// Doc is a one-line description (SARIF rule metadata, -passes help).
	Doc() string
	// Footprint returns the pass's demand predicate: the variables whose
	// clusters the pass needs precise answers for. The driver unions the
	// selected passes' footprints into core.Config.Demand, so unrelated
	// clusters are never solved — the Lazy Pointer Analysis shape.
	Footprint(prog *ir.Program) func(*ir.Var) bool
	// Run executes the pass against the demand-driven handle. ctx
	// carries the per-pass deadline; queries degrade (soundly) rather
	// than block when it expires.
	Run(ctx context.Context, c *Core) ([]Diagnostic, error)
}

// All returns a fresh instance of every registered pass, in canonical
// order.
func All() []Pass {
	return []Pass{
		&LocksetPass{},
		&DeadlockPass{},
		&NullcheckPass{},
		&UAFPass{},
	}
}

// Lookup resolves a pass name ("lockset", "deadlock", "nullcheck",
// "uaf") to a fresh pass instance.
func Lookup(name string) (Pass, bool) {
	for _, p := range All() {
		if p.Name() == name {
			return p, true
		}
	}
	return nil, false
}

// Select resolves a comma-separated pass list ("all" or empty = every
// pass) to pass instances.
func Select(names string) ([]Pass, error) {
	if names == "" || names == "all" {
		return All(), nil
	}
	var out []Pass
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		p, ok := Lookup(name)
		if !ok {
			return nil, fmt.Errorf("check: unknown pass %q", name)
		}
		out = append(out, p)
	}
	return out, nil
}

// DemandFor unions the passes' footprints into one demand predicate for
// core.Config.Demand: only clusters containing at least one variable
// some pass cares about are selected (and, in Lazy mode, solvable).
func DemandFor(prog *ir.Program, passes []Pass) func(*ir.Var) bool {
	preds := make([]func(*ir.Var) bool, len(passes))
	for i, p := range passes {
		preds[i] = p.Footprint(prog)
	}
	return func(v *ir.Var) bool {
		for _, pred := range preds {
			if pred(v) {
				return true
			}
		}
		return false
	}
}

// Core is the demand-driven query handle a pass runs against. Every
// method answers through the context-first core API: cold clusters solve
// on first touch (bounded by the pass deadline in ctx), warm ones import
// from the result cache, and an expired deadline degrades answers to the
// sound flow-insensitive fallback.
type Core struct {
	a    *core.Analysis
	prog *ir.Program
}

// NewCore wraps an analysis for pass consumption. Exported for drivers
// that run a single pass outside Run (tests, ad-hoc tools).
func NewCore(a *core.Analysis) *Core {
	return &Core{a: a, prog: a.Prog}
}

// Analysis exposes the underlying analysis (cluster metadata, health).
func (c *Core) Analysis() *core.Analysis { return c.a }

// Prog returns the program under analysis.
func (c *Core) Prog() *ir.Program { return c.prog }

// PointsTo returns the objects p may reference at loc.
func (c *Core) PointsTo(ctx context.Context, p ir.VarID, loc ir.Loc) ([]ir.VarID, bool) {
	return c.a.PointsToContext(ctx, p, loc)
}

// MayAlias reports whether p and q may alias at loc.
func (c *Core) MayAlias(ctx context.Context, p, q ir.VarID, loc ir.Loc) (bool, bool) {
	return c.a.MayAliasContext(ctx, p, q, loc)
}

// MustAlias reports whether p and q must alias at loc.
func (c *Core) MustAlias(ctx context.Context, p, q ir.VarID, loc ir.Loc) (bool, bool) {
	return c.a.MustAliasContext(ctx, p, q, loc)
}

// DerefState resolves what a dereference of p at loc may observe.
func (c *Core) DerefState(ctx context.Context, p ir.VarID, loc ir.Loc) (objs []ir.VarID, mayNull, mayUninit, precise bool) {
	return c.a.DerefStateContext(ctx, p, loc)
}

// Reachable lists the functions reachable from the program entry.
func (c *Core) Reachable() []ir.FuncID {
	return c.a.CallGraph.Reachable(c.prog.Entry)
}

// Warm pre-solves every selected cluster containing a variable the
// predicate accepts — the footprint→cluster mapping made eager, so a
// pass's queries run against solved engines. It returns the number of
// clusters touched; an expired ctx leaves the remainder cold (queries
// then degrade per cluster).
func (c *Core) Warm(ctx context.Context, pred func(*ir.Var) bool) int {
	touched := 0
	for _, cl := range c.clustersFor(pred) {
		c.a.EnsureCluster(ctx, cl.ID)
		touched++
	}
	return touched
}

// clustersFor lists the analysis clusters containing at least one
// variable the predicate accepts.
func (c *Core) clustersFor(pred func(*ir.Var) bool) []*cluster.Cluster {
	var out []*cluster.Cluster
	for _, cl := range c.a.Clusters {
		for _, p := range cl.Pointers {
			if pred(c.prog.Var(p)) {
				out = append(out, cl)
				break
			}
		}
	}
	return out
}

// funcName names the function enclosing loc.
func (c *Core) funcName(loc ir.Loc) string {
	return c.prog.Func(c.prog.Node(loc).Fn).Name
}

// Options configures a Run.
type Options struct {
	// Passes to run; nil means All().
	Passes []Pass
	// PassTimeout is the per-pass deadline (0 = none). A pass whose
	// deadline expires mid-solve degrades its remaining queries through
	// the scheduler's ladder and reports Incomplete — it never blocks
	// the other passes.
	PassTimeout time.Duration
	// Baseline is a set of fingerprints to suppress (from a previous
	// run's SARIF; see ReadBaseline).
	Baseline map[string]bool
	// Source names the analyzed artifact in reports (SARIF artifact
	// URI); empty means "program.cpl".
	Source string
	// Snapshot stamps every diagnostic with a serving snapshot id
	// (aliasd); zero for batch runs.
	Snapshot int64

	Tracer  *obs.Tracer
	Metrics *obs.Metrics
}

// Result is one pass's outcome.
type Result struct {
	Pass string
	Doc  string
	// Diags are the unsuppressed findings, canonically sorted and
	// fingerprinted.
	Diags []Diagnostic
	// Suppressed counts baseline-hidden findings.
	Suppressed int
	// Incomplete reports the pass deadline expired: answers may have
	// degraded to flow-insensitive precision, so findings can be missing
	// (never spurious — degradation widens may-answers and withholds
	// must-answers).
	Incomplete bool
	Err        error
	Elapsed    time.Duration
}

// Report is a whole checker run.
type Report struct {
	Source   string
	Snapshot int64
	Results  []Result
}

// Diagnostics flattens the report's findings in pass order.
func (r *Report) Diagnostics() []Diagnostic {
	var out []Diagnostic
	for _, res := range r.Results {
		out = append(out, res.Diags...)
	}
	return out
}

// Fingerprints lists every finding's fingerprint, sorted.
func (r *Report) Fingerprints() []string {
	var out []string
	for _, d := range r.Diagnostics() {
		out = append(out, d.Fingerprint)
	}
	sort.Strings(out)
	return out
}

// Run executes the passes in parallel against one analysis, each on its
// own trace lane with its own deadline, and returns the combined report
// with results in the requested pass order.
func Run(ctx context.Context, a *core.Analysis, opts Options) *Report {
	if ctx == nil {
		ctx = context.Background()
	}
	passes := opts.Passes
	if passes == nil {
		passes = All()
	}
	if opts.Source == "" {
		opts.Source = "program.cpl"
	}
	c := NewCore(a)
	m := opts.Metrics
	rep := &Report{Source: opts.Source, Snapshot: opts.Snapshot, Results: make([]Result, len(passes))}

	var wg sync.WaitGroup
	for i, p := range passes {
		wg.Add(1)
		go func(i int, p Pass) {
			defer wg.Done()
			tid := obs.CheckTID(i)
			opts.Tracer.NameThread(tid, "check-"+p.Name())
			sp := opts.Tracer.Start("check", p.Name(), tid)
			pctx := ctx
			var cancel context.CancelFunc
			if opts.PassTimeout > 0 {
				pctx, cancel = context.WithTimeout(ctx, opts.PassTimeout)
				defer cancel()
			}
			start := time.Now()
			res := Result{Pass: p.Name(), Doc: p.Doc()}
			func() {
				// A buggy pass degrades only itself, like a faulting
				// cluster under the scheduler: the panic becomes the
				// pass's error.
				defer func() {
					if rec := recover(); rec != nil {
						res.Err = fmt.Errorf("check: pass %s panicked: %v", p.Name(), rec)
					}
				}()
				res.Diags, res.Err = p.Run(pctx, c)
			}()
			res.Elapsed = time.Since(start)
			res.Incomplete = pctx.Err() != nil ||
				errors.Is(res.Err, context.DeadlineExceeded) || errors.Is(res.Err, context.Canceled)
			finalize(&res, p.Name(), a.Prog, opts)
			m.Counter("check_pass_runs_total", "Checker pass executions.").Inc()
			m.Counter("check_findings_total", "Checker findings reported (post-baseline).").Add(int64(len(res.Diags)))
			m.Counter("check_suppressed_total", "Checker findings hidden by the baseline.").Add(int64(res.Suppressed))
			if res.Incomplete {
				m.Counter("check_incomplete_total", "Checker passes that out-ran their deadline.").Inc()
			}
			m.Histogram("check_pass_seconds", "Checker pass wall time.", obs.SecondsBuckets).
				Observe(res.Elapsed.Seconds())
			sp.Arg("findings", len(res.Diags)).Arg("incomplete", res.Incomplete).End()
			rep.Results[i] = res
		}(i, p)
	}
	wg.Wait()
	return rep
}

// finalize stamps, fingerprints, sorts, de-collides and baseline-filters
// one pass's findings.
func finalize(res *Result, pass string, prog *ir.Program, opts Options) {
	for i := range res.Diags {
		d := &res.Diags[i]
		d.Pass = pass
		d.Snapshot = opts.Snapshot
		if d.Func == "" {
			d.Func = prog.Func(prog.Node(d.Loc).Fn).Name
		}
		if d.Fingerprint == "" {
			d.Fingerprint = d.fingerprint(prog)
		}
	}
	sort.Slice(res.Diags, func(i, j int) bool {
		a, b := res.Diags[i], res.Diags[j]
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		if a.Loc != b.Loc {
			return a.Loc < b.Loc
		}
		if a.Subject != b.Subject {
			return a.Subject < b.Subject
		}
		if a.Fingerprint != b.Fingerprint {
			return a.Fingerprint < b.Fingerprint
		}
		return a.Message < b.Message
	})
	// Identical statements can collide (two `g = 1` in one function);
	// disambiguate deterministically so a baseline never hides a second
	// genuine finding behind the first's fingerprint.
	seen := map[string]int{}
	for i := range res.Diags {
		d := &res.Diags[i]
		seen[d.Fingerprint]++
		if n := seen[d.Fingerprint]; n > 1 {
			d.Fingerprint = fmt.Sprintf("%s-%d", d.Fingerprint, n)
		}
	}
	if len(opts.Baseline) > 0 {
		kept := res.Diags[:0]
		for _, d := range res.Diags {
			if opts.Baseline[d.Fingerprint] {
				res.Suppressed++
				continue
			}
			kept = append(kept, d)
		}
		res.Diags = kept
	}
}

// FormatText renders the report for humans, one finding per line,
// grouped by pass.
func FormatText(rep *Report) string {
	var b strings.Builder
	for _, res := range rep.Results {
		fmt.Fprintf(&b, "pass %s (%s): %d finding(s)", res.Pass, res.Doc, len(res.Diags))
		if res.Suppressed > 0 {
			fmt.Fprintf(&b, ", %d baseline-suppressed", res.Suppressed)
		}
		if res.Incomplete {
			b.WriteString(" [incomplete: deadline expired]")
		}
		if res.Err != nil {
			fmt.Fprintf(&b, " [error: %v]", res.Err)
		}
		b.WriteString("\n")
		for _, d := range res.Diags {
			fmt.Fprintf(&b, "  %s %s L%d (%s): %s [%s]\n",
				d.Severity, d.Rule, d.Loc, d.Func, d.Message, d.Fingerprint)
			for _, r := range d.Related {
				fmt.Fprintf(&b, "    related L%d: %s\n", r.Loc, r.Message)
			}
		}
	}
	return b.String()
}
