package check_test

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"bootstrap/internal/cache"
	"bootstrap/internal/check"
	"bootstrap/internal/core"
	"bootstrap/internal/frontend"
	"bootstrap/internal/synth"
)

// analyzeLazy builds the standard checker-driver analysis: lazy mode
// with the selected passes' union footprint as the demand predicate.
func analyzeLazy(t *testing.T, src string, passes []check.Pass, cfg core.Config) *core.Analysis {
	t.Helper()
	prog, err := frontend.LowerSource(src)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	cfg.Lazy = true
	cfg.Demand = check.DemandFor(prog, passes)
	a, err := core.AnalyzeProgram(prog, cfg)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return a
}

// found reports whether some diagnostic matches the seeded bug: same
// rule, message mentioning the seeded variable.
func found(diags []check.Diagnostic, bug synth.SeededBug) bool {
	for _, d := range diags {
		if d.Rule == bug.Rule && strings.Contains(d.Message, bug.Var) {
			return true
		}
	}
	return false
}

// TestLockHeavyRecall: every seeded bug in every lockheavy preset is
// found, and the correctly-guarded parts produce no findings.
func TestLockHeavyRecall(t *testing.T) {
	for _, w := range synth.LockHeavyWorkloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			src, bugs := synth.LockHeavy(w.Cfg)
			passes := check.All()
			a := analyzeLazy(t, src, passes, core.Config{})
			rep := check.Run(context.Background(), a, check.Options{Passes: passes})
			diags := rep.Diagnostics()
			for _, bug := range bugs {
				if !found(diags, bug) {
					t.Errorf("seeded %s on %s not found\n%s", bug.Rule, bug.Var, check.FormatText(rep))
				}
			}
			for _, res := range rep.Results {
				if res.Err != nil {
					t.Errorf("pass %s: %v", res.Pass, res.Err)
				}
				if res.Incomplete {
					t.Errorf("pass %s incomplete without a deadline", res.Pass)
				}
			}
			for _, d := range diags {
				if d.Rule == "race" && strings.Contains(d.Message, "race on gs") {
					t.Errorf("spurious race on a guarded counter: %s", d.Message)
				}
				if d.Rule == "null-deref" {
					t.Errorf("spurious null-deref in lockheavy: %s", d.Message)
				}
			}
		})
	}
}

// TestDeterministicFingerprints: two fresh runs over the same workload
// yield identical fingerprint sets, and a warm rerun against the same
// cache directory is a pure cache hit.
func TestDeterministicFingerprints(t *testing.T) {
	src, _ := synth.LockHeavy(synth.LockHeavyWorkloads()[0].Cfg)
	dir := t.TempDir()

	run := func() ([]string, cache.Stats) {
		c := cache.New(cache.Options{Dir: dir})
		passes := check.All()
		before := c.Stats()
		a := analyzeLazy(t, src, passes, core.Config{Cache: c})
		rep := check.Run(context.Background(), a, check.Options{Passes: passes})
		return rep.Fingerprints(), c.Stats().Sub(before)
	}

	cold, coldStats := run()
	warm, warmStats := run()
	if len(cold) == 0 {
		t.Fatal("no findings on a seeded workload")
	}
	if strings.Join(cold, ",") != strings.Join(warm, ",") {
		t.Errorf("fingerprint drift cold vs warm:\ncold: %v\nwarm: %v", cold, warm)
	}
	if coldStats.Misses == 0 {
		t.Errorf("cold run should miss the cache, stats %+v", coldStats)
	}
	if warmStats.Misses != 0 || warmStats.Hits == 0 {
		t.Errorf("warm run should be a pure cache hit, stats %+v", warmStats)
	}
}

// TestBaselineSuppression: a run's own SARIF baseline suppresses every
// finding of a rerun.
func TestBaselineSuppression(t *testing.T) {
	src, _ := synth.LockHeavy(synth.LockHeavyWorkloads()[0].Cfg)
	passes := check.All()
	a := analyzeLazy(t, src, passes, core.Config{})
	rep := check.Run(context.Background(), a, check.Options{Passes: passes})
	total := len(rep.Diagnostics())
	if total == 0 {
		t.Fatal("no findings to baseline")
	}

	var buf bytes.Buffer
	if err := check.WriteSARIF(&buf, rep); err != nil {
		t.Fatalf("sarif: %v", err)
	}
	baseline, err := check.ReadBaseline(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	if len(baseline) != total {
		t.Fatalf("baseline has %d fingerprints, want %d (collision?)", len(baseline), total)
	}

	rep2 := check.Run(context.Background(), a, check.Options{Passes: check.All(), Baseline: baseline})
	if n := len(rep2.Diagnostics()); n != 0 {
		t.Errorf("baseline left %d findings:\n%s", n, check.FormatText(rep2))
	}
	suppressed := 0
	for _, res := range rep2.Results {
		suppressed += res.Suppressed
	}
	if suppressed != total {
		t.Errorf("suppressed %d, want %d", suppressed, total)
	}
}

// TestSARIFShape validates the SARIF 2.1.0 required fields on a real
// report.
func TestSARIFShape(t *testing.T) {
	src, _ := synth.LockHeavy(synth.LockHeavyWorkloads()[0].Cfg)
	passes := check.All()
	a := analyzeLazy(t, src, passes, core.Config{})
	rep := check.Run(context.Background(), a, check.Options{Passes: passes, Source: "lockheavy_small.cpl"})

	var buf bytes.Buffer
	if err := check.WriteSARIF(&buf, rep); err != nil {
		t.Fatalf("sarif: %v", err)
	}
	var log map[string]any
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if v := log["version"]; v != "2.1.0" {
		t.Errorf("version = %v, want 2.1.0", v)
	}
	if _, ok := log["$schema"].(string); !ok {
		t.Error("missing $schema")
	}
	runs, ok := log["runs"].([]any)
	if !ok || len(runs) != 1 {
		t.Fatalf("runs = %v, want one run", log["runs"])
	}
	run := runs[0].(map[string]any)
	driver := run["tool"].(map[string]any)["driver"].(map[string]any)
	if driver["name"] != "aliaslint" {
		t.Errorf("driver name = %v", driver["name"])
	}
	rules := driver["rules"].([]any)
	if len(rules) == 0 {
		t.Error("no rules in driver metadata")
	}
	results, ok := run["results"].([]any)
	if !ok || len(results) == 0 {
		t.Fatal("no results")
	}
	ruleIDs := map[string]bool{}
	for _, r := range rules {
		ruleIDs[r.(map[string]any)["id"].(string)] = true
	}
	for _, raw := range results {
		res := raw.(map[string]any)
		if !ruleIDs[res["ruleId"].(string)] {
			t.Errorf("result ruleId %v not declared in driver rules", res["ruleId"])
		}
		switch res["level"] {
		case "note", "warning", "error":
		default:
			t.Errorf("bad level %v", res["level"])
		}
		if res["message"].(map[string]any)["text"] == "" {
			t.Error("empty message text")
		}
		locs := res["locations"].([]any)
		phys := locs[0].(map[string]any)["physicalLocation"].(map[string]any)
		if phys["artifactLocation"].(map[string]any)["uri"] != "lockheavy_small.cpl" {
			t.Errorf("artifact uri = %v", phys["artifactLocation"])
		}
		if phys["region"].(map[string]any)["startLine"].(float64) < 1 {
			t.Error("startLine must be 1-based")
		}
		fps := res["partialFingerprints"].(map[string]any)
		if fps[check.FingerprintKey] == "" {
			t.Error("missing partial fingerprint")
		}
	}
}

// TestPassDeadline: an expired pass deadline yields an incomplete (but
// not failed) result and never blocks the run.
func TestPassDeadline(t *testing.T) {
	src, _ := synth.LockHeavy(synth.LockHeavyWorkloads()[1].Cfg)
	passes := check.All()
	a := analyzeLazy(t, src, passes, core.Config{})
	rep := check.Run(context.Background(), a, check.Options{Passes: passes, PassTimeout: time.Nanosecond})
	for _, res := range rep.Results {
		if !res.Incomplete {
			t.Errorf("pass %s: want incomplete under a 1ns deadline", res.Pass)
		}
	}
}

// TestSelect covers the pass registry surface.
func TestSelect(t *testing.T) {
	all, err := check.Select("all")
	if err != nil || len(all) != len(check.All()) {
		t.Fatalf("Select(all) = %d passes, err %v", len(all), err)
	}
	two, err := check.Select("lockset, uaf")
	if err != nil || len(two) != 2 {
		t.Fatalf("Select(lockset, uaf) = %v, err %v", two, err)
	}
	if _, err := check.Select("nosuch"); err == nil {
		t.Fatal("Select(nosuch) should fail")
	}
	if _, ok := check.Lookup("deadlock"); !ok {
		t.Fatal("Lookup(deadlock) should succeed")
	}
}
