// Package intern provides hash-consing substrates for the analysis hot
// paths: dense-integer interning of comparable values and of int32
// sequences, plus a memo table for binary operators over interned IDs.
//
// Interning turns structural equality into integer equality (O(1) compare,
// no heap-allocated keys) and makes memoization of operators like
// condition conjunction a single map probe. The FSCS engine interns its
// constraint atoms, tokens and conditions through these tables; IDs are
// assigned densely in first-intern order, so a fixed interning schedule
// yields a fixed ID assignment (determinism within one table instance).
//
// Tables are NOT safe for concurrent use; each per-cluster engine owns its
// own tables, matching the engine's single-threaded discipline.
package intern

import (
	"encoding/binary"
	"math/bits"
)

// ID is a dense interned identifier. IDs count up from 0 in first-intern
// order within one table.
type ID = int32

// Table interns comparable values to dense IDs.
type Table[K comparable] struct {
	ids  map[K]ID
	vals []K
}

// NewTable returns an empty table with capacity hint n.
func NewTable[K comparable](n int) *Table[K] {
	return &Table[K]{ids: make(map[K]ID, n), vals: make([]K, 0, n)}
}

// ID interns v, assigning the next dense ID on first sight.
func (t *Table[K]) ID(v K) ID {
	if id, ok := t.ids[v]; ok {
		return id
	}
	id := ID(len(t.vals))
	t.ids[v] = id
	t.vals = append(t.vals, v)
	return id
}

// Lookup returns v's ID without interning.
func (t *Table[K]) Lookup(v K) (ID, bool) {
	id, ok := t.ids[v]
	return id, ok
}

// Value returns the value interned as id.
func (t *Table[K]) Value(id ID) K { return t.vals[id] }

// Len returns the number of distinct values interned.
func (t *Table[K]) Len() int { return len(t.vals) }

// SeqTable interns int32 sequences (e.g. sorted atom-ID lists) to dense
// IDs. The empty sequence always interns as ID 0.
type SeqTable struct {
	ids  map[string]ID
	vals [][]ID
}

// NewSeqTable returns an empty sequence table; the empty sequence is
// pre-interned as ID 0.
func NewSeqTable(n int) *SeqTable {
	t := &SeqTable{ids: make(map[string]ID, n), vals: make([][]ID, 0, n)}
	t.ids[""] = 0
	t.vals = append(t.vals, nil)
	return t
}

// seqKey encodes a sequence as a byte-string map key.
func seqKey(seq []ID) string {
	b := make([]byte, 4*len(seq))
	for i, v := range seq {
		binary.LittleEndian.PutUint32(b[4*i:], uint32(v))
	}
	return string(b)
}

// ID interns seq (copied; the caller may reuse its backing array).
func (t *SeqTable) ID(seq []ID) ID {
	if len(seq) == 0 {
		return 0
	}
	k := seqKey(seq)
	if id, ok := t.ids[k]; ok {
		return id
	}
	id := ID(len(t.vals))
	t.ids[k] = id
	t.vals = append(t.vals, append([]ID(nil), seq...))
	return id
}

// Value returns the sequence interned as id. The caller must not modify it.
func (t *SeqTable) Value(id ID) []ID { return t.vals[id] }

// Len returns the number of distinct sequences interned (≥ 1: the empty
// sequence).
func (t *SeqTable) Len() int { return len(t.vals) }

// PairMemo memoizes a binary operator over IDs: (a, b) -> result. The zero
// value is ready to use.
type PairMemo struct {
	m map[uint64]ID
}

func pairKey(a, b ID) uint64 { return uint64(uint32(a))<<32 | uint64(uint32(b)) }

// Get returns the memoized result for (a, b).
func (m *PairMemo) Get(a, b ID) (ID, bool) {
	v, ok := m.m[pairKey(a, b)]
	return v, ok
}

// Put records the result for (a, b).
func (m *PairMemo) Put(a, b, v ID) {
	if m.m == nil {
		m.m = make(map[uint64]ID, 64)
	}
	m.m[pairKey(a, b)] = v
}

// Len returns the number of memoized pairs.
func (m *PairMemo) Len() int { return len(m.m) }

// InsertSorted returns seq with v inserted in ascending order, reporting
// whether v was newly inserted (false if already present). The returned
// slice may share seq's backing array only when nothing was inserted.
func InsertSorted(seq []ID, v ID) ([]ID, bool) {
	lo, hi := 0, len(seq)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if seq[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(seq) && seq[lo] == v {
		return seq, false
	}
	out := make([]ID, 0, len(seq)+1)
	out = append(out, seq[:lo]...)
	out = append(out, v)
	out = append(out, seq[lo:]...)
	return out, true
}

// MergeSorted returns the deduplicated ascending merge of two sorted
// sequences. When one operand already contains the other, it is returned
// unchanged (no allocation).
func MergeSorted(a, b []ID) []ID {
	if subsetSorted(b, a) {
		return a
	}
	if subsetSorted(a, b) {
		return b
	}
	out := make([]ID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i, j = i+1, j+1
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// subsetSorted reports whether every element of a occurs in b (both
// ascending).
func subsetSorted(a, b []ID) bool {
	if len(a) > len(b) {
		return false
	}
	j := 0
	for _, v := range a {
		for j < len(b) && b[j] < v {
			j++
		}
		if j >= len(b) || b[j] != v {
			return false
		}
		j++
	}
	return true
}

// Pack2x32 packs two 32-bit values into one uint64 key — the idiom for
// integer-keyed caches like (variable, location) points-to memos.
func Pack2x32(hi, lo int32) uint64 {
	return uint64(uint32(hi))<<32 | uint64(uint32(lo))
}

// Unpack2x32 inverts Pack2x32.
func Unpack2x32(k uint64) (hi, lo int32) {
	return int32(uint32(k >> 32)), int32(uint32(k))
}

// NextPow2 rounds n up to a power of two (minimum 1). Ring buffers use it
// to keep index masking a single AND.
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}
