package intern

import (
	"math/rand"
	"testing"
)

func TestTableDenseIDs(t *testing.T) {
	tab := NewTable[string](4)
	a := tab.ID("a")
	b := tab.ID("b")
	if a != 0 || b != 1 {
		t.Fatalf("IDs not dense: a=%d b=%d", a, b)
	}
	if got := tab.ID("a"); got != a {
		t.Errorf("re-interning changed the ID: %d != %d", got, a)
	}
	if tab.Value(b) != "b" || tab.Len() != 2 {
		t.Errorf("Value/Len wrong: %q len=%d", tab.Value(b), tab.Len())
	}
	if _, ok := tab.Lookup("c"); ok {
		t.Error("Lookup of an un-interned value reported ok")
	}
}

func TestSeqTableEmptyIsZero(t *testing.T) {
	tab := NewSeqTable(4)
	if tab.ID(nil) != 0 || tab.ID([]ID{}) != 0 {
		t.Fatal("empty sequence must intern as 0")
	}
	s := tab.ID([]ID{3, 7})
	if s == 0 {
		t.Fatal("non-empty sequence interned as 0")
	}
	if got := tab.ID([]ID{3, 7}); got != s {
		t.Errorf("re-interning changed the ID: %d != %d", got, s)
	}
	if v := tab.Value(s); len(v) != 2 || v[0] != 3 || v[1] != 7 {
		t.Errorf("Value = %v", v)
	}
}

func TestSeqTableCopies(t *testing.T) {
	tab := NewSeqTable(4)
	buf := []ID{1, 2}
	id := tab.ID(buf)
	buf[0] = 99
	if v := tab.Value(id); v[0] != 1 {
		t.Error("SeqTable aliased the caller's buffer")
	}
}

func TestPairMemo(t *testing.T) {
	var m PairMemo
	if _, ok := m.Get(1, 2); ok {
		t.Fatal("empty memo reported a hit")
	}
	m.Put(1, 2, 42)
	m.Put(2, 1, 7)
	if v, ok := m.Get(1, 2); !ok || v != 42 {
		t.Errorf("Get(1,2) = %d,%v", v, ok)
	}
	if v, ok := m.Get(2, 1); !ok || v != 7 {
		t.Errorf("Get(2,1) = %d,%v (pair key must be order-sensitive)", v, ok)
	}
	// Negative IDs must not collide with positive ones.
	m.Put(-1, 0, 5)
	if v, ok := m.Get(-1, 0); !ok || v != 5 {
		t.Errorf("Get(-1,0) = %d,%v", v, ok)
	}
}

func TestInsertSorted(t *testing.T) {
	seq := []ID{2, 5, 9}
	out, added := InsertSorted(seq, 5)
	if added || len(out) != 3 {
		t.Errorf("inserting a present element: %v added=%v", out, added)
	}
	out, added = InsertSorted(seq, 7)
	want := []ID{2, 5, 7, 9}
	if !added || len(out) != 4 {
		t.Fatalf("InsertSorted = %v added=%v", out, added)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("InsertSorted = %v, want %v", out, want)
		}
	}
	if out, added = InsertSorted(nil, 3); !added || len(out) != 1 || out[0] != 3 {
		t.Errorf("InsertSorted(nil, 3) = %v added=%v", out, added)
	}
}

func TestMergeSortedSubsetsShareBacking(t *testing.T) {
	a := []ID{1, 2, 3}
	b := []ID{2, 3}
	if got := MergeSorted(a, b); &got[0] != &a[0] {
		t.Error("merging a superset should return it unchanged")
	}
	if got := MergeSorted(b, a); &got[0] != &a[0] {
		t.Error("merging into a superset should return it unchanged")
	}
	got := MergeSorted([]ID{1, 4}, []ID{2, 4, 8})
	want := []ID{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("MergeSorted = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MergeSorted = %v, want %v", got, want)
		}
	}
}

func TestMergeSortedRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		set := map[ID]bool{}
		mk := func() []ID {
			var s []ID
			for v := ID(0); v < 30; v++ {
				if rng.Intn(3) == 0 {
					s = append(s, v)
				}
			}
			return s
		}
		a, b := mk(), mk()
		for _, v := range a {
			set[v] = true
		}
		for _, v := range b {
			set[v] = true
		}
		got := MergeSorted(a, b)
		if len(got) != len(set) {
			t.Fatalf("merge of %v and %v = %v (want %d elems)", a, b, got, len(set))
		}
		for i, v := range got {
			if !set[v] || (i > 0 && got[i-1] >= v) {
				t.Fatalf("merge of %v and %v = %v: bad element order", a, b, got)
			}
		}
	}
}

func TestPack2x32RoundTrip(t *testing.T) {
	for _, pair := range [][2]int32{{0, 0}, {1, -1}, {-5, 7}, {1 << 30, -(1 << 30)}} {
		hi, lo := Unpack2x32(Pack2x32(pair[0], pair[1]))
		if hi != pair[0] || lo != pair[1] {
			t.Errorf("round trip of %v = (%d, %d)", pair, hi, lo)
		}
	}
	if Pack2x32(0, -1) == Pack2x32(-1, 0) {
		t.Error("hi/lo must not collide")
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1023: 1024, 1024: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}
