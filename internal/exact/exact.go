// Package exact is a ground-truth oracle for small programs: it enumerates
// the execution paths of an IR program (with bounded loop unrolling, call
// depth and path count) under the IR's concrete semantics and records the
// exact points-to facts at every visited location. Tests use it to verify
// the soundness lattice
//
//	exact ⊆ FSCS ⊆ Andersen ⊆ Steensgaard-partition
//
// on randomly generated programs.
//
// The oracle interprets the IR's flat store — every variable, including
// locals, is a single program-wide cell — which is exactly the semantics
// the analyses are defined over (the paper's locals are summarized
// context-insensitively the same way).
package exact

import (
	"sort"

	"bootstrap/internal/ir"
)

// Options bound the exploration.
type Options struct {
	MaxNodeVisits int // per node per path (loop/recursion unrolling); default 3
	MaxCallDepth  int // default 8
	MaxPaths      int // default 20000
	MaxSteps      int // per path; default 4000
}

func (o *Options) fill() {
	if o.MaxNodeVisits <= 0 {
		o.MaxNodeVisits = 3
	}
	if o.MaxCallDepth <= 0 {
		o.MaxCallDepth = 8
	}
	if o.MaxPaths <= 0 {
		o.MaxPaths = 20000
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 4000
	}
}

// valKind distinguishes concrete pointer values.
type valKind uint8

const (
	vUninit valKind = iota
	vNull
	vAddr
)

type value struct {
	kind valKind
	obj  ir.VarID
}

type ptsKey struct {
	v   ir.VarID
	loc ir.Loc
}

// Result holds the recorded facts.
type Result struct {
	prog  *ir.Program
	pts   map[ptsKey]map[ir.VarID]bool
	alias map[aliasKey]bool

	// Paths is the number of complete paths explored.
	Paths int
	// Truncated reports whether any bound was hit; if so the facts are a
	// subset of the true facts and only ⊆ comparisons are meaningful
	// (which is all the soundness tests need).
	Truncated bool
}

// PointsTo returns the objects v held at loc on some explored path.
func (r *Result) PointsTo(v ir.VarID, loc ir.Loc) []ir.VarID {
	m := r.pts[ptsKey{v: v, loc: loc}]
	out := make([]ir.VarID, 0, len(m))
	for o := range m {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MayAlias reports whether p and q held the same object at loc on some
// explored path. (Exact per-path correlation: both values are recorded
// from the same state.)
func (r *Result) MayAlias(p, q ir.VarID, loc ir.Loc) bool {
	// Recorded per state below via the alias table.
	return r.alias[aliasKey{p: p, q: q, loc: loc}] || r.alias[aliasKey{p: q, q: p, loc: loc}]
}

type aliasKey struct {
	p, q ir.VarID
	loc  ir.Loc
}

type explorer struct {
	prog *ir.Program
	opt  Options
	res  *Result

	paths int
	done  bool
}

// frame is one call-stack entry: where to resume in the caller.
type frame struct {
	resume []ir.Loc
}

// Explore runs the bounded path enumeration from the program entry.
func Explore(p *ir.Program, opt Options) *Result {
	opt.fill()
	res := &Result{
		prog:  p,
		pts:   map[ptsKey]map[ir.VarID]bool{},
		alias: map[aliasKey]bool{},
	}
	ex := &explorer{prog: p, opt: opt, res: res}
	if p.Entry == ir.NoFunc {
		return res
	}
	store := make([]value, p.NumVars())
	visits := map[ir.Loc]int{}
	ex.step(p.Func(p.Entry).Entry, store, nil, visits, 0)
	res.Paths = ex.paths
	return res
}

func cloneStore(s []value) []value {
	c := make([]value, len(s))
	copy(c, s)
	return c
}

func cloneVisits(v map[ir.Loc]int) map[ir.Loc]int {
	c := make(map[ir.Loc]int, len(v))
	for k, n := range v {
		c[k] = n
	}
	return c
}

// record notes every pointer-valued variable at loc, and the alias pairs
// among variables holding the same object.
func (ex *explorer) record(loc ir.Loc, store []value) {
	byObj := map[ir.VarID][]ir.VarID{}
	for v, val := range store {
		if val.kind != vAddr {
			continue
		}
		k := ptsKey{v: ir.VarID(v), loc: loc}
		m := ex.res.pts[k]
		if m == nil {
			m = map[ir.VarID]bool{}
			ex.res.pts[k] = m
		}
		m[val.obj] = true
		byObj[val.obj] = append(byObj[val.obj], ir.VarID(v))
	}
	for _, vs := range byObj {
		for i := 0; i < len(vs); i++ {
			for j := i + 1; j < len(vs); j++ {
				ex.res.alias[aliasKey{p: vs[i], q: vs[j], loc: loc}] = true
			}
		}
	}
}

// step executes the node at loc and recurses over successors.
func (ex *explorer) step(loc ir.Loc, store []value, stack []frame, visits map[ir.Loc]int, steps int) {
	if ex.done {
		return
	}
	if steps > ex.opt.MaxSteps {
		ex.res.Truncated = true
		ex.endPath()
		return
	}
	if visits[loc] >= ex.opt.MaxNodeVisits {
		ex.res.Truncated = true
		ex.endPath()
		return
	}
	visits[loc]++
	ex.record(loc, store)

	n := ex.prog.Node(loc)
	st := n.Stmt
	switch st.Op {
	case ir.OpCopy:
		store[st.Dst] = store[st.Src]
	case ir.OpAddr:
		store[st.Dst] = value{kind: vAddr, obj: st.Src}
	case ir.OpNullify:
		store[st.Dst] = value{kind: vNull}
	case ir.OpLoad:
		if sv := store[st.Src]; sv.kind == vAddr {
			store[st.Dst] = store[sv.obj]
		} else {
			store[st.Dst] = value{kind: vUninit}
		}
	case ir.OpStore:
		if dv := store[st.Dst]; dv.kind == vAddr {
			store[dv.obj] = store[st.Src]
		}
	case ir.OpCall:
		if st.Callee != ir.NoFunc {
			if len(stack) >= ex.opt.MaxCallDepth {
				ex.res.Truncated = true
				ex.endPath()
				return
			}
			callee := ex.prog.Func(st.Callee)
			newStack := append(append([]frame(nil), stack...), frame{resume: n.Succs})
			ex.step(callee.Entry, store, newStack, visits, steps+1)
			return
		}
		// Undevirtualized indirect call: skip (no targets known).
	case ir.OpAssumeEq:
		a, b := store[st.Dst], store[st.Src]
		if a.kind != vUninit && b.kind != vUninit && (a.kind != b.kind || a.obj != b.obj) {
			return // provably unequal: this arm is infeasible
		}
	case ir.OpAssumeNeq:
		a, b := store[st.Dst], store[st.Src]
		if a.kind != vUninit && b.kind != vUninit && a.kind == b.kind && a.obj == b.obj {
			return // provably equal: this arm is infeasible
		}
	case ir.OpRet:
		if len(stack) > 0 {
			top := stack[len(stack)-1]
			rest := stack[:len(stack)-1]
			ex.branch(top.resume, store, rest, visits, steps)
			return
		}
		ex.endPath()
		return
	}
	if len(n.Succs) == 0 {
		ex.endPath()
		return
	}
	ex.branch(n.Succs, store, stack, visits, steps)
}

// branch explores each successor with copied state (beyond the first).
func (ex *explorer) branch(succs []ir.Loc, store []value, stack []frame, visits map[ir.Loc]int, steps int) {
	for i, s := range succs {
		if ex.done {
			return
		}
		if i == len(succs)-1 {
			ex.step(s, store, stack, visits, steps+1)
		} else {
			ex.step(s, cloneStore(store), stack, cloneVisits(visits), steps+1)
		}
	}
}

func (ex *explorer) endPath() {
	ex.paths++
	if ex.paths >= ex.opt.MaxPaths {
		ex.res.Truncated = true
		ex.done = true
	}
}
