package exact

import (
	"math/rand"
	"testing"

	"bootstrap/internal/andersen"
	"bootstrap/internal/callgraph"
	"bootstrap/internal/cluster"
	"bootstrap/internal/frontend"
	"bootstrap/internal/fscs"
	"bootstrap/internal/ir"
	"bootstrap/internal/oneflow"
	"bootstrap/internal/steens"
	"bootstrap/internal/synth"
)

func lower(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := frontend.LowerSource(src)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p
}

func v(t *testing.T, p *ir.Program, name string) ir.VarID {
	t.Helper()
	id, ok := p.VarByName[name]
	if !ok {
		t.Fatalf("no variable %q", name)
	}
	return id
}

func TestStraightLine(t *testing.T) {
	p := lower(t, `
		int a, b;
		int *x;
		void main() {
			x = &a;
			x = &b;
		}
	`)
	r := Explore(p, Options{})
	exit := p.Func(p.Entry).Exit
	pts := r.PointsTo(v(t, p, "x"), exit)
	if len(pts) != 1 || p.VarName(pts[0]) != "b" {
		t.Errorf("exact pts(x at exit) = %v, want [b]", pts)
	}
	if r.Truncated {
		t.Error("straight-line program should not truncate")
	}
	if r.Paths != 1 {
		t.Errorf("Paths = %d, want 1", r.Paths)
	}
}

func TestBranchesExplored(t *testing.T) {
	p := lower(t, `
		int a, b;
		int *x;
		void main() {
			if (*) { x = &a; } else { x = &b; }
		}
	`)
	r := Explore(p, Options{})
	exit := p.Func(p.Entry).Exit
	pts := r.PointsTo(v(t, p, "x"), exit)
	if len(pts) != 2 {
		t.Errorf("exact pts(x) = %v, want both a and b", pts)
	}
	if r.Paths != 2 {
		t.Errorf("Paths = %d, want 2", r.Paths)
	}
}

func TestAliasRecording(t *testing.T) {
	p := lower(t, `
		int a;
		int *x, *y;
		void main() {
			x = &a;
			y = x;
		}
	`)
	r := Explore(p, Options{})
	exit := p.Func(p.Entry).Exit
	if !r.MayAlias(v(t, p, "x"), v(t, p, "y"), exit) {
		t.Error("x and y alias at exit")
	}
}

func TestLoadStoreSemantics(t *testing.T) {
	p := lower(t, `
		int a, b;
		int *x, *l;
		int **px;
		void main() {
			x = &a;
			px = &x;
			*px = &b;
			l = *px;
		}
	`)
	r := Explore(p, Options{})
	exit := p.Func(p.Entry).Exit
	pts := r.PointsTo(v(t, p, "l"), exit)
	if len(pts) != 1 || p.VarName(pts[0]) != "b" {
		t.Errorf("exact pts(l) = %v, want [b]", pts)
	}
}

func TestCallsAndReturns(t *testing.T) {
	p := lower(t, `
		int a;
		int *g;
		int *mk() { return &a; }
		void main() { g = mk(); }
	`)
	r := Explore(p, Options{})
	exit := p.Func(p.Entry).Exit
	pts := r.PointsTo(v(t, p, "g"), exit)
	if len(pts) != 1 || p.VarName(pts[0]) != "a" {
		t.Errorf("exact pts(g) = %v, want [a]", pts)
	}
}

func TestLoopTruncation(t *testing.T) {
	p := lower(t, `
		int a;
		int *x;
		void main() {
			while (*) { x = &a; }
		}
	`)
	r := Explore(p, Options{MaxNodeVisits: 2})
	if !r.Truncated {
		t.Error("unbounded loop must truncate")
	}
	exit := p.Func(p.Entry).Exit
	if len(r.PointsTo(v(t, p, "x"), exit)) != 1 {
		t.Error("loop body effect not observed")
	}
}

func TestRecursionBounded(t *testing.T) {
	p := lower(t, `
		int a;
		int *g;
		void rec() { rec(); g = &a; }
		void main() { rec(); }
	`)
	r := Explore(p, Options{MaxCallDepth: 4})
	if !r.Truncated {
		t.Error("infinite recursion must truncate")
	}
}

// analysisBundle runs every analysis on one program.
type analysisBundle struct {
	prog *ir.Program
	sa   *steens.Analysis
	aa   *andersen.Analysis
	of   *oneflow.Analysis
	eng  *fscs.Engine
}

func analyzeAll(t *testing.T, src string) *analysisBundle {
	t.Helper()
	p := lower(t, src)
	sa := steens.Analyze(p)
	if frontend.HasIndirectCalls(p) {
		if err := frontend.Devirtualize(p, func(_ ir.Loc, fp ir.VarID) []ir.FuncID {
			return sa.Targets(fp)
		}); err != nil {
			t.Fatalf("devirtualize: %v", err)
		}
		sa = steens.Analyze(p)
	}
	aa := andersen.Analyze(p)
	cg := callgraph.Build(p)
	whole := cluster.BuildWhole(p, sa)
	eng := fscs.NewEngine(p, cg, sa, whole, fscs.WithFallback(aa), fscs.WithBudget(2_000_000))
	return &analysisBundle{prog: p, sa: sa, aa: aa, of: oneflow.AnalyzeWith(p, sa), eng: eng}
}

// checkSoundnessLattice verifies exact ⊆ FSCS ⊆(values) Andersen ⊆
// Steensgaard-partition on sampled locations.
func checkSoundnessLattice(t *testing.T, src string) {
	b := analyzeAll(t, src)
	r := Explore(b.prog, Options{MaxNodeVisits: 3, MaxPaths: 4000, MaxSteps: 3000})

	// Sample: the exit of every function plus every 7th node.
	var locs []ir.Loc
	for _, f := range b.prog.Funcs {
		locs = append(locs, f.Exit)
	}
	for i := 0; i < len(b.prog.Nodes); i += 7 {
		locs = append(locs, ir.Loc(i))
	}

	for _, loc := range locs {
		for vid := 0; vid < b.prog.NumVars(); vid++ {
			pv := ir.VarID(vid)
			exactPts := r.PointsTo(pv, loc)
			if len(exactPts) == 0 {
				continue
			}
			// Andersen must cover exact.
			for _, o := range exactPts {
				if !b.aa.PointsToSet(pv).Has(int(o)) {
					t.Errorf("UNSOUND Andersen: %s may point to %s at L%d but Andersen misses it\nprogram:\n%s",
						b.prog.VarName(pv), b.prog.VarName(o), loc, src)
					return
				}
			}
			// One-Flow must cover exact too (it sits between Steensgaard
			// and Andersen in the cascade).
			for _, o := range exactPts {
				found := false
				for _, oo := range b.of.PointsToVars(pv) {
					if oo == o {
						found = true
					}
				}
				if !found {
					t.Errorf("UNSOUND One-Flow: %s may point to %s at L%d but One-Flow misses it\nprogram:\n%s",
						b.prog.VarName(pv), b.prog.VarName(o), loc, src)
					return
				}
			}
			// FSCS values must cover exact (or flag imprecision).
			objs, precise := b.eng.Values(pv, loc)
			if precise {
				have := map[ir.VarID]bool{}
				for _, o := range objs {
					have[o] = true
				}
				for _, o := range exactPts {
					if !have[o] {
						t.Errorf("UNSOUND FSCS: %s may point to %s at L%d (exact) but Values misses it\nprogram:\n%s",
							b.prog.VarName(pv), b.prog.VarName(o), loc, src)
						return
					}
				}
			}
			// Steensgaard: exact pointees must be in the Steensgaard
			// points-to set.
			for _, o := range exactPts {
				found := false
				for _, so := range b.sa.PointsToVars(pv) {
					if so == o {
						found = true
					}
				}
				if !found {
					t.Errorf("UNSOUND Steensgaard: %s -> %s at L%d missed\nprogram:\n%s",
						b.prog.VarName(pv), b.prog.VarName(o), loc, src)
					return
				}
			}
		}
		// Alias soundness: exact alias pairs must be FSCS may-aliases and
		// share a Steensgaard partition.
		for i := 0; i < b.prog.NumVars(); i++ {
			for j := i + 1; j < b.prog.NumVars(); j++ {
				pi, pj := ir.VarID(i), ir.VarID(j)
				if !r.MayAlias(pi, pj, loc) {
					continue
				}
				if !b.sa.SamePartition(pi, pj) {
					t.Errorf("UNSOUND partitioning: %s and %s alias at L%d but are in different partitions\nprogram:\n%s",
						b.prog.VarName(pi), b.prog.VarName(pj), loc, src)
					return
				}
				if !b.eng.MayAlias(pi, pj, loc) {
					t.Errorf("UNSOUND FSCS MayAlias: %s and %s alias at L%d (exact)\nprogram:\n%s",
						b.prog.VarName(pi), b.prog.VarName(pj), loc, src)
					return
				}
				// The forward Q-phase (Algorithm 3 as presented) must be
				// sound too.
				foundFwd := false
				for _, q := range b.eng.ForwardAliases(pi, loc) {
					if q == pj {
						foundFwd = true
					}
				}
				if !foundFwd {
					// The forward phase only reports holders of concrete
					// object values; pairs aliased via unknown-value
					// fallback are covered by MayAlias above.
					if objs, ok := b.eng.Values(pi, loc); ok && len(objs) > 0 {
						if objsJ, okJ := b.eng.Values(pj, loc); okJ && len(objsJ) > 0 {
							t.Errorf("UNSOUND forward Q-phase: %s and %s alias at L%d (exact)\nprogram:\n%s",
								b.prog.VarName(pi), b.prog.VarName(pj), loc, src)
							return
						}
					}
				}
			}
		}
	}
}

// TestSoundnessLatticeFixed checks the lattice on hand-written corner
// cases.
func TestSoundnessLatticeFixed(t *testing.T) {
	cases := []string{
		`int a, b; int *x, *y; int **px;
		 void main() { x = &a; y = &b; px = &x; *px = y; y = *px; }`,
		`int *p; int a; void main() { p = &a; *p = p; }`,
		`int a, b; int *x;
		 void main() { x = &a; if (*) { x = &b; free(x); } }`,
		`int a; int *g;
		 void set(int *v) { g = v; }
		 void main() { set(&a); set(g); }`,
		`int a, b; int *x, *y; int **q;
		 void main() { q = &x; while (*) { *q = &a; q = &y; } x = *q; }`,
	}
	for _, src := range cases {
		checkSoundnessLattice(t, src)
	}
}

// TestSoundnessLatticeRandom generates random programs and checks the
// lattice — the repository's central property test.
func TestSoundnessLatticeRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short mode")
	}
	cfg := synth.DefaultRandomConfig()
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		src := synth.RandomSource(rng, cfg)
		checkSoundnessLattice(t, src)
		if t.Failed() {
			t.Fatalf("lattice violated at seed %d", seed)
		}
	}
}

// TestSoundnessLatticeRandomRecursive stresses recursion handling.
func TestSoundnessLatticeRandomRecursive(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short mode")
	}
	cfg := synth.DefaultRandomConfig()
	cfg.Recursion = true
	cfg.Funcs = 3
	for seed := int64(100); seed < 115; seed++ {
		rng := rand.New(rand.NewSource(seed))
		src := synth.RandomSource(rng, cfg)
		checkSoundnessLattice(t, src)
		if t.Failed() {
			t.Fatalf("lattice violated at seed %d", seed)
		}
	}
}
