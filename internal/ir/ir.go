// Package ir defines the normalized intermediate representation that every
// analysis in this repository operates on. Per Remark 1 of the paper, all
// pointer statements are in one of four canonical forms — x = y, x = &y,
// *x = y, x = *y — plus x = null (free/deallocation), calls, and skips.
// Structures are flattened field-by-field by the frontend, heap allocations
// are abstract objects named by their allocation site, and each function has
// an explicit control-flow graph with globally unique statement locations.
package ir

import (
	"fmt"
	"strings"
)

// VarID identifies an abstract memory object (variable, temp, heap object,
// function value, …) within a Program. NoVar means "none".
type VarID int32

// FuncID identifies a function within a Program. NoFunc means "none".
type FuncID int32

// Loc is a globally unique statement location (an index into Program.Nodes).
// The paper's "program location l" corresponds to a Loc.
type Loc int32

// Sentinel values.
const (
	NoVar  VarID  = -1
	NoFunc FuncID = -1
	NoLoc  Loc    = -1
)

// VarKind classifies abstract memory objects.
type VarKind uint8

// Variable kinds.
const (
	KindGlobal VarKind = iota // file-scope variable
	KindLocal                 // function-local variable
	KindParam                 // function formal parameter
	KindTemp                  // frontend-introduced temporary
	KindHeap                  // abstract heap object alloc@loc
	KindRet                   // per-function return-value variable
	KindFunc                  // a function used as a value (function pointer target)
)

var varKindNames = [...]string{"global", "local", "param", "temp", "heap", "ret", "func"}

func (k VarKind) String() string { return varKindNames[k] }

// Var is one abstract memory object.
type Var struct {
	ID   VarID
	Name string // qualified: "g", "main.p", "main.$t1", "alloc@12", "s.f"
	Kind VarKind
	Fn   FuncID // owning function, or NoFunc for globals/heap/functions
	// IsLock marks variables declared with the `lock` type; the lockset
	// application selects clusters containing lock pointers.
	IsLock bool
}

// Op is the operation of a canonical IR statement.
type Op uint8

// Statement operations.
const (
	OpSkip    Op = iota // no pointer effect (entry/exit/branch/temp join)
	OpCopy              // Dst = Src
	OpAddr              // Dst = &Src
	OpLoad              // Dst = *Src
	OpStore             // *Dst = Src
	OpNullify           // Dst = null (kills Dst; from free() and explicit null)
	OpCall              // call site; see Stmt.Callee / Stmt.FPtr / Stmt.Args
	OpRet               // function exit marker
	// OpTouch records a non-pointer memory access for client analyses
	// (e.g. race detection): Dst is a directly written variable (NoVar if
	// none); Src is a pointer written *through* (the objects it may
	// reference are written; NoVar if none). Pointer analyses ignore it.
	OpTouch
	// OpAssumeEq / OpAssumeNeq mark branch arms guarded by a pointer
	// (in)equality test `Dst == Src` / `Dst != Src` — the optional path
	// sensitivity of Section 3: the FSCS walk records them as
	// same-target/different-target constraints (Definition 8) and weeds
	// out summary tuples whose constraints are refutable. Flow- and
	// context-insensitive analyses treat them as skips.
	OpAssumeEq
	OpAssumeNeq
)

var opNames = [...]string{"skip", "copy", "addr", "load", "store", "nullify", "call", "ret", "touch", "assume==", "assume!="}

func (o Op) String() string { return opNames[o] }

// Stmt is one canonical statement. Exactly the fields relevant to Op are
// meaningful.
type Stmt struct {
	Op  Op
	Dst VarID // Copy/Addr/Load/Nullify: lhs. Store: the pointer being stored through.
	Src VarID // Copy/Addr/Load/Store: rhs. Unused for Nullify.

	// Call fields. A direct call has Callee set; an indirect call has FPtr
	// (the variable holding the function pointer) set, with possible targets
	// resolved later by the call-graph builder.
	Callee FuncID
	FPtr   VarID
	Args   []VarID

	// Comment carries the original source text or position, for dumps only.
	Comment string

	// Free marks an OpNullify lowered from free(p) (paper, Remark 1:
	// free(p) is modeled as p = null). The flag has no effect on any
	// alias analysis — the nullify semantics are identical — but client
	// checkers (use-after-free, double-free) need to tell a deallocation
	// apart from an ordinary null assignment.
	Free bool
}

// Node is one CFG node: a statement at a location, with intraprocedural
// edges. Return-value binding nodes that follow a call node record the call
// they bind for (CallLoc) and the specific callee whose return variable they
// copy, so interprocedural traversals know which target a path took.
type Node struct {
	Loc   Loc
	Fn    FuncID
	Stmt  Stmt
	Succs []Loc
	Preds []Loc

	// CallLoc links a return-value binding node back to its call node, and
	// is NoLoc elsewhere.
	CallLoc Loc
}

// Func is one function: its formal parameters, return variable and CFG.
type Func struct {
	ID     FuncID
	Name   string
	Params []VarID
	Ret    VarID // the $ret variable; NoVar if the function never returns a value
	Entry  Loc
	Exit   Loc
	Nodes  []Loc // all nodes of this function, in creation order
}

// Program is a whole translation unit in IR form.
type Program struct {
	Vars  []*Var
	Funcs []*Func
	Nodes []*Node

	FuncByName map[string]FuncID
	VarByName  map[string]VarID

	// FuncValue maps a FuncID to the KindFunc variable representing that
	// function as a value (for function pointers), NoVar if never taken.
	FuncValue map[FuncID]VarID

	// Entry is the program entry function ("main" when present).
	Entry FuncID
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{
		FuncByName: make(map[string]FuncID),
		VarByName:  make(map[string]VarID),
		FuncValue:  make(map[FuncID]VarID),
		Entry:      NoFunc,
	}
}

// AddVar adds a variable with a unique qualified name and returns its ID.
// Adding a duplicate name panics: the frontend is responsible for
// qualification.
func (p *Program) AddVar(name string, kind VarKind, fn FuncID) VarID {
	if _, dup := p.VarByName[name]; dup {
		panic(fmt.Sprintf("ir: duplicate variable %q", name))
	}
	id := VarID(len(p.Vars))
	p.Vars = append(p.Vars, &Var{ID: id, Name: name, Kind: kind, Fn: fn})
	p.VarByName[name] = id
	return id
}

// Var returns the variable with the given ID.
func (p *Program) Var(id VarID) *Var { return p.Vars[id] }

// VarName returns the qualified name of id, or "<none>" for NoVar.
func (p *Program) VarName(id VarID) string {
	if id == NoVar {
		return "<none>"
	}
	return p.Vars[id].Name
}

// AddFunc adds an empty function and returns it. Entry/Exit nodes must be
// created by the caller (the frontend does this).
func (p *Program) AddFunc(name string) *Func {
	if _, dup := p.FuncByName[name]; dup {
		panic(fmt.Sprintf("ir: duplicate function %q", name))
	}
	id := FuncID(len(p.Funcs))
	f := &Func{ID: id, Name: name, Ret: NoVar, Entry: NoLoc, Exit: NoLoc}
	p.Funcs = append(p.Funcs, f)
	p.FuncByName[name] = id
	return f
}

// Func returns the function with the given ID.
func (p *Program) Func(id FuncID) *Func { return p.Funcs[id] }

// AddNode appends a statement node to fn's CFG and returns its location.
// No edges are added.
func (p *Program) AddNode(fn FuncID, s Stmt) Loc {
	loc := Loc(len(p.Nodes))
	n := &Node{Loc: loc, Fn: fn, Stmt: s, CallLoc: NoLoc}
	p.Nodes = append(p.Nodes, n)
	f := p.Funcs[fn]
	f.Nodes = append(f.Nodes, loc)
	return loc
}

// Node returns the node at loc.
func (p *Program) Node(loc Loc) *Node { return p.Nodes[loc] }

// AddEdge adds a CFG edge from → to. Duplicate edges are ignored.
func (p *Program) AddEdge(from, to Loc) {
	nf := p.Nodes[from]
	for _, s := range nf.Succs {
		if s == to {
			return
		}
	}
	nf.Succs = append(nf.Succs, to)
	p.Nodes[to].Preds = append(p.Nodes[to].Preds, from)
}

// NumVars returns the size of the abstract-object universe. The paper's
// "# pointers" column counts this universe.
func (p *Program) NumVars() int { return len(p.Vars) }

// StmtString renders the statement at loc for dumps and error messages.
func (p *Program) StmtString(loc Loc) string {
	n := p.Nodes[loc]
	s := n.Stmt
	switch s.Op {
	case OpSkip:
		if s.Comment != "" {
			return "skip // " + s.Comment
		}
		return "skip"
	case OpCopy:
		return fmt.Sprintf("%s = %s", p.VarName(s.Dst), p.VarName(s.Src))
	case OpAddr:
		return fmt.Sprintf("%s = &%s", p.VarName(s.Dst), p.VarName(s.Src))
	case OpLoad:
		return fmt.Sprintf("%s = *%s", p.VarName(s.Dst), p.VarName(s.Src))
	case OpStore:
		return fmt.Sprintf("*%s = %s", p.VarName(s.Dst), p.VarName(s.Src))
	case OpNullify:
		if s.Free {
			return fmt.Sprintf("free(%s)", p.VarName(s.Dst))
		}
		return fmt.Sprintf("%s = null", p.VarName(s.Dst))
	case OpCall:
		args := make([]string, len(s.Args))
		for i, a := range s.Args {
			args[i] = p.VarName(a)
		}
		callee := "<indirect:" + p.VarName(s.FPtr) + ">"
		if s.Callee != NoFunc {
			callee = p.Funcs[s.Callee].Name
		}
		return fmt.Sprintf("call %s(%s)", callee, strings.Join(args, ", "))
	case OpRet:
		return "return"
	case OpTouch:
		switch {
		case s.Dst != NoVar:
			return fmt.Sprintf("touch %s", p.VarName(s.Dst))
		case s.Src != NoVar:
			return fmt.Sprintf("touch *%s", p.VarName(s.Src))
		}
		return "touch"
	case OpAssumeEq:
		return fmt.Sprintf("assume %s == %s", p.VarName(s.Dst), p.VarName(s.Src))
	case OpAssumeNeq:
		return fmt.Sprintf("assume %s != %s", p.VarName(s.Dst), p.VarName(s.Src))
	}
	return "?"
}

// Dump renders the whole program, one function at a time, for debugging.
func (p *Program) Dump() string {
	var b strings.Builder
	for _, f := range p.Funcs {
		fmt.Fprintf(&b, "func %s(", f.Name)
		for i, prm := range f.Params {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(p.VarName(prm))
		}
		b.WriteString(")\n")
		for _, loc := range f.Nodes {
			n := p.Nodes[loc]
			fmt.Fprintf(&b, "  L%-4d %-40s ->", loc, p.StmtString(loc))
			for _, s := range n.Succs {
				fmt.Fprintf(&b, " L%d", s)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Validate checks structural invariants of the program: edge symmetry,
// location consistency, entry/exit presence, and operand validity. It
// returns the first violation found, or nil.
func (p *Program) Validate() error {
	for i, v := range p.Vars {
		if v.ID != VarID(i) {
			return fmt.Errorf("var %q: ID %d != index %d", v.Name, v.ID, i)
		}
	}
	for i, n := range p.Nodes {
		if n.Loc != Loc(i) {
			return fmt.Errorf("node at index %d has Loc %d", i, n.Loc)
		}
		if n.Fn < 0 || int(n.Fn) >= len(p.Funcs) {
			return fmt.Errorf("L%d: bad function %d", n.Loc, n.Fn)
		}
		checkVar := func(id VarID, what string) error {
			if id == NoVar {
				return fmt.Errorf("L%d: missing %s operand", n.Loc, what)
			}
			if int(id) >= len(p.Vars) {
				return fmt.Errorf("L%d: bad %s var %d", n.Loc, what, id)
			}
			return nil
		}
		switch n.Stmt.Op {
		case OpCopy, OpAddr, OpLoad, OpStore, OpAssumeEq, OpAssumeNeq:
			if err := checkVar(n.Stmt.Dst, "dst"); err != nil {
				return err
			}
			if err := checkVar(n.Stmt.Src, "src"); err != nil {
				return err
			}
		case OpNullify:
			if err := checkVar(n.Stmt.Dst, "dst"); err != nil {
				return err
			}
		case OpCall:
			if n.Stmt.Callee == NoFunc && n.Stmt.FPtr == NoVar {
				return fmt.Errorf("L%d: call with neither callee nor fptr", n.Loc)
			}
		}
		for _, s := range n.Succs {
			if int(s) >= len(p.Nodes) {
				return fmt.Errorf("L%d: bad successor L%d", n.Loc, s)
			}
			if !containsLoc(p.Nodes[s].Preds, n.Loc) {
				return fmt.Errorf("L%d -> L%d: missing back edge", n.Loc, s)
			}
			if p.Nodes[s].Fn != n.Fn {
				return fmt.Errorf("L%d -> L%d: cross-function CFG edge", n.Loc, s)
			}
		}
		for _, pr := range n.Preds {
			if !containsLoc(p.Nodes[pr].Succs, n.Loc) {
				return fmt.Errorf("L%d pred L%d: missing forward edge", n.Loc, pr)
			}
		}
	}
	for _, f := range p.Funcs {
		if f.Entry == NoLoc || f.Exit == NoLoc {
			return fmt.Errorf("func %s: missing entry or exit", f.Name)
		}
		for _, loc := range f.Nodes {
			if p.Nodes[loc].Fn != f.ID {
				return fmt.Errorf("func %s: node L%d belongs to another function", f.Name, loc)
			}
		}
	}
	return nil
}

func containsLoc(ls []Loc, x Loc) bool {
	for _, l := range ls {
		if l == x {
			return true
		}
	}
	return false
}
