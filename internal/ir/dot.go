package ir

import (
	"fmt"
	"strings"
)

// DotCFG renders the control-flow graphs of the program's functions in
// GraphViz DOT format, one cluster per function. Pass function IDs to
// restrict the output; with none, every function is rendered.
func (p *Program) DotCFG(fns ...FuncID) string {
	if len(fns) == 0 {
		for _, f := range p.Funcs {
			fns = append(fns, f.ID)
		}
	}
	var b strings.Builder
	b.WriteString("digraph cfg {\n")
	b.WriteString("\tnode [shape=box, fontname=\"monospace\", fontsize=10];\n")
	for _, id := range fns {
		f := p.Funcs[id]
		fmt.Fprintf(&b, "\tsubgraph cluster_%d {\n", id)
		fmt.Fprintf(&b, "\t\tlabel=%q;\n", f.Name)
		for _, loc := range f.Nodes {
			n := p.Nodes[loc]
			shape := ""
			switch {
			case loc == f.Entry || loc == f.Exit:
				shape = ", shape=ellipse"
			case n.Stmt.Op == OpCall:
				shape = ", shape=hexagon"
			}
			fmt.Fprintf(&b, "\t\tn%d [label=\"L%d: %s\"%s];\n", loc, loc, dotEscape(p.StmtString(loc)), shape)
		}
		for _, loc := range f.Nodes {
			for _, s := range p.Nodes[loc].Succs {
				style := ""
				if s < loc {
					style = " [style=dashed]" // back edge
				}
				fmt.Fprintf(&b, "\t\tn%d -> n%d%s;\n", loc, s, style)
			}
		}
		b.WriteString("\t}\n")
	}
	// Interprocedural call edges (dotted, across clusters).
	for _, id := range fns {
		f := p.Funcs[id]
		for _, loc := range f.Nodes {
			st := p.Nodes[loc].Stmt
			if st.Op == OpCall && st.Callee != NoFunc {
				callee := p.Funcs[st.Callee]
				if callee.Entry != NoLoc && containsFunc(fns, st.Callee) {
					fmt.Fprintf(&b, "\tn%d -> n%d [style=dotted, color=gray];\n", loc, callee.Entry)
				}
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func containsFunc(fns []FuncID, f FuncID) bool {
	for _, x := range fns {
		if x == f {
			return true
		}
	}
	return false
}

func dotEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, `"`, `\"`)
}
