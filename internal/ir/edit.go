package ir

// Program edits: the incremental front door. An Edit is a small,
// validated mutation of an existing Program — replace/delete/insert a
// statement, add a variable, add/remove/rebuild a function. Edits keep
// every existing VarID, FuncID and Loc stable (deletion tombstones nodes
// into skips; removal tombstones functions), which is what lets
// core.ApplyEdit compare the edited program against a previous analysis
// structurally: an untouched cluster's slice names exactly the same ids
// before and after.
//
// Diff(old, new) recovers an edit script between two independently
// lowered programs by matching functions and variables by name. It is
// best-effort by design: shapes Diff cannot express (a renamed or
// removed variable, a changed program entry) report ok=false and the
// caller falls back to analyzing the new program from scratch.

import (
	"fmt"
	"sort"
)

// EditKind discriminates Edit.
type EditKind uint8

const (
	// EditReplaceStmt swaps the statement at Loc for Stmt. The node, its
	// location and its CFG edges are unchanged.
	EditReplaceStmt EditKind = iota
	// EditDeleteStmt tombstones the statement at Loc into a skip.
	EditDeleteStmt
	// EditInsertAfter appends a new node holding Stmt and splices it
	// between Loc and Loc's former successors.
	EditInsertAfter
	// EditAddVar introduces a fresh variable (Name, VarKind, Fn).
	EditAddVar
	// EditAddFunc introduces a new function from Spec.
	EditAddFunc
	// EditRemoveFunc tombstones function Name: its body becomes skips and
	// every direct call to it becomes a skip. The FuncID (and the name)
	// remain allocated.
	EditRemoveFunc
	// EditRebuildFunc replaces function Name's body (and, if Spec names
	// them, its parameters and return variable) wholesale from Spec. Old
	// body nodes are tombstoned; new nodes are appended.
	EditRebuildFunc
)

func (k EditKind) String() string {
	switch k {
	case EditReplaceStmt:
		return "replace"
	case EditDeleteStmt:
		return "delete"
	case EditInsertAfter:
		return "insert"
	case EditAddVar:
		return "addvar"
	case EditAddFunc:
		return "addfunc"
	case EditRemoveFunc:
		return "removefunc"
	case EditRebuildFunc:
		return "rebuildfunc"
	}
	return fmt.Sprintf("editkind(%d)", uint8(k))
}

// FuncSpec describes a function body for EditAddFunc/EditRebuildFunc.
// Statement operands are VarIDs in the id-space of the program the edit
// script is applied to: Diff emits the EditAddVar edits first, so ids of
// to-be-created variables are their projected values (len(Vars)+i).
// Succs, CallLocs, Entry and Exit are indices into Stmts.
type FuncSpec struct {
	Name     string
	Params   []string // parameter variable names (resolved or created)
	Ret      string   // return variable name ("" = none)
	Stmts    []Stmt
	Succs    [][]int
	CallLocs []int // per-stmt local index of the owning call node, -1 = none
	Entry    int
	Exit     int
}

// Edit is one program mutation. Which fields matter depends on Kind; see
// the kind constants.
type Edit struct {
	Kind EditKind
	Loc  Loc     // ReplaceStmt/DeleteStmt target; InsertAfter anchor
	Stmt Stmt    // ReplaceStmt/InsertAfter payload
	Name string  // AddVar/RemoveFunc and Spec-less identification
	Var  VarKind // AddVar kind
	Fn   FuncID  // AddVar owning function (NoFunc = global)
	Spec *FuncSpec
}

// StmtChange records one statement-level mutation for consumers that map
// edits to analysis footprints: the location, the owning function, and
// the statement before and after.
type StmtChange struct {
	Loc Loc
	Fn  FuncID
	Old Stmt
	New Stmt
}

// EditSummary reports what a batch of edits touched, in terms a
// downstream incremental analysis can intersect with per-cluster slices.
type EditSummary struct {
	// Vars are the operand variables of every removed and added
	// statement (deduplicated, sorted).
	Vars []VarID
	// Locs are the locations whose statement changed (not inserted
	// locations: those are new and cannot appear in an old slice).
	Locs []Loc
	// Changes lists every statement mutation including inserts.
	Changes []StmtChange
	// ShapeFns are functions whose CFG shape changed (inserted nodes).
	ShapeFns []FuncID
	// AssumeFns are functions where an assume statement was added,
	// removed or altered. Algorithm 1 pulls the assumes of every sliced
	// function into the slice unconditionally, so these dirty at
	// function granularity.
	AssumeFns []FuncID
	// Structural is set when the batch cannot be mapped onto an existing
	// cluster cover: function-set changes, signature changes, or edits
	// that add/remove/alter calls and returns. Consumers must fall back
	// to full reanalysis.
	Structural bool
	// Reason says why Structural was set.
	Reason string
}

func (s *EditSummary) markStructural(reason string) {
	if !s.Structural {
		s.Structural = true
		s.Reason = reason
	}
}

func (s *EditSummary) addChange(p *Program, loc Loc, fn FuncID, old, new Stmt) {
	s.Changes = append(s.Changes, StmtChange{Loc: loc, Fn: fn, Old: old, New: new})
	for _, st := range [2]Stmt{old, new} {
		for _, v := range st.Operands() {
			s.Vars = append(s.Vars, v)
		}
		if st.Op == OpAssumeEq || st.Op == OpAssumeNeq {
			s.AssumeFns = append(s.AssumeFns, fn)
		}
		if st.Op == OpCall || st.Op == OpRet {
			s.markStructural("edit adds or removes a call/return")
		}
	}
}

func (s *EditSummary) finish() {
	s.Vars = dedupVars(s.Vars)
	sort.Slice(s.Locs, func(i, j int) bool { return s.Locs[i] < s.Locs[j] })
	s.ShapeFns = dedupFns(s.ShapeFns)
	s.AssumeFns = dedupFns(s.AssumeFns)
}

func dedupVars(vs []VarID) []VarID {
	if len(vs) == 0 {
		return vs
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	out := vs[:1]
	for _, v := range vs[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

func dedupFns(fs []FuncID) []FuncID {
	if len(fs) == 0 {
		return fs
	}
	sort.Slice(fs, func(i, j int) bool { return fs[i] < fs[j] })
	out := fs[:1]
	for _, f := range fs[1:] {
		if f != out[len(out)-1] {
			out = append(out, f)
		}
	}
	return out
}

// Operands returns the variables a statement reads or writes (call
// statements include the callee arguments and the function-pointer).
func (st Stmt) Operands() []VarID {
	var out []VarID
	add := func(v VarID) {
		if v != NoVar {
			out = append(out, v)
		}
	}
	add(st.Dst)
	add(st.Src)
	add(st.FPtr)
	for _, a := range st.Args {
		add(a)
	}
	return out
}

// Clone returns a deep copy of p: mutating the clone (or analyzing it)
// never observes or disturbs the original. All ids are preserved.
func (p *Program) Clone() *Program {
	q := &Program{
		Vars:       make([]*Var, len(p.Vars)),
		Funcs:      make([]*Func, len(p.Funcs)),
		Nodes:      make([]*Node, len(p.Nodes)),
		FuncByName: make(map[string]FuncID, len(p.FuncByName)),
		VarByName:  make(map[string]VarID, len(p.VarByName)),
		FuncValue:  make(map[FuncID]VarID, len(p.FuncValue)),
		Entry:      p.Entry,
	}
	for i, v := range p.Vars {
		cv := *v
		q.Vars[i] = &cv
	}
	for i, f := range p.Funcs {
		cf := *f
		cf.Params = append([]VarID(nil), f.Params...)
		cf.Nodes = append([]Loc(nil), f.Nodes...)
		q.Funcs[i] = &cf
	}
	for i, n := range p.Nodes {
		cn := *n
		cn.Succs = append([]Loc(nil), n.Succs...)
		cn.Preds = append([]Loc(nil), n.Preds...)
		cn.Stmt.Args = append([]VarID(nil), n.Stmt.Args...)
		q.Nodes[i] = &cn
	}
	for k, v := range p.FuncByName {
		q.FuncByName[k] = v
	}
	for k, v := range p.VarByName {
		q.VarByName[k] = v
	}
	for k, v := range p.FuncValue {
		q.FuncValue[k] = v
	}
	return q
}

// ApplyEdits applies the script to p in order, mutating p, and reports
// what it touched. On error p may be partially edited and must be
// discarded. The edited program is re-validated before returning.
func ApplyEdits(p *Program, edits []Edit) (*EditSummary, error) {
	sum := &EditSummary{}
	for i, e := range edits {
		if err := applyOne(p, e, sum); err != nil {
			return nil, fmt.Errorf("edit %d (%s): %w", i, e.Kind, err)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("edited program invalid: %w", err)
	}
	sum.finish()
	return sum, nil
}

func applyOne(p *Program, e Edit, sum *EditSummary) error {
	switch e.Kind {
	case EditReplaceStmt, EditDeleteStmt:
		if e.Loc < 0 || int(e.Loc) >= len(p.Nodes) {
			return fmt.Errorf("loc %d out of range", e.Loc)
		}
		n := p.Node(e.Loc)
		newStmt := e.Stmt
		if e.Kind == EditDeleteStmt {
			newStmt = Stmt{Op: OpSkip, Dst: NoVar, Src: NoVar, Callee: NoFunc, FPtr: NoVar}
		}
		if n.CallLoc != NoLoc {
			// The node is a call's return-binding companion; rewriting it
			// would desynchronize the interprocedural walk.
			sum.markStructural("edit rewrites a call-binding node")
		}
		sum.addChange(p, e.Loc, n.Fn, n.Stmt, newStmt)
		sum.Locs = append(sum.Locs, e.Loc)
		n.Stmt = newStmt
		return nil

	case EditInsertAfter:
		if e.Loc < 0 || int(e.Loc) >= len(p.Nodes) {
			return fmt.Errorf("anchor loc %d out of range", e.Loc)
		}
		a := p.Node(e.Loc)
		loc := p.AddNode(a.Fn, e.Stmt)
		n := p.Node(loc)
		// Splice: the new node inherits the anchor's successors.
		n.Succs = append(n.Succs, a.Succs...)
		for _, sl := range n.Succs {
			s := p.Node(sl)
			for i, pr := range s.Preds {
				if pr == e.Loc {
					s.Preds[i] = loc
				}
			}
		}
		a.Succs = a.Succs[:0]
		p.AddEdge(e.Loc, loc)
		sum.addChange(p, loc, a.Fn, Stmt{Op: OpSkip, Dst: NoVar, Src: NoVar, Callee: NoFunc, FPtr: NoVar}, e.Stmt)
		sum.ShapeFns = append(sum.ShapeFns, a.Fn)
		return nil

	case EditAddVar:
		if e.Name == "" {
			return fmt.Errorf("addvar needs a name")
		}
		if _, dup := p.VarByName[e.Name]; dup {
			return fmt.Errorf("variable %q already exists", e.Name)
		}
		p.AddVar(e.Name, e.Var, e.Fn)
		return nil

	case EditAddFunc:
		if e.Spec == nil {
			return fmt.Errorf("addfunc needs a spec")
		}
		if _, dup := p.FuncByName[e.Spec.Name]; dup {
			return fmt.Errorf("function %q already exists", e.Spec.Name)
		}
		sum.markStructural("function added")
		f := p.AddFunc(e.Spec.Name)
		return buildBody(p, f, e.Spec, sum)

	case EditRemoveFunc:
		id, ok := p.FuncByName[e.Name]
		if !ok {
			return fmt.Errorf("function %q not found", e.Name)
		}
		sum.markStructural("function removed")
		f := p.Func(id)
		for _, loc := range f.Nodes {
			tombstone(p, loc, sum)
		}
		// Direct calls to the removed function become skips too.
		for _, n := range p.Nodes {
			if n.Stmt.Op == OpCall && n.Stmt.Callee == id {
				tombstone(p, n.Loc, sum)
				if n.CallLoc == NoLoc {
					// Also blank the companion binding node if present.
					for _, sl := range n.Succs {
						s := p.Node(sl)
						if s.CallLoc == n.Loc {
							tombstone(p, s.Loc, sum)
							s.CallLoc = NoLoc
						}
					}
				}
			}
		}
		return nil

	case EditRebuildFunc:
		if e.Spec == nil {
			return fmt.Errorf("rebuildfunc needs a spec")
		}
		id, ok := p.FuncByName[e.Spec.Name]
		if !ok {
			return fmt.Errorf("function %q not found", e.Spec.Name)
		}
		sum.markStructural("function rebuilt")
		f := p.Func(id)
		old := f.Nodes
		f.Nodes = nil
		for _, loc := range old {
			n := p.Node(loc)
			tombstone(p, loc, sum)
			n.Succs = nil
			n.Preds = nil
			n.CallLoc = NoLoc
		}
		f.Nodes = old // tombstoned nodes stay attributed to f for Validate
		return buildBody(p, f, e.Spec, sum)
	}
	return fmt.Errorf("unknown edit kind %d", e.Kind)
}

// tombstone blanks the statement at loc into a skip, recording the
// change.
func tombstone(p *Program, loc Loc, sum *EditSummary) {
	n := p.Node(loc)
	skip := Stmt{Op: OpSkip, Dst: NoVar, Src: NoVar, Callee: NoFunc, FPtr: NoVar}
	if n.Stmt.Op != OpSkip {
		sum.addChange(p, loc, n.Fn, n.Stmt, skip)
		sum.Locs = append(sum.Locs, loc)
	}
	n.Stmt = skip
}

// buildBody appends Spec's statements as fresh nodes of f and wires
// entry, exit, edges and (for new or re-signed functions) params/ret.
func buildBody(p *Program, f *Func, spec *FuncSpec, sum *EditSummary) error {
	if len(spec.Stmts) == 0 {
		return fmt.Errorf("empty function body")
	}
	if spec.Entry < 0 || spec.Entry >= len(spec.Stmts) || spec.Exit < 0 || spec.Exit >= len(spec.Stmts) {
		return fmt.Errorf("entry/exit out of range")
	}
	if len(spec.Succs) != len(spec.Stmts) {
		return fmt.Errorf("succs/stmts length mismatch")
	}
	resolve := func(name string, kind VarKind) VarID {
		if id, ok := p.VarByName[name]; ok {
			return id
		}
		return p.AddVar(name, kind, f.ID)
	}
	if len(spec.Params) > 0 || spec.Ret != "" {
		f.Params = nil
		for _, pn := range spec.Params {
			f.Params = append(f.Params, resolve(pn, KindParam))
		}
		if spec.Ret != "" {
			f.Ret = resolve(spec.Ret, KindRet)
		} else {
			f.Ret = NoVar
		}
	}
	locs := make([]Loc, len(spec.Stmts))
	for i, st := range spec.Stmts {
		locs[i] = p.AddNode(f.ID, st)
		sum.addChange(p, locs[i], f.ID, Stmt{Op: OpSkip, Dst: NoVar, Src: NoVar, Callee: NoFunc, FPtr: NoVar}, st)
	}
	for i, ss := range spec.Succs {
		for _, s := range ss {
			if s < 0 || s >= len(locs) {
				return fmt.Errorf("succ index %d out of range", s)
			}
			p.AddEdge(locs[i], locs[s])
		}
	}
	for i, cl := range spec.CallLocs {
		if cl >= 0 {
			if cl >= len(locs) {
				return fmt.Errorf("callloc index %d out of range", cl)
			}
			p.Node(locs[i]).CallLoc = locs[cl]
		}
	}
	f.Entry = locs[spec.Entry]
	f.Exit = locs[spec.Exit]
	sum.ShapeFns = append(sum.ShapeFns, f.ID)
	return nil
}

// Diff computes an edit script transforming old into a program
// structurally identical to new, matching functions and variables by
// name. ok=false means the difference is not expressible as edits (a
// variable disappeared or was re-kinded, the entry function changed);
// callers then analyze new from scratch.
func Diff(old, new *Program) (edits []Edit, ok bool) {
	if old.Func(old.Entry).Name != new.Func(new.Entry).Name {
		return nil, false
	}
	// Variables: old must embed into new by name, kind-compatibly.
	varMap := make([]VarID, len(new.Vars)) // new VarID -> projected old-space id
	for _, v := range old.Vars {
		nv, ok2 := new.VarByName[v.Name]
		if !ok2 || new.Var(nv).Kind != v.Kind {
			return nil, false
		}
	}
	next := VarID(len(old.Vars))
	for id, v := range new.Vars {
		if ov, ok2 := old.VarByName[v.Name]; ok2 {
			varMap[id] = ov
			continue
		}
		varMap[id] = next
		next++
	}
	// Functions: match by name; compute projected ids for added ones.
	fnMap := make([]FuncID, len(new.Funcs)) // new FuncID -> projected old-space id
	nextFn := FuncID(len(old.Funcs))
	var added []FuncID // new-space ids, in order
	for id, f := range new.Funcs {
		if of, ok2 := old.FuncByName[f.Name]; ok2 {
			fnMap[id] = of
		} else {
			fnMap[id] = nextFn
			nextFn++
			added = append(added, FuncID(id))
		}
	}
	// AddVar edits first (projected ids above depend on this order).
	for _, v := range new.Vars {
		if _, ok2 := old.VarByName[v.Name]; ok2 {
			continue
		}
		owner := NoFunc
		if v.Fn != NoFunc {
			owner = fnMap[v.Fn]
		}
		edits = append(edits, Edit{Kind: EditAddVar, Name: v.Name, Var: v.Kind, Fn: owner})
	}
	remap := func(st Stmt) Stmt {
		m := func(v VarID) VarID {
			if v == NoVar {
				return NoVar
			}
			return varMap[v]
		}
		st.Dst, st.Src, st.FPtr = m(st.Dst), m(st.Src), m(st.FPtr)
		if len(st.Args) > 0 {
			args := make([]VarID, len(st.Args))
			for i, a := range st.Args {
				args[i] = m(a)
			}
			st.Args = args
		}
		if st.Callee != NoFunc {
			st.Callee = fnMap[st.Callee]
		}
		return st
	}
	// Removed functions.
	for _, f := range old.Funcs {
		if _, ok2 := new.FuncByName[f.Name]; !ok2 {
			edits = append(edits, Edit{Kind: EditRemoveFunc, Name: f.Name})
		}
	}
	// Added functions, in new-FuncID order (matches projected ids).
	for _, nid := range added {
		edits = append(edits, Edit{Kind: EditAddFunc, Spec: specOf(new, new.Func(nid), remap)})
	}
	// Shared functions: same shape → statement replaces; else rebuild.
	for _, f := range new.Funcs {
		of, shared := old.FuncByName[f.Name]
		if !shared {
			continue
		}
		ofn := old.Func(of)
		if sameSignature(old, new, ofn, f) && sameShape(old, new, ofn, f) {
			for i, nl := range f.Nodes {
				ns := remap(new.Node(nl).Stmt)
				ol := ofn.Nodes[i]
				if !sameStmt(old.Node(ol).Stmt, ns) {
					edits = append(edits, Edit{Kind: EditReplaceStmt, Loc: ol, Stmt: ns})
				}
			}
		} else {
			edits = append(edits, Edit{Kind: EditRebuildFunc, Spec: specOf(new, f, remap)})
		}
	}
	return edits, true
}

func specOf(p *Program, f *Func, remap func(Stmt) Stmt) *FuncSpec {
	spec := &FuncSpec{Name: f.Name, Ret: ""}
	for _, pv := range f.Params {
		spec.Params = append(spec.Params, p.VarName(pv))
	}
	if f.Ret != NoVar {
		spec.Ret = p.VarName(f.Ret)
	}
	local := make(map[Loc]int, len(f.Nodes))
	for i, l := range f.Nodes {
		local[l] = i
	}
	for _, l := range f.Nodes {
		n := p.Node(l)
		spec.Stmts = append(spec.Stmts, remap(n.Stmt))
		succs := make([]int, 0, len(n.Succs))
		for _, s := range n.Succs {
			succs = append(succs, local[s])
		}
		spec.Succs = append(spec.Succs, succs)
		cl := -1
		if n.CallLoc != NoLoc {
			cl = local[n.CallLoc]
		}
		spec.CallLocs = append(spec.CallLocs, cl)
	}
	spec.Entry = local[f.Entry]
	spec.Exit = local[f.Exit]
	return spec
}

func sameSignature(op, np *Program, of, nf *Func) bool {
	if len(of.Params) != len(nf.Params) || (of.Ret == NoVar) != (nf.Ret == NoVar) {
		return false
	}
	for i := range of.Params {
		if op.VarName(of.Params[i]) != np.VarName(nf.Params[i]) {
			return false
		}
	}
	if of.Ret != NoVar && op.VarName(of.Ret) != np.VarName(nf.Ret) {
		return false
	}
	return true
}

// sameShape reports whether two functions have identical CFG skeletons:
// node count, local successor structure, call-binding markers, and
// entry/exit positions.
func sameShape(op, np *Program, of, nf *Func) bool {
	if len(of.Nodes) != len(nf.Nodes) {
		return false
	}
	olocal := make(map[Loc]int, len(of.Nodes))
	for i, l := range of.Nodes {
		olocal[l] = i
	}
	nlocal := make(map[Loc]int, len(nf.Nodes))
	for i, l := range nf.Nodes {
		nlocal[l] = i
	}
	if olocal[of.Entry] != nlocal[nf.Entry] || olocal[of.Exit] != nlocal[nf.Exit] {
		return false
	}
	for i := range of.Nodes {
		on, nn := op.Node(of.Nodes[i]), np.Node(nf.Nodes[i])
		if len(on.Succs) != len(nn.Succs) {
			return false
		}
		for j := range on.Succs {
			if olocal[on.Succs[j]] != nlocal[nn.Succs[j]] {
				return false
			}
		}
		ocl, ncl := -1, -1
		if on.CallLoc != NoLoc {
			ocl = olocal[on.CallLoc]
		}
		if nn.CallLoc != NoLoc {
			ncl = nlocal[nn.CallLoc]
		}
		if ocl != ncl {
			return false
		}
	}
	return true
}

func sameStmt(a, b Stmt) bool {
	if a.Op != b.Op || a.Dst != b.Dst || a.Src != b.Src || a.Callee != b.Callee || a.FPtr != b.FPtr || a.Free != b.Free {
		return false
	}
	if len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	return true
}
