package ir_test

import (
	"testing"

	"bootstrap/internal/frontend"
	"bootstrap/internal/ir"
)

const editProgA = `
	int a, b, c;
	int *x, *y, *p;
	void main() {
		x = &a;
		y = &b;
		p = &c;
		x = y;
	}
`

func lower(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := frontend.LowerSource(src)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p
}

// findStmt returns the location of the first statement matching op with
// the given destination name.
func findStmt(t *testing.T, p *ir.Program, op ir.Op, dst string) ir.Loc {
	t.Helper()
	want := p.VarByName[dst]
	for _, n := range p.Nodes {
		if n.Stmt.Op == op && n.Stmt.Dst == want {
			return n.Loc
		}
	}
	t.Fatalf("no %v statement with dst %q", op, dst)
	return ir.NoLoc
}

func TestCloneIndependent(t *testing.T) {
	p := lower(t, editProgA)
	q := p.Clone()
	loc := findStmt(t, q, ir.OpCopy, "x")
	q.Node(loc).Stmt.Op = ir.OpSkip
	q.AddVar("zzz", ir.KindGlobal, ir.NoFunc)
	if p.Node(loc).Stmt.Op != ir.OpCopy {
		t.Fatal("clone mutation leaked into original")
	}
	if _, ok := p.VarByName["zzz"]; ok {
		t.Fatal("clone AddVar leaked into original")
	}
	if err := q.Validate(); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
}

func TestApplyReplaceDeleteInsert(t *testing.T) {
	p := lower(t, editProgA).Clone()
	locCopy := findStmt(t, p, ir.OpCopy, "x")
	locAddr := findStmt(t, p, ir.OpAddr, "p")
	x, px := p.VarByName["x"], p.VarByName["p"]
	sum, err := ir.ApplyEdits(p, []ir.Edit{
		{Kind: ir.EditReplaceStmt, Loc: locCopy, Stmt: ir.Stmt{Op: ir.OpCopy, Dst: x, Src: px, Callee: ir.NoFunc, FPtr: ir.NoVar}},
		{Kind: ir.EditDeleteStmt, Loc: locAddr},
		{Kind: ir.EditInsertAfter, Loc: locCopy, Stmt: ir.Stmt{Op: ir.OpNullify, Dst: px, Src: ir.NoVar, Callee: ir.NoFunc, FPtr: ir.NoVar}},
	})
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("edited program invalid: %v", err)
	}
	if sum.Structural {
		t.Fatalf("statement edits must not be structural: %s", sum.Reason)
	}
	if p.Node(locCopy).Stmt.Src != px {
		t.Fatal("replace not applied")
	}
	if p.Node(locAddr).Stmt.Op != ir.OpSkip {
		t.Fatal("delete did not tombstone")
	}
	// The inserted node sits between locCopy and its old successors.
	if len(p.Node(locCopy).Succs) != 1 {
		t.Fatalf("anchor succs = %v", p.Node(locCopy).Succs)
	}
	ins := p.Node(locCopy).Succs[0]
	if got := p.Node(ins).Stmt.Op; got != ir.OpNullify {
		t.Fatalf("spliced node has op %v", got)
	}
	for _, v := range []ir.VarID{x, px} {
		found := false
		for _, sv := range sum.Vars {
			if sv == v {
				found = true
			}
		}
		if !found {
			t.Fatalf("summary vars %v missing %d", sum.Vars, v)
		}
	}
	if len(sum.ShapeFns) != 1 {
		t.Fatalf("insert should record one shape-changed function, got %v", sum.ShapeFns)
	}
}

func TestApplyEditErrors(t *testing.T) {
	p := lower(t, editProgA).Clone()
	if _, err := ir.ApplyEdits(p, []ir.Edit{{Kind: ir.EditReplaceStmt, Loc: ir.Loc(99999)}}); err == nil {
		t.Fatal("out-of-range loc accepted")
	}
	p = lower(t, editProgA).Clone()
	if _, err := ir.ApplyEdits(p, []ir.Edit{{Kind: ir.EditAddVar, Name: "x"}}); err == nil {
		t.Fatal("duplicate variable accepted")
	}
	p = lower(t, editProgA).Clone()
	if _, err := ir.ApplyEdits(p, []ir.Edit{{Kind: ir.EditRemoveFunc, Name: "nosuch"}}); err == nil {
		t.Fatal("removing unknown function accepted")
	}
}

func TestCallEditIsStructural(t *testing.T) {
	src := `
		int a;
		int *g;
		void callee() { g = &a; }
		void main() { callee(); }
	`
	p := lower(t, src).Clone()
	var callLoc ir.Loc = ir.NoLoc
	for _, n := range p.Nodes {
		if n.Stmt.Op == ir.OpCall {
			callLoc = n.Loc
		}
	}
	if callLoc == ir.NoLoc {
		t.Fatal("no call")
	}
	sum, err := ir.ApplyEdits(p, []ir.Edit{{Kind: ir.EditDeleteStmt, Loc: callLoc}})
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if !sum.Structural {
		t.Fatal("deleting a call must be structural")
	}
}

func TestDiffReplaceRoundTrip(t *testing.T) {
	srcB := `
	int a, b, c;
	int *x, *y, *p;
	void main() {
		x = &a;
		y = &c;
		p = &c;
		x = y;
	}
`
	old := lower(t, editProgA)
	new := lower(t, srcB)
	edits, ok := ir.Diff(old, new)
	if !ok {
		t.Fatal("diff not expressible")
	}
	if len(edits) != 1 || edits[0].Kind != ir.EditReplaceStmt {
		t.Fatalf("expected one replace edit, got %+v", edits)
	}
	applied := old.Clone()
	if _, err := ir.ApplyEdits(applied, edits); err != nil {
		t.Fatalf("apply: %v", err)
	}
	// A second diff against the target must be empty.
	again, ok := ir.Diff(applied, new)
	if !ok || len(again) != 0 {
		t.Fatalf("roundtrip incomplete: ok=%v edits=%+v", ok, again)
	}
}

func TestDiffAddFuncAndVar(t *testing.T) {
	srcB := `
	int a, b, c, d;
	int *x, *y, *p, *q;
	void fresh() {
		q = &d;
	}
	void main() {
		x = &a;
		y = &b;
		p = &c;
		x = y;
	}
`
	old := lower(t, editProgA)
	new := lower(t, srcB)
	edits, ok := ir.Diff(old, new)
	if !ok {
		t.Fatal("diff not expressible")
	}
	applied := old.Clone()
	sum, err := ir.ApplyEdits(applied, edits)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if !sum.Structural {
		t.Fatal("adding a function must be structural")
	}
	fid, ok2 := applied.FuncByName["fresh"]
	if !ok2 {
		t.Fatal("function not added")
	}
	f := applied.Func(fid)
	if f.Entry == ir.NoLoc || f.Exit == ir.NoLoc {
		t.Fatal("added function lacks entry/exit")
	}
	q, ok3 := applied.VarByName["q"]
	if !ok3 {
		t.Fatal("variable q not added")
	}
	found := false
	for _, loc := range f.Nodes {
		st := applied.Node(loc).Stmt
		if st.Op == ir.OpAddr && st.Dst == q {
			found = true
		}
	}
	if !found {
		t.Fatal("added function body missing q = &d")
	}
}

func TestDiffRemovedVarNotExpressible(t *testing.T) {
	srcB := `
	int a, b;
	int *x, *y;
	void main() {
		x = &a;
		y = &b;
	}
`
	old := lower(t, editProgA)
	new := lower(t, srcB)
	if _, ok := ir.Diff(old, new); ok {
		t.Fatal("diff with removed variables must not be expressible")
	}
}

func TestRemoveFuncTombstonesCalls(t *testing.T) {
	src := `
		int a;
		int *g;
		void callee() { g = &a; }
		void main() { callee(); }
	`
	p := lower(t, src).Clone()
	sum, err := ir.ApplyEdits(p, []ir.Edit{{Kind: ir.EditRemoveFunc, Name: "callee"}})
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if !sum.Structural {
		t.Fatal("removefunc must be structural")
	}
	for _, n := range p.Nodes {
		if n.Stmt.Op == ir.OpCall {
			t.Fatalf("call to removed function survived at %d", n.Loc)
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("program invalid after removefunc: %v", err)
	}
}
