package ir

import (
	"strings"
	"testing"
)

// build constructs a minimal valid program: main with entry -> copy -> exit.
func build(t *testing.T) (*Program, *Func, Loc) {
	t.Helper()
	p := NewProgram()
	x := p.AddVar("x", KindGlobal, NoFunc)
	y := p.AddVar("y", KindGlobal, NoFunc)
	f := p.AddFunc("main")
	p.Entry = f.ID
	f.Entry = p.AddNode(f.ID, Stmt{Op: OpSkip, Dst: NoVar, Src: NoVar, Callee: NoFunc, FPtr: NoVar})
	cp := p.AddNode(f.ID, Stmt{Op: OpCopy, Dst: x, Src: y, Callee: NoFunc, FPtr: NoVar})
	f.Exit = p.AddNode(f.ID, Stmt{Op: OpRet, Dst: NoVar, Src: NoVar, Callee: NoFunc, FPtr: NoVar})
	p.AddEdge(f.Entry, cp)
	p.AddEdge(cp, f.Exit)
	return p, f, cp
}

func TestValidProgram(t *testing.T) {
	p, _, _ := build(t)
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestDuplicateVarPanics(t *testing.T) {
	p := NewProgram()
	p.AddVar("x", KindGlobal, NoFunc)
	defer func() {
		if recover() == nil {
			t.Error("duplicate variable should panic")
		}
	}()
	p.AddVar("x", KindGlobal, NoFunc)
}

func TestDuplicateFuncPanics(t *testing.T) {
	p := NewProgram()
	p.AddFunc("f")
	defer func() {
		if recover() == nil {
			t.Error("duplicate function should panic")
		}
	}()
	p.AddFunc("f")
}

func TestAddEdgeDedupes(t *testing.T) {
	p, f, cp := build(t)
	before := len(p.Node(f.Entry).Succs)
	p.AddEdge(f.Entry, cp)
	p.AddEdge(f.Entry, cp)
	if got := len(p.Node(f.Entry).Succs); got != before {
		t.Errorf("duplicate edges added: %d -> %d", before, got)
	}
	if got := len(p.Node(cp).Preds); got != 1 {
		t.Errorf("preds = %d, want 1", got)
	}
}

func TestStmtStrings(t *testing.T) {
	p := NewProgram()
	x := p.AddVar("x", KindGlobal, NoFunc)
	y := p.AddVar("y", KindGlobal, NoFunc)
	f := p.AddFunc("main")
	g := p.AddFunc("callee")
	g.Params = append(g.Params, y)

	cases := []struct {
		stmt Stmt
		want string
	}{
		{Stmt{Op: OpCopy, Dst: x, Src: y}, "x = y"},
		{Stmt{Op: OpAddr, Dst: x, Src: y}, "x = &y"},
		{Stmt{Op: OpLoad, Dst: x, Src: y}, "x = *y"},
		{Stmt{Op: OpStore, Dst: x, Src: y}, "*x = y"},
		{Stmt{Op: OpNullify, Dst: x, Src: NoVar}, "x = null"},
		{Stmt{Op: OpNullify, Dst: x, Src: NoVar, Free: true}, "free(x)"},
		{Stmt{Op: OpSkip, Dst: NoVar, Src: NoVar, Comment: "entry"}, "skip // entry"},
		{Stmt{Op: OpRet, Dst: NoVar, Src: NoVar}, "return"},
		{Stmt{Op: OpCall, Dst: NoVar, Src: NoVar, Callee: g.ID, FPtr: NoVar, Args: []VarID{x}}, "call callee(x)"},
		{Stmt{Op: OpCall, Dst: NoVar, Src: NoVar, Callee: NoFunc, FPtr: x}, "call <indirect:x>()"},
		{Stmt{Op: OpTouch, Dst: x, Src: NoVar}, "touch x"},
		{Stmt{Op: OpTouch, Dst: NoVar, Src: x}, "touch *x"},
	}
	for _, tc := range cases {
		loc := p.AddNode(f.ID, tc.stmt)
		if got := p.StmtString(loc); got != tc.want {
			t.Errorf("StmtString(%v) = %q, want %q", tc.stmt.Op, got, tc.want)
		}
	}
}

func TestValidateCatchesAsymmetricEdges(t *testing.T) {
	p, f, cp := build(t)
	// Corrupt: forward edge without back edge.
	p.Node(f.Entry).Succs = append(p.Node(f.Entry).Succs, f.Exit)
	err := p.Validate()
	if err == nil || !strings.Contains(err.Error(), "back edge") {
		t.Errorf("Validate = %v, want missing-back-edge error", err)
	}
	_ = cp
}

func TestValidateCatchesBadOperand(t *testing.T) {
	p, f, _ := build(t)
	p.AddNode(f.ID, Stmt{Op: OpCopy, Dst: NoVar, Src: NoVar, Callee: NoFunc, FPtr: NoVar})
	err := p.Validate()
	if err == nil || !strings.Contains(err.Error(), "missing dst") {
		t.Errorf("Validate = %v, want missing-operand error", err)
	}
}

func TestValidateCatchesBadCall(t *testing.T) {
	p, f, _ := build(t)
	p.AddNode(f.ID, Stmt{Op: OpCall, Dst: NoVar, Src: NoVar, Callee: NoFunc, FPtr: NoVar})
	err := p.Validate()
	if err == nil || !strings.Contains(err.Error(), "neither callee nor fptr") {
		t.Errorf("Validate = %v, want bad-call error", err)
	}
}

func TestValidateCatchesCrossFunctionEdge(t *testing.T) {
	p, _, cp := build(t)
	h := p.AddFunc("h")
	h.Entry = p.AddNode(h.ID, Stmt{Op: OpSkip, Dst: NoVar, Src: NoVar, Callee: NoFunc, FPtr: NoVar})
	h.Exit = h.Entry
	p.AddEdge(cp, h.Entry)
	err := p.Validate()
	if err == nil || !strings.Contains(err.Error(), "cross-function") {
		t.Errorf("Validate = %v, want cross-function error", err)
	}
}

func TestValidateMissingEntryExit(t *testing.T) {
	p := NewProgram()
	p.AddFunc("f")
	err := p.Validate()
	if err == nil || !strings.Contains(err.Error(), "missing entry or exit") {
		t.Errorf("Validate = %v, want missing entry/exit", err)
	}
}

func TestDumpRendersAll(t *testing.T) {
	p, _, _ := build(t)
	d := p.Dump()
	for _, want := range []string{"func main(", "x = y", "return"} {
		if !strings.Contains(d, want) {
			t.Errorf("Dump missing %q:\n%s", want, d)
		}
	}
}

func TestVarName(t *testing.T) {
	p, _, _ := build(t)
	if got := p.VarName(NoVar); got != "<none>" {
		t.Errorf("VarName(NoVar) = %q", got)
	}
	if got := p.VarName(0); got != "x" {
		t.Errorf("VarName(0) = %q", got)
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []VarKind{KindGlobal, KindLocal, KindParam, KindTemp, KindHeap, KindRet, KindFunc}
	want := []string{"global", "local", "param", "temp", "heap", "ret", "func"}
	for i, k := range kinds {
		if k.String() != want[i] {
			t.Errorf("VarKind(%d) = %q, want %q", i, k.String(), want[i])
		}
	}
	ops := []Op{OpSkip, OpCopy, OpAddr, OpLoad, OpStore, OpNullify, OpCall, OpRet, OpTouch}
	wantOps := []string{"skip", "copy", "addr", "load", "store", "nullify", "call", "ret", "touch"}
	for i, o := range ops {
		if o.String() != wantOps[i] {
			t.Errorf("Op(%d) = %q, want %q", i, o.String(), wantOps[i])
		}
	}
}

func TestDotCFG(t *testing.T) {
	p, f, _ := build(t)
	dot := p.DotCFG()
	for _, want := range []string{"digraph cfg", "subgraph cluster_0", "x = y", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DotCFG missing %q:\n%s", want, dot)
		}
	}
	// Restricted rendering.
	dot2 := p.DotCFG(f.ID)
	if !strings.Contains(dot2, "cluster_0") {
		t.Error("restricted DotCFG missing function")
	}
	// Escaping.
	if got := dotEscape(`a"b\c`); got != `a\"b\\c` {
		t.Errorf("dotEscape = %q", got)
	}
}
