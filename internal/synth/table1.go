package synth

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
)

// Benchmark describes one Table 1 row: the identity and measured shape of
// a paper benchmark, plus the generator parameters that reproduce that
// shape synthetically (the substitution for the original C sources, which
// are not part of this repository).
type Benchmark struct {
	Name     string
	KLOC     float64
	Pointers int

	// Shape targets the generator calibrates to.
	SteensMax   int     // paper's max Steensgaard partition size
	AndersenMax int     // paper's max Andersen cluster size
	Overlap     float64 // cross-community linking within the big partition:
	// 0 = Andersen clustering splits it cleanly (sendmail-like),
	// near 1 = heavy overlap, Andersen barely helps (mt-daapd-like).

	// Paper-reported measurements (seconds unless noted) for
	// EXPERIMENTS.md side-by-side reporting. NoClusterTime is a string
	// because several rows are ">15min".
	PaperSteensTime    float64
	PaperClusterTime   float64
	PaperNoClusterTime string
	PaperSteensNum     int
	PaperSteensFSCS    float64
	PaperAndersenNum   int
	PaperAndersenFSCS  float64
}

// Table1 is the paper's benchmark suite (Table 1), with every reported
// column preserved for comparison.
var Table1 = []Benchmark{
	{Name: "sock", KLOC: 0.9, Pointers: 1089, SteensMax: 9, AndersenMax: 6, Overlap: 0.1,
		PaperSteensTime: 0.02, PaperClusterTime: 0.04, PaperNoClusterTime: "0.11",
		PaperSteensNum: 517, PaperSteensFSCS: 0.03, PaperAndersenNum: 539, PaperAndersenFSCS: 0.01},
	{Name: "hugetlb", KLOC: 1.2, Pointers: 3607, SteensMax: 45, AndersenMax: 11, Overlap: 0.1,
		PaperSteensTime: 0.3, PaperClusterTime: 0.5, PaperNoClusterTime: "8",
		PaperSteensNum: 1091, PaperSteensFSCS: 0.7, PaperAndersenNum: 1290, PaperAndersenFSCS: 0.78},
	{Name: "ctrace", KLOC: 1.4, Pointers: 377, SteensMax: 36, AndersenMax: 6, Overlap: 0.05,
		PaperSteensTime: 0.01, PaperClusterTime: 0.03, PaperNoClusterTime: "0.07",
		PaperSteensNum: 47, PaperSteensFSCS: 0.03, PaperAndersenNum: 193, PaperAndersenFSCS: 0.03},
	{Name: "autofs", KLOC: 8.3, Pointers: 3258, SteensMax: 125, AndersenMax: 27, Overlap: 0.1,
		PaperSteensTime: 0.6, PaperClusterTime: 1, PaperNoClusterTime: "6.48",
		PaperSteensNum: 589, PaperSteensFSCS: 0.52, PaperAndersenNum: 907, PaperAndersenFSCS: 0.92},
	{Name: "plip", KLOC: 14, Pointers: 3257, SteensMax: 26, AndersenMax: 14, Overlap: 0.2,
		PaperSteensTime: 0.7, PaperClusterTime: 1.2, PaperNoClusterTime: "6.51",
		PaperSteensNum: 568, PaperSteensFSCS: 0.57, PaperAndersenNum: 761, PaperAndersenFSCS: 0.62},
	{Name: "ptrace", KLOC: 15, Pointers: 9075, SteensMax: 96, AndersenMax: 18, Overlap: 0.1,
		PaperSteensTime: 0.9, PaperClusterTime: 1.1, PaperNoClusterTime: "16",
		PaperSteensNum: 924, PaperSteensFSCS: 1.46, PaperAndersenNum: 5941, PaperAndersenFSCS: 0.67},
	{Name: "raid", KLOC: 17, Pointers: 814, SteensMax: 129, AndersenMax: 26, Overlap: 0.1,
		PaperSteensTime: 0.01, PaperClusterTime: 0.06, PaperNoClusterTime: "0.12",
		PaperSteensNum: 100, PaperSteensFSCS: 0.03, PaperAndersenNum: 192, PaperAndersenFSCS: 0.03},
	{Name: "jfs_dmap", KLOC: 17, Pointers: 14339, SteensMax: 39, AndersenMax: 11, Overlap: 0.1,
		PaperSteensTime: 2.9, PaperClusterTime: 4.7, PaperNoClusterTime: "510",
		PaperSteensNum: 4190, PaperSteensFSCS: 3.62, PaperAndersenNum: 9214, PaperAndersenFSCS: 1.34},
	{Name: "tty_io", KLOC: 18, Pointers: 2675, SteensMax: 8, AndersenMax: 6, Overlap: 0.2,
		PaperSteensTime: 0.9, PaperClusterTime: 2.1, PaperNoClusterTime: "22",
		PaperSteensNum: 828, PaperSteensFSCS: 0.52, PaperAndersenNum: 882, PaperAndersenFSCS: 0.45},
	{Name: "ipoib_multicast", KLOC: 26, Pointers: 2888, SteensMax: 15, AndersenMax: 9, Overlap: 0.2,
		PaperSteensTime: 0.9, PaperClusterTime: 1.2, PaperNoClusterTime: "54.7",
		PaperSteensNum: 1167, PaperSteensFSCS: 1, PaperAndersenNum: 1378, PaperAndersenFSCS: 0.5},
	{Name: "wavelan_ko", KLOC: 20, Pointers: 3117, SteensMax: 44, AndersenMax: 19, Overlap: 0.15,
		PaperSteensTime: 0.6, PaperClusterTime: 1.4, PaperNoClusterTime: "17.68",
		PaperSteensNum: 591, PaperSteensFSCS: 1.2, PaperAndersenNum: 744, PaperAndersenFSCS: 1},
	{Name: "pico", KLOC: 22, Pointers: 1903, SteensMax: 171, AndersenMax: 102, Overlap: 0.5,
		PaperSteensTime: 2, PaperClusterTime: 10, PaperNoClusterTime: ">15min",
		PaperSteensNum: 484, PaperSteensFSCS: 4.98, PaperAndersenNum: 871, PaperAndersenFSCS: 4.46},
	{Name: "synclink", KLOC: 24, Pointers: 16355, SteensMax: 95, AndersenMax: 93, Overlap: 0.9,
		PaperSteensTime: 12, PaperClusterTime: 18, PaperNoClusterTime: ">15min",
		PaperSteensNum: 1237, PaperSteensFSCS: 26.85, PaperAndersenNum: 3503, PaperAndersenFSCS: 26},
	{Name: "icecast", KLOC: 49, Pointers: 7490, SteensMax: 114, AndersenMax: 52, Overlap: 0.3,
		PaperSteensTime: 2, PaperClusterTime: 12, PaperNoClusterTime: "459",
		PaperSteensNum: 964, PaperSteensFSCS: 15, PaperAndersenNum: 2553, PaperAndersenFSCS: 15},
	{Name: "freshclam", KLOC: 54, Pointers: 1991, SteensMax: 77, AndersenMax: 45, Overlap: 0.4,
		PaperSteensTime: 0.3, PaperClusterTime: 0.9, PaperNoClusterTime: ">15min",
		PaperSteensNum: 157, PaperSteensFSCS: 0.6, PaperAndersenNum: 740, PaperAndersenFSCS: 0.44},
	{Name: "mt_daapd", KLOC: 92, Pointers: 4008, SteensMax: 89, AndersenMax: 83, Overlap: 0.9,
		PaperSteensTime: 1.4, PaperClusterTime: 6.8, PaperNoClusterTime: ">15min",
		PaperSteensNum: 635, PaperSteensFSCS: 4.8, PaperAndersenNum: 1118, PaperAndersenFSCS: 12.79},
	{Name: "sigtool", KLOC: 95, Pointers: 5881, SteensMax: 151, AndersenMax: 147, Overlap: 0.9,
		PaperSteensTime: 2, PaperClusterTime: 10, PaperNoClusterTime: ">15min",
		PaperSteensNum: 552, PaperSteensFSCS: 8, PaperAndersenNum: 981, PaperAndersenFSCS: 7},
	{Name: "clamd", KLOC: 101, Pointers: 16639, SteensMax: 346, AndersenMax: 187, Overlap: 0.3,
		PaperSteensTime: 13, PaperClusterTime: 34, PaperNoClusterTime: "61",
		PaperSteensNum: 1274, PaperSteensFSCS: 49, PaperAndersenNum: 3915, PaperAndersenFSCS: 41},
	{Name: "sendmail", KLOC: 115, Pointers: 65134, SteensMax: 596, AndersenMax: 193, Overlap: 0.1,
		PaperSteensTime: 125, PaperClusterTime: 675, PaperNoClusterTime: "76min",
		PaperSteensNum: 21088, PaperSteensFSCS: 187.8, PaperAndersenNum: 24580, PaperAndersenFSCS: 138.9},
	{Name: "httpd", KLOC: 128, Pointers: 16180, SteensMax: 199, AndersenMax: 152, Overlap: 0.5,
		PaperSteensTime: 40, PaperClusterTime: 89, PaperNoClusterTime: ">15min",
		PaperSteensNum: 1779, PaperSteensFSCS: 35, PaperAndersenNum: 3893, PaperAndersenFSCS: 32},
}

// FindBenchmark looks a Table 1 row up by name.
func FindBenchmark(name string) (Benchmark, bool) {
	for _, b := range Table1 {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// Generate produces a deterministic CPL program with b's shape, scaled by
// scale (1.0 = paper-sized). The pointer population is organized into
// communities:
//
//   - one large community of ~SteensMax pointers, built as hub-and-spoke
//     sub-communities of ~AndersenMax pointers around shared hub pointers
//     (Steensgaard unifies everything through the hubs; Andersen clusters
//     recover the sub-communities). The Overlap fraction adds cross-
//     sub-community copies, which is what makes Andersen clustering
//     ineffective for rows like mt-daapd;
//   - many small communities (2–6 pointers) until the pointer budget is
//     spent, matching the Figure 1 size-frequency shape;
//   - statements are distributed over a KLOC-proportional function
//     population with call edges (each community lives in 1–3 functions,
//     preserving the access locality the summarization exploits), plus
//     scalar padding statements to reach the line target.
func Generate(b Benchmark, scale float64) string {
	if scale <= 0 {
		scale = 1
	}
	rng := rand.New(rand.NewSource(int64(nameSeed(b.Name))))
	g := &tableGen{rng: rng, b: b, scale: scale}
	return g.generate()
}

func nameSeed(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}

type community struct {
	ptrs  []string // pointer variable names
	objs  []string // object variable names
	pptrs []string // double pointers (for hierarchy depth)
	stmts []string // statement lines
	hosts []int    // host function indices
}

type tableGen struct {
	rng   *rand.Rand
	b     Benchmark
	scale float64

	decls []string
	comms []*community
	nVar  int
}

func scaled(n int, scale float64, min int) int {
	v := int(float64(n) * scale)
	if v < min {
		return min
	}
	return v
}

func (g *tableGen) fresh(prefix string) string {
	g.nVar++
	return fmt.Sprintf("%s%d", prefix, g.nVar)
}

func (g *tableGen) generate() string {
	nPtr := scaled(g.b.Pointers, g.scale, 60)
	bigSize := scaled(g.b.SteensMax, g.scale, 8)
	subSize := scaled(g.b.AndersenMax, g.scale, 3)
	if subSize >= bigSize {
		subSize = bigSize/2 + 1
	}

	budget := nPtr
	// The big community.
	g.comms = append(g.comms, g.bigCommunity(bigSize, subSize))
	budget -= bigSize
	// Small communities until the budget is spent.
	for budget > 2 {
		size := 2 + g.rng.Intn(5)
		if size > budget {
			size = budget
		}
		g.comms = append(g.comms, g.smallCommunity(size))
		budget -= size
	}

	// Function population proportional to KLOC.
	nFuncs := scaled(int(g.b.KLOC*6), g.scale, 4)
	for _, c := range g.comms {
		hosts := 1 + g.rng.Intn(3)
		for i := 0; i < hosts; i++ {
			c.hosts = append(c.hosts, g.rng.Intn(nFuncs))
		}
	}

	// Assemble the source.
	var sb strings.Builder
	for _, d := range g.decls {
		sb.WriteString(d)
		sb.WriteByte('\n')
	}
	// Distribute statements into their hosts.
	bodies := make([][]string, nFuncs)
	for _, c := range g.comms {
		for i, s := range c.stmts {
			h := c.hosts[i%len(c.hosts)]
			bodies[h] = append(bodies[h], s)
		}
	}
	// Scalar padding toward the KLOC target.
	targetLines := int(g.b.KLOC * 1000 * g.scale)
	pad := targetLines - g.countLines(bodies)
	if pad > 0 {
		padVar := g.fresh("pad")
		g.decls = append(g.decls, "int "+padVar+";")
		sb.WriteString("int " + padVar + ";\n")
		for i := 0; i < pad; i++ {
			bodies[i%nFuncs] = append(bodies[i%nFuncs], padVar+" = 1;")
		}
	}
	for f := 0; f < nFuncs; f++ {
		fmt.Fprintf(&sb, "void fn%d() {\n", f)
		g.emitBody(&sb, bodies[f], f, nFuncs)
		sb.WriteString("}\n")
	}
	sb.WriteString("void main() {\n")
	for f := 0; f < nFuncs; f++ {
		fmt.Fprintf(&sb, "\tfn%d();\n", f)
	}
	sb.WriteString("}\n")
	return sb.String()
}

func (g *tableGen) countLines(bodies [][]string) int {
	n := len(g.decls)
	for _, b := range bodies {
		n += len(b) + 2
	}
	return n
}

// emitBody writes a function body with light control-flow structure and
// occasional calls deeper into the function population (forward only, so
// the call graph is acyclic except for a few deliberate back calls).
func (g *tableGen) emitBody(sb *strings.Builder, stmts []string, f, nFuncs int) {
	for i, s := range stmts {
		switch g.rng.Intn(12) {
		case 0:
			fmt.Fprintf(sb, "\tif (*) {\n\t\t%s\n\t}\n", s)
		case 1:
			fmt.Fprintf(sb, "\twhile (*) {\n\t\t%s\n\t}\n", s)
		default:
			fmt.Fprintf(sb, "\t%s\n", s)
		}
		// A sparse forward call sprinkling keeps summaries interesting
		// without quadratic call-site blowup.
		if i%97 == 96 && f+1 < nFuncs {
			fmt.Fprintf(sb, "\tfn%d();\n", f+1+g.rng.Intn(nFuncs-f-1))
		}
	}
}

// bigCommunity builds the hub-and-spoke large partition.
func (g *tableGen) bigCommunity(size, subSize int) *community {
	c := &community{}
	nHub := 1 + size/(subSize*4+1)
	var hubs []string
	for i := 0; i < nHub; i++ {
		h := g.fresh("hub")
		hubs = append(hubs, h)
		c.ptrs = append(c.ptrs, h)
		g.decls = append(g.decls, "int *"+h+";")
	}
	remaining := size - nHub
	var allSubs [][]string
	for remaining > 0 {
		s := subSize
		if s > remaining {
			s = remaining
		}
		remaining -= s
		var sub []string
		for i := 0; i < s; i++ {
			p := g.fresh("bp")
			sub = append(sub, p)
			c.ptrs = append(c.ptrs, p)
			g.decls = append(g.decls, "int *"+p+";")
			o := g.fresh("bo")
			c.objs = append(c.objs, o)
			g.decls = append(g.decls, "int "+o+";")
			// Each sub pointer anchors at an object and mixes within the
			// sub.
			c.stmts = append(c.stmts, p+" = &"+o+";")
			if len(sub) > 1 {
				c.stmts = append(c.stmts, p+" = "+sub[g.rng.Intn(len(sub)-1)]+";")
			}
		}
		// The hub copies from every sub, unifying the partition under
		// Steensgaard while Andersen keeps the subs apart.
		hub := hubs[g.rng.Intn(len(hubs))]
		c.stmts = append(c.stmts, hub+" = "+sub[g.rng.Intn(len(sub))]+";")
		allSubs = append(allSubs, sub)
	}
	// Overlap: cross-sub copies erase the sub-community structure.
	if len(allSubs) > 1 {
		cross := int(g.b.Overlap * float64(len(c.ptrs)))
		for i := 0; i < cross; i++ {
			s1 := allSubs[g.rng.Intn(len(allSubs))]
			s2 := allSubs[g.rng.Intn(len(allSubs))]
			c.stmts = append(c.stmts, s1[g.rng.Intn(len(s1))]+" = "+s2[g.rng.Intn(len(s2))]+";")
		}
	}
	return c
}

// smallCommunity builds a 2–6 pointer community; a third of them get a
// double pointer with load/store traffic so the Steensgaard hierarchy has
// depth and the FSCS walks see stores.
func (g *tableGen) smallCommunity(size int) *community {
	c := &community{}
	var ptrs []string
	for i := 0; i < size; i++ {
		p := g.fresh("sp")
		ptrs = append(ptrs, p)
		c.ptrs = append(c.ptrs, p)
		g.decls = append(g.decls, "int *"+p+";")
	}
	o := g.fresh("so")
	c.objs = append(c.objs, o)
	g.decls = append(g.decls, "int "+o+";")
	c.stmts = append(c.stmts, ptrs[0]+" = &"+o+";")
	for i := 1; i < len(ptrs); i++ {
		c.stmts = append(c.stmts, ptrs[i]+" = "+ptrs[g.rng.Intn(i)]+";")
	}
	if g.rng.Intn(3) == 0 && len(ptrs) >= 2 {
		pp := g.fresh("spp")
		c.pptrs = append(c.pptrs, pp)
		g.decls = append(g.decls, "int **"+pp+";")
		c.stmts = append(c.stmts,
			pp+" = &"+ptrs[0]+";",
			"*"+pp+" = "+ptrs[1]+";",
			ptrs[len(ptrs)-1]+" = *"+pp+";")
	}
	if g.rng.Intn(4) == 0 {
		c.stmts = append(c.stmts, ptrs[g.rng.Intn(len(ptrs))]+" = malloc;")
	}
	return c
}
