package synth

import (
	"fmt"
	"strings"
)

// LockHeavy generates checker workloads: driver-style CPL programs with
// many thread entries, locks, and guarded shared accesses, plus a known
// set of seeded bugs (unguarded racy writes, a lock-order inversion,
// use-after-free and double-free sites). The checker benchmark asserts
// 100% recall of the seeded bugs and uses the workloads for wall-time
// measurement; the differential tests use them as adversarial inputs.
//
// Generation is fully deterministic — the same config always yields the
// same source and the same seeded-bug list — so findings counts and
// fingerprints are comparable across runs and machines.

// LockHeavyConfig shapes one workload.
type LockHeavyConfig struct {
	// Threads is the number of thread entry functions (≥ 2 so seeded
	// races pair distinct threads).
	Threads int
	// Locks is the number of global lock objects (≥ 2 when Inversion).
	Locks int
	// GuardedPerThread is the number of correctly-guarded shared-counter
	// updates per thread (each guarded by the counter's own lock — these
	// must produce no findings).
	GuardedPerThread int
	// UnguardedPerThread is the number of unguarded read-only accesses
	// per thread (reads never race — no findings).
	UnguardedPerThread int
	// Races seeds that many shared variables each written unguarded by
	// two distinct threads.
	Races int
	// UAFs seeds that many use-after-free sites (helper functions called
	// from main: free through one pointer, dereference through an alias).
	UAFs int
	// DoubleFrees seeds that many double-free sites.
	DoubleFrees int
	// Inversion seeds one lock-order inversion: two threads acquiring
	// m0/m1 in opposite orders.
	Inversion bool
}

// SeededBug is one intentionally-planted defect: the rule that should
// fire and the variable its message must mention.
type SeededBug struct {
	Rule string // "race", "deadlock", "use-after-free", "double-free"
	Var  string
}

// LockHeavy renders the workload source and its seeded-bug inventory.
func LockHeavy(cfg LockHeavyConfig) (string, []SeededBug) {
	if cfg.Threads < 2 {
		cfg.Threads = 2
	}
	if cfg.Locks < 1 {
		cfg.Locks = 1
	}
	if cfg.Inversion && cfg.Locks < 2 {
		cfg.Locks = 2
	}
	var b strings.Builder
	var bugs []SeededBug

	// Globals: locks, their guarded counters, read-only data, race seeds.
	for l := 0; l < cfg.Locks; l++ {
		fmt.Fprintf(&b, "lock m%d;\n", l)
	}
	for l := 0; l < cfg.Locks; l++ {
		fmt.Fprintf(&b, "int gs%d;\n", l)
	}
	for u := 0; u < cfg.UnguardedPerThread; u++ {
		fmt.Fprintf(&b, "int u%d;\n", u)
	}
	for i := 0; i < cfg.Races; i++ {
		fmt.Fprintf(&b, "int r%d;\n", i)
		bugs = append(bugs, SeededBug{Rule: "race", Var: fmt.Sprintf("r%d", i)})
	}
	if cfg.Inversion {
		b.WriteString("int gi;\n")
		bugs = append(bugs, SeededBug{Rule: "deadlock", Var: "m0"})
	}
	b.WriteString("\nvoid acquire(lock *l) { }\nvoid release(lock *l) { }\n")

	// Thread entries: guarded counter updates (each under the counter's
	// own lock, never nested — so the only lock-order edges come from
	// the seeded inversion), unguarded read-only loads, and the seeded
	// unguarded racy writes.
	for t := 0; t < cfg.Threads; t++ {
		fmt.Fprintf(&b, "\nvoid thread_w%d() {\n", t)
		b.WriteString("\tint tv;\n")
		for g := 0; g < cfg.GuardedPerThread; g++ {
			l := (t + g) % cfg.Locks
			fmt.Fprintf(&b, "\tlock *lk%d;\n", g)
			fmt.Fprintf(&b, "\tlk%d = &m%d;\n", g, l)
			fmt.Fprintf(&b, "\tacquire(lk%d);\n", g)
			fmt.Fprintf(&b, "\tgs%d = gs%d + 1;\n", l, l)
			fmt.Fprintf(&b, "\trelease(lk%d);\n", g)
		}
		for u := 0; u < cfg.UnguardedPerThread; u++ {
			fmt.Fprintf(&b, "\ttv = u%d;\n", u)
		}
		for i := 0; i < cfg.Races; i++ {
			if a, c := (2*i)%cfg.Threads, (2*i+1)%cfg.Threads; t == a || t == c {
				fmt.Fprintf(&b, "\tr%d = 1;\n", i)
			}
		}
		b.WriteString("}\n")
	}

	if cfg.Inversion {
		b.WriteString(`
void thread_inva() {
	lock *la;
	lock *lb;
	la = &m0;
	lb = &m1;
	acquire(la);
	acquire(lb);
	gi = 1;
	release(lb);
	release(la);
}

void thread_invb() {
	lock *la;
	lock *lb;
	la = &m0;
	lb = &m1;
	acquire(lb);
	acquire(la);
	gi = 2;
	release(la);
	release(lb);
}
`)
	}

	// Memory-bug sites live in helpers called from main (not threads), so
	// the heap traffic stays out of the race detector's shared-access
	// set.
	for k := 0; k < cfg.UAFs; k++ {
		fmt.Fprintf(&b, "\nvoid uaf_site%d() {\n", k)
		fmt.Fprintf(&b, "\tint *ua%d;\n\tint *ub%d;\n", k, k)
		fmt.Fprintf(&b, "\tua%d = malloc;\n", k)
		fmt.Fprintf(&b, "\tub%d = ua%d;\n", k, k)
		fmt.Fprintf(&b, "\tfree(ua%d);\n", k)
		fmt.Fprintf(&b, "\t*ub%d = 1;\n", k)
		b.WriteString("}\n")
		bugs = append(bugs, SeededBug{Rule: "use-after-free", Var: fmt.Sprintf("ub%d", k)})
	}
	for k := 0; k < cfg.DoubleFrees; k++ {
		fmt.Fprintf(&b, "\nvoid dfree_site%d() {\n", k)
		fmt.Fprintf(&b, "\tint *da%d;\n", k)
		fmt.Fprintf(&b, "\tda%d = malloc;\n", k)
		fmt.Fprintf(&b, "\tfree(da%d);\n", k)
		fmt.Fprintf(&b, "\tfree(da%d);\n", k)
		b.WriteString("}\n")
		bugs = append(bugs, SeededBug{Rule: "double-free", Var: fmt.Sprintf("da%d", k)})
	}

	b.WriteString("\nvoid main() {\n")
	for t := 0; t < cfg.Threads; t++ {
		fmt.Fprintf(&b, "\tthread_w%d();\n", t)
	}
	if cfg.Inversion {
		b.WriteString("\tthread_inva();\n\tthread_invb();\n")
	}
	for k := 0; k < cfg.UAFs; k++ {
		fmt.Fprintf(&b, "\tuaf_site%d();\n", k)
	}
	for k := 0; k < cfg.DoubleFrees; k++ {
		fmt.Fprintf(&b, "\tdfree_site%d();\n", k)
	}
	b.WriteString("}\n")
	return b.String(), bugs
}

// LockHeavyWorkload is a named preset for benchmarks and the aliaslint
// -synth flag.
type LockHeavyWorkload struct {
	Name string
	Cfg  LockHeavyConfig
}

// LockHeavyWorkloads returns the benchmark presets, smallest first.
func LockHeavyWorkloads() []LockHeavyWorkload {
	return []LockHeavyWorkload{
		{Name: "lockheavy_small", Cfg: LockHeavyConfig{
			Threads: 4, Locks: 4, GuardedPerThread: 3, UnguardedPerThread: 2,
			Races: 2, UAFs: 1, DoubleFrees: 1, Inversion: true}},
		{Name: "lockheavy_medium", Cfg: LockHeavyConfig{
			Threads: 8, Locks: 8, GuardedPerThread: 4, UnguardedPerThread: 3,
			Races: 3, UAFs: 2, DoubleFrees: 2, Inversion: true}},
		{Name: "lockheavy_large", Cfg: LockHeavyConfig{
			Threads: 16, Locks: 12, GuardedPerThread: 6, UnguardedPerThread: 4,
			Races: 4, UAFs: 3, DoubleFrees: 3, Inversion: true}},
	}
}

// LockHeavyByName resolves a preset name to its source and seeded bugs.
func LockHeavyByName(name string) (string, []SeededBug, bool) {
	for _, w := range LockHeavyWorkloads() {
		if w.Name == name {
			src, bugs := LockHeavy(w.Cfg)
			return src, bugs, true
		}
	}
	return "", nil, false
}
