package synth

import (
	"math/rand"
	"strings"
	"testing"

	"bootstrap/internal/cluster"
	"bootstrap/internal/frontend"
	"bootstrap/internal/steens"
)

func TestRandomSourceParses(t *testing.T) {
	cfg := DefaultRandomConfig()
	cfg.Locks = 2
	for seed := int64(0); seed < 20; seed++ {
		src := RandomSource(rand.New(rand.NewSource(seed)), cfg)
		if _, err := frontend.LowerSource(src); err != nil {
			t.Fatalf("seed %d: %v\nsource:\n%s", seed, err, src)
		}
	}
}

func TestRandomSourceDeterministic(t *testing.T) {
	cfg := DefaultRandomConfig()
	a := RandomSource(rand.New(rand.NewSource(7)), cfg)
	b := RandomSource(rand.New(rand.NewSource(7)), cfg)
	if a != b {
		t.Error("same seed must generate identical programs")
	}
	c := RandomSource(rand.New(rand.NewSource(8)), cfg)
	if a == c {
		t.Error("different seeds should generate different programs")
	}
}

func TestTable1RowsComplete(t *testing.T) {
	if len(Table1) != 20 {
		t.Fatalf("Table1 has %d rows, the paper has 20", len(Table1))
	}
	seen := map[string]bool{}
	for _, b := range Table1 {
		if seen[b.Name] {
			t.Errorf("duplicate row %s", b.Name)
		}
		seen[b.Name] = true
		if b.Pointers <= 0 || b.KLOC <= 0 || b.SteensMax <= 0 || b.AndersenMax <= 0 {
			t.Errorf("%s: incomplete row %+v", b.Name, b)
		}
		if b.AndersenMax > b.SteensMax {
			t.Errorf("%s: Andersen max %d exceeds Steensgaard max %d", b.Name, b.AndersenMax, b.SteensMax)
		}
	}
	if _, ok := FindBenchmark("sendmail"); !ok {
		t.Error("FindBenchmark(sendmail) failed")
	}
	if _, ok := FindBenchmark("nonesuch"); ok {
		t.Error("FindBenchmark should fail for unknown rows")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	b, _ := FindBenchmark("sock")
	if Generate(b, 0.5) != Generate(b, 0.5) {
		t.Error("Generate must be deterministic")
	}
}

func TestGenerateParsesAndScales(t *testing.T) {
	for _, name := range []string{"sock", "ctrace", "autofs"} {
		b, ok := FindBenchmark(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		src := Generate(b, 0.3)
		prog, err := frontend.LowerSource(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Line count should reach the KLOC ballpark; rows with a pointer
		// population denser than the line target (like sock, 1089
		// pointers in 0.9 KLOC — packed structs in the original C) may
		// exceed it, so only the lower bound and a generous pointer-aware
		// upper bound are checked.
		lines := strings.Count(src, "\n")
		target := int(b.KLOC * 1000 * 0.3)
		upper := target*2 + int(float64(b.Pointers)*0.3)*4
		if lines < target*7/10 || lines > upper {
			t.Errorf("%s: %d lines, want within [%d, %d]", name, lines, target*7/10, upper)
		}
		_ = prog
	}
}

// TestGenerateShape verifies the calibration: the largest Steensgaard
// partition is near the (scaled) target, and Andersen clustering shrinks
// the max cluster substantially for a low-overlap row but not for a
// high-overlap row — the sendmail-vs-mt_daapd contrast the paper
// highlights.
func TestGenerateShape(t *testing.T) {
	type shaped struct {
		name      string
		scale     float64
		wantSplit bool
	}
	cases := []shaped{
		{name: "sendmail", scale: 0.05, wantSplit: true},
		{name: "mt_daapd", scale: 0.3, wantSplit: false},
	}
	for _, tc := range cases {
		b, _ := FindBenchmark(tc.name)
		src := Generate(b, tc.scale)
		prog, err := frontend.LowerSource(src)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		sa := steens.Analyze(prog)
		steensCover := cluster.BuildSteensgaard(prog, sa)
		ss := cluster.CoverStats(steensCover)
		wantMax := int(float64(b.SteensMax) * tc.scale)
		if ss.MaxSize < wantMax/2 {
			t.Errorf("%s: max Steensgaard partition %d, want >= %d", tc.name, ss.MaxSize, wantMax/2)
		}
		threshold := wantMax / 2
		if threshold < 4 {
			threshold = 4
		}
		andersenCover := cluster.BuildAndersen(prog, sa, threshold)
		as := cluster.CoverStats(andersenCover)
		if as.MaxSize > ss.MaxSize {
			t.Errorf("%s: Andersen max %d exceeds Steensgaard max %d", tc.name, as.MaxSize, ss.MaxSize)
		}
		split := as.MaxSize*2 <= ss.MaxSize
		if split != tc.wantSplit {
			t.Errorf("%s: Andersen split %d -> %d; wantSplit=%v",
				tc.name, ss.MaxSize, as.MaxSize, tc.wantSplit)
		}
	}
}

func TestGeneratePointerBudget(t *testing.T) {
	b, _ := FindBenchmark("hugetlb")
	src := Generate(b, 0.25)
	prog, err := frontend.LowerSource(src)
	if err != nil {
		t.Fatal(err)
	}
	want := int(float64(b.Pointers) * 0.25)
	// The IR adds temps/rets, so allow generous slack above and demand at
	// least the community population below.
	if prog.NumVars() < want || prog.NumVars() > want*3 {
		t.Errorf("NumVars = %d, want within [%d, %d]", prog.NumVars(), want, want*3)
	}
}

func TestAllTable1RowsGenerate(t *testing.T) {
	if testing.Short() {
		t.Skip("generation sweep skipped in -short mode")
	}
	for _, b := range Table1 {
		src := Generate(b, 0.05)
		if _, err := frontend.LowerSource(src); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
	}
}
