// Package synth generates synthetic CPL programs. It has two roles:
//
//   - RandomSource produces small random programs for property-based
//     testing (soundness of every analysis against the exact path oracle);
//   - Generate (see table1.go) produces large programs calibrated to the
//     paper's Table 1 benchmark rows — the substitution for the Linux
//     drivers / sendmail / httpd sources the paper analyzed, preserving
//     the pointer-count, connectivity and access-density shape that the
//     clustering results depend on.
package synth

import (
	"fmt"
	"math/rand"
	"strings"
)

// RandomConfig sizes a random program for property testing.
type RandomConfig struct {
	Objects      int // int objects
	Ptrs         int // int* pointers
	PtrPtrs      int // int** pointers
	Funcs        int // helper functions beside main
	StmtsPerFunc int
	MaxDepth     int  // nesting depth of if/while
	Recursion    bool // allow self/forward calls (bounded by the oracle)
	Locks        int  // lock objects and pointers, for lockset tests
}

// DefaultRandomConfig is a reasonable size for oracle-checked tests.
func DefaultRandomConfig() RandomConfig {
	return RandomConfig{
		Objects: 4, Ptrs: 4, PtrPtrs: 2,
		Funcs: 2, StmtsPerFunc: 8, MaxDepth: 2,
	}
}

type randGen struct {
	rng *rand.Rand
	cfg RandomConfig
	b   strings.Builder
}

// RandomSource generates a random CPL translation unit. The same seed and
// config always produce the same program.
func RandomSource(rng *rand.Rand, cfg RandomConfig) string {
	g := &randGen{rng: rng, cfg: cfg}
	g.globals()
	for f := 0; f < cfg.Funcs; f++ {
		fmt.Fprintf(&g.b, "void f%d(int *arg) {\n", f)
		g.block(1, f)
		g.b.WriteString("}\n")
	}
	g.b.WriteString("void main() {\n")
	g.block(1, cfg.Funcs) // main may call every helper
	g.b.WriteString("}\n")
	return g.b.String()
}

func (g *randGen) globals() {
	for i := 0; i < g.cfg.Objects; i++ {
		fmt.Fprintf(&g.b, "int a%d;\n", i)
	}
	for i := 0; i < g.cfg.Ptrs; i++ {
		fmt.Fprintf(&g.b, "int *p%d;\n", i)
	}
	for i := 0; i < g.cfg.PtrPtrs; i++ {
		fmt.Fprintf(&g.b, "int **q%d;\n", i)
	}
	for i := 0; i < g.cfg.Locks; i++ {
		fmt.Fprintf(&g.b, "lock m%d;\nlock *l%d;\n", i, i)
	}
}

func (g *randGen) obj() string  { return fmt.Sprintf("a%d", g.rng.Intn(max(1, g.cfg.Objects))) }
func (g *randGen) ptr() string  { return fmt.Sprintf("p%d", g.rng.Intn(max(1, g.cfg.Ptrs))) }
func (g *randGen) pptr() string { return fmt.Sprintf("q%d", g.rng.Intn(max(1, g.cfg.PtrPtrs))) }

func (g *randGen) indent(depth int) {
	for i := 0; i < depth; i++ {
		g.b.WriteString("\t")
	}
}

// block emits cfg.StmtsPerFunc random statements at the given depth.
// fnIdx is the index of the enclosing function (cfg.Funcs for main);
// calls target earlier functions, or any function when Recursion is set.
func (g *randGen) block(depth, fnIdx int) {
	for i := 0; i < g.cfg.StmtsPerFunc; i++ {
		g.stmt(depth, fnIdx)
	}
}

func (g *randGen) stmt(depth, fnIdx int) {
	choice := g.rng.Intn(14)
	// Flatten control flow when at max depth.
	if depth > g.cfg.MaxDepth && choice >= 12 {
		choice = g.rng.Intn(12)
	}
	g.indent(depth)
	switch choice {
	case 0, 1:
		fmt.Fprintf(&g.b, "%s = &%s;\n", g.ptr(), g.obj())
	case 2, 3:
		if fnIdx < g.cfg.Funcs && g.rng.Intn(3) == 0 {
			// Inside a helper: use the parameter for interprocedural flow.
			fmt.Fprintf(&g.b, "%s = arg;\n", g.ptr())
		} else {
			fmt.Fprintf(&g.b, "%s = %s;\n", g.ptr(), g.ptr())
		}
	case 4:
		if g.cfg.PtrPtrs > 0 {
			fmt.Fprintf(&g.b, "%s = &%s;\n", g.pptr(), g.ptr())
		} else {
			fmt.Fprintf(&g.b, "%s = null;\n", g.ptr())
		}
	case 5:
		if g.cfg.PtrPtrs > 0 {
			fmt.Fprintf(&g.b, "%s = *%s;\n", g.ptr(), g.pptr())
		} else {
			fmt.Fprintf(&g.b, "%s = %s;\n", g.ptr(), g.ptr())
		}
	case 6:
		if g.cfg.PtrPtrs > 0 {
			fmt.Fprintf(&g.b, "*%s = %s;\n", g.pptr(), g.ptr())
		} else {
			fmt.Fprintf(&g.b, "%s = &%s;\n", g.ptr(), g.obj())
		}
	case 7:
		fmt.Fprintf(&g.b, "%s = null;\n", g.ptr())
	case 8:
		fmt.Fprintf(&g.b, "%s = malloc;\n", g.ptr())
	case 9:
		fmt.Fprintf(&g.b, "free(%s);\n", g.ptr())
	case 10:
		if g.cfg.Locks > 0 {
			a, b := g.rng.Intn(g.cfg.Locks), g.rng.Intn(g.cfg.Locks)
			if g.rng.Intn(2) == 0 {
				fmt.Fprintf(&g.b, "l%d = &m%d;\n", a, b)
			} else {
				fmt.Fprintf(&g.b, "l%d = l%d;\n", a, b)
			}
		} else {
			fmt.Fprintf(&g.b, "%s = %s;\n", g.ptr(), g.ptr())
		}
	case 11:
		// Call an allowed function.
		limit := fnIdx
		if g.cfg.Recursion {
			limit = g.cfg.Funcs
		}
		if limit > 0 {
			fmt.Fprintf(&g.b, "f%d(%s);\n", g.rng.Intn(limit), g.ptr())
		} else {
			fmt.Fprintf(&g.b, "%s = %s;\n", g.ptr(), g.ptr())
		}
	case 12:
		g.b.WriteString("if (*) {\n")
		g.inner(depth, fnIdx)
		g.indent(depth)
		if g.rng.Intn(2) == 0 {
			g.b.WriteString("} else {\n")
			g.inner(depth, fnIdx)
			g.indent(depth)
		}
		g.b.WriteString("}\n")
	case 13:
		g.b.WriteString("while (*) {\n")
		g.inner(depth, fnIdx)
		g.indent(depth)
		g.b.WriteString("}\n")
	}
}

// inner emits a short nested statement run.
func (g *randGen) inner(depth, fnIdx int) {
	n := 1 + g.rng.Intn(3)
	for i := 0; i < n; i++ {
		g.stmt(depth+1, fnIdx)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
