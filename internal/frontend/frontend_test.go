package frontend

import (
	"strings"
	"testing"

	"bootstrap/internal/cpl"
	"bootstrap/internal/ir"
)

func lower(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := LowerSource(src)
	if err != nil {
		t.Fatalf("LowerSource failed: %v\nsource:\n%s", err, src)
	}
	return p
}

// stmtStrings returns the canonical statements of fn (skips omitted).
func stmtStrings(p *ir.Program, fnName string) []string {
	var out []string
	f := p.Func(p.FuncByName[fnName])
	for _, loc := range f.Nodes {
		if p.Node(loc).Stmt.Op == ir.OpSkip || p.Node(loc).Stmt.Op == ir.OpRet {
			continue
		}
		out = append(out, p.StmtString(loc))
	}
	return out
}

func TestCanonicalForms(t *testing.T) {
	p := lower(t, `
		int *x, *y; int **px;
		void main() {
			x = y;
			x = &y;
			*px = y;
			x = *px;
		}
	`)
	got := stmtStrings(p, "main")
	want := []string{"x = y", "x = &y", "*px = y", "x = *px"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("stmt %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestNestedDerefIntroducesTemps(t *testing.T) {
	p := lower(t, `
		int ***ppp; int *x;
		void main() {
			x = **ppp;
			**ppp = x;
		}
	`)
	got := stmtStrings(p, "main")
	// x = **ppp  =>  t1 = *ppp; x = *t1
	// **ppp = x  =>  t2 = *ppp; *t2 = x
	want := []string{
		"main.$t1 = *ppp", "x = *main.$t1",
		"main.$t2 = *ppp", "*main.$t2 = x",
	}
	if strings.Join(got, "; ") != strings.Join(want, "; ") {
		t.Errorf("got %v\nwant %v", got, want)
	}
}

func TestAddrOfDerefCancels(t *testing.T) {
	p := lower(t, `
		int *x, *y;
		void main() { x = &*y; }
	`)
	got := stmtStrings(p, "main")
	if len(got) != 1 || got[0] != "x = y" {
		t.Errorf("&*y should cancel to y; got %v", got)
	}
}

func TestMallocFreeNull(t *testing.T) {
	p := lower(t, `
		void main() {
			int *a, *b;
			a = malloc;
			b = malloc;
			free(a);
			b = null;
		}
	`)
	got := stmtStrings(p, "main")
	if len(got) != 4 {
		t.Fatalf("got %d stmts: %v", len(got), got)
	}
	if !strings.HasPrefix(got[0], "main.a = &alloc@") {
		t.Errorf("stmt 0 = %q, want a = &alloc@...", got[0])
	}
	if got[0] == strings.Replace(got[1], "main.b", "main.a", 1) {
		t.Errorf("two allocation sites share an abstract object: %q vs %q", got[0], got[1])
	}
	if got[2] != "free(main.a)" || got[3] != "main.b = null" {
		t.Errorf("free/null lowering = %v", got[2:])
	}
}

func TestStructFlattening(t *testing.T) {
	p := lower(t, `
		struct Inner { int *q; };
		struct S { int *f; struct Inner in; };
		struct S s;
		void main() {
			int *x;
			s.f = x;
			x = s.in.q;
		}
	`)
	for _, name := range []string{"s.f", "s.in.q"} {
		if _, ok := p.VarByName[name]; !ok {
			t.Errorf("flattened variable %q missing", name)
		}
	}
	got := stmtStrings(p, "main")
	want := []string{"s.f = main.x", "main.x = s.in.q"}
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestWholeStructCopy(t *testing.T) {
	p := lower(t, `
		struct S { int *f; int *g; };
		struct S a, b;
		void main() { a = b; }
	`)
	got := stmtStrings(p, "main")
	want := []string{"a.f = b.f", "a.g = b.g"}
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Errorf("struct copy = %v, want %v", got, want)
	}
}

func TestArrowDegradesToDeref(t *testing.T) {
	p := lower(t, `
		struct S { int *f; };
		struct S *ps;
		int *x;
		void main() {
			x = ps->f;
			ps->f = x;
		}
	`)
	got := stmtStrings(p, "main")
	want := []string{"main.$t1 = *ps", "x = *main.$t1", "*ps = x"}
	// x = ps->f lowers via a temp load then a load of the temp OR directly
	// as a double load; accept the canonical two-instruction form.
	if strings.Join(got, ";") != strings.Join(want, ";") {
		// Alternative acceptable lowering: x = *ps directly.
		alt := []string{"x = *ps", "*ps = x"}
		if strings.Join(got, ";") != strings.Join(alt, ";") {
			t.Errorf("got %v, want %v or %v", got, want, alt)
		}
	}
}

func TestDirectCallLowering(t *testing.T) {
	p := lower(t, `
		int *id(int *a) { return a; }
		void main() {
			int *x, *y;
			y = id(x);
		}
	`)
	got := stmtStrings(p, "main")
	want := []string{"id.a = main.x", "call id(main.x)", "main.y = id.$ret"}
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Errorf("got %v, want %v", got, want)
	}
	// The return-binding node must link back to the call node.
	f := p.Func(p.FuncByName["main"])
	var callLoc, retLoc ir.Loc = ir.NoLoc, ir.NoLoc
	for _, loc := range f.Nodes {
		switch p.Node(loc).Stmt.Op {
		case ir.OpCall:
			callLoc = loc
		case ir.OpCopy:
			if p.Node(loc).CallLoc != ir.NoLoc {
				retLoc = loc
			}
		}
	}
	if callLoc == ir.NoLoc || retLoc == ir.NoLoc || p.Node(retLoc).CallLoc != callLoc {
		t.Errorf("return binding not linked to call: call=%d ret=%d", callLoc, retLoc)
	}
	// Callee body: return a => id.$ret = id.a
	gotID := stmtStrings(p, "id")
	if len(gotID) != 1 || gotID[0] != "id.$ret = id.a" {
		t.Errorf("id body = %v", gotID)
	}
}

func TestIfWhileCFG(t *testing.T) {
	p := lower(t, `
		int *x, *y;
		void main() {
			if (*) { x = y; } else { y = x; }
			while (*) { x = y; }
		}
	`)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// The while head must have a back edge: some node with a successor
	// whose location is smaller.
	f := p.Func(p.FuncByName["main"])
	hasBackEdge := false
	for _, loc := range f.Nodes {
		for _, s := range p.Node(loc).Succs {
			if s < loc {
				hasBackEdge = true
			}
		}
	}
	if !hasBackEdge {
		t.Error("while loop produced no back edge")
	}
}

func TestReturnWiresToExit(t *testing.T) {
	p := lower(t, `
		int *g;
		int *f() {
			if (*) { return g; }
			return null;
		}
	`)
	f := p.Func(p.FuncByName["f"])
	exit := p.Node(f.Exit)
	if len(exit.Preds) < 2 {
		t.Errorf("exit has %d preds, want >= 2 (both returns)", len(exit.Preds))
	}
	got := stmtStrings(p, "f")
	want := []string{"f.$ret = g", "f.$ret = null"}
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestFunctionPointerLowering(t *testing.T) {
	p := lower(t, `
		void *fp;
		int *id(int *a) { return a; }
		void main() {
			int *x, *y;
			fp = &id;
			y = (*fp)(x);
		}
	`)
	if !HasIndirectCalls(p) {
		t.Fatal("indirect call should remain as a placeholder before Devirtualize")
	}
	got := stmtStrings(p, "main")
	if got[0] != "fp = &$fn:id" {
		t.Errorf("fp = &id lowered to %q", got[0])
	}
	// Devirtualize with an oracle that returns id.
	idID := p.FuncByName["id"]
	err := Devirtualize(p, func(loc ir.Loc, fptr ir.VarID) []ir.FuncID {
		return []ir.FuncID{idID}
	})
	if err != nil {
		t.Fatalf("Devirtualize: %v", err)
	}
	if HasIndirectCalls(p) {
		t.Error("placeholders remain after Devirtualize")
	}
	got = stmtStrings(p, "main")
	joined := strings.Join(got, ";")
	for _, want := range []string{"id.a = main.x", "call id(main.x)", "main.y = id.$ret"} {
		if !strings.Contains(joined, want) {
			t.Errorf("devirtualized body %v missing %q", got, want)
		}
	}
}

func TestDevirtualizeNoTargets(t *testing.T) {
	p := lower(t, `
		void *fp;
		void main() { (*fp)(); }
	`)
	err := Devirtualize(p, func(ir.Loc, ir.VarID) []ir.FuncID { return nil })
	if err != nil {
		t.Fatalf("Devirtualize: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDevirtualizeArityFilter(t *testing.T) {
	p := lower(t, `
		void *fp;
		int *one(int *a) { return a; }
		int *two(int *a, int *b) { return b; }
		void main() {
			int *x, *y;
			y = (*fp)(x);
		}
	`)
	all := []ir.FuncID{p.FuncByName["one"], p.FuncByName["two"]}
	if err := Devirtualize(p, func(ir.Loc, ir.VarID) []ir.FuncID { return all }); err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(stmtStrings(p, "main"), ";")
	if !strings.Contains(joined, "call one(") {
		t.Error("arity-1 target dropped")
	}
	if strings.Contains(joined, "call two(") {
		t.Error("arity-2 target should have been filtered for a 1-arg call")
	}
}

func TestLockMarking(t *testing.T) {
	p := lower(t, `
		lock *l1, *l2;
		int *x;
		void main() { l1 = malloc; }
	`)
	for _, name := range []string{"l1", "l2"} {
		if !p.Var(p.VarByName[name]).IsLock {
			t.Errorf("%s should be a lock pointer", name)
		}
	}
	if p.Var(p.VarByName["x"]).IsLock {
		t.Error("x should not be a lock pointer")
	}
	// The heap object allocated into a lock pointer is a lock object.
	found := false
	for _, v := range p.Vars {
		if v.Kind == ir.KindHeap && v.IsLock {
			found = true
		}
	}
	if !found {
		t.Error("heap object allocated into a lock pointer should be marked")
	}
}

func TestPointerArithmetic(t *testing.T) {
	p := lower(t, `
		int *a, *b, *c;
		void main() {
			a = b + 1;
			a = b + c;
		}
	`)
	got := stmtStrings(p, "main")
	if got[0] != "a = b" {
		t.Errorf("p+int should alias result with pointer operand; got %q", got[0])
	}
	joined := strings.Join(got[1:], ";")
	if !strings.Contains(joined, "a = b") || !strings.Contains(joined, "a = c") {
		t.Errorf("p+q should alias result with both operands; got %v", got[1:])
	}
}

func TestScopingAndShadowing(t *testing.T) {
	p := lower(t, `
		int *x, *y;
		void main() {
			x = y;
			{
				int *x;
				x = y;
			}
			x = y;
		}
	`)
	got := stmtStrings(p, "main")
	want := []string{"x = y", "main.x = y", "x = y"}
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestGlobalInitEntry(t *testing.T) {
	p := lower(t, `
		void helper() { }
		void main() { helper(); }
	`)
	if p.Func(p.Entry).Name != "main" {
		t.Errorf("entry = %s, want main", p.Func(p.Entry).Name)
	}
	p2 := lower(t, `void only() { }`)
	if p2.Func(p2.Entry).Name != "only" {
		t.Errorf("entry defaults to first function; got %s", p2.Func(p2.Entry).Name)
	}
}

func TestLowerErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{`void main() { x = y; }`, "undeclared identifier"},
		{`int *x; void main() { int *x; int *x; }`, "duplicate declaration"},
		{`struct S { int *f; }; void f(struct S s) { }`, "struct-by-value parameters"},
		{`struct S { int *f; }; struct S f() { }`, "struct-by-value returns"},
		{`struct S { int *f; }; struct S s; int **p; void main() { p = &s; }`, "address of a whole struct"},
		{`void f() { } void main() { int *x; x = f(); }`, "void function"},
		{`void f(int *a) { } void main() { f(); }`, "want 1"},
		{`void main() { return g; }`, "void function"},
		{`int *x; void main() { x = 1 == 2; x = *x; 3 = x; }`, "cannot assign"},
		{`struct S { int *f; }; struct S s; int *x; void main() { x = s.g; }`, "no field"},
		{`int *x; void x() { }`, "collides"},
		{`void f() { } void f() { }`, "duplicate function"},
		{`struct S { int *f; }; struct S { int *g; }; void main() { }`, "duplicate struct"},
	}
	for _, tc := range cases {
		_, err := LowerSource(tc.src)
		if err == nil {
			t.Errorf("LowerSource(%q) succeeded, want error with %q", tc.src, tc.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("LowerSource(%q) error = %q, want substring %q", tc.src, err, tc.wantSub)
		}
	}
}

func TestValidateAfterLowering(t *testing.T) {
	srcs := []string{
		`void main() { }`,
		`int *g; int *f(int *a) { if (*) { return a; } return g; }
		 void main() { int *x; x = f(g); x = f(x); }`,
		`int **pp; int *p; int a;
		 void main() { p = &a; pp = &p; *pp = p; p = *pp; while (*) { p = *pp; } }`,
	}
	for _, src := range srcs {
		p := lower(t, src)
		if err := p.Validate(); err != nil {
			t.Errorf("Validate(%q): %v", src, err)
		}
	}
}

func TestMustLowerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustLower should panic on bad input")
		}
	}()
	MustLower(cpl.MustParse(`void main() { x = y; }`))
}

func TestRvalueContexts(t *testing.T) {
	// Arguments and stores force rvalueToVar through every expression
	// shape (temps for &x, *x, malloc, null, calls, arithmetic).
	p := lower(t, `
		struct S { int *f; };
		struct S s;
		struct S *ps;
		int a, b;
		int *g;
		int **pp;
		int *id(int *v) { return v; }
		void sink(int *v) { }
		void main() {
			sink(&a);          // addr arg
			sink(*pp);         // deref arg
			sink(malloc);      // heap arg
			sink(null);        // null arg
			sink(5);           // non-pointer arg: no binding
			sink(id(&b));      // nested call arg
			sink(s.f);         // field arg
			sink(ps->f);       // arrow arg
			sink(&s.f);        // addr-of-field arg
			sink(&*g);         // &* cancels
			sink(&ps->f);      // degrades to ps
			sink(g + 1);       // arithmetic arg
			sink(id);          // function name decays to address
			*pp = id(&a);      // call as store source
		}
	`)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// The non-pointer arg must not bind the parameter.
	count := 0
	for _, n := range p.Nodes {
		if n.Stmt.Op == ir.OpCall && p.Func(n.Stmt.Callee).Name == "sink" {
			count++
		}
	}
	if count != 13 {
		t.Errorf("expected 13 sink calls, got %d", count)
	}
}

func TestAssignToVarShapes(t *testing.T) {
	p := lower(t, `
		struct S { int *f; };
		struct S s;
		struct S *ps;
		int a;
		int *x, *y;
		int **pp;
		int *id(int *v) { return v; }
		void main() {
			x = s.f;      // field read
			x = ps->f;    // arrow read
			x = &*y;      // cancel
			x = &s.f;     // addr of field
			x = &ps->f;   // degrades to ps value
			x = y + x;    // two-pointer arithmetic diamond
			x = 1 + 2;    // non-pointer arithmetic: touch only
			x = id;       // function decay
			*pp = 7;      // non-pointer store: touch *pp
		}
	`)
	found := false
	for _, n := range p.Nodes {
		if n.Stmt.Op == ir.OpTouch && n.Stmt.Src != ir.NoVar {
			found = true
		}
	}
	if !found {
		t.Error("store of a non-pointer should produce a write-through touch")
	}
}

func TestNestedStructCopy(t *testing.T) {
	p := lower(t, `
		struct Inner { int *q; };
		struct S { int *f; struct Inner in; };
		struct S s1, s2;
		void main() {
			s1 = s2;
			s1.in = s2.in;  // sub-struct copy
		}
	`)
	got := stmtStrings(p, "main")
	want := []string{"s1.f = s2.f", "s1.in.q = s2.in.q", "s1.in.q = s2.in.q"}
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestArrowStore(t *testing.T) {
	p := lower(t, `
		struct S { int *f; };
		struct S *ps;
		int *x;
		void main() { ps->f = x; }
	`)
	got := stmtStrings(p, "main")
	if len(got) != 1 || got[0] != "*ps = x" {
		t.Errorf("p->f = x should lower to *p = x; got %v", got)
	}
}

func TestAssumeLowering(t *testing.T) {
	p := lower(t, `
		int a;
		int *x, *y;
		int count;
		void main() {
			if (x == y) { x = &a; }
			if (x != y) { y = &a; } else { y = x; }
			while (x == y) { x = y; }
			if (count == 3) { x = y; }   // integer compare: no assume
			if (x == *y) { x = y; }      // complex operand: no assume
		}
	`)
	var eq, neq int
	for _, n := range p.Nodes {
		switch n.Stmt.Op {
		case ir.OpAssumeEq:
			eq++
		case ir.OpAssumeNeq:
			neq++
		}
	}
	// if(==): eq+neq; if(!=): neq+eq; while(==): eq (body) + neq (exit).
	if eq != 3 || neq != 3 {
		t.Errorf("assume counts eq=%d neq=%d, want 3 and 3", eq, neq)
	}
}

func TestStructArgAndMisc(t *testing.T) {
	// Error paths in rvalue position.
	cases := []struct {
		src     string
		wantSub string
	}{
		{`struct S { int *f; }; struct S s; void g(int *v) { } void main() { g(&s); }`, "address of a whole struct"},
		{`int *x; void main() { x = *5; }`, "cannot dereference"},
		{`int *x; void main() { *5 = x; }`, "cannot dereference"},
		{`int a; void main() { a.f = 3; }`, "not a struct"},
		{`void f() { } void main() { f()(); }`, "unsupported callee"},
		{`int *x; void g(int *v) { } void main() { g(*3); }`, "cannot dereference"},
	}
	for _, tc := range cases {
		_, err := LowerSource(tc.src)
		if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("LowerSource(%q) error = %v, want substring %q", tc.src, err, tc.wantSub)
		}
	}
}
