package frontend

import (
	"bootstrap/internal/cpl"
	"bootstrap/internal/ir"
)

// resolved is the outcome of name resolution: either a variable or a
// function (function names decay to function values, as in C).
type resolved struct {
	v  ir.VarID
	fn ir.FuncID // set (with v == NoVar) when the name is a function
}

func (lw *lowerer) resolve(name string, pos cpl.Pos) (resolved, error) {
	for i := len(lw.scopes) - 1; i >= 0; i-- {
		if v, ok := lw.scopes[i][name]; ok {
			return resolved{v: v, fn: ir.NoFunc}, nil
		}
	}
	if f, ok := lw.prog.FuncByName[name]; ok {
		return resolved{v: ir.NoVar, fn: f}, nil
	}
	return resolved{}, posErr(pos, "undeclared identifier %s", name)
}

// funcValue returns (creating on demand) the KindFunc object representing
// function f as a value; function pointers point to this object.
func (lw *lowerer) funcValue(f ir.FuncID) ir.VarID {
	if v, ok := lw.prog.FuncValue[f]; ok {
		return v
	}
	name := "$fn:" + lw.prog.Func(f).Name
	v := lw.prog.AddVar(name, ir.KindFunc, f)
	lw.varTypes[v] = typeInfo{base: "void", stars: 0}
	lw.prog.FuncValue[f] = v
	return v
}

// resolvePath resolves an Ident or dot-field chain to a variable. For a
// flattened struct it returns the struct-root pseudo variable; for a leaf
// field the flattened field variable.
func (lw *lowerer) resolvePath(e cpl.Expr) (ir.VarID, error) {
	switch x := e.(type) {
	case *cpl.Ident:
		r, err := lw.resolve(x.Name, x.Pos)
		if err != nil {
			return ir.NoVar, err
		}
		if r.fn != ir.NoFunc {
			return ir.NoVar, posErr(x.Pos, "function %s used as a variable; take its address or call it", x.Name)
		}
		return r.v, nil
	case *cpl.Field:
		if x.Arrow {
			return ir.NoVar, posErr(x.Pos, "internal: arrow field in resolvePath")
		}
		base, err := lw.resolvePath(x.X)
		if err != nil {
			return ir.NoVar, err
		}
		prefix, structName, ok := lw.isStructRoot(base)
		if !ok {
			return ir.NoVar, posErr(x.Pos, "%s is not a struct value", x.X)
		}
		fieldTI, ok := lw.fieldType(structName, x.Name)
		if !ok {
			return ir.NoVar, posErr(x.Pos, "struct %s has no field %s", structName, x.Name)
		}
		fq := prefix + "." + x.Name
		if fieldTI.isStruct && fieldTI.stars == 0 {
			return lw.structRoot(fq, fieldTI.base), nil
		}
		v, ok := lw.prog.VarByName[fq]
		if !ok {
			return ir.NoVar, posErr(x.Pos, "internal: flattened field %s missing", fq)
		}
		return v, nil
	}
	return ir.NoVar, posErr(e.Position(), "expected a variable or field path, found %s", e)
}

func (lw *lowerer) fieldType(structName, field string) (typeInfo, bool) {
	sd, ok := lw.structs[structName]
	if !ok {
		return typeInfo{}, false
	}
	for _, fd := range sd.Fields {
		for _, d := range fd.Names {
			if d.Name == field {
				return typeInfo{base: fd.Type.Base, isStruct: fd.Type.IsStruct, stars: d.Stars}, true
			}
		}
	}
	return typeInfo{}, false
}

// isPathExpr reports whether e is an Ident or dot-field chain (an lvalue
// resolvable without emitting code).
func isPathExpr(e cpl.Expr) bool {
	switch x := e.(type) {
	case *cpl.Ident:
		return true
	case *cpl.Field:
		return !x.Arrow && isPathExpr(x.X)
	}
	return false
}

// rvalueToVar lowers e to a variable holding its value, emitting canonical
// statements as needed. It returns NoVar for non-pointer values (integer
// literals, comparisons), which callers treat as "no pointer effect".
func (lw *lowerer) rvalueToVar(e cpl.Expr) (ir.VarID, error) {
	switch x := e.(type) {
	case *cpl.Ident:
		r, err := lw.resolve(x.Name, x.Pos)
		if err != nil {
			return ir.NoVar, err
		}
		if r.fn != ir.NoFunc {
			// A bare function name decays to its address.
			t := lw.newTemp()
			lw.emit(ir.Stmt{Op: ir.OpAddr, Dst: t, Src: lw.funcValue(r.fn), Callee: ir.NoFunc, FPtr: ir.NoVar})
			return t, nil
		}
		return r.v, nil
	case *cpl.Field:
		if !x.Arrow {
			return lw.resolvePath(x)
		}
		// p->f reads through the pointer, field-insensitively: *p.
		v, err := lw.rvalueToVar(x.X)
		if err != nil {
			return ir.NoVar, err
		}
		if v == ir.NoVar {
			return ir.NoVar, posErr(x.Pos, "cannot dereference a non-pointer value")
		}
		t := lw.newTemp()
		lw.emit(ir.Stmt{Op: ir.OpLoad, Dst: t, Src: v, Callee: ir.NoFunc, FPtr: ir.NoVar})
		return t, nil
	case *cpl.Deref:
		v, err := lw.rvalueToVar(x.X)
		if err != nil {
			return ir.NoVar, err
		}
		if v == ir.NoVar {
			return ir.NoVar, posErr(x.Pos, "cannot dereference a non-pointer value")
		}
		t := lw.newTemp()
		lw.emit(ir.Stmt{Op: ir.OpLoad, Dst: t, Src: v, Callee: ir.NoFunc, FPtr: ir.NoVar})
		return t, nil
	case *cpl.AddrOf:
		return lw.addrToVar(x)
	case *cpl.Malloc:
		h := lw.newHeapVar(x.Pos)
		t := lw.newTemp()
		lw.emit(ir.Stmt{Op: ir.OpAddr, Dst: t, Src: h, Callee: ir.NoFunc, FPtr: ir.NoVar})
		return t, nil
	case *cpl.Null:
		t := lw.newTemp()
		lw.emit(ir.Stmt{Op: ir.OpNullify, Dst: t, Src: ir.NoVar, Callee: ir.NoFunc, FPtr: ir.NoVar})
		return t, nil
	case *cpl.Num:
		return ir.NoVar, nil
	case *cpl.Call:
		t := lw.newTemp()
		if _, err := lw.lowerCall(x, t); err != nil {
			return ir.NoVar, err
		}
		return t, nil
	case *cpl.Binary:
		t := lw.newTemp()
		emitted, err := lw.lowerBinaryInto(t, x)
		if err != nil {
			return ir.NoVar, err
		}
		if !emitted {
			return ir.NoVar, nil
		}
		return t, nil
	}
	return ir.NoVar, posErr(e.Position(), "unsupported expression %s", e)
}

// addrToVar lowers `&x` into a fresh temp.
func (lw *lowerer) addrToVar(a *cpl.AddrOf) (ir.VarID, error) {
	switch x := a.X.(type) {
	case *cpl.Deref:
		// &*e == e.
		return lw.rvalueToVar(x.X)
	case *cpl.Field:
		if x.Arrow {
			// &p->f degrades to p under field-insensitive heap objects.
			return lw.rvalueToVar(x.X)
		}
	}
	if id, ok := a.X.(*cpl.Ident); ok {
		if r, err := lw.resolve(id.Name, id.Pos); err == nil && r.fn != ir.NoFunc {
			t := lw.newTemp()
			lw.emit(ir.Stmt{Op: ir.OpAddr, Dst: t, Src: lw.funcValue(r.fn), Callee: ir.NoFunc, FPtr: ir.NoVar})
			return t, nil
		}
	}
	v, err := lw.resolvePath(a.X)
	if err != nil {
		return ir.NoVar, err
	}
	if _, _, isRoot := lw.isStructRoot(v); isRoot {
		return ir.NoVar, posErr(a.Pos, "taking the address of a whole struct is not supported; take a field's address")
	}
	t := lw.newTemp()
	lw.emit(ir.Stmt{Op: ir.OpAddr, Dst: t, Src: v, Callee: ir.NoFunc, FPtr: ir.NoVar})
	return t, nil
}

// assignToVar lowers `dst = e` in canonical form without a temporary when
// possible.
func (lw *lowerer) assignToVar(dst ir.VarID, e cpl.Expr, pos cpl.Pos) error {
	switch x := e.(type) {
	case *cpl.Ident:
		r, err := lw.resolve(x.Name, x.Pos)
		if err != nil {
			return err
		}
		if r.fn != ir.NoFunc {
			lw.emit(ir.Stmt{Op: ir.OpAddr, Dst: dst, Src: lw.funcValue(r.fn), Callee: ir.NoFunc, FPtr: ir.NoVar})
			return nil
		}
		lw.emit(ir.Stmt{Op: ir.OpCopy, Dst: dst, Src: r.v, Callee: ir.NoFunc, FPtr: ir.NoVar})
		return nil
	case *cpl.Field:
		if !x.Arrow {
			v, err := lw.resolvePath(x)
			if err != nil {
				return err
			}
			lw.emit(ir.Stmt{Op: ir.OpCopy, Dst: dst, Src: v, Callee: ir.NoFunc, FPtr: ir.NoVar})
			return nil
		}
		v, err := lw.rvalueToVar(x.X)
		if err != nil {
			return err
		}
		if v == ir.NoVar {
			return posErr(x.Pos, "cannot dereference a non-pointer value")
		}
		lw.emit(ir.Stmt{Op: ir.OpLoad, Dst: dst, Src: v, Callee: ir.NoFunc, FPtr: ir.NoVar})
		return nil
	case *cpl.Deref:
		v, err := lw.rvalueToVar(x.X)
		if err != nil {
			return err
		}
		if v == ir.NoVar {
			return posErr(x.Pos, "cannot dereference a non-pointer value")
		}
		lw.emit(ir.Stmt{Op: ir.OpLoad, Dst: dst, Src: v, Callee: ir.NoFunc, FPtr: ir.NoVar})
		return nil
	case *cpl.AddrOf:
		switch inner := x.X.(type) {
		case *cpl.Deref:
			return lw.assignToVar(dst, inner.X, pos)
		case *cpl.Field:
			if inner.Arrow {
				return lw.assignToVar(dst, inner.X, pos)
			}
		case *cpl.Ident:
			if r, err := lw.resolve(inner.Name, inner.Pos); err == nil && r.fn != ir.NoFunc {
				lw.emit(ir.Stmt{Op: ir.OpAddr, Dst: dst, Src: lw.funcValue(r.fn), Callee: ir.NoFunc, FPtr: ir.NoVar})
				return nil
			}
		}
		v, err := lw.resolvePath(x.X)
		if err != nil {
			return err
		}
		if _, _, isRoot := lw.isStructRoot(v); isRoot {
			return posErr(x.Pos, "taking the address of a whole struct is not supported; take a field's address")
		}
		lw.emit(ir.Stmt{Op: ir.OpAddr, Dst: dst, Src: v, Callee: ir.NoFunc, FPtr: ir.NoVar})
		return nil
	case *cpl.Malloc:
		h := lw.newHeapVar(x.Pos)
		if lw.prog.Var(dst).IsLock {
			lw.prog.Var(h).IsLock = true
		}
		lw.emit(ir.Stmt{Op: ir.OpAddr, Dst: dst, Src: h, Callee: ir.NoFunc, FPtr: ir.NoVar})
		return nil
	case *cpl.Null:
		lw.emit(ir.Stmt{Op: ir.OpNullify, Dst: dst, Src: ir.NoVar, Callee: ir.NoFunc, FPtr: ir.NoVar})
		return nil
	case *cpl.Num:
		// No alias effect, but the write is recorded for client analyses
		// (e.g. race detection).
		lw.emit(ir.Stmt{Op: ir.OpTouch, Dst: dst, Src: ir.NoVar, Callee: ir.NoFunc, FPtr: ir.NoVar})
		return nil
	case *cpl.Call:
		_, err := lw.lowerCall(x, dst)
		return err
	case *cpl.Binary:
		emitted, err := lw.lowerBinaryInto(dst, x)
		if err == nil && !emitted {
			lw.emit(ir.Stmt{Op: ir.OpTouch, Dst: dst, Src: ir.NoVar, Callee: ir.NoFunc, FPtr: ir.NoVar})
		}
		return err
	}
	return posErr(e.Position(), "unsupported expression %s", e)
}

// lowerBinaryInto lowers `dst = x op y`. Comparisons yield non-pointer
// values. Pointer arithmetic aliases dst with every pointer operand
// nondeterministically (paper, Remark 1: "aliasing all pointer operands
// with the resulting pointer"). Reports whether any statement was emitted.
func (lw *lowerer) lowerBinaryInto(dst ir.VarID, b *cpl.Binary) (bool, error) {
	if b.Op != cpl.OpAdd && b.Op != cpl.OpSub {
		return false, nil // comparison: non-pointer result
	}
	vx, err := lw.rvalueToVar(b.X)
	if err != nil {
		return false, err
	}
	vy, err := lw.rvalueToVar(b.Y)
	if err != nil {
		return false, err
	}
	switch {
	case vx == ir.NoVar && vy == ir.NoVar:
		return false, nil
	case vy == ir.NoVar:
		lw.emit(ir.Stmt{Op: ir.OpCopy, Dst: dst, Src: vx, Callee: ir.NoFunc, FPtr: ir.NoVar})
		return true, nil
	case vx == ir.NoVar:
		lw.emit(ir.Stmt{Op: ir.OpCopy, Dst: dst, Src: vy, Callee: ir.NoFunc, FPtr: ir.NoVar})
		return true, nil
	default:
		// Both operands are pointers: dst may alias either, chosen
		// nondeterministically via a branch diamond.
		branch := lw.emit(skipStmt("ptr-arith"))
		lw.frontier = []ir.Loc{branch}
		a1 := lw.emit(ir.Stmt{Op: ir.OpCopy, Dst: dst, Src: vx, Callee: ir.NoFunc, FPtr: ir.NoVar})
		lw.frontier = []ir.Loc{branch}
		a2 := lw.emit(ir.Stmt{Op: ir.OpCopy, Dst: dst, Src: vy, Callee: ir.NoFunc, FPtr: ir.NoVar})
		lw.frontier = []ir.Loc{a1, a2}
		join := lw.emit(skipStmt("endptr-arith"))
		lw.frontier = []ir.Loc{join}
		return true, nil
	}
}

// lowerAssign lowers a general `lhs = rhs` statement.
func (lw *lowerer) lowerAssign(lhs, rhs cpl.Expr, pos cpl.Pos) error {
	switch l := lhs.(type) {
	case *cpl.Ident, *cpl.Field:
		if f, ok := l.(*cpl.Field); ok && f.Arrow {
			// p->f = rhs degrades to *p = rhs.
			return lw.lowerStore(f.X, rhs, pos)
		}
		v, err := lw.resolvePath(l)
		if err != nil {
			return err
		}
		if prefix, sname, isRoot := lw.isStructRoot(v); isRoot {
			return lw.lowerStructCopy(prefix, sname, rhs, pos)
		}
		return lw.assignToVar(v, rhs, pos)
	case *cpl.Deref:
		return lw.lowerStore(l.X, rhs, pos)
	}
	return posErr(pos, "cannot assign to %s", lhs)
}

// lowerStore lowers `*ptrExpr = rhs`.
func (lw *lowerer) lowerStore(ptrExpr, rhs cpl.Expr, pos cpl.Pos) error {
	v, err := lw.rvalueToVar(ptrExpr)
	if err != nil {
		return err
	}
	if v == ir.NoVar {
		return posErr(pos, "cannot dereference a non-pointer value")
	}
	w, err := lw.rvalueToVar(rhs)
	if err != nil {
		return err
	}
	if w == ir.NoVar {
		// Storing a non-pointer value: no alias effect, but the objects
		// written through v are recorded for client analyses.
		lw.emit(ir.Stmt{Op: ir.OpTouch, Dst: ir.NoVar, Src: v, Callee: ir.NoFunc, FPtr: ir.NoVar})
		return nil
	}
	lw.emit(ir.Stmt{Op: ir.OpStore, Dst: v, Src: w, Callee: ir.NoFunc, FPtr: ir.NoVar})
	return nil
}

// lowerStructCopy lowers a whole-struct assignment `s1 = s2` as fieldwise
// copies of the flattened leaves.
func (lw *lowerer) lowerStructCopy(dstPrefix, structName string, rhs cpl.Expr, pos cpl.Pos) error {
	if !isPathExpr(rhs) {
		return posErr(pos, "struct assignment requires a struct variable on the right")
	}
	rv, err := lw.resolvePath(rhs)
	if err != nil {
		return err
	}
	srcPrefix, srcName, isRoot := lw.isStructRoot(rv)
	if !isRoot || srcName != structName {
		return posErr(pos, "struct assignment requires matching struct types")
	}
	for _, suffix := range lw.structFields(structName) {
		d, okD := lw.prog.VarByName[dstPrefix+suffix]
		s, okS := lw.prog.VarByName[srcPrefix+suffix]
		if !okD || !okS {
			return posErr(pos, "internal: flattened field %s missing", suffix)
		}
		lw.emit(ir.Stmt{Op: ir.OpCopy, Dst: d, Src: s, Callee: ir.NoFunc, FPtr: ir.NoVar})
	}
	return nil
}

// lowerCall lowers a call with optional result destination. For direct
// calls it emits parameter-binding copies, the call node, and the
// return-value binding. Indirect calls become placeholder nodes expanded by
// Devirtualize.
func (lw *lowerer) lowerCall(c *cpl.Call, dst ir.VarID) (ir.VarID, error) {
	// Resolve the callee.
	var callee ir.FuncID = ir.NoFunc
	var fptr ir.VarID = ir.NoVar
	switch fun := c.Fun.(type) {
	case *cpl.Ident:
		r, err := lw.resolve(fun.Name, fun.Pos)
		if err != nil {
			return ir.NoVar, err
		}
		if r.fn != ir.NoFunc {
			callee = r.fn
		} else {
			fptr = r.v // C-style call through a pointer variable
		}
	case *cpl.Deref:
		v, err := lw.rvalueToVar(fun.X)
		if err != nil {
			return ir.NoVar, err
		}
		if v == ir.NoVar {
			return ir.NoVar, posErr(fun.Pos, "cannot call through a non-pointer value")
		}
		fptr = v
	default:
		return ir.NoVar, posErr(c.Pos, "unsupported callee expression %s", c.Fun)
	}

	// Lower arguments left to right.
	args := make([]ir.VarID, len(c.Args))
	for i, a := range c.Args {
		av, err := lw.rvalueToVar(a)
		if err != nil {
			return ir.NoVar, err
		}
		args[i] = av
	}

	if callee != ir.NoFunc {
		f := lw.prog.Func(callee)
		if len(args) != len(f.Params) {
			return ir.NoVar, posErr(c.Pos, "call to %s with %d arguments, want %d", f.Name, len(args), len(f.Params))
		}
		if dst != ir.NoVar && f.Ret == ir.NoVar {
			return ir.NoVar, posErr(c.Pos, "void function %s used as a value", f.Name)
		}
		for i, av := range args {
			if av != ir.NoVar {
				lw.emit(ir.Stmt{Op: ir.OpCopy, Dst: f.Params[i], Src: av, Callee: ir.NoFunc, FPtr: ir.NoVar})
			}
		}
		callLoc := lw.emit(ir.Stmt{Op: ir.OpCall, Dst: dst, Src: ir.NoVar, Callee: callee, FPtr: ir.NoVar, Args: args})
		if dst != ir.NoVar {
			ret := lw.emit(ir.Stmt{Op: ir.OpCopy, Dst: dst, Src: f.Ret, Callee: ir.NoFunc, FPtr: ir.NoVar})
			lw.prog.Node(ret).CallLoc = callLoc
		}
		return dst, nil
	}

	// Indirect call placeholder; targets are bound by Devirtualize.
	lw.emit(ir.Stmt{Op: ir.OpCall, Dst: dst, Src: ir.NoVar, Callee: ir.NoFunc, FPtr: fptr, Args: args})
	return dst, nil
}
