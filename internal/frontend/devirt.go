package frontend

import (
	"fmt"
	"sort"

	"bootstrap/internal/ir"
)

// Devirtualize expands every indirect-call placeholder node into a
// nondeterministic branch over the candidate targets, following the
// function-pointer treatment of Emami et al. that the paper adopts. For
// each target the expansion contains the parameter-binding copies, a direct
// call node, and (when the call's result is used and the target returns a
// value) a return-value binding node.
//
// targets is consulted per placeholder with the call location and the
// function-pointer variable; it typically queries a points-to analysis.
// Candidates whose arity does not match the call are dropped. A call with
// no viable target becomes a skip.
func Devirtualize(p *ir.Program, targets func(loc ir.Loc, fptr ir.VarID) []ir.FuncID) error {
	// Snapshot: expansion appends nodes, which must not be revisited.
	numNodes := len(p.Nodes)
	for li := 0; li < numNodes; li++ {
		n := p.Nodes[li]
		if n.Stmt.Op != ir.OpCall || n.Stmt.Callee != ir.NoFunc {
			continue
		}
		if n.Stmt.FPtr == ir.NoVar {
			return fmt.Errorf("devirtualize: L%d: indirect call without a function pointer", n.Loc)
		}
		cands := targets(n.Loc, n.Stmt.FPtr)
		// Deterministic order and arity filter.
		sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
		var viable []ir.FuncID
		for _, c := range cands {
			f := p.Func(c)
			if len(f.Params) != len(n.Stmt.Args) {
				continue
			}
			if n.Stmt.Dst != ir.NoVar && f.Ret == ir.NoVar {
				continue
			}
			viable = append(viable, c)
		}

		dst, args, fptr := n.Stmt.Dst, n.Stmt.Args, n.Stmt.FPtr

		// Turn the placeholder into a dispatch skip and splice a join node
		// in front of its successors.
		n.Stmt = ir.Stmt{Op: ir.OpSkip, Dst: ir.NoVar, Src: ir.NoVar, Callee: ir.NoFunc, FPtr: ir.NoVar,
			Comment: fmt.Sprintf("dispatch *%s", p.VarName(fptr))}
		join := p.AddNode(n.Fn, ir.Stmt{Op: ir.OpSkip, Dst: ir.NoVar, Src: ir.NoVar, Callee: ir.NoFunc, FPtr: ir.NoVar, Comment: "endcall"})
		jn := p.Node(join)
		// Move n's successors onto join.
		jn.Succs = n.Succs
		for _, s := range jn.Succs {
			preds := p.Node(s).Preds
			for i, pr := range preds {
				if pr == n.Loc {
					preds[i] = join
				}
			}
		}
		n.Succs = nil

		if len(viable) == 0 {
			p.AddEdge(n.Loc, join)
			continue
		}
		for _, g := range viable {
			f := p.Func(g)
			cur := n.Loc
			for i, av := range args {
				if av == ir.NoVar {
					continue
				}
				bind := p.AddNode(n.Fn, ir.Stmt{Op: ir.OpCopy, Dst: f.Params[i], Src: av, Callee: ir.NoFunc, FPtr: ir.NoVar})
				p.AddEdge(cur, bind)
				cur = bind
			}
			call := p.AddNode(n.Fn, ir.Stmt{Op: ir.OpCall, Dst: dst, Src: ir.NoVar, Callee: g, FPtr: fptr, Args: args})
			p.AddEdge(cur, call)
			cur = call
			if dst != ir.NoVar && f.Ret != ir.NoVar {
				ret := p.AddNode(n.Fn, ir.Stmt{Op: ir.OpCopy, Dst: dst, Src: f.Ret, Callee: ir.NoFunc, FPtr: ir.NoVar})
				p.Node(ret).CallLoc = call
				p.AddEdge(cur, ret)
				cur = ret
			}
			p.AddEdge(cur, join)
		}
	}
	return p.Validate()
}

// HasIndirectCalls reports whether p still contains indirect-call
// placeholder nodes.
func HasIndirectCalls(p *ir.Program) bool {
	for _, n := range p.Nodes {
		if n.Stmt.Op == ir.OpCall && n.Stmt.Callee == ir.NoFunc {
			return true
		}
	}
	return false
}
