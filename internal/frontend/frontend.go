// Package frontend lowers parsed CPL (package cpl) into the normalized IR
// (package ir) that all analyses consume. Lowering performs, per the
// paper's Remark 1:
//
//   - reduction of every pointer assignment to the four canonical forms
//     x = y, x = &y, *x = y, x = *y (introducing temporaries for nested
//     dereferences),
//   - struct flattening: a stack struct becomes one variable per field
//     (making the analyses field-sensitive for direct field accesses),
//   - heap modeling: `p = malloc` becomes `p = &allocLoc` for an abstract
//     heap object named by the allocation site; `free(p)` becomes
//     `p = null`,
//   - naive pointer arithmetic: the result of `p + n` aliases every pointer
//     operand,
//   - function pointers: `fp = &f` takes the address of a function value
//     object; indirect calls are lowered to placeholder call nodes that
//     Devirtualize later expands into branches over the resolved targets
//     (in the style of Emami et al., which the paper follows).
//
// Heap objects are field-insensitive blobs: `p->f` is lowered as `*p`.
// Taking the address of a whole stack struct is rejected; take the address
// of a field instead.
package frontend

import (
	"fmt"

	"bootstrap/internal/cpl"
	"bootstrap/internal/ir"
)

// Lower converts a parsed CPL file into IR. The returned program still
// contains placeholder indirect-call nodes; run Devirtualize (or use
// LowerAndResolve in package core) to expand them.
func Lower(file *cpl.File) (*ir.Program, error) {
	lw := &lowerer{
		prog:     ir.NewProgram(),
		structs:  map[string]*cpl.StructDecl{},
		varTypes: map[ir.VarID]typeInfo{},
		heapSeen: map[string]int{},
	}
	if err := lw.run(file); err != nil {
		return nil, err
	}
	if err := lw.prog.Validate(); err != nil {
		return nil, fmt.Errorf("frontend: internal error: %w", err)
	}
	return lw.prog, nil
}

// MustLower lowers a file and panics on error; for tests and examples.
func MustLower(file *cpl.File) *ir.Program {
	p, err := Lower(file)
	if err != nil {
		panic(err)
	}
	return p
}

// LowerSource parses and lowers CPL source text in one step.
func LowerSource(src string) (*ir.Program, error) {
	f, err := cpl.Parse(src)
	if err != nil {
		return nil, err
	}
	return Lower(f)
}

// typeInfo is the lowering-time type of a variable: enough to flatten
// struct copies and mark lock pointers.
type typeInfo struct {
	base     string
	isStruct bool
	stars    int
}

func (t typeInfo) isLockPtr() bool { return t.base == "lock" && t.stars >= 1 }

type lowerer struct {
	prog     *ir.Program
	structs  map[string]*cpl.StructDecl
	varTypes map[ir.VarID]typeInfo

	// Per-function state.
	fn             *ir.Func
	fnName         string
	scopes         []map[string]ir.VarID
	frontier       []ir.Loc
	pendingReturns []ir.Loc
	tempN          int

	heapSeen map[string]int
}

func posErr(p cpl.Pos, format string, args ...any) error {
	return fmt.Errorf("%s: %s", p, fmt.Sprintf(format, args...))
}

func (lw *lowerer) run(file *cpl.File) error {
	for _, sd := range file.Structs {
		if _, dup := lw.structs[sd.Name]; dup {
			return posErr(sd.Pos, "duplicate struct %s", sd.Name)
		}
		lw.structs[sd.Name] = sd
	}
	// Global scope.
	lw.scopes = []map[string]ir.VarID{{}}
	for _, vd := range file.Globals {
		if err := lw.declare(vd, "", ir.KindGlobal, ir.NoFunc); err != nil {
			return err
		}
	}
	// Register all functions (and their signatures) before lowering any
	// body so forward calls resolve.
	type fnInfo struct {
		decl *cpl.FuncDecl
		f    *ir.Func
	}
	var fns []fnInfo
	for _, fd := range file.Funcs {
		if _, dup := lw.prog.FuncByName[fd.Name]; dup {
			return posErr(fd.Pos, "duplicate function %s", fd.Name)
		}
		if _, clash := lw.scopes[0][fd.Name]; clash {
			return posErr(fd.Pos, "function %s collides with a global variable", fd.Name)
		}
		f := lw.prog.AddFunc(fd.Name)
		for _, prm := range fd.Params {
			ti := typeInfo{base: prm.Type.Base, isStruct: prm.Type.IsStruct, stars: prm.Stars}
			if ti.isStruct && ti.stars == 0 {
				return posErr(prm.Pos, "struct-by-value parameters are not supported; pass a pointer")
			}
			v := lw.newVar(fd.Name+"."+prm.Name, ir.KindParam, f.ID, ti)
			f.Params = append(f.Params, v)
		}
		if fd.Ret.IsStruct && fd.RetStars == 0 {
			return posErr(fd.Pos, "struct-by-value returns are not supported; return a pointer")
		}
		if !(fd.Ret.Base == "void" && fd.RetStars == 0) {
			ti := typeInfo{base: fd.Ret.Base, isStruct: fd.Ret.IsStruct, stars: fd.RetStars}
			f.Ret = lw.newVar(fd.Name+".$ret", ir.KindRet, f.ID, ti)
		}
		fns = append(fns, fnInfo{decl: fd, f: f})
	}
	for _, fi := range fns {
		if err := lw.lowerFunc(fi.decl, fi.f); err != nil {
			return err
		}
	}
	if id, ok := lw.prog.FuncByName["main"]; ok {
		lw.prog.Entry = id
	} else if len(lw.prog.Funcs) > 0 {
		lw.prog.Entry = lw.prog.Funcs[0].ID
	}
	return nil
}

func (lw *lowerer) newVar(name string, kind ir.VarKind, fn ir.FuncID, ti typeInfo) ir.VarID {
	v := lw.prog.AddVar(name, kind, fn)
	lw.varTypes[v] = ti
	if ti.isLockPtr() || (ti.base == "lock" && ti.stars == 0) {
		lw.prog.Var(v).IsLock = true
	}
	return v
}

// declare lowers one declaration statement. prefix qualifies local names
// ("fn."); struct variables flatten into one variable per (nested) field.
func (lw *lowerer) declare(vd *cpl.VarDecl, prefix string, kind ir.VarKind, fn ir.FuncID) error {
	for _, d := range vd.Names {
		scope := lw.scopes[len(lw.scopes)-1]
		if _, dup := scope[d.Name]; dup {
			return posErr(d.Pos, "duplicate declaration of %s", d.Name)
		}
		ti := typeInfo{base: vd.Type.Base, isStruct: vd.Type.IsStruct, stars: d.Stars}
		qname := prefix + d.Name
		// Shadowing in nested scopes needs distinct qualified names.
		if _, taken := lw.prog.VarByName[qname]; taken {
			for k := 2; ; k++ {
				cand := fmt.Sprintf("%s#%d", qname, k)
				if _, t := lw.prog.VarByName[cand]; !t {
					qname = cand
					break
				}
			}
		}
		if ti.isStruct && ti.stars == 0 {
			if err := lw.flattenStruct(qname, vd.Type.Base, kind, fn, d.Pos, 0); err != nil {
				return err
			}
			// The bare struct name resolves to a pseudo variable so field
			// paths can be built; it is registered under the flattened
			// root name with no variable of its own. We record the root in
			// scope with NoVar-like marker: instead, register a marker var?
			// Field resolution walks names syntactically, so we store the
			// qualified root in scope via a dedicated struct-root entry.
			scope[d.Name] = lw.structRoot(qname, vd.Type.Base)
		} else {
			v := lw.newVar(qname, kind, fn, ti)
			scope[d.Name] = v
		}
	}
	return nil
}

// structRoot registers (once) a pseudo-variable representing a flattened
// struct root; it participates in name resolution for field paths and in
// whole-struct copies but never appears in canonical statements.
func (lw *lowerer) structRoot(qname, structName string) ir.VarID {
	rootName := qname + ".$root"
	if v, ok := lw.prog.VarByName[rootName]; ok {
		return v
	}
	v := lw.prog.AddVar(rootName, ir.KindTemp, ir.NoFunc)
	lw.varTypes[v] = typeInfo{base: structName, isStruct: true, stars: 0}
	return v
}

// isStructRoot reports whether v is a flattened-struct pseudo variable and
// returns its field prefix (the qualified name without "$root").
func (lw *lowerer) isStructRoot(v ir.VarID) (string, string, bool) {
	ti := lw.varTypes[v]
	name := lw.prog.VarName(v)
	if ti.isStruct && ti.stars == 0 && len(name) > 6 && name[len(name)-6:] == ".$root" {
		return name[:len(name)-6], ti.base, true
	}
	return "", "", false
}

const maxStructDepth = 16

func (lw *lowerer) flattenStruct(qname, structName string, kind ir.VarKind, fn ir.FuncID, pos cpl.Pos, depth int) error {
	if depth > maxStructDepth {
		return posErr(pos, "struct %s nests too deeply (recursive by value?)", structName)
	}
	sd, ok := lw.structs[structName]
	if !ok {
		return posErr(pos, "unknown struct %s", structName)
	}
	for _, fieldDecl := range sd.Fields {
		for _, d := range fieldDecl.Names {
			fq := qname + "." + d.Name
			ti := typeInfo{base: fieldDecl.Type.Base, isStruct: fieldDecl.Type.IsStruct, stars: d.Stars}
			if ti.isStruct && ti.stars == 0 {
				if err := lw.flattenStruct(fq, fieldDecl.Type.Base, kind, fn, pos, depth+1); err != nil {
					return err
				}
			} else {
				lw.newVar(fq, kind, fn, ti)
			}
		}
	}
	return nil
}

// structFields returns the flattened field suffixes (e.g. ".f", ".in.g")
// of struct structName, leaves only.
func (lw *lowerer) structFields(structName string) []string {
	sd := lw.structs[structName]
	var out []string
	var walk func(prefix, sname string)
	walk = func(prefix, sname string) {
		s := lw.structs[sname]
		if s == nil {
			return
		}
		for _, fd := range s.Fields {
			for _, d := range fd.Names {
				if fd.Type.IsStruct && d.Stars == 0 {
					walk(prefix+"."+d.Name, fd.Type.Base)
				} else {
					out = append(out, prefix+"."+d.Name)
				}
			}
		}
	}
	if sd != nil {
		walk("", structName)
	}
	return out
}

func (lw *lowerer) lowerFunc(fd *cpl.FuncDecl, f *ir.Func) error {
	lw.fn = f
	lw.fnName = fd.Name
	lw.tempN = 0
	lw.pendingReturns = nil
	// Scope stack: globals, then one scope for params.
	paramScope := map[string]ir.VarID{}
	for i, prm := range fd.Params {
		paramScope[prm.Name] = f.Params[i]
	}
	lw.scopes = []map[string]ir.VarID{lw.scopes[0], paramScope}

	f.Entry = lw.prog.AddNode(f.ID, ir.Stmt{Op: ir.OpSkip, Dst: ir.NoVar, Src: ir.NoVar, Callee: ir.NoFunc, FPtr: ir.NoVar, Comment: "entry " + fd.Name})
	lw.frontier = []ir.Loc{f.Entry}
	if err := lw.lowerBlock(fd.Body); err != nil {
		return err
	}
	f.Exit = lw.prog.AddNode(f.ID, ir.Stmt{Op: ir.OpRet, Dst: ir.NoVar, Src: ir.NoVar, Callee: ir.NoFunc, FPtr: ir.NoVar, Comment: "exit " + fd.Name})
	for _, fr := range lw.frontier {
		lw.prog.AddEdge(fr, f.Exit)
	}
	for _, r := range lw.pendingReturns {
		lw.prog.AddEdge(r, f.Exit)
	}
	lw.frontier = nil
	lw.scopes = lw.scopes[:1]
	return nil
}

// emit appends a node wired from the current frontier and makes it the new
// frontier.
func (lw *lowerer) emit(s ir.Stmt) ir.Loc {
	loc := lw.prog.AddNode(lw.fn.ID, s)
	for _, fr := range lw.frontier {
		lw.prog.AddEdge(fr, loc)
	}
	lw.frontier = []ir.Loc{loc}
	return loc
}

func skipStmt(comment string) ir.Stmt {
	return ir.Stmt{Op: ir.OpSkip, Dst: ir.NoVar, Src: ir.NoVar, Callee: ir.NoFunc, FPtr: ir.NoVar, Comment: comment}
}

func (lw *lowerer) newTemp() ir.VarID {
	lw.tempN++
	return lw.newVar(fmt.Sprintf("%s.$t%d", lw.fnName, lw.tempN), ir.KindTemp, lw.fn.ID, typeInfo{base: "int", stars: 1})
}

// newHeapVar creates the abstract heap object for an allocation site.
func (lw *lowerer) newHeapVar(pos cpl.Pos) ir.VarID {
	base := fmt.Sprintf("alloc@%d:%d", pos.Line, pos.Col)
	n := lw.heapSeen[base]
	lw.heapSeen[base] = n + 1
	name := base
	if n > 0 {
		name = fmt.Sprintf("%s#%d", base, n+1)
	}
	return lw.newVar(name, ir.KindHeap, ir.NoFunc, typeInfo{base: "int", stars: 0})
}

func (lw *lowerer) lowerBlock(b *cpl.Block) error {
	lw.scopes = append(lw.scopes, map[string]ir.VarID{})
	defer func() { lw.scopes = lw.scopes[:len(lw.scopes)-1] }()
	for _, s := range b.Stmts {
		if err := lw.lowerStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (lw *lowerer) lowerStmt(s cpl.Stmt) error {
	switch st := s.(type) {
	case *cpl.EmptyStmt:
		return nil
	case *cpl.Block:
		return lw.lowerBlock(st)
	case *cpl.DeclStmt:
		return lw.declare(st.Decl, lw.fnName+".", ir.KindLocal, lw.fn.ID)
	case *cpl.AssignStmt:
		return lw.lowerAssign(st.LHS, st.RHS, st.Pos)
	case *cpl.FreeStmt:
		// free(p) is modeled as p = NULL (paper, Remark 1). The nullify
		// nodes it lowers to carry Stmt.Free so deallocation-aware
		// checkers (use-after-free, double-free) can find free sites; the
		// alias analyses ignore the flag.
		before := len(lw.prog.Nodes)
		if err := lw.lowerAssign(st.X, &cpl.Null{Pos: st.Pos}, st.Pos); err != nil {
			return err
		}
		for _, n := range lw.prog.Nodes[before:] {
			if n.Stmt.Op == ir.OpNullify {
				n.Stmt.Free = true
			}
		}
		return nil
	case *cpl.ExprStmt:
		call, ok := st.X.(*cpl.Call)
		if !ok {
			return posErr(st.Pos, "expression statement must be a call")
		}
		_, err := lw.lowerCall(call, ir.NoVar)
		return err
	case *cpl.ReturnStmt:
		if st.Value != nil {
			if lw.fn.Ret == ir.NoVar {
				return posErr(st.Pos, "return with a value in a void function")
			}
			if err := lw.assignToVar(lw.fn.Ret, st.Value, st.Pos); err != nil {
				return err
			}
		}
		// Emit an explicit return marker and park it until the exit node
		// exists; lowerFunc wires all pending returns to the exit.
		loc := lw.emit(skipStmt("return"))
		lw.pendingReturns = append(lw.pendingReturns, loc)
		lw.frontier = nil
		return nil
	case *cpl.IfStmt:
		return lw.lowerIf(st)
	case *cpl.WhileStmt:
		return lw.lowerWhile(st)
	}
	return posErr(s.Position(), "unsupported statement %T", s)
}

func (lw *lowerer) lowerIf(st *cpl.IfStmt) error {
	// Conditions have no pointer side effects in CPL and the core analyses
	// treat every branch as nondeterministic (paper §2). Pointer
	// (in)equality tests additionally mark their arms with assume nodes —
	// the constraints behind the optional path sensitivity of Section 3.
	branch := lw.emit(skipStmt("if"))
	thenAssume, elseAssume, hasAssume := lw.condAssumes(st.Cond)
	lw.frontier = []ir.Loc{branch}
	if hasAssume {
		lw.emit(thenAssume)
	}
	if err := lw.lowerBlock(st.Then); err != nil {
		return err
	}
	thenFrontier := lw.frontier
	lw.frontier = []ir.Loc{branch}
	if hasAssume {
		lw.emit(elseAssume)
	}
	if st.Else != nil {
		if err := lw.lowerBlock(st.Else); err != nil {
			return err
		}
	}
	elseFrontier := lw.frontier
	lw.frontier = append(append([]ir.Loc{}, thenFrontier...), elseFrontier...)
	if len(lw.frontier) == 0 {
		return nil // both arms returned
	}
	join := lw.emit(skipStmt("endif"))
	lw.frontier = []ir.Loc{join}
	return nil
}

func (lw *lowerer) lowerWhile(st *cpl.WhileStmt) error {
	head := lw.emit(skipStmt("while"))
	bodyAssume, exitAssume, hasAssume := lw.condAssumes(st.Cond)
	lw.frontier = []ir.Loc{head}
	if hasAssume {
		lw.emit(bodyAssume)
	}
	if err := lw.lowerBlock(st.Body); err != nil {
		return err
	}
	for _, fr := range lw.frontier {
		lw.prog.AddEdge(fr, head) // back edge
	}
	lw.frontier = []ir.Loc{head} // loop exit
	if hasAssume {
		lw.emit(exitAssume)
	}
	return nil
}

// condAssumes recognizes pointer (in)equality conditions over simple
// variables and returns the assume statements for the true and false arms.
func (lw *lowerer) condAssumes(cond cpl.Expr) (ir.Stmt, ir.Stmt, bool) {
	b, ok := cond.(*cpl.Binary)
	if !ok || (b.Op != cpl.OpEq && b.Op != cpl.OpNeq) {
		return ir.Stmt{}, ir.Stmt{}, false
	}
	x := lw.simplePointer(b.X)
	y := lw.simplePointer(b.Y)
	if x == ir.NoVar || y == ir.NoVar {
		return ir.Stmt{}, ir.Stmt{}, false
	}
	eq := ir.Stmt{Op: ir.OpAssumeEq, Dst: x, Src: y, Callee: ir.NoFunc, FPtr: ir.NoVar}
	neq := ir.Stmt{Op: ir.OpAssumeNeq, Dst: x, Src: y, Callee: ir.NoFunc, FPtr: ir.NoVar}
	if b.Op == cpl.OpEq {
		return eq, neq, true
	}
	return neq, eq, true
}

// simplePointer resolves e to a pointer variable when it is a plain
// identifier or field path of pointer type, without emitting statements;
// NoVar otherwise.
func (lw *lowerer) simplePointer(e cpl.Expr) ir.VarID {
	if !isPathExpr(e) {
		return ir.NoVar
	}
	v, err := lw.resolvePath(e)
	if err != nil || v == ir.NoVar {
		return ir.NoVar
	}
	if _, _, isRoot := lw.isStructRoot(v); isRoot {
		return ir.NoVar
	}
	if lw.varTypes[v].stars < 1 {
		return ir.NoVar // integer comparison, not a pointer constraint
	}
	return v
}
