package callgraph

import (
	"testing"

	"bootstrap/internal/frontend"
	"bootstrap/internal/ir"
)

func build(t *testing.T, src string) (*ir.Program, *Graph) {
	t.Helper()
	p, err := frontend.LowerSource(src)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p, Build(p)
}

func fid(t *testing.T, p *ir.Program, name string) ir.FuncID {
	t.Helper()
	f, ok := p.FuncByName[name]
	if !ok {
		t.Fatalf("no function %q", name)
	}
	return f
}

func TestSimpleChain(t *testing.T) {
	p, g := build(t, `
		void c() { }
		void b() { c(); }
		void a() { b(); }
		void main() { a(); }
	`)
	a, b, c, m := fid(t, p, "a"), fid(t, p, "b"), fid(t, p, "c"), fid(t, p, "main")
	if got := g.Callees(m); len(got) != 1 || got[0] != a {
		t.Errorf("Callees(main) = %v, want [a]", got)
	}
	if got := g.Callers(c); len(got) != 1 || got[0] != b {
		t.Errorf("Callers(c) = %v, want [b]", got)
	}
	// Reverse topological order: c before b before a before main.
	pos := map[ir.FuncID]int{}
	for i, scc := range g.SCCs() {
		for _, f := range scc {
			pos[f] = i
		}
	}
	if !(pos[c] < pos[b] && pos[b] < pos[a] && pos[a] < pos[m]) {
		t.Errorf("SCC order wrong: c=%d b=%d a=%d main=%d", pos[c], pos[b], pos[a], pos[m])
	}
	for _, f := range []ir.FuncID{a, b, c, m} {
		if g.Recursive(f) {
			t.Errorf("%s misreported as recursive", p.Func(f).Name)
		}
	}
}

func TestSelfRecursion(t *testing.T) {
	p, g := build(t, `
		void r() { if (*) { r(); } }
		void main() { r(); }
	`)
	r := fid(t, p, "r")
	if !g.Recursive(r) {
		t.Error("self-recursive function not detected")
	}
	if len(g.SCCs()[g.SCCOf(r)]) != 1 {
		t.Error("self-recursion should be a singleton SCC")
	}
}

func TestMutualRecursion(t *testing.T) {
	p, g := build(t, `
		void odd(int *x) { if (*) { even(x); } }
		void even(int *x) { if (*) { odd(x); } }
		void main() { even(null); }
	`)
	odd, even, m := fid(t, p, "odd"), fid(t, p, "even"), fid(t, p, "main")
	if !g.InSameSCC(odd, even) {
		t.Error("odd and even should share an SCC")
	}
	if g.InSameSCC(odd, m) {
		t.Error("main should not be in the recursive SCC")
	}
	if !g.Recursive(odd) || !g.Recursive(even) {
		t.Error("mutually recursive functions not detected")
	}
	if g.SCCOf(odd) >= g.SCCOf(m) {
		t.Error("the recursive SCC must precede main in reverse topological order")
	}
}

func TestCallSites(t *testing.T) {
	p, g := build(t, `
		void h(int *x) { }
		void f() { h(null); h(null); }
		void k() { h(null); }
		void main() { f(); k(); }
	`)
	h, f, k := fid(t, p, "h"), fid(t, p, "f"), fid(t, p, "k")
	if got := len(g.CallSitesOf(h)); got != 3 {
		t.Errorf("CallSitesOf(h) = %d sites, want 3", got)
	}
	if got := len(g.CallSitesIn(f, h)); got != 2 {
		t.Errorf("CallSitesIn(f,h) = %d, want 2", got)
	}
	if got := len(g.CallSitesIn(k, h)); got != 1 {
		t.Errorf("CallSitesIn(k,h) = %d, want 1", got)
	}
	for _, loc := range g.CallSitesOf(h) {
		if p.Node(loc).Stmt.Op != ir.OpCall {
			t.Errorf("call site L%d is not a call node", loc)
		}
	}
}

func TestReachable(t *testing.T) {
	p, g := build(t, `
		void used() { }
		void dead() { deadCallee(); }
		void deadCallee() { }
		void main() { used(); }
	`)
	reach := g.Reachable(p.Entry)
	names := map[string]bool{}
	for _, f := range reach {
		names[p.Func(f).Name] = true
	}
	if !names["main"] || !names["used"] {
		t.Errorf("Reachable = %v, want main and used", names)
	}
	if names["dead"] || names["deadCallee"] {
		t.Errorf("Reachable = %v, must not include dead code", names)
	}
}

func TestSCCsCoverAllFunctions(t *testing.T) {
	p, g := build(t, `
		void a() { b(); }
		void b() { if (*) { a(); } c(); }
		void c() { }
		void lonely() { }
		void main() { a(); }
	`)
	count := 0
	for _, scc := range g.SCCs() {
		count += len(scc)
	}
	if count != len(p.Funcs) {
		t.Errorf("SCCs cover %d functions, want %d", count, len(p.Funcs))
	}
	if !g.InSameSCC(fid(t, p, "a"), fid(t, p, "b")) {
		t.Error("a and b are mutually recursive")
	}
}
