// Package callgraph builds the function call graph of an IR program and
// computes its strongly connected components. The paper's interprocedural
// summary computation (Algorithm 5) processes call-graph SCCs in reverse
// topological order — callees before callers — with a fixpoint inside each
// SCC to handle recursion; this package supplies that order.
//
// The builder uses direct call edges only, so programs with function
// pointers should be devirtualized first (frontend.Devirtualize).
package callgraph

import (
	"sort"

	"bootstrap/internal/ir"
)

// Graph is a call graph.
type Graph struct {
	prog *ir.Program

	callees map[ir.FuncID][]ir.FuncID // deduped, sorted
	callers map[ir.FuncID][]ir.FuncID // deduped, sorted

	// sites[g] lists, per caller, the call nodes invoking g.
	sites map[ir.FuncID][]ir.Loc

	sccs  [][]ir.FuncID // reverse topological (callees first)
	sccOf map[ir.FuncID]int
}

// Build constructs the call graph of p from direct call nodes.
func Build(p *ir.Program) *Graph {
	g := &Graph{
		prog:    p,
		callees: map[ir.FuncID][]ir.FuncID{},
		callers: map[ir.FuncID][]ir.FuncID{},
		sites:   map[ir.FuncID][]ir.Loc{},
		sccOf:   map[ir.FuncID]int{},
	}
	type edge struct{ from, to ir.FuncID }
	seen := map[edge]bool{}
	for _, n := range p.Nodes {
		if n.Stmt.Op != ir.OpCall || n.Stmt.Callee == ir.NoFunc {
			continue
		}
		caller, callee := n.Fn, n.Stmt.Callee
		g.sites[callee] = append(g.sites[callee], n.Loc)
		e := edge{caller, callee}
		if !seen[e] {
			seen[e] = true
			g.callees[caller] = append(g.callees[caller], callee)
			g.callers[callee] = append(g.callers[callee], caller)
		}
	}
	for _, m := range []map[ir.FuncID][]ir.FuncID{g.callees, g.callers} {
		for k := range m {
			sort.Slice(m[k], func(i, j int) bool { return m[k][i] < m[k][j] })
		}
	}
	g.tarjan()
	return g
}

// Callees returns the functions f calls directly.
func (g *Graph) Callees(f ir.FuncID) []ir.FuncID { return g.callees[f] }

// Callers returns the functions calling f.
func (g *Graph) Callers(f ir.FuncID) []ir.FuncID { return g.callers[f] }

// CallSitesOf returns the call nodes that invoke f, across all callers.
func (g *Graph) CallSitesOf(f ir.FuncID) []ir.Loc { return g.sites[f] }

// CallSitesIn returns the call nodes within caller that invoke callee.
func (g *Graph) CallSitesIn(caller, callee ir.FuncID) []ir.Loc {
	var out []ir.Loc
	for _, loc := range g.sites[callee] {
		if g.prog.Node(loc).Fn == caller {
			out = append(out, loc)
		}
	}
	return out
}

// SCCs returns the strongly connected components in reverse topological
// order: every SCC appears before any SCC that calls into it, so iterating
// in order processes callees before callers.
func (g *Graph) SCCs() [][]ir.FuncID { return g.sccs }

// SCCOf returns the index (into SCCs) of f's component.
func (g *Graph) SCCOf(f ir.FuncID) int { return g.sccOf[f] }

// InSameSCC reports whether f and h are mutually recursive (or identical).
func (g *Graph) InSameSCC(f, h ir.FuncID) bool { return g.sccOf[f] == g.sccOf[h] }

// Recursive reports whether f participates in recursion (self-loop or an
// SCC with more than one member).
func (g *Graph) Recursive(f ir.FuncID) bool {
	scc := g.sccs[g.sccOf[f]]
	if len(scc) > 1 {
		return true
	}
	for _, c := range g.callees[f] {
		if c == f {
			return true
		}
	}
	return false
}

// Reachable returns the functions reachable from entry (inclusive), sorted.
func (g *Graph) Reachable(entry ir.FuncID) []ir.FuncID {
	seen := map[ir.FuncID]bool{entry: true}
	stack := []ir.FuncID{entry}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range g.callees[f] {
			if !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	out := make([]ir.FuncID, 0, len(seen))
	for f := range seen {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// tarjan computes SCCs iteratively; Tarjan's algorithm emits components in
// reverse topological order of the condensation.
func (g *Graph) tarjan() {
	n := len(g.prog.Funcs)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []ir.FuncID
	next := 0

	type frame struct {
		f  ir.FuncID
		ci int // next callee index to visit
	}
	for start := 0; start < n; start++ {
		if index[start] != -1 {
			continue
		}
		frames := []frame{{f: ir.FuncID(start)}}
		index[start] = next
		low[start] = next
		next++
		stack = append(stack, ir.FuncID(start))
		onStack[start] = true
		for len(frames) > 0 {
			fr := &frames[len(frames)-1]
			callees := g.callees[fr.f]
			if fr.ci < len(callees) {
				c := callees[fr.ci]
				fr.ci++
				if index[c] == -1 {
					index[c] = next
					low[c] = next
					next++
					stack = append(stack, c)
					onStack[c] = true
					frames = append(frames, frame{f: c})
				} else if onStack[c] {
					if index[c] < low[fr.f] {
						low[fr.f] = index[c]
					}
				}
				continue
			}
			// fr.f finished.
			if low[fr.f] == index[fr.f] {
				var scc []ir.FuncID
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == fr.f {
						break
					}
				}
				sort.Slice(scc, func(i, j int) bool { return scc[i] < scc[j] })
				for _, f := range scc {
					g.sccOf[f] = len(g.sccs)
				}
				g.sccs = append(g.sccs, scc)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[fr.f] < low[parent.f] {
					low[parent.f] = low[fr.f]
				}
			}
		}
	}
}
