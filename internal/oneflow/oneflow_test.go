package oneflow

import (
	"testing"

	"bootstrap/internal/andersen"
	"bootstrap/internal/frontend"
	"bootstrap/internal/ir"
	"bootstrap/internal/steens"
)

func analyze(t *testing.T, src string) (*ir.Program, *Analysis) {
	t.Helper()
	p, err := frontend.LowerSource(src)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p, Analyze(p)
}

func v(t *testing.T, p *ir.Program, name string) ir.VarID {
	t.Helper()
	id, ok := p.VarByName[name]
	if !ok {
		t.Fatalf("no variable %q", name)
	}
	return id
}

func ptsNames(p *ir.Program, a *Analysis, x ir.VarID) map[string]bool {
	out := map[string]bool{}
	for _, o := range a.PointsToVars(x) {
		out[p.VarName(o)] = true
	}
	return out
}

// TestDirectionality is One-Flow's reason to exist: q = p pollutes q, not
// p — unlike Steensgaard.
func TestDirectionality(t *testing.T) {
	p, a := analyze(t, `
		int a, b;
		int *p, *q;
		void main() {
			p = &a;
			q = &b;
			q = p;
		}
	`)
	pp := ptsNames(p, a, v(t, p, "p"))
	if pp["b"] {
		t.Errorf("one-flow pts(p) = %v must not contain b", pp)
	}
	qq := ptsNames(p, a, v(t, p, "q"))
	if !qq["a"] || !qq["b"] {
		t.Errorf("one-flow pts(q) = %v, want a and b", qq)
	}
	// Steensgaard, by contrast, conflates p and q's contents.
	sa := steens.Analyze(p)
	if !sa.SamePartition(v(t, p, "p"), v(t, p, "q")) {
		t.Error("setup: Steensgaard should conflate p and q")
	}
}

// TestBetweenSteensgaardAndAndersen: on this program one-flow is strictly
// more precise than Steensgaard and no more precise than Andersen.
func TestBetweenSteensgaardAndAndersen(t *testing.T) {
	src := `
		int a, b, c;
		int *p, *q, *r;
		void main() {
			p = &a;
			q = &b;
			r = &c;
			q = p;
			q = r;
		}
	`
	p, a := analyze(t, src)
	aa := andersen.Analyze(p)
	for _, name := range []string{"p", "q", "r"} {
		vid := v(t, p, name)
		ofPts := map[ir.VarID]bool{}
		for _, o := range a.PointsToVars(vid) {
			ofPts[o] = true
		}
		// Andersen ⊆ one-flow.
		for _, o := range aa.PointsTo(vid) {
			if !ofPts[o] {
				t.Errorf("pts(%s): Andersen has %s but one-flow lacks it", name, p.VarName(o))
			}
		}
	}
	// Precision win vs Steensgaard on p.
	if len(a.PointsToVars(v(t, p, "p"))) >= 3 {
		t.Errorf("one-flow pts(p) = %v should be smaller than the unified {a,b,c}",
			ptsNames(p, a, v(t, p, "p")))
	}
}

func TestDerefUnification(t *testing.T) {
	// Below the top level, one-flow unifies: storing through px links the
	// contents of x bidirectionally with y.
	p, a := analyze(t, `
		int a, b;
		int *x, *y;
		int **px;
		void main() {
			x = &a;
			y = &b;
			px = &x;
			*px = y;
		}
	`)
	xx := ptsNames(p, a, v(t, p, "x"))
	if !xx["a"] || !xx["b"] {
		t.Errorf("pts(x) = %v, want a and b", xx)
	}
}

func TestMayAlias(t *testing.T) {
	p, a := analyze(t, `
		int a, b;
		int *p, *q, *r;
		void main() {
			p = &a;
			q = p;
			r = &b;
		}
	`)
	if !a.MayAlias(v(t, p, "p"), v(t, p, "q")) {
		t.Error("p and q share a")
	}
	if a.MayAlias(v(t, p, "p"), v(t, p, "r")) {
		t.Error("p and r are unrelated")
	}
}

func TestRefineSplitsChain(t *testing.T) {
	// One big Steensgaard partition (all contents unified through q), but
	// one-flow separates p0/p1 sources; Refine must keep q with both (it
	// may alias either) while keeping unrelated r alone.
	src := `
		int a0, a1, c;
		int *p0, *p1, *q, *r;
		void main() {
			p0 = &a0;
			p1 = &a1;
			q = p0;
			q = p1;
			r = &c;
		}
	`
	p, a := analyze(t, src)
	sa := steens.Analyze(p)
	part := sa.PartitionOf(v(t, p, "q"))
	pieces := a.Refine(part)
	// Every piece is nonempty, pieces are disjoint and cover the set.
	seen := map[ir.VarID]bool{}
	total := 0
	for _, piece := range pieces {
		if len(piece) == 0 {
			t.Fatal("empty refinement piece")
		}
		for _, m := range piece {
			if seen[m] {
				t.Fatalf("refinement duplicates %s", p.VarName(m))
			}
			seen[m] = true
			total++
		}
	}
	if total != len(part) {
		t.Errorf("refinement covers %d of %d members", total, len(part))
	}
	// May-aliasing members stay together.
	samePiece := func(x, y ir.VarID) bool {
		for _, piece := range pieces {
			hasX, hasY := false, false
			for _, m := range piece {
				if m == x {
					hasX = true
				}
				if m == y {
					hasY = true
				}
			}
			if hasX || hasY {
				return hasX && hasY
			}
		}
		return false
	}
	if !samePiece(v(t, p, "q"), v(t, p, "p0")) {
		t.Error("q and p0 may alias; they must share a piece")
	}
	if !samePiece(v(t, p, "q"), v(t, p, "p1")) {
		t.Error("q and p1 may alias; they must share a piece")
	}
}

func TestRefineIsAliasCover(t *testing.T) {
	// All one-flow may-alias pairs within a partition must land in the
	// same refinement piece.
	srcs := []string{
		`int a, b; int *x, *y; int **px;
		 void main() { x = &a; y = &b; px = &x; *px = y; y = *px; }`,
		`int g1, g2; int *id(int *w) { return w; }
		 void main() { int *r1; r1 = id(&g1); r1 = id(&g2); }`,
	}
	for _, src := range srcs {
		p, a := analyze(t, src)
		sa := steens.Analyze(p)
		for _, part := range sa.Partitions() {
			pieces := a.Refine(part)
			pieceOf := map[ir.VarID]int{}
			for i, piece := range pieces {
				for _, m := range piece {
					pieceOf[m] = i
				}
			}
			for i := 0; i < len(part); i++ {
				for j := i + 1; j < len(part); j++ {
					if a.MayAlias(part[i], part[j]) && pieceOf[part[i]] != pieceOf[part[j]] {
						t.Errorf("src %q: %s and %s may alias but were split",
							src, p.VarName(part[i]), p.VarName(part[j]))
					}
				}
			}
		}
	}
}
