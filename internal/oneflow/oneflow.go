// Package oneflow implements a One-Level-Flow points-to analysis in the
// precision slot of Das (PLDI 2000): assignments are directional at the
// top level, while everything one level below the top is resolved with
// unification. Concretely, the analysis runs Steensgaard's unification to
// obtain the below-top cell structure, then propagates fine-grained
// points-to sets directionally:
//
//   - x = &y   seeds pts(x) ∋ y;
//   - x = y    adds the flow edge pts(x) ⊇ pts(y) (directional — the one
//     level of flow Das adds over Steensgaard);
//   - x = *s   reads the cells s may reference per Steensgaard:
//     pts(x) ⊇ pts(o) for each o ∈ ptsSteens(s);
//   - *d = r   writes them: pts(o) ⊇ pts(r) for each o ∈ ptsSteens(d).
//
// Because dereferences are resolved with the unification result rather
// than on the fly, the edge set is fixed up front and one linear
// propagation suffices — keeping near-Steensgaard cost while retaining
// assignment direction, which is why the paper (Section 4) suggests
// One-Flow as an optional middle stage of the bootstrapping cascade: a
// cheap refinement of oversized Steensgaard partitions before paying for a
// full Andersen run. Its precision is provably between the two: deref
// targets are Steensgaard-coarse, copies are Andersen-directional.
package oneflow

import (
	"sort"

	"bootstrap/internal/bitset"
	"bootstrap/internal/ir"
	"bootstrap/internal/steens"
)

// Analysis is the result of the one-level-flow analysis.
type Analysis struct {
	prog *ir.Program
	sa   *steens.Analysis
	pts  []*bitset.Set // var -> object VarIDs (directional)
}

// Analyze runs the analysis over every statement of p, bootstrapped by a
// fresh Steensgaard pass for the below-top structure.
func Analyze(p *ir.Program) *Analysis {
	return AnalyzeWith(p, steens.Analyze(p))
}

// AnalyzeWith reuses an existing Steensgaard result (the usual case inside
// the cascade, which has already run it).
func AnalyzeWith(p *ir.Program, sa *steens.Analysis) *Analysis {
	nv := p.NumVars()
	a := &Analysis{prog: p, sa: sa, pts: make([]*bitset.Set, nv)}
	for i := range a.pts {
		a.pts[i] = &bitset.Set{}
	}
	succs := make([][]int32, nv)
	edge := func(from, to ir.VarID) {
		if from != to {
			succs[from] = append(succs[from], int32(to))
		}
	}
	for _, n := range p.Nodes {
		st := n.Stmt
		switch st.Op {
		case ir.OpAddr:
			a.pts[st.Dst].Add(int(st.Src))
		case ir.OpCopy:
			edge(st.Src, st.Dst)
		case ir.OpLoad: // dst = *s
			for _, o := range sa.PointsToVars(st.Src) {
				edge(o, st.Dst)
			}
		case ir.OpStore: // *d = r
			for _, o := range sa.PointsToVars(st.Dst) {
				edge(st.Src, o)
			}
		case ir.OpCall:
			if st.Callee != ir.NoFunc {
				continue
			}
			// Placeholder indirect call: bind conservatively with every
			// function the pointer may target under Steensgaard.
			for _, f := range sa.Targets(st.FPtr) {
				fn := p.Func(f)
				if len(fn.Params) != len(st.Args) {
					continue
				}
				for i, arg := range st.Args {
					if arg != ir.NoVar {
						edge(arg, fn.Params[i])
					}
				}
				if st.Dst != ir.NoVar && fn.Ret != ir.NoVar {
					edge(fn.Ret, st.Dst)
				}
			}
		}
	}
	// One propagation to fixpoint (the edge set is static).
	work := make([]int32, 0, nv)
	inWork := make([]bool, nv)
	for v := 0; v < nv; v++ {
		if !a.pts[v].Empty() {
			work = append(work, int32(v))
			inWork[v] = true
		}
	}
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[v] = false
		for _, s := range succs[v] {
			if a.pts[s].UnionWith(a.pts[v]) && !inWork[s] {
				inWork[s] = true
				work = append(work, s)
			}
		}
	}
	return a
}

// PointsToVars returns the objects v may point to, in increasing order.
func (a *Analysis) PointsToVars(v ir.VarID) []ir.VarID {
	var out []ir.VarID
	a.pts[v].ForEach(func(o int) bool {
		out = append(out, ir.VarID(o))
		return true
	})
	return out
}

// MayAlias reports whether p and q may point to a common object.
func (a *Analysis) MayAlias(p, q ir.VarID) bool { return a.pts[p].Intersects(a.pts[q]) }

// MaxRefinedSize returns the largest piece Refine would produce for the
// given pointer set, without materializing the pieces.
func (a *Analysis) MaxRefinedSize(members []ir.VarID) int {
	max := 0
	for _, piece := range a.Refine(members) {
		if len(piece) > max {
			max = len(piece)
		}
	}
	return max
}

// Refine splits a pointer set into pieces such that two members that may
// alias under one-flow stay in one piece: connected components of the
// shared-points-to relation, with each member also tied to the pieces of
// pointers that may reference it (so writes through them stay covered).
// Members that alias nothing form singleton pieces. The result is a
// disjoint alias cover of the input set.
func (a *Analysis) Refine(members []ir.VarID) [][]ir.VarID {
	parent := map[ir.VarID]ir.VarID{}
	var find func(ir.VarID) ir.VarID
	find = func(x ir.VarID) ir.VarID {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(x, y ir.VarID) { parent[find(x)] = find(y) }
	for _, m := range members {
		parent[m] = m
	}
	inSet := map[ir.VarID]bool{}
	for _, m := range members {
		inSet[m] = true
	}
	// Pointers sharing a pointee stay together; a pointee in the set
	// stays with every member pointing at it.
	firstWithObj := map[ir.VarID]ir.VarID{}
	for _, m := range members {
		a.pts[m].ForEach(func(oi int) bool {
			o := ir.VarID(oi)
			if first, ok := firstWithObj[o]; ok {
				union(first, m)
			} else {
				firstWithObj[o] = m
			}
			if inSet[o] {
				union(o, m)
			}
			return true
		})
	}
	groups := map[ir.VarID][]ir.VarID{}
	for _, m := range members {
		groups[find(m)] = append(groups[find(m)], m)
	}
	reps := make([]ir.VarID, 0, len(groups))
	for r := range groups {
		reps = append(reps, r)
	}
	sort.Slice(reps, func(i, j int) bool { return reps[i] < reps[j] })
	out := make([][]ir.VarID, 0, len(groups))
	for _, r := range reps {
		g := groups[r]
		sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
		out = append(out, g)
	}
	return out
}
