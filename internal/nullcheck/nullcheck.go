// Package nullcheck is a second client application of the bootstrapped
// analysis (beside lockset): a flow-sensitive null/dangling-dereference
// checker. The paper motivates the framework with static error detection
// generally; this checker exercises exactly the properties the FSCS
// analysis adds over Andersen's:
//
//   - flow sensitivity: `p = &a; p = null; *p = x` warns, while
//     `p = null; p = &a; *p = x` does not;
//   - free() modeling: a dereference after `free(p)` (lowered to
//     p = null) warns as a use-after-free;
//   - path sensitivity: a dereference guarded by `if (p != q)` where p
//     and q must be equal is unreachable and not reported.
//
// A dereference site is any load, store, or write-through touch. The
// checker queries the value set of the dereferenced pointer just before
// the site: a possible-null source yields a MayBeNull warning, a
// definitely-null-or-uninitialized set yields the stronger DefiniteNull.
package nullcheck

import (
	"fmt"
	"hash/fnv"
	"sort"

	"bootstrap/internal/core"
	"bootstrap/internal/ir"
)

// Severity classifies a warning.
type Severity uint8

// Warning severities.
const (
	// MayBeNull: some path reaches the dereference with a null pointer.
	MayBeNull Severity = iota
	// DefiniteNull: no path reaches the dereference with a valid object
	// (every source is null or uninitialized).
	DefiniteNull
)

func (s Severity) String() string {
	if s == DefiniteNull {
		return "definite"
	}
	return "may"
}

// Warning is one suspicious dereference.
type Warning struct {
	Loc      ir.Loc
	Ptr      ir.VarID
	Severity Severity
	// Uninit distinguishes an uninitialized-pointer dereference from a
	// null one in DefiniteNull reports.
	Uninit bool
}

// Format renders the warning against a program's symbol table.
func (w Warning) Format(p *ir.Program) string {
	fn := p.Func(p.Node(w.Loc).Fn).Name
	kind := "null"
	if w.Uninit {
		kind = "uninitialized"
	}
	return fmt.Sprintf("L%d (%s): %s dereference of possibly-%s pointer %s",
		w.Loc, fn, w.Severity, kind, p.VarName(w.Ptr))
}

// Fingerprint is the warning's stable identity: a hash of symbolic
// content only (enclosing function, statement text, pointer name,
// severity) — never raw locations — so the same warning keeps the same
// fingerprint across runs, cache-warm reruns, and snapshot reloads of
// the same source. Batch (aliaslint) and served (aliasd /check) output
// agree byte-for-byte on it.
func (w Warning) Fingerprint(p *ir.Program) string {
	h := fnv.New64a()
	for _, part := range []string{
		"null-deref",
		p.Func(p.Node(w.Loc).Fn).Name,
		p.StmtString(w.Loc),
		p.VarName(w.Ptr),
		w.Severity.String(),
		fmt.Sprint(w.Uninit),
	} {
		h.Write([]byte(part))
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// SortWarnings orders warnings canonically: by location, then pointer,
// then severity (stronger last), then the uninit flag. Check and every
// framework consumer use this exported ordering, so two runs over the
// same snapshot render byte-identical reports.
func SortWarnings(ws []Warning) {
	sort.Slice(ws, func(i, j int) bool {
		a, b := ws[i], ws[j]
		if a.Loc != b.Loc {
			return a.Loc < b.Loc
		}
		if a.Ptr != b.Ptr {
			return a.Ptr < b.Ptr
		}
		if a.Severity != b.Severity {
			return a.Severity < b.Severity
		}
		return !a.Uninit && b.Uninit
	})
}

// Source is the analysis surface the checker consumes; *core.Analysis is
// the classic provider (see Check), and the checker framework adapts its
// deadline-scoped demand-driven handle.
type Source interface {
	Program() *ir.Program
	ReachableFuncs() []ir.FuncID
	DerefState(p ir.VarID, loc ir.Loc) (objs []ir.VarID, mayNull, mayUninit, precise bool)
}

// analysisSource adapts *core.Analysis to Source (DerefState promoted).
type analysisSource struct{ *core.Analysis }

func (s analysisSource) Program() *ir.Program { return s.Prog }
func (s analysisSource) ReachableFuncs() []ir.FuncID {
	return s.CallGraph.Reachable(s.Prog.Entry)
}

// Check scans every dereference site reachable from the entry function
// and reports suspicious ones, in SortWarnings order. The analysis
// should have been built over the same program (any clustering mode).
func Check(a *core.Analysis) []Warning { return CheckSource(analysisSource{a}) }

// CheckSource is Check over any Source.
func CheckSource(src Source) []Warning {
	prog := src.Program()
	reachable := map[ir.FuncID]bool{}
	for _, f := range src.ReachableFuncs() {
		reachable[f] = true
	}
	var out []Warning
	for _, n := range prog.Nodes {
		if !reachable[n.Fn] {
			continue
		}
		var ptr ir.VarID = ir.NoVar
		switch n.Stmt.Op {
		case ir.OpLoad:
			ptr = n.Stmt.Src
		case ir.OpStore:
			ptr = n.Stmt.Dst
		case ir.OpTouch:
			if n.Stmt.Src != ir.NoVar {
				ptr = n.Stmt.Src // write-through of a non-pointer value
			}
		}
		if ptr == ir.NoVar {
			continue
		}
		objs, mayNull, mayUninit, precise := src.DerefState(ptr, n.Loc)
		switch {
		case precise && (mayNull || mayUninit):
			w := Warning{Loc: n.Loc, Ptr: ptr, Severity: MayBeNull, Uninit: !mayNull && mayUninit}
			if len(objs) == 0 {
				w.Severity = DefiniteNull
			}
			out = append(out, w)
		case !precise && len(objs) == 0:
			// Even the flow-insensitive over-approximation found no
			// object this pointer could reference: every dereference is
			// of a null or never-assigned pointer.
			out = append(out, Warning{Loc: n.Loc, Ptr: ptr, Severity: DefiniteNull, Uninit: true})
		default:
			// Imprecise with candidates: stay silent (favor low noise).
		}
	}
	SortWarnings(out)
	return out
}

// FormatAll renders warnings one per line.
func FormatAll(p *ir.Program, ws []Warning) string {
	s := ""
	for _, w := range ws {
		s += "  " + w.Format(p) + "\n"
	}
	return s
}
