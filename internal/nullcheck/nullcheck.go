// Package nullcheck is a second client application of the bootstrapped
// analysis (beside lockset): a flow-sensitive null/dangling-dereference
// checker. The paper motivates the framework with static error detection
// generally; this checker exercises exactly the properties the FSCS
// analysis adds over Andersen's:
//
//   - flow sensitivity: `p = &a; p = null; *p = x` warns, while
//     `p = null; p = &a; *p = x` does not;
//   - free() modeling: a dereference after `free(p)` (lowered to
//     p = null) warns as a use-after-free;
//   - path sensitivity: a dereference guarded by `if (p != q)` where p
//     and q must be equal is unreachable and not reported.
//
// A dereference site is any load, store, or write-through touch. The
// checker queries the value set of the dereferenced pointer just before
// the site: a possible-null source yields a MayBeNull warning, a
// definitely-null-or-uninitialized set yields the stronger DefiniteNull.
package nullcheck

import (
	"fmt"
	"sort"

	"bootstrap/internal/core"
	"bootstrap/internal/ir"
)

// Severity classifies a warning.
type Severity uint8

// Warning severities.
const (
	// MayBeNull: some path reaches the dereference with a null pointer.
	MayBeNull Severity = iota
	// DefiniteNull: no path reaches the dereference with a valid object
	// (every source is null or uninitialized).
	DefiniteNull
)

func (s Severity) String() string {
	if s == DefiniteNull {
		return "definite"
	}
	return "may"
}

// Warning is one suspicious dereference.
type Warning struct {
	Loc      ir.Loc
	Ptr      ir.VarID
	Severity Severity
	// Uninit distinguishes an uninitialized-pointer dereference from a
	// null one in DefiniteNull reports.
	Uninit bool
}

// Format renders the warning against a program's symbol table.
func (w Warning) Format(p *ir.Program) string {
	fn := p.Func(p.Node(w.Loc).Fn).Name
	kind := "null"
	if w.Uninit {
		kind = "uninitialized"
	}
	return fmt.Sprintf("L%d (%s): %s dereference of possibly-%s pointer %s",
		w.Loc, fn, w.Severity, kind, p.VarName(w.Ptr))
}

// Check scans every dereference site reachable from the entry function
// and reports suspicious ones, ordered by location. The analysis should
// have been built over the same program (any clustering mode).
func Check(a *core.Analysis) []Warning {
	prog := a.Prog
	reachable := map[ir.FuncID]bool{}
	for _, f := range a.CallGraph.Reachable(prog.Entry) {
		reachable[f] = true
	}
	var out []Warning
	for _, n := range prog.Nodes {
		if !reachable[n.Fn] {
			continue
		}
		var ptr ir.VarID = ir.NoVar
		switch n.Stmt.Op {
		case ir.OpLoad:
			ptr = n.Stmt.Src
		case ir.OpStore:
			ptr = n.Stmt.Dst
		case ir.OpTouch:
			if n.Stmt.Src != ir.NoVar {
				ptr = n.Stmt.Src // write-through of a non-pointer value
			}
		}
		if ptr == ir.NoVar {
			continue
		}
		objs, mayNull, mayUninit, precise := a.DerefState(ptr, n.Loc)
		switch {
		case precise && (mayNull || mayUninit):
			w := Warning{Loc: n.Loc, Ptr: ptr, Severity: MayBeNull, Uninit: !mayNull && mayUninit}
			if len(objs) == 0 {
				w.Severity = DefiniteNull
			}
			out = append(out, w)
		case !precise && len(objs) == 0:
			// Even the flow-insensitive over-approximation found no
			// object this pointer could reference: every dereference is
			// of a null or never-assigned pointer.
			out = append(out, Warning{Loc: n.Loc, Ptr: ptr, Severity: DefiniteNull, Uninit: true})
		default:
			// Imprecise with candidates: stay silent (favor low noise).
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Loc < out[j].Loc })
	return out
}

// FormatAll renders warnings one per line.
func FormatAll(p *ir.Program, ws []Warning) string {
	s := ""
	for _, w := range ws {
		s += "  " + w.Format(p) + "\n"
	}
	return s
}
