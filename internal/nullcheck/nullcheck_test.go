package nullcheck

import (
	"strings"
	"testing"

	"bootstrap/internal/core"
)

func check(t *testing.T, src string) (*core.Analysis, []Warning) {
	t.Helper()
	a, err := core.AnalyzeSource(src, core.Config{Mode: core.ModeSteensgaard, Workers: 1})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return a, Check(a)
}

// warningsOn filters warnings whose pointer renders as name.
func warningsOn(a *core.Analysis, ws []Warning, name string) []Warning {
	var out []Warning
	for _, w := range ws {
		if a.Prog.VarName(w.Ptr) == name {
			out = append(out, w)
		}
	}
	return out
}

func TestNullThenDeref(t *testing.T) {
	a, ws := check(t, `
		int a; int *p; int *x;
		void main() {
			p = &a;
			p = null;
			x = *p;
		}
	`)
	got := warningsOn(a, ws, "p")
	if len(got) != 1 {
		t.Fatalf("warnings on p = %d, want 1:\n%s", len(got), FormatAll(a.Prog, ws))
	}
	if got[0].Severity != DefiniteNull {
		t.Errorf("severity = %v, want definite (the store kills &a)", got[0].Severity)
	}
}

func TestFlowSensitivityNoFalsePositive(t *testing.T) {
	a, ws := check(t, `
		int a; int *p; int *x;
		void main() {
			p = null;
			p = &a;
			x = *p;
		}
	`)
	if got := warningsOn(a, ws, "p"); len(got) != 0 {
		t.Errorf("reassigned pointer is non-null at the deref; got %s", FormatAll(a.Prog, ws))
	}
}

func TestUseAfterFree(t *testing.T) {
	a, ws := check(t, `
		void main() {
			int *p; int x;
			p = malloc;
			*p = 1;
			free(p);
			x = *p;
		}
	`)
	got := warningsOn(a, ws, "main.p")
	if len(got) != 1 {
		t.Fatalf("want exactly the post-free deref flagged; got:\n%s", FormatAll(a.Prog, ws))
	}
	if got[0].Severity != DefiniteNull {
		t.Errorf("severity = %v, want definite", got[0].Severity)
	}
}

func TestBranchMayNull(t *testing.T) {
	a, ws := check(t, `
		int a; int *p; int *x;
		void main() {
			p = &a;
			if (*) { p = null; }
			x = *p;
		}
	`)
	got := warningsOn(a, ws, "p")
	if len(got) != 1 || got[0].Severity != MayBeNull {
		t.Fatalf("want one may-null warning; got:\n%s", FormatAll(a.Prog, ws))
	}
	s := got[0].Format(a.Prog)
	if !strings.Contains(s, "may dereference") && !strings.Contains(s, "may") {
		t.Errorf("Format = %q", s)
	}
}

func TestUninitializedDeref(t *testing.T) {
	a, ws := check(t, `
		int *p; int *x;
		void main() {
			x = *p;
		}
	`)
	got := warningsOn(a, ws, "p")
	if len(got) != 1 {
		t.Fatalf("want one uninit warning; got:\n%s", FormatAll(a.Prog, ws))
	}
	if got[0].Severity != DefiniteNull || !got[0].Uninit {
		t.Errorf("want definite uninitialized; got %+v", got[0])
	}
}

func TestStoreAndTouchSites(t *testing.T) {
	a, ws := check(t, `
		int *p, *q, *r;
		void main() {
			p = null;
			*p = r;      // store through null
			q = null;
			*q = 5;      // write-through touch of null
		}
	`)
	if len(warningsOn(a, ws, "p")) != 1 {
		t.Errorf("store site not flagged:\n%s", FormatAll(a.Prog, ws))
	}
	if len(warningsOn(a, ws, "q")) != 1 {
		t.Errorf("touch site not flagged:\n%s", FormatAll(a.Prog, ws))
	}
}

func TestInterproceduralNull(t *testing.T) {
	a, ws := check(t, `
		int a;
		int *g; int *x;
		void clear() { g = null; }
		void setup() { g = &a; }
		void main() {
			setup();
			clear();
			x = *g;
		}
	`)
	got := warningsOn(a, ws, "g")
	if len(got) != 1 || got[0].Severity != DefiniteNull {
		t.Fatalf("want a definite warning through the call chain; got:\n%s", FormatAll(a.Prog, ws))
	}
}

func TestUnreachableCodeIgnored(t *testing.T) {
	a, ws := check(t, `
		int *p; int *x;
		void dead() { x = *p; }
		void main() { p = null; }
	`)
	if len(ws) != 0 {
		t.Errorf("dereferences in unreachable functions must not be reported:\n%s", FormatAll(a.Prog, ws))
	}
}

// TestPathSensitivityPrunes: the dereference sits in an arm the pointer
// constraints prove infeasible.
func TestPathSensitivityPrunes(t *testing.T) {
	a, ws := check(t, `
		int a;
		int *p, *q, *x;
		void main() {
			p = &a;
			q = p;
			if (p != q) {
				x = null;
				*x = p;
			}
		}
	`)
	if got := warningsOn(a, ws, "x"); len(got) != 0 {
		t.Errorf("deref in an infeasible arm (p must equal q) reported:\n%s", FormatAll(a.Prog, ws))
	}
}

func TestCleanProgramIsQuiet(t *testing.T) {
	a, ws := check(t, `
		int a, b;
		int *p, *q, *x;
		void main() {
			p = &a;
			q = &b;
			x = *p;
			*q = x;
		}
	`)
	if len(ws) != 0 {
		t.Errorf("clean program produced warnings:\n%s", FormatAll(a.Prog, ws))
	}
}
