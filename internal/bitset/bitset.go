// Package bitset provides a dense, growable bit set over small non-negative
// integers. It is the points-to-set representation used by the Andersen
// inclusion-based solver, where set union and difference dominate running
// time.
package bitset

import (
	"encoding/binary"
	"math/bits"
)

const wordBits = 64

// Set is a growable bit set. The zero value is an empty set ready to use.
type Set struct {
	words []uint64
}

// New returns an empty set with capacity hint n bits.
func New(n int) *Set {
	return &Set{words: make([]uint64, 0, (n+wordBits-1)/wordBits)}
}

// ensure grows the word slice to hold bit i.
func (s *Set) ensure(i int) {
	w := i/wordBits + 1
	for len(s.words) < w {
		s.words = append(s.words, 0)
	}
}

// Add inserts i and reports whether it was newly added.
func (s *Set) Add(i int) bool {
	if i < 0 {
		panic("bitset: negative element")
	}
	s.ensure(i)
	w, m := i/wordBits, uint64(1)<<(i%wordBits)
	if s.words[w]&m != 0 {
		return false
	}
	s.words[w] |= m
	return true
}

// Remove deletes i and reports whether it was present.
func (s *Set) Remove(i int) bool {
	w := i / wordBits
	if i < 0 || w >= len(s.words) {
		return false
	}
	m := uint64(1) << (i % wordBits)
	if s.words[w]&m == 0 {
		return false
	}
	s.words[w] &^= m
	return true
}

// Has reports whether i is in the set.
func (s *Set) Has(i int) bool {
	w := i / wordBits
	return i >= 0 && w < len(s.words) && s.words[w]&(1<<(i%wordBits)) != 0
}

// Len returns the number of elements in the set.
func (s *Set) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// UnionWith adds every element of t to s and reports whether s changed.
func (s *Set) UnionWith(t *Set) bool {
	if t == nil {
		return false
	}
	if len(s.words) < len(t.words) {
		s.ensure(len(t.words)*wordBits - 1)
	}
	changed := false
	for i, w := range t.words {
		old := s.words[i]
		nw := old | w
		if nw != old {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// Reset removes every element but keeps the backing storage, so a hot
// loop can recycle delta sets without reallocating.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// UnionInto ors t \ s into both s and acc, reporting whether s changed.
// It is the delta-propagation kernel: one pass computes the newly added
// bits and accumulates them into the receiver's pending-delta set.
func (s *Set) UnionInto(t, acc *Set) bool {
	if t == nil {
		return false
	}
	if len(s.words) < len(t.words) {
		s.ensure(len(t.words)*wordBits - 1)
	}
	if len(acc.words) < len(t.words) {
		acc.ensure(len(t.words)*wordBits - 1)
	}
	changed := false
	for i, w := range t.words {
		add := w &^ s.words[i]
		if add != 0 {
			s.words[i] |= add
			acc.words[i] |= add
			changed = true
		}
	}
	return changed
}

// DiffFrom returns the elements of t not in s (t \ s) as a fresh set.
// It is used by the Andersen solver to propagate only the delta.
func (s *Set) DiffFrom(t *Set) *Set {
	d := &Set{}
	if t == nil {
		return d
	}
	d.words = make([]uint64, len(t.words))
	for i, w := range t.words {
		if i < len(s.words) {
			w &^= s.words[i]
		}
		d.words[i] = w
	}
	return d
}

// Clone returns a copy of s.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// Equal reports whether s and t contain the same elements.
func (s *Set) Equal(t *Set) bool {
	a, b := s.words, t.words
	if len(a) > len(b) {
		a, b = b, a
	}
	for i, w := range a {
		if w != b[i] {
			return false
		}
	}
	for _, w := range b[len(a):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// ForEach calls fn on every element in increasing order. If fn returns
// false, iteration stops early.
func (s *Set) ForEach(fn func(int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &^= 1 << b
		}
	}
}

// Elems returns the elements in increasing order.
func (s *Set) Elems() []int {
	out := make([]int, 0, s.Len())
	s.ForEach(func(i int) bool { out = append(out, i); return true })
	return out
}

// AppendCanonical appends a canonical byte encoding of the set to b and
// returns the extended slice: a uvarint word count followed by the
// little-endian 64-bit words, with trailing zero words trimmed first.
// Equal sets produce equal bytes regardless of how they were built
// (capacity growth and removed elements leave no trace), which is what
// content-addressed fingerprints require.
func (s *Set) AppendCanonical(b []byte) []byte {
	n := len(s.words)
	for n > 0 && s.words[n-1] == 0 {
		n--
	}
	b = binary.AppendUvarint(b, uint64(n))
	for _, w := range s.words[:n] {
		b = binary.LittleEndian.AppendUint64(b, w)
	}
	return b
}

// Intersects reports whether s and t share any element.
func (s *Set) Intersects(t *Set) bool {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}
