package bitset

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestAddHasRemove(t *testing.T) {
	s := New(0)
	if !s.Add(5) || !s.Add(100) || !s.Add(0) {
		t.Fatal("Add of fresh elements should return true")
	}
	if s.Add(5) {
		t.Error("Add of duplicate should return false")
	}
	for _, want := range []int{0, 5, 100} {
		if !s.Has(want) {
			t.Errorf("Has(%d) = false", want)
		}
	}
	if s.Has(6) || s.Has(1000) {
		t.Error("Has reported an absent element")
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
	if !s.Remove(5) {
		t.Error("Remove(5) should return true")
	}
	if s.Remove(5) || s.Remove(999) {
		t.Error("Remove of absent element should return false")
	}
	if s.Has(5) {
		t.Error("5 still present after Remove")
	}
}

func TestZeroValueUsable(t *testing.T) {
	var s Set
	if !s.Empty() || s.Len() != 0 || s.Has(3) {
		t.Fatal("zero value should be an empty set")
	}
	s.Add(63)
	s.Add(64)
	if got := s.Elems(); len(got) != 2 || got[0] != 63 || got[1] != 64 {
		t.Fatalf("Elems = %v, want [63 64]", got)
	}
}

func TestUnionWith(t *testing.T) {
	a, b := New(0), New(0)
	a.Add(1)
	a.Add(70)
	b.Add(2)
	b.Add(70)
	if !a.UnionWith(b) {
		t.Error("union adding a new element should report change")
	}
	if a.UnionWith(b) {
		t.Error("repeated union should report no change")
	}
	if got := a.Elems(); !equalInts(got, []int{1, 2, 70}) {
		t.Errorf("Elems = %v, want [1 2 70]", got)
	}
	if a.UnionWith(nil) {
		t.Error("union with nil should report no change")
	}
}

func TestDiffFrom(t *testing.T) {
	a, b := New(0), New(0)
	a.Add(1)
	a.Add(2)
	b.Add(2)
	b.Add(3)
	b.Add(130)
	d := a.DiffFrom(b)
	if got := d.Elems(); !equalInts(got, []int{3, 130}) {
		t.Errorf("DiffFrom = %v, want [3 130]", got)
	}
	if got := a.DiffFrom(nil).Elems(); len(got) != 0 {
		t.Errorf("DiffFrom(nil) = %v, want empty", got)
	}
}

func TestEqualAndClone(t *testing.T) {
	a := New(0)
	a.Add(7)
	a.Add(200)
	c := a.Clone()
	if !a.Equal(c) || !c.Equal(a) {
		t.Error("clone should equal original")
	}
	c.Add(1)
	if a.Equal(c) {
		t.Error("sets differ but Equal says true")
	}
	// Trailing-zero words should not affect equality.
	d := New(0)
	d.Add(7)
	d.Add(200)
	d.Add(500)
	d.Remove(500)
	if !a.Equal(d) {
		t.Error("trailing zero words should be ignored by Equal")
	}
}

func TestIntersects(t *testing.T) {
	a, b := New(0), New(0)
	a.Add(64)
	b.Add(65)
	if a.Intersects(b) {
		t.Error("disjoint sets should not intersect")
	}
	b.Add(64)
	if !a.Intersects(b) {
		t.Error("sets sharing 64 should intersect")
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := New(0)
	for i := 0; i < 10; i++ {
		s.Add(i * 7)
	}
	var seen []int
	s.ForEach(func(i int) bool {
		seen = append(seen, i)
		return len(seen) < 3
	})
	if !equalInts(seen, []int{0, 7, 14}) {
		t.Errorf("early stop visited %v, want [0 7 14]", seen)
	}
}

func TestNegativeElement(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add(-1) should panic")
		}
	}()
	New(0).Add(-1)
}

// TestAgainstMapOracle drives the set with random operations and compares
// with a map-based oracle.
func TestAgainstMapOracle(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(0)
		oracle := map[int]bool{}
		for k := 0; k < 300; k++ {
			x := rng.Intn(256)
			switch rng.Intn(3) {
			case 0:
				if s.Add(x) == oracle[x] {
					return false
				}
				oracle[x] = true
			case 1:
				if s.Remove(x) != oracle[x] {
					return false
				}
				delete(oracle, x)
			case 2:
				if s.Has(x) != oracle[x] {
					return false
				}
			}
		}
		var want []int
		for x := range oracle {
			want = append(want, x)
		}
		sort.Ints(want)
		return equalInts(s.Elems(), want) && s.Len() == len(want)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkUnionWith(b *testing.B) {
	x, y := New(4096), New(4096)
	for i := 0; i < 4096; i += 3 {
		x.Add(i)
	}
	for i := 0; i < 4096; i += 5 {
		y.Add(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := x.Clone()
		c.UnionWith(y)
	}
}

// TestDiffFromLongerSubtrahend: when the receiver (the subtrahend) has
// more words than t, the result must still be sized by t and the extra
// receiver words must not be consulted past t's length.
func TestDiffFromLongerSubtrahend(t *testing.T) {
	s := New(0)
	s.Add(5)
	s.Add(300) // three extra words beyond t
	u := New(0)
	u.Add(5)
	u.Add(7)
	d := s.DiffFrom(u)
	if !equalInts(d.Elems(), []int{7}) {
		t.Errorf("t \\ s = %v, want [7]", d.Elems())
	}
	// And the degenerate directions.
	if d := s.DiffFrom(New(0)); !d.Empty() {
		t.Errorf("empty \\ s = %v, want empty", d.Elems())
	}
	if d := (&Set{}).DiffFrom(u); !equalInts(d.Elems(), []int{5, 7}) {
		t.Errorf("t \\ ∅ = %v, want [5 7]", d.Elems())
	}
	if d := s.DiffFrom(nil); !d.Empty() {
		t.Errorf("nil \\ s = %v, want empty", d.Elems())
	}
}

// TestIntersectsAfterRemove: Remove clears a bit without shrinking the
// word slice; Intersects over the now-zero tail must not report a stale
// intersection.
func TestIntersectsAfterRemove(t *testing.T) {
	a, b := New(0), New(0)
	a.Add(200)
	b.Add(200)
	if !a.Intersects(b) {
		t.Fatal("Intersects = false before Remove")
	}
	a.Remove(200)
	if a.Intersects(b) {
		t.Error("Intersects = true after the only shared bit was removed")
	}
	a.Add(3)
	b.Add(64) // different words, still disjoint
	if a.Intersects(b) {
		t.Error("Intersects = true for disjoint sets with trailing zero words")
	}
}

// TestUnionWithSelf: unioning a set with itself must be a no-op that
// reports no change, even though receiver and argument alias.
func TestUnionWithSelf(t *testing.T) {
	s := New(0)
	s.Add(1)
	s.Add(77)
	s.Add(128)
	want := s.Elems()
	if s.UnionWith(s) {
		t.Error("s.UnionWith(s) reported a change")
	}
	if !equalInts(s.Elems(), want) {
		t.Errorf("s changed under self-union: %v, want %v", s.Elems(), want)
	}
}

// TestAppendCanonical: equal sets must encode to equal bytes regardless
// of construction history (growth from Add at high indexes, trailing
// zero words left behind by Remove), and different sets must differ.
func TestAppendCanonical(t *testing.T) {
	a := New(0)
	a.Add(3)
	a.Add(70)

	b := New(1024)
	b.Add(900) // grow the word slice far past a's
	b.Remove(900)
	b.Add(70)
	b.Add(3)

	ea := a.AppendCanonical(nil)
	eb := b.AppendCanonical(nil)
	if string(ea) != string(eb) {
		t.Errorf("equal sets encode differently: %x vs %x", ea, eb)
	}

	c := a.Clone()
	c.Add(71)
	if string(c.AppendCanonical(nil)) == string(ea) {
		t.Error("different sets encode equally")
	}

	// Empty set: a bare zero word count, identical for every empty set.
	var empty Set
	drained := New(0)
	drained.Add(500)
	drained.Remove(500)
	if string(empty.AppendCanonical(nil)) != string(drained.AppendCanonical(nil)) {
		t.Error("empty sets encode differently")
	}

	// Appends to the given slice rather than replacing it.
	pre := []byte{0xAA}
	out := a.AppendCanonical(pre)
	if out[0] != 0xAA || string(out[1:]) != string(ea) {
		t.Error("AppendCanonical does not append to the given prefix")
	}
}
