package fscs

import (
	"context"
	"errors"
	"sort"
	"time"

	"bootstrap/internal/andersen"
	"bootstrap/internal/callgraph"
	"bootstrap/internal/cluster"
	"bootstrap/internal/intern"
	"bootstrap/internal/ir"
	"bootstrap/internal/obs"
	"bootstrap/internal/steens"
)

// ErrBudget is reported when the engine exceeds its work budget — the
// analogue of the paper's 15-minute timeout on the unclustered analysis.
var ErrBudget = errors.New("fscs: work budget exhausted")

// ctxCheckInterval is how many worklist tuples may pass between
// cancellation polls. Kept a power of two so the check compiles to a
// mask; small enough that deadlines land within microseconds of real
// workloads, large enough that ctx.Err() stays off the hot path.
const ctxCheckInterval = 32

// Hook observes every charged worklist tuple. It exists for deterministic
// fault injection (package faults) and instrumentation: a hook may sleep
// to simulate a slow cluster, panic to simulate an engine bug, or return
// an error to abort the engine (the error becomes Run's result; wrap
// ErrBudget to force the exhaustion path).
type Hook func(tuples int64) error

// Option configures an Engine.
type Option func(*Engine)

// WithContext attaches a cancellation context: the worklist loops poll it
// at checkpoints and abort (soundly, via the Exhausted/fallback path) once
// it is done. Run then returns the context's error.
func WithContext(ctx context.Context) Option {
	return func(e *Engine) { e.ctx = ctx }
}

// WithHook installs a per-tuple hook (see Hook). A nil hook is ignored.
func WithHook(h Hook) Option {
	return func(e *Engine) {
		if h != nil {
			e.hook = h
		}
	}
}

// Detach removes the attempt-local solve state — the cancellation
// context and the injected-fault hook — from an engine whose Run
// completed. Queries on a solved engine still drive demand computation
// (value sets materialize per location), and that computation must not
// abort because the solve's deadline has since passed, nor suffer faults
// that were injected into the solve attempt.
func (e *Engine) Detach() {
	e.ctx = nil
	e.hook = nil
}

// WithFallback supplies a flow-insensitive analysis used when the
// flow-sensitive walk loses precision (TUnknown); without it the engine
// falls back to the Steensgaard partitioning.
func WithFallback(a *andersen.Analysis) Option {
	return func(e *Engine) { e.fallback = a }
}

// WithMaxCond bounds the number of conjuncts per points-to constraint
// before widening to true (default 8).
func WithMaxCond(n int) Option {
	return func(e *Engine) { e.maxCond = n }
}

// WithBudget bounds the number of worklist tuples the engine may process
// across all queries; once exceeded every walk aborts and Exhausted
// reports true (and Run returns ErrBudget). Zero means unlimited.
func WithBudget(n int64) Option {
	return func(e *Engine) { e.budget = n }
}

// WithMetrics attaches a metrics registry: when Run finishes (cleanly or
// not) the engine flushes its work counters — tuples charged, summaries
// built, conditions interned, memo hits/misses — into it with one
// counter-add each. Nil disables (the default); per-tuple work never
// touches the registry either way, so the hot path is unaffected.
func WithMetrics(m *obs.Metrics) Option {
	return func(e *Engine) { e.metrics = m }
}

// WithInterning toggles the hash-consed condition fast path (default on):
// the With/And memo tables that make repeated conjunction O(1). Turning it
// off recomputes every conjunction structurally — the representation stays
// interned, so results are bit-for-bit identical; only the work changes.
func WithInterning(on bool) Option {
	return func(e *Engine) { e.internMemo = on }
}

type sumKey struct {
	f   ir.FuncID
	ptr ir.VarID
}

// Engine runs the FSCS analysis for one cluster. An Engine is not safe for
// concurrent use; the bootstrapping scheduler creates one engine per
// cluster per worker.
type Engine struct {
	prog *ir.Program
	cg   *callgraph.Graph
	sa   *steens.Analysis
	cl   *cluster.Cluster

	fallback   *andersen.Analysis
	maxCond    int
	internMemo bool
	budget     int64 // 0 = unlimited
	spent      int64
	over       bool
	cause      error           // first failure: ErrBudget, ctx.Err(), or a hook error
	ctx        context.Context // optional cancellation; nil = never cancelled
	hook       Hook            // optional fault-injection/instrumentation hook
	metrics    *obs.Metrics    // optional registry Run flushes work counters into

	// tab hash-conses atoms and conditions to dense integer IDs; every
	// internal tuple, worklist item and cache below is keyed by these IDs
	// (or by small comparable structs of them) instead of strings.
	tab *condTab

	// Summaries at function exits: key -> interned tuple set.
	sums map[sumKey]tupSet
	done map[sumKey]bool

	// Variables each function may (transitively) modify, restricted to V_P.
	modStar map[ir.FuncID]map[ir.VarID]bool

	// FSCI value-set cache: packed (v, loc) -> resolved sources.
	ptsVR     map[uint64]*valueResult
	ptsInProg map[uint64]bool

	// Free list of walkBack traversal scratches (see walk.go). Walks nest
	// through summary lookups, so each live walk checks one out.
	scratch []*walkScratch

	// hasAssumes is set when the cluster's slice contains path-sensitivity
	// assume nodes; terminated walk tokens then keep walking backwards to
	// collect the branch constraints guarding their path (Section 3's
	// conb tracking). Without assumes they record immediately (cheaper).
	hasAssumes bool

	// Work counters for instrumentation.
	TuplesProcessed int64
	SummariesBuilt  int
}

// NewEngine creates an FSCS engine for one cluster of a program. The call
// graph must be built from the same (devirtualized) program.
func NewEngine(p *ir.Program, cg *callgraph.Graph, sa *steens.Analysis, cl *cluster.Cluster, opts ...Option) *Engine {
	e := &Engine{
		prog:       p,
		cg:         cg,
		sa:         sa,
		cl:         cl,
		maxCond:    8,
		internMemo: true,
		sums:       map[sumKey]tupSet{},
		done:       map[sumKey]bool{},
		ptsVR:      map[uint64]*valueResult{},
		ptsInProg:  map[uint64]bool{},
	}
	for _, o := range opts {
		o(e)
	}
	e.tab = newCondTab(e.maxCond, e.internMemo)
	for _, loc := range cl.Stmts {
		op := p.Node(loc).Stmt.Op
		if op == ir.OpAssumeEq || op == ir.OpAssumeNeq {
			e.hasAssumes = true
			break
		}
	}
	e.computeModStar()
	return e
}

// Cluster returns the cluster this engine analyzes.
func (e *Engine) Cluster() *cluster.Cluster { return e.cl }

// Exhausted reports whether the engine aborted — budget exceeded,
// deadline passed, or a hook fault; results obtained afterwards are
// partial (queries degrade soundly to the fallback).
func (e *Engine) Exhausted() bool { return e.over }

// Err returns what stopped the engine: nil while healthy, ErrBudget on
// exhaustion, the context error on cancellation, or the hook's error.
func (e *Engine) Err() error { return e.cause }

// CondsInterned returns the number of distinct conditions hash-consed so
// far (≥ 1: the true condition) — an instrumentation window into the
// interning tables.
func (e *Engine) CondsInterned() int { return e.tab.conds.Len() }

// InternStats returns the condition-operator memo traffic so far: hits
// (answered from the With/And memo tables) and misses (computed
// structurally — every operation, when interning is disabled).
func (e *Engine) InternStats() (hits, misses int64) {
	return e.tab.memoHits, e.tab.memoMisses
}

// flushMetrics adds the engine's work counters to the attached registry
// — called once when Run finishes, never on the per-tuple path.
func (e *Engine) flushMetrics() {
	if e.metrics == nil {
		return
	}
	hits, misses := e.InternStats()
	e.metrics.Counter("bootstrap_fscs_tuples_total",
		"worklist tuples charged across all FSCS engines").Add(e.TuplesProcessed)
	e.metrics.Counter("bootstrap_fscs_summaries_total",
		"function summaries built across all FSCS engines").Add(int64(e.SummariesBuilt))
	e.metrics.Counter("bootstrap_fscs_conds_interned_total",
		"distinct conditions hash-consed across all FSCS engines").Add(int64(e.CondsInterned()))
	e.metrics.Counter("bootstrap_fscs_intern_hits_total",
		"condition-operator results answered from the interning memo tables").Add(hits)
	e.metrics.Counter("bootstrap_fscs_intern_misses_total",
		"condition-operator results computed structurally").Add(misses)
}

// fail marks the engine aborted, keeping the first cause.
func (e *Engine) fail(err error) {
	e.over = true
	if e.cause == nil {
		e.cause = err
	}
}

// ctxErr reports the context's failure, treating an already-passed
// deadline as exceeded even when the context's timer has not fired yet —
// this keeps tiny (test) deadlines deterministic instead of racing the
// runtime timer.
func (e *Engine) ctxErr() error {
	if err := e.ctx.Err(); err != nil {
		return err
	}
	if d, ok := e.ctx.Deadline(); ok && !time.Now().Before(d) {
		return context.DeadlineExceeded
	}
	return nil
}

// checkpoint polls cancellation between worklist phases; reports false
// once the engine must stop.
func (e *Engine) checkpoint() bool {
	if e.over {
		return false
	}
	if e.ctx != nil {
		if err := e.ctxErr(); err != nil {
			e.fail(err)
			return false
		}
	}
	return true
}

// charge consumes budget for one worklist tuple; reports false when the
// engine must stop (budget gone, context done, or hook fault).
func (e *Engine) charge() bool {
	if e.over {
		return false
	}
	e.TuplesProcessed++
	if e.hook != nil {
		if err := e.hook(e.TuplesProcessed); err != nil {
			e.fail(err)
			return false
		}
	}
	// Poll the context every ctxCheckInterval tuples — every tuple when a
	// hook is installed, since hooks may sleep arbitrarily long.
	if e.ctx != nil && (e.hook != nil || e.TuplesProcessed%ctxCheckInterval == 0) {
		if err := e.ctxErr(); err != nil {
			e.fail(err)
			return false
		}
	}
	if e.budget == 0 {
		return true
	}
	e.spent++
	if e.spent > e.budget {
		e.fail(ErrBudget)
		return false
	}
	return true
}

// computeModStar computes, per function, the V_P variables the function
// may modify directly or via callees. Only functions with a non-empty set
// ever need summaries — the locality the paper exploits: "the need for
// computing summaries for functions that don't modify any pointers in the
// given cluster ... typically accounts for the majority of the functions".
func (e *Engine) computeModStar() {
	direct := map[ir.FuncID]map[ir.VarID]bool{}
	addMod := func(f ir.FuncID, v ir.VarID) {
		if !e.cl.HasVar(v) {
			return
		}
		m := direct[f]
		if m == nil {
			m = map[ir.VarID]bool{}
			direct[f] = m
		}
		m[v] = true
	}
	for _, loc := range e.cl.Stmts {
		n := e.prog.Node(loc)
		switch n.Stmt.Op {
		case ir.OpCopy, ir.OpAddr, ir.OpLoad, ir.OpNullify:
			addMod(n.Fn, n.Stmt.Dst)
		case ir.OpStore:
			// A store may modify any V_P object in the written class.
			for _, o := range e.sa.PointsToVars(n.Stmt.Dst) {
				addMod(n.Fn, o)
			}
		}
	}
	// Close over callees, SCC by SCC in reverse topological order; within
	// an SCC iterate to fixpoint.
	e.modStar = map[ir.FuncID]map[ir.VarID]bool{}
	for f, m := range direct {
		cp := map[ir.VarID]bool{}
		for v := range m {
			cp[v] = true
		}
		e.modStar[f] = cp
	}
	for _, scc := range e.cg.SCCs() {
		for changed := true; changed; {
			changed = false
			for _, f := range scc {
				for _, g := range e.cg.Callees(f) {
					for v := range e.modStar[g] {
						m := e.modStar[f]
						if m == nil {
							m = map[ir.VarID]bool{}
							e.modStar[f] = m
						}
						if !m[v] {
							m[v] = true
							changed = true
						}
					}
				}
			}
		}
	}
}

// Modifies reports whether f may (transitively) modify v ∈ V_P.
func (e *Engine) Modifies(f ir.FuncID, v ir.VarID) bool { return e.modStar[f][v] }

// SummaryFuncs returns the functions that need summaries for this cluster
// (non-empty modStar), sorted.
func (e *Engine) SummaryFuncs() []ir.FuncID {
	var out []ir.FuncID
	for f, m := range e.modStar {
		if len(m) > 0 {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Summary returns the summary tuples for ptr at the exit of f: the local
// maximally complete update sequences from each source to ptr leading from
// f's entry to its exit (Definition 8). Results are memoized; recursion is
// resolved by iterating the involved summaries to a fixpoint (the paper's
// SCC treatment in Algorithm 5).
func (e *Engine) Summary(f ir.FuncID, ptr ir.VarID) []SumTuple {
	key := sumKey{f: f, ptr: ptr}
	if !e.done[key] {
		e.fixpoint(key)
	}
	return e.tupleList(e.sums[key])
}

// sumRing is an index-ordered ring-buffer FIFO over summary keys — the
// fixpoint worklist. Compared to the former sorted-map-per-round loop it
// never re-sorts: keys are processed in discovery order and re-enqueued
// only when a dependency actually grew.
type sumRing struct {
	buf        []sumKey
	head, tail int // tail - head = live count; indexes are masked
}

func (r *sumRing) empty() bool { return r.head == r.tail }

func (r *sumRing) push(k sumKey) {
	if r.tail-r.head == len(r.buf) {
		grown := make([]sumKey, intern.NextPow2(2*(len(r.buf)+1)))
		n := r.tail - r.head
		for i := 0; i < n; i++ {
			grown[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
		}
		r.buf, r.head, r.tail = grown, 0, n
	}
	r.buf[r.tail&(len(r.buf)-1)] = k
	r.tail++
}

func (r *sumRing) pop() sumKey {
	k := r.buf[r.head&(len(r.buf)-1)]
	r.head++
	return k
}

// fixpoint computes root and every summary it transitively requests,
// iterating until no tuple set grows. Tuple sets are monotone (finite
// token × widened-condition space), so this terminates; the least fixpoint
// is unique, so the processing order only affects work, not results.
//
// The worklist is a FIFO ring buffer with dependency tracking: when key
// k's walk reads a callee summary g, the edge g → k is recorded, and k is
// re-enqueued only when g's tuple set actually grows — replacing the old
// scheme that re-sorted and re-ran every pending key each round.
func (e *Engine) fixpoint(root sumKey) {
	var ring sumRing
	queued := map[sumKey]bool{}
	members := map[sumKey]bool{}
	deps := map[sumKey][]sumKey{}
	depSeen := map[[2]sumKey]bool{}

	enqueue := func(k sumKey) {
		if !queued[k] {
			queued[k] = true
			ring.push(k)
		}
	}
	discover := func(k sumKey) {
		if !members[k] {
			members[k] = true
			enqueue(k)
		}
	}
	discover(root)

	for !ring.empty() && e.checkpoint() {
		k := ring.pop()
		queued[k] = false

		lookup := func(g ir.FuncID, ptr ir.VarID) tupSet {
			gk := sumKey{f: g, ptr: ptr}
			if !e.done[gk] {
				discover(gk)
				edge := [2]sumKey{gk, k}
				if !depSeen[edge] {
					depSeen[edge] = true
					deps[gk] = append(deps[gk], k)
				}
			}
			return e.sums[gk]
		}
		f := e.prog.Func(k.f)
		out := e.walkBack(k.f, VarTok(k.ptr), e.prog.Node(f.Exit).Preds, lookup)

		cur := e.sums[k]
		if cur == nil {
			cur = tupSet{}
			e.sums[k] = cur
		}
		grew := false
		for t := range out {
			if cur.add(t) {
				grew = true
			}
		}
		if grew {
			for _, d := range deps[k] {
				enqueue(d)
			}
		}
	}
	for k := range members {
		e.done[k] = true
	}
	e.SummariesBuilt = len(e.done)
}

// summaryLookup is the default lookup for walks outside the fixpoint: it
// computes callee summaries fully on demand.
func (e *Engine) summaryLookup(g ir.FuncID, ptr ir.VarID) tupSet {
	key := sumKey{f: g, ptr: ptr}
	if !e.done[key] {
		e.fixpoint(key)
	}
	return e.sums[key]
}

// SummaryAt returns the summary tuples for ptr at an arbitrary location of
// its function: the sources of maximally complete update sequences from
// the function's entry to loc.
func (e *Engine) SummaryAt(loc ir.Loc, ptr ir.VarID) []SumTuple {
	n := e.prog.Node(loc)
	out := e.walkBack(n.Fn, VarTok(ptr), n.Preds, e.summaryLookup)
	return e.tupleList(out)
}

// tupleList materializes an interned tuple set as public SumTuples in the
// canonical (key-sorted) order the API has always used.
func (e *Engine) tupleList(m tupSet) []SumTuple {
	out := make([]SumTuple, 0, len(m))
	for t := range m {
		out = append(out, SumTuple{Src: t.tok, Cond: e.tab.cond(t.cond)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key() < out[j].key() })
	return out
}

// Rebind repoints a solved engine at a structurally equivalent successor
// program. core.ApplyEdit reuses engines of clusters whose Algorithm-1
// slice is untouched by an edit batch: every VarID, FuncID and Loc the
// slice names is identical in the new program, so the memoized summaries
// and value sets remain exact. What must swap is everything keyed or
// sized by the program as a whole: the program itself (inserted nodes
// extend the Loc space), the call graph, the Steensgaard analysis (the
// slice's classes are isomorphic or the cluster would be dirty), the
// Andersen fallback (widened answers must match a fresh run on the new
// program), and the cluster object carrying the new cover's ID. The
// walk scratch free list is dropped because its per-location buckets are
// sized to len(prog.Nodes); it re-grows lazily.
func (e *Engine) Rebind(p *ir.Program, cg *callgraph.Graph, sa *steens.Analysis, cl *cluster.Cluster, fallback *andersen.Analysis) {
	e.prog = p
	e.cg = cg
	e.sa = sa
	e.cl = cl
	e.fallback = fallback
	e.scratch = nil
}
