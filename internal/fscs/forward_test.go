package fscs

import (
	"testing"

	"bootstrap/internal/ir"
)

func forwardNames(h *harness, e *Engine, p string, loc string) map[string]bool {
	out := map[string]bool{}
	for _, q := range e.ForwardAliases(h.prog.VarByName[p], h.exitOf(loc)) {
		out[h.prog.VarName(q)] = true
	}
	return out
}

func TestForwardAliasesBasic(t *testing.T) {
	h := newHarness(t, `
		int a;
		int *p, *q, *r, *other;
		int b;
		void main() {
			p = &a;
			q = p;
			r = q;
			other = &b;
		}
	`)
	e := h.engineFor(t)
	got := forwardNames(h, e, "p", "main")
	if !got["q"] || !got["r"] {
		t.Errorf("ForwardAliases(p) = %v, want q and r", got)
	}
	if got["other"] {
		t.Errorf("ForwardAliases(p) = %v must not include other", got)
	}
}

func TestForwardKill(t *testing.T) {
	h := newHarness(t, `
		int a, b;
		int *p, *q;
		void main() {
			p = &a;
			q = p;
			q = &b;
		}
	`)
	e := h.engineFor(t)
	got := forwardNames(h, e, "p", "main")
	if got["q"] {
		t.Errorf("q was reassigned; ForwardAliases(p) = %v must not include it", got)
	}
}

func TestForwardThroughStoreLoad(t *testing.T) {
	h := newHarness(t, `
		int a;
		int *p, *x, *l;
		int **px;
		void main() {
			p = &a;
			px = &x;
			*px = p;
			l = *px;
		}
	`)
	e := h.engineFor(t)
	got := forwardNames(h, e, "p", "main")
	if !got["x"] || !got["l"] {
		t.Errorf("ForwardAliases(p) = %v, want x (via store) and l (via load)", got)
	}
}

func TestForwardInterprocedural(t *testing.T) {
	h := newHarness(t, `
		int a;
		int *g, *mine;
		void adopt(int *v) { g = v; }
		void main() {
			mine = &a;
			adopt(mine);
		}
	`)
	e := h.engineFor(t)
	got := forwardNames(h, e, "mine", "main")
	if !got["g"] {
		t.Errorf("ForwardAliases(mine) = %v, want g via the call", got)
	}
}

// TestForwardCoversIntersection: the forward Q-phase must find at least
// every alias the intersection-based method reports (its interprocedural
// pass-through makes it an over-approximation of the same answer).
func TestForwardCoversIntersection(t *testing.T) {
	srcs := []string{
		`int a, b, c; int *x, *y, *p; int **px;
		 void swap() { int *t; t = x; x = y; y = t; }
		 void main() { x = &a; y = &b; p = &c; px = &x; swap(); *px = p; }`,
		figure5Src,
		`int a; int *g;
		 void rec(int *v) { if (*) { rec(v); } g = v; }
		 void main() { rec(&a); }`,
	}
	for _, src := range srcs {
		h := newHarness(t, src)
		e := h.engineFor(t)
		exit := h.exitOf("main")
		for _, p := range e.Cluster().Pointers {
			inter := e.Aliases(p, exit)
			fwd := map[ir.VarID]bool{}
			for _, q := range e.ForwardAliases(p, exit) {
				fwd[q] = true
			}
			for _, q := range inter {
				// Only compare pointers with concrete object values: the
				// intersection method also matches on shared *unknown*
				// fallbacks, which the forward phase handles separately.
				if !fwd[q] {
					objsP, okP := e.Values(p, exit)
					objsQ, okQ := e.Values(q, exit)
					if okP && okQ && len(objsP) > 0 && len(objsQ) > 0 {
						t.Errorf("src %.40q...: intersection alias %s of %s missing from forward result",
							src, h.prog.VarName(q), h.prog.VarName(p))
					}
				}
			}
		}
	}
}
