package fscs

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

const cancelSrc = `
	int a, b;
	int *x, *y;
	void f1() { x = y; }
	void main() {
		x = &a;
		y = &b;
		while (*) { f1(); y = x; }
	}
`

func TestContextCancelled(t *testing.T) {
	h := newHarness(t, cancelSrc)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := h.engineFor(t, WithContext(ctx))
	err := e.Run()
	if !errors.Is(err, context.Canceled) {
		t.Errorf("Run under a cancelled context = %v, want context.Canceled", err)
	}
	if !e.Exhausted() || !errors.Is(e.Err(), context.Canceled) {
		t.Errorf("Exhausted=%v Err=%v, want aborted with context.Canceled", e.Exhausted(), e.Err())
	}
	// Queries after cancellation degrade to the fallback and stay sound.
	x, y := h.v(t, "x"), h.v(t, "y")
	if !e.MayAlias(x, y, h.exitOf("main")) {
		t.Error("cancelled engine must keep the sound fallback may-alias")
	}
}

func TestContextDeadline(t *testing.T) {
	h := newHarness(t, cancelSrc)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done() // the deadline is in the past before Run starts
	e := h.engineFor(t, WithContext(ctx))
	if err := e.Run(); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Run past its deadline = %v, want context.DeadlineExceeded", err)
	}
}

func TestHookAborts(t *testing.T) {
	h := newHarness(t, cancelSrc)
	boom := errors.New("boom")
	e := h.engineFor(t, WithHook(func(tuples int64) error {
		if tuples > 2 {
			return boom
		}
		return nil
	}))
	if err := e.Run(); !errors.Is(err, boom) {
		t.Errorf("Run with failing hook = %v, want boom", err)
	}
	if !e.Exhausted() {
		t.Error("a hook error must mark the engine exhausted")
	}
}

func TestHookBudgetWrap(t *testing.T) {
	h := newHarness(t, cancelSrc)
	e := h.engineFor(t, WithHook(func(tuples int64) error {
		return fmt.Errorf("injected: %w", ErrBudget)
	}))
	if err := e.Run(); !errors.Is(err, ErrBudget) {
		t.Errorf("Run with budget-wrapping hook = %v, want ErrBudget via errors.Is", err)
	}
}

func TestBudgetCauseSurvivesLaterCancel(t *testing.T) {
	h := newHarness(t, cancelSrc)
	ctx, cancel := context.WithCancel(context.Background())
	e := h.engineFor(t, WithBudget(3), WithContext(ctx))
	if err := e.Run(); !errors.Is(err, ErrBudget) {
		t.Fatalf("Run = %v, want ErrBudget", err)
	}
	cancel()
	// The first cause wins: cancellation after exhaustion does not
	// rewrite history.
	if !errors.Is(e.Err(), ErrBudget) {
		t.Errorf("Err = %v, want the original ErrBudget", e.Err())
	}
}
