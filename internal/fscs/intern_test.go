package fscs

import (
	"math/rand"
	"testing"

	"bootstrap/internal/ir"
)

func testAtoms() []Atom {
	return []Atom{
		{Loc: 1, Op: OpPointsTo, X: 2, Y: 3},
		{Loc: 4, Op: OpNotPointsTo, X: 2, Y: 5},
		{Loc: 7, Op: OpSameTarget, X: 1, Y: 6},
		{Loc: 9, Op: OpDiffTarget, X: 3, Y: 4},
		{Loc: 12, Op: OpPointsTo, X: 8, Y: 3},
	}
}

// TestInternOrderIndependence: the same condition built by conjoining the
// same atoms in different orders must intern to the same CondID — the
// invariant that makes interned tuple equality equal structural equality.
func TestInternOrderIndependence(t *testing.T) {
	atoms := testAtoms()
	tab := newCondTab(8, true)
	perms := [][]int{
		{0, 1, 2, 3, 4},
		{4, 3, 2, 1, 0},
		{2, 0, 4, 1, 3},
		{1, 4, 0, 3, 2},
	}
	var want CondID = -1
	for _, perm := range perms {
		c := TrueCondID
		for _, i := range perm {
			c = tab.with(c, atoms[i])
		}
		if want == -1 {
			want = c
		} else if c != want {
			t.Errorf("order %v interned to %d, want %d", perm, c, want)
		}
	}
	if want == TrueCondID {
		t.Fatal("five atoms under maxAtoms=8 must not widen to true")
	}
	// The structural-entry path (intern) must agree with the built one,
	// again independent of atom order.
	for _, perm := range perms {
		sc := TrueCond()
		for _, i := range perm {
			sc = sc.With(atoms[i], 8)
		}
		if got := tab.intern(sc); got != want {
			t.Errorf("intern of structurally-built cond (order %v) = %d, want %d", perm, got, want)
		}
	}
}

// TestInternMemoEquivalence: with memoization on and off, the interned
// operators must produce identical results (the WithInterning knob trades
// work only, never answers). Cross-checked against the structural
// Cond.With/Cond.And operators, including the widening-to-true edge.
func TestInternMemoEquivalence(t *testing.T) {
	atoms := testAtoms()
	const maxAtoms = 3 // small, so widening paths are exercised
	rng := rand.New(rand.NewSource(7))

	memoTab := newCondTab(maxAtoms, true)
	slowTab := newCondTab(maxAtoms, false)

	type state struct {
		memo, slow CondID
		structural Cond
	}
	states := []state{{memo: TrueCondID, slow: TrueCondID, structural: TrueCond()}}
	for step := 0; step < 300; step++ {
		s := states[rng.Intn(len(states))]
		var next state
		if rng.Intn(3) == 0 && len(states) > 1 {
			o := states[rng.Intn(len(states))]
			next = state{
				memo:       memoTab.and(s.memo, o.memo),
				slow:       slowTab.and(s.slow, o.slow),
				structural: s.structural.And(o.structural, maxAtoms),
			}
		} else {
			a := atoms[rng.Intn(len(atoms))]
			next = state{
				memo:       memoTab.with(s.memo, a),
				slow:       slowTab.with(s.slow, a),
				structural: s.structural.With(a, maxAtoms),
			}
		}
		if memoTab.cond(next.memo).Key() != next.structural.Key() {
			t.Fatalf("step %d: memoized result %q != structural %q",
				step, memoTab.cond(next.memo).Key(), next.structural.Key())
		}
		if slowTab.cond(next.slow).Key() != next.structural.Key() {
			t.Fatalf("step %d: unmemoized result %q != structural %q",
				step, slowTab.cond(next.slow).Key(), next.structural.Key())
		}
		states = append(states, next)
	}
	if memoTab.conds.Len() != slowTab.conds.Len() {
		t.Errorf("memo on/off interned different condition counts: %d vs %d",
			memoTab.conds.Len(), slowTab.conds.Len())
	}
}

// TestEngineInterningToggleIdentical: a full engine run with the memo fast
// path disabled must produce bit-for-bit identical summaries and value
// sets — WithInterning(false) changes the work, never the answers.
func TestEngineInterningToggleIdentical(t *testing.T) {
	src := `
		int a, b, c;
		int *p, *q, *r;
		int **pp;
		void leaf() { q = p; }
		void mid() { leaf(); if (p == r) { r = &c; } }
		void main() {
			p = &a;
			r = &b;
			pp = &p;
			*pp = r;
			mid();
		}
	`
	h := newHarness(t, src)
	fast := h.engineFor(t, WithInterning(true))
	slow := h.engineFor(t, WithInterning(false))
	if err := fast.Run(); err != nil {
		t.Fatalf("interned run: %v", err)
	}
	if err := slow.Run(); err != nil {
		t.Fatalf("unmemoized run: %v", err)
	}
	for _, f := range fast.SummaryFuncs() {
		for _, v := range []ir.VarID{h.v(t, "p"), h.v(t, "q"), h.v(t, "r")} {
			a, b := fast.Summary(f, v), slow.Summary(f, v)
			if len(a) != len(b) {
				t.Fatalf("summary(%d, %d): %d tuples vs %d", f, v, len(a), len(b))
			}
			for i := range a {
				if a[i].Src != b[i].Src || a[i].Cond.Key() != b[i].Cond.Key() {
					t.Errorf("summary(%d, %d)[%d]: %v vs %v", f, v, i, a[i], b[i])
				}
			}
		}
	}
	loc := h.exitOf("main")
	for _, name := range []string{"p", "q", "r"} {
		v := h.v(t, name)
		ga, oka := fast.Values(v, loc)
		gb, okb := slow.Values(v, loc)
		if oka != okb || len(ga) != len(gb) {
			t.Fatalf("values(%s): (%v,%v) vs (%v,%v)", name, ga, oka, gb, okb)
		}
		for i := range ga {
			if ga[i] != gb[i] {
				t.Errorf("values(%s)[%d]: %d vs %d", name, i, ga[i], gb[i])
			}
		}
	}
	if fast.CondsInterned() == 0 || slow.CondsInterned() == 0 {
		t.Error("CondsInterned = 0; interning tables unused")
	}
}
