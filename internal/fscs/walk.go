package fscs

import (
	"bootstrap/internal/ir"
)

// walkBack is the engine's core: the backward interprocedural traversal of
// Algorithms 4 and 5. Starting from startLocs in function f with a tracked
// token (the paper's tuple (p, f, l, m, q, cond) — here p and l are fixed
// by the caller, the worklist carries (m, q, cond)), it propagates the
// token against each statement's effect, branching on unresolved points-to
// relations with constraints per Definition 8, splicing callee summaries at
// call nodes, and returning the set of sources: tokens at f's entry (TVar)
// or terminated sequences (TAddr / TNull / TUnknown).
//
// Conditions travel as interned CondIDs and worklist deduplication is an
// epoch-stamped per-location bucket reused across walks — no string keys
// and no per-walk map allocation anywhere on this path.
//
// lookup supplies callee exit summaries; during the recursion fixpoint it
// returns the current (possibly still growing) tuple sets.
func (e *Engine) walkBack(f ir.FuncID, start Token, startLocs []ir.Loc, lookup func(ir.FuncID, ir.VarID) tupSet) tupSet {
	out := tupSet{}
	if !e.checkpoint() {
		// Cancelled: return no sources. Callers observe e.over and widen
		// to the fallback, so an empty set here stays sound.
		return out
	}
	if start.Kind != TVar {
		out.add(tup{tok: start, cond: TrueCondID})
		return out
	}
	entry := e.prog.Func(f).Entry

	s := e.getScratch()
	defer e.putScratch(s)

	record := func(t Token, c CondID) {
		out.add(tup{tok: t, cond: c})
	}
	push := func(loc ir.Loc, t Token, c CondID) {
		if t.Kind != TVar && !e.hasAssumes {
			// No path constraints to collect: terminated sequences record
			// immediately.
			record(t, c)
			return
		}
		if s.stamp[loc] != s.epoch {
			s.stamp[loc] = s.epoch
			s.bkt[loc] = s.bkt[loc][:0]
		}
		b := s.bkt[loc]
		for i := range b {
			if b[i].tok == t && b[i].cond == c {
				return
			}
		}
		s.bkt[loc] = append(b, wbEntry{tok: t, cond: c})
		s.work = append(s.work, wbItem{loc: loc, tok: t, cond: c})
	}
	if len(startLocs) == 0 {
		// Querying at the function entry: the token's value is whatever it
		// holds on entry.
		record(start, TrueCondID)
		return out
	}
	for _, l := range startLocs {
		push(l, start, TrueCondID)
	}

	for len(s.work) > 0 {
		if !e.charge() {
			return out
		}
		it := s.work[len(s.work)-1]
		s.work = s.work[:len(s.work)-1]

		outcomes := e.transfer(it.loc, it.tok, it.cond, lookup)
		n := e.prog.Node(it.loc)
		for _, oc := range outcomes {
			if oc.tok.Kind != TVar && !e.hasAssumes {
				record(oc.tok, oc.cond)
				continue
			}
			if it.loc == entry {
				record(oc.tok, oc.cond)
				continue
			}
			for _, pr := range n.Preds {
				push(pr, oc.tok, oc.cond)
			}
		}
	}
	return out
}

// wbItem is one walkBack worklist entry: a tracked token with its path
// condition at a location.
type wbItem struct {
	loc  ir.Loc
	tok  Token
	cond CondID
}

// wbEntry is a (token, condition) pair in a per-location dedup bucket.
type wbEntry struct {
	tok  Token
	cond CondID
}

// walkScratch is the reusable traversal state for one live walkBack. The
// dedup set is an epoch-stamped bucket per location: a stale stamp means
// the bucket logically starts empty this walk, so no clearing pass is
// needed between walks, and membership is a linear scan of the small
// per-location fan-in instead of hashing a 16-byte struct key. Profiles
// showed the per-call map[item]bool — its allocation plus AES hashing —
// dominating whole-cascade CPU.
type walkScratch struct {
	epoch uint32
	stamp []uint32
	bkt   [][]wbEntry
	work  []wbItem
}

// getScratch pops a scratch off the engine's free list. walkBack re-enters
// itself through summary lookups and FSCI value resolution, so each live
// walk owns a scratch; the list depth matches the maximum nesting, which
// stays small.
func (e *Engine) getScratch() *walkScratch {
	var s *walkScratch
	if n := len(e.scratch); n > 0 {
		s = e.scratch[n-1]
		e.scratch = e.scratch[:n-1]
	} else {
		n := len(e.prog.Nodes)
		s = &walkScratch{stamp: make([]uint32, n), bkt: make([][]wbEntry, n)}
	}
	s.epoch++
	if s.epoch == 0 {
		// Stamp wrap-around: every stale stamp would look current, so force
		// a full reset once per 2^32 walks.
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.epoch = 1
	}
	return s
}

func (e *Engine) putScratch(s *walkScratch) {
	s.work = s.work[:0]
	e.scratch = append(e.scratch, s)
}

// outcome is one (token, condition) result of pushing a token backwards
// through a statement.
type outcome struct {
	tok  Token
	cond CondID
}

// transfer implements Algorithm 4: the effect of the statement at loc on a
// tracked token, backwards. It returns the possible outcomes (several when
// a points-to relation cannot be resolved and both cases are tracked under
// constraints).
func (e *Engine) transfer(loc ir.Loc, tok Token, cond CondID, lookup func(ir.FuncID, ir.VarID) tupSet) []outcome {
	n := e.prog.Node(loc)
	st := n.Stmt
	q := tok.V
	pass := []outcome{{tok: tok, cond: cond}}

	// A terminated token (null / &obj / unknown) is walked further only
	// to pick up the branch constraints guarding its path: assume nodes
	// strengthen its condition; everything else is transparent.
	if tok.Kind != TVar {
		if st.Op == ir.OpAssumeEq || st.Op == ir.OpAssumeNeq {
			if !e.cl.HasVar(st.Dst) || !e.cl.HasVar(st.Src) {
				return pass
			}
			op := OpSameTarget
			if st.Op == ir.OpAssumeNeq {
				op = OpDiffTarget
			}
			return []outcome{{tok: tok, cond: e.tab.with(cond, Atom{Loc: loc, Op: op, X: st.Dst, Y: st.Src})}}
		}
		return pass
	}

	// Statements outside St_P cannot modify V_P variables (Algorithm 1
	// includes every statement whose destination is relevant), so they act
	// as skips — this is the Prog_P slicing of Section 2.
	switch st.Op {
	case ir.OpCopy, ir.OpAddr, ir.OpLoad, ir.OpStore, ir.OpNullify:
		if !e.cl.HasStmt(loc) {
			return pass
		}
	}

	switch st.Op {
	case ir.OpSkip, ir.OpRet, ir.OpTouch:
		return pass

	case ir.OpAssumeEq, ir.OpAssumeNeq:
		// Path sensitivity (Section 3): the walk crossed a branch arm
		// guarded by a pointer (in)equality; record it as a same-target /
		// different-target constraint (Definition 8) so refutable tuples
		// are weeded out at satisfiability time. Only constraints over
		// tracked (V_P) pointers are recorded — the FSCI points-to sets
		// used to refute them are only computed for the cluster's slice.
		if !e.cl.HasVar(st.Dst) || !e.cl.HasVar(st.Src) {
			return pass
		}
		op := OpSameTarget
		if st.Op == ir.OpAssumeNeq {
			op = OpDiffTarget
		}
		return []outcome{{tok: tok, cond: e.tab.with(cond, Atom{Loc: loc, Op: op, X: st.Dst, Y: st.Src})}}

	case ir.OpCopy:
		if st.Dst == q {
			return []outcome{{tok: VarTok(st.Src), cond: cond}}
		}
		return pass

	case ir.OpAddr:
		if st.Dst == q {
			return []outcome{{tok: AddrTok(st.Src), cond: cond}}
		}
		return pass

	case ir.OpNullify:
		if st.Dst == q {
			return []outcome{{tok: NullTok(), cond: cond}}
		}
		return pass

	case ir.OpLoad: // dst = *s
		if st.Dst != q {
			return pass
		}
		s := st.Src
		if e.sa.SamePartition(s, q) {
			// Cyclic case: s and the tracked pointer share a partition, so
			// the FSCI points-to set of s is not available yet; enumerate
			// the possible objects under constraints (Definition 8).
			var outs []outcome
			for _, o := range e.cl.Vars {
				if e.sa.LocClass(o) == e.sa.ContentClass(s) {
					outs = append(outs, outcome{
						tok:  VarTok(o),
						cond: e.tab.with(cond, Atom{Loc: loc, Op: OpPointsTo, X: s, Y: o}),
					})
				}
			}
			if len(outs) == 0 {
				return []outcome{{tok: UnknownTok(), cond: cond}}
			}
			return outs
		}
		// Top-down resolution: s is strictly higher in the hierarchy, so
		// its FSCI points-to set is computable first (Algorithm 2).
		pt, known := e.PointsToAt(s, loc)
		if !known {
			return []outcome{{tok: UnknownTok(), cond: cond}}
		}
		var outs []outcome
		for _, o := range pt {
			if !e.cl.HasVar(o) {
				continue
			}
			outs = append(outs, outcome{
				tok:  VarTok(o),
				cond: e.tab.with(cond, Atom{Loc: loc, Op: OpPointsTo, X: s, Y: o}),
			})
		}
		if len(outs) == 0 {
			// s points nowhere the analysis tracks: the load yields an
			// unconstrained value.
			return []outcome{{tok: UnknownTok(), cond: cond}}
		}
		return outs

	case ir.OpStore: // *d = r
		d, r := st.Dst, st.Src
		// The store can touch q only if q's location class is what d
		// points at under Steensgaard.
		if e.sa.LocClass(q) != e.sa.ContentClass(d) {
			return pass
		}
		both := func() []outcome {
			return []outcome{
				{tok: VarTok(r), cond: e.tab.with(cond, Atom{Loc: loc, Op: OpPointsTo, X: d, Y: q})},
				{tok: tok, cond: e.tab.with(cond, Atom{Loc: loc, Op: OpNotPointsTo, X: d, Y: q})},
			}
		}
		if e.sa.SamePartition(d, q) {
			return both() // cyclic case: track constraints
		}
		pt, known := e.PointsToAt(d, loc)
		if !known {
			return both()
		}
		for _, o := range pt {
			if o == q {
				return both()
			}
		}
		return pass // d provably never points at q here

	case ir.OpCall:
		g := st.Callee
		if g == ir.NoFunc {
			// Undevirtualized indirect call: conservatively unknown for
			// any pointer it might modify.
			if e.cl.HasVar(q) {
				return []outcome{{tok: UnknownTok(), cond: cond}}
			}
			return pass
		}
		if !e.Modifies(g, q) {
			// Executing g has no effect on q: jump over the call
			// (Algorithm 5, line 17).
			return pass
		}
		// Splice g's exit summary for q (Algorithm 5, lines 10-13): each
		// source continues in the caller just before the call node, where
		// the parameter-binding copies rebind formals to actuals.
		var outs []outcome
		for t := range lookup(g, q) {
			outs = append(outs, outcome{tok: t.tok, cond: e.tab.and(cond, t.cond)})
		}
		// An empty (provisional) summary yields no outcomes this round;
		// the fixpoint revisits once the callee summary grows.
		return outs
	}
	return pass
}
