package fscs

import (
	"testing"

	"bootstrap/internal/andersen"
	"bootstrap/internal/callgraph"
	"bootstrap/internal/cluster"
	"bootstrap/internal/frontend"
	"bootstrap/internal/ir"
	"bootstrap/internal/steens"
)

// harness bundles everything an FSCS engine needs for one test program.
type harness struct {
	prog *ir.Program
	sa   *steens.Analysis
	aa   *andersen.Analysis
	cg   *callgraph.Graph
}

func newHarness(t *testing.T, src string) *harness {
	t.Helper()
	p, err := frontend.LowerSource(src)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	sa := steens.Analyze(p)
	if frontend.HasIndirectCalls(p) {
		if err := frontend.Devirtualize(p, func(_ ir.Loc, fp ir.VarID) []ir.FuncID {
			return sa.Targets(fp)
		}); err != nil {
			t.Fatalf("devirtualize: %v", err)
		}
		sa = steens.Analyze(p)
	}
	return &harness{
		prog: p,
		sa:   sa,
		aa:   andersen.Analyze(p),
		cg:   callgraph.Build(p),
	}
}

// engineFor builds an engine over the whole-program cluster (simplest for
// correctness tests; clustered equivalence is tested separately).
func (h *harness) engineFor(t *testing.T, opts ...Option) *Engine {
	t.Helper()
	whole := cluster.BuildWhole(h.prog, h.sa)
	opts = append([]Option{WithFallback(h.aa)}, opts...)
	return NewEngine(h.prog, h.cg, h.sa, whole, opts...)
}

func (h *harness) v(t *testing.T, name string) ir.VarID {
	t.Helper()
	id, ok := h.prog.VarByName[name]
	if !ok {
		t.Fatalf("no variable %q", name)
	}
	return id
}

// exitOf returns the exit location of a function.
func (h *harness) exitOf(name string) ir.Loc {
	return h.prog.Func(h.prog.FuncByName[name]).Exit
}

// callSites returns the call nodes invoking callee, in location order.
func (h *harness) callSites(callee string) []ir.Loc {
	var out []ir.Loc
	want := h.prog.FuncByName[callee]
	for _, n := range h.prog.Nodes {
		if n.Stmt.Op == ir.OpCall && n.Stmt.Callee == want {
			out = append(out, n.Loc)
		}
	}
	return out
}

func valueNames(h *harness, e *Engine, p ir.VarID, loc ir.Loc) map[string]bool {
	objs, _ := e.Values(p, loc)
	out := map[string]bool{}
	for _, o := range objs {
		out[h.prog.VarName(o)] = true
	}
	return out
}

// TestFlowSensitiveKill is the headline precision property: a later
// assignment kills an earlier one on a straight line, which Andersen's
// flow-insensitive analysis cannot see.
func TestFlowSensitiveKill(t *testing.T) {
	h := newHarness(t, `
		int a, b;
		int *x;
		void main() {
			x = &a;
			x = &b;
		}
	`)
	e := h.engineFor(t)
	vals := valueNames(h, e, h.v(t, "x"), h.exitOf("main"))
	if !vals["b"] {
		t.Errorf("Values(x) = %v, want b", vals)
	}
	if vals["a"] {
		t.Errorf("Values(x) = %v: flow-sensitive analysis must kill &a", vals)
	}
	// Andersen keeps both — the precision gap the paper motivates.
	if got := len(h.aa.PointsTo(h.v(t, "x"))); got != 2 {
		t.Errorf("Andersen pts(x) size = %d, want 2", got)
	}
}

func TestNullKill(t *testing.T) {
	h := newHarness(t, `
		int a;
		int *x;
		void main() {
			x = &a;
			x = null;
		}
	`)
	e := h.engineFor(t)
	objs, precise := e.Values(h.v(t, "x"), h.exitOf("main"))
	if !precise {
		t.Error("straight-line program should be precise")
	}
	if len(objs) != 0 {
		t.Errorf("Values(x) = %v, want empty after null kill", objs)
	}
}

func TestBranchesMerge(t *testing.T) {
	h := newHarness(t, `
		int a, b, c;
		int *x;
		void main() {
			x = &c;
			if (*) { x = &a; } else { x = &b; }
		}
	`)
	e := h.engineFor(t)
	vals := valueNames(h, e, h.v(t, "x"), h.exitOf("main"))
	if !vals["a"] || !vals["b"] {
		t.Errorf("Values(x) = %v, want a and b", vals)
	}
	if vals["c"] {
		t.Errorf("Values(x) = %v: both branches kill &c", vals)
	}
}

func TestPartialKillInBranch(t *testing.T) {
	h := newHarness(t, `
		int a, b;
		int *x;
		void main() {
			x = &a;
			if (*) { x = &b; }
		}
	`)
	e := h.engineFor(t)
	vals := valueNames(h, e, h.v(t, "x"), h.exitOf("main"))
	if !vals["a"] || !vals["b"] {
		t.Errorf("Values(x) = %v, want both a (else-path) and b (then-path)", vals)
	}
}

func TestLoop(t *testing.T) {
	h := newHarness(t, `
		int a, b;
		int *x, *y;
		void main() {
			x = &a;
			y = &b;
			while (*) {
				x = y;
				y = x;
			}
		}
	`)
	e := h.engineFor(t)
	vals := valueNames(h, e, h.v(t, "x"), h.exitOf("main"))
	if !vals["a"] || !vals["b"] {
		t.Errorf("Values(x) = %v, want a and b through the loop", vals)
	}
}

func TestCopyChain(t *testing.T) {
	h := newHarness(t, `
		int a;
		int *p, *q, *r;
		void main() {
			p = &a;
			q = p;
			r = q;
		}
	`)
	e := h.engineFor(t)
	exit := h.exitOf("main")
	for _, name := range []string{"p", "q", "r"} {
		vals := valueNames(h, e, h.v(t, name), exit)
		if !vals["a"] || len(vals) != 1 {
			t.Errorf("Values(%s) = %v, want exactly {a}", name, vals)
		}
	}
	if !e.MayAlias(h.v(t, "p"), h.v(t, "r"), exit) {
		t.Error("p and r must alias")
	}
	aliases := e.Aliases(h.v(t, "p"), exit)
	got := map[string]bool{}
	for _, q := range aliases {
		got[h.prog.VarName(q)] = true
	}
	if !got["q"] || !got["r"] {
		t.Errorf("Aliases(p) = %v, want q and r", got)
	}
}

func TestLoadStoreFlowSensitive(t *testing.T) {
	h := newHarness(t, `
		int a, b;
		int *x, *l;
		int **px;
		void main() {
			x = &a;
			px = &x;
			*px = &b;
			l = *px;
		}
	`)
	e := h.engineFor(t)
	vals := valueNames(h, e, h.v(t, "l"), h.exitOf("main"))
	if !vals["b"] {
		t.Errorf("Values(l) = %v, want b", vals)
	}
	if vals["a"] {
		t.Errorf("Values(l) = %v: the store *px = &b kills x = &a", vals)
	}
}

// TestFigure4MaximalCompletion reproduces Figure 4: with
//
//	1a: b = c;  2a: x = &a;  3a: y = &b;  4a: *x = b;
//
// the sequence [4a] alone is a complete update sequence from b to a, but
// its maximal completion is [1a, 4a] — from c to a. The summary for a at
// main's exit must therefore have a source tuple rooted at c.
func TestFigure4MaximalCompletion(t *testing.T) {
	h := newHarness(t, `
		int *a, *b, *c;
		int **x, **y;
		void main() {
			b = c;
			x = &a;
			y = &b;
			*x = b;
		}
	`)
	e := h.engineFor(t)
	tuples := e.SummaryAt(h.exitOf("main"), h.v(t, "a"))
	foundC := false
	for _, tup := range tuples {
		if tup.Src.Kind == TVar && h.prog.VarName(tup.Src.V) == "c" {
			foundC = true
		}
		if tup.Src.Kind == TVar && h.prog.VarName(tup.Src.V) == "b" {
			t.Errorf("summary source b is not maximal — should extend through 1a: b = c; got %s", tup.Format(h.prog))
		}
	}
	if !foundC {
		t.Errorf("no summary tuple rooted at c; got %d tuples", len(tuples))
		for _, tup := range tuples {
			t.Logf("  %s", tup.Format(h.prog))
		}
	}
}

// figure5Src reconstructs Figure 5's program: partitions P1 = {x,u,w,z}
// and P2-level data; foo's only effect on P1 is x = w.
const figure5Src = `
	int **x, **u, **w, **z;
	int *d;
	int *c;
	int *a, *b;
	void foo() {
		*x = d;
		a = b;
		x = w;
	}
	void bar() {
		*x = d;
		a = b;
	}
	void main() {
		x = &c;
		w = u;
		foo();
		z = x;
		*z = b;
		bar();
	}
`

// TestFigure5FooSummary checks the paper's worked example: the local
// maximally complete update sequence for x at foo's exit is x = w,
// represented by the tuple (x, 3b, w, true).
func TestFigure5FooSummary(t *testing.T) {
	h := newHarness(t, figure5Src)
	e := h.engineFor(t)
	foo := h.prog.FuncByName["foo"]
	tuples := e.Summary(foo, h.v(t, "x"))
	if len(tuples) != 1 {
		t.Fatalf("Summary(foo, x) = %d tuples, want exactly 1; got %v", len(tuples), tuples)
	}
	tup := tuples[0]
	if tup.Src.Kind != TVar || h.prog.VarName(tup.Src.V) != "w" || !tup.Cond.IsTrue() {
		t.Errorf("Summary(foo, x) = %s, want (src=w, cond=true)", tup.Format(h.prog))
	}
}

// TestFigure5BarIrrelevant: none of bar's statements can modify aliases of
// P1 = {x,u,w,z}, so no summaries are needed for bar — the locality the
// paper's summarization exploits.
func TestFigure5BarIrrelevant(t *testing.T) {
	h := newHarness(t, figure5Src)
	e := h.engineFor(t)
	bar := h.prog.FuncByName["bar"]
	for _, name := range []string{"x", "u", "w", "z"} {
		if e.Modifies(bar, h.v(t, name)) {
			t.Errorf("bar must not modify %s", name)
		}
	}
	foo := h.prog.FuncByName["foo"]
	if !e.Modifies(foo, h.v(t, "x")) {
		t.Error("foo modifies x via x = w")
	}
}

// TestFigure5MainSummary checks the spliced tuple (z, 6a, u, true): the
// maximally complete update sequence for z at main's exit is
// w = u, [x = w], z = x.
func TestFigure5MainSummary(t *testing.T) {
	h := newHarness(t, figure5Src)
	e := h.engineFor(t)
	tuples := e.SummaryAt(h.exitOf("main"), h.v(t, "z"))
	if len(tuples) != 1 {
		t.Fatalf("SummaryAt(main exit, z) = %d tuples, want 1: %v", len(tuples), tuples)
	}
	tup := tuples[0]
	if tup.Src.Kind != TVar || h.prog.VarName(tup.Src.V) != "u" || !tup.Cond.IsTrue() {
		t.Errorf("got %s, want (src=u, cond=true)", tup.Format(h.prog))
	}
}

// TestConditionalTuples reproduces the paper's constrained-summary
// behaviour (the (a, 2c, d, x->b) / (a, 2c, b, x-/>b) pair): when a store
// through x may or may not hit the tracked pointer, both outcomes are
// summarized under complementary points-to constraints.
func TestConditionalTuples(t *testing.T) {
	h := newHarness(t, `
		int o1, o2;
		int *a, *b, *d;
		int **x;
		void main() {
			d = &o1;
			b = &o2;
			if (*) { x = &a; } else { x = &b; }
			*x = d;
			a = b;
		}
	`)
	e := h.engineFor(t)
	// After a = b, a's value is b's: either d's value (if x pointed at b
	// when *x = d ran) or &o2.
	vals := valueNames(h, e, h.v(t, "a"), h.exitOf("main"))
	if !vals["o1"] || !vals["o2"] {
		t.Errorf("Values(a) = %v, want o1 (via x->b) and o2 (via x-/>b)", vals)
	}
	// The summary tuples carry complementary constraints on x.
	tuples := e.SummaryAt(h.exitOf("main"), h.v(t, "a"))
	var sawPointsTo, sawNotPointsTo bool
	for _, tup := range tuples {
		for _, at := range tup.Cond.Atoms() {
			if h.prog.VarName(at.X) == "x" && h.prog.VarName(at.Y) == "b" {
				switch at.Op {
				case OpPointsTo:
					sawPointsTo = true
				case OpNotPointsTo:
					sawNotPointsTo = true
				}
			}
		}
	}
	if !sawPointsTo || !sawNotPointsTo {
		t.Errorf("expected complementary constraints on x->b; tuples:")
		for _, tup := range tuples {
			t.Logf("  %s", tup.Format(h.prog))
		}
	}
}

func TestInterproceduralValues(t *testing.T) {
	h := newHarness(t, `
		int a;
		int *g;
		void set() { g = &a; }
		void main() { set(); }
	`)
	e := h.engineFor(t)
	vals := valueNames(h, e, h.v(t, "g"), h.exitOf("main"))
	if !vals["a"] || len(vals) != 1 {
		t.Errorf("Values(g) = %v, want exactly {a}", vals)
	}
}

func TestCallKillsPrecisely(t *testing.T) {
	h := newHarness(t, `
		int a, b;
		int *g;
		void clobber() { g = &b; }
		void keep() { }
		void main() {
			g = &a;
			keep();
			clobber();
		}
	`)
	e := h.engineFor(t)
	vals := valueNames(h, e, h.v(t, "g"), h.exitOf("main"))
	if !vals["b"] {
		t.Errorf("Values(g) = %v, want b", vals)
	}
	if vals["a"] {
		t.Errorf("Values(g) = %v: clobber() always overwrites g", vals)
	}
}

func TestParameterBinding(t *testing.T) {
	h := newHarness(t, `
		int a1, a2;
		int *g;
		void set(int *v) { g = v; }
		void main() {
			set(&a1);
			set(&a2);
		}
	`)
	e := h.engineFor(t)
	// FSCI: both call sites contribute at set's exit.
	setExit := h.exitOf("set")
	vals := valueNames(h, e, h.v(t, "g"), setExit)
	if !vals["a1"] || !vals["a2"] {
		t.Errorf("FSCI Values(g at set exit) = %v, want a1 and a2", vals)
	}
	// At main's exit, the last call wins.
	mvals := valueNames(h, e, h.v(t, "g"), h.exitOf("main"))
	if !mvals["a2"] {
		t.Errorf("Values(g at main exit) = %v, want a2", mvals)
	}
	if mvals["a1"] {
		t.Errorf("Values(g at main exit) = %v: second set() kills a1", mvals)
	}
}

func TestContextSensitiveValues(t *testing.T) {
	h := newHarness(t, `
		int a1, a2;
		int *g;
		void set(int *v) { g = v; }
		void main() {
			set(&a1);
			set(&a2);
		}
	`)
	e := h.engineFor(t)
	sites := h.callSites("set")
	if len(sites) != 2 {
		t.Fatalf("found %d call sites, want 2", len(sites))
	}
	setExit := h.exitOf("set")
	for i, want := range []string{"a1", "a2"} {
		objs, precise, err := e.ValuesInContext(h.v(t, "g"), setExit, Context{sites[i]})
		if err != nil {
			t.Fatalf("ValuesInContext: %v", err)
		}
		if !precise {
			t.Errorf("context %d: expected precise result", i)
		}
		names := map[string]bool{}
		for _, o := range objs {
			names[h.prog.VarName(o)] = true
		}
		if !names[want] || len(names) != 1 {
			t.Errorf("context %d: Values = %v, want exactly {%s}", i, names, want)
		}
	}
	// Invalid context is rejected.
	if _, _, err := e.ValuesInContext(h.v(t, "g"), setExit, Context{}); err == nil {
		t.Error("empty context for a non-entry location should be rejected")
	}
}

func TestRecursionFixpoint(t *testing.T) {
	h := newHarness(t, `
		int a;
		int *g;
		void rec(int *v) {
			if (*) { rec(v); }
			g = v;
		}
		void main() { rec(&a); }
	`)
	e := h.engineFor(t)
	vals := valueNames(h, e, h.v(t, "g"), h.exitOf("main"))
	if !vals["a"] || len(vals) != 1 {
		t.Errorf("Values(g) = %v, want exactly {a} through recursion", vals)
	}
}

func TestMutualRecursion(t *testing.T) {
	h := newHarness(t, `
		int a, b;
		int *g;
		void ping(int *v) { if (*) { pong(&b); } g = v; }
		void pong(int *v) { if (*) { ping(v); } }
		void main() { ping(&a); }
	`)
	e := h.engineFor(t)
	vals := valueNames(h, e, h.v(t, "g"), h.exitOf("main"))
	if !vals["a"] || !vals["b"] {
		t.Errorf("Values(g) = %v, want a and b through mutual recursion", vals)
	}
}

func TestMustAlias(t *testing.T) {
	h := newHarness(t, `
		lock m, m2;
		lock *l1, *l2, *l3;
		void main() {
			l1 = &m;
			l2 = l1;
			l3 = &m;
			if (*) { l3 = &m2; }
		}
	`)
	e := h.engineFor(t)
	exit := h.exitOf("main")
	if !e.MustAlias(h.v(t, "l1"), h.v(t, "l2"), exit) {
		t.Error("l1 and l2 must alias (straight-line copy)")
	}
	if e.MustAlias(h.v(t, "l1"), h.v(t, "l3"), exit) {
		t.Error("l1/l3 only may-alias (branch)")
	}
	if !e.MayAlias(h.v(t, "l1"), h.v(t, "l3"), exit) {
		t.Error("l1 and l3 may alias")
	}
}

func TestHeapAndFree(t *testing.T) {
	h := newHarness(t, `
		void main() {
			int *p, *q;
			p = malloc;
			q = p;
			free(p);
		}
	`)
	e := h.engineFor(t)
	exit := h.exitOf("main")
	pv, _ := e.Values(h.v(t, "main.p"), exit)
	if len(pv) != 0 {
		t.Errorf("after free, Values(p) = %v, want empty", pv)
	}
	qv := valueNames(h, e, h.v(t, "main.q"), exit)
	if len(qv) != 1 {
		t.Errorf("Values(q) = %v, want the allocation site", qv)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	h := newHarness(t, `
		int a, b;
		int *x, *y;
		void f1() { x = y; }
		void main() {
			x = &a;
			y = &b;
			while (*) { f1(); y = x; }
		}
	`)
	whole := cluster.BuildWhole(h.prog, h.sa)
	e := NewEngine(h.prog, h.cg, h.sa, whole, WithBudget(3))
	if err := e.Run(); err != ErrBudget {
		t.Errorf("Run with tiny budget = %v, want ErrBudget", err)
	}
	if !e.Exhausted() {
		t.Error("Exhausted should report true")
	}
}

func TestRunCompletes(t *testing.T) {
	h := newHarness(t, figure5Src)
	e := h.engineFor(t)
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if e.TuplesProcessed == 0 {
		t.Error("Run should process tuples")
	}
	if len(e.SummaryFuncs()) == 0 {
		t.Error("Run should identify summary functions")
	}
}

func TestFunctionPointersViaDevirtualization(t *testing.T) {
	h := newHarness(t, `
		int a, b;
		int *g;
		void *fp;
		void setA() { g = &a; }
		void setB() { g = &b; }
		void main() {
			if (*) { fp = &setA; } else { fp = &setB; }
			(*fp)();
		}
	`)
	e := h.engineFor(t)
	vals := valueNames(h, e, h.v(t, "g"), h.exitOf("main"))
	if !vals["a"] || !vals["b"] {
		t.Errorf("Values(g) = %v, want a and b via devirtualized call", vals)
	}
}

func TestClusteredEqualsMonolithic(t *testing.T) {
	src := `
		int a, b, c;
		int *x, *y, *p;
		int **px;
		void swap() { int *t; t = x; x = y; y = t; }
		void main() {
			x = &a;
			y = &b;
			p = &c;
			px = &x;
			swap();
			*px = p;
		}
	`
	h := newHarness(t, src)
	whole := cluster.BuildWhole(h.prog, h.sa)
	mono := NewEngine(h.prog, h.cg, h.sa, whole, WithFallback(h.aa))
	covers := cluster.BuildSteensgaard(h.prog, h.sa)
	exit := h.exitOf("main")
	// For every pointer, union of per-cluster aliases == monolithic
	// aliases (Theorem 6).
	for _, name := range []string{"x", "y", "p"} {
		pv := h.v(t, name)
		monoAliases := map[ir.VarID]bool{}
		for _, q := range mono.Aliases(pv, exit) {
			if h.prog.VarName(q)[0] != 'm' { // skip temps (main.$tN)
				monoAliases[q] = true
			}
		}
		clustered := map[ir.VarID]bool{}
		for _, c := range covers {
			if !c.HasPointer(pv) {
				continue
			}
			eng := NewEngine(h.prog, h.cg, h.sa, c, WithFallback(h.aa))
			for _, q := range eng.Aliases(pv, exit) {
				if h.prog.VarName(q)[0] != 'm' {
					clustered[q] = true
				}
			}
		}
		for q := range monoAliases {
			if !clustered[q] {
				t.Errorf("%s: monolithic alias %s missing from clustered result", name, h.prog.VarName(q))
			}
		}
		for q := range clustered {
			if !monoAliases[q] {
				t.Errorf("%s: clustered result has extra alias %s", name, h.prog.VarName(q))
			}
		}
	}
}

// TestPathSensitivityEqRefuted: the then-arm of `if (x == y)` is
// infeasible when x and y provably never share a target, so values flowing
// through it are weeded out (Section 3's path-sensitivity option).
func TestPathSensitivityEqRefuted(t *testing.T) {
	h := newHarness(t, `
		int a, b, c;
		int *x, *y, *w;
		void main() {
			x = &a;
			y = &b;
			w = &c;
			if (x == y) { w = x; }
		}
	`)
	e := h.engineFor(t)
	vals := valueNames(h, e, h.v(t, "w"), h.exitOf("main"))
	if vals["a"] {
		t.Errorf("Values(w) = %v: the x==y arm is infeasible (pts disjoint)", vals)
	}
	if !vals["c"] {
		t.Errorf("Values(w) = %v, want c from the fall-through path", vals)
	}
}

// TestPathSensitivityNeqRefuted: the then-arm of `if (x != y)` is
// infeasible when both must point to the same single object.
func TestPathSensitivityNeqRefuted(t *testing.T) {
	h := newHarness(t, `
		int a, c;
		int *x, *y, *w;
		void main() {
			x = &a;
			y = x;
			w = &c;
			if (x != y) { w = x; }
		}
	`)
	e := h.engineFor(t)
	vals := valueNames(h, e, h.v(t, "w"), h.exitOf("main"))
	if vals["a"] {
		t.Errorf("Values(w) = %v: the x!=y arm is infeasible (must-equal)", vals)
	}
	if !vals["c"] {
		t.Errorf("Values(w) = %v, want c", vals)
	}
}

// TestPathSensitivityFeasibleArmKept: when the test is genuinely
// uncertain, both arms contribute.
func TestPathSensitivityFeasibleArmKept(t *testing.T) {
	h := newHarness(t, `
		int a, b, c;
		int *x, *y, *w;
		void main() {
			x = &a;
			if (*) { y = &a; } else { y = &b; }
			w = &c;
			if (x == y) { w = x; }
		}
	`)
	e := h.engineFor(t)
	vals := valueNames(h, e, h.v(t, "w"), h.exitOf("main"))
	if !vals["a"] || !vals["c"] {
		t.Errorf("Values(w) = %v, want both a (feasible x==y arm) and c", vals)
	}
}

// TestAndersenClusterEngine runs the engine on a genuine Andersen cluster
// (not the whole program) and checks its answers match the monolithic
// engine for the cluster's pointers (Theorem 7 in action).
func TestAndersenClusterEngine(t *testing.T) {
	src := `
		int a0, a1, a2;
		int *p0, *p1, *p2, *q;
		void main() {
			p0 = &a0; p1 = &a1; p2 = &a2;
			q = p0; q = p1; q = p2;
		}
	`
	h := newHarness(t, src)
	covers := cluster.BuildAndersen(h.prog, h.sa, 2)
	mono := h.engineFor(t)
	exit := h.exitOf("main")
	ran := 0
	for _, c := range covers {
		if c.Kind != cluster.KindAndersen {
			continue
		}
		ran++
		eng := NewEngine(h.prog, h.cg, h.sa, c, WithFallback(h.aa))
		for _, p := range c.Pointers {
			for _, q := range c.Pointers {
				if p == q {
					continue
				}
				got := eng.MayAlias(p, q, exit)
				want := mono.MayAlias(p, q, exit)
				if got != want {
					t.Errorf("cluster %v: MayAlias(%s,%s) = %v, monolithic %v",
						c, h.prog.VarName(p), h.prog.VarName(q), got, want)
				}
			}
		}
	}
	if ran == 0 {
		t.Fatal("no Andersen clusters were exercised")
	}
}

// TestMaxCondWidening: with a tiny constraint budget the analysis still
// terminates and stays sound (conditions widen to true).
func TestMaxCondWidening(t *testing.T) {
	src := `
		int a, b;
		int *x, *y;
		int **p1, **p2, **p3;
		void main() {
			x = &a;
			y = &b;
			p1 = &x; p2 = &x; p3 = &x;
			if (*) { p1 = &y; }
			if (*) { p2 = &y; }
			if (*) { p3 = &y; }
			*p1 = x;
			*p2 = y;
			*p3 = x;
		}
	`
	h := newHarness(t, src)
	wide := h.engineFor(t, WithMaxCond(1))
	norm := h.engineFor(t, WithMaxCond(8))
	exit := h.exitOf("main")
	// Widening may only ADD possible values, never remove them.
	for _, name := range []string{"x", "y"} {
		vv := h.v(t, name)
		normObjs, _ := norm.Values(vv, exit)
		wideObjs, okWide := wide.Values(vv, exit)
		if !okWide {
			continue
		}
		wideSet := map[ir.VarID]bool{}
		for _, o := range wideObjs {
			wideSet[o] = true
		}
		for _, o := range normObjs {
			if !wideSet[o] {
				t.Errorf("widened engine lost value %s of %s", h.prog.VarName(o), name)
			}
		}
	}
}

func TestValidateContextErrors(t *testing.T) {
	h := newHarness(t, `
		int *g;
		void callee() { g = null; }
		void main() { callee(); }
	`)
	e := h.engineFor(t)
	calleeExit := h.exitOf("callee")
	// Wrong-function location for an empty context.
	if err := e.ValidateContext(Context{}, calleeExit); err == nil {
		t.Error("empty context must end in the entry function")
	}
	// A non-call location in the context.
	notCall := h.prog.Func(h.prog.Entry).Entry
	if err := e.ValidateContext(Context{notCall}, calleeExit); err == nil {
		t.Error("non-call context element should be rejected")
	}
	// A call in the wrong function.
	sites := h.callSites("callee")
	if len(sites) != 1 {
		t.Fatal("expected one call site")
	}
	if err := e.ValidateContext(Context{sites[0], sites[0]}, calleeExit); err == nil {
		t.Error("context element in the wrong function should be rejected")
	}
	// Valid context passes.
	if err := e.ValidateContext(Context{sites[0]}, calleeExit); err != nil {
		t.Errorf("valid context rejected: %v", err)
	}
}

func TestSummaryFuncsAndModifies(t *testing.T) {
	h := newHarness(t, figure5Src)
	e := h.engineFor(t)
	names := map[string]bool{}
	for _, f := range e.SummaryFuncs() {
		names[h.prog.Func(f).Name] = true
	}
	// Every function here touches some pointer of the whole-program
	// cluster; the set must at least contain foo and main.
	if !names["foo"] || !names["main"] {
		t.Errorf("SummaryFuncs = %v, want foo and main", names)
	}
}

func TestValueStateFlags(t *testing.T) {
	h := newHarness(t, `
		int a;
		int *x;
		void main() {
			if (*) { x = &a; } else { x = null; }
		}
	`)
	e := h.engineFor(t)
	st := e.ValueState(h.v(t, "x"), h.exitOf("main"))
	if !st.Null {
		t.Error("ValueState should flag the null path")
	}
	if len(st.Objs) != 1 || h.prog.VarName(st.Objs[0]) != "a" {
		t.Errorf("ValueState objs = %v", st.Objs)
	}
	if st.Unknown {
		t.Error("simple program should be precise")
	}
}
