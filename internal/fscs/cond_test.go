package fscs

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"bootstrap/internal/ir"
)

func atomGen(rng *rand.Rand) Atom {
	return Atom{
		Loc: ir.Loc(rng.Intn(5)),
		Op:  AtomOp(rng.Intn(4)),
		X:   ir.VarID(rng.Intn(4)),
		Y:   ir.VarID(rng.Intn(4)),
	}
}

func TestCondTrue(t *testing.T) {
	c := TrueCond()
	if !c.IsTrue() || c.Key() != "" || len(c.Atoms()) != 0 {
		t.Error("TrueCond should be the empty conjunction")
	}
}

func TestCondWithDedupes(t *testing.T) {
	a := Atom{Loc: 1, Op: OpPointsTo, X: 2, Y: 3}
	c := TrueCond().With(a, 8).With(a, 8)
	if len(c.Atoms()) != 1 {
		t.Errorf("duplicate atom not deduped: %d atoms", len(c.Atoms()))
	}
}

// TestCondKeyCanonical: the key identifies the atom set regardless of
// insertion order.
func TestCondKeyCanonical(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		atoms := make([]Atom, 1+rng.Intn(5))
		for i := range atoms {
			atoms[i] = atomGen(rng)
		}
		c1 := TrueCond()
		for _, a := range atoms {
			c1 = c1.With(a, 100)
		}
		// Insert in reverse order.
		c2 := TrueCond()
		for i := len(atoms) - 1; i >= 0; i-- {
			c2 = c2.With(atoms[i], 100)
		}
		return c1.Key() == c2.Key()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestCondWidening: exceeding the bound widens to true (a sound weakening,
// never an error).
func TestCondWidening(t *testing.T) {
	c := TrueCond()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		c = c.With(atomGen(rng), 3)
		if len(c.Atoms()) > 3 {
			t.Fatalf("width bound violated: %d atoms", len(c.Atoms()))
		}
	}
}

func TestCondAnd(t *testing.T) {
	a1 := Atom{Loc: 1, Op: OpPointsTo, X: 1, Y: 2}
	a2 := Atom{Loc: 2, Op: OpNotPointsTo, X: 3, Y: 1}
	c1 := TrueCond().With(a1, 8)
	c2 := TrueCond().With(a2, 8).With(a1, 8)
	and := c1.And(c2, 8)
	if len(and.Atoms()) != 2 {
		t.Errorf("And produced %d atoms, want 2", len(and.Atoms()))
	}
	// And with true is identity.
	if got := c1.And(TrueCond(), 8); got.Key() != c1.Key() {
		t.Error("c ∧ true != c")
	}
}

func TestCondFormat(t *testing.T) {
	p := ir.NewProgram()
	x := p.AddVar("x", ir.KindGlobal, ir.NoFunc)
	y := p.AddVar("y", ir.KindGlobal, ir.NoFunc)
	c := TrueCond().
		With(Atom{Loc: 3, Op: OpPointsTo, X: x, Y: y}, 8).
		With(Atom{Loc: 4, Op: OpNotPointsTo, X: x, Y: y}, 8)
	s := c.Format(p)
	if !strings.Contains(s, "x -> y") || !strings.Contains(s, "x -/> y") {
		t.Errorf("Format = %q", s)
	}
	if got := TrueCond().Format(p); got != "true" {
		t.Errorf("true Format = %q", got)
	}
}

func TestTokenFormat(t *testing.T) {
	p := ir.NewProgram()
	x := p.AddVar("x", ir.KindGlobal, ir.NoFunc)
	cases := []struct {
		tok  Token
		want string
	}{
		{VarTok(x), "x"},
		{AddrTok(x), "&x"},
		{NullTok(), "null"},
		{UnknownTok(), "?"},
	}
	for _, tc := range cases {
		if got := tc.tok.Format(p); got != tc.want {
			t.Errorf("Format(%v) = %q, want %q", tc.tok, got, tc.want)
		}
	}
}

func TestSumTupleKeyDistinct(t *testing.T) {
	t1 := SumTuple{Src: VarTok(1), Cond: TrueCond()}
	t2 := SumTuple{Src: VarTok(2), Cond: TrueCond()}
	t3 := SumTuple{Src: AddrTok(1), Cond: TrueCond()}
	if t1.key() == t2.key() || t1.key() == t3.key() {
		t.Error("distinct tuples must have distinct keys")
	}
	c := TrueCond().With(Atom{Loc: 1, Op: OpPointsTo, X: 1, Y: 2}, 8)
	t4 := SumTuple{Src: VarTok(1), Cond: c}
	if t1.key() == t4.key() {
		t.Error("conditions must distinguish tuple keys")
	}
}
