package fscs

import (
	"bytes"
	"encoding/binary"
	"errors"
	"sort"

	"bootstrap/internal/cache"
	"bootstrap/internal/callgraph"
	"bootstrap/internal/cluster"
	"bootstrap/internal/intern"
	"bootstrap/internal/ir"
	"bootstrap/internal/steens"
)

// This file serializes a solved engine's state — summary tables, FSCI
// value sets and work counters — in the canonical coordinate system of a
// cache.Canon, so a later run of an equivalent cluster (possibly under
// renumbered VarIDs/Locs) can import it and skip the solve. Theorem 6
// makes the reuse sound: the results depend only on what the fingerprint
// encodes.
//
// The payload is deterministic (everything is emitted in canonically
// sorted order), so identical runs produce identical bytes.

// errCorrupt reports an undecodable payload. Callers treat it as a cache
// miss, never a failure.
var errCorrupt = errors.New("fscs: corrupt cached engine state")

// ExportState serializes the engine's computed state against cn's
// canonical renaming. It reports ok=false when some component of the
// required state does not map — such a state would not round-trip, so
// the cluster is simply not cached. Optional memo entries (FSCI value
// sets) are skipped individually instead: a warm engine recomputes them
// to identical values on demand.
func (e *Engine) ExportState(cn *cache.Canon) ([]byte, bool) {
	type skRec struct {
		fl, pl int32
		key    sumKey
	}
	keys := make([]skRec, 0, len(e.done))
	for k := range e.done {
		fl, ok := cn.MapFunc(k.f)
		if !ok {
			return nil, false
		}
		pl, ok := cn.MapVar(k.ptr)
		if !ok {
			return nil, false
		}
		keys = append(keys, skRec{fl: fl, pl: pl, key: k})
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].fl != keys[j].fl {
			return keys[i].fl < keys[j].fl
		}
		return keys[i].pl < keys[j].pl
	})

	buf := make([]byte, 0, 1024)
	buf = binary.AppendUvarint(buf, uint64(len(keys)))
	for _, kr := range keys {
		buf = binary.AppendUvarint(buf, uint64(kr.fl))
		buf = binary.AppendUvarint(buf, uint64(kr.pl))
		ts := e.sums[kr.key]
		encs := make([][]byte, 0, len(ts))
		for t := range ts {
			enc, ok := e.encodeTuple(cn, t)
			if !ok {
				return nil, false
			}
			encs = append(encs, enc)
		}
		sort.Slice(encs, func(i, j int) bool { return bytes.Compare(encs[i], encs[j]) < 0 })
		buf = binary.AppendUvarint(buf, uint64(len(encs)))
		for _, enc := range encs {
			buf = append(buf, enc...)
		}
	}

	// FSCI value sets: optional memo entries keyed by mapped (var, loc).
	// Entries whose key does not map (query-time walks can memoize
	// locations outside F*) are skipped — a warm engine recomputes them
	// on demand to identical fixpoints. An unmappable member *inside* a
	// kept set would silently change the set, so that aborts the export.
	type vrRec struct {
		vl  int32
		ll  uint64
		raw uint64
	}
	var vrs []vrRec
	for raw := range e.ptsVR {
		v, loc := intern.Unpack2x32(raw)
		vl, ok := cn.MapVar(ir.VarID(v))
		if !ok {
			continue
		}
		ll, ok := cn.MapLoc(ir.Loc(loc))
		if !ok {
			continue
		}
		vrs = append(vrs, vrRec{vl: vl, ll: ll, raw: raw})
	}
	sort.Slice(vrs, func(i, j int) bool {
		if vrs[i].vl != vrs[j].vl {
			return vrs[i].vl < vrs[j].vl
		}
		return vrs[i].ll < vrs[j].ll
	})
	buf = binary.AppendUvarint(buf, uint64(len(vrs)))
	for _, rec := range vrs {
		vr := e.ptsVR[rec.raw]
		buf = binary.AppendUvarint(buf, uint64(rec.vl))
		buf = binary.AppendUvarint(buf, rec.ll)
		var flags byte
		if vr.null {
			flags |= 1
		}
		if vr.uninit {
			flags |= 2
		}
		if vr.unknown {
			flags |= 4
		}
		buf = append(buf, flags)
		objs := make([]int32, 0, len(vr.objs))
		for o := range vr.objs {
			ol, ok := cn.MapVar(o)
			if !ok {
				return nil, false
			}
			objs = append(objs, ol)
		}
		sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
		buf = binary.AppendUvarint(buf, uint64(len(objs)))
		for _, ol := range objs {
			buf = binary.AppendUvarint(buf, uint64(ol))
		}
	}

	buf = binary.AppendVarint(buf, e.TuplesProcessed)
	buf = binary.AppendVarint(buf, e.spent)
	return buf, true
}

// encodeTuple canonically encodes one summary tuple: token kind (+
// mapped variable), then the condition's atoms sorted by their mapped
// encoding.
func (e *Engine) encodeTuple(cn *cache.Canon, t tup) ([]byte, bool) {
	b := []byte{byte(t.tok.Kind)}
	switch t.tok.Kind {
	case TVar, TAddr:
		vl, ok := cn.MapVar(t.tok.V)
		if !ok {
			return nil, false
		}
		b = binary.AppendUvarint(b, uint64(vl))
	}
	ids := e.tab.atomIDsOf(t.cond)
	type mAtom struct {
		loc  uint64
		op   byte
		x, y int32
	}
	atoms := make([]mAtom, 0, len(ids))
	for _, aid := range ids {
		a := e.tab.atoms.Value(aid)
		ll, ok := cn.MapLoc(a.Loc)
		if !ok {
			return nil, false
		}
		xl, ok := cn.MapVar(a.X)
		if !ok {
			return nil, false
		}
		yl, ok := cn.MapVar(a.Y)
		if !ok {
			return nil, false
		}
		atoms = append(atoms, mAtom{loc: ll, op: byte(a.Op), x: xl, y: yl})
	}
	sort.Slice(atoms, func(i, j int) bool {
		ai, aj := atoms[i], atoms[j]
		if ai.loc != aj.loc {
			return ai.loc < aj.loc
		}
		if ai.op != aj.op {
			return ai.op < aj.op
		}
		if ai.x != aj.x {
			return ai.x < aj.x
		}
		return ai.y < aj.y
	})
	b = binary.AppendUvarint(b, uint64(len(atoms)))
	for _, a := range atoms {
		b = binary.AppendUvarint(b, a.loc)
		b = append(b, a.op)
		b = binary.AppendUvarint(b, uint64(a.x))
		b = binary.AppendUvarint(b, uint64(a.y))
	}
	return b, true
}

// stateReader decodes a payload with sticky error handling: after the
// first malformed read every subsequent read reports zero and the
// decoder bails out once at the end.
type stateReader struct {
	b   []byte
	off int
	err error
}

func (r *stateReader) fail() {
	if r.err == nil {
		r.err = errCorrupt
	}
}

func (r *stateReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *stateReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *stateReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail()
		return 0
	}
	c := r.b[r.off]
	r.off++
	return c
}

// ImportEngine builds a warm engine for cl from a payload previously
// produced by ExportState on an equivalent cluster, translating every
// canonical coordinate through cn into this program's IDs. The opts
// must carry the same precision knobs (fallback, budget, max-cond,
// interning) the caller would pass to a fresh engine; do not attach a
// context or hook — importing does no analysis work.
//
// Any decoding problem returns an error; callers should treat it as a
// cache miss (see cache.Cache.Corrupt) and run the engine fresh.
func ImportEngine(p *ir.Program, cg *callgraph.Graph, sa *steens.Analysis, cl *cluster.Cluster,
	cn *cache.Canon, data []byte, opts ...Option) (*Engine, error) {
	e := NewEngine(p, cg, sa, cl, opts...)
	r := &stateReader{b: data}

	nKeys := r.uvarint()
	for i := uint64(0); i < nKeys && r.err == nil; i++ {
		f, okf := cn.UnmapFunc(int32(r.uvarint()))
		ptr, okp := cn.UnmapVar(int32(r.uvarint()))
		if !okf || !okp {
			r.fail()
			break
		}
		k := sumKey{f: f, ptr: ptr}
		nTuples := r.uvarint()
		ts := tupSet{}
		for j := uint64(0); j < nTuples && r.err == nil; j++ {
			t, ok := e.decodeTuple(cn, r)
			if !ok {
				r.fail()
				break
			}
			ts.add(t)
		}
		e.sums[k] = ts
		e.done[k] = true
	}

	nVR := r.uvarint()
	for i := uint64(0); i < nVR && r.err == nil; i++ {
		v, okv := cn.UnmapVar(int32(r.uvarint()))
		loc, okl := cn.UnmapLoc(r.uvarint())
		if !okv || !okl {
			r.fail()
			break
		}
		flags := r.byte()
		vr := &valueResult{
			objs:    map[ir.VarID]bool{},
			null:    flags&1 != 0,
			uninit:  flags&2 != 0,
			unknown: flags&4 != 0,
		}
		nObjs := r.uvarint()
		for j := uint64(0); j < nObjs && r.err == nil; j++ {
			o, ok := cn.UnmapVar(int32(r.uvarint()))
			if !ok {
				r.fail()
				break
			}
			vr.objs[o] = true
		}
		e.ptsVR[intern.Pack2x32(int32(v), int32(loc))] = vr
	}

	e.TuplesProcessed = r.varint()
	e.spent = r.varint()
	if r.err == nil && r.off != len(r.b) {
		r.fail() // trailing garbage
	}
	if r.err != nil {
		return nil, r.err
	}
	e.SummariesBuilt = len(e.done)
	return e, nil
}

// decodeTuple is encodeTuple's inverse: it reconstructs the token and
// re-interns the condition in this engine's tables.
func (e *Engine) decodeTuple(cn *cache.Canon, r *stateReader) (tup, bool) {
	kind := TokKind(r.byte())
	tok := Token{Kind: kind, V: ir.NoVar}
	switch kind {
	case TVar, TAddr:
		v, ok := cn.UnmapVar(int32(r.uvarint()))
		if !ok {
			return tup{}, false
		}
		tok.V = v
	case TNull, TUnknown:
	default:
		return tup{}, false
	}
	nAtoms := r.uvarint()
	cond := TrueCondID
	if nAtoms > 0 {
		ids := make([]AtomID, 0, nAtoms)
		for i := uint64(0); i < nAtoms; i++ {
			loc, okl := cn.UnmapLoc(r.uvarint())
			op := AtomOp(r.byte())
			x, okx := cn.UnmapVar(int32(r.uvarint()))
			y, oky := cn.UnmapVar(int32(r.uvarint()))
			if !okl || !okx || !oky || op > OpDiffTarget {
				return tup{}, false
			}
			ids = append(ids, e.tab.atomID(Atom{Loc: loc, Op: op, X: x, Y: y}))
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		// Deduplicate defensively (atoms of a valid condition are
		// distinct, but the payload is external input).
		dst := ids[:1]
		for _, id := range ids[1:] {
			if id != dst[len(dst)-1] {
				dst = append(dst, id)
			}
		}
		cond = e.tab.conds.ID(dst)
	}
	if r.err != nil {
		return tup{}, false
	}
	return tup{tok: tok, cond: cond}, true
}
