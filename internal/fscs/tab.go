package fscs

import (
	"sort"

	"bootstrap/internal/intern"
)

// AtomID is a dense interned identity for one constraint Atom within one
// engine's tables.
type AtomID = intern.ID

// CondID is a dense interned identity for one condition (a set of atoms).
// TrueCondID (0) is always the empty conjunction.
type CondID = intern.ID

// TrueCondID is the interned empty (always satisfiable) condition.
const TrueCondID CondID = 0

// condTab hash-conses conditions: every distinct atom set gets one dense
// CondID, stored as its ascending AtomID sequence, so condition equality is
// integer equality and tuple/worklist keys need no heap-allocated strings.
// With memoization on (the default), the With and And operators are O(1)
// map probes after first computation.
//
// A condTab belongs to one engine and is not safe for concurrent use.
type condTab struct {
	atoms *intern.Table[Atom]
	conds *intern.SeqTable

	withMemo intern.PairMemo // (cond, atom) -> cond
	andMemo  intern.PairMemo // (cond, cond) -> cond
	memo     bool

	maxAtoms int

	// Memo traffic, flushed into the metrics registry when Run ends.
	// Plain (non-atomic) ints: a condTab belongs to one engine.
	memoHits   int64
	memoMisses int64
}

func newCondTab(maxAtoms int, memo bool) *condTab {
	return &condTab{
		atoms:    intern.NewTable[Atom](64),
		conds:    intern.NewSeqTable(64),
		memo:     memo,
		maxAtoms: maxAtoms,
	}
}

// atomID interns one atom.
func (t *condTab) atomID(a Atom) AtomID { return t.atoms.ID(a) }

// atomIDsOf returns c's ascending AtomID sequence (not to be modified).
func (t *condTab) atomIDsOf(c CondID) []AtomID { return t.conds.Value(c) }

// numAtoms returns the number of conjuncts in c.
func (t *condTab) numAtoms(c CondID) int { return len(t.conds.Value(c)) }

// with returns c ∧ a under the width bound: the condition is widened to
// true (TrueCondID) when the conjunction would exceed maxAtoms — the same
// sound weakening as Cond.With.
func (t *condTab) with(c CondID, a Atom) CondID {
	aid := t.atomID(a)
	if t.memo {
		if r, ok := t.withMemo.Get(c, aid); ok {
			t.memoHits++
			return r
		}
	}
	t.memoMisses++
	r := t.withSlow(c, aid)
	if t.memo {
		t.withMemo.Put(c, aid, r)
	}
	return r
}

func (t *condTab) withSlow(c CondID, aid AtomID) CondID {
	seq := t.conds.Value(c)
	ins, added := intern.InsertSorted(seq, aid)
	if !added {
		return c
	}
	if len(ins) > t.maxAtoms {
		return TrueCondID
	}
	return t.conds.ID(ins)
}

// and returns c ∧ d under the width bound, widening to true when the
// deduplicated union exceeds maxAtoms — matching Cond.And exactly.
func (t *condTab) and(c, d CondID) CondID {
	if c == TrueCondID {
		return d
	}
	if d == TrueCondID || c == d {
		return c
	}
	if t.memo {
		if r, ok := t.andMemo.Get(c, d); ok {
			t.memoHits++
			return r
		}
	}
	t.memoMisses++
	merged := intern.MergeSorted(t.conds.Value(c), t.conds.Value(d))
	var r CondID
	if len(merged) > t.maxAtoms {
		r = TrueCondID
	} else {
		r = t.conds.ID(merged)
	}
	if t.memo {
		t.andMemo.Put(c, d, r)
		t.andMemo.Put(d, c, r) // conjunction of atom sets is commutative
	}
	return r
}

// cond materializes the public structural Cond for an interned condition —
// used only at API boundaries (Summary lists, tuple formatting), never on
// the worklist hot path.
func (t *condTab) cond(c CondID) Cond {
	ids := t.conds.Value(c)
	if len(ids) == 0 {
		return TrueCond()
	}
	atoms := make([]Atom, len(ids))
	for i, id := range ids {
		atoms[i] = t.atoms.Value(id)
	}
	// Reuse the structural canonicalization (sort by atom key) so the
	// materialized Cond is bit-for-bit what the legacy path produced.
	sort.Slice(atoms, func(i, j int) bool { return atoms[i].key() < atoms[j].key() })
	out := TrueCond()
	for _, a := range atoms {
		out = out.With(a, len(atoms))
	}
	return out
}

// intern assigns c's CondID: atoms are interned individually and the
// ascending ID set identifies the condition, so the same atom set built in
// any order yields the same CondID.
func (t *condTab) intern(c Cond) CondID {
	atoms := c.Atoms()
	if len(atoms) == 0 {
		return TrueCondID
	}
	ids := make([]AtomID, len(atoms))
	for i, a := range atoms {
		ids[i] = t.atomID(a)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return t.conds.ID(ids)
}

// tup is the interned internal form of a summary tuple: a comparable
// struct, so tuple sets are map[tup]struct{} with no string keys.
type tup struct {
	tok  Token
	cond CondID
}

// tupSet is a set of interned summary tuples.
type tupSet map[tup]struct{}

// add inserts t and reports whether it was new.
func (s tupSet) add(t tup) bool {
	if _, ok := s[t]; ok {
		return false
	}
	s[t] = struct{}{}
	return true
}
