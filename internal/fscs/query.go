package fscs

import (
	"fmt"
	"sort"

	"bootstrap/internal/intern"
	"bootstrap/internal/ir"
)

// valueResult aggregates the resolved sources of a pointer at a location.
type valueResult struct {
	objs    map[ir.VarID]bool
	null    bool // some path leaves the pointer null
	uninit  bool // some path reaches the program entry unassigned
	unknown bool // some path lost precision
}

func (vr *valueResult) sortedObjs() []ir.VarID {
	out := make([]ir.VarID, 0, len(vr.objs))
	for o := range vr.objs {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// collectValues computes the flow-sensitive context-insensitive value set
// of ptr at the given start (the paper's Algorithm 3 "computation of A"):
// a backward walk inside the function, with TVar sources at the entry
// propagated into every caller at every call site, context-insensitively,
// until only terminated sources remain.
func (e *Engine) collectValues(f ir.FuncID, ptr ir.VarID, startLocs []ir.Loc) *valueResult {
	vr := &valueResult{objs: map[ir.VarID]bool{}}
	type frame struct {
		f     ir.FuncID
		v     ir.VarID
		start []ir.Loc
	}
	// A frame's start locations are determined by its call site (the
	// initial frame is the only one with caller-supplied starts), so
	// (f, v, callsite) identifies a frame; NoLoc marks the initial frame.
	type frameKey struct {
		f  ir.FuncID
		v  ir.VarID
		cs ir.Loc
	}
	seen := map[frameKey]bool{}
	queue := []frame{{f: f, v: ptr, start: startLocs}}
	seen[frameKey{f: f, v: ptr, cs: ir.NoLoc}] = true

	for len(queue) > 0 {
		fr := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		tuples := e.walkBack(fr.f, VarTok(fr.v), fr.start, e.summaryLookup)
		for t := range tuples {
			if !e.satisfiable(t.cond) {
				continue
			}
			switch t.tok.Kind {
			case TAddr:
				vr.objs[t.tok.V] = true
			case TNull:
				vr.null = true
			case TUnknown:
				vr.unknown = true
			case TVar:
				// Source is the value of a variable at fr.f's entry.
				if fr.f == e.prog.Entry {
					vr.uninit = true
					continue
				}
				callers := e.cg.Callers(fr.f)
				if len(callers) == 0 {
					vr.uninit = true // unreachable function: treat as entry
					continue
				}
				for _, g := range callers {
					for _, cs := range e.cg.CallSitesIn(g, fr.f) {
						k := frameKey{f: g, v: t.tok.V, cs: cs}
						if !seen[k] {
							seen[k] = true
							queue = append(queue, frame{f: g, v: t.tok.V, start: e.prog.Node(cs).Preds})
						}
					}
				}
			}
		}
		if e.over {
			vr.unknown = true
			return vr
		}
	}
	return vr
}

// satisfiable checks a tuple's points-to constraints against the FSCI
// points-to sets, as Section 3 prescribes ("the satisfiability of cond can
// be checked at the time of computing the frontier"). Unresolvable atoms
// are assumed satisfiable, which is sound for may-aliasing. The true
// condition (no atoms) short-circuits without touching the tables.
func (e *Engine) satisfiable(c CondID) bool {
	if c == TrueCondID {
		return true
	}
	for _, aid := range e.tab.atomIDsOf(c) {
		a := e.tab.atoms.Value(aid)
		switch a.Op {
		case OpPointsTo:
			pt, known := e.PointsToAt(a.X, a.Loc)
			if !known {
				continue
			}
			found := false
			for _, o := range pt {
				if o == a.Y {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		case OpSameTarget:
			px, okx := e.PointsToAt(a.X, a.Loc)
			py, oky := e.PointsToAt(a.Y, a.Loc)
			if okx && oky && len(px) > 0 && len(py) > 0 && !intersects(px, py) {
				return false
			}
		case OpNotPointsTo:
			// Refutable only with must-information: when X definitely
			// points to Y on every path, X ↛ Y is unsatisfiable.
			if e.mustPointTo(a.X, a.Loc, a.Y) {
				return false
			}
		case OpDiffTarget:
			// Refutable only when both sides must-point-to the same
			// single object.
			px, okx := e.PointsToAt(a.X, a.Loc)
			if okx && len(px) == 1 && e.mustPointTo(a.X, a.Loc, px[0]) && e.mustPointTo(a.Y, a.Loc, px[0]) {
				return false
			}
		}
	}
	return true
}

func intersects(a, b []ir.VarID) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// valuesAt returns the cached flow-sensitive context-insensitive value set
// of v at loc. While the set is being computed (a cyclic dependency) it
// returns a conservative unknown result. The cache is keyed by the packed
// (v, loc) pair — one map probe on an integer, no struct hashing.
func (e *Engine) valuesAt(v ir.VarID, loc ir.Loc) *valueResult {
	k := intern.Pack2x32(int32(v), int32(loc))
	if vr, ok := e.ptsVR[k]; ok {
		return vr
	}
	if e.ptsInProg[k] {
		return &valueResult{objs: map[ir.VarID]bool{}, unknown: true}
	}
	e.ptsInProg[k] = true
	n := e.prog.Node(loc)
	vr := e.collectValues(n.Fn, v, n.Preds)
	delete(e.ptsInProg, k)
	e.ptsVR[k] = vr
	return vr
}

// PointsToAt returns the flow-sensitive context-insensitive points-to set
// of v at loc (the objects v may reference when control is at loc), and
// whether the set is precise. known is false while the set is being
// computed (a cyclic dependency) or when some path lost precision — the
// caller must then fall back conservatively.
func (e *Engine) PointsToAt(v ir.VarID, loc ir.Loc) ([]ir.VarID, bool) {
	vr := e.valuesAt(v, loc)
	return vr.sortedObjs(), !vr.unknown
}

// mustPointTo reports whether v definitely references y at loc: the value
// set is precise, definitely initialized and non-null, and contains
// exactly y. This soundly refutes NotPointsTo constraints, matching the
// paper's frontier-time satisfiability check.
func (e *Engine) mustPointTo(v ir.VarID, loc ir.Loc, y ir.VarID) bool {
	vr := e.valuesAt(v, loc)
	if vr.unknown || vr.null || vr.uninit || len(vr.objs) != 1 {
		return false
	}
	return vr.objs[y]
}

// Values returns the objects p may reference at loc under the FSCS
// analysis, with precise=false when some path lost precision (callers
// should then widen with a flow-insensitive fallback).
func (e *Engine) Values(p ir.VarID, loc ir.Loc) ([]ir.VarID, bool) {
	n := e.prog.Node(loc)
	vr := e.collectValues(n.Fn, p, n.Preds)
	return vr.sortedObjs(), !vr.unknown
}

// ValueState is the full resolution of a pointer's possible values at a
// location, including the non-object outcomes client analyses care about
// (e.g. the null-dereference checker).
type ValueState struct {
	Objs    []ir.VarID // objects p may reference
	Null    bool       // some path leaves p null (incl. after free)
	Uninit  bool       // some path reaches the entry with p unassigned
	Unknown bool       // some path lost precision; Objs is incomplete
}

// ValueState resolves p's value set at loc with all outcome flags.
func (e *Engine) ValueState(p ir.VarID, loc ir.Loc) ValueState {
	n := e.prog.Node(loc)
	vr := e.collectValues(n.Fn, p, n.Preds)
	return ValueState{
		Objs:    vr.sortedObjs(),
		Null:    vr.null,
		Uninit:  vr.uninit,
		Unknown: vr.unknown,
	}
}

// fallbackMayAlias is the flow-insensitive widening used when the precise
// walk lost information.
func (e *Engine) fallbackMayAlias(p, q ir.VarID) bool {
	if e.fallback != nil {
		return e.fallback.MayAlias(p, q)
	}
	return e.sa.SamePartition(p, q)
}

// MayAlias reports whether p and q may reference the same object at loc
// (Theorem 5: they share a maximally-complete-update-sequence source).
func (e *Engine) MayAlias(p, q ir.VarID, loc ir.Loc) bool {
	if p == q {
		return true
	}
	n := e.prog.Node(loc)
	vp := e.collectValues(n.Fn, p, n.Preds)
	vq := e.collectValues(n.Fn, q, n.Preds)
	if vp.unknown || vq.unknown {
		return e.fallbackMayAlias(p, q)
	}
	for o := range vp.objs {
		if vq.objs[o] {
			return true
		}
	}
	return false
}

// Aliases returns the cluster pointers that may alias p at loc, sorted.
// Per Theorem 6/7 this is exactly Alias(p, St_P) for this cluster; the
// program-wide alias set is the union over the clusters containing p.
func (e *Engine) Aliases(p ir.VarID, loc ir.Loc) []ir.VarID {
	var out []ir.VarID
	for _, q := range e.cl.Pointers {
		if q != p && e.MayAlias(p, q, loc) {
			out = append(out, q)
		}
	}
	return out
}

// MustAlias conservatively reports whether p and q definitely reference
// the same object at loc: both resolve precisely to the same single
// object on every path, with no null, uninitialized or unknown source.
// This is the predicate lockset-based race detection needs.
func (e *Engine) MustAlias(p, q ir.VarID, loc ir.Loc) bool {
	n := e.prog.Node(loc)
	vp := e.collectValues(n.Fn, p, n.Preds)
	vq := e.collectValues(n.Fn, q, n.Preds)
	if p == q {
		return !vp.unknown && !vp.null && !vp.uninit && len(vp.objs) > 0
	}
	if vp.unknown || vq.unknown || vp.null || vq.null || vp.uninit || vq.uninit {
		return false
	}
	if len(vp.objs) != 1 || len(vq.objs) != 1 {
		return false
	}
	return vp.sortedObjs()[0] == vq.sortedObjs()[0]
}

// Context is a call path from the program entry: the call-site locations
// (OpCall nodes) leading, in order, from the entry function to the queried
// function. An empty context means the query location is in the entry
// function itself.
type Context []ir.Loc

// ValidateContext checks that ctx is a well-formed call path ending in the
// function containing loc.
func (e *Engine) ValidateContext(ctx Context, loc ir.Loc) error {
	cur := e.prog.Entry
	for i, cs := range ctx {
		n := e.prog.Node(cs)
		if n.Stmt.Op != ir.OpCall || n.Stmt.Callee == ir.NoFunc {
			return fmt.Errorf("fscs: context[%d] = L%d is not a direct call", i, cs)
		}
		if n.Fn != cur {
			return fmt.Errorf("fscs: context[%d] = L%d is in %s, want %s", i, cs,
				e.prog.Func(n.Fn).Name, e.prog.Func(cur).Name)
		}
		cur = n.Stmt.Callee
	}
	if e.prog.Node(loc).Fn != cur {
		return fmt.Errorf("fscs: location L%d is in %s but the context ends in %s",
			loc, e.prog.Func(e.prog.Node(loc).Fn).Name, e.prog.Func(cur).Name)
	}
	return nil
}

// collectValuesInContext is the context-sensitive variant of
// collectValues: a TVar source at the entry of the current function is
// chased only through the given call path, splicing the local update
// sequences of f1...fn in order (Section 3, "Computing Flow and
// Context-Sensitive Aliases").
func (e *Engine) collectValuesInContext(ptr ir.VarID, startLocs []ir.Loc, ctx Context) *valueResult {
	vr := &valueResult{objs: map[ir.VarID]bool{}}
	type frame struct {
		v     ir.VarID
		start []ir.Loc
		depth int // index into ctx of the frame's own call site; -1 = entry
	}
	fnAt := func(depth int) ir.FuncID {
		if depth < 0 {
			return e.prog.Entry
		}
		return e.prog.Node(ctx[depth]).Stmt.Callee
	}
	// The start locations of every pushed frame are determined by its
	// depth (the predecessors of ctx[depth+1]), and the initial frame is
	// the only one at depth len(ctx)-1 with caller-supplied starts, so
	// (depth, v) identifies a frame.
	type frameKey struct {
		depth int
		v     ir.VarID
	}
	seen := map[frameKey]bool{}
	queue := []frame{{v: ptr, start: startLocs, depth: len(ctx) - 1}}
	for len(queue) > 0 {
		fr := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		k := frameKey{depth: fr.depth, v: fr.v}
		if seen[k] {
			continue
		}
		seen[k] = true
		tuples := e.walkBack(fnAt(fr.depth), VarTok(fr.v), fr.start, e.summaryLookup)
		for t := range tuples {
			if !e.satisfiable(t.cond) {
				continue
			}
			switch t.tok.Kind {
			case TAddr:
				vr.objs[t.tok.V] = true
			case TNull:
				vr.null = true
			case TUnknown:
				vr.unknown = true
			case TVar:
				if fr.depth < 0 {
					vr.uninit = true
					continue
				}
				cs := ctx[fr.depth]
				queue = append(queue, frame{
					v:     t.tok.V,
					start: e.prog.Node(cs).Preds,
					depth: fr.depth - 1,
				})
			}
		}
		if e.over {
			vr.unknown = true
			return vr
		}
	}
	return vr
}

// ValuesInContext returns the objects p may reference at loc when reached
// via the given call path.
func (e *Engine) ValuesInContext(p ir.VarID, loc ir.Loc, ctx Context) ([]ir.VarID, bool, error) {
	if err := e.ValidateContext(ctx, loc); err != nil {
		return nil, false, err
	}
	vr := e.collectValuesInContext(p, e.prog.Node(loc).Preds, ctx)
	return vr.sortedObjs(), !vr.unknown, nil
}

// MayAliasInContext reports whether p and q may alias at loc in the given
// context.
func (e *Engine) MayAliasInContext(p, q ir.VarID, loc ir.Loc, ctx Context) (bool, error) {
	if err := e.ValidateContext(ctx, loc); err != nil {
		return false, err
	}
	if p == q {
		return true, nil
	}
	vp := e.collectValuesInContext(p, e.prog.Node(loc).Preds, ctx)
	vq := e.collectValuesInContext(q, e.prog.Node(loc).Preds, ctx)
	if vp.unknown || vq.unknown {
		return e.fallbackMayAlias(p, q), nil
	}
	for o := range vp.objs {
		if vq.objs[o] {
			return true, nil
		}
	}
	return false, nil
}

// MustAliasInContext is the context-sensitive must-alias predicate.
func (e *Engine) MustAliasInContext(p, q ir.VarID, loc ir.Loc, ctx Context) (bool, error) {
	if err := e.ValidateContext(ctx, loc); err != nil {
		return false, err
	}
	vp := e.collectValuesInContext(p, e.prog.Node(loc).Preds, ctx)
	vq := e.collectValuesInContext(q, e.prog.Node(loc).Preds, ctx)
	if vp.unknown || vq.unknown || vp.null || vq.null || vp.uninit || vq.uninit {
		return false, nil
	}
	if p == q {
		return len(vp.objs) > 0, nil
	}
	if len(vp.objs) != 1 || len(vq.objs) != 1 {
		return false, nil
	}
	return vp.sortedObjs()[0] == vq.sortedObjs()[0], nil
}

// Run executes the full cluster workload: exit summaries for every
// function that can modify cluster pointers, built in increasing
// Steensgaard-depth order (Algorithm 2's dovetailing), then FSCI value
// sets for every cluster pointer at each of its occurrences in St_P. This
// is the per-cluster unit of work the paper's Table 1 times.
//
// On abort Run returns the cause: ErrBudget, the context's error
// (WithContext), or the hook's error (WithHook). Results computed so far
// remain queryable; queries degrade soundly to the fallback.
//
// When a registry was attached (WithMetrics), Run flushes the engine's
// work counters into it on the way out, clean or not.
func (e *Engine) Run() error {
	err := e.run()
	e.flushMetrics()
	return err
}

func (e *Engine) run() error {
	if !e.checkpoint() {
		return e.cause
	}
	for _, f := range e.SummaryFuncs() {
		vars := make([]ir.VarID, 0, len(e.modStar[f]))
		for v := range e.modStar[f] {
			vars = append(vars, v)
		}
		sort.Slice(vars, func(i, j int) bool {
			di, dj := e.sa.Depth(vars[i]), e.sa.Depth(vars[j])
			if di != dj {
				return di < dj
			}
			return vars[i] < vars[j]
		})
		for _, v := range vars {
			e.Summary(f, v)
			if e.over {
				return e.cause
			}
		}
	}
	// Value sets at each occurrence of each cluster pointer.
	occ := map[ir.VarID][]ir.Loc{}
	for _, loc := range e.cl.Stmts {
		st := e.prog.Node(loc).Stmt
		for _, v := range []ir.VarID{st.Dst, st.Src} {
			if v != ir.NoVar && e.cl.HasPointer(v) {
				occ[v] = append(occ[v], loc)
			}
		}
	}
	for _, p := range e.cl.Pointers {
		for _, loc := range occ[p] {
			e.PointsToAt(p, loc)
			if e.over {
				return e.cause
			}
		}
	}
	return nil
}
