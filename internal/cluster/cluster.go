// Package cluster implements the divide-and-conquer layer of the paper's
// bootstrapping framework: partitioning the program's pointers into small
// clusters that form an alias cover, and slicing the program down to the
// statements relevant to each cluster.
//
// Three cover constructions are provided:
//
//   - Steensgaard clusters — one per Steensgaard partition; a *disjoint*
//     alias cover (a pointer aliases only within its partition).
//   - Andersen clusters — for partitions larger than a threshold, the
//     inverse Andersen points-to sets restricted to the partition; a
//     *disjunctive* alias cover (Theorem 7): a pointer may appear in
//     several clusters and its aliases are the union over them.
//   - Syntactic clusters — the Zhang/Ryder/Landi (FSE 1996) baseline the
//     paper compares against: connected components of the "appears in the
//     same assignment" relation, ignoring points-to structure.
//
// For every cluster, RelevantStatements implements the paper's
// Algorithm 1: the fixpoint computing the pointers V_P and statements St_P
// that can affect aliases of the cluster's members (Theorem 6 justifies
// restricting the precise analysis to St_P).
package cluster

import (
	"context"
	"fmt"
	"sort"

	"bootstrap/internal/andersen"
	"bootstrap/internal/ir"
	"bootstrap/internal/obs"
	"bootstrap/internal/steens"
)

// Kind identifies how a cluster was constructed.
type Kind uint8

// Cluster kinds.
const (
	KindWhole Kind = iota // the entire program as one cluster (baseline)
	KindSteensgaard
	KindAndersen
	KindSyntactic
	KindOneFlow // a One-Level-Flow refinement piece (cascade extension)
)

var kindNames = [...]string{"whole", "steensgaard", "andersen", "syntactic", "oneflow"}

func (k Kind) String() string { return kindNames[k] }

// Cluster is one independent unit of precise analysis: a pointer set P,
// the relevant pointers V_P, and the relevant statement slice St_P.
type Cluster struct {
	ID       int
	Kind     Kind
	Pointers []ir.VarID  // P, sorted
	Vars     []ir.VarID  // V_P from Algorithm 1, sorted
	Stmts    []ir.Loc    // St_P, sorted
	Funcs    []ir.FuncID // functions containing St_P statements, sorted

	// Part is the member list of the Steensgaard partition this cluster
	// was carved from (shared, not copied; nil for covers built outside
	// BuildPartitionWithBase). It disambiguates provenance where the
	// pointer set cannot: a sink pointer belongs to several overlapping
	// partitions, so a sink-only Andersen sub-cluster is attributable
	// only through this record. Incremental reanalysis keys partition
	// reuse on it.
	Part []ir.VarID

	varSet  map[ir.VarID]bool
	stmtSet map[ir.Loc]bool
}

// Size returns |P|, the paper's cluster-size metric.
func (c *Cluster) Size() int { return len(c.Pointers) }

// HasVar reports whether v ∈ V_P.
func (c *Cluster) HasVar(v ir.VarID) bool { return c.varSet[v] }

// HasStmt reports whether loc ∈ St_P.
func (c *Cluster) HasStmt(loc ir.Loc) bool { return c.stmtSet[loc] }

// HasPointer reports whether v ∈ P.
func (c *Cluster) HasPointer(v ir.VarID) bool {
	i := sort.Search(len(c.Pointers), func(i int) bool { return c.Pointers[i] >= v })
	return i < len(c.Pointers) && c.Pointers[i] == v
}

func (c *Cluster) String() string {
	return fmt.Sprintf("cluster#%d(%s, |P|=%d, |V|=%d, |St|=%d, funcs=%d)",
		c.ID, c.Kind, len(c.Pointers), len(c.Vars), len(c.Stmts), len(c.Funcs))
}

// Index holds the per-program statement indexes Algorithm 1 consults:
// direct-destination statements by destination, and stores by the content
// class of the pointer stored through (so store activation is O(1) when a
// location class joins V_P). Build it once and share it across every
// cluster of a program.
type Index struct {
	prog          *ir.Program
	sa            *steens.Analysis
	byDst         map[ir.VarID][]ir.Loc
	storesByClass map[int][]storeStmt
	assumesByFn   map[ir.FuncID][]ir.Loc
}

type storeStmt struct {
	loc  ir.Loc
	q, r ir.VarID
}

// NewIndex builds the Algorithm 1 statement indexes for a program.
func NewIndex(p *ir.Program, sa *steens.Analysis) *Index {
	ix := &Index{
		prog:          p,
		sa:            sa,
		byDst:         map[ir.VarID][]ir.Loc{},
		storesByClass: map[int][]storeStmt{},
		assumesByFn:   map[ir.FuncID][]ir.Loc{},
	}
	for _, n := range p.Nodes {
		switch n.Stmt.Op {
		case ir.OpCopy, ir.OpAddr, ir.OpLoad, ir.OpNullify:
			ix.byDst[n.Stmt.Dst] = append(ix.byDst[n.Stmt.Dst], n.Loc)
		case ir.OpStore:
			cls := sa.ContentClass(n.Stmt.Dst)
			ix.storesByClass[cls] = append(ix.storesByClass[cls], storeStmt{loc: n.Loc, q: n.Stmt.Dst, r: n.Stmt.Src})
		case ir.OpAssumeEq, ir.OpAssumeNeq:
			ix.assumesByFn[n.Fn] = append(ix.assumesByFn[n.Fn], n.Loc)
		}
	}
	return ix
}

// RelevantStatements implements the paper's Algorithm 1. Given a pointer
// set P it computes V_P — every variable whose value may flow into the
// aliases of a member of P — and St_P, the statements that may modify a
// member of V_P.
//
// The fixpoint rules, per canonical statement form:
//
//   - d = s, d = *s with d ∈ V_P pull in s (and, for loads, the objects s
//     may reference, whose stored values are being read);
//   - a store *q = r is relevant as soon as q may point at a V_P member;
//     then q and r join V_P. This activation condition is the read-driven
//     equivalent of the paper's "q > p or the cyclic case": multi-level
//     stores are reached transitively as intermediate objects join V_P.
//
// St_P contains every Copy/Addr/Load/Nullify whose destination is in V_P
// and every activated store.
func RelevantStatements(p *ir.Program, sa *steens.Analysis, P []ir.VarID) ([]ir.VarID, []ir.Loc) {
	return NewIndex(p, sa).RelevantStatements(P)
}

// RelevantStatements is Algorithm 1 over a prebuilt index.
func (ix *Index) RelevantStatements(P []ir.VarID) ([]ir.VarID, []ir.Loc) {
	p, sa := ix.prog, ix.sa
	byDst, storesByClass := ix.byDst, ix.storesByClass
	inV := make(map[ir.VarID]bool, len(P)*2)
	var work, added []ir.VarID

	add := func(v ir.VarID) {
		if v != ir.NoVar && !inV[v] {
			inV[v] = true
			work = append(work, v)
			added = append(added, v)
		}
	}
	for _, v := range P {
		add(v)
	}

	activatedClasses := map[int]bool{}
	stmtSet := map[ir.Loc]bool{}

	fixpoint := func() {
		for len(work) > 0 {
			v := work[len(work)-1]
			work = work[:len(work)-1]

			for _, loc := range byDst[v] {
				stmtSet[loc] = true
				st := p.Node(loc).Stmt
				switch st.Op {
				case ir.OpCopy:
					add(st.Src)
				case ir.OpLoad:
					add(st.Src)
					for _, o := range sa.PointsToVars(st.Src) {
						add(o)
					}
				case ir.OpAddr, ir.OpNullify:
					// No value sources to chase.
				}
			}
			// Stores through pointers whose content class is v's location
			// class may overwrite v.
			lc := sa.LocClass(v)
			if !activatedClasses[lc] {
				activatedClasses[lc] = true
				for _, s := range storesByClass[lc] {
					stmtSet[s.loc] = true
					add(s.q)
					add(s.r)
				}
			}
		}
	}
	fixpoint()
	// Path sensitivity (Section 3): an assume node in a function the
	// slice touches contributes points-to constraints whose guard
	// pointers the per-cluster engine must be able to resolve — pull them
	// (and, transitively, their value sources) into V_P.
	if len(ix.assumesByFn) > 0 {
		doneFn := map[ir.FuncID]bool{}
		for changed := true; changed; {
			changed = false
			fns := map[ir.FuncID]bool{}
			for loc := range stmtSet {
				fns[p.Node(loc).Fn] = true
			}
			for fn := range fns {
				if doneFn[fn] {
					continue
				}
				doneFn[fn] = true
				for _, loc := range ix.assumesByFn[fn] {
					st := p.Node(loc).Stmt
					stmtSet[loc] = true
					add(st.Dst)
					add(st.Src)
					changed = true
				}
			}
			fixpoint()
		}
	}

	vars := added
	sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
	stmts := make([]ir.Loc, 0, len(stmtSet))
	for loc := range stmtSet {
		stmts = append(stmts, loc)
	}
	sort.Slice(stmts, func(i, j int) bool { return stmts[i] < stmts[j] })
	return vars, stmts
}

// New assembles a cluster from an explicit pointer set, running
// Algorithm 1 for its slice. Cover builders use it internally; it is
// exported for custom cascade stages (e.g. One-Flow refinement pieces).
func New(p *ir.Program, sa *steens.Analysis, id int, kind Kind, pointers []ir.VarID) *Cluster {
	return newCluster(NewIndex(p, sa), id, kind, pointers)
}

// newCluster assembles a Cluster, running Algorithm 1 for its slice.
func newCluster(ix *Index, id int, kind Kind, pointers []ir.VarID) *Cluster {
	p := ix.prog
	sorted := append([]ir.VarID(nil), pointers...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	vars, stmts := ix.RelevantStatements(sorted)
	c := &Cluster{
		ID:       id,
		Kind:     kind,
		Pointers: sorted,
		Vars:     vars,
		Stmts:    stmts,
		varSet:   make(map[ir.VarID]bool, len(vars)),
		stmtSet:  make(map[ir.Loc]bool, len(stmts)),
	}
	for _, v := range vars {
		c.varSet[v] = true
	}
	fnSet := map[ir.FuncID]bool{}
	for _, loc := range stmts {
		c.stmtSet[loc] = true
		fnSet[p.Node(loc).Fn] = true
	}
	for f := range fnSet {
		c.Funcs = append(c.Funcs, f)
	}
	sort.Slice(c.Funcs, func(i, j int) bool { return c.Funcs[i] < c.Funcs[j] })
	return c
}

// BuildWhole returns the no-clustering baseline: all pointers in one
// cluster covering every statement.
func BuildWhole(p *ir.Program, sa *steens.Analysis) *Cluster {
	all := make([]ir.VarID, p.NumVars())
	for i := range all {
		all[i] = ir.VarID(i)
	}
	return newCluster(NewIndex(p, sa), 0, KindWhole, all)
}

// BuildSteensgaard returns one cluster per Steensgaard partition that has
// any analysis work to do (at least two members or at least one relevant
// statement). Together they are a disjoint alias cover of the program.
func BuildSteensgaard(p *ir.Program, sa *steens.Analysis) []*Cluster {
	ix := NewIndex(p, sa)
	var out []*Cluster
	for _, part := range sa.Partitions() {
		c := newCluster(ix, len(out), KindSteensgaard, part)
		if len(c.Stmts) == 0 {
			// No statement can ever give these members a value: they
			// cannot alias anything, so no analysis work exists. This
			// also covers the pure-object partitions (data everything
			// points at but nothing assigns through).
			continue
		}
		out = append(out, c)
	}
	return out
}

// DefaultAndersenThreshold is the partition size above which Andersen
// clustering pays off; the paper determined 60 empirically for its
// benchmark suite.
const DefaultAndersenThreshold = 60

// buildPartition computes one Steensgaard partition's contribution to the
// Andersen cover: the partition kept whole when small or structure-free,
// or its Andersen refinement otherwise. Cluster IDs are left at 0 for the
// caller to renumber; the per-partition output order is deterministic
// (sorted member keys). Safe to call concurrently — the Index is read-only
// after construction and each call runs its own Andersen solver.
func buildPartition(ix *Index, part []ir.VarID, threshold int, aopts []andersen.Option) []*Cluster {
	_, cs := BuildPartitionWithBase(ix, part, threshold, aopts)
	return cs
}

// NewWithIndex assembles one cluster over a prebuilt shared Index — the
// bulk-construction seam New wraps for single callers. Incremental
// reanalysis uses it to recompute a partition's Algorithm-1 base slice
// without paying a fresh whole-program index per partition.
func NewWithIndex(ix *Index, id int, kind Kind, pointers []ir.VarID) *Cluster {
	return newCluster(ix, id, kind, pointers)
}

// BuildPartitionWithBase computes one Steensgaard partition's
// contribution to the Andersen-refined cover (IDs left 0 for the caller
// to assign) along with the partition's base Steensgaard cluster — the
// Algorithm-1 slice over the whole partition that the refinement was
// restricted to. A nil base means the partition is alias-free and
// contributes nothing. Deterministic and safe for concurrent calls over
// a shared Index.
func BuildPartitionWithBase(ix *Index, part []ir.VarID, threshold int, aopts []andersen.Option) (*Cluster, []*Cluster) {
	base := newCluster(ix, 0, KindSteensgaard, part)
	base.Part = part
	if len(base.Stmts) == 0 {
		return nil, nil // alias-free (see BuildSteensgaard)
	}
	if len(part) <= threshold {
		return base, []*Cluster{base}
	}
	// Oversized: Andersen restricted to the partition's slice. Copy the
	// caller's options before appending — concurrent buildPartition calls
	// share the aopts backing array.
	opts := make([]andersen.Option, 0, len(aopts)+1)
	opts = append(opts, aopts...)
	opts = append(opts, andersen.WithStmtFilter(base.HasStmt))
	aa := andersen.Analyze(ix.prog, opts...)
	inPart := map[ir.VarID]bool{}
	for _, v := range part {
		inPart[v] = true
	}
	sets := map[string][]ir.VarID{}
	for _, oc := range aa.Clusters() {
		// The pointed-to object itself belongs to its own partition's
		// clusters, not to this pointer-level one.
		var members []ir.VarID
		for _, q := range oc.Ptrs {
			if inPart[q] {
				members = append(members, q)
			}
		}
		if len(members) == 0 {
			continue
		}
		key := clusterKey(members)
		sets[key] = members
	}
	if len(sets) == 0 {
		// Andersen found no aliasing structure; keep the partition.
		return base, []*Cluster{base}
	}
	keys := make([]string, 0, len(sets))
	for k := range sets {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Cluster, 0, len(keys))
	for _, k := range keys {
		c := newCluster(ix, 0, KindAndersen, sets[k])
		c.Part = part
		out = append(out, c)
	}
	return base, out
}

// BuildAndersen refines a Steensgaard cover with Andersen clustering:
// partitions no larger than threshold are kept as-is, while each oversized
// partition is re-analyzed with Andersen's analysis restricted to its
// relevant statements; the resulting clusters are the inverse points-to
// sets intersected with the partition (deduplicated, subset-absorbed).
// Pointers of an oversized partition that Andersen finds alias-free are
// dropped — they need no precise analysis, and Theorem 7 keeps the union
// of per-cluster aliases complete.
//
// aopts are passed to every per-partition Andersen solve (e.g.
// andersen.WithCycleElimination); they never change the computed cover.
func BuildAndersen(p *ir.Program, sa *steens.Analysis, threshold int, aopts ...andersen.Option) []*Cluster {
	if threshold <= 0 {
		threshold = DefaultAndersenThreshold
	}
	ix := NewIndex(p, sa)
	var out []*Cluster
	for _, part := range sa.Partitions() {
		for _, c := range buildPartition(ix, part, threshold, aopts) {
			c.ID = len(out)
			out = append(out, c)
		}
	}
	return out
}

// StreamAndersen computes exactly the BuildAndersen cover — same clusters,
// same IDs, same order — but runs the per-partition work (Algorithm 1
// slicing plus the per-oversized-partition Andersen solve) on `workers`
// goroutines and delivers each cluster over the returned channel as soon
// as it and every earlier partition's clusters are done. An in-order
// sequencer assigns the global IDs, so consumers can start flow-sensitive
// analysis on early clusters while later partitions are still being
// refined. The channel is closed when the cover is complete or ctx is
// cancelled (possibly mid-cover).
func StreamAndersen(ctx context.Context, p *ir.Program, sa *steens.Analysis, threshold, workers int, aopts ...andersen.Option) <-chan *Cluster {
	if threshold <= 0 {
		threshold = DefaultAndersenThreshold
	}
	if workers < 1 {
		workers = 1
	}
	ix := NewIndex(p, sa)
	parts := sa.Partitions()
	results := make([]chan []*Cluster, len(parts))
	for i := range results {
		results[i] = make(chan []*Cluster, 1)
	}
	jobs := make(chan int)
	go func() {
		defer close(jobs)
		for i := range parts {
			select {
			case jobs <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	// A tracer threaded through ctx (obs.ContextWithTracer) records one
	// "refine" span per oversized partition — the Andersen solves that
	// overlap the FSCS stage under pipelining — on per-worker tracks.
	tr := obs.TracerFrom(ctx)
	for w := 0; w < workers; w++ {
		tid := obs.ClustererTID(w)
		tr.NameThread(tid, fmt.Sprintf("clusterer-%d", w))
		go func() {
			for i := range jobs {
				part := parts[i]
				if tr != nil && len(part) > threshold {
					sp := tr.Start("cluster", "refine", tid).
						Arg("partition", i).Arg("size", len(part))
					// Wave spans of the per-partition Andersen solve land
					// on this worker's track, nested under the refine span.
					topts := append(append([]andersen.Option{}, aopts...),
						andersen.WithTracer(tr, tid))
					cs := buildPartition(ix, part, threshold, topts)
					sp.Arg("clusters", len(cs)).End()
					results[i] <- cs
					continue
				}
				results[i] <- buildPartition(ix, part, threshold, aopts)
			}
		}()
	}
	out := make(chan *Cluster)
	go func() {
		defer close(out)
		id := 0
		for i := range parts {
			var cs []*Cluster
			select {
			case cs = <-results[i]:
			case <-ctx.Done():
				return
			}
			for _, c := range cs {
				c.ID = id
				id++
				select {
				case out <- c:
				case <-ctx.Done():
					return
				}
			}
		}
	}()
	return out
}

func clusterKey(members []ir.VarID) string {
	b := make([]byte, 0, len(members)*4)
	for _, m := range members {
		b = append(b, byte(m), byte(m>>8), byte(m>>16), byte(m>>24))
	}
	return string(b)
}

// BuildSyntactic is the related-work baseline (Zhang et al., FSE 1996):
// clusters are connected components of the relation "appears in the same
// pointer assignment", a purely syntactic transitive closure that ignores
// the points-to hierarchy. The paper argues Steensgaard partitions are
// strictly finer; tests and benches verify that.
func BuildSyntactic(p *ir.Program, sa *steens.Analysis) []*Cluster {
	parent := make([]int, p.NumVars())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for _, n := range p.Nodes {
		switch n.Stmt.Op {
		case ir.OpCopy, ir.OpAddr, ir.OpLoad, ir.OpStore:
			union(int(n.Stmt.Dst), int(n.Stmt.Src))
		}
	}
	groups := map[int][]ir.VarID{}
	for v := 0; v < p.NumVars(); v++ {
		groups[find(v)] = append(groups[find(v)], ir.VarID(v))
	}
	reps := make([]int, 0, len(groups))
	for r := range groups {
		reps = append(reps, r)
	}
	sort.Ints(reps)
	ix := NewIndex(p, sa)
	var out []*Cluster
	for _, r := range reps {
		c := newCluster(ix, len(out), KindSyntactic, groups[r])
		if len(c.Stmts) == 0 {
			continue // alias-free (see BuildSteensgaard)
		}
		out = append(out, c)
	}
	return out
}

// Stats summarizes a cover for the paper's Table 1 columns.
type Stats struct {
	NumClusters int
	MaxSize     int
	TotalSize   int // sum of cluster sizes (> Covered under overlap)
	Covered     int // distinct pointers covered
}

// Overlap is the mean number of clusters containing each covered pointer
// (1.0 for a disjoint cover). The paper flags high overlap as the signal
// that Andersen clustering will not pay off: "the total time taken to
// process all clusters may actually increase".
func (s Stats) Overlap() float64 {
	if s.Covered == 0 {
		return 0
	}
	return float64(s.TotalSize) / float64(s.Covered)
}

// CoverStats computes #clusters / max cluster size / overlap over a cover.
func CoverStats(cs []*Cluster) Stats {
	var s Stats
	s.NumClusters = len(cs)
	covered := map[ir.VarID]bool{}
	for _, c := range cs {
		if c.Size() > s.MaxSize {
			s.MaxSize = c.Size()
		}
		s.TotalSize += c.Size()
		for _, p := range c.Pointers {
			covered[p] = true
		}
	}
	s.Covered = len(covered)
	return s
}

// SizeHistogram returns cluster-size frequencies (size -> count), the data
// behind the paper's Figure 1.
func SizeHistogram(cs []*Cluster) map[int]int {
	h := map[int]int{}
	for _, c := range cs {
		h[c.Size()]++
	}
	return h
}

// SelectClusters returns the clusters containing at least one pointer
// satisfying pred — the paper's demand-driven mode (e.g. lock pointers
// only for lockset computation).
func SelectClusters(cs []*Cluster, p *ir.Program, pred func(*ir.Var) bool) []*Cluster {
	var out []*Cluster
	for _, c := range cs {
		for _, v := range c.Pointers {
			if pred(p.Var(v)) {
				out = append(out, c)
				break
			}
		}
	}
	return out
}
