package cluster

import (
	"strings"
	"testing"

	"bootstrap/internal/frontend"
	"bootstrap/internal/ir"
	"bootstrap/internal/steens"
)

func setup(t *testing.T, src string) (*ir.Program, *steens.Analysis) {
	t.Helper()
	p, err := frontend.LowerSource(src)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p, steens.Analyze(p)
}

func v(t *testing.T, p *ir.Program, name string) ir.VarID {
	t.Helper()
	id, ok := p.VarByName[name]
	if !ok {
		t.Fatalf("no variable %q", name)
	}
	return id
}

const figure3Src = `
	int a, b;
	int *x, *y, *p;
	void main() {
		x = &a;
		y = &b;
		p = x;
		*x = *y;
	}
`

// TestFigure3RelevantStatements reproduces the paper's Figure 3 slicing:
// for partition P = {a,b}, St_P contains x=&a, y=&b and the store *x=*y,
// but NOT 3a: p = x.
func TestFigure3RelevantStatements(t *testing.T) {
	p, sa := setup(t, figure3Src)
	P := []ir.VarID{v(t, p, "a"), v(t, p, "b")}
	vars, stmts := RelevantStatements(p, sa, P)

	var rendered []string
	for _, loc := range stmts {
		rendered = append(rendered, p.StmtString(loc))
	}
	joined := strings.Join(rendered, "; ")
	for _, want := range []string{"x = &a", "y = &b", "*x ="} {
		if !strings.Contains(joined, want) {
			t.Errorf("St_P = %q missing %q", joined, want)
		}
	}
	if strings.Contains(joined, "p = x") {
		t.Errorf("St_P = %q must exclude the irrelevant statement p = x", joined)
	}

	varNames := map[string]bool{}
	for _, vv := range vars {
		varNames[p.VarName(vv)] = true
	}
	for _, want := range []string{"a", "b", "x", "y"} {
		if !varNames[want] {
			t.Errorf("V_P missing %s (got %v)", want, varNames)
		}
	}
	if varNames["p"] {
		t.Errorf("V_P = %v must not contain p", varNames)
	}
}

func TestRelevantStatementsDirectOnly(t *testing.T) {
	p, sa := setup(t, `
		int a, b;
		int *x, *y;
		void main() {
			x = &a;
			y = &b;
		}
	`)
	_, stmts := RelevantStatements(p, sa, []ir.VarID{v(t, p, "x")})
	var rendered []string
	for _, loc := range stmts {
		rendered = append(rendered, p.StmtString(loc))
	}
	joined := strings.Join(rendered, "; ")
	if !strings.Contains(joined, "x = &a") {
		t.Errorf("St_{x} = %q missing x = &a", joined)
	}
	if strings.Contains(joined, "y = &b") {
		t.Errorf("St_{x} = %q must not include unrelated y = &b", joined)
	}
}

func TestSteensgaardCoverDisjointAndTotal(t *testing.T) {
	p, sa := setup(t, figure3Src)
	cs := BuildSteensgaard(p, sa)
	if len(cs) == 0 {
		t.Fatal("no clusters")
	}
	seen := map[ir.VarID]int{}
	for _, c := range cs {
		for _, m := range c.Pointers {
			seen[m]++
			if seen[m] > 1 {
				t.Fatalf("pointer %s in two Steensgaard clusters", p.VarName(m))
			}
		}
	}
	// Every variable participating in aliasing is covered.
	for _, name := range []string{"a", "b", "x", "y", "p"} {
		if seen[v(t, p, name)] == 0 {
			t.Errorf("%s not covered by the Steensgaard cover", name)
		}
	}
	// p and x must land in the same cluster.
	for _, c := range cs {
		hasP, hasX := c.HasPointer(v(t, p, "p")), c.HasPointer(v(t, p, "x"))
		if hasP != hasX {
			t.Error("p and x must share a Steensgaard cluster")
		}
	}
}

func TestWholeBaseline(t *testing.T) {
	p, sa := setup(t, figure3Src)
	w := BuildWhole(p, sa)
	if w.Size() != p.NumVars() {
		t.Errorf("whole cluster size = %d, want %d", w.Size(), p.NumVars())
	}
	if w.Kind != KindWhole {
		t.Errorf("kind = %v", w.Kind)
	}
	// Must contain every pointer statement of the program.
	count := 0
	for _, n := range p.Nodes {
		switch n.Stmt.Op {
		case ir.OpCopy, ir.OpAddr, ir.OpLoad, ir.OpStore, ir.OpNullify:
			count++
			if !w.HasStmt(n.Loc) {
				t.Errorf("whole cluster missing statement %s", p.StmtString(n.Loc))
			}
		}
	}
	if count == 0 {
		t.Fatal("test program has no statements")
	}
}

func TestAndersenThresholdKeepsSmallPartitions(t *testing.T) {
	p, sa := setup(t, figure3Src)
	cs := BuildAndersen(p, sa, 1000)
	for _, c := range cs {
		if c.Kind != KindSteensgaard {
			t.Errorf("threshold above all partition sizes should keep Steensgaard clusters, got %v", c.Kind)
		}
	}
}

// TestAndersenRefinesLargePartition builds a program where one Steensgaard
// partition is large (a chain q = p1; q = p2; ... unifies all contents)
// but Andersen keeps the pi precise, so clustering splits the partition.
func TestAndersenRefinesLargePartition(t *testing.T) {
	src := `
		int a0, a1, a2, a3, a4, a5;
		int *p0, *p1, *p2, *p3, *p4, *p5;
		int *q;
		void main() {
			p0 = &a0; p1 = &a1; p2 = &a2; p3 = &a3; p4 = &a4; p5 = &a5;
			q = p0; q = p1; q = p2; q = p3; q = p4; q = p5;
		}
	`
	p, sa := setup(t, src)
	// All of p0..p5, q share one Steensgaard partition.
	if !sa.SamePartition(v(t, p, "p0"), v(t, p, "p5")) {
		t.Fatal("setup: expected one big Steensgaard partition")
	}
	steensCover := BuildSteensgaard(p, sa)
	andersenCover := BuildAndersen(p, sa, 3) // force refinement
	ss, as := CoverStats(steensCover), CoverStats(andersenCover)
	if as.MaxSize >= ss.MaxSize {
		t.Errorf("Andersen max cluster %d should be smaller than Steensgaard %d", as.MaxSize, ss.MaxSize)
	}
	// Each Andersen cluster that came from refinement holds q plus one pi.
	for _, c := range andersenCover {
		if c.Kind != KindAndersen {
			continue
		}
		if c.Size() > 2 {
			t.Errorf("refined cluster too large: %v", c)
		}
	}
	// Disjunctive cover: q appears in several clusters.
	qCount := 0
	for _, c := range andersenCover {
		if c.HasPointer(v(t, p, "q")) {
			qCount++
		}
	}
	if qCount < 2 {
		t.Errorf("q should appear in multiple Andersen clusters, got %d", qCount)
	}
}

func TestSyntacticCoarserThanSteensgaard(t *testing.T) {
	p, sa := setup(t, figure3Src)
	syn := BuildSyntactic(p, sa)
	st := BuildSteensgaard(p, sa)
	// The syntactic closure links everything through *x = *y and p = x,
	// so its max cluster is at least as large as Steensgaard's.
	if CoverStats(syn).MaxSize < CoverStats(st).MaxSize {
		t.Errorf("syntactic max %d < steensgaard max %d; expected coarser-or-equal",
			CoverStats(syn).MaxSize, CoverStats(st).MaxSize)
	}
	// Specifically, a and p end up syntactically connected though they are
	// in different Steensgaard partitions.
	var together bool
	for _, c := range syn {
		if c.HasPointer(v(t, p, "a")) && c.HasPointer(v(t, p, "p")) {
			together = true
		}
	}
	if !together {
		t.Error("syntactic clustering should connect a and p transitively")
	}
}

func TestSizeHistogram(t *testing.T) {
	p, sa := setup(t, figure3Src)
	cs := BuildSteensgaard(p, sa)
	h := SizeHistogram(cs)
	total := 0
	for size, count := range h {
		if size <= 0 || count <= 0 {
			t.Errorf("bad histogram entry %d -> %d", size, count)
		}
		total += count
	}
	if total != len(cs) {
		t.Errorf("histogram covers %d clusters, want %d", total, len(cs))
	}
}

func TestSelectClusters(t *testing.T) {
	p, sa := setup(t, `
		lock *l1, *l2;
		int *x; int a;
		void main() {
			l1 = l2;
			x = &a;
		}
	`)
	cs := BuildSteensgaard(p, sa)
	locks := SelectClusters(cs, p, func(vr *ir.Var) bool { return vr.IsLock })
	if len(locks) == 0 {
		t.Fatal("no lock clusters selected")
	}
	for _, c := range locks {
		hasLock := false
		for _, m := range c.Pointers {
			if p.Var(m).IsLock {
				hasLock = true
			}
		}
		if !hasLock {
			t.Errorf("selected cluster %v has no lock pointer", c)
		}
	}
	// Lock clusters should not include the x/a cluster.
	for _, c := range locks {
		if c.HasPointer(v(t, p, "x")) {
			t.Error("lock-cluster selection leaked the x cluster")
		}
	}
}

func TestClusterFuncs(t *testing.T) {
	p, sa := setup(t, `
		int *g1, *g2; int a;
		void touches() { g1 = &a; }
		void untouched() { int *z; int b; z = &b; }
		void main() { g2 = g1; touches(); }
	`)
	cs := BuildSteensgaard(p, sa)
	var gc *Cluster
	for _, c := range cs {
		if c.HasPointer(v(t, p, "g1")) {
			gc = c
		}
	}
	if gc == nil {
		t.Fatal("no cluster for g1")
	}
	fnNames := map[string]bool{}
	for _, f := range gc.Funcs {
		fnNames[p.Func(f).Name] = true
	}
	if !fnNames["touches"] || !fnNames["main"] {
		t.Errorf("cluster funcs = %v, want touches and main", fnNames)
	}
	if fnNames["untouched"] {
		t.Errorf("cluster funcs = %v must not include untouched (summary skipping!)", fnNames)
	}
}

func TestCoverStatsOverlap(t *testing.T) {
	p, sa := setup(t, figure3Src)
	// Disjoint Steensgaard cover: overlap exactly 1.
	st := CoverStats(BuildSteensgaard(p, sa))
	if got := st.Overlap(); got != 1.0 {
		t.Errorf("Steensgaard cover overlap = %v, want 1.0 (disjoint)", got)
	}
	if st.Covered == 0 || st.TotalSize != st.Covered {
		t.Errorf("disjoint cover: total %d vs covered %d", st.TotalSize, st.Covered)
	}
	// A forced-Andersen cover over the shared-sink program overlaps: q is
	// in several clusters.
	src := `
		int a0, a1, a2;
		int *p0, *p1, *p2, *q;
		void main() {
			p0 = &a0; p1 = &a1; p2 = &a2;
			q = p0; q = p1; q = p2;
		}
	`
	p2prog, sa2 := setup(t, src)
	as := CoverStats(BuildAndersen(p2prog, sa2, 2))
	if as.Overlap() <= 1.0 {
		t.Errorf("disjunctive cover overlap = %v, want > 1", as.Overlap())
	}
	if (Stats{}).Overlap() != 0 {
		t.Error("empty stats overlap should be 0")
	}
}
