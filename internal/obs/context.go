package obs

import "context"

type tracerKey struct{}
type workerKey struct{}

// ContextWithTracer threads a tracer through call chains whose
// signatures predate observability (cluster streaming, the scheduler's
// worker contexts). A nil tracer returns ctx unchanged.
func ContextWithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom returns the context's tracer, or nil — and nil is a fully
// working no-op tracer, so callers never branch.
func TracerFrom(ctx context.Context) *Tracer {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// ContextWithWorker tags ctx with the scheduler worker index that will
// execute under it, so spans recorded downstream land on that worker's
// trace track.
func ContextWithWorker(ctx context.Context, worker int) context.Context {
	return context.WithValue(ctx, workerKey{}, worker)
}

// WorkerFrom returns the context's worker index, defaulting to 0.
func WorkerFrom(ctx context.Context) int {
	if ctx == nil {
		return 0
	}
	w, _ := ctx.Value(workerKey{}).(int)
	return w
}
