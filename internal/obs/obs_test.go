package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("phase", "parse", 0)
	sp.Arg("k", 1).Arg("j", "v")
	sp.End()
	tr.Instant("phase", "tick", 0, nil)
	tr.NameThread(0, "main")
	if got := tr.Events(); got != nil {
		t.Errorf("nil tracer Events = %v, want nil", got)
	}
	if err := tr.WriteJSON(&bytes.Buffer{}); err != nil {
		t.Errorf("nil tracer WriteJSON: %v", err)
	}

	var m *Metrics
	m.Counter("c", "").Inc()
	m.Gauge("g", "").Set(2)
	m.Histogram("h", "", nil).Observe(0.5)
	m.CounterFunc("cf", "", func() int64 { return 1 })
	m.GaugeFunc("gf", "", func() float64 { return 1 })
	m.PublishExpvar("nil_")
	if err := m.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Errorf("nil metrics WritePrometheus: %v", err)
	}
}

func TestTracerCanonicalOrder(t *testing.T) {
	tr := NewTracer()
	tr.NameThread(1, "worker-1")
	tr.NameThread(0, "main")
	tr.Start("phase", "a", 0).End()
	tr.Start("cluster", "c1", 1).Arg("cluster", 1).End()
	tr.Start("phase", "b", 0).End()

	evs := tr.Events()
	wantNames := []string{"thread_name", "thread_name", "a", "b", "c1"}
	if len(evs) != len(wantNames) {
		t.Fatalf("got %d events, want %d", len(evs), len(wantNames))
	}
	for i, ev := range evs {
		if ev.Name != wantNames[i] {
			t.Errorf("event %d = %q, want %q", i, ev.Name, wantNames[i])
		}
	}
	if evs[0].TID != 0 || evs[1].TID != 1 {
		t.Errorf("metadata events out of tid order: %+v", evs[:2])
	}
}

// TestTraceJSONRoundTrip checks the satellite requirement directly: the
// Chrome-trace JSON round-trips through encoding/json.
func TestTraceJSONRoundTrip(t *testing.T) {
	tr := NewTracer()
	tr.NameThread(0, "main")
	tr.Start("phase", "steensgaard", 0).Arg("vars", 12).End()
	tr.Start("cluster", "cluster", 3).Arg("cluster", 7).Arg("outcome", "solved").End()

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded Trace
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("trace JSON does not round-trip: %v", err)
	}
	re, err := json.MarshalIndent(decoded, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := strings.TrimSpace(string(re)), strings.TrimSpace(buf.String()); got != want {
		t.Errorf("re-encoded trace differs:\n%s\nwant:\n%s", got, want)
	}
	if len(decoded.TraceEvents) != 3 {
		t.Fatalf("decoded %d events, want 3", len(decoded.TraceEvents))
	}
	ph := decoded.TraceEvents[1]
	if ph.Ph != "X" || ph.Name != "steensgaard" || ph.Cat != "phase" {
		t.Errorf("phase span decoded wrong: %+v", ph)
	}
}

func TestMetricsPrometheusFormat(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("bootstrap_fscs_tuples_total", "worklist tuples charged")
	c.Add(41)
	c.Inc()
	m.Gauge("bootstrap_cache_entries", "in-memory entries").Set(3)
	m.CounterFunc("bootstrap_cache_hits_total", "", func() int64 { return 9 })
	h := m.Histogram("bootstrap_cluster_solve_seconds", "per-cluster solve", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE bootstrap_fscs_tuples_total counter",
		"bootstrap_fscs_tuples_total 42",
		"bootstrap_cache_entries 3",
		"bootstrap_cache_hits_total 9",
		"# TYPE bootstrap_cluster_solve_seconds histogram",
		`bootstrap_cluster_solve_seconds_bucket{le="0.1"} 1`,
		`bootstrap_cluster_solve_seconds_bucket{le="1"} 2`,
		`bootstrap_cluster_solve_seconds_bucket{le="+Inf"} 3`,
		"bootstrap_cluster_solve_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}

	// Same instrument on re-registration; wrong type panics.
	if m.Counter("bootstrap_fscs_tuples_total", "").Value() != 42 {
		t.Error("re-registration did not return the existing counter")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("re-registering a counter as a gauge should panic")
			}
		}()
		m.Gauge("bootstrap_fscs_tuples_total", "")
	}()
}

func TestMetricsHandlerAndExpvar(t *testing.T) {
	m := NewMetrics()
	m.Counter("demotions_total", "").Add(2)
	m.Histogram("sizes", "", []float64{1}).Observe(7)

	rr := httptest.NewRecorder()
	m.ServeMux().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), "demotions_total 2") {
		t.Errorf("/metrics = %d %q", rr.Code, rr.Body.String())
	}

	rr = httptest.NewRecorder()
	m.ServeMux().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
	if rr.Code != 200 {
		t.Errorf("/debug/pprof/cmdline = %d", rr.Code)
	}

	// PublishExpvar twice must not panic (expvar forbids duplicates).
	m.PublishExpvar("test_")
	m.PublishExpvar("test_")
	rr = httptest.NewRecorder()
	m.ServeMux().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/vars", nil))
	if !strings.Contains(rr.Body.String(), `"test_demotions_total": 2`) {
		t.Errorf("/debug/vars missing published counter: %s", rr.Body.String())
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	m := NewMetrics()
	h := m.Histogram("h", "", []float64{1, 2})
	h.Observe(1) // le="1" (boundary is inclusive)
	h.Observe(2)
	h.Observe(3)
	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`h_bucket{le="1"} 1`, `h_bucket{le="2"} 2`, `h_bucket{le="+Inf"} 3`, "h_sum 6"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("missing %q in:\n%s", want, buf.String())
		}
	}
}

func TestContextHelpers(t *testing.T) {
	if TracerFrom(context.Background()) != nil {
		t.Error("TracerFrom on a bare context should be nil")
	}
	if TracerFrom(nil) != nil { //nolint:staticcheck // nil ctx is part of the contract
		t.Error("TracerFrom(nil) should be nil")
	}
	tr := NewTracer()
	ctx := ContextWithTracer(context.Background(), tr)
	if TracerFrom(ctx) != tr {
		t.Error("tracer not threaded through context")
	}
	if got := WorkerFrom(ctx); got != 0 {
		t.Errorf("default worker = %d, want 0", got)
	}
	if got := WorkerFrom(ContextWithWorker(ctx, 3)); got != 3 {
		t.Errorf("worker = %d, want 3", got)
	}
	if ContextWithTracer(ctx, nil) != ctx {
		t.Error("nil tracer should leave ctx unchanged")
	}
}

func TestEventsSnapshotIsolated(t *testing.T) {
	tr := NewTracer()
	tr.Start("p", "a", 0).End()
	evs1 := tr.Events()
	tr.Start("p", "b", 0).End()
	evs2 := tr.Events()
	if len(evs1) != 1 || len(evs2) != 2 {
		t.Fatalf("snapshots = %d, %d events; want 1, 2", len(evs1), len(evs2))
	}
	if !reflect.DeepEqual(evs1[0], evs2[0]) {
		t.Error("earlier snapshot mutated by later recording")
	}
}
