// Package obs is the zero-dependency observability layer of the
// bootstrapped analysis: phase/cluster tracing in the Chrome trace event
// format (chrome://tracing, Perfetto) and a lock-cheap metrics registry
// exported via expvar and a Prometheus-style text endpoint.
//
// Everything is nil-safe: a nil *Tracer or *Metrics (and the nil *Span,
// *Counter, *Gauge, *Histogram values they hand out) turns every method
// into a cheap nil-check no-op, so instrumented code runs at full speed
// when observability is disabled — no build tags, no indirection.
package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Event is one Chrome trace event. Span events use ph "X" (complete
// events: a start timestamp plus a duration); thread-name metadata uses
// ph "M". Timestamps and durations are microseconds, as the format
// requires.
type Event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Trace is the Chrome trace "JSON object format" envelope — what
// chrome://tracing and Perfetto load directly.
type Trace struct {
	TraceEvents     []Event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit,omitempty"`
}

// tracePID is the constant pid of every event: one process per trace.
const tracePID = 1

// Track (tid) layout shared by every instrumented package, so one run's
// spans land on stable, named Perfetto tracks:
//
//	0        the main goroutine's phase spans
//	1        the concurrent fallback build (pipelined cascade)
//	100 + w  FSCS scheduler worker w (cluster, attempt and cache spans)
//	200 + w  clustering-stream worker w (partition refinement spans)
//	300 + i  alias-daemon query lane i (per-query spans, hashed over lanes)
//	400 + s  distributed shard s (the coordinator's claim/steal/lease
//	         spans for the workers serving that shard)
//	500 + i  checker pass lane i (one per concurrently running
//	         static-analysis pass)
const (
	TIDMain     = 0
	TIDFallback = 1

	tidWorkerBase    = 100
	tidClustererBase = 200
	tidQueryBase     = 300
	tidShardBase     = 400
	tidCheckBase     = 500
)

// WorkerTID returns the track of FSCS scheduler worker w.
func WorkerTID(w int) int { return tidWorkerBase + w }

// ClustererTID returns the track of clustering-stream worker w.
func ClustererTID(w int) int { return tidClustererBase + w }

// ShardTID returns the coordinator-side track of distributed shard s.
func ShardTID(s int) int { return tidShardBase + s }

// QueryTID returns the track of alias-daemon query lane i. Lanes keep
// concurrent per-query spans on a bounded set of named tracks instead of
// one goroutine-per-track explosion.
func QueryTID(i int) int { return tidQueryBase + i }

// CheckTID returns the track of checker pass lane i: each concurrently
// running static-analysis pass gets its own named track.
func CheckTID(i int) int { return tidCheckBase + i }

// Tracer collects spans from many goroutines. Export order is canonical:
// events sort by (tid, per-tid arrival), so any single-threaded track —
// and therefore a whole Workers=1 run — produces a byte-identical stream
// up to timestamps, run after run.
type Tracer struct {
	mu     sync.Mutex
	epoch  time.Time
	events []Event
	seqs   []int // per-tid arrival index, parallel to events
	tidSeq map[int]int
	names  map[int]string // tid -> thread name
}

// NewTracer returns a tracer whose timestamps are relative to now.
func NewTracer() *Tracer {
	return &Tracer{
		epoch:  time.Now(),
		tidSeq: map[int]int{},
		names:  map[int]string{},
	}
}

// Span is one in-flight "X" event. Arg and End on a nil span are no-ops,
// so callers never guard on tracing being enabled.
type Span struct {
	t     *Tracer
	cat   string
	name  string
	tid   int
	start time.Time
	args  map[string]any
}

// Start opens a span on the given track (tid). The span is recorded when
// End is called.
func (t *Tracer) Start(cat, name string, tid int) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, cat: cat, name: name, tid: tid, start: time.Now()}
}

// Arg attaches one key to the span's args, returning the span for
// chaining. Values should be JSON-primitive (string, int, bool, float)
// so traces round-trip losslessly.
func (s *Span) Arg(key string, v any) *Span {
	if s == nil {
		return nil
	}
	if s.args == nil {
		s.args = map[string]any{}
	}
	s.args[key] = v
	return s
}

// End records the span.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Now()
	s.t.record(Event{
		Name: s.name,
		Cat:  s.cat,
		Ph:   "X",
		TS:   micros(s.start.Sub(s.t.epoch)),
		Dur:  micros(end.Sub(s.start)),
		PID:  tracePID,
		TID:  s.tid,
		Args: s.args,
	})
}

// Instant records a zero-duration instant event ("i") on a track.
func (t *Tracer) Instant(cat, name string, tid int, args map[string]any) {
	if t == nil {
		return
	}
	t.record(Event{
		Name: name,
		Cat:  cat,
		Ph:   "i",
		TS:   micros(time.Since(t.epoch)),
		PID:  tracePID,
		TID:  tid,
		Args: args,
	})
}

// NameThread labels a track with a human-readable name (a "thread_name"
// metadata event in the exported stream). Naming a track twice keeps the
// last name.
func (t *Tracer) NameThread(tid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.names[tid] = name
	t.mu.Unlock()
}

func (t *Tracer) record(ev Event) {
	t.mu.Lock()
	seq := t.tidSeq[ev.TID]
	t.tidSeq[ev.TID] = seq + 1
	t.events = append(t.events, ev)
	t.seqs = append(t.seqs, seq)
	t.mu.Unlock()
}

func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// Events returns the collected events in canonical order: thread-name
// metadata first, then spans sorted by (tid, arrival-within-tid). Safe to
// call while spans are still being recorded; in-flight spans are absent.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()

	type ordered struct {
		ev  Event
		seq int
	}
	evs := make([]ordered, len(t.events))
	for i, ev := range t.events {
		evs[i] = ordered{ev: ev, seq: t.seqs[i]}
	}
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].ev.TID != evs[j].ev.TID {
			return evs[i].ev.TID < evs[j].ev.TID
		}
		return evs[i].seq < evs[j].seq
	})

	tids := make([]int, 0, len(t.names))
	for tid := range t.names {
		tids = append(tids, tid)
	}
	sort.Ints(tids)

	out := make([]Event, 0, len(tids)+len(evs))
	for _, tid := range tids {
		out = append(out, Event{
			Name: "thread_name",
			Ph:   "M",
			PID:  tracePID,
			TID:  tid,
			Args: map[string]any{"name": t.names[tid]},
		})
	}
	for _, o := range evs {
		out = append(out, o.ev)
	}
	return out
}

// Trace returns the Chrome trace envelope for the collected events.
func (t *Tracer) Trace() Trace {
	return Trace{TraceEvents: t.Events(), DisplayTimeUnit: "ms"}
}

// WriteJSON writes the trace as indented Chrome trace JSON — the payload
// of the -trace flag, loadable by chrome://tracing and Perfetto.
func (t *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t.Trace())
}
