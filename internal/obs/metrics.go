package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Metrics is a registry of named counters, gauges and histograms. The
// registry itself is locked only at registration and export time; the
// instruments it hands out are single atomic words on the update path,
// so instrumented code pays one atomic add per event — and nothing at
// all when the registry is nil (every method no-ops).
type Metrics struct {
	mu     sync.Mutex
	order  []string
	byName map[string]*metricEntry
}

type metricEntry struct {
	name, help, typ string // typ: "counter", "gauge" or "histogram"
	counter         *Counter
	gauge           *Gauge
	intFn           func() int64   // CounterFunc
	floatFn         func() float64 // GaugeFunc
	hist            *Histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{byName: map[string]*metricEntry{}}
}

// Counter is a monotone int64. All methods are nil-safe.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float64. All methods are nil-safe.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into cumulative-exported buckets with
// fixed upper bounds, plus a running sum — the Prometheus histogram
// shape. All methods are nil-safe.
type Histogram struct {
	bounds  []float64      // ascending upper bounds; +Inf is implicit
	counts  []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	sumBits atomic.Uint64
	count   atomic.Int64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// SecondsBuckets are the default histogram bounds for durations in
// seconds: per-cluster solves range from microseconds (tiny clusters) to
// whole seconds (degradation-ladder timeouts).
var SecondsBuckets = []float64{
	100e-6, 250e-6, 500e-6, 1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3,
	100e-3, 250e-3, 500e-3, 1, 2.5, 5, 10,
}

// SizeBuckets are the default histogram bounds for cluster sizes in
// pointers — powers of two around the paper's Andersen threshold (60).
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096}

// register returns the entry under name, creating it with mk on first
// use. Re-registering a name with a different metric type panics: two
// call sites disagreeing on what a name means is a programming error
// worth failing loudly on.
func (m *Metrics) register(name, help, typ string, mk func(*metricEntry)) *metricEntry {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.byName[name]; ok {
		if e.typ != typ {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, typ, e.typ))
		}
		return e
	}
	e := &metricEntry{name: name, help: help, typ: typ}
	mk(e)
	m.byName[name] = e
	m.order = append(m.order, name)
	return e
}

// Counter returns (registering on first use) the named counter. A nil
// registry returns a nil counter, whose methods no-op.
func (m *Metrics) Counter(name, help string) *Counter {
	if m == nil {
		return nil
	}
	return m.register(name, help, "counter", func(e *metricEntry) {
		e.counter = &Counter{}
	}).counter
}

// Gauge returns (registering on first use) the named gauge.
func (m *Metrics) Gauge(name, help string) *Gauge {
	if m == nil {
		return nil
	}
	return m.register(name, help, "gauge", func(e *metricEntry) {
		e.gauge = &Gauge{}
	}).gauge
}

// CounterFunc registers a counter whose value is read from f at export
// time — for sources that already keep their own monotone counters
// (cache stats, solver stats).
func (m *Metrics) CounterFunc(name, help string, f func() int64) {
	if m == nil {
		return
	}
	m.register(name, help, "counter", func(e *metricEntry) { e.intFn = f })
}

// GaugeFunc registers a gauge whose value is read from f at export time.
func (m *Metrics) GaugeFunc(name, help string, f func() float64) {
	if m == nil {
		return
	}
	m.register(name, help, "gauge", func(e *metricEntry) { e.floatFn = f })
}

// Histogram returns (registering on first use) the named histogram with
// the given ascending bucket upper bounds (nil selects SecondsBuckets).
func (m *Metrics) Histogram(name, help string, bounds []float64) *Histogram {
	if m == nil {
		return nil
	}
	if bounds == nil {
		bounds = SecondsBuckets
	}
	return m.register(name, help, "histogram", func(e *metricEntry) {
		e.hist = &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	}).hist
}

func (e *metricEntry) value() float64 {
	switch {
	case e.counter != nil:
		return float64(e.counter.Value())
	case e.gauge != nil:
		return e.gauge.Value()
	case e.intFn != nil:
		return float64(e.intFn())
	case e.floatFn != nil:
		return e.floatFn()
	}
	return 0
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus writes every registered metric in the Prometheus text
// exposition format (registration order, one # HELP/# TYPE pair each).
func (m *Metrics) WritePrometheus(w io.Writer) error {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	entries := make([]*metricEntry, len(m.order))
	for i, name := range m.order {
		entries[i] = m.byName[name]
	}
	m.mu.Unlock()

	for _, e := range entries {
		if e.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", e.name, e.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", e.name, e.typ); err != nil {
			return err
		}
		if e.hist != nil {
			cum := int64(0)
			for i, b := range e.hist.bounds {
				cum += e.hist.counts[i].Load()
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", e.name, formatFloat(b), cum); err != nil {
					return err
				}
			}
			cum += e.hist.counts[len(e.hist.bounds)].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
				e.name, cum, e.name, formatFloat(e.hist.Sum()), e.name, e.hist.Count()); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", e.name, formatFloat(e.value())); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the registry in the Prometheus text format — mount it
// on /metrics.
func (m *Metrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = m.WritePrometheus(w)
	})
}

// PublishExpvar exposes every currently registered metric through the
// process-global expvar registry under prefix+name (histograms as
// {count, sum} pairs). Publishing is idempotent per name — expvar
// forbids re-publication, and re-running an analysis must not panic.
func (m *Metrics) PublishExpvar(prefix string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	entries := make([]*metricEntry, len(m.order))
	for i, name := range m.order {
		entries[i] = m.byName[name]
	}
	m.mu.Unlock()

	for _, e := range entries {
		name := prefix + e.name
		if expvar.Get(name) != nil {
			continue
		}
		e := e
		if e.hist != nil {
			expvar.Publish(name, expvar.Func(func() any {
				return map[string]any{"count": e.hist.Count(), "sum": e.hist.Sum()}
			}))
			continue
		}
		expvar.Publish(name, expvar.Func(func() any { return e.value() }))
	}
}
