package obs

import (
	"expvar"
	"net/http"
	"net/http/pprof"
)

// ServeMux returns the debug mux the -metrics-addr flag serves:
//
//	/metrics      Prometheus text exposition of this registry
//	/debug/vars   expvar JSON (everything published via PublishExpvar)
//	/debug/pprof  the standard runtime profiles
//
// The pprof handlers are mounted explicitly instead of importing
// net/http/pprof for its DefaultServeMux side effect, so embedding this
// code never exposes profiles on a mux the caller didn't ask for.
func (m *Metrics) ServeMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", m.Handler())
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		// Publish-on-scrape: metrics register lazily during the run, so
		// sync the expvar view before serving it (idempotent per name).
		m.PublishExpvar("")
		expvar.Handler().ServeHTTP(w, r)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
