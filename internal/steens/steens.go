// Package steens implements Steensgaard's unification-based, flow- and
// context-insensitive points-to analysis (POPL 1996) — the first,
// almost-linear-time stage of the paper's bootstrapping cascade.
//
// The analysis maintains equivalence class representatives (ECRs) over
// abstract memory objects with a union-find forest. Each ECR has at most
// one points-to target ECR; processing an assignment unifies the targets of
// both sides, which is what makes the analysis bidirectional (and therefore
// less precise but highly scalable). The resulting points-to sets are
// equivalence classes — the paper's Steensgaard partitions — and the graph
// over partitions (the Steensgaard points-to hierarchy) is made acyclic by
// collapsing strongly connected partitions, which preserves soundness and
// matches the paper's Important Remark that the hierarchy is a DAG with a
// well-defined depth. Self points-to loops (the `*p = p` cyclic case) are
// kept queryable via SelfLoop but excluded from the hierarchy.
//
// Function pointers are handled with signature payloads on ECRs: the ECR of
// a function value carries (params, ret); an indirect call unifies the
// signature of whatever the pointer may target with the call's arguments
// and result, so targets resolve soundly even before devirtualization.
package steens

import (
	"fmt"
	"sort"
	"strings"

	"bootstrap/internal/ir"
	"bootstrap/internal/obs"
	"bootstrap/internal/uf"
)

// Option configures Analyze.
type Option func(*config)

type config struct {
	precise bool
}

// Precise enables the oversharing-resistant mode (after Kuderski et al.,
// "Unification-based Pointer Analysis without Oversharing"): top-level
// copies into *write-only sinks* — variables that are copy destinations
// but are never read, dereferenced, address-taken, compared or passed —
// are not unified eagerly. A deferred copy `x = y` cannot influence any
// other flow (nothing ever reads x), so unifying pt(x) with pt(y) only
// overshares: it fuses every community that writes into x through the
// shared context node. Instead the deferral is recorded and, after the
// fixpoint, x receives an overlay membership in the partition of every
// deferred source. Because a sink is never read, sinks cannot chain
// (x = y marks y as read), so the single-level overlay is complete.
//
// The result is a *disjunctive* partition cover (a variable may belong
// to several partitions), exactly the overlap semantics the downstream
// Andersen clusters already have (Theorem 7): SamePartition,
// PointsToVars, Targets, PartitionOf and Partitions are all
// membership-aware. ContentClass and LocClass keep their base meaning;
// that is sound for every consumer because the `LocClass(o) ==
// ContentClass(q)` transfer filters are only applied to dereferenced or
// read variables, which are never sinks.
func Precise() Option {
	return func(c *config) { c.precise = true }
}

// signature is the lambda payload of an ECR holding function values.
type signature struct {
	params []int // ECRs of formal parameters
	ret    int   // ECR of the return variable, or -1
}

// Analysis is the result of running Steensgaard's analysis on a program.
//
// A variable's Steensgaard partition is the equivalence class of its
// *content* — two pointers are in the same partition exactly when the
// analysis unified what they may hold. This is the paper's notion: for
// Figure 3 (x=&a; y=&b; p=x; *x=*y) the partitions are {p,x}, {y} and
// {a,b}. A partition points to the partition of the objects its members
// may reference, giving the points-to hierarchy.
type Analysis struct {
	prog   *ir.Program
	forest *uf.Forest
	target []int32 // ECR -> points-to target ECR, or -1
	sig    map[int]*signature

	// Derived, partition-level structures (built by finish).
	rep       []int32 // var -> canonical partition id (smallest member var)
	members   map[int][]ir.VarID
	locVars   map[int][]ir.VarID // location-class rep -> program vars unified as locations
	succ      map[int]int        // partition -> pointee partition (self-loops excluded)
	selfLoop  map[int]bool
	depth     map[int]int
	partOrder []int   // partition ids sorted
	ptClass   []int32 // var -> content-class rep (frozen for concurrent reads)
	locClass  []int32 // var -> location-class rep (frozen for concurrent reads)

	unions int // ECR unifications performed (the analysis' unit of work)

	// Precise (oversharing-resistant) mode state; see Precise.
	precise  bool
	sink     []bool                  // var -> deferred write-only sink
	flowSrcs map[ir.VarID][]ir.VarID // sink -> deferred copy sources
	deferred int                     // copies deferred instead of unified
	memb     map[ir.VarID][]int32    // sink -> sorted canonical partition ids
	sinkCls  map[ir.VarID][]int      // sink -> extra content classes (sorted)
	sinkPT   map[ir.VarID][]ir.VarID // sink -> merged PointsToVars
	sinkPart map[ir.VarID][]ir.VarID // sink -> merged PartitionOf
}

// Analyze runs the analysis over every statement of p.
func Analyze(p *ir.Program, opts ...Option) *Analysis {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	a := &Analysis{
		prog:    p,
		forest:  uf.New(p.NumVars()),
		sig:     map[int]*signature{},
		precise: cfg.precise,
	}
	if a.precise {
		a.findSinks()
	}
	a.target = make([]int32, p.NumVars())
	for i := range a.target {
		a.target[i] = -1
	}
	// Attach signatures to function-value ECRs so indirect calls unify with
	// the right formals/returns.
	for fid, fv := range p.FuncValue {
		f := p.Func(fid)
		s := &signature{ret: -1}
		for _, prm := range f.Params {
			s.params = append(s.params, int(prm))
		}
		if f.Ret != ir.NoVar {
			s.ret = int(f.Ret)
		}
		a.setSig(a.find(int(fv)), s)
	}
	for _, n := range p.Nodes {
		a.stmt(n.Stmt)
	}
	a.finish()
	return a
}

// findSinks marks the write-only sinks: variables that appear as a copy
// destination but are never used in any value-consuming position — read
// as a copy/store/assume source, dereferenced as a load source or store
// destination, address-taken, called through, passed as an argument, or
// touched. Only such variables may have their incoming copies deferred.
func (a *Analysis) findSinks() {
	nv := a.prog.NumVars()
	used := make([]bool, nv)
	copyDst := make([]bool, nv)
	mark := func(v ir.VarID) {
		if v != ir.NoVar {
			used[v] = true
		}
	}
	for _, n := range a.prog.Nodes {
		st := n.Stmt
		switch st.Op {
		case ir.OpCopy:
			mark(st.Src)
			if st.Dst != ir.NoVar && st.Dst != st.Src {
				copyDst[st.Dst] = true
			}
		case ir.OpAddr:
			mark(st.Src) // address taken: contents observable via aliases
		case ir.OpLoad:
			mark(st.Src)
		case ir.OpStore:
			mark(st.Dst)
			mark(st.Src)
		case ir.OpCall:
			mark(st.FPtr)
			for _, arg := range st.Args {
				mark(arg)
			}
		case ir.OpAssumeEq, ir.OpAssumeNeq:
			mark(st.Dst)
			mark(st.Src)
		case ir.OpTouch:
			mark(st.Dst)
			mark(st.Src)
		}
	}
	// Function values carry signature payloads; keep them eager.
	for _, fv := range a.prog.FuncValue {
		used[fv] = true
	}
	a.sink = make([]bool, nv)
	for v := 0; v < nv; v++ {
		a.sink[v] = copyDst[v] && !used[v]
	}
	a.flowSrcs = map[ir.VarID][]ir.VarID{}
}

func (a *Analysis) find(e int) int { return a.forest.Find(e) }

// newECR creates a fresh abstract location.
func (a *Analysis) newECR() int {
	id := a.forest.Add()
	a.target = append(a.target, -1)
	return id
}

// pt returns (creating lazily) the points-to target ECR of e.
func (a *Analysis) pt(e int) int {
	r := a.find(e)
	if a.target[r] == -1 {
		a.target[r] = int32(a.newECR())
	}
	return a.find(int(a.target[r]))
}

func (a *Analysis) setSig(r int, s *signature) {
	if old := a.sig[r]; old != nil {
		a.mergeSigs(old, s)
		return
	}
	a.sig[r] = s
}

func (a *Analysis) mergeSigs(s1, s2 *signature) {
	n := len(s1.params)
	if len(s2.params) < n {
		n = len(s2.params)
	}
	for i := 0; i < n; i++ {
		a.join(s1.params[i], s2.params[i])
	}
	if s1.ret != -1 && s2.ret != -1 {
		a.join(s1.ret, s2.ret)
	} else if s1.ret == -1 {
		s1.ret = s2.ret
	}
	if len(s2.params) > len(s1.params) {
		s1.params = append(s1.params, s2.params[len(s1.params):]...)
	}
}

// join unifies the ECRs of e1 and e2, recursively unifying their targets
// and signatures.
func (a *Analysis) join(e1, e2 int) {
	type pair struct{ x, y int }
	work := []pair{{e1, e2}}
	for len(work) > 0 {
		p := work[len(work)-1]
		work = work[:len(work)-1]
		r1, r2 := a.find(p.x), a.find(p.y)
		if r1 == r2 {
			continue
		}
		t1, t2 := a.target[r1], a.target[r2]
		s1, s2 := a.sig[r1], a.sig[r2]
		delete(a.sig, r1)
		delete(a.sig, r2)
		a.unions++
		r := a.forest.Union(r1, r2)
		switch {
		case t1 == -1:
			a.target[r] = t2
		case t2 == -1:
			a.target[r] = t1
		default:
			a.target[r] = t1
			work = append(work, pair{int(t1), int(t2)})
		}
		switch {
		case s1 == nil:
			if s2 != nil {
				a.sig[r] = s2
			}
		case s2 == nil:
			a.sig[r] = s1
		default:
			a.sig[r] = s1
			a.mergeSigs(s1, s2)
		}
	}
}

func (a *Analysis) stmt(s ir.Stmt) {
	switch s.Op {
	case ir.OpCopy:
		if a.precise && s.Dst != s.Src && a.sink[s.Dst] {
			// Deferred: x is a write-only sink, so the unification
			// would only overshare. Record the flow for the overlay.
			a.flowSrcs[s.Dst] = append(a.flowSrcs[s.Dst], s.Src)
			a.deferred++
			return
		}
		// x = y: unify pt(x) with pt(y) (bidirectional).
		a.join(a.pt(int(s.Dst)), a.pt(int(s.Src)))
	case ir.OpAddr:
		// x = &y: y joins the target of x.
		a.join(a.pt(int(s.Dst)), int(s.Src))
	case ir.OpLoad:
		// x = *y.
		a.join(a.pt(int(s.Dst)), a.pt(a.pt(int(s.Src))))
	case ir.OpStore:
		// *x = y.
		a.join(a.pt(a.pt(int(s.Dst))), a.pt(int(s.Src)))
	case ir.OpCall:
		if s.Callee != ir.NoFunc {
			return // direct calls are bound by explicit copy nodes
		}
		// Indirect call: unify the signature of the pointee of the
		// function pointer with the argument/result ECRs.
		fn := a.pt(int(s.FPtr))
		sg := a.sig[a.find(fn)]
		if sg == nil {
			sg = &signature{ret: -1}
			for range s.Args {
				sg.params = append(sg.params, a.newECR())
			}
			a.sig[a.find(fn)] = sg
		}
		for i, arg := range s.Args {
			if arg == ir.NoVar {
				continue
			}
			for len(sg.params) <= i {
				sg.params = append(sg.params, a.newECR())
			}
			// formal = actual.
			a.join(a.pt(sg.params[i]), a.pt(int(arg)))
			// Joins may have merged the signature object; re-fetch.
			if ns := a.sig[a.find(a.pt(int(s.FPtr)))]; ns != nil {
				sg = ns
			}
		}
		if s.Dst != ir.NoVar {
			if sg.ret == -1 {
				sg.ret = a.newECR()
			}
			a.join(a.pt(int(s.Dst)), a.pt(sg.ret))
		}
	}
}

// finish derives the partition-level structures: partitions grouped by
// content class, the points-to DAG (with cycle collapsing), self-loop
// flags and depths.
func (a *Analysis) finish() {
	nv := a.prog.NumVars()
	// Materialize every variable's content class.
	for v := 0; v < nv; v++ {
		a.pt(v)
	}
	for a.build() {
	}
	// Freeze content classes so queries after Analyze are read-only and
	// safe for concurrent use by per-cluster workers.
	a.ptClass = make([]int32, nv)
	a.locClass = make([]int32, nv)
	for v := 0; v < nv; v++ {
		a.ptClass[v] = int32(a.pt(v))
		a.locClass[v] = int32(a.find(v))
	}
	// Depth: longest path leading to a node along succ edges. Out-degree
	// is at most one and the graph is acyclic, so iterating to fixpoint
	// over sorted nodes terminates within the longest-chain bound.
	a.depth = map[int]int{}
	for changed := true; changed; {
		changed = false
		for _, c := range a.partOrder {
			t, ok := a.succ[c]
			if !ok {
				continue
			}
			if d := a.depth[c] + 1; d > a.depth[t] {
				a.depth[t] = d
				changed = true
			}
		}
	}
	if a.precise {
		a.overlay()
	}
}

// overlay materializes the precise mode's disjunctive cover: every sink
// with deferred copies from outside its base partition becomes a member
// of each source's partition too, and its points-to set is the union
// over its memberships. Runs once, after the unification fixpoint and
// the class freeze, so all query structures stay read-only afterwards.
func (a *Analysis) overlay() {
	a.memb = map[ir.VarID][]int32{}
	a.sinkCls = map[ir.VarID][]int{}
	a.sinkPT = map[ir.VarID][]ir.VarID{}
	a.sinkPart = map[ir.VarID][]ir.VarID{}
	for v, srcs := range a.flowSrcs {
		ids := map[int32]bool{a.rep[v]: true}
		for _, s := range srcs {
			ids[a.rep[s]] = true
		}
		if len(ids) == 1 {
			continue // every source already shares v's partition
		}
		memb := make([]int32, 0, len(ids))
		for id := range ids {
			memb = append(memb, id)
		}
		sort.Slice(memb, func(i, j int) bool { return memb[i] < memb[j] })
		a.memb[v] = memb
		cls := make([]int, 0, len(memb)-1)
		for _, id := range memb {
			if id != a.rep[v] {
				cls = append(cls, int(a.ptClass[id]))
			}
		}
		sort.Ints(cls)
		a.sinkCls[v] = cls
	}
	// Expand member lists: each sink joins its extra partitions. Done
	// after all memberships are known so merged views see every sink.
	for v, memb := range a.memb {
		for _, id := range memb {
			if id == a.rep[v] {
				continue
			}
			m := a.members[int(id)]
			i := sort.Search(len(m), func(i int) bool { return m[i] >= v })
			m = append(m, 0)
			copy(m[i+1:], m[i:])
			m[i] = v
			a.members[int(id)] = m
		}
	}
	for v, memb := range a.memb {
		var pt, part []ir.VarID
		for _, id := range memb {
			pt = append(pt, a.locVars[int(a.ptClass[id])]...)
			part = append(part, a.members[int(id)]...)
		}
		a.sinkPT[v] = sortedUnique(pt)
		a.sinkPart[v] = sortedUnique(part)
	}
}

func sortedUnique(vs []ir.VarID) []ir.VarID {
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	out := vs[:0]
	for i, v := range vs {
		if i == 0 || v != vs[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// build computes partitions and the partition graph; if the graph contains
// a multi-node cycle it collapses one cycle (by unifying the content
// classes involved) and reports true so the caller rebuilds. Cycles in the
// points-to *relation* within one partition (the paper's `*p = p` case)
// remain as self-loops and are not collapsed, matching the Important
// Remark that the hierarchy has edges only between distinct nodes.
func (a *Analysis) build() bool {
	nv := a.prog.NumVars()
	// Partition key: the content class find(pt(v)). Canonical id: the
	// smallest member variable.
	smallest := map[int]int{} // content-class rep -> smallest member var
	for v := 0; v < nv; v++ {
		k := a.pt(v)
		if cur, ok := smallest[k]; !ok || v < cur {
			smallest[k] = v
		}
	}
	a.rep = make([]int32, nv)
	a.members = map[int][]ir.VarID{}
	a.locVars = map[int][]ir.VarID{}
	for v := 0; v < nv; v++ {
		c := smallest[a.pt(v)]
		a.rep[v] = int32(c)
		a.members[c] = append(a.members[c], ir.VarID(v))
		a.locVars[a.find(v)] = append(a.locVars[a.find(v)], ir.VarID(v))
	}
	// Partition edges: partition P (content class c) points to the
	// partition of the program variables unified as locations in c. All
	// such variables share one partition because unified locations have
	// unified contents.
	a.succ = map[int]int{}
	a.selfLoop = map[int]bool{}
	a.partOrder = a.partOrder[:0]
	for c := range a.members {
		a.partOrder = append(a.partOrder, c)
	}
	sort.Ints(a.partOrder)
	for _, c := range a.partOrder {
		cls := a.pt(c) // the content class this partition's members share
		objs := a.locVars[cls]
		if len(objs) == 0 {
			continue // the pointed-to locations are not program variables
		}
		tc := int(a.rep[objs[0]])
		if tc == c {
			a.selfLoop[c] = true
			continue
		}
		a.succ[c] = tc
	}
	// Detect one multi-node cycle by walking target chains (out-degree 1).
	color := map[int]uint8{} // 1 = on current chain, 2 = done
	for _, start := range a.partOrder {
		if color[start] != 0 {
			continue
		}
		var chain []int
		cur := start
		for {
			if color[cur] == 1 {
				i := 0
				for chain[i] != cur {
					i++
				}
				// Unify the content classes of the cycle's partitions.
				for j := i + 1; j < len(chain); j++ {
					a.join(a.pt(chain[i]), a.pt(chain[j]))
				}
				return true
			}
			if color[cur] == 2 {
				break
			}
			color[cur] = 1
			chain = append(chain, cur)
			t, ok := a.succ[cur]
			if !ok {
				break
			}
			cur = t
		}
		for _, c := range chain {
			color[c] = 2
		}
	}
	return false
}

// Rep returns the canonical partition id of v's Steensgaard partition
// (the smallest VarID in the partition).
func (a *Analysis) Rep(v ir.VarID) int { return int(a.rep[v]) }

// SamePartition reports whether p and q may share a partition — the
// necessary condition for them to alias. In precise mode a sink belongs
// to several partitions; the check is membership intersection.
func (a *Analysis) SamePartition(p, q ir.VarID) bool {
	if a.rep[p] == a.rep[q] {
		return true
	}
	if a.memb == nil {
		return false
	}
	mp, mq := a.memb[p], a.memb[q]
	switch {
	case mp == nil && mq == nil:
		return false
	case mp == nil:
		return containsID(mq, a.rep[p])
	case mq == nil:
		return containsID(mp, a.rep[q])
	}
	for i, j := 0, 0; i < len(mp) && j < len(mq); {
		switch {
		case mp[i] == mq[j]:
			return true
		case mp[i] < mq[j]:
			i++
		default:
			j++
		}
	}
	return false
}

func containsID(ids []int32, id int32) bool {
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
	return i < len(ids) && ids[i] == id
}

// PartitionOf returns the members of v's partition in increasing order.
// For a precise-mode sink this is the union over its memberships.
func (a *Analysis) PartitionOf(v ir.VarID) []ir.VarID {
	if a.sinkPart != nil {
		if m := a.sinkPart[v]; m != nil {
			return m
		}
	}
	return a.members[int(a.rep[v])]
}

// Partitions returns all partitions, ordered by canonical id; each
// partition's members are in increasing order.
func (a *Analysis) Partitions() [][]ir.VarID {
	out := make([][]ir.VarID, 0, len(a.partOrder))
	for _, c := range a.partOrder {
		out = append(out, a.members[c])
	}
	return out
}

// PointsToPart returns the partition id that partition c points to, if any.
// Self-loops are excluded (see SelfLoop).
func (a *Analysis) PointsToPart(c int) (int, bool) {
	t, ok := a.succ[c]
	return t, ok
}

// SelfLoop reports whether partition c points into itself — the paper's
// "cyclic case" where q and *q share a partition.
func (a *Analysis) SelfLoop(c int) bool { return a.selfLoop[c] }

// Depth returns the Steensgaard depth of v: the length of the longest path
// in the points-to hierarchy leading to v's partition.
func (a *Analysis) Depth(v ir.VarID) int { return a.depth[int(a.rep[v])] }

// PartDepth returns the depth of partition c.
func (a *Analysis) PartDepth(c int) int { return a.depth[c] }

// Higher reports whether q > p: q's partition reaches p's partition along
// points-to edges (q is a pointer transitively pointing at p's level).
func (a *Analysis) Higher(q, p ir.VarID) bool {
	cq, cp := int(a.rep[q]), int(a.rep[p])
	if cq == cp {
		return false
	}
	for {
		t, ok := a.succ[cq]
		if !ok {
			return false
		}
		if t == cp {
			return true
		}
		cq = t
	}
}

// PointsToVars returns the program variables p may point to under
// Steensgaard's analysis: the variables unified, as locations, into p's
// content class. It may be empty (p points only at synthetic locations).
// For a precise-mode sink it is the union over the sink's memberships.
func (a *Analysis) PointsToVars(p ir.VarID) []ir.VarID {
	if a.sinkPT != nil {
		if pt, ok := a.sinkPT[p]; ok {
			return pt
		}
	}
	return a.locVars[int(a.ptClass[p])]
}

// SinkClasses returns the extra content classes a precise-mode sink's
// contents may draw from, sorted ascending — nil for non-sinks and
// outside precise mode. Cache fingerprints must include them: two
// structurally identical slices can differ in global sink status, and
// membership-aware queries answer differently on them.
func (a *Analysis) SinkClasses(v ir.VarID) []int {
	if a.sinkCls == nil {
		return nil
	}
	return a.sinkCls[v]
}

// ContentClass returns an opaque id of v's unified content class. Two
// variables share a Steensgaard partition exactly when their content
// classes are equal, and pts(v) is the location class equal to
// ContentClass(v).
func (a *Analysis) ContentClass(v ir.VarID) int { return int(a.ptClass[v]) }

// LocClass returns an opaque id of v's location class: the unification
// class of v as a memory location. o ∈ pts(q) holds exactly when
// LocClass(o) == ContentClass(q).
func (a *Analysis) LocClass(v ir.VarID) int { return int(a.locClass[v]) }

// Targets resolves the functions a function pointer may call: the function
// values in fptr's points-to partition. It powers devirtualization.
func (a *Analysis) Targets(fptr ir.VarID) []ir.FuncID {
	var out []ir.FuncID
	for _, v := range a.PointsToVars(fptr) {
		if a.prog.Var(v).Kind == ir.KindFunc {
			out = append(out, a.prog.Var(v).Fn)
		}
	}
	return out
}

// Dot renders the Steensgaard points-to hierarchy in GraphViz DOT format:
// one node per partition (labelled with up to maxLabel member names),
// solid edges for the points-to hierarchy, and a dashed self-arc for the
// cyclic (self-loop) partitions.
func (a *Analysis) Dot(maxLabel int) string {
	if maxLabel <= 0 {
		maxLabel = 6
	}
	var b strings.Builder
	b.WriteString("digraph steensgaard {\n")
	b.WriteString("\trankdir=TB;\n\tnode [shape=box, fontname=\"monospace\", fontsize=10];\n")
	for _, c := range a.partOrder {
		members := a.members[c]
		names := make([]string, 0, maxLabel)
		for i, m := range members {
			if i == maxLabel {
				names = append(names, fmt.Sprintf("… +%d", len(members)-maxLabel))
				break
			}
			names = append(names, a.prog.VarName(m))
		}
		fmt.Fprintf(&b, "\tp%d [label=\"{%s}\\ndepth %d\"];\n", c, strings.Join(names, ", "), a.depth[c])
		if t, ok := a.succ[c]; ok {
			fmt.Fprintf(&b, "\tp%d -> p%d;\n", c, t)
		}
		if a.selfLoop[c] {
			fmt.Fprintf(&b, "\tp%d -> p%d [style=dashed];\n", c, c)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// MaxPartitionSize returns the cardinality of the largest partition —
// the paper's "Max" column for Steensgaard clustering.
func (a *Analysis) MaxPartitionSize() int {
	max := 0
	for _, m := range a.members {
		if len(m) > max {
			max = len(m)
		}
	}
	return max
}

// NumPartitions returns the number of partitions.
func (a *Analysis) NumPartitions() int { return len(a.members) }

// Stats reports the unification work done and the shape of the result.
type Stats struct {
	Unions       int // ECR unifications performed
	Partitions   int
	MaxPartition int
	Deferred     int // copies deferred by precise mode (0 otherwise)
}

// Stats returns the analysis' work and shape counters.
func (a *Analysis) Stats() Stats {
	return Stats{
		Unions:       a.unions,
		Partitions:   a.NumPartitions(),
		MaxPartition: a.MaxPartitionSize(),
		Deferred:     a.deferred,
	}
}

// Record publishes the stats to a metrics registry (nil-safe no-op
// without one): unions as a counter, the cover shape as gauges.
func (a *Analysis) Record(m *obs.Metrics) {
	s := a.Stats()
	m.Counter("bootstrap_steens_unions_total",
		"ECR unifications performed by the Steensgaard stage").Add(int64(s.Unions))
	m.Gauge("bootstrap_steens_partitions",
		"Steensgaard partitions in the latest analyzed program").Set(float64(s.Partitions))
	m.Gauge("bootstrap_steens_max_partition",
		"largest Steensgaard partition in the latest analyzed program").Set(float64(s.MaxPartition))
	m.Counter("bootstrap_steens_deferred_copies_total",
		"copies deferred into sink overlays by the precise Steensgaard mode").Add(int64(s.Deferred))
}
