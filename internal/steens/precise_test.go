package steens_test

import (
	"math/rand"
	"testing"

	"bootstrap/internal/andersen"
	"bootstrap/internal/exact"
	"bootstrap/internal/frontend"
	"bootstrap/internal/ir"
	"bootstrap/internal/steens"
	"bootstrap/internal/synth"
)

// hubSrc is the oversharing pattern precise mode exists for: a
// write-only hub copied from every community. Baseline Steensgaard
// unifies x1, x2 and hub into one partition (and a with b); precise
// mode keeps the communities apart and gives hub overlay memberships.
const hubSrc = `
	int a, b;
	int *x1, *x2, *hub;
	void main() {
		x1 = &a;
		x2 = &b;
		hub = x1;
		hub = x2;
	}
`

func lower(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := frontend.LowerSource(src)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p
}

func vid(t *testing.T, p *ir.Program, name string) ir.VarID {
	t.Helper()
	id, ok := p.VarByName[name]
	if !ok {
		t.Fatalf("no variable %q", name)
	}
	return id
}

func TestPreciseShrinksHub(t *testing.T) {
	p := lower(t, hubSrc)
	base := steens.Analyze(p)
	prec := steens.Analyze(p, steens.Precise())

	if got, want := prec.Stats().Deferred, 2; got != want {
		t.Fatalf("deferred copies = %d, want %d", got, want)
	}
	if bm, pm := base.MaxPartitionSize(), prec.MaxPartitionSize(); pm >= bm {
		t.Errorf("max partition did not shrink: base %d, precise %d", bm, pm)
	}

	x1, x2, hub := vid(t, p, "x1"), vid(t, p, "x2"), vid(t, p, "hub")
	a, b := vid(t, p, "a"), vid(t, p, "b")
	if prec.SamePartition(x1, x2) {
		t.Error("precise mode still overshares: x1 and x2 share a partition")
	}
	if !prec.SamePartition(x1, hub) || !prec.SamePartition(x2, hub) {
		t.Error("hub lost membership in a source partition")
	}
	pt := map[ir.VarID]bool{}
	for _, o := range prec.PointsToVars(hub) {
		pt[o] = true
	}
	if !pt[a] || !pt[b] {
		t.Errorf("PointsToVars(hub) = %v, want both a and b", prec.PointsToVars(hub))
	}
	// The merged partition view contains every may-alias of the hub.
	members := map[ir.VarID]bool{}
	for _, m := range prec.PartitionOf(hub) {
		members[m] = true
	}
	if !members[x1] || !members[x2] {
		t.Errorf("PartitionOf(hub) = %v, want x1 and x2", prec.PartitionOf(hub))
	}
	if prec.SinkClasses(hub) == nil {
		t.Error("SinkClasses(hub) = nil, want the overlay classes")
	}
	if base.SinkClasses(hub) != nil {
		t.Error("SinkClasses non-nil outside precise mode")
	}
}

// TestPreciseDefaultUnchanged pins the default mode: no deferrals, and
// partition structure identical with and without the (absent) option.
func TestPreciseDefaultUnchanged(t *testing.T) {
	p := lower(t, hubSrc)
	a := steens.Analyze(p)
	if a.Stats().Deferred != 0 {
		t.Fatalf("default mode deferred %d copies", a.Stats().Deferred)
	}
	x1, x2 := vid(t, p, "x1"), vid(t, p, "x2")
	if !a.SamePartition(x1, x2) {
		t.Error("baseline Steensgaard should unify x1 and x2 through the hub")
	}
}

// TestPreciseSoundRandom is the ISSUE's soundness differential: on
// random programs, every exact alias pair must share a precise-mode
// partition, every exact pointee must be in the precise-mode points-to
// set, and Andersen's sets (a sound refinement) must be contained in
// the precise-mode sets.
func TestPreciseSoundRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short mode")
	}
	cfg := synth.DefaultRandomConfig()
	cfg.Funcs = 3
	cfg.Recursion = true
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		src := synth.RandomSource(rng, cfg)
		p, err := frontend.LowerSource(src)
		if err != nil {
			t.Fatal(err)
		}
		prec := steens.Analyze(p, steens.Precise())
		an := andersen.Analyze(p)

		// Andersen ⊆ precise Steensgaard, pointwise.
		for v := 0; v < p.NumVars(); v++ {
			pv := ir.VarID(v)
			have := map[ir.VarID]bool{}
			for _, o := range prec.PointsToVars(pv) {
				have[o] = true
			}
			for _, o := range an.PointsTo(pv) {
				if !have[o] {
					t.Fatalf("seed %d: UNSOUND precise Steensgaard: Andersen has %s -> %s, precise misses it\nprogram:\n%s",
						seed, p.VarName(pv), p.VarName(o), src)
				}
			}
		}

		r := exact.Explore(p, exact.Options{})
		for _, n := range p.Nodes {
			loc := n.Loc
			for i := 0; i < p.NumVars(); i++ {
				pi := ir.VarID(i)
				for _, o := range r.PointsTo(pi, loc) {
					found := false
					for _, so := range prec.PointsToVars(pi) {
						if so == o {
							found = true
							break
						}
					}
					if !found {
						t.Fatalf("seed %d: UNSOUND precise Steensgaard: %s -> %s at L%d (exact) missed\nprogram:\n%s",
							seed, p.VarName(pi), p.VarName(o), loc, src)
					}
				}
				for j := i + 1; j < p.NumVars(); j++ {
					pj := ir.VarID(j)
					if r.MayAlias(pi, pj, loc) && !prec.SamePartition(pi, pj) {
						t.Fatalf("seed %d: UNSOUND precise partitioning: %s and %s alias at L%d but share no partition\nprogram:\n%s",
							seed, p.VarName(pi), p.VarName(pj), loc, src)
					}
				}
			}
		}
	}
}
