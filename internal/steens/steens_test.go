package steens

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"bootstrap/internal/frontend"
	"bootstrap/internal/ir"
	"bootstrap/internal/synth"
)

func analyze(t *testing.T, src string) (*ir.Program, *Analysis) {
	t.Helper()
	p, err := frontend.LowerSource(src)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p, Analyze(p)
}

func v(t *testing.T, p *ir.Program, name string) ir.VarID {
	t.Helper()
	id, ok := p.VarByName[name]
	if !ok {
		t.Fatalf("no variable %q", name)
	}
	return id
}

// partitionNames returns the names of the partition containing name,
// filtered to the given interesting variables.
func partitionNames(p *ir.Program, a *Analysis, member ir.VarID, interesting map[string]bool) []string {
	var out []string
	for _, m := range a.PartitionOf(member) {
		n := p.VarName(m)
		if interesting[n] {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

func names(set []string) map[string]bool {
	m := map[string]bool{}
	for _, s := range set {
		m[s] = true
	}
	return m
}

func equalStrs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFigure3Partitions reproduces the paper's Figure 3 example: for
//
//	1a: x = &a;  2a: y = &b;  3a: p = x;  4a: *x = *y;
//
// the Steensgaard partitions are {a,b}, {y} and {p,x}.
func TestFigure3Partitions(t *testing.T) {
	p, a := analyze(t, `
		int a, b;
		int *x, *y, *p;
		void main() {
			x = &a;
			y = &b;
			p = x;
			*x = *y;
		}
	`)
	interesting := names([]string{"a", "b", "x", "y", "p"})
	if got := partitionNames(p, a, v(t, p, "a"), interesting); !equalStrs(got, []string{"a", "b"}) {
		t.Errorf("partition of a = %v, want [a b]", got)
	}
	if got := partitionNames(p, a, v(t, p, "y"), interesting); !equalStrs(got, []string{"y"}) {
		t.Errorf("partition of y = %v, want [y]", got)
	}
	if got := partitionNames(p, a, v(t, p, "p"), interesting); !equalStrs(got, []string{"p", "x"}) {
		t.Errorf("partition of p = %v, want [p x]", got)
	}
	// Hierarchy: x is one level higher than a; x and a are not equal-depth.
	if !a.Higher(v(t, p, "x"), v(t, p, "a")) {
		t.Error("x should be higher than a in the hierarchy")
	}
	if a.Higher(v(t, p, "a"), v(t, p, "x")) {
		t.Error("a should not be higher than x")
	}
	if a.Depth(v(t, p, "x")) >= a.Depth(v(t, p, "a")) {
		t.Errorf("depth(x)=%d should be < depth(a)=%d", a.Depth(v(t, p, "x")), a.Depth(v(t, p, "a")))
	}
}

// TestFigure2Partitions reproduces Figure 2: p=&a; q=&b; r=&c; q=p; q=r
// unifies {a,b,c} as one pointee partition and {p,q,r} as one pointer
// partition (their contents are all unified).
func TestFigure2Partitions(t *testing.T) {
	p, a := analyze(t, `
		int a, b, c;
		int *p, *q, *r;
		void main() {
			p = &a;
			q = &b;
			r = &c;
			q = p;
			q = r;
		}
	`)
	interesting := names([]string{"a", "b", "c", "p", "q", "r"})
	if got := partitionNames(p, a, v(t, p, "q"), interesting); !equalStrs(got, []string{"p", "q", "r"}) {
		t.Errorf("partition of q = %v, want [p q r]", got)
	}
	if got := partitionNames(p, a, v(t, p, "a"), interesting); !equalStrs(got, []string{"a", "b", "c"}) {
		t.Errorf("partition of a = %v, want [a b c]", got)
	}
	// Steensgaard points-to: each of p,q,r may point to all of a,b,c.
	pts := a.PointsToVars(v(t, p, "p"))
	got := map[string]bool{}
	for _, o := range pts {
		got[p.VarName(o)] = true
	}
	for _, want := range []string{"a", "b", "c"} {
		if !got[want] {
			t.Errorf("pts(p) missing %s (got %v)", want, pts)
		}
	}
}

// TestFigure5Partitions reproduces Figure 5's partitions P1 = {x,u,w,z}
// and P2 = {a,b,c,d}, with P1 pointing to P2.
func TestFigure5Partitions(t *testing.T) {
	p, a := analyze(t, `
		int **x, **u, **w, **z;
		int *d;
		int c0;
		int *c;
		int *a, *b;
		void foo() {
			*x = d;
			a = b;
			x = w;
		}
		void bar() {
			*x = d;
			a = b;
		}
		void main() {
			x = &c;
			w = u;
			foo();
			z = x;
			*z = b;
			bar();
		}
	`)
	interesting := names([]string{"x", "u", "w", "z", "a", "b", "c", "d"})
	if got := partitionNames(p, a, v(t, p, "x"), interesting); !equalStrs(got, []string{"u", "w", "x", "z"}) {
		t.Errorf("P1 = %v, want [u w x z]", got)
	}
	if got := partitionNames(p, a, v(t, p, "a"), interesting); !equalStrs(got, []string{"a", "b", "c", "d"}) {
		t.Errorf("P2 = %v, want [a b c d]", got)
	}
	// Hierarchy edge P1 -> P2.
	p1 := a.Rep(v(t, p, "x"))
	p2 := a.Rep(v(t, p, "a"))
	succ, ok := a.PointsToPart(p1)
	if !ok || succ != p2 {
		t.Errorf("PointsToPart(P1) = %d,%v, want %d", succ, ok, p2)
	}
}

func TestUnrelatedPointersStaySeparate(t *testing.T) {
	p, a := analyze(t, `
		int a, b;
		int *x, *y;
		void main() {
			x = &a;
			y = &b;
		}
	`)
	if a.SamePartition(v(t, p, "x"), v(t, p, "y")) {
		t.Error("x and y are unrelated and must not share a partition")
	}
	if a.SamePartition(v(t, p, "a"), v(t, p, "b")) {
		t.Error("a and b are unrelated and must not share a partition")
	}
}

// TestCyclicPointsToSelfLoop checks the paper's Important Remark: `*p = p`
// puts p and *p in one partition with a self-loop, and the hierarchy stays
// acyclic (depths well-defined).
func TestCyclicPointsToSelfLoop(t *testing.T) {
	p, a := analyze(t, `
		int *p; int a;
		void main() {
			p = &a;
			*p = p;
		}
	`)
	pp, aa := v(t, p, "p"), v(t, p, "a")
	if !a.SamePartition(pp, aa) {
		t.Fatal("p and a should share a partition after *p = p")
	}
	c := a.Rep(pp)
	if !a.SelfLoop(c) {
		t.Error("partition should have a self-loop")
	}
	if _, ok := a.PointsToPart(c); ok {
		t.Error("self-loop must not appear as a hierarchy edge")
	}
}

// TestMutualCycleCollapsed: x=&y; y=&x creates a cycle between two
// partitions, which must be collapsed so the hierarchy is acyclic.
func TestMutualCycleCollapsed(t *testing.T) {
	p, a := analyze(t, `
		int *x, *y;
		void main() {
			x = &y;
			y = &x;
		}
	`)
	if !a.SamePartition(v(t, p, "x"), v(t, p, "y")) {
		t.Error("mutually pointing partitions should be collapsed into one")
	}
	assertAcyclic(t, a)
}

func assertAcyclic(t *testing.T, a *Analysis) {
	t.Helper()
	for _, part := range a.Partitions() {
		c := a.Rep(part[0])
		seen := map[int]bool{c: true}
		for {
			n, ok := a.PointsToPart(c)
			if !ok {
				break
			}
			if seen[n] {
				t.Fatalf("hierarchy cycle through partition %d", n)
			}
			seen[n] = true
			c = n
		}
	}
}

func TestDepths(t *testing.T) {
	p, a := analyze(t, `
		int a;
		int *x;
		int **px;
		int ***ppx;
		void main() {
			x = &a;
			px = &x;
			ppx = &px;
		}
	`)
	d := func(name string) int { return a.Depth(v(t, p, name)) }
	if !(d("ppx") < d("px") && d("px") < d("x") && d("x") < d("a")) {
		t.Errorf("depths not strictly increasing down the chain: ppx=%d px=%d x=%d a=%d",
			d("ppx"), d("px"), d("x"), d("a"))
	}
	if d("ppx") != 0 {
		t.Errorf("top-level pointer should have depth 0, got %d", d("ppx"))
	}
}

func TestInterproceduralUnification(t *testing.T) {
	p, a := analyze(t, `
		int g1, g2;
		int *id(int *v) { return v; }
		void main() {
			int *r1, *r2;
			r1 = id(&g1);
			r2 = id(&g2);
		}
	`)
	// Context-insensitive unification conflates both calls: r1, r2, v and
	// the return all share a partition; g1 and g2 get unified.
	if !a.SamePartition(v(t, p, "main.r1"), v(t, p, "main.r2")) {
		t.Error("r1 and r2 should share a partition (context-insensitive)")
	}
	if !a.SamePartition(v(t, p, "g1"), v(t, p, "g2")) {
		t.Error("g1 and g2 should be unified through id")
	}
}

func TestFunctionPointerTargets(t *testing.T) {
	p, a := analyze(t, `
		void *fp;
		int g;
		int *f1(int *a) { return a; }
		int *f2(int *a) { return a; }
		int *other(int *a) { return a; }
		void main() {
			int *x;
			if (*) { fp = &f1; } else { fp = &f2; }
			x = (*fp)(&g);
		}
	`)
	got := map[string]bool{}
	for _, f := range a.Targets(v(t, p, "fp")) {
		got[p.Func(f).Name] = true
	}
	if !got["f1"] || !got["f2"] {
		t.Errorf("targets = %v, want f1 and f2", got)
	}
	if got["other"] {
		t.Error("other's address is never taken; must not be a target")
	}
	// The indirect call binds x with the returns of f1/f2, which return
	// their parameter — bound to &g. So x may point to g.
	ptsHasG := false
	for _, o := range a.PointsToVars(v(t, p, "main.x")) {
		if p.VarName(o) == "g" {
			ptsHasG = true
		}
	}
	if !ptsHasG {
		t.Error("call result should point to g through the signature binding")
	}
	if !a.Higher(v(t, p, "main.x"), v(t, p, "g")) {
		t.Error("x should sit one level above g in the hierarchy")
	}
}

func TestLoadStore(t *testing.T) {
	p, a := analyze(t, `
		int a, b;
		int *x, *y, *l;
		int **px;
		void main() {
			x = &a;
			y = &b;
			px = &x;
			l = *px;
			*px = y;
		}
	`)
	// l = *px reads x's value; *px = y writes y's value into x's cell:
	// contents of l, x, y all unified.
	if !a.SamePartition(v(t, p, "l"), v(t, p, "x")) || !a.SamePartition(v(t, p, "x"), v(t, p, "y")) {
		t.Error("load/store through px should unify contents of l, x, y")
	}
}

func TestPartitionsCoverAllVars(t *testing.T) {
	p, a := analyze(t, `
		int a, b; int *x, *y; int **px;
		void f(int *q) { x = q; }
		void main() { x = &a; y = &b; px = &x; f(y); }
	`)
	seen := map[ir.VarID]bool{}
	total := 0
	for _, part := range a.Partitions() {
		for _, m := range part {
			if seen[m] {
				t.Fatalf("variable %s appears in two partitions", p.VarName(m))
			}
			seen[m] = true
			total++
		}
	}
	if total != p.NumVars() {
		t.Errorf("partitions cover %d vars, want %d", total, p.NumVars())
	}
	if a.NumPartitions() == 0 || a.MaxPartitionSize() == 0 {
		t.Error("partition stats should be positive")
	}
}

// TestRandomProgramInvariants checks structural invariants on random
// programs: the hierarchy is acyclic (well-defined depths), partitions are
// a disjoint total cover, and the partition edge agrees with the
// content-class relation.
func TestRandomProgramInvariants(t *testing.T) {
	cfg := synth.DefaultRandomConfig()
	cfg.Recursion = true
	cfg.Funcs = 3
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		src := synth.RandomSource(rng, cfg)
		p, err := frontend.LowerSource(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		a := Analyze(p)
		assertAcyclic(t, a)
		if t.Failed() {
			t.Fatalf("seed %d: cyclic hierarchy\n%s", seed, src)
		}
		// Disjoint total cover.
		seen := map[ir.VarID]bool{}
		for _, part := range a.Partitions() {
			for _, m := range part {
				if seen[m] {
					t.Fatalf("seed %d: %s in two partitions", seed, p.VarName(m))
				}
				seen[m] = true
			}
		}
		if len(seen) != p.NumVars() {
			t.Fatalf("seed %d: cover has %d of %d vars", seed, len(seen), p.NumVars())
		}
		// Same partition <=> same content class; depth consistent with
		// the edge relation.
		for v := 0; v < p.NumVars(); v++ {
			for w := v + 1; w < p.NumVars(); w++ {
				vi, wi := ir.VarID(v), ir.VarID(w)
				if a.SamePartition(vi, wi) != (a.ContentClass(vi) == a.ContentClass(wi)) {
					t.Fatalf("seed %d: partition/content-class disagreement for %s,%s",
						seed, p.VarName(vi), p.VarName(wi))
				}
			}
		}
		for _, part := range a.Partitions() {
			c := a.Rep(part[0])
			if succ, ok := a.PointsToPart(c); ok {
				if a.PartDepth(succ) <= a.PartDepth(c) {
					t.Fatalf("seed %d: depth not increasing along edge %d->%d", seed, c, succ)
				}
			}
		}
	}
}

// TestPointsToVarsConsistent: o ∈ PointsToVars(q) iff LocClass(o) ==
// ContentClass(q).
func TestPointsToVarsConsistent(t *testing.T) {
	cfg := synth.DefaultRandomConfig()
	rng := rand.New(rand.NewSource(42))
	src := synth.RandomSource(rng, cfg)
	p, err := frontend.LowerSource(src)
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(p)
	for q := 0; q < p.NumVars(); q++ {
		got := map[ir.VarID]bool{}
		for _, o := range a.PointsToVars(ir.VarID(q)) {
			got[o] = true
		}
		for o := 0; o < p.NumVars(); o++ {
			want := a.LocClass(ir.VarID(o)) == a.ContentClass(ir.VarID(q))
			if got[ir.VarID(o)] != want {
				t.Fatalf("PointsToVars(%s) disagreement on %s", p.VarName(ir.VarID(q)), p.VarName(ir.VarID(o)))
			}
		}
	}
}

func TestDot(t *testing.T) {
	p, a := analyze(t, `
		int a; int *x; int *p;
		void main() { x = &a; p = &a; *p = p; }
	`)
	_ = p
	dot := a.Dot(3)
	for _, want := range []string{"digraph steensgaard", "depth", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("Dot missing %q:\n%s", want, dot)
		}
	}
	if !strings.Contains(dot, "style=dashed") {
		t.Errorf("self-loop arc missing:\n%s", dot)
	}
}
