package bench

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"

	"bootstrap/internal/synth"
)

// smallCheckReport measures just the small preset (the full suite is
// benchtab's job; the test wants the plumbing, fast).
func smallCheckReport(t *testing.T) *CheckPerfReport {
	t.Helper()
	report, err := CheckPerf(synth.LockHeavyWorkloads()[:1], io.Discard)
	if err != nil {
		t.Fatalf("CheckPerf: %v", err)
	}
	return report
}

func TestCheckPerfInvariants(t *testing.T) {
	report := smallCheckReport(t)
	if len(report.Points) != 1 {
		t.Fatalf("%d points, want 1", len(report.Points))
	}
	pt := report.Points[0]
	if pt.SeededFound != pt.SeededBugs || pt.SeededBugs == 0 {
		t.Errorf("recall %d/%d", pt.SeededFound, pt.SeededBugs)
	}
	if pt.Digest != pt.WarmDigest {
		t.Errorf("cold/warm drift: %s vs %s", pt.Digest, pt.WarmDigest)
	}
	if pt.WarmHitRate != 1.0 {
		t.Errorf("warm hit rate %.2f, want 1.0", pt.WarmHitRate)
	}
	if pt.Incomplete != 0 {
		t.Errorf("%d incomplete pass runs", pt.Incomplete)
	}
	if pt.Findings["race"] == 0 || pt.Findings["use-after-free"] == 0 {
		t.Errorf("findings missing expected rules: %v", pt.Findings)
	}
	// A report gates cleanly against itself.
	if errs := AssertCheck(report, report); len(errs) != 0 {
		t.Errorf("self-assert: %v", errs)
	}
}

func TestAssertCheckCatchesDrift(t *testing.T) {
	report := smallCheckReport(t)
	// Findings-count drift against the baseline fires the gate.
	base := *report
	base.Points = append([]CheckPoint(nil), report.Points...)
	base.Points[0].Findings = map[string]int{"race": report.Points[0].Findings["race"] + 1}
	errs := AssertCheck(&base, report)
	if len(errs) == 0 {
		t.Fatal("findings drift not caught")
	}
	found := false
	for _, e := range errs {
		if strings.Contains(e.Error(), "race findings") {
			found = true
		}
	}
	if !found {
		t.Errorf("no race-count error in %v", errs)
	}
	// A fresh point that lost recall fires regardless of the baseline.
	bad := *report
	bad.Points = append([]CheckPoint(nil), report.Points...)
	bad.Points[0].SeededFound--
	if errs := AssertCheck(report, &bad); len(errs) == 0 {
		t.Error("recall loss not caught")
	}
}

func TestCheckJSONRoundTrip(t *testing.T) {
	report := smallCheckReport(t)
	var buf bytes.Buffer
	if err := WriteCheckJSON(&buf, report); err != nil {
		t.Fatalf("write: %v", err)
	}
	path := t.TempDir() + "/check.json"
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatalf("write file: %v", err)
	}
	back, err := ReadCheckJSONFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if errs := AssertCheck(back, report); len(errs) != 0 {
		t.Errorf("round-trip assert: %v", errs)
	}
	if out := FormatCheck(back); !strings.Contains(out, "lockheavy_small") {
		t.Errorf("FormatCheck lost the workload row:\n%s", out)
	}
}
