package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// SpeedupTolerance is the bench-regression gate's allowance: a fresh
// report's speedup ratio may fall at most this fraction below the
// committed baseline's before the gate fails. Speedups are ratios of two
// measurements from the same machine, so they transfer across hardware
// in a way absolute nanoseconds never do; 15% absorbs ordinary runner
// noise while still catching a real regression of either hot path.
const SpeedupTolerance = 0.15

// ReadFSCSJSON parses a BENCH_fscs.json report from r.
func ReadFSCSJSON(r io.Reader) (FSCSPerfReport, error) {
	var rep FSCSPerfReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return rep, err
	}
	if len(rep.Points) == 0 {
		return rep, fmt.Errorf("report has no points")
	}
	return rep, nil
}

// ReadFSCSJSONFile parses the report stored at path.
func ReadFSCSJSONFile(path string) (FSCSPerfReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return FSCSPerfReport{}, err
	}
	defer f.Close()
	rep, err := ReadFSCSJSON(f)
	if err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// AssertFSCS is the CI bench-regression gate: it compares a freshly
// measured report against the committed baseline and returns one error
// per violated invariant (nil when everything holds). Checked per
// baseline workload:
//
//   - the workload still exists in the fresh report;
//   - cluster_speedup and program_speedup have not fallen more than
//     SpeedupTolerance below the baseline's (cold-path regressions);
//   - cache_hit_rate is exactly 1.0 — the fresh report must come from a
//     warm rerun, where anything short of a full hit means the cache's
//     fingerprinting or import path broke.
//
// Absolute nanoseconds are deliberately not compared: they measure the
// runner, not the code.
func AssertFSCS(baseline, fresh FSCSPerfReport) []error {
	// Points are keyed by (bench, workers). A pre-PR-7 baseline has no
	// workers column (0 = "whatever GOMAXPROCS was"); its rows are held
	// against the fresh Workers=8 measurements, the closest successor.
	key := func(p FSCSPerfPoint) string { return fmt.Sprintf("%s/w%d", p.Bench, p.Workers) }
	freshBy := make(map[string]FSCSPerfPoint, len(fresh.Points))
	for _, p := range fresh.Points {
		freshBy[key(p)] = p
	}
	var errs []error
	for _, base := range baseline.Points {
		name := key(base)
		p, ok := freshBy[name]
		cluster := p
		if !ok && base.Workers == 0 {
			// Legacy row: program columns against w8, but the per-cluster
			// engine columns live only in the w1 row.
			p, ok = freshBy[fmt.Sprintf("%s/w8", base.Bench)]
			cluster = freshBy[fmt.Sprintf("%s/w1", base.Bench)]
		}
		if !ok {
			errs = append(errs, fmt.Errorf("%s: missing from the fresh report", name))
			continue
		}
		if base.Workers != 0 {
			cluster = p
		}
		errs = append(errs,
			checkSpeedup(name, "cluster_speedup", base.ClusterSpeedup, cluster.ClusterSpeedup),
			checkSpeedup(name, "program_speedup", base.ProgramSpeedup, p.ProgramSpeedup))
		if p.CacheHitRate != 1.0 {
			errs = append(errs, fmt.Errorf("%s: cache_hit_rate = %.2f, want 1.0 (warm rerun must import every cluster)",
				name, p.CacheHitRate))
		}
		// Shape gate: once a baseline records the size histograms, fresh
		// reports must keep recording them coherently, and the precise
		// partitioner must not regress past the default's max partition.
		if base.PartitionMax > 0 {
			switch {
			case cluster.PartitionMax <= 0 || cluster.PartitionP50 > cluster.PartitionP90 || cluster.PartitionP90 > cluster.PartitionMax:
				errs = append(errs, fmt.Errorf("%s: incoherent partition histogram p50=%d p90=%d max=%d",
					name, cluster.PartitionP50, cluster.PartitionP90, cluster.PartitionMax))
			case cluster.PrecisePartitionMax <= 0 || cluster.PrecisePartitionMax > cluster.PartitionMax:
				errs = append(errs, fmt.Errorf("%s: precise_partition_max = %d, want in (0, %d] (oversharing fix regressed)",
					name, cluster.PrecisePartitionMax, cluster.PartitionMax))
			}
		}
	}
	out := errs[:0]
	for _, e := range errs {
		if e != nil {
			out = append(out, e)
		}
	}
	return out
}

func checkSpeedup(bench, name string, base, got float64) error {
	if base <= 0 {
		return nil // baseline never measured this column; nothing to hold
	}
	floor := base * (1 - SpeedupTolerance)
	if got < floor {
		return fmt.Errorf("%s: %s = %.2fx, more than %.0f%% below the baseline %.2fx (floor %.2fx)",
			bench, name, got, SpeedupTolerance*100, base, floor)
	}
	return nil
}
