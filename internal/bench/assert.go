package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// SpeedupTolerance is the bench-regression gate's allowance: a fresh
// report's speedup ratio may fall at most this fraction below the
// committed baseline's before the gate fails. Speedups are ratios of two
// measurements from the same machine, so they transfer across hardware
// in a way absolute nanoseconds never do; 15% absorbs ordinary runner
// noise while still catching a real regression of either hot path.
const SpeedupTolerance = 0.15

// ReadFSCSJSON parses a BENCH_fscs.json report from r.
func ReadFSCSJSON(r io.Reader) (FSCSPerfReport, error) {
	var rep FSCSPerfReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return rep, err
	}
	if len(rep.Points) == 0 {
		return rep, fmt.Errorf("report has no points")
	}
	return rep, nil
}

// ReadFSCSJSONFile parses the report stored at path.
func ReadFSCSJSONFile(path string) (FSCSPerfReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return FSCSPerfReport{}, err
	}
	defer f.Close()
	rep, err := ReadFSCSJSON(f)
	if err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// AssertFSCS is the CI bench-regression gate: it compares a freshly
// measured report against the committed baseline and returns one error
// per violated invariant (nil when everything holds). Checked per
// baseline workload:
//
//   - the workload still exists in the fresh report;
//   - cluster_speedup and program_speedup have not fallen more than
//     SpeedupTolerance below the baseline's (cold-path regressions);
//   - cache_hit_rate is exactly 1.0 — the fresh report must come from a
//     warm rerun, where anything short of a full hit means the cache's
//     fingerprinting or import path broke.
//
// Absolute nanoseconds are deliberately not compared: they measure the
// runner, not the code.
func AssertFSCS(baseline, fresh FSCSPerfReport) []error {
	freshBy := make(map[string]FSCSPerfPoint, len(fresh.Points))
	for _, p := range fresh.Points {
		freshBy[p.Bench] = p
	}
	var errs []error
	for _, base := range baseline.Points {
		p, ok := freshBy[base.Bench]
		if !ok {
			errs = append(errs, fmt.Errorf("%s: missing from the fresh report", base.Bench))
			continue
		}
		errs = append(errs,
			checkSpeedup(base.Bench, "cluster_speedup", base.ClusterSpeedup, p.ClusterSpeedup),
			checkSpeedup(base.Bench, "program_speedup", base.ProgramSpeedup, p.ProgramSpeedup))
		if p.CacheHitRate != 1.0 {
			errs = append(errs, fmt.Errorf("%s: cache_hit_rate = %.2f, want 1.0 (warm rerun must import every cluster)",
				base.Bench, p.CacheHitRate))
		}
	}
	out := errs[:0]
	for _, e := range errs {
		if e != nil {
			out = append(out, e)
		}
	}
	return out
}

func checkSpeedup(bench, name string, base, got float64) error {
	if base <= 0 {
		return nil // baseline never measured this column; nothing to hold
	}
	floor := base * (1 - SpeedupTolerance)
	if got < floor {
		return fmt.Errorf("%s: %s = %.2fx, more than %.0f%% below the baseline %.2fx (floor %.2fx)",
			bench, name, got, SpeedupTolerance*100, base, floor)
	}
	return nil
}
