package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"bootstrap/internal/cache"
	"bootstrap/internal/check"
	"bootstrap/internal/core"
	"bootstrap/internal/frontend"
	"bootstrap/internal/synth"
)

// CheckPoint is one lockheavy workload's checker measurement: a cold
// run against an empty result cache, then a warm rerun against the same
// cache directory. The digest is order-independent over the findings'
// stable fingerprints, so cold/warm digest equality states the checker
// is deterministic under caching, and the per-rule findings counts are
// the drift surface the baseline gate compares.
type CheckPoint struct {
	Workload string `json:"workload"`
	Threads  int    `json:"threads"`
	Locks    int    `json:"locks"`
	Vars     int    `json:"vars"`
	Clusters int    `json:"clusters"`

	ColdNS      int64   `json:"cold_ns"`
	WarmNS      int64   `json:"warm_ns"`
	WarmHitRate float64 `json:"warm_cache_hit_rate"`

	// Findings counts the cold run's diagnostics per rule (race,
	// deadlock, use-after-free, double-free, null-deref).
	Findings map[string]int `json:"findings"`
	// Digest / WarmDigest hash the sorted fingerprint sets of the cold
	// and warm runs; equality = zero findings drift across cache state.
	Digest     string `json:"digest"`
	WarmDigest string `json:"warm_digest"`

	// SeededBugs / SeededFound state recall against the generator's
	// ground truth: the gate requires them equal (recall 1.0).
	SeededBugs  int `json:"seeded_bugs"`
	SeededFound int `json:"seeded_found"`
	// Incomplete counts pass results that degraded on a deadline across
	// both runs; the bench runs without one, so any is a failure.
	Incomplete int `json:"incomplete"`
}

// CheckPerfReport is the BENCH_check.json payload.
type CheckPerfReport struct {
	Date   string       `json:"date"`
	Points []CheckPoint `json:"points"`
}

// checkConfig is the analysis configuration the checker bench runs
// under: the full bootstrapped cascade in lazy mode, so only clusters
// in the passes' union footprint ever solve.
func checkConfig(c *cache.Cache) core.Config {
	return core.Config{
		Mode:              core.ModeAndersen,
		AndersenThreshold: 60,
		Cache:             c,
	}
}

// runCheckOnce lowers src and runs every registered pass demand-driven
// against the given result cache, returning the report and wall time.
func runCheckOnce(src string, c *cache.Cache) (*check.Report, time.Duration, int, int, error) {
	prog, err := frontend.LowerSource(src)
	if err != nil {
		return nil, 0, 0, 0, err
	}
	passes := check.All()
	cfg := checkConfig(c)
	cfg.Lazy = true
	cfg.Demand = check.DemandFor(prog, passes)
	t0 := time.Now()
	a, err := core.AnalyzeProgram(prog, cfg)
	if err != nil {
		return nil, 0, 0, 0, err
	}
	rep := check.Run(context.Background(), a, check.Options{Passes: passes})
	return rep, time.Since(t0), prog.NumVars(), len(a.Clusters), nil
}

// checkDigest hashes the report's sorted fingerprint set.
func checkDigest(rep *check.Report) string {
	h := fnv.New64a()
	for _, fp := range rep.Fingerprints() {
		io.WriteString(h, fp)
		io.WriteString(h, "\n")
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// countIncomplete tallies degraded pass results.
func countIncomplete(rep *check.Report) int {
	n := 0
	for _, res := range rep.Results {
		if res.Incomplete {
			n++
		}
	}
	return n
}

// CheckPerf measures every lockheavy preset cold then warm against a
// fresh per-workload cache directory and scores recall against the
// generator's seeded ground truth.
func CheckPerf(workloads []synth.LockHeavyWorkload, log io.Writer) (*CheckPerfReport, error) {
	if log == nil {
		log = io.Discard
	}
	report := &CheckPerfReport{Date: time.Now().UTC().Format("2006-01-02")}
	for _, w := range workloads {
		fmt.Fprintf(log, "check-bench %s: cold + warm...\n", w.Name)
		src, bugs := synth.LockHeavy(w.Cfg)
		dir, err := os.MkdirTemp("", "checkperf-")
		if err != nil {
			return nil, err
		}
		cold, coldNS, vars, clusters, err := runCheckOnce(src, cache.New(cache.Options{Dir: dir}))
		if err != nil {
			os.RemoveAll(dir)
			return nil, fmt.Errorf("%s cold: %w", w.Name, err)
		}
		warmCache := cache.New(cache.Options{Dir: dir})
		warm, warmNS, _, _, err := runCheckOnce(src, warmCache)
		os.RemoveAll(dir)
		if err != nil {
			return nil, fmt.Errorf("%s warm: %w", w.Name, err)
		}
		for _, res := range append(cold.Results, warm.Results...) {
			if res.Err != nil && !res.Incomplete {
				return nil, fmt.Errorf("%s pass %s: %w", w.Name, res.Pass, res.Err)
			}
		}

		pt := CheckPoint{
			Workload:    w.Name,
			Threads:     w.Cfg.Threads,
			Locks:       w.Cfg.Locks,
			Vars:        vars,
			Clusters:    clusters,
			ColdNS:      int64(coldNS),
			WarmNS:      int64(warmNS),
			WarmHitRate: warmCache.Stats().HitRate(),
			Findings:    map[string]int{},
			Digest:      checkDigest(cold),
			WarmDigest:  checkDigest(warm),
			SeededBugs:  len(bugs),
			Incomplete:  countIncomplete(cold) + countIncomplete(warm),
		}
		diags := cold.Diagnostics()
		for _, d := range diags {
			pt.Findings[d.Rule]++
		}
		for _, bug := range bugs {
			for _, d := range diags {
				if d.Rule == bug.Rule && strings.Contains(d.Message, bug.Var) {
					pt.SeededFound++
					break
				}
			}
		}
		report.Points = append(report.Points, pt)
	}
	return report, nil
}

// AssertCheck gates a fresh checker report: its own invariants (full
// seeded-bug recall, cold/warm digest equality, fully-cached warm rerun,
// no degraded pass) plus per-rule findings counts equal to the committed
// baseline. Digests are NOT compared across reports — fingerprints are
// stable within a source, and the generator pins the source, but the
// baseline gate's drift surface is the per-rule counts so a legitimate
// fingerprint-scheme change only requires re-baselining when counts
// move.
func AssertCheck(base, fresh *CheckPerfReport) []error {
	var errs []error
	if len(fresh.Points) == 0 {
		return []error{fmt.Errorf("check report has no workloads")}
	}
	byName := map[string]*CheckPoint{}
	for i := range base.Points {
		byName[base.Points[i].Workload] = &base.Points[i]
	}
	for i := range fresh.Points {
		pt := &fresh.Points[i]
		if pt.SeededFound != pt.SeededBugs {
			errs = append(errs, fmt.Errorf("%s: recall %d/%d seeded bugs, want all",
				pt.Workload, pt.SeededFound, pt.SeededBugs))
		}
		if pt.Digest != pt.WarmDigest {
			errs = append(errs, fmt.Errorf("%s: warm rerun drifted (cold digest %s, warm %s)",
				pt.Workload, pt.Digest, pt.WarmDigest))
		}
		if pt.WarmHitRate < 1.0 {
			errs = append(errs, fmt.Errorf("%s: warm cache hit rate %.2f, want 1.0",
				pt.Workload, pt.WarmHitRate))
		}
		if pt.Incomplete != 0 {
			errs = append(errs, fmt.Errorf("%s: %d pass run(s) degraded without a deadline",
				pt.Workload, pt.Incomplete))
		}
		bp, ok := byName[pt.Workload]
		if !ok {
			errs = append(errs, fmt.Errorf("%s: not in the baseline (re-baseline with make checker-baseline)", pt.Workload))
			continue
		}
		rules := map[string]bool{}
		for r := range pt.Findings {
			rules[r] = true
		}
		for r := range bp.Findings {
			rules[r] = true
		}
		var sorted []string
		for r := range rules {
			sorted = append(sorted, r)
		}
		sort.Strings(sorted)
		for _, r := range sorted {
			if pt.Findings[r] != bp.Findings[r] {
				errs = append(errs, fmt.Errorf("%s: %s findings %d, baseline %d",
					pt.Workload, r, pt.Findings[r], bp.Findings[r]))
			}
		}
	}
	for name := range byName {
		seen := false
		for _, pt := range fresh.Points {
			if pt.Workload == name {
				seen = true
			}
		}
		if !seen {
			errs = append(errs, fmt.Errorf("%s: in the baseline but not measured", name))
		}
	}
	return errs
}

// WriteCheckJSON writes the report as indented JSON.
func WriteCheckJSON(w io.Writer, report *CheckPerfReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// ReadCheckJSONFile loads a BENCH_check.json.
func ReadCheckJSONFile(path string) (*CheckPerfReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var report CheckPerfReport
	if err := json.Unmarshal(data, &report); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &report, nil
}

// FormatCheck renders the report as a fixed-width table.
func FormatCheck(report *CheckPerfReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-18s %5s %6s %8s %8s %6s %7s %8s\n",
		"workload", "vars", "found", "cold_ms", "warm_ms", "hit", "drift", "findings")
	for _, pt := range report.Points {
		total := 0
		for _, n := range pt.Findings {
			total += n
		}
		drift := "none"
		if pt.Digest != pt.WarmDigest {
			drift = "DRIFT"
		}
		fmt.Fprintf(&sb, "%-18s %5d %3d/%-3d %8.1f %8.1f %6.2f %7s %8d\n",
			pt.Workload, pt.Vars, pt.SeededFound, pt.SeededBugs,
			float64(pt.ColdNS)/1e6, float64(pt.WarmNS)/1e6,
			pt.WarmHitRate, drift, total)
	}
	return sb.String()
}
