package bench

import (
	"strings"
	"testing"
	"time"

	"bootstrap/internal/synth"
)

func smallOpt() Options {
	return Options{Scale: 0.15, Parts: 5, Budget: 200_000}
}

func TestRunRowShape(t *testing.T) {
	b, _ := synth.FindBenchmark("sock")
	row, err := RunRow(b, smallOpt())
	if err != nil {
		t.Fatal(err)
	}
	if row.Pointers <= 0 {
		t.Error("no pointers measured")
	}
	if row.SteensNum <= 0 || row.AndersenNum <= 0 {
		t.Errorf("cluster counts: steens=%d andersen=%d", row.SteensNum, row.AndersenNum)
	}
	if row.AndersenMax > row.SteensMax {
		t.Errorf("Andersen max %d exceeds Steensgaard max %d", row.AndersenMax, row.SteensMax)
	}
	if row.SteensTime <= 0 {
		t.Error("Steensgaard time not measured")
	}
}

// TestClusteringBeatsMonolithic is the headline claim of Table 1: with a
// budget that chokes the unclustered analysis, the clustered analyses
// finish.
func TestClusteringBeatsMonolithic(t *testing.T) {
	b, _ := synth.FindBenchmark("pico") // a ">15min" row in the paper
	opt := smallOpt()
	opt.Budget = 50_000
	row, err := RunRow(b, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !row.NoClusterTimedOut {
		t.Skip("monolithic run finished within budget at this scale; shape check not applicable")
	}
	if row.SteensFSCS <= 0 || row.AndersenFSCS <= 0 {
		t.Error("clustered runs should complete")
	}
}

func TestFormatTable(t *testing.T) {
	b, _ := synth.FindBenchmark("ctrace")
	row, err := RunRow(b, smallOpt())
	if err != nil {
		t.Fatal(err)
	}
	out := FormatTable([]Row{row})
	if !strings.Contains(out, "ctrace") || !strings.Contains(out, "#cluster") {
		t.Errorf("table output malformed:\n%s", out)
	}
	cmp := FormatComparison([]Row{row})
	if !strings.Contains(cmp, "ctrace") {
		t.Errorf("comparison output malformed:\n%s", cmp)
	}
}

func TestFigure1Shape(t *testing.T) {
	b, _ := synth.FindBenchmark("autofs")
	sh, ah, err := Figure1(b, smallOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(sh) == 0 || len(ah) == 0 {
		t.Fatal("empty histograms")
	}
	// Figure 1's shape: high density at small sizes for both series.
	smallHeavy := func(h []HistPoint) bool {
		small, total := 0, 0
		for _, p := range h {
			total += p.Count
			if p.Size <= 8 {
				small += p.Count
			}
		}
		return small*2 > total
	}
	if !smallHeavy(sh) || !smallHeavy(ah) {
		t.Error("histograms should be dominated by small clusters")
	}
	// The Steensgaard max (isolated square to the far right) is at least
	// the Andersen max.
	if sh[len(sh)-1].Size < ah[len(ah)-1].Size {
		t.Errorf("max Steensgaard size %d < max Andersen size %d",
			sh[len(sh)-1].Size, ah[len(ah)-1].Size)
	}
	out := FormatHistogram(sh, ah)
	if !strings.Contains(out, "size") {
		t.Error("histogram format malformed")
	}
}

func TestThresholdSweep(t *testing.T) {
	b, _ := synth.FindBenchmark("raid")
	points, err := ThresholdSweep(b, []int{4, 8, 1000}, smallOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
	// A threshold above every partition size means no Andersen refinement:
	// max cluster equals the Steensgaard max; a low threshold should not
	// increase it.
	if points[0].MaxSize > points[2].MaxSize {
		t.Errorf("low threshold max %d > no-refinement max %d", points[0].MaxSize, points[2].MaxSize)
	}
	if out := FormatSweep(points); !strings.Contains(out, "threshold") {
		t.Error("sweep format malformed")
	}
}

func TestRunTableStreams(t *testing.T) {
	var sb strings.Builder
	rows, err := RunTable([]synth.Benchmark{synth.Table1[0]}, smallOpt(), &sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows", len(rows))
	}
	if !strings.Contains(sb.String(), "running") {
		t.Error("progress not streamed")
	}
}

func TestFmtDur(t *testing.T) {
	cases := []struct {
		d   time.Duration
		out string
		to  bool
	}{
		{90 * time.Second, "1.5min", false},
		{2500 * time.Millisecond, "2.50s", false},
		{1500 * time.Microsecond, "1.5ms", false},
		{500 * time.Microsecond, "500µs", false},
		{time.Second, "> budget", true},
	}
	for _, tc := range cases {
		if got := fmtDur(tc.d, tc.to); got != tc.out {
			t.Errorf("fmtDur(%v,%v) = %q, want %q", tc.d, tc.to, got, tc.out)
		}
	}
}
