package legacyfscs

import (
	"context"
	"errors"
	"sort"
	"time"

	"bootstrap/internal/andersen"
	"bootstrap/internal/callgraph"
	"bootstrap/internal/cluster"
	"bootstrap/internal/ir"
	"bootstrap/internal/steens"
)

// ErrBudget is reported when the engine exceeds its work budget — the
// analogue of the paper's 15-minute timeout on the unclustered analysis.
var ErrBudget = errors.New("fscs: work budget exhausted")

// ctxCheckInterval is how many worklist tuples may pass between
// cancellation polls. Kept a power of two so the check compiles to a
// mask; small enough that deadlines land within microseconds of real
// workloads, large enough that ctx.Err() stays off the hot path.
const ctxCheckInterval = 32

// Hook observes every charged worklist tuple. It exists for deterministic
// fault injection (package faults) and instrumentation: a hook may sleep
// to simulate a slow cluster, panic to simulate an engine bug, or return
// an error to abort the engine (the error becomes Run's result; wrap
// ErrBudget to force the exhaustion path).
type Hook func(tuples int64) error

// Option configures an Engine.
type Option func(*Engine)

// WithContext attaches a cancellation context: the worklist loops poll it
// at checkpoints and abort (soundly, via the Exhausted/fallback path) once
// it is done. Run then returns the context's error.
func WithContext(ctx context.Context) Option {
	return func(e *Engine) { e.ctx = ctx }
}

// WithHook installs a per-tuple hook (see Hook). A nil hook is ignored.
func WithHook(h Hook) Option {
	return func(e *Engine) {
		if h != nil {
			e.hook = h
		}
	}
}

// WithFallback supplies a flow-insensitive analysis used when the
// flow-sensitive walk loses precision (TUnknown); without it the engine
// falls back to the Steensgaard partitioning.
func WithFallback(a *andersen.Analysis) Option {
	return func(e *Engine) { e.fallback = a }
}

// WithMaxCond bounds the number of conjuncts per points-to constraint
// before widening to true (default 8).
func WithMaxCond(n int) Option {
	return func(e *Engine) { e.maxCond = n }
}

// WithBudget bounds the number of worklist tuples the engine may process
// across all queries; once exceeded every walk aborts and Exhausted
// reports true (and Run returns ErrBudget). Zero means unlimited.
func WithBudget(n int64) Option {
	return func(e *Engine) { e.budget = n }
}

type sumKey struct {
	f   ir.FuncID
	ptr ir.VarID
}

type ptsKey struct {
	v   ir.VarID
	loc ir.Loc
}

// Engine runs the FSCS analysis for one cluster. An Engine is not safe for
// concurrent use; the bootstrapping scheduler creates one engine per
// cluster per worker.
type Engine struct {
	prog *ir.Program
	cg   *callgraph.Graph
	sa   *steens.Analysis
	cl   *cluster.Cluster

	fallback *andersen.Analysis
	maxCond  int
	budget   int64 // 0 = unlimited
	spent    int64
	over     bool
	cause    error           // first failure: ErrBudget, ctx.Err(), or a hook error
	ctx      context.Context // optional cancellation; nil = never cancelled
	hook     Hook            // optional fault-injection/instrumentation hook

	// Summaries at function exits: key -> tuple set (by tuple key).
	sums map[sumKey]map[string]SumTuple
	done map[sumKey]bool

	// Variables each function may (transitively) modify, restricted to V_P.
	modStar map[ir.FuncID]map[ir.VarID]bool

	// FSCI value-set cache: (v, loc) -> resolved sources.
	ptsVR     map[ptsKey]*valueResult
	ptsInProg map[ptsKey]bool

	// hasAssumes is set when the cluster's slice contains path-sensitivity
	// assume nodes; terminated walk tokens then keep walking backwards to
	// collect the branch constraints guarding their path (Section 3's
	// conb tracking). Without assumes they record immediately (cheaper).
	hasAssumes bool

	// Work counters for instrumentation.
	TuplesProcessed int64
	SummariesBuilt  int
}

// NewEngine creates an FSCS engine for one cluster of a program. The call
// graph must be built from the same (devirtualized) program.
func NewEngine(p *ir.Program, cg *callgraph.Graph, sa *steens.Analysis, cl *cluster.Cluster, opts ...Option) *Engine {
	e := &Engine{
		prog:      p,
		cg:        cg,
		sa:        sa,
		cl:        cl,
		maxCond:   8,
		sums:      map[sumKey]map[string]SumTuple{},
		done:      map[sumKey]bool{},
		ptsVR:     map[ptsKey]*valueResult{},
		ptsInProg: map[ptsKey]bool{},
	}
	for _, o := range opts {
		o(e)
	}
	for _, loc := range cl.Stmts {
		op := p.Node(loc).Stmt.Op
		if op == ir.OpAssumeEq || op == ir.OpAssumeNeq {
			e.hasAssumes = true
			break
		}
	}
	e.computeModStar()
	return e
}

// Cluster returns the cluster this engine analyzes.
func (e *Engine) Cluster() *cluster.Cluster { return e.cl }

// Exhausted reports whether the engine aborted — budget exceeded,
// deadline passed, or a hook fault; results obtained afterwards are
// partial (queries degrade soundly to the fallback).
func (e *Engine) Exhausted() bool { return e.over }

// Err returns what stopped the engine: nil while healthy, ErrBudget on
// exhaustion, the context error on cancellation, or the hook's error.
func (e *Engine) Err() error { return e.cause }

// fail marks the engine aborted, keeping the first cause.
func (e *Engine) fail(err error) {
	e.over = true
	if e.cause == nil {
		e.cause = err
	}
}

// ctxErr reports the context's failure, treating an already-passed
// deadline as exceeded even when the context's timer has not fired yet —
// this keeps tiny (test) deadlines deterministic instead of racing the
// runtime timer.
func (e *Engine) ctxErr() error {
	if err := e.ctx.Err(); err != nil {
		return err
	}
	if d, ok := e.ctx.Deadline(); ok && !time.Now().Before(d) {
		return context.DeadlineExceeded
	}
	return nil
}

// checkpoint polls cancellation between worklist phases; reports false
// once the engine must stop.
func (e *Engine) checkpoint() bool {
	if e.over {
		return false
	}
	if e.ctx != nil {
		if err := e.ctxErr(); err != nil {
			e.fail(err)
			return false
		}
	}
	return true
}

// charge consumes budget for one worklist tuple; reports false when the
// engine must stop (budget gone, context done, or hook fault).
func (e *Engine) charge() bool {
	if e.over {
		return false
	}
	e.TuplesProcessed++
	if e.hook != nil {
		if err := e.hook(e.TuplesProcessed); err != nil {
			e.fail(err)
			return false
		}
	}
	// Poll the context every ctxCheckInterval tuples — every tuple when a
	// hook is installed, since hooks may sleep arbitrarily long.
	if e.ctx != nil && (e.hook != nil || e.TuplesProcessed%ctxCheckInterval == 0) {
		if err := e.ctxErr(); err != nil {
			e.fail(err)
			return false
		}
	}
	if e.budget == 0 {
		return true
	}
	e.spent++
	if e.spent > e.budget {
		e.fail(ErrBudget)
		return false
	}
	return true
}

// computeModStar computes, per function, the V_P variables the function
// may modify directly or via callees. Only functions with a non-empty set
// ever need summaries — the locality the paper exploits: "the need for
// computing summaries for functions that don't modify any pointers in the
// given cluster ... typically accounts for the majority of the functions".
func (e *Engine) computeModStar() {
	direct := map[ir.FuncID]map[ir.VarID]bool{}
	addMod := func(f ir.FuncID, v ir.VarID) {
		if !e.cl.HasVar(v) {
			return
		}
		m := direct[f]
		if m == nil {
			m = map[ir.VarID]bool{}
			direct[f] = m
		}
		m[v] = true
	}
	for _, loc := range e.cl.Stmts {
		n := e.prog.Node(loc)
		switch n.Stmt.Op {
		case ir.OpCopy, ir.OpAddr, ir.OpLoad, ir.OpNullify:
			addMod(n.Fn, n.Stmt.Dst)
		case ir.OpStore:
			// A store may modify any V_P object in the written class.
			for _, o := range e.sa.PointsToVars(n.Stmt.Dst) {
				addMod(n.Fn, o)
			}
		}
	}
	// Close over callees, SCC by SCC in reverse topological order; within
	// an SCC iterate to fixpoint.
	e.modStar = map[ir.FuncID]map[ir.VarID]bool{}
	for f, m := range direct {
		cp := map[ir.VarID]bool{}
		for v := range m {
			cp[v] = true
		}
		e.modStar[f] = cp
	}
	for _, scc := range e.cg.SCCs() {
		for changed := true; changed; {
			changed = false
			for _, f := range scc {
				for _, g := range e.cg.Callees(f) {
					for v := range e.modStar[g] {
						m := e.modStar[f]
						if m == nil {
							m = map[ir.VarID]bool{}
							e.modStar[f] = m
						}
						if !m[v] {
							m[v] = true
							changed = true
						}
					}
				}
			}
		}
	}
}

// Modifies reports whether f may (transitively) modify v ∈ V_P.
func (e *Engine) Modifies(f ir.FuncID, v ir.VarID) bool { return e.modStar[f][v] }

// SummaryFuncs returns the functions that need summaries for this cluster
// (non-empty modStar), sorted.
func (e *Engine) SummaryFuncs() []ir.FuncID {
	var out []ir.FuncID
	for f, m := range e.modStar {
		if len(m) > 0 {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Summary returns the summary tuples for ptr at the exit of f: the local
// maximally complete update sequences from each source to ptr leading from
// f's entry to its exit (Definition 8). Results are memoized; recursion is
// resolved by iterating the involved summaries to a fixpoint (the paper's
// SCC treatment in Algorithm 5).
func (e *Engine) Summary(f ir.FuncID, ptr ir.VarID) []SumTuple {
	key := sumKey{f: f, ptr: ptr}
	if !e.done[key] {
		e.fixpoint(key)
	}
	return tupleList(e.sums[key])
}

// fixpoint computes key and every summary it transitively requests,
// iterating until no tuple set grows. Tuple sets are monotone (finite
// token × widened-condition space), so this terminates.
func (e *Engine) fixpoint(root sumKey) {
	pending := map[sumKey]bool{root: true}
	for changed := true; changed && e.checkpoint(); {
		changed = false
		before := len(pending)
		keys := make([]sumKey, 0, len(pending))
		for k := range pending {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].f != keys[j].f {
				return keys[i].f < keys[j].f
			}
			return keys[i].ptr < keys[j].ptr
		})
		for _, k := range keys {
			out := e.computeExitSummary(k, pending)
			cur := e.sums[k]
			if cur == nil {
				cur = map[string]SumTuple{}
				e.sums[k] = cur
			}
			for tk, tup := range out {
				if _, ok := cur[tk]; !ok {
					cur[tk] = tup
					changed = true
				}
			}
		}
		// Newly discovered callee summaries must be computed before the
		// fixpoint may terminate, even when no tuple set grew this round.
		if len(pending) > before {
			changed = true
		}
	}
	for k := range pending {
		e.done[k] = true
	}
	e.SummariesBuilt = len(e.done)
}

// computeExitSummary runs the backward walk for one (function, pointer)
// pair from the function's exit. Callee summaries that are not final are
// read as-is and the callee key joins pending, to be iterated by fixpoint.
func (e *Engine) computeExitSummary(k sumKey, pending map[sumKey]bool) map[string]SumTuple {
	f := e.prog.Func(k.f)
	lookup := func(g ir.FuncID, ptr ir.VarID) map[string]SumTuple {
		gk := sumKey{f: g, ptr: ptr}
		if !e.done[gk] {
			pending[gk] = true
		}
		return e.sums[gk]
	}
	return e.walkBack(k.f, VarTok(k.ptr), e.prog.Node(f.Exit).Preds, lookup)
}

// summaryLookup is the default lookup for walks outside the fixpoint: it
// computes callee summaries fully on demand.
func (e *Engine) summaryLookup(g ir.FuncID, ptr ir.VarID) map[string]SumTuple {
	key := sumKey{f: g, ptr: ptr}
	if !e.done[key] {
		e.fixpoint(key)
	}
	return e.sums[key]
}

// SummaryAt returns the summary tuples for ptr at an arbitrary location of
// its function: the sources of maximally complete update sequences from
// the function's entry to loc.
func (e *Engine) SummaryAt(loc ir.Loc, ptr ir.VarID) []SumTuple {
	n := e.prog.Node(loc)
	out := e.walkBack(n.Fn, VarTok(ptr), n.Preds, e.summaryLookup)
	return tupleList(out)
}

func tupleList(m map[string]SumTuple) []SumTuple {
	out := make([]SumTuple, 0, len(m))
	for _, t := range m {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key() < out[j].key() })
	return out
}
