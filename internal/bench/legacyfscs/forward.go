package legacyfscs

import (
	"sort"
	"strconv"

	"bootstrap/internal/ir"
)

// This file implements the second phase of the paper's Algorithm 3 as
// presented: the "Computation of Q". Having computed the set A of sources
// with maximally complete update sequences to p (the backward phase,
// collectValues), the paper propagates those sources *forward* from the
// program entry and collects every pointer holding one of them at the
// query location — the FSCI alias set.
//
// The default query path (Engine.Aliases) instead intersects backward
// value sets, which answers the same question one cluster pointer at a
// time; ForwardAliases finds all holders in one forward sweep and exists
// both as the faithful rendition of the paper's algorithm and as a
// cross-check (tests assert it covers the exact oracle and the
// intersection-based result).

// fwdItem tracks one pointer holding the propagated source value when
// control reaches loc (before executing it).
type fwdItem struct {
	loc    ir.Loc
	holder ir.VarID
	cond   Cond
}

// ForwardHolders propagates the value named by src (an object address)
// forward from its creation points and returns the pointers that may hold
// it when control reaches loc. Interprocedural propagation is
// context-insensitive: values enter callees at every call site and leave
// through every return site, and a call additionally passes the holder
// through unchanged (a sound may-approximation when the callee could kill
// it).
func (e *Engine) ForwardHolders(src Token, loc ir.Loc) []ir.VarID {
	if src.Kind != TAddr || !e.checkpoint() {
		return nil
	}
	obj := src.V

	holders := map[ir.VarID]bool{}
	seen := map[string]bool{}
	var work []fwdItem
	push := func(l ir.Loc, h ir.VarID, c Cond) {
		key := strconv.Itoa(int(l)) + "|" + strconv.Itoa(int(h)) + "|" + c.Key()
		if seen[key] {
			return
		}
		seen[key] = true
		work = append(work, fwdItem{loc: l, holder: h, cond: c})
	}

	// Gen points: every x = &obj in the slice starts a propagation with x
	// holding the value after the statement executes.
	for _, l := range e.cl.Stmts {
		st := e.prog.Node(l).Stmt
		if st.Op == ir.OpAddr && st.Src == obj {
			for _, s := range e.prog.Node(l).Succs {
				push(s, st.Dst, TrueCond())
			}
		}
	}

	for len(work) > 0 {
		if !e.charge() {
			break
		}
		it := work[len(work)-1]
		work = work[:len(work)-1]

		if it.loc == loc && e.satisfiable(it.cond) {
			holders[it.holder] = true
		}
		outs := e.fwdTransfer(it)
		n := e.prog.Node(it.loc)
		st := n.Stmt
		for _, oc := range outs {
			// Call nodes additionally propagate into the callee (the
			// value may be observed or killed there)…
			if st.Op == ir.OpCall && st.Callee != ir.NoFunc {
				g := e.prog.Func(st.Callee)
				push(g.Entry, oc.holder, oc.cond)
			}
			// …and exits propagate to every return site.
			if st.Op == ir.OpRet {
				for _, cs := range e.cg.CallSitesOf(n.Fn) {
					for _, s := range e.prog.Node(cs).Succs {
						push(s, oc.holder, oc.cond)
					}
				}
			}
			for _, s := range n.Succs {
				push(s, oc.holder, oc.cond)
			}
		}
	}
	out := make([]ir.VarID, 0, len(holders))
	for h := range holders {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// fwdOut is a post-statement holder.
type fwdOut struct {
	holder ir.VarID
	cond   Cond
}

// fwdTransfer applies the statement at it.loc to a holder, forward: copies
// and loads spread the value, assignments to the holder kill it (on this
// item; other items may keep it), stores spread it into pointed-to cells.
func (e *Engine) fwdTransfer(it fwdItem) []fwdOut {
	n := e.prog.Node(it.loc)
	st := n.Stmt
	h, cond := it.holder, it.cond
	keep := []fwdOut{{holder: h, cond: cond}}

	relevant := e.cl.HasStmt(it.loc)
	switch st.Op {
	case ir.OpCopy:
		if !relevant {
			return keep
		}
		if st.Src == h && st.Dst != h {
			return append(keep, fwdOut{holder: st.Dst, cond: cond})
		}
		if st.Dst == h && st.Src != h {
			return nil // killed (a self-copy preserves the value)
		}
		return keep
	case ir.OpAddr, ir.OpNullify:
		if relevant && st.Dst == h {
			return nil // overwritten (a fresh gen point restarts &obj)
		}
		return keep
	case ir.OpLoad: // dst = *s
		if !relevant {
			return keep
		}
		var outs []fwdOut
		killed := st.Dst == h
		// If the value sits in a cell s may reference, it flows to dst.
		if e.sa.LocClass(h) == e.sa.ContentClass(st.Src) {
			c := cond.With(Atom{Loc: it.loc, Op: OpPointsTo, X: st.Src, Y: h}, e.maxCond)
			outs = append(outs, fwdOut{holder: st.Dst, cond: c})
		}
		if !killed {
			outs = append(outs, fwdOut{holder: h, cond: cond})
		}
		return outs
	case ir.OpStore: // *d = r
		if !relevant {
			return keep
		}
		outs := keep
		if st.Src == h {
			// The value flows into every cell d may reference.
			pt, known := e.PointsToAt(st.Dst, it.loc)
			if known {
				for _, o := range pt {
					if e.cl.HasVar(o) {
						c := cond.With(Atom{Loc: it.loc, Op: OpPointsTo, X: st.Dst, Y: o}, e.maxCond)
						outs = append(outs, fwdOut{holder: o, cond: c})
					}
				}
			} else {
				for _, o := range e.sa.PointsToVars(st.Dst) {
					if e.cl.HasVar(o) {
						c := cond.With(Atom{Loc: it.loc, Op: OpPointsTo, X: st.Dst, Y: o}, e.maxCond)
						outs = append(outs, fwdOut{holder: o, cond: c})
					}
				}
			}
		}
		// A holder that d may reference survives only on the ↛ branch.
		if e.sa.LocClass(h) == e.sa.ContentClass(st.Dst) && st.Src != h {
			outs = outs[1:] // drop the unconditional keep
			outs = append(outs, fwdOut{
				holder: h,
				cond:   cond.With(Atom{Loc: it.loc, Op: OpNotPointsTo, X: st.Dst, Y: h}, e.maxCond),
			})
		}
		return outs
	case ir.OpAssumeEq, ir.OpAssumeNeq:
		if !e.cl.HasVar(st.Dst) || !e.cl.HasVar(st.Src) {
			return keep
		}
		op := OpSameTarget
		if st.Op == ir.OpAssumeNeq {
			op = OpDiffTarget
		}
		return []fwdOut{{holder: h, cond: cond.With(Atom{Loc: it.loc, Op: op, X: st.Dst, Y: st.Src}, e.maxCond)}}
	}
	return keep
}

// ForwardAliases is the paper's Algorithm 3 end to end: the backward
// phase computes the sources A of p at loc; the forward phase collects
// every cluster pointer holding one of those sources at loc.
func (e *Engine) ForwardAliases(p ir.VarID, loc ir.Loc) []ir.VarID {
	n := e.prog.Node(loc)
	vr := e.collectValues(n.Fn, p, n.Preds)
	set := map[ir.VarID]bool{}
	if vr.unknown {
		// Fall back exactly like MayAlias does.
		for _, q := range e.cl.Pointers {
			if q != p && e.fallbackMayAlias(p, q) {
				set[q] = true
			}
		}
	}
	for o := range vr.objs {
		for _, h := range e.ForwardHolders(AddrTok(o), loc) {
			if h != p && e.cl.HasPointer(h) {
				set[h] = true
			}
		}
	}
	out := make([]ir.VarID, 0, len(set))
	for q := range set {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
