// Package fscs implements the paper's summarization-based flow- and
// context-sensitive (FSCS) may-alias analysis — its core contribution
// (Section 3). The analysis works per cluster (package cluster): function
// summaries capture local maximally complete update sequences (Definitions
// 3–4) as tuples (pointer, source, condition) per Definition 8, are
// computed by a backward CFG walk (Algorithm 4 transfer + Algorithm 5
// interprocedural worklist, with a fixpoint over call-graph SCCs for
// recursion), and are spliced across functions to answer flow-sensitive
// context-insensitive (Algorithm 3) and fully context-sensitive queries.
// Summary computation and FSCI points-to computation are dovetailed down
// the Steensgaard hierarchy (Algorithm 2) via memoized demand: resolving a
// load or store through a strictly-higher pointer requests that pointer's
// FSCI points-to set, which is itself computed from summaries at the
// smaller depth.
package legacyfscs

import (
	"fmt"
	"sort"
	"strings"

	"bootstrap/internal/ir"
)

// TokKind classifies the value a backward walk is tracking — the "q" of a
// (maximally) complete update sequence from q to p.
type TokKind uint8

// Token kinds.
const (
	TVar     TokKind = iota // the value of a pointer variable
	TAddr                   // the constant &obj (a terminated sequence)
	TNull                   // the null constant (free / explicit null)
	TUnknown                // the walk lost precision; treat conservatively
)

var tokKindNames = [...]string{"var", "addr", "null", "unknown"}

// Token is a tracked value.
type Token struct {
	Kind TokKind
	V    ir.VarID // for TVar and TAddr; NoVar otherwise
}

// VarTok, AddrTok, NullTok and UnknownTok construct tokens.
func VarTok(v ir.VarID) Token  { return Token{Kind: TVar, V: v} }
func AddrTok(o ir.VarID) Token { return Token{Kind: TAddr, V: o} }
func NullTok() Token           { return Token{Kind: TNull, V: ir.NoVar} }
func UnknownTok() Token        { return Token{Kind: TUnknown, V: ir.NoVar} }

// Format renders the token against a program's symbol table.
func (t Token) Format(p *ir.Program) string {
	switch t.Kind {
	case TVar:
		return p.VarName(t.V)
	case TAddr:
		return "&" + p.VarName(t.V)
	case TNull:
		return "null"
	default:
		return "?"
	}
}

func (t Token) String() string {
	if t.Kind == TVar || t.Kind == TAddr {
		return fmt.Sprintf("%s(%d)", tokKindNames[t.Kind], t.V)
	}
	return tokKindNames[t.Kind]
}

// AtomOp is a points-to constraint relation from Definition 8.
type AtomOp uint8

// Constraint relations: at location Loc, X →  Y, X ↛ Y, *X = *Y or
// *X ≠ *Y (same/different target).
const (
	OpPointsTo AtomOp = iota
	OpNotPointsTo
	OpSameTarget
	OpDiffTarget
)

var atomOpNames = [...]string{"->", "-/>", "=*", "!=*"}

// Atom is one points-to constraint `Loc: X op Y`.
type Atom struct {
	Loc ir.Loc
	Op  AtomOp
	X   ir.VarID
	Y   ir.VarID
}

func (a Atom) key() string {
	return fmt.Sprintf("%d:%d:%d:%d", a.Loc, a.Op, a.X, a.Y)
}

// Format renders the atom against a program's symbol table.
func (a Atom) Format(p *ir.Program) string {
	return fmt.Sprintf("L%d: %s %s %s", a.Loc, p.VarName(a.X), atomOpNames[a.Op], p.VarName(a.Y))
}

// Cond is an immutable conjunction of constraint atoms, canonicalized so
// equal conjunctions have equal keys. The empty Cond is `true`.
type Cond struct {
	atoms []Atom
	k     string
}

// TrueCond is the empty (always satisfiable) condition.
func TrueCond() Cond { return Cond{} }

// Atoms returns the conjuncts.
func (c Cond) Atoms() []Atom { return c.atoms }

// IsTrue reports whether c is the empty conjunction.
func (c Cond) IsTrue() bool { return len(c.atoms) == 0 }

// Key is a canonical string identity for deduplication.
func (c Cond) Key() string { return c.k }

// With returns c ∧ a, deduplicating repeated atoms. If the conjunction
// would exceed maxAtoms, the condition is widened to `true` plus a
// poisoned marker is NOT used: widening keeps the tuple sound (a weaker
// condition admits more paths) while bounding the tuple space.
func (c Cond) With(a Atom, maxAtoms int) Cond {
	for _, old := range c.atoms {
		if old == a {
			return c
		}
	}
	if len(c.atoms)+1 > maxAtoms {
		return TrueCond()
	}
	atoms := make([]Atom, 0, len(c.atoms)+1)
	atoms = append(atoms, c.atoms...)
	atoms = append(atoms, a)
	sort.Slice(atoms, func(i, j int) bool { return atoms[i].key() < atoms[j].key() })
	var b strings.Builder
	for i, at := range atoms {
		if i > 0 {
			b.WriteByte('&')
		}
		b.WriteString(at.key())
	}
	return Cond{atoms: atoms, k: b.String()}
}

// And returns the conjunction of c and d under the same width bound.
func (c Cond) And(d Cond, maxAtoms int) Cond {
	out := c
	for _, a := range d.atoms {
		out = out.With(a, maxAtoms)
		if out.IsTrue() && len(d.atoms) > 0 && len(c.atoms)+len(d.atoms) > maxAtoms {
			return TrueCond()
		}
	}
	return out
}

// Format renders the condition against a program's symbol table.
func (c Cond) Format(p *ir.Program) string {
	if c.IsTrue() {
		return "true"
	}
	parts := make([]string, len(c.atoms))
	for i, a := range c.atoms {
		parts[i] = a.Format(p)
	}
	return strings.Join(parts, " & ")
}

// SumTuple is one summary entry (Definition 8): a maximally complete
// update sequence from Src to the summarized pointer, valid under Cond.
type SumTuple struct {
	Src  Token
	Cond Cond
}

func (s SumTuple) key() string { return s.Src.String() + "|" + s.Cond.Key() }

// Format renders the tuple against a program's symbol table.
func (s SumTuple) Format(p *ir.Program) string {
	return fmt.Sprintf("(src=%s, cond=%s)", s.Src.Format(p), s.Cond.Format(p))
}
