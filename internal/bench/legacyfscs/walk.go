package legacyfscs

import (
	"strconv"

	"bootstrap/internal/ir"
)

// walkBack is the engine's core: the backward interprocedural traversal of
// Algorithms 4 and 5. Starting from startLocs in function f with a tracked
// token (the paper's tuple (p, f, l, m, q, cond) — here p and l are fixed
// by the caller, the worklist carries (m, q, cond)), it propagates the
// token against each statement's effect, branching on unresolved points-to
// relations with constraints per Definition 8, splicing callee summaries at
// call nodes, and returning the set of sources: tokens at f's entry (TVar)
// or terminated sequences (TAddr / TNull / TUnknown).
//
// lookup supplies callee exit summaries; during the recursion fixpoint it
// returns the current (possibly still growing) tuple sets.
func (e *Engine) walkBack(f ir.FuncID, start Token, startLocs []ir.Loc, lookup func(ir.FuncID, ir.VarID) map[string]SumTuple) map[string]SumTuple {
	out := map[string]SumTuple{}
	if !e.checkpoint() {
		// Cancelled: return no sources. Callers observe e.over and widen
		// to the fallback, so an empty set here stays sound.
		return out
	}
	if start.Kind != TVar {
		t := SumTuple{Src: start, Cond: TrueCond()}
		out[t.key()] = t
		return out
	}
	entry := e.prog.Func(f).Entry

	type item struct {
		loc  ir.Loc
		tok  Token
		cond Cond
	}
	var work []item
	seen := map[string]bool{}

	record := func(t Token, c Cond) {
		tup := SumTuple{Src: t, Cond: c}
		out[tup.key()] = tup
	}
	push := func(loc ir.Loc, t Token, c Cond) {
		if t.Kind != TVar && !e.hasAssumes {
			// No path constraints to collect: terminated sequences record
			// immediately.
			record(t, c)
			return
		}
		key := strconv.Itoa(int(loc)) + "|" + t.String() + "|" + c.Key()
		if seen[key] {
			return
		}
		seen[key] = true
		work = append(work, item{loc: loc, tok: t, cond: c})
	}
	if len(startLocs) == 0 {
		// Querying at the function entry: the token's value is whatever it
		// holds on entry.
		record(start, TrueCond())
		return out
	}
	for _, l := range startLocs {
		push(l, start, TrueCond())
	}

	for len(work) > 0 {
		if !e.charge() {
			return out
		}
		it := work[len(work)-1]
		work = work[:len(work)-1]

		outcomes := e.transfer(it.loc, it.tok, it.cond, lookup)
		n := e.prog.Node(it.loc)
		for _, oc := range outcomes {
			if oc.tok.Kind != TVar && !e.hasAssumes {
				record(oc.tok, oc.cond)
				continue
			}
			if it.loc == entry {
				record(oc.tok, oc.cond)
				continue
			}
			for _, pr := range n.Preds {
				push(pr, oc.tok, oc.cond)
			}
		}
	}
	return out
}

// outcome is one (token, condition) result of pushing a token backwards
// through a statement.
type outcome struct {
	tok  Token
	cond Cond
}

// transfer implements Algorithm 4: the effect of the statement at loc on a
// tracked token, backwards. It returns the possible outcomes (several when
// a points-to relation cannot be resolved and both cases are tracked under
// constraints).
func (e *Engine) transfer(loc ir.Loc, tok Token, cond Cond, lookup func(ir.FuncID, ir.VarID) map[string]SumTuple) []outcome {
	n := e.prog.Node(loc)
	st := n.Stmt
	q := tok.V
	pass := []outcome{{tok: tok, cond: cond}}

	// A terminated token (null / &obj / unknown) is walked further only
	// to pick up the branch constraints guarding its path: assume nodes
	// strengthen its condition; everything else is transparent.
	if tok.Kind != TVar {
		if st.Op == ir.OpAssumeEq || st.Op == ir.OpAssumeNeq {
			if !e.cl.HasVar(st.Dst) || !e.cl.HasVar(st.Src) {
				return pass
			}
			op := OpSameTarget
			if st.Op == ir.OpAssumeNeq {
				op = OpDiffTarget
			}
			return []outcome{{tok: tok, cond: cond.With(Atom{Loc: loc, Op: op, X: st.Dst, Y: st.Src}, e.maxCond)}}
		}
		return pass
	}

	// Statements outside St_P cannot modify V_P variables (Algorithm 1
	// includes every statement whose destination is relevant), so they act
	// as skips — this is the Prog_P slicing of Section 2.
	switch st.Op {
	case ir.OpCopy, ir.OpAddr, ir.OpLoad, ir.OpStore, ir.OpNullify:
		if !e.cl.HasStmt(loc) {
			return pass
		}
	}

	switch st.Op {
	case ir.OpSkip, ir.OpRet, ir.OpTouch:
		return pass

	case ir.OpAssumeEq, ir.OpAssumeNeq:
		// Path sensitivity (Section 3): the walk crossed a branch arm
		// guarded by a pointer (in)equality; record it as a same-target /
		// different-target constraint (Definition 8) so refutable tuples
		// are weeded out at satisfiability time. Only constraints over
		// tracked (V_P) pointers are recorded — the FSCI points-to sets
		// used to refute them are only computed for the cluster's slice.
		if !e.cl.HasVar(st.Dst) || !e.cl.HasVar(st.Src) {
			return pass
		}
		op := OpSameTarget
		if st.Op == ir.OpAssumeNeq {
			op = OpDiffTarget
		}
		return []outcome{{tok: tok, cond: cond.With(Atom{Loc: loc, Op: op, X: st.Dst, Y: st.Src}, e.maxCond)}}

	case ir.OpCopy:
		if st.Dst == q {
			return []outcome{{tok: VarTok(st.Src), cond: cond}}
		}
		return pass

	case ir.OpAddr:
		if st.Dst == q {
			return []outcome{{tok: AddrTok(st.Src), cond: cond}}
		}
		return pass

	case ir.OpNullify:
		if st.Dst == q {
			return []outcome{{tok: NullTok(), cond: cond}}
		}
		return pass

	case ir.OpLoad: // dst = *s
		if st.Dst != q {
			return pass
		}
		s := st.Src
		if e.sa.SamePartition(s, q) {
			// Cyclic case: s and the tracked pointer share a partition, so
			// the FSCI points-to set of s is not available yet; enumerate
			// the possible objects under constraints (Definition 8).
			var outs []outcome
			for _, o := range e.cl.Vars {
				if e.sa.LocClass(o) == e.sa.ContentClass(s) {
					outs = append(outs, outcome{
						tok:  VarTok(o),
						cond: cond.With(Atom{Loc: loc, Op: OpPointsTo, X: s, Y: o}, e.maxCond),
					})
				}
			}
			if len(outs) == 0 {
				return []outcome{{tok: UnknownTok(), cond: cond}}
			}
			return outs
		}
		// Top-down resolution: s is strictly higher in the hierarchy, so
		// its FSCI points-to set is computable first (Algorithm 2).
		pt, known := e.PointsToAt(s, loc)
		if !known {
			return []outcome{{tok: UnknownTok(), cond: cond}}
		}
		var outs []outcome
		for _, o := range pt {
			if !e.cl.HasVar(o) {
				continue
			}
			outs = append(outs, outcome{
				tok:  VarTok(o),
				cond: cond.With(Atom{Loc: loc, Op: OpPointsTo, X: s, Y: o}, e.maxCond),
			})
		}
		if len(outs) == 0 {
			// s points nowhere the analysis tracks: the load yields an
			// unconstrained value.
			return []outcome{{tok: UnknownTok(), cond: cond}}
		}
		return outs

	case ir.OpStore: // *d = r
		d, r := st.Dst, st.Src
		// The store can touch q only if q's location class is what d
		// points at under Steensgaard.
		if e.sa.LocClass(q) != e.sa.ContentClass(d) {
			return pass
		}
		both := func() []outcome {
			return []outcome{
				{tok: VarTok(r), cond: cond.With(Atom{Loc: loc, Op: OpPointsTo, X: d, Y: q}, e.maxCond)},
				{tok: tok, cond: cond.With(Atom{Loc: loc, Op: OpNotPointsTo, X: d, Y: q}, e.maxCond)},
			}
		}
		if e.sa.SamePartition(d, q) {
			return both() // cyclic case: track constraints
		}
		pt, known := e.PointsToAt(d, loc)
		if !known {
			return both()
		}
		for _, o := range pt {
			if o == q {
				return both()
			}
		}
		return pass // d provably never points at q here

	case ir.OpCall:
		g := st.Callee
		if g == ir.NoFunc {
			// Undevirtualized indirect call: conservatively unknown for
			// any pointer it might modify.
			if e.cl.HasVar(q) {
				return []outcome{{tok: UnknownTok(), cond: cond}}
			}
			return pass
		}
		if !e.Modifies(g, q) {
			// Executing g has no effect on q: jump over the call
			// (Algorithm 5, line 17).
			return pass
		}
		// Splice g's exit summary for q (Algorithm 5, lines 10-13): each
		// source continues in the caller just before the call node, where
		// the parameter-binding copies rebind formals to actuals.
		var outs []outcome
		for _, tup := range lookup(g, q) {
			outs = append(outs, outcome{tok: tup.Src, cond: cond.And(tup.Cond, e.maxCond)})
		}
		// An empty (provisional) summary yields no outcomes this round;
		// the fixpoint revisits once the callee summary grows.
		return outs
	}
	return pass
}
