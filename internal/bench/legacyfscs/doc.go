// Package legacyfscs is a frozen copy of the pre-interning FSCS engine
// (string-keyed summary tuples, per-round sorted worklist), kept solely
// as the baseline side of the perf benchmarks and the BENCH_fscs.json
// emitter. It must never be imported by production code: the live
// engine is internal/fscs. Do not fix or extend this package — its
// whole value is staying identical to the code it was snapshotted from.
package legacyfscs
