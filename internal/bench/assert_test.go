package bench

import (
	"bytes"
	"strings"
	"testing"
)

func perfReport(points ...FSCSPerfPoint) FSCSPerfReport {
	return FSCSPerfReport{Date: "2026-01-01", Scale: 0.12, Reps: 3, Points: points}
}

func perfPoint(bench string, cluster, program, hitRate float64) FSCSPerfPoint {
	return FSCSPerfPoint{
		Bench: bench, Pointers: 100, Clusters: 10,
		ClusterSpeedup: cluster, ProgramSpeedup: program, CacheHitRate: hitRate,
	}
}

func TestAssertFSCSClean(t *testing.T) {
	base := perfReport(perfPoint("sock", 2.8, 2.6, 1.0), perfPoint("autofs", 3.1, 2.9, 1.0))
	fresh := perfReport(perfPoint("sock", 2.7, 2.5, 1.0), perfPoint("autofs", 3.4, 3.0, 1.0))
	if errs := AssertFSCS(base, fresh); len(errs) != 0 {
		t.Fatalf("clean reports should pass, got %v", errs)
	}
}

func TestAssertFSCSWithinTolerance(t *testing.T) {
	base := perfReport(perfPoint("sock", 2.0, 2.0, 1.0))
	// 14% below baseline: inside the 15% allowance.
	fresh := perfReport(perfPoint("sock", 2.0*0.86, 2.0*0.86, 1.0))
	if errs := AssertFSCS(base, fresh); len(errs) != 0 {
		t.Fatalf("14%% drop should pass, got %v", errs)
	}
}

func TestAssertFSCSSeededRegression(t *testing.T) {
	base := perfReport(perfPoint("sock", 2.8, 2.6, 1.0))
	// A seeded >15% cold-path regression must trip the gate.
	fresh := perfReport(perfPoint("sock", 2.8*0.8, 2.6, 1.0))
	errs := AssertFSCS(base, fresh)
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "cluster_speedup") {
		t.Fatalf("20%% cluster_speedup drop should fail with one error, got %v", errs)
	}
}

func TestAssertFSCSColdCache(t *testing.T) {
	base := perfReport(perfPoint("sock", 2.8, 2.6, 1.0))
	fresh := perfReport(perfPoint("sock", 2.8, 2.6, 0.0))
	errs := AssertFSCS(base, fresh)
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "cache_hit_rate") {
		t.Fatalf("cold-cache fresh report should fail, got %v", errs)
	}
}

func TestAssertFSCSMissingBench(t *testing.T) {
	base := perfReport(perfPoint("sock", 2.8, 2.6, 1.0), perfPoint("autofs", 3.1, 2.9, 1.0))
	fresh := perfReport(perfPoint("sock", 2.8, 2.6, 1.0))
	errs := AssertFSCS(base, fresh)
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "missing") {
		t.Fatalf("dropped workload should fail, got %v", errs)
	}
}

func TestAssertFSCSZeroBaselineColumn(t *testing.T) {
	// A baseline measured before a column existed (speedup 0) asserts
	// nothing about it.
	base := perfReport(perfPoint("sock", 0, 2.6, 1.0))
	fresh := perfReport(perfPoint("sock", 1.0, 2.6, 1.0))
	if errs := AssertFSCS(base, fresh); len(errs) != 0 {
		t.Fatalf("zero baseline column should be skipped, got %v", errs)
	}
}

func TestReadFSCSJSONRoundTrip(t *testing.T) {
	rep := perfReport(perfPoint("sock", 2.8, 2.6, 1.0))
	var buf bytes.Buffer
	if err := WriteFSCSJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFSCSJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Points) != 1 || got.Points[0] != rep.Points[0] || got.Scale != rep.Scale {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestReadFSCSJSONRejectsEmpty(t *testing.T) {
	if _, err := ReadFSCSJSON(strings.NewReader(`{"points":[]}`)); err == nil {
		t.Error("empty report should error")
	}
	if _, err := ReadFSCSJSON(strings.NewReader("not json")); err == nil {
		t.Error("malformed report should error")
	}
	if _, err := ReadFSCSJSONFile("nonexistent.json"); err == nil {
		t.Error("missing file should error")
	}
}
