package bench

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"bootstrap/internal/core"
	"bootstrap/internal/frontend"
	"bootstrap/internal/ir"
	"bootstrap/internal/synth"
)

// IncrPoint is one workload's incremental-edit measurement: a full
// analysis, then a storm of deterministic single-statement edits applied
// through core.ApplyEdit. Each edit's latency covers the whole
// edit-to-answer path — clone+apply, dirty-cluster re-solve, and one
// warm query against the new snapshot — which is the interactive budget
// the incremental mode exists to hit. Periodic differential checks pin
// every Nth edited program against a from-scratch analysis
// (fingerprints must be bit-identical), so the speed numbers can't be
// bought with drift.
type IncrPoint struct {
	Workload string `json:"workload"`
	Vars     int    `json:"vars"`
	Clusters int    `json:"clusters"`
	Edits    int    `json:"edits"`

	// FullNS is the from-scratch analysis the edits amortize against.
	FullNS int64 `json:"full_ns"`

	// P50US / P95US / MeanUS are edit-to-answer latencies in
	// microseconds: ApplyEdit plus one warm PointsTo on the result.
	P50US  int64 `json:"p50_us"`
	P95US  int64 `json:"p95_us"`
	MeanUS int64 `json:"mean_us"`

	// DirtyFrac is the mean fraction of cover clusters an edit dirtied;
	// the rest were reused verbatim (Theorem 6's payoff).
	DirtyFrac float64 `json:"dirty_frac"`
	// Speedup is FullNS over the mean edit latency: how many times
	// cheaper an incremental step is than re-analyzing.
	Speedup float64 `json:"speedup"`

	// Fallbacks counts edits that degraded to a full reanalysis; the
	// storm only issues statement-level edits, so any is a failure.
	Fallbacks int `json:"fallbacks"`
	// IdentityChecks counts the differential fingerprint comparisons
	// that ran (and passed — a mismatch fails the bench outright).
	IdentityChecks int `json:"identity_checks"`
}

// IncrReport is the BENCH_incremental.json payload.
type IncrReport struct {
	Date   string      `json:"date"`
	Scale  float64     `json:"scale"`
	Points []IncrPoint `json:"points"`
}

// incrEditCount is the storm length per workload.
const incrEditCount = 40

// incrIdentityEvery spaces the differential checks: every Nth edit, the
// edited program is re-analyzed from scratch and fingerprint-compared.
const incrIdentityEvery = 8

// incrConfig is the analysis configuration of the incremental bench:
// the bootstrapped cascade, eager, no result cache — so every measured
// re-solve is real work, not a cache import.
func incrConfig() core.Config {
	return core.Config{
		Mode:              core.ModeAndersen,
		AndersenThreshold: 60,
	}
}

// incrEdit derives one valid single-statement edit from rng against the
// current program: replace a plain copy/addr/load's source with another
// eligible node's (so operands need no type bookkeeping), or — one time
// in five — delete the statement.
func incrEdit(p *ir.Program, rng *rand.Rand) (ir.Edit, bool) {
	var eligible []ir.Loc
	for _, node := range p.Nodes {
		switch node.Stmt.Op {
		case ir.OpCopy, ir.OpAddr, ir.OpLoad:
			if node.CallLoc == ir.NoLoc {
				eligible = append(eligible, node.Loc)
			}
		}
	}
	if len(eligible) < 2 {
		return ir.Edit{}, false
	}
	loc := eligible[rng.Intn(len(eligible))]
	if rng.Intn(5) == 0 {
		return ir.Edit{Kind: ir.EditDeleteStmt, Loc: loc}, true
	}
	donor := eligible[rng.Intn(len(eligible))]
	st := p.Node(loc).Stmt
	st.Src = p.Node(donor).Stmt.Src
	st.Comment = ""
	return ir.Edit{Kind: ir.EditReplaceStmt, Loc: loc, Stmt: st}, true
}

// incrIdentity fingerprint-compares the incremental analysis against a
// from-scratch analysis of the same (cloned) program.
func incrIdentity(a *core.Analysis, cfg core.Config) error {
	fresh, err := core.AnalyzeProgram(a.Prog.Clone(), cfg)
	if err != nil {
		return fmt.Errorf("fresh analyze: %w", err)
	}
	got, want := a.Fingerprints(), fresh.Fingerprints()
	if len(got) != len(want) {
		return fmt.Errorf("%d selected clusters incrementally, %d fresh", len(got), len(want))
	}
	for id, fp := range want {
		if got[id] != fp {
			return fmt.Errorf("cluster %d fingerprint %s != fresh %s", id, got[id], fp)
		}
	}
	return nil
}

// IncrPerf runs the edit storm over the named workloads at the given
// scale. Edits are deterministic (seeded from the workload name), so two
// runs measure the same storm.
func IncrPerf(names []string, scale float64, log io.Writer) (*IncrReport, error) {
	if log == nil {
		log = io.Discard
	}
	report := &IncrReport{Date: time.Now().UTC().Format("2006-01-02"), Scale: scale}
	for _, name := range names {
		b, ok := synth.FindBenchmark(name)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q", name)
		}
		prog, err := frontend.LowerSource(synth.Generate(b, scale))
		if err != nil {
			return nil, fmt.Errorf("%s: lower: %w", name, err)
		}
		cfg := incrConfig()
		t0 := time.Now()
		a, err := core.AnalyzeProgram(prog, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: analyze: %w", name, err)
		}
		fullNS := time.Since(t0)

		h := fnv.New64a()
		io.WriteString(h, name)
		rng := rand.New(rand.NewSource(int64(h.Sum64())))

		pt := IncrPoint{
			Workload: name,
			Vars:     prog.NumVars(),
			Clusters: len(a.Clusters),
			FullNS:   int64(fullNS),
		}
		fmt.Fprintf(log, "incr-bench %s: full %.0fms, %d clusters, %d edits...\n",
			name, float64(fullNS)/1e6, pt.Clusters, incrEditCount)

		var latencies []time.Duration
		var dirtyFrac float64
		for i := 0; i < incrEditCount; i++ {
			e, ok := incrEdit(a.Prog, rng)
			if !ok {
				return nil, fmt.Errorf("%s: edit %d: no eligible statements left", name, i)
			}
			t0 = time.Now()
			a2, rep, err := core.ApplyEdit(a, []ir.Edit{e})
			if err != nil {
				return nil, fmt.Errorf("%s: edit %d: %w", name, i, err)
			}
			// One warm query on the fresh snapshot closes the
			// edit-to-answer loop the latency budget is about.
			if ptrs := a2.CoveredPointers(); len(ptrs) > 0 {
				a2.PointsTo(ptrs[0], a2.Prog.Func(a2.Prog.Entry).Exit)
			}
			latencies = append(latencies, time.Since(t0))
			if rep.FellBack {
				pt.Fallbacks++
			}
			if rep.Clusters > 0 {
				dirtyFrac += float64(rep.Dirty) / float64(rep.Clusters)
			}
			a = a2
			pt.Edits++
			if (i+1)%incrIdentityEvery == 0 {
				if err := incrIdentity(a, cfg); err != nil {
					return nil, fmt.Errorf("%s: edit %d: identity: %w", name, i, err)
				}
				pt.IdentityChecks++
			}
		}

		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		var sum time.Duration
		for _, d := range latencies {
			sum += d
		}
		mean := sum / time.Duration(len(latencies))
		pt.P50US = latencies[len(latencies)/2].Microseconds()
		pt.P95US = latencies[len(latencies)*95/100].Microseconds()
		pt.MeanUS = mean.Microseconds()
		pt.DirtyFrac = dirtyFrac / float64(pt.Edits)
		if mean > 0 {
			pt.Speedup = float64(fullNS) / float64(mean)
		}
		report.Points = append(report.Points, pt)
	}
	return report, nil
}

// Incremental-mode latency and reuse gates. The interactive target is
// single-digit-millisecond p50 edit-to-answer — the committed baseline
// demonstrates it on reference hardware — but the CI budget leaves
// headroom for slower shared runners; the machine-independent
// invariants (dirty fraction, speedup, fallbacks, identity) are the
// hard lines.
const (
	IncrP50BudgetUS    = 25_000 // p50 edit-to-answer under 25ms (CI headroom over the ~9ms reference)
	IncrDirtyFracLimit = 0.25   // mean dirty-cluster fraction under 25%
	IncrSpeedupFloor   = 1.5    // incremental step ≥1.5× cheaper than full
)

// AssertIncr gates a fresh incremental report: its own invariants (p50
// latency budget, dirty-cluster reuse floor, zero fallbacks, the
// differential identity checks actually ran) plus workload-set equality
// with the committed baseline. Latencies are NOT compared across
// reports — CI hardware varies — the absolute budget is the gate.
func AssertIncr(base, fresh *IncrReport) []error {
	var errs []error
	if len(fresh.Points) == 0 {
		return []error{fmt.Errorf("incremental report has no workloads")}
	}
	for _, pt := range fresh.Points {
		if pt.P50US >= IncrP50BudgetUS {
			errs = append(errs, fmt.Errorf("%s: p50 edit-to-answer %dus, budget %dus",
				pt.Workload, pt.P50US, IncrP50BudgetUS))
		}
		if pt.DirtyFrac >= IncrDirtyFracLimit {
			errs = append(errs, fmt.Errorf("%s: mean dirty fraction %.3f, limit %.2f",
				pt.Workload, pt.DirtyFrac, IncrDirtyFracLimit))
		}
		if pt.Speedup < IncrSpeedupFloor {
			errs = append(errs, fmt.Errorf("%s: speedup %.2f under floor %.1f",
				pt.Workload, pt.Speedup, IncrSpeedupFloor))
		}
		if pt.Fallbacks != 0 {
			errs = append(errs, fmt.Errorf("%s: %d edit(s) fell back to full reanalysis",
				pt.Workload, pt.Fallbacks))
		}
		if pt.IdentityChecks < 1 {
			errs = append(errs, fmt.Errorf("%s: no differential identity check ran",
				pt.Workload))
		}
	}
	if base != nil {
		byName := map[string]bool{}
		for _, pt := range base.Points {
			byName[pt.Workload] = true
		}
		for _, pt := range fresh.Points {
			if !byName[pt.Workload] {
				errs = append(errs, fmt.Errorf("%s: not in the baseline (re-baseline with make incremental-baseline)", pt.Workload))
			}
			delete(byName, pt.Workload)
		}
		for name := range byName {
			errs = append(errs, fmt.Errorf("%s: in the baseline but not measured", name))
		}
	}
	return errs
}

// WriteIncrJSON writes the report as indented JSON.
func WriteIncrJSON(w io.Writer, report *IncrReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// ReadIncrJSONFile loads a BENCH_incremental.json.
func ReadIncrJSONFile(path string) (*IncrReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var report IncrReport
	if err := json.Unmarshal(data, &report); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &report, nil
}

// FormatIncr renders the report as a fixed-width table.
func FormatIncr(report *IncrReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %6s %8s %6s %8s %8s %8s %7s %8s %5s\n",
		"workload", "vars", "clusters", "edits", "full_ms", "p50_ms", "p95_ms", "dirty", "speedup", "fall")
	for _, pt := range report.Points {
		fmt.Fprintf(&sb, "%-12s %6d %8d %6d %8.1f %8.2f %8.2f %6.1f%% %7.0fx %5d\n",
			pt.Workload, pt.Vars, pt.Clusters, pt.Edits,
			float64(pt.FullNS)/1e6,
			float64(pt.P50US)/1e3, float64(pt.P95US)/1e3,
			pt.DirtyFrac*100, pt.Speedup, pt.Fallbacks)
	}
	return sb.String()
}
