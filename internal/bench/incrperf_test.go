package bench

import (
	"io"
	"strings"
	"testing"
)

// TestIncrPerfSmall runs a tiny edit storm end-to-end and checks the
// report's internal consistency plus the gate's own invariants.
func TestIncrPerfSmall(t *testing.T) {
	report, err := IncrPerf([]string{"sock"}, 0.05, io.Discard)
	if err != nil {
		t.Fatalf("IncrPerf: %v", err)
	}
	if len(report.Points) != 1 {
		t.Fatalf("%d points, want 1", len(report.Points))
	}
	pt := report.Points[0]
	if pt.Edits != incrEditCount {
		t.Errorf("edits %d, want %d", pt.Edits, incrEditCount)
	}
	if pt.IdentityChecks != incrEditCount/incrIdentityEvery {
		t.Errorf("identity checks %d, want %d", pt.IdentityChecks, incrEditCount/incrIdentityEvery)
	}
	if pt.Fallbacks != 0 {
		t.Errorf("%d fallbacks on statement-only edits", pt.Fallbacks)
	}
	if pt.DirtyFrac <= 0 || pt.DirtyFrac >= 1 {
		t.Errorf("dirty fraction %.3f out of range", pt.DirtyFrac)
	}
	if pt.P50US <= 0 || pt.P95US < pt.P50US {
		t.Errorf("latency percentiles inconsistent: p50 %d, p95 %d", pt.P50US, pt.P95US)
	}

	// Gate accepts its own fresh run against itself as baseline.
	if errs := AssertIncr(report, report); len(errs) != 0 {
		t.Fatalf("self-assert failed: %v", errs)
	}

	// Workload-set drift is caught both ways.
	other := &IncrReport{Points: []IncrPoint{{
		Workload: "ghost", Edits: 1, IdentityChecks: 1,
		P50US: 1, P95US: 1, MeanUS: 1, DirtyFrac: 0.01, Speedup: 100,
	}}}
	errs := AssertIncr(report, other)
	if len(errs) != 2 {
		t.Fatalf("expected 2 workload-set errors, got %v", errs)
	}

	// Round trip through JSON.
	var sb strings.Builder
	if err := WriteIncrJSON(&sb, report); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"workload": "sock"`) {
		t.Fatalf("bad JSON: %s", sb.String())
	}
	if FormatIncr(report) == "" {
		t.Fatal("empty table")
	}
}

// TestAssertIncrViolations: each gate fires on a report that breaks it.
func TestAssertIncrViolations(t *testing.T) {
	bad := &IncrReport{Points: []IncrPoint{{
		Workload:       "w",
		Edits:          10,
		P50US:          IncrP50BudgetUS + 1,
		P95US:          IncrP50BudgetUS + 1,
		DirtyFrac:      0.5,
		Speedup:        1.0,
		Fallbacks:      2,
		IdentityChecks: 0,
	}}}
	errs := AssertIncr(nil, bad)
	if len(errs) != 5 {
		t.Fatalf("expected 5 violations, got %d: %v", len(errs), errs)
	}
	if errs := AssertIncr(nil, &IncrReport{}); len(errs) != 1 {
		t.Fatalf("empty report must fail: %v", errs)
	}
}
