package bench

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"

	"bootstrap/internal/dist"
	"bootstrap/internal/synth"
)

// TestMain lets ShardPerf's spawned workers re-exec this test binary.
func TestMain(m *testing.M) {
	dist.MaybeWorker()
	os.Exit(m.Run())
}

// syntheticShardReport builds a report AssertShard should accept.
func syntheticShardReport() *ShardPerfReport {
	run := func(shards int, binning string, speedup float64) ShardRun {
		return ShardRun{
			Shards: shards, Binning: binning, Items: 10, Completed: 10,
			EagerSpeedup: speedup, Identical: true,
		}
	}
	point := func(name string) ShardPoint {
		return ShardPoint{Bench: name, Runs: []ShardRun{
			run(1, "steal", 1.0),
			run(4, "steal", 3.2),
			run(4, "greedy", 2.4),
		}}
	}
	return &ShardPerfReport{
		Scale:       0.5,
		ShardCounts: []int{1, 4},
		Points:      []ShardPoint{point("a"), point("b")},
	}
}

func TestAssertShardAcceptsHealthyReport(t *testing.T) {
	if errs := AssertShard(syntheticShardReport()); len(errs) != 0 {
		t.Fatalf("healthy report rejected: %v", errs)
	}
}

func TestAssertShardCatchesViolations(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(*ShardPerfReport)
		want   string
	}{
		{"lost items", func(r *ShardPerfReport) { r.Points[0].Runs[1].Completed = 8 }, "accounted for"},
		{"divergence", func(r *ShardPerfReport) { r.Points[1].Runs[1].Identical = false }, "diverged"},
		{"slow stealing", func(r *ShardPerfReport) { r.Points[0].Runs[1].EagerSpeedup = 1.9 }, "fell behind"},
		{"speedup floor", func(r *ShardPerfReport) {
			for i := range r.Points {
				r.Points[i].Runs[1].EagerSpeedup = 2.0 // < 0.625 * 4
			}
		}, "on only"},
	} {
		r := syntheticShardReport()
		tc.mutate(r)
		errs := AssertShard(r)
		found := false
		for _, e := range errs {
			if strings.Contains(e.Error(), tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no error containing %q in %v", tc.name, tc.want, errs)
		}
	}
}

func TestShardJSONRoundTrip(t *testing.T) {
	report := syntheticShardReport()
	var buf bytes.Buffer
	if err := WriteShardJSON(&buf, report); err != nil {
		t.Fatal(err)
	}
	f, err := os.CreateTemp(t.TempDir(), "shard-*.json")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.Copy(f, &buf); err != nil {
		t.Fatal(err)
	}
	f.Close()
	back, err := ReadShardJSONFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Points) != 2 || back.Points[0].Runs[1].EagerSpeedup != 3.2 {
		t.Fatalf("round trip mangled the report: %+v", back)
	}
}

// TestShardPerfSweepSmall runs the real sweep — worker processes, cold
// caches, identity checks — on one small workload.
func TestShardPerfSweepSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	b, _ := synth.FindBenchmark("sock")
	report, err := ShardPerf([]synth.Benchmark{b}, []int{1, 2}, Options{Scale: 0.1}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Points) != 1 || len(report.Points[0].Runs) != 3 {
		t.Fatalf("unexpected report shape: %+v", report)
	}
	for _, run := range report.Points[0].Runs {
		if !run.Identical {
			t.Errorf("shards=%d %s: not bit-identical", run.Shards, run.Binning)
		}
		if run.Completed != run.Items {
			t.Errorf("shards=%d %s: completed %d/%d", run.Shards, run.Binning, run.Completed, run.Items)
		}
	}
}
