package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"bootstrap/internal/bench/legacyfscs"
	"bootstrap/internal/callgraph"
	"bootstrap/internal/cluster"
	"bootstrap/internal/frontend"
	"bootstrap/internal/fscs"
	"bootstrap/internal/steens"
	"bootstrap/internal/synth"
)

func perfRows(t *testing.T, names ...string) []synth.Benchmark {
	t.Helper()
	var rows []synth.Benchmark
	for _, n := range names {
		b, ok := synth.FindBenchmark(n)
		if !ok {
			t.Fatalf("unknown benchmark %s", n)
		}
		rows = append(rows, b)
	}
	return rows
}

func TestFSCSPerfReport(t *testing.T) {
	rows := perfRows(t, "sock", "ctrace")
	rep, err := FSCSPerf(rows, Options{Scale: 0.05}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != len(rows)*len(fscsWorkersAxis) {
		t.Fatalf("got %d points, want %d", len(rep.Points), len(rows)*len(fscsWorkersAxis))
	}
	for i, p := range rep.Points {
		row, wi := rows[i/len(fscsWorkersAxis)], i%len(fscsWorkersAxis)
		if p.Bench != row.Name {
			t.Errorf("point %d is %s, want %s (fixed cover order)", i, p.Bench, row.Name)
		}
		if p.Workers != fscsWorkersAxis[wi] {
			t.Errorf("point %d has workers=%d, want %d", i, p.Workers, fscsWorkersAxis[wi])
		}
		if p.Clusters <= 0 || p.Pointers <= 0 {
			t.Errorf("%s: empty shape: %+v", p.Bench, p)
		}
		if p.ProgramSpeedup <= 0 {
			t.Errorf("%s/w%d: program speedup not computed: %+v", p.Bench, p.Workers, p)
		}
		if wi == 0 {
			if p.ClusterSpeedup <= 0 {
				t.Errorf("%s/w%d: cluster speedup not computed: %+v", p.Bench, p.Workers, p)
			}
			if p.PartitionMax <= 0 || p.ClusterMax <= 0 ||
				p.PartitionP50 > p.PartitionP90 || p.PartitionP90 > p.PartitionMax ||
				p.ClusterP50 > p.ClusterP90 || p.ClusterP90 > p.ClusterMax {
				t.Errorf("%s: bad size histogram: %+v", p.Bench, p)
			}
			if p.PrecisePartitionMax <= 0 || p.PrecisePartitionMax > p.PartitionMax {
				t.Errorf("%s: precise partition max %d outside (0, %d]", p.Bench, p.PrecisePartitionMax, p.PartitionMax)
			}
		} else if p.ClusterSpeedup != 0 || p.PartitionMax != 0 {
			t.Errorf("%s/w%d: workers-independent columns duplicated: %+v", p.Bench, p.Workers, p)
		}
	}
	var buf bytes.Buffer
	if err := WriteFSCSJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var back FSCSPerfReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("BENCH_fscs.json does not round-trip: %v", err)
	}
	if len(back.Points) != len(rep.Points) || back.Scale != rep.Scale {
		t.Errorf("round-trip mismatch: %+v vs %+v", back, rep)
	}
}

// TestLegacyEngineAgrees keeps the benchmark honest: the frozen baseline
// and the interned engine must still answer points-to queries
// identically, otherwise the speedup columns compare different analyses.
func TestLegacyEngineAgrees(t *testing.T) {
	for _, row := range perfRows(t, "sock", "ctrace") {
		prog, err := frontend.LowerSource(synth.Generate(row, 0.05))
		if err != nil {
			t.Fatal(err)
		}
		sa := steens.Analyze(prog)
		cg := callgraph.Build(prog)
		exit := prog.Func(prog.Entry).Exit
		for _, c := range cluster.BuildAndersen(prog, sa, 8) {
			neu := fscs.NewEngine(prog, cg, sa, c)
			old := legacyfscs.NewEngine(prog, cg, sa, c)
			if err := neu.Run(); err != nil {
				t.Fatalf("%s cluster %d: interned run: %v", row.Name, c.ID, err)
			}
			if err := old.Run(); err != nil {
				t.Fatalf("%s cluster %d: legacy run: %v", row.Name, c.ID, err)
			}
			for _, p := range c.Pointers {
				gotObjs, gotOK := neu.PointsToAt(p, exit)
				wantObjs, wantOK := old.PointsToAt(p, exit)
				if gotOK != wantOK || len(gotObjs) != len(wantObjs) {
					t.Fatalf("%s cluster %d ptr %d: interned (%v,%v) vs legacy (%v,%v)",
						row.Name, c.ID, p, gotObjs, gotOK, wantObjs, wantOK)
				}
				for i := range gotObjs {
					if gotObjs[i] != wantObjs[i] {
						t.Fatalf("%s cluster %d ptr %d: interned %v vs legacy %v",
							row.Name, c.ID, p, gotObjs, wantObjs)
					}
				}
			}
		}
	}
}
