package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"bootstrap/internal/core"
	"bootstrap/internal/dist"
	"bootstrap/internal/ir"
	"bootstrap/internal/synth"
)

// ShardRun is one (shards, binning) cell of the distributed-execution
// benchmark: the coordinator's accounting plus the bit-identity verdict
// against the single-process solve of the same workload.
//
// EagerSpeedup is the machine-independent column: per-cluster busy is
// process CPU time (rusage), so total-busy / busiest-shard-busy states
// how much faster the eager phase completes on k real machines — the
// paper's simulated-multiple-machines estimate (Section 5), not an
// artifact of the benchmark host's core count. WallNS is the observed
// local wall clock, which on a small host mostly measures time-slicing.
type ShardRun struct {
	Shards  int    `json:"shards"`
	Binning string `json:"binning"`

	Items       int   `json:"items"`
	Completed   int   `json:"completed"`
	Abandoned   int   `json:"abandoned"`
	Steals      int64 `json:"steals"`
	Expirations int64 `json:"lease_expirations"`

	WallNS         int64   `json:"wall_ns"`
	BusyTotalNS    int64   `json:"busy_total_ns"`
	CriticalPathNS int64   `json:"critical_path_ns"`
	EagerSpeedup   float64 `json:"eager_speedup"`

	ShardBusyNS []int64   `json:"per_shard_busy_ns"`
	ShardSteals []int64   `json:"per_shard_steals"`
	Utilization []float64 `json:"per_shard_utilization"`

	// Identical is the correctness verdict: the merged distributed
	// analysis answered every query bit-identically to a single-process
	// solve.
	Identical bool `json:"identical"`
}

// ShardPoint is one workload's sweep over the shard axis.
type ShardPoint struct {
	Bench    string     `json:"bench"`
	Pointers int        `json:"pointers"`
	Clusters int        `json:"clusters"`
	Runs     []ShardRun `json:"runs"`
}

// ShardPerfReport is the BENCH_shard.json payload.
type ShardPerfReport struct {
	Date        string       `json:"date"`
	Scale       float64      `json:"scale"`
	ShardCounts []int        `json:"shard_counts"`
	Points      []ShardPoint `json:"points"`
}

// distDump serializes an analysis's observable query surface (cover,
// health, per-pointer answers at program exit) for the bit-identity
// check. Identical dumps = observably identical analyses.
func distDump(a *core.Analysis) string {
	var sb strings.Builder
	for _, c := range a.Clusters {
		fmt.Fprintf(&sb, "cluster %d %s %v\n", c.ID, c.Kind, c.Pointers)
	}
	for _, h := range a.Health {
		fmt.Fprintf(&sb, "health %d demoted=%v\n", h.ClusterID, h.Demoted)
	}
	exit := a.Prog.Func(a.Prog.Entry).Exit
	seen := map[ir.VarID]bool{}
	var ptrs []ir.VarID
	for _, c := range a.Clusters {
		for _, p := range c.Pointers {
			if !seen[p] {
				seen[p] = true
				ptrs = append(ptrs, p)
			}
		}
	}
	sort.Slice(ptrs, func(i, j int) bool { return ptrs[i] < ptrs[j] })
	for _, p := range ptrs {
		objs, precise := a.PointsTo(p, exit)
		fmt.Fprintf(&sb, "pts %d %v %v\n", p, objs, precise)
	}
	return sb.String()
}

// shardConfig is the analysis configuration every shard measurement
// runs under: one engine at a time per process (the parallelism IS the
// shard fanout), bench-standard threshold scaling.
func shardConfig(opt Options) core.Config {
	return core.Config{
		Mode:              core.ModeAndersen,
		AndersenThreshold: opt.Threshold,
		Workers:           1,
		ClusterTimeout:    opt.ClusterTimeout,
		Retries:           opt.Retries,
	}
}

// ShardPerf sweeps the distributed eager solve over shardCounts × both
// binning policies for each workload, with real re-exec'd worker
// processes and a fresh (cold) result cache per cell. The suite's
// single-process solve is the identity reference for every cell.
func ShardPerf(suite []synth.Benchmark, shardCounts []int, opt Options, log io.Writer) (*ShardPerfReport, error) {
	if log == nil {
		log = io.Discard
	}
	report := &ShardPerfReport{
		Date:        time.Now().UTC().Format("2006-01-02"),
		Scale:       opt.Scale,
		ShardCounts: shardCounts,
	}
	cfg := shardConfig(opt)
	for _, b := range suite {
		src := synth.Generate(b, opt.Scale)
		single, err := core.AnalyzeSource(src, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: single-process reference: %w", b.Name, err)
		}
		want := distDump(single)
		pt := ShardPoint{
			Bench:    b.Name,
			Pointers: single.Prog.NumVars(),
			Clusters: len(single.Clusters),
		}
		for _, shards := range shardCounts {
			for _, binning := range []dist.Binning{dist.BinningSteal, dist.BinningGreedy} {
				if shards == 1 && binning == dist.BinningGreedy {
					continue // one bin: the policies are the same run
				}
				fmt.Fprintf(log, "shard-bench %s: shards=%d binning=%s...\n", b.Name, shards, binning)
				res, err := dist.Run(context.Background(), src, cfg, dist.RunOptions{
					Shards:  shards,
					Binning: binning,
				})
				if err != nil {
					return nil, fmt.Errorf("%s shards=%d %s: %w", b.Name, shards, binning, err)
				}
				pt.Runs = append(pt.Runs, shardRun(res, want))
			}
		}
		report.Points = append(report.Points, pt)
	}
	return report, nil
}

// shardRun flattens one dist run into its report cell.
func shardRun(res *dist.RunResult, wantDump string) ShardRun {
	r := res.Report
	run := ShardRun{
		Shards:         r.Shards,
		Binning:        string(r.Binning),
		Items:          r.Items,
		Completed:      r.Completed,
		Abandoned:      r.Abandoned,
		Steals:         r.Steals,
		Expirations:    r.Expirations,
		WallNS:         r.WallNS,
		BusyTotalNS:    r.BusyTotalNS,
		CriticalPathNS: r.CriticalPathNS,
		EagerSpeedup:   r.EagerSpeedup,
		Identical:      distDump(res.Analysis) == wantDump,
	}
	for _, s := range r.PerShard {
		run.ShardBusyNS = append(run.ShardBusyNS, s.BusyNS)
		run.ShardSteals = append(run.ShardSteals, s.Steals)
		run.Utilization = append(run.Utilization, s.Utilization)
	}
	return run
}

// find returns the run cell for (shards, binning), or nil.
func (p *ShardPoint) find(shards int, binning dist.Binning) *ShardRun {
	for i := range p.Runs {
		if p.Runs[i].Shards == shards && p.Runs[i].Binning == string(binning) {
			return &p.Runs[i]
		}
	}
	return nil
}

// stealVsGreedyTolerance is the slack AssertShard allows before calling
// a work-stealing run slower than its static-binning twin: busy times
// are rusage measurements, so exact ties jitter.
const stealVsGreedyTolerance = 0.90

// minSpeedupPerShard is the per-shard speedup floor AssertShard scales
// by the report's largest shard count: 0.625 × 4 shards = the 2.5×
// acceptance threshold.
const minSpeedupPerShard = 0.625

// AssertShard checks a shard report's invariants and returns one error
// per violation:
//
//   - every cell completed (or abandoned-and-merged) all items and was
//     bit-identical to the single-process solve;
//   - at the largest shard count, the work-stealing eager speedup
//     reaches minSpeedupPerShard × shards on at least two workloads
//     (or all of them, when the report has fewer);
//   - work stealing is never meaningfully slower than static greedy
//     binning on any workload.
func AssertShard(report *ShardPerfReport) []error {
	var errs []error
	if len(report.Points) == 0 {
		return []error{fmt.Errorf("shard report has no workloads")}
	}
	maxShards := 0
	for _, s := range report.ShardCounts {
		if s > maxShards {
			maxShards = s
		}
	}
	for _, pt := range report.Points {
		for _, run := range pt.Runs {
			if run.Completed+run.Abandoned != run.Items {
				errs = append(errs, fmt.Errorf("%s shards=%d %s: %d+%d of %d items accounted for",
					pt.Bench, run.Shards, run.Binning, run.Completed, run.Abandoned, run.Items))
			}
			if !run.Identical {
				errs = append(errs, fmt.Errorf("%s shards=%d %s: merged analysis diverged from the single-process solve",
					pt.Bench, run.Shards, run.Binning))
			}
		}
		steal, greedy := pt.find(maxShards, dist.BinningSteal), pt.find(maxShards, dist.BinningGreedy)
		if steal != nil && greedy != nil && steal.EagerSpeedup < greedy.EagerSpeedup*stealVsGreedyTolerance {
			errs = append(errs, fmt.Errorf("%s shards=%d: work stealing (%.2fx) fell behind greedy binning (%.2fx)",
				pt.Bench, maxShards, steal.EagerSpeedup, greedy.EagerSpeedup))
		}
	}
	if maxShards > 1 {
		want := minSpeedupPerShard * float64(maxShards)
		need := 2
		if len(report.Points) < need {
			need = len(report.Points)
		}
		got := 0
		for _, pt := range report.Points {
			if run := pt.find(maxShards, dist.BinningSteal); run != nil && run.EagerSpeedup >= want {
				got++
			}
		}
		if got < need {
			errs = append(errs, fmt.Errorf("eager speedup >= %.2fx at %d shards on only %d workload(s), want >= %d",
				want, maxShards, got, need))
		}
	}
	return errs
}

// WriteShardJSON writes the report as indented JSON.
func WriteShardJSON(w io.Writer, report *ShardPerfReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// ReadShardJSONFile loads a BENCH_shard.json.
func ReadShardJSONFile(path string) (*ShardPerfReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var report ShardPerfReport
	if err := json.Unmarshal(data, &report); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &report, nil
}

// FormatShard renders the report as a fixed-width table.
func FormatShard(report *ShardPerfReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %6s %7s %6s %6s %7s %7s %9s %5s\n",
		"bench", "shards", "binning", "items", "steals", "expire", "speedup", "util", "ident")
	for _, pt := range report.Points {
		for _, run := range pt.Runs {
			minU := 1.0
			for _, u := range run.Utilization {
				if u < minU {
					minU = u
				}
			}
			fmt.Fprintf(&sb, "%-10s %6d %7s %6d %6d %7d %6.2fx %9.2f %5v\n",
				pt.Bench, run.Shards, run.Binning, run.Items, run.Steals,
				run.Expirations, run.EagerSpeedup, minU, run.Identical)
		}
	}
	return sb.String()
}
