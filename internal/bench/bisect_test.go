package bench

import (
	"context"
	"testing"

	"bootstrap/internal/core"
	"bootstrap/internal/frontend"
	"bootstrap/internal/synth"
)

func BenchmarkAutofsPipelined(b *testing.B) {
	bm, _ := synth.FindBenchmark("autofs")
	prog, err := frontend.LowerSource(synth.Generate(bm, 0.12))
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{Mode: core.ModeAndersen, Workers: 1, AndersenThreshold: 7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.AnalyzeProgramContext(context.Background(), prog, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
