// Package bench regenerates the paper's evaluation artifacts: Table 1
// (flow- and context-sensitive alias analysis without clustering, with
// Steensgaard clustering, and with Andersen clustering, including the
// simulated 5-machine parallelization) and Figure 1 (cluster-size
// frequencies, Steensgaard vs Andersen), over the synthetic workloads of
// package synth. It also provides the Andersen-threshold sweep ablation
// discussed in Section 2.
package bench

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"bootstrap/internal/cache"
	"bootstrap/internal/callgraph"
	"bootstrap/internal/cluster"
	"bootstrap/internal/core"
	"bootstrap/internal/frontend"
	"bootstrap/internal/ir"
	"bootstrap/internal/obs"
	"bootstrap/internal/steens"
	"bootstrap/internal/synth"
)

// Options tune a harness run.
type Options struct {
	// Scale shrinks the paper-sized workloads (1.0 = full size).
	Scale float64
	// Parts is the simulated machine count (paper: 5).
	Parts int
	// Budget caps worklist tuples for the *unclustered* run — the
	// analogue of the paper's 15-minute timeout. Zero means 3e6.
	Budget int64
	// SkipNoClustering skips the expensive monolithic baseline.
	SkipNoClustering bool
	// Threshold overrides the Andersen threshold (0 = paper default 60,
	// scaled).
	Threshold int
	// ClusterTimeout bounds each engine attempt's wall clock (0 = no
	// deadline) — rows then record the demoted clusters in their health
	// counts instead of running forever.
	ClusterTimeout time.Duration
	// Retries is the degradation-ladder retry count handed to the
	// scheduler (see core.Config.Retries). Zero keeps the historical
	// bench behavior of a single attempt per cluster, so retry time
	// never pollutes the Table 1 columns unless asked for.
	Retries int
	// CacheDir, when non-empty, gives the per-cluster result cache a disk
	// tier under it, so the warm-rerun measurements survive across
	// benchtab invocations (a second run against the same directory
	// starts fully warm).
	CacheDir string
	// Tracer and Metrics, when non-nil, observe the per-cluster scheduler
	// runs (cluster/attempt/cache spans, outcome counters). The perf
	// measurements (FSCSPerf) never see them: trajectory numbers must not
	// include instrumentation, however cheap.
	Tracer  *obs.Tracer
	Metrics *obs.Metrics
}

func (o *Options) fill() {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Parts <= 0 {
		o.Parts = 5
	}
	if o.Budget <= 0 {
		o.Budget = 3_000_000
	}
	if o.Retries == 0 {
		o.Retries = -1
	}
}

func (o *Options) threshold() int {
	if o.Threshold > 0 {
		return o.Threshold
	}
	t := int(float64(cluster.DefaultAndersenThreshold) * o.Scale)
	if t < 4 {
		t = 4
	}
	return t
}

// HealthCounts aggregates the scheduler's per-cluster health over one
// cover run.
type HealthCounts struct {
	OK, Retried, Recovered, Exhausted, TimedOut, Degraded int
}

func (h *HealthCounts) add(s core.HealthStatus) {
	switch s {
	case core.HealthOK:
		h.OK++
	case core.HealthRetried:
		h.Retried++
	case core.HealthRecovered:
		h.Recovered++
	case core.HealthExhausted:
		h.Exhausted++
	case core.HealthTimedOut:
		h.TimedOut++
	case core.HealthDegraded:
		h.Degraded++
	}
}

// Demoted counts the clusters that lost their engine and fell back to
// the flow-insensitive answer.
func (h HealthCounts) Demoted() int { return h.Exhausted + h.TimedOut + h.Degraded }

// String renders the non-zero failure counts, e.g. "2 exhausted"; empty
// when every cluster completed on the first attempt.
func (h HealthCounts) String() string {
	var parts []string
	for _, p := range []struct {
		n    int
		name string
	}{
		{h.Retried, "retried"}, {h.Recovered, "recovered"},
		{h.Exhausted, "exhausted"}, {h.TimedOut, "timed-out"}, {h.Degraded, "degraded"},
	} {
		if p.n > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", p.n, p.name))
		}
	}
	return strings.Join(parts, ", ")
}

// Row is one measured Table 1 row.
type Row struct {
	Bench    synth.Benchmark
	Pointers int // measured abstract-object count

	SteensTime  time.Duration // partitioning (column 4)
	ClusterTime time.Duration // Andersen clustering (column 5)

	NoClusterTime     time.Duration // column 6
	NoClusterTimedOut bool

	SteensNum  int           // column 7 (#cluster)
	SteensMax  int           // column 8 (Max)
	SteensFSCS time.Duration // column 9 (simulated 5-part time)

	AndersenNum  int           // column 10
	AndersenMax  int           // column 11
	AndersenFSCS time.Duration // column 12

	// AndersenWarm re-measures the Andersen cover against a warm result
	// cache: every cluster's fingerprint hits, so this is the incremental
	// reanalysis cost of an unchanged program.
	AndersenWarm time.Duration
	// WarmCache is the warm rerun's cache traffic (hits, misses, bytes).
	WarmCache cache.Stats

	// Scheduler health per cover (budget exhaustion, deadlines, panics).
	NoClusterHealth HealthCounts
	SteensHealth    HealthCounts
	AndersenHealth  HealthCounts
}

// runCover runs the per-cluster FSCS engines sequentially through the
// fault-tolerant scheduler, returning the per-cluster times (for the
// machine simulation) and the aggregated health report.
func runCover(prog *ir.Program, cg *callgraph.Graph, sa *steens.Analysis,
	cs []*cluster.Cluster, budget int64, opt Options, cc *cache.Cache) ([]time.Duration, HealthCounts) {
	times := make([]time.Duration, len(cs))
	var hc HealthCounts
	cfg := core.Config{
		ClusterBudget:  budget,
		ClusterTimeout: opt.ClusterTimeout,
		Retries:        opt.Retries,
		Cache:          cc,
		Tracer:         opt.Tracer,
		Metrics:        opt.Metrics,
	}
	for i, c := range cs {
		t := time.Now()
		_, h := core.RunCluster(context.Background(), prog, cg, sa, c, nil, cfg)
		times[i] = time.Since(t)
		hc.add(h.Status)
	}
	return times, hc
}

func sum(ds []time.Duration) time.Duration {
	var t time.Duration
	for _, d := range ds {
		t += d
	}
	return t
}

// RunRow generates b's synthetic workload and measures one Table 1 row.
func RunRow(b synth.Benchmark, opt Options) (Row, error) {
	opt.fill()
	src := synth.Generate(b, opt.Scale)
	prog, err := frontend.LowerSource(src)
	if err != nil {
		return Row{}, fmt.Errorf("bench %s: %w", b.Name, err)
	}
	row := Row{Bench: b, Pointers: prog.NumVars()}

	t0 := time.Now()
	sa := steens.Analyze(prog)
	row.SteensTime = time.Since(t0)
	cg := callgraph.Build(prog)

	// Column 6: FSCS without clustering (budgeted, like the 15-min cap).
	if !opt.SkipNoClustering {
		whole := []*cluster.Cluster{cluster.BuildWhole(prog, sa)}
		times, hc := runCover(prog, cg, sa, whole, opt.Budget, opt, nil)
		row.NoClusterTime = sum(times)
		row.NoClusterHealth = hc
		row.NoClusterTimedOut = hc.Demoted() > 0
	}

	// Columns 7-9: Steensgaard clustering.
	steensCover := cluster.BuildSteensgaard(prog, sa)
	ss := cluster.CoverStats(steensCover)
	row.SteensNum, row.SteensMax = ss.NumClusters, ss.MaxSize
	stimes, shc := runCover(prog, cg, sa, steensCover, 0, opt, nil)
	row.SteensHealth = shc
	row.SteensFSCS = core.SimulateParallel(steensCover, stimes, opt.Parts)

	// Columns 5, 10-12: Andersen clustering.
	t1 := time.Now()
	andersenCover := cluster.BuildAndersen(prog, sa, opt.threshold())
	row.ClusterTime = time.Since(t1)
	as := cluster.CoverStats(andersenCover)
	row.AndersenNum, row.AndersenMax = as.NumClusters, as.MaxSize
	atimes, ahc := runCover(prog, cg, sa, andersenCover, 0, opt, nil)
	row.AndersenHealth = ahc
	row.AndersenFSCS = core.SimulateParallel(andersenCover, atimes, opt.Parts)

	// Warm rerun: populate the result cache with one pass over the
	// Andersen cover, then measure the rerun that serves from it.
	cc := cache.New(cache.Options{Dir: opt.CacheDir})
	runCover(prog, cg, sa, andersenCover, 0, opt, cc)
	before := cc.Stats()
	wtimes, _ := runCover(prog, cg, sa, andersenCover, 0, opt, cc)
	row.AndersenWarm = sum(wtimes)
	row.WarmCache = cc.Stats().Sub(before)

	return row, nil
}

// RunTable measures every given row, streaming progress to w (nil for
// silent).
func RunTable(benches []synth.Benchmark, opt Options, w io.Writer) ([]Row, error) {
	var rows []Row
	for _, b := range benches {
		if w != nil {
			fmt.Fprintf(w, "running %-16s ...", b.Name)
		}
		row, err := RunRow(b, opt)
		if err != nil {
			return nil, err
		}
		if w != nil {
			fmt.Fprintf(w, " done (%d pointers, %d+%d clusters)\n",
				row.Pointers, row.SteensNum, row.AndersenNum)
			for _, cover := range []struct {
				name string
				hc   HealthCounts
			}{
				{"no-clustering", row.NoClusterHealth},
				{"steensgaard", row.SteensHealth},
				{"andersen", row.AndersenHealth},
			} {
				if s := cover.hc.String(); s != "" {
					fmt.Fprintf(w, "  %s health: %s\n", cover.name, s)
				}
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func fmtDur(d time.Duration, timedOut bool) string {
	if timedOut {
		return "> budget"
	}
	switch {
	case d >= time.Minute:
		return fmt.Sprintf("%.1fmin", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	}
	return fmt.Sprintf("%dµs", d.Microseconds())
}

// FormatTable renders measured rows in the layout of the paper's Table 1.
func FormatTable(rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %6s %9s | %9s %9s | %10s | %8s %5s %9s | %8s %5s %9s\n",
		"Example", "KLOC", "#pointers", "Steens", "AndClust", "NoCluster",
		"#cluster", "Max", "Time", "#cluster", "Max", "Time")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 132))
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %6.1f %9d | %9s %9s | %10s | %8d %5d %9s | %8d %5d %9s\n",
			r.Bench.Name, r.Bench.KLOC, r.Pointers,
			fmtDur(r.SteensTime, false), fmtDur(r.ClusterTime, false),
			fmtDur(r.NoClusterTime, r.NoClusterTimedOut),
			r.SteensNum, r.SteensMax, fmtDur(r.SteensFSCS, false),
			r.AndersenNum, r.AndersenMax, fmtDur(r.AndersenFSCS, false))
	}
	return b.String()
}

// coverOrder fixes the order of the per-cover timing columns. Columns
// are emitted from this slice, never by ranging over a map, so repeated
// benchtab runs diff cleanly.
var coverOrder = []string{"steens-partition", "andersen-cluster", "no-clustering", "steens-fscs", "andersen-fscs", "andersen-warm", "warm-cache"}

// FormatTimings renders one timing column per cover stage, per row, in
// the fixed coverOrder, with the warm rerun's cache traffic last.
func FormatTimings(rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s", "Example")
	for _, c := range coverOrder {
		fmt.Fprintf(&b, " %16s", c)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 16+17*len(coverOrder)))
	for _, r := range rows {
		cols := map[string]string{
			"steens-partition": fmtDur(r.SteensTime, false),
			"andersen-cluster": fmtDur(r.ClusterTime, false),
			"no-clustering":    fmtDur(r.NoClusterTime, r.NoClusterTimedOut),
			"steens-fscs":      fmtDur(r.SteensFSCS, false),
			"andersen-fscs":    fmtDur(r.AndersenFSCS, false),
			"andersen-warm":    fmtDur(r.AndersenWarm, false),
			"warm-cache":       fmt.Sprintf("%dh/%dm", r.WarmCache.Hits, r.WarmCache.Misses),
		}
		fmt.Fprintf(&b, "%-16s", r.Bench.Name)
		for _, c := range coverOrder {
			fmt.Fprintf(&b, " %16s", cols[c])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatComparison renders paper-reported vs measured shape metrics, the
// content of EXPERIMENTS.md.
func FormatComparison(rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s | %22s | %22s | %26s\n",
		"Example", "max part (paper/ours)", "max clus (paper/ours)", "no-clustering (paper/ours)")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 96))
	for _, r := range rows {
		ours := fmtDur(r.NoClusterTime, r.NoClusterTimedOut)
		fmt.Fprintf(&b, "%-16s | %10d / %-9d | %10d / %-9d | %12s / %-11s\n",
			r.Bench.Name,
			r.Bench.SteensMax, r.SteensMax,
			r.Bench.AndersenMax, r.AndersenMax,
			r.Bench.PaperNoClusterTime, ours)
	}
	return b.String()
}

// HistPoint is one cluster-size frequency.
type HistPoint struct {
	Size  int
	Count int
}

// Figure1 computes the cluster-size frequency series (Steensgaard vs
// Andersen) for one benchmark — the data behind the paper's Figure 1.
func Figure1(b synth.Benchmark, opt Options) (steensHist, andersenHist []HistPoint, err error) {
	opt.fill()
	src := synth.Generate(b, opt.Scale)
	prog, err := frontend.LowerSource(src)
	if err != nil {
		return nil, nil, err
	}
	sa := steens.Analyze(prog)
	toPoints := func(h map[int]int) []HistPoint {
		var out []HistPoint
		for size, count := range h {
			out = append(out, HistPoint{Size: size, Count: count})
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Size < out[j].Size })
		return out
	}
	steensHist = toPoints(cluster.SizeHistogram(cluster.BuildSteensgaard(prog, sa)))
	andersenHist = toPoints(cluster.SizeHistogram(cluster.BuildAndersen(prog, sa, opt.threshold())))
	return steensHist, andersenHist, nil
}

// FormatHistogram renders the two series side by side, with a crude
// log-scale bar per count — a terminal rendition of Figure 1.
func FormatHistogram(steensHist, andersenHist []HistPoint) string {
	counts := map[int][2]int{}
	maxSize := 0
	for _, p := range steensHist {
		c := counts[p.Size]
		c[0] = p.Count
		counts[p.Size] = c
		if p.Size > maxSize {
			maxSize = p.Size
		}
	}
	for _, p := range andersenHist {
		c := counts[p.Size]
		c[1] = p.Count
		counts[p.Size] = c
		if p.Size > maxSize {
			maxSize = p.Size
		}
	}
	sizes := make([]int, 0, len(counts))
	for s := range counts {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	var b strings.Builder
	fmt.Fprintf(&b, "%6s %10s %10s   (s = Steensgaard, a = Andersen)\n", "size", "#steens", "#andersen")
	for _, s := range sizes {
		c := counts[s]
		fmt.Fprintf(&b, "%6d %10d %10d   %s%s\n", s, c[0], c[1],
			strings.Repeat("s", intLog(c[0])), strings.Repeat("a", intLog(c[1])))
	}
	return b.String()
}

func intLog(n int) int {
	l := 0
	for n > 0 {
		l++
		n /= 4
	}
	return l
}

// ThresholdPoint is one ablation measurement.
type ThresholdPoint struct {
	Threshold   int
	NumClusters int
	MaxSize     int
	ClusterTime time.Duration
	FSCSSimTime time.Duration
}

// ThresholdSweep measures the Andersen-threshold ablation: clustering cost
// and simulated FSCS time as the threshold varies (the paper fixes 60
// empirically; this sweep regenerates the evidence).
func ThresholdSweep(b synth.Benchmark, thresholds []int, opt Options) ([]ThresholdPoint, error) {
	opt.fill()
	src := synth.Generate(b, opt.Scale)
	prog, err := frontend.LowerSource(src)
	if err != nil {
		return nil, err
	}
	sa := steens.Analyze(prog)
	cg := callgraph.Build(prog)
	var out []ThresholdPoint
	for _, th := range thresholds {
		t0 := time.Now()
		cover := cluster.BuildAndersen(prog, sa, th)
		ct := time.Since(t0)
		stats := cluster.CoverStats(cover)
		times, _ := runCover(prog, cg, sa, cover, 0, opt, nil)
		out = append(out, ThresholdPoint{
			Threshold:   th,
			NumClusters: stats.NumClusters,
			MaxSize:     stats.MaxSize,
			ClusterTime: ct,
			FSCSSimTime: core.SimulateParallel(cover, times, opt.Parts),
		})
	}
	return out, nil
}

// FormatSweep renders a threshold sweep.
func FormatSweep(points []ThresholdPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%9s %9s %6s %12s %12s\n", "threshold", "#clusters", "max", "clusterTime", "fscsSimTime")
	for _, p := range points {
		fmt.Fprintf(&b, "%9d %9d %6d %12s %12s\n",
			p.Threshold, p.NumClusters, p.MaxSize,
			fmtDur(p.ClusterTime, false), fmtDur(p.FSCSSimTime, false))
	}
	return b.String()
}
