package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"bootstrap/internal/andersen"
	"bootstrap/internal/bench/legacyfscs"
	"bootstrap/internal/cache"
	"bootstrap/internal/callgraph"
	"bootstrap/internal/cluster"
	"bootstrap/internal/core"
	"bootstrap/internal/frontend"
	"bootstrap/internal/fscs"
	"bootstrap/internal/ir"
	"bootstrap/internal/steens"
	"bootstrap/internal/synth"
)

// FSCSPerfPoint is one workload's measurement of the PR's two hot-path
// optimizations against the frozen pre-PR baseline (legacyfscs): the
// per-cluster engine comparison (interned integer-keyed summaries vs
// string-keyed maps with the per-round sorted worklist) and the
// whole-program comparison (pipelined cascade + interned engines vs the
// serial cascade + legacy engines).
type FSCSPerfPoint struct {
	Bench    string `json:"bench"`
	Pointers int    `json:"pointers"`
	Clusters int    `json:"clusters"`
	// Workers is this row's parallelism: each workload is measured at
	// Workers=1 (the serial trajectory older baselines recorded) and
	// Workers=8 (where the parallel wave-front solve and the pipelined
	// cascade earn their keep). Zero in a pre-PR-7 baseline file means
	// "whatever GOMAXPROCS was"; AssertFSCS matches those rows against
	// the fresh Workers=8 measurements.
	Workers int `json:"workers,omitempty"`

	// Partition- and cluster-size shape of the workload (Workers=1 row
	// only; the shape is workers-independent). PrecisePartitionMax is
	// MaxPartitionSize under the oversharing-resistant -steens-precise
	// partitioner, the column the PR-7 acceptance criterion watches.
	PartitionP50        int `json:"partition_p50,omitempty"`
	PartitionP90        int `json:"partition_p90,omitempty"`
	PartitionMax        int `json:"partition_max,omitempty"`
	PrecisePartitionMax int `json:"precise_partition_max,omitempty"`
	ClusterP50          int `json:"cluster_p50,omitempty"`
	ClusterP90          int `json:"cluster_p90,omitempty"`
	ClusterMax          int `json:"cluster_max,omitempty"`

	InternedClusterNS int64   `json:"interned_cluster_ns"`
	LegacyClusterNS   int64   `json:"legacy_cluster_ns"`
	ClusterSpeedup    float64 `json:"cluster_speedup"`

	PipelinedProgramNS int64   `json:"pipelined_program_ns"`
	BaselineProgramNS  int64   `json:"baseline_program_ns"`
	ProgramSpeedup     float64 `json:"program_speedup"`

	// The warm columns measure the content-addressed result cache: the
	// whole-program analysis re-run against a fully warm cache, its
	// speedup over the cache-free pipelined run, and the hit rate of the
	// FIRST cache-enabled run in this process — 0.0 against an empty
	// cache directory, 1.0 when a previous benchtab run already
	// populated it (what CI asserts on its second run).
	WarmProgramNS int64   `json:"warm_program_ns"`
	WarmSpeedup   float64 `json:"warm_speedup"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
}

// FSCSPerfReport is the BENCH_fscs.json payload: one point per workload
// in fixed cover order, plus the knobs the numbers were taken under so
// future PRs can tell whether a trajectory change is real or a config
// drift.
type FSCSPerfReport struct {
	Date      string          `json:"date"`
	Scale     float64         `json:"scale"`
	Threshold int             `json:"threshold"`
	Workers   int             `json:"workers"`
	Reps      int             `json:"reps"`
	Points    []FSCSPerfPoint `json:"points"`
}

// timeCover times one full sweep of engine runs over the cover and
// returns the best (minimum) wall clock over reps sweeps — the standard
// best-of-N discipline that filters scheduler noise from a trajectory
// that later PRs will diff against.
func timeCover(reps int, sweep func()) time.Duration {
	best := time.Duration(-1)
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		sweep()
		if d := time.Since(t0); best < 0 || d < best {
			best = d
		}
	}
	return best
}

// LegacyAnalyzeProgram replays the pre-PR whole-program shape: the
// clustering cascade runs serially to completion, and only then do
// worker goroutines start the (string-keyed) FSCS engines. This is the
// baseline side of the ProgramSpeedup column and of the root
// BenchmarkAnalyzeProgram comparison.
func LegacyAnalyzeProgram(prog *ir.Program, threshold, workers int) {
	sa := steens.Analyze(prog)
	_ = andersen.Analyze(prog)
	cg := callgraph.Build(prog)
	cover := cluster.BuildAndersen(prog, sa, threshold)

	jobs := make(chan *cluster.Cluster)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range jobs {
				eng := legacyfscs.NewEngine(prog, cg, sa, c)
				_ = eng.Run()
			}
		}()
	}
	for _, c := range cover {
		jobs <- c
	}
	close(jobs)
	wg.Wait()
}

// fscsWorkersAxis is the parallelism dimension of the report: the serial
// trajectory older baselines recorded, and the width where the parallel
// wave-front solve and the pipelined cascade earn their keep.
var fscsWorkersAxis = [2]int{1, 8}

// SizeHist summarizes a size distribution with the three quantiles the
// report records. Percentiles use the nearest-rank method on the sorted
// sizes; an empty input yields zeros.
func SizeHist(sizes []int) (p50, p90, max int) {
	if len(sizes) == 0 {
		return 0, 0, 0
	}
	s := append([]int(nil), sizes...)
	sort.Ints(s)
	rank := func(q float64) int {
		i := int(math.Ceil(q*float64(len(s)))) - 1
		if i < 0 {
			i = 0
		}
		return s[i]
	}
	return rank(0.50), rank(0.90), s[len(s)-1]
}

// FSCSPerf measures every workload in the given order (callers pass a
// fixed cover order so successive BENCH_fscs.json files diff cleanly),
// at each parallelism of fscsWorkersAxis. reps < 1 defaults to 3.
//
// The optimized (pipelined) side runs the default PR-7 configuration —
// delta propagation and the parallel wave-front solve above its default
// threshold; the baseline side is the frozen legacy cascade. The
// oversharing-resistant precise partitioner is measured separately (the
// precise_partition_max column): its overlapping cover shrinks the worst
// partition but enlarges the cluster cover, so it is a precision knob,
// not part of the timed fast path. The knobs make any column
// reproducible in isolation from the bootstrap CLI.
func FSCSPerf(benches []synth.Benchmark, opt Options, reps int, w io.Writer) (FSCSPerfReport, error) {
	opt.fill()
	if reps < 1 {
		reps = 3
	}
	report := FSCSPerfReport{
		Date:      time.Now().UTC().Format("2006-01-02"),
		Scale:     opt.Scale,
		Threshold: opt.threshold(),
		Workers:   runtime.GOMAXPROCS(0),
		Reps:      reps,
	}
	for _, b := range benches {
		prog, err := frontend.LowerSource(synth.Generate(b, opt.Scale))
		if err != nil {
			return report, fmt.Errorf("fscsperf %s: %w", b.Name, err)
		}
		sa := steens.Analyze(prog)
		cg := callgraph.Build(prog)
		cover := cluster.BuildAndersen(prog, sa, opt.threshold())

		// Workers-independent columns, measured once and reported in the
		// Workers=1 row: the per-cluster engine comparison and the
		// partition/cluster shape histograms.
		internedNS := int64(timeCover(reps, func() {
			for _, c := range cover {
				eng := fscs.NewEngine(prog, cg, sa, c)
				_ = eng.Run()
			}
		}))
		legacyNS := int64(timeCover(reps, func() {
			for _, c := range cover {
				eng := legacyfscs.NewEngine(prog, cg, sa, c)
				_ = eng.Run()
			}
		}))
		var partSizes, clusterSizes []int
		for _, part := range sa.Partitions() {
			partSizes = append(partSizes, len(part))
		}
		for _, c := range cover {
			clusterSizes = append(clusterSizes, len(c.Pointers))
		}
		preciseMax := steens.Analyze(prog, steens.Precise()).MaxPartitionSize()

		for wi, workers := range fscsWorkersAxis {
			p := FSCSPerfPoint{
				Bench:    b.Name,
				Pointers: prog.NumVars(),
				Clusters: len(cover),
				Workers:  workers,
			}
			if wi == 0 {
				p.InternedClusterNS = internedNS
				p.LegacyClusterNS = legacyNS
				p.ClusterSpeedup = ratio(legacyNS, internedNS)
				p.PartitionP50, p.PartitionP90, p.PartitionMax = SizeHist(partSizes)
				p.ClusterP50, p.ClusterP90, p.ClusterMax = SizeHist(clusterSizes)
				p.PrecisePartitionMax = preciseMax
			}

			cfg := core.Config{
				Mode:              core.ModeAndersen,
				Workers:           workers,
				AndersenThreshold: opt.threshold(),
			}
			p.PipelinedProgramNS = int64(timeCover(reps, func() {
				if _, err := core.AnalyzeProgramContext(context.Background(), prog, cfg); err != nil {
					panic(err) // synthetic workloads never fail to analyze
				}
			}))
			p.BaselineProgramNS = int64(timeCover(reps, func() {
				LegacyAnalyzeProgram(prog, opt.threshold(), workers)
			}))
			p.ProgramSpeedup = ratio(p.BaselineProgramNS, p.PipelinedProgramNS)

			// Warm rerun against the result cache, one cache subtree per
			// workers column so each row's first cache-enabled run sees the
			// dir state a CI rerun of that row would. The first run reports
			// the hit rate (cold dir: 0.0; pre-populated dir: 1.0) and fills
			// the in-memory tier; the timed reruns then serve entirely from
			// it.
			cdir := opt.CacheDir
			if cdir != "" {
				cdir = filepath.Join(cdir, fmt.Sprintf("w%d", workers))
			}
			cc := cache.New(cache.Options{Dir: cdir})
			ccfg := cfg
			ccfg.Cache = cc
			a, err := core.AnalyzeProgramContext(context.Background(), prog, ccfg)
			if err != nil {
				return report, fmt.Errorf("fscsperf %s: %w", b.Name, err)
			}
			p.CacheHitRate = a.CacheStats.HitRate()
			p.WarmProgramNS = int64(timeCover(reps, func() {
				if _, err := core.AnalyzeProgramContext(context.Background(), prog, ccfg); err != nil {
					panic(err) // synthetic workloads never fail to analyze
				}
			}))
			p.WarmSpeedup = ratio(p.PipelinedProgramNS, p.WarmProgramNS)

			if w != nil {
				fmt.Fprintf(w, "%-16s w%-2d cluster %6.2fx (%.1fms -> %.1fms)  program %6.2fx (%.1fms -> %.1fms)  warm %6.2fx (%.1fms, hit rate %.2f)\n",
					b.Name, workers, p.ClusterSpeedup, ms(p.LegacyClusterNS), ms(p.InternedClusterNS),
					p.ProgramSpeedup, ms(p.BaselineProgramNS), ms(p.PipelinedProgramNS),
					p.WarmSpeedup, ms(p.WarmProgramNS), p.CacheHitRate)
			}
			report.Points = append(report.Points, p)
		}
	}
	return report, nil
}

func ratio(base, opt int64) float64 {
	if opt <= 0 {
		return 0
	}
	return float64(base) / float64(opt)
}

func ms(ns int64) float64 { return float64(ns) / 1e6 }

// WriteFSCSJSON emits the report as indented JSON — the BENCH_fscs.json
// artifact the CI bench job uploads.
func WriteFSCSJSON(w io.Writer, r FSCSPerfReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
