package cpl

import (
	"fmt"
	"strings"
)

// Format renders a parsed file back to canonical CPL source. The output
// reparses to a structurally identical file (see the roundtrip property
// test), making it usable as a formatter and for emitting generated
// programs.
func Format(f *File) string {
	p := &printer{}
	for _, sd := range f.Structs {
		p.structDecl(sd)
	}
	if len(f.Structs) > 0 && (len(f.Globals) > 0 || len(f.Funcs) > 0) {
		p.nl()
	}
	for _, vd := range f.Globals {
		p.varDecl(vd)
		p.nl()
	}
	for i, fd := range f.Funcs {
		if i > 0 || len(f.Globals) > 0 {
			p.nl()
		}
		p.funcDecl(fd)
	}
	return p.b.String()
}

type printer struct {
	b      strings.Builder
	indent int
}

func (p *printer) nl() { p.b.WriteByte('\n') }

func (p *printer) line(format string, args ...any) {
	for i := 0; i < p.indent; i++ {
		p.b.WriteByte('\t')
	}
	fmt.Fprintf(&p.b, format, args...)
	p.nl()
}

func (p *printer) structDecl(sd *StructDecl) {
	p.line("struct %s {", sd.Name)
	p.indent++
	for _, vd := range sd.Fields {
		p.varDecl(vd)
		p.nl()
	}
	p.indent--
	p.line("};")
}

// varDecl prints without the trailing newline so callers control spacing.
func (p *printer) varDecl(vd *VarDecl) {
	for i := 0; i < p.indent; i++ {
		p.b.WriteByte('\t')
	}
	p.b.WriteString(vd.Type.String())
	p.b.WriteByte(' ')
	for i, d := range vd.Names {
		if i > 0 {
			p.b.WriteString(", ")
		}
		p.b.WriteString(strings.Repeat("*", d.Stars))
		p.b.WriteString(d.Name)
	}
	p.b.WriteByte(';')
}

func (p *printer) funcDecl(fd *FuncDecl) {
	params := make([]string, len(fd.Params))
	for i, prm := range fd.Params {
		params[i] = fmt.Sprintf("%s %s%s", prm.Type, strings.Repeat("*", prm.Stars), prm.Name)
	}
	ret := fd.Ret.String()
	if fd.RetStars > 0 {
		ret += " " + strings.Repeat("*", fd.RetStars)
	}
	p.line("%s %s(%s) {", ret, fd.Name, strings.Join(params, ", "))
	p.indent++
	for _, s := range fd.Body.Stmts {
		p.stmt(s)
	}
	p.indent--
	p.line("}")
}

func (p *printer) block(b *Block) {
	p.indent++
	for _, s := range b.Stmts {
		p.stmt(s)
	}
	p.indent--
}

func (p *printer) stmt(s Stmt) {
	switch st := s.(type) {
	case *EmptyStmt:
		p.line(";")
	case *Block:
		p.line("{")
		p.block(st)
		p.line("}")
	case *DeclStmt:
		p.varDecl(st.Decl)
		p.nl()
	case *AssignStmt:
		p.line("%s = %s;", st.LHS, st.RHS)
	case *ExprStmt:
		p.line("%s;", st.X)
	case *FreeStmt:
		p.line("free(%s);", st.X)
	case *ReturnStmt:
		if st.Value != nil {
			p.line("return %s;", st.Value)
		} else {
			p.line("return;")
		}
	case *IfStmt:
		cond := "*"
		if st.Cond != nil {
			cond = st.Cond.String()
		}
		p.line("if (%s) {", cond)
		p.block(st.Then)
		if st.Else != nil {
			p.line("} else {")
			p.block(st.Else)
		}
		p.line("}")
	case *WhileStmt:
		cond := "*"
		if st.Cond != nil {
			cond = st.Cond.String()
		}
		p.line("while (%s) {", cond)
		p.block(st.Body)
		p.line("}")
	default:
		p.line("/* unknown statement %T */", s)
	}
}
