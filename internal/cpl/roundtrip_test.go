package cpl_test

import (
	"fmt"
	"math/rand"
	"regexp"
	"testing"

	"bootstrap/internal/cpl"
	"bootstrap/internal/frontend"
	"bootstrap/internal/synth"
)

// allocSite matches abstract heap-object names, whose line:col component
// legitimately changes when the source is reformatted.
var allocSite = regexp.MustCompile(`alloc@[0-9]+:[0-9]+(#[0-9]+)?`)

// normalizeAllocs renames allocation sites to their order of appearance so
// dumps compare position-independently.
func normalizeAllocs(dump string) string {
	n := 0
	seen := map[string]string{}
	return allocSite.ReplaceAllStringFunc(dump, func(m string) string {
		if r, ok := seen[m]; ok {
			return r
		}
		n++
		r := fmt.Sprintf("alloc#%d", n)
		seen[m] = r
		return r
	})
}

// TestFormatSemanticRoundtrip: formatting a random program and lowering
// the result produces an IR identical to lowering the original — the
// formatter is semantics-preserving.
func TestFormatSemanticRoundtrip(t *testing.T) {
	cfg := synth.DefaultRandomConfig()
	cfg.Funcs = 3
	cfg.Recursion = true
	cfg.Locks = 1
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		src := synth.RandomSource(rng, cfg)
		f, err := cpl.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v", seed, err)
		}
		formatted := cpl.Format(f)
		p1, err := frontend.LowerSource(src)
		if err != nil {
			t.Fatalf("seed %d: lower original: %v", seed, err)
		}
		p2, err := frontend.LowerSource(formatted)
		if err != nil {
			t.Fatalf("seed %d: lower formatted: %v\n%s", seed, err, formatted)
		}
		if d1, d2 := normalizeAllocs(p1.Dump()), normalizeAllocs(p2.Dump()); d1 != d2 {
			t.Fatalf("seed %d: IR differs after formatting\n--- original IR ---\n%s\n--- formatted IR ---\n%s",
				seed, d1, d2)
		}
	}
}

// TestFormatTable1Workload: the big calibrated workloads also roundtrip.
func TestFormatTable1Workload(t *testing.T) {
	b, _ := synth.FindBenchmark("ctrace")
	src := synth.Generate(b, 0.3)
	f, err := cpl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	formatted := cpl.Format(f)
	p1, err := frontend.LowerSource(src)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := frontend.LowerSource(formatted)
	if err != nil {
		t.Fatalf("lower formatted: %v", err)
	}
	if p1.NumVars() != p2.NumVars() || len(p1.Nodes) != len(p2.Nodes) {
		t.Errorf("IR shape differs: %d/%d vars, %d/%d nodes",
			p1.NumVars(), p2.NumVars(), len(p1.Nodes), len(p2.Nodes))
	}
}
