package cpl_test

import (
	"math/rand"
	"os"
	"testing"

	"bootstrap/internal/cpl"
	"bootstrap/internal/synth"
)

// FuzzParseProgram throws arbitrary bytes at the CPL parser. The parser
// must never panic, and accepted programs must survive a format/reparse
// round trip: Format of a parsed file is itself valid CPL whose
// formatted form is a fixed point. The seed corpus spans every
// generator family (Table 1 calibrated, random property-test programs,
// the lockheavy checker workloads) plus the checked-in driver and a few
// hand-written edge shapes.
func FuzzParseProgram(f *testing.F) {
	if driver, err := os.ReadFile("../../testdata/driver.cpl"); err == nil {
		f.Add(string(driver))
	}
	f.Add("int x;")
	f.Add("void main() { }")
	f.Add("int *p;\nvoid main() { p = malloc; free(p); *p = 1; }")
	f.Add("lock m;\nlock *l;\nvoid acquire(lock *a) { }\nvoid main() { l = &m; acquire(l); }")
	f.Add("struct node { int val; struct node *next; };\nvoid main() { }")
	f.Add("int g;\nvoid main() { if (g) { g = 1; } else { g = 2; } while (g) { g = g + 1; } }")
	f.Add("void f(int a, int b) { return; }\nvoid main() { f(1, 2); }")
	f.Add("int x; void main() { x = ((1 + 2) * 3) - -4; }")
	f.Add("void main() { ; }")
	f.Add("int")        // truncated decl
	f.Add("void main(") // truncated params
	f.Add("/* unterminated")
	b, _ := synth.FindBenchmark("sock")
	f.Add(synth.Generate(b, 0.05))
	f.Add(synth.RandomSource(rand.New(rand.NewSource(1)), synth.DefaultRandomConfig()))
	if src, _, ok := synth.LockHeavyByName("lockheavy_small"); ok {
		f.Add(src)
	}

	f.Fuzz(func(t *testing.T, src string) {
		file, err := cpl.Parse(src)
		if err != nil {
			return // rejected input: any error is fine, panics are not
		}
		formatted := cpl.Format(file)
		again, err := cpl.Parse(formatted)
		if err != nil {
			t.Fatalf("formatted output does not reparse: %v\n%s", err, formatted)
		}
		if twice := cpl.Format(again); twice != formatted {
			t.Fatalf("format is not a fixed point:\n--- first\n%s\n--- second\n%s", formatted, twice)
		}
	})
}
