package cpl

import "fmt"

// Lexer turns CPL source text into tokens. It supports //-line and
// /* */-block comments and reports positions for diagnostics.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Lex tokenizes the whole input, appending the terminating EOF token.
func Lex(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) skipSpaceAndComments() error {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return fmt.Errorf("%s: unterminated block comment", start)
			}
		default:
			return nil
		}
	}
	return nil
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token, or an error for an illegal character or
// unterminated comment.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	p := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: EOF, Pos: p}, nil
	}
	c := lx.peek()
	switch {
	case isIdentStart(c):
		start := lx.off
		for lx.off < len(lx.src) && isIdentPart(lx.peek()) {
			lx.advance()
		}
		text := lx.src[start:lx.off]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Text: text, Pos: p}, nil
		}
		return Token{Kind: IDENT, Text: text, Pos: p}, nil
	case isDigit(c):
		start := lx.off
		for lx.off < len(lx.src) && isDigit(lx.peek()) {
			lx.advance()
		}
		return Token{Kind: NUMBER, Text: lx.src[start:lx.off], Pos: p}, nil
	}
	lx.advance()
	one := func(k Kind) (Token, error) { return Token{Kind: k, Pos: p}, nil }
	switch c {
	case '(':
		return one(LParen)
	case ')':
		return one(RParen)
	case '{':
		return one(LBrace)
	case '}':
		return one(RBrace)
	case ';':
		return one(Semi)
	case ',':
		return one(Comma)
	case '*':
		return one(Star)
	case '&':
		return one(Amp)
	case '+':
		return one(Plus)
	case '.':
		return one(Dot)
	case '<':
		return one(Lt)
	case '>':
		return one(Gt)
	case '-':
		if lx.peek() == '>' {
			lx.advance()
			return one(Arrow)
		}
		return one(Minus)
	case '=':
		if lx.peek() == '=' {
			lx.advance()
			return one(Eq)
		}
		return one(Assign)
	case '!':
		if lx.peek() == '=' {
			lx.advance()
			return one(Neq)
		}
	}
	return Token{}, fmt.Errorf("%s: illegal character %q", p, string(c))
}
