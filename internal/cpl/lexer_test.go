package cpl

import (
	"strings"
	"testing"
)

func lexKinds(t *testing.T, src string) []Kind {
	t.Helper()
	toks, err := Lex(src)
	if err != nil {
		t.Fatalf("Lex(%q): %v", src, err)
	}
	kinds := make([]Kind, len(toks))
	for i, tok := range toks {
		kinds[i] = tok.Kind
	}
	return kinds
}

func TestLexBasics(t *testing.T) {
	got := lexKinds(t, "int *x = &y;")
	want := []Kind{KwInt, Star, IDENT, Assign, Amp, IDENT, Semi, EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexOperators(t *testing.T) {
	got := lexKinds(t, "== != = -> - + < > . , ( ) { }")
	want := []Kind{Eq, Neq, Assign, Arrow, Minus, Plus, Lt, Gt, Dot, Comma,
		LParen, RParen, LBrace, RBrace, EOF}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexKeywordsVsIdents(t *testing.T) {
	toks, err := Lex("int lock void struct if else while return malloc free null NULL nullx integer")
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := []Kind{KwInt, KwLock, KwVoid, KwStruct, KwIf, KwElse, KwWhile,
		KwReturn, KwMalloc, KwFree, KwNull, KwNull, IDENT, IDENT, EOF}
	for i, w := range wantKinds {
		if toks[i].Kind != w {
			t.Errorf("token %d = %v (%q), want %v", i, toks[i].Kind, toks[i].Text, w)
		}
	}
	if toks[12].Text != "nullx" || toks[13].Text != "integer" {
		t.Errorf("identifier texts: %q %q", toks[12].Text, toks[13].Text)
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("int x;\n  *y;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("first token at %v, want 1:1", toks[0].Pos)
	}
	// `*` is on line 2 column 3.
	var star Token
	for _, tok := range toks {
		if tok.Kind == Star {
			star = tok
		}
	}
	if star.Pos.Line != 2 || star.Pos.Col != 3 {
		t.Errorf("star at %v, want 2:3", star.Pos)
	}
}

func TestLexComments(t *testing.T) {
	got := lexKinds(t, "x // line comment\n/* block\ncomment */ y")
	want := []Kind{IDENT, IDENT, EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := Lex("42 007")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != NUMBER || toks[0].Text != "42" {
		t.Errorf("token 0 = %v %q", toks[0].Kind, toks[0].Text)
	}
	if toks[1].Text != "007" {
		t.Errorf("token 1 text = %q", toks[1].Text)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"$", "#", "x ! y", "/* open"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) should fail", src)
		}
	}
}

func TestTokenString(t *testing.T) {
	toks, _ := Lex("abc 12 ;")
	if s := toks[0].String(); !strings.Contains(s, "abc") {
		t.Errorf("IDENT String = %q", s)
	}
	if s := toks[1].String(); !strings.Contains(s, "12") {
		t.Errorf("NUMBER String = %q", s)
	}
	if s := toks[2].String(); s != ";" {
		t.Errorf("Semi String = %q", s)
	}
	if s := Kind(200).String(); !strings.Contains(s, "Kind") {
		t.Errorf("unknown kind String = %q", s)
	}
}
