package cpl

import "fmt"

// Parser is a recursive-descent parser for CPL.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses a CPL translation unit.
func Parse(src string) (*File, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.parseFile()
}

// MustParse parses src and panics on error. It is a convenience for tests
// and examples with literal programs.
func MustParse(src string) *File {
	f, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return f
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) peek() Token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != EOF {
		p.pos++
	}
	return t
}

func (p *Parser) accept(k Kind) bool {
	if p.cur().Kind == k {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expect(k Kind) (Token, error) {
	if p.cur().Kind == k {
		return p.next(), nil
	}
	return Token{}, fmt.Errorf("%s: expected %s, found %s", p.cur().Pos, k, p.cur())
}

func (p *Parser) errf(format string, args ...any) error {
	return fmt.Errorf("%s: %s", p.cur().Pos, fmt.Sprintf(format, args...))
}

func isTypeStart(k Kind) bool {
	return k == KwInt || k == KwLock || k == KwVoid || k == KwStruct
}

func (p *Parser) parseFile() (*File, error) {
	f := &File{}
	for p.cur().Kind != EOF {
		switch {
		case p.cur().Kind == KwStruct && p.peek().Kind == IDENT && p.lookaheadStructDef():
			sd, err := p.parseStructDecl()
			if err != nil {
				return nil, err
			}
			f.Structs = append(f.Structs, sd)
		case isTypeStart(p.cur().Kind):
			// Either a global variable declaration or a function definition.
			save := p.pos
			typ, stars, name, err := p.parseTypeDeclarator()
			if err != nil {
				return nil, err
			}
			if p.cur().Kind == LParen {
				fn, err := p.parseFuncRest(typ, stars, name)
				if err != nil {
					return nil, err
				}
				f.Funcs = append(f.Funcs, fn)
			} else {
				p.pos = save
				vd, err := p.parseVarDecl()
				if err != nil {
					return nil, err
				}
				f.Globals = append(f.Globals, vd)
			}
		default:
			return nil, p.errf("expected declaration, found %s", p.cur())
		}
	}
	return f, nil
}

// lookaheadStructDef distinguishes `struct S { ... }` (a type definition)
// from `struct S x;` (a declaration using the struct type).
func (p *Parser) lookaheadStructDef() bool {
	// cur = struct, peek = IDENT; check the token after the name.
	if p.pos+2 < len(p.toks) {
		return p.toks[p.pos+2].Kind == LBrace
	}
	return false
}

func (p *Parser) parseStructDecl() (*StructDecl, error) {
	pos := p.cur().Pos
	p.next() // struct
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LBrace); err != nil {
		return nil, err
	}
	sd := &StructDecl{Name: name.Text, Pos: pos}
	for p.cur().Kind != RBrace {
		vd, err := p.parseVarDecl()
		if err != nil {
			return nil, err
		}
		sd.Fields = append(sd.Fields, vd)
	}
	p.next() // }
	p.accept(Semi)
	return sd, nil
}

func (p *Parser) parseType() (Type, error) {
	switch p.cur().Kind {
	case KwInt:
		p.next()
		return Type{Base: "int"}, nil
	case KwLock:
		p.next()
		return Type{Base: "lock"}, nil
	case KwVoid:
		p.next()
		return Type{Base: "void"}, nil
	case KwStruct:
		p.next()
		name, err := p.expect(IDENT)
		if err != nil {
			return Type{}, err
		}
		return Type{Base: name.Text, IsStruct: true}, nil
	}
	return Type{}, p.errf("expected type, found %s", p.cur())
}

// parseTypeDeclarator parses `type *...* name` and leaves the cursor after
// the name. It is the common prefix of variable and function declarations.
func (p *Parser) parseTypeDeclarator() (Type, int, Token, error) {
	typ, err := p.parseType()
	if err != nil {
		return Type{}, 0, Token{}, err
	}
	stars := 0
	for p.accept(Star) {
		stars++
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return Type{}, 0, Token{}, err
	}
	return typ, stars, name, nil
}

func (p *Parser) parseVarDecl() (*VarDecl, error) {
	pos := p.cur().Pos
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	vd := &VarDecl{Type: typ, Pos: pos}
	for {
		dpos := p.cur().Pos
		stars := 0
		for p.accept(Star) {
			stars++
		}
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		vd.Names = append(vd.Names, Declarator{Stars: stars, Name: name.Text, Pos: dpos})
		if !p.accept(Comma) {
			break
		}
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	return vd, nil
}

func (p *Parser) parseFuncRest(ret Type, retStars int, name Token) (*FuncDecl, error) {
	fn := &FuncDecl{Ret: ret, RetStars: retStars, Name: name.Text, Pos: name.Pos}
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	if !p.accept(RParen) {
		for {
			ppos := p.cur().Pos
			// Allow `void` as an empty parameter list: f(void).
			if p.cur().Kind == KwVoid && p.peek().Kind == RParen {
				p.next()
				break
			}
			typ, stars, pname, err := p.parseTypeDeclarator()
			if err != nil {
				return nil, err
			}
			fn.Params = append(fn.Params, Param{Type: typ, Stars: stars, Name: pname.Text, Pos: ppos})
			if !p.accept(Comma) {
				break
			}
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *Parser) parseBlock() (*Block, error) {
	lb, err := p.expect(LBrace)
	if err != nil {
		return nil, err
	}
	b := &Block{Pos: lb.Pos}
	for p.cur().Kind != RBrace {
		if p.cur().Kind == EOF {
			return nil, p.errf("unexpected EOF, expected }")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // }
	return b, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	tok := p.cur()
	switch tok.Kind {
	case LBrace:
		return p.parseBlock()
	case Semi:
		p.next()
		return &EmptyStmt{Pos: tok.Pos}, nil
	case KwInt, KwLock, KwVoid, KwStruct:
		vd, err := p.parseVarDecl()
		if err != nil {
			return nil, err
		}
		return &DeclStmt{Decl: vd}, nil
	case KwIf:
		return p.parseIf()
	case KwWhile:
		return p.parseWhile()
	case KwReturn:
		p.next()
		rs := &ReturnStmt{Pos: tok.Pos}
		if p.cur().Kind != Semi {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			rs.Value = e
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return rs, nil
	case KwFree:
		p.next()
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &FreeStmt{X: x, Pos: tok.Pos}, nil
	}
	// Assignment or call statement.
	lhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.accept(Assign) {
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &AssignStmt{LHS: lhs, RHS: rhs, Pos: tok.Pos}, nil
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	if _, ok := lhs.(*Call); !ok {
		return nil, fmt.Errorf("%s: expression statement must be a call", tok.Pos)
	}
	return &ExprStmt{X: lhs, Pos: tok.Pos}, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	pos := p.next().Pos // if
	cond, err := p.parseCond()
	if err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Cond: cond, Then: then, Pos: pos}
	if p.accept(KwElse) {
		if p.cur().Kind == KwIf {
			// else if: wrap in a synthetic block.
			inner, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			st.Else = &Block{Stmts: []Stmt{inner}, Pos: inner.Position()}
		} else {
			els, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
	}
	return st, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	pos := p.next().Pos // while
	cond, err := p.parseCond()
	if err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body, Pos: pos}, nil
}

// parseCond parses `( cond )` where cond is `*` (nondeterministic, returned
// as nil) or an expression.
func (p *Parser) parseCond() (Expr, error) {
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	if p.cur().Kind == Star && p.peek().Kind == RParen {
		p.next()
		p.next()
		return nil, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	return e, nil
}

// parseExpr parses binary expressions with a single flat precedence level —
// CPL expressions only feed pointer analysis, which treats arithmetic and
// comparisons uniformly.
func (p *Parser) parseExpr() (Expr, error) {
	x, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch p.cur().Kind {
		case Plus:
			op = OpAdd
		case Minus:
			op = OpSub
		case Eq:
			op = OpEq
		case Neq:
			op = OpNeq
		case Lt:
			op = OpLt
		case Gt:
			op = OpGt
		default:
			return x, nil
		}
		pos := p.next().Pos
		y, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		x = &Binary{Op: op, X: x, Y: y, Pos: pos}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	tok := p.cur()
	switch tok.Kind {
	case Star:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Deref{X: x, Pos: tok.Pos}, nil
	case Amp:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &AddrOf{X: x, Pos: tok.Pos}, nil
	case KwMalloc:
		p.next()
		if p.accept(LParen) {
			// Optional size argument, ignored: malloc(8).
			if p.cur().Kind == NUMBER {
				p.next()
			}
			if _, err := p.expect(RParen); err != nil {
				return nil, err
			}
		}
		return &Malloc{Pos: tok.Pos}, nil
	case KwNull:
		p.next()
		return &Null{Pos: tok.Pos}, nil
	case NUMBER:
		p.next()
		return &Num{Value: tok.Text, Pos: tok.Pos}, nil
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (Expr, error) {
	tok := p.cur()
	var x Expr
	switch tok.Kind {
	case IDENT:
		p.next()
		x = &Ident{Name: tok.Text, Pos: tok.Pos}
	case LParen:
		p.next()
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		x = inner
	default:
		return nil, p.errf("expected expression, found %s", tok)
	}
	for {
		switch p.cur().Kind {
		case Dot:
			p.next()
			name, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			x = &Field{X: x, Name: name.Text, Pos: name.Pos}
		case Arrow:
			p.next()
			name, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			x = &Field{X: x, Name: name.Text, Arrow: true, Pos: name.Pos}
		case LParen:
			pos := p.next().Pos
			call := &Call{Fun: x, Pos: pos}
			if !p.accept(RParen) {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(Comma) {
						break
					}
				}
				if _, err := p.expect(RParen); err != nil {
					return nil, err
				}
			}
			x = call
		default:
			return x, nil
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
