package cpl

import (
	"strings"
	"testing"
)

func parseOK(t *testing.T, src string) *File {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse failed: %v\nsource:\n%s", err, src)
	}
	return f
}

func TestParseGlobalsAndFuncs(t *testing.T) {
	f := parseOK(t, `
		int *g;
		int **pp, *q;
		void main() {
			g = q;
		}
	`)
	if len(f.Globals) != 2 {
		t.Fatalf("got %d global decls, want 2", len(f.Globals))
	}
	if got := len(f.Globals[1].Names); got != 2 {
		t.Fatalf("second decl has %d declarators, want 2", got)
	}
	if f.Globals[1].Names[0].Stars != 2 || f.Globals[1].Names[0].Name != "pp" {
		t.Errorf("first declarator = %+v, want **pp", f.Globals[1].Names[0])
	}
	if len(f.Funcs) != 1 || f.Funcs[0].Name != "main" {
		t.Fatalf("funcs = %v", f.Funcs)
	}
}

func TestParseStruct(t *testing.T) {
	f := parseOK(t, `
		struct S { int *f; int *g; };
		struct S s;
		void main() { s.f = s.g; }
	`)
	if len(f.Structs) != 1 || f.Structs[0].Name != "S" {
		t.Fatalf("structs = %v", f.Structs)
	}
	if len(f.Structs[0].Fields) != 2 {
		t.Fatalf("got %d fields, want 2", len(f.Structs[0].Fields))
	}
	if !f.Globals[0].Type.IsStruct || f.Globals[0].Type.Base != "S" {
		t.Errorf("global type = %v, want struct S", f.Globals[0].Type)
	}
	as := f.Funcs[0].Body.Stmts[0].(*AssignStmt)
	if as.LHS.String() != "s.f" || as.RHS.String() != "s.g" {
		t.Errorf("assign = %s = %s", as.LHS, as.RHS)
	}
}

func TestParseCanonicalForms(t *testing.T) {
	f := parseOK(t, `
		int *x, *y;
		void main() {
			x = y;
			x = &y;
			*x = y;
			x = *y;
		}
	`)
	stmts := f.Funcs[0].Body.Stmts
	want := []string{"x = y", "x = &y", "*x = y", "x = *y"}
	if len(stmts) != len(want) {
		t.Fatalf("got %d statements, want %d", len(stmts), len(want))
	}
	for i, s := range stmts {
		as := s.(*AssignStmt)
		got := as.LHS.String() + " = " + as.RHS.String()
		if got != want[i] {
			t.Errorf("stmt %d = %q, want %q", i, got, want[i])
		}
	}
}

func TestParseControlFlow(t *testing.T) {
	f := parseOK(t, `
		int *x, *y;
		void main() {
			if (*) { x = y; } else { y = x; }
			while (x != y) { x = y; }
			if (x == y) { x = y; } else if (*) { y = x; }
		}
	`)
	body := f.Funcs[0].Body.Stmts
	ifs := body[0].(*IfStmt)
	if ifs.Cond != nil {
		t.Error("if (*) should have nil cond")
	}
	if ifs.Else == nil {
		t.Error("missing else branch")
	}
	ws := body[1].(*WhileStmt)
	if ws.Cond == nil {
		t.Error("while cond should be non-nil")
	}
	elseIf := body[2].(*IfStmt)
	if elseIf.Else == nil || len(elseIf.Else.Stmts) != 1 {
		t.Fatal("else-if should be wrapped in a block")
	}
	if _, ok := elseIf.Else.Stmts[0].(*IfStmt); !ok {
		t.Error("else-if block should contain an IfStmt")
	}
}

func TestParseCalls(t *testing.T) {
	f := parseOK(t, `
		int *g;
		void *fp;
		int *id(int *a) { return a; }
		void main() {
			int *x;
			x = id(g);
			id(x);
			fp = &id;
			x = (*fp)(g);
			(*fp)(x);
		}
	`)
	body := f.Funcs[1].Body.Stmts
	as := body[1].(*AssignStmt)
	if _, ok := as.RHS.(*Call); !ok {
		t.Errorf("x = id(g) RHS is %T, want *Call", as.RHS)
	}
	es := body[2].(*ExprStmt)
	if es.X.String() != "id(x)" {
		t.Errorf("call stmt = %q", es.X.String())
	}
	ind := body[4].(*AssignStmt).RHS.(*Call)
	if _, ok := ind.Fun.(*Deref); !ok {
		t.Errorf("indirect call callee is %T, want *Deref", ind.Fun)
	}
	if got := body[5].(*ExprStmt).X.String(); got != "(*fp)(x)" {
		t.Errorf("indirect call stmt = %q", got)
	}
}

func TestParseMallocFreeNull(t *testing.T) {
	f := parseOK(t, `
		void main() {
			int *p;
			p = malloc;
			p = malloc();
			p = malloc(8);
			free(p);
			p = null;
			p = NULL;
		}
	`)
	body := f.Funcs[0].Body.Stmts
	for _, i := range []int{1, 2, 3} {
		if _, ok := body[i].(*AssignStmt).RHS.(*Malloc); !ok {
			t.Errorf("stmt %d RHS is %T, want *Malloc", i, body[i].(*AssignStmt).RHS)
		}
	}
	if _, ok := body[4].(*FreeStmt); !ok {
		t.Errorf("stmt 4 is %T, want *FreeStmt", body[4])
	}
	for _, i := range []int{5, 6} {
		if _, ok := body[i].(*AssignStmt).RHS.(*Null); !ok {
			t.Errorf("stmt %d RHS is %T, want *Null", i, body[i].(*AssignStmt).RHS)
		}
	}
}

func TestParseFieldAccess(t *testing.T) {
	f := parseOK(t, `
		struct S { int *f; };
		struct S s;
		struct S *ps;
		void main() {
			int *x;
			x = s.f;
			x = ps->f;
			s.f = &x;
		}
	`)
	body := f.Funcs[0].Body.Stmts
	if got := body[1].(*AssignStmt).RHS.String(); got != "s.f" {
		t.Errorf("field read = %q", got)
	}
	arrow := body[2].(*AssignStmt).RHS.(*Field)
	if !arrow.Arrow {
		t.Error("ps->f should have Arrow=true")
	}
}

func TestParsePointerArithmetic(t *testing.T) {
	f := parseOK(t, `
		int *p, *q;
		void main() { p = q + 4; }
	`)
	bin := f.Funcs[0].Body.Stmts[0].(*AssignStmt).RHS.(*Binary)
	if bin.Op != OpAdd {
		t.Errorf("op = %v, want +", bin.Op)
	}
}

func TestParseComments(t *testing.T) {
	parseOK(t, `
		// a line comment
		int *x; /* block
		           comment */ int *y;
		void main() { x = y; } // trailing
	`)
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{`int x`, "expected ;"},
		{`void main() { x = ; }`, "expected expression"},
		{`void main() { if * { } }`, "expected ("},
		{`void main() { x; }`, "must be a call"},
		{`void main() {`, "unexpected EOF"},
		{`int $x;`, "illegal character"},
		{`/* unterminated`, "unterminated block comment"},
		{`void main() { struct { } }`, "expected identifier"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", tc.src, tc.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("Parse(%q) error = %q, want substring %q", tc.src, err, tc.wantSub)
		}
	}
}

func TestErrorPositions(t *testing.T) {
	_, err := Parse("int *x;\nint y\n")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.HasPrefix(err.Error(), "3:") && !strings.HasPrefix(err.Error(), "2:") {
		t.Errorf("error %q should carry a line position", err)
	}
}

func TestParamListForms(t *testing.T) {
	f := parseOK(t, `
		void f0() { }
		void f1(void) { }
		void f2(int *a, int **b) { }
	`)
	if len(f.Funcs[0].Params) != 0 || len(f.Funcs[1].Params) != 0 {
		t.Error("f0/f1 should have no parameters")
	}
	if len(f.Funcs[2].Params) != 2 {
		t.Fatalf("f2 has %d params, want 2", len(f.Funcs[2].Params))
	}
	if f.Funcs[2].Params[1].Stars != 2 {
		t.Errorf("f2 second param stars = %d, want 2", f.Funcs[2].Params[1].Stars)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse of invalid source should panic")
		}
	}()
	MustParse("int")
}
