package cpl

import (
	"fmt"
	"strings"
)

// File is a parsed CPL translation unit.
type File struct {
	Structs []*StructDecl
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// Type is a (possibly pointer) CPL type. Pointer depth lives on the
// declarator, so Type records only the base.
type Type struct {
	Base     string // "int", "lock", "void", or a struct name
	IsStruct bool
}

func (t Type) String() string {
	if t.IsStruct {
		return "struct " + t.Base
	}
	return t.Base
}

// Declarator is one declared name with its pointer depth, e.g. `**p`.
type Declarator struct {
	Stars int
	Name  string
	Pos   Pos
}

// VarDecl declares one or more variables of a common base type:
// `int *p, **q;`.
type VarDecl struct {
	Type  Type
	Names []Declarator
	Pos   Pos
}

// StructDecl declares a struct type with flattened-to-be fields.
type StructDecl struct {
	Name   string
	Fields []*VarDecl
	Pos    Pos
}

// Param is a single function parameter.
type Param struct {
	Type  Type
	Stars int
	Name  string
	Pos   Pos
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Ret      Type
	RetStars int
	Name     string
	Params   []Param
	Body     *Block
	Pos      Pos
}

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Position() Pos
	stmtNode()
}

// Block is a brace-delimited statement list.
type Block struct {
	Stmts []Stmt
	Pos   Pos
}

// DeclStmt is a local variable declaration.
type DeclStmt struct {
	Decl *VarDecl
}

// AssignStmt is `lhs = rhs;`. The frontend normalizes arbitrary lvalue and
// rvalue shapes into the paper's four canonical forms.
type AssignStmt struct {
	LHS Expr
	RHS Expr
	Pos Pos
}

// IfStmt is `if (cond) then [else els]`. A nil Cond is the nondeterministic
// condition `*`; per the paper, conditions are treated as nondeterministic
// by the core analyses either way.
type IfStmt struct {
	Cond Expr
	Then *Block
	Else *Block
	Pos  Pos
}

// WhileStmt is `while (cond) body`.
type WhileStmt struct {
	Cond Expr
	Body *Block
	Pos  Pos
}

// ReturnStmt is `return [expr];`.
type ReturnStmt struct {
	Value Expr
	Pos   Pos
}

// ExprStmt is an expression in statement position — in CPL only calls.
type ExprStmt struct {
	X   Expr
	Pos Pos
}

// FreeStmt is `free(x);`, modeled per the paper as `x = NULL`.
type FreeStmt struct {
	X   Expr
	Pos Pos
}

// EmptyStmt is a stray `;`.
type EmptyStmt struct {
	Pos Pos
}

func (b *Block) Position() Pos      { return b.Pos }
func (s *DeclStmt) Position() Pos   { return s.Decl.Pos }
func (s *AssignStmt) Position() Pos { return s.Pos }
func (s *IfStmt) Position() Pos     { return s.Pos }
func (s *WhileStmt) Position() Pos  { return s.Pos }
func (s *ReturnStmt) Position() Pos { return s.Pos }
func (s *ExprStmt) Position() Pos   { return s.Pos }
func (s *FreeStmt) Position() Pos   { return s.Pos }
func (s *EmptyStmt) Position() Pos  { return s.Pos }

func (*Block) stmtNode()      {}
func (*DeclStmt) stmtNode()   {}
func (*AssignStmt) stmtNode() {}
func (*IfStmt) stmtNode()     {}
func (*WhileStmt) stmtNode()  {}
func (*ReturnStmt) stmtNode() {}
func (*ExprStmt) stmtNode()   {}
func (*FreeStmt) stmtNode()   {}
func (*EmptyStmt) stmtNode()  {}

// Expr is implemented by all expression nodes.
type Expr interface {
	Position() Pos
	exprNode()
	String() string
}

// Ident is a variable or function name.
type Ident struct {
	Name string
	Pos  Pos
}

// Deref is `*x`.
type Deref struct {
	X   Expr
	Pos Pos
}

// AddrOf is `&x`.
type AddrOf struct {
	X   Expr
	Pos Pos
}

// Field is `x.f` (Arrow=false) or `x->f` (Arrow=true).
type Field struct {
	X     Expr
	Name  string
	Arrow bool
	Pos   Pos
}

// Call is `f(args)` or `(*fp)(args)`.
type Call struct {
	Fun  Expr
	Args []Expr
	Pos  Pos
}

// Malloc is a heap allocation expression; the frontend models it as the
// address of a fresh abstract heap object named by the allocation site.
type Malloc struct {
	Pos Pos
}

// Null is the null pointer constant.
type Null struct {
	Pos Pos
}

// Num is an integer literal (non-pointer value).
type Num struct {
	Value string
	Pos   Pos
}

// BinOp identifies a binary operator.
type BinOp uint8

// Binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpEq
	OpNeq
	OpLt
	OpGt
)

var binOpNames = [...]string{"+", "-", "==", "!=", "<", ">"}

func (op BinOp) String() string { return binOpNames[op] }

// Binary is `x op y`. `+`/`-` on pointers is pointer arithmetic, which the
// frontend handles naively by aliasing operand and result (Remark 1).
type Binary struct {
	Op   BinOp
	X, Y Expr
	Pos  Pos
}

func (e *Ident) Position() Pos  { return e.Pos }
func (e *Deref) Position() Pos  { return e.Pos }
func (e *AddrOf) Position() Pos { return e.Pos }
func (e *Field) Position() Pos  { return e.Pos }
func (e *Call) Position() Pos   { return e.Pos }
func (e *Malloc) Position() Pos { return e.Pos }
func (e *Null) Position() Pos   { return e.Pos }
func (e *Num) Position() Pos    { return e.Pos }
func (e *Binary) Position() Pos { return e.Pos }

func (*Ident) exprNode()  {}
func (*Deref) exprNode()  {}
func (*AddrOf) exprNode() {}
func (*Field) exprNode()  {}
func (*Call) exprNode()   {}
func (*Malloc) exprNode() {}
func (*Null) exprNode()   {}
func (*Num) exprNode()    {}
func (*Binary) exprNode() {}

func (e *Ident) String() string  { return e.Name }
func (e *Deref) String() string  { return "*" + e.X.String() }
func (e *AddrOf) String() string { return "&" + e.X.String() }
func (e *Field) String() string {
	sep := "."
	if e.Arrow {
		sep = "->"
	}
	return e.X.String() + sep + e.Name
}
func (e *Call) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	fun := e.Fun.String()
	if _, ok := e.Fun.(*Deref); ok {
		fun = "(" + fun + ")"
	}
	return fun + "(" + strings.Join(args, ", ") + ")"
}
func (e *Malloc) String() string { return "malloc()" }
func (e *Null) String() string   { return "null" }
func (e *Num) String() string    { return e.Value }
func (e *Binary) String() string {
	operand := func(x Expr) string {
		if _, nested := x.(*Binary); nested {
			return "(" + x.String() + ")"
		}
		return x.String()
	}
	return fmt.Sprintf("%s %s %s", operand(e.X), e.Op, operand(e.Y))
}
