// Package cpl implements CPL, a small C-like pointer language. CPL is the
// source language for the analyses in this repository: it provides exactly
// the constructs the paper's Remark 1 assumes — pointer assignments that
// normalize to the four canonical forms (x=y, x=&y, *x=y, x=*y), struct
// fields (flattened by the frontend), heap allocation (`malloc`),
// deallocation (`free`), function calls including function pointers,
// conditionals, loops and recursion.
//
// The package contains the lexer, the AST and a recursive-descent parser.
// Lowering from the AST to the normalized IR lives in package frontend.
package cpl

import "fmt"

// Kind classifies a lexical token.
type Kind uint8

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	NUMBER

	// Keywords.
	KwInt
	KwLock
	KwVoid
	KwStruct
	KwIf
	KwElse
	KwWhile
	KwReturn
	KwMalloc
	KwFree
	KwNull

	// Punctuation and operators.
	LParen // (
	RParen // )
	LBrace // {
	RBrace // }
	Semi   // ;
	Comma  // ,
	Assign // =
	Star   // *
	Amp    // &
	Plus   // +
	Minus  // -
	Dot    // .
	Arrow  // ->
	Eq     // ==
	Neq    // !=
	Lt     // <
	Gt     // >
)

var kindNames = map[Kind]string{
	EOF: "EOF", IDENT: "identifier", NUMBER: "number",
	KwInt: "int", KwLock: "lock", KwVoid: "void", KwStruct: "struct",
	KwIf: "if", KwElse: "else", KwWhile: "while", KwReturn: "return",
	KwMalloc: "malloc", KwFree: "free", KwNull: "null",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}",
	Semi: ";", Comma: ",", Assign: "=", Star: "*", Amp: "&",
	Plus: "+", Minus: "-", Dot: ".", Arrow: "->",
	Eq: "==", Neq: "!=", Lt: "<", Gt: ">",
}

// String returns a human-readable name for the token kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

var keywords = map[string]Kind{
	"int": KwInt, "lock": KwLock, "void": KwVoid, "struct": KwStruct,
	"if": KwIf, "else": KwElse, "while": KwWhile, "return": KwReturn,
	"malloc": KwMalloc, "free": KwFree, "null": KwNull,
	// C spellings accepted as aliases.
	"NULL": KwNull,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token with its source position.
type Token struct {
	Kind Kind
	Text string // raw text for IDENT and NUMBER
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, NUMBER:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}
