package cpl

import (
	"strings"
	"testing"
)

const kitchenSink = `
	struct Inner { int *q; };
	struct S { int *f; struct Inner in; };
	struct S s;
	int a, b;
	int *x, **px;
	lock *l;
	void *fp;

	int *id(int *v) { return v; }

	void helper(void) { }

	void main() {
		int *p;
		p = malloc;
		p = malloc(8);
		*px = p;
		p = *px;
		p = &a;
		s.f = p;
		p = s.in.q;
		free(p);
		p = null;
		if (*) { p = x; } else { p = &b; }
		if (p == x) { helper(); } else if (p != x) { p = id(x); }
		while (a < b) { p = p + 1; }
		fp = &id;
		p = (*fp)(p);
		(*fp)(p);
		{
			int *shadow;
			shadow = p;
		}
		return;
	}
`

// TestFormatRoundtrip: formatting is canonical — parse∘format is the
// identity on formatted sources.
func TestFormatRoundtrip(t *testing.T) {
	f1, err := Parse(kitchenSink)
	if err != nil {
		t.Fatal(err)
	}
	out1 := Format(f1)
	f2, err := Parse(out1)
	if err != nil {
		t.Fatalf("formatted output does not reparse: %v\n%s", err, out1)
	}
	out2 := Format(f2)
	if out1 != out2 {
		t.Errorf("format not idempotent:\n--- first ---\n%s\n--- second ---\n%s", out1, out2)
	}
}

func TestFormatPreservesStructure(t *testing.T) {
	f, err := Parse(kitchenSink)
	if err != nil {
		t.Fatal(err)
	}
	out := Format(f)
	for _, want := range []string{
		"struct S {", "int *f;", "struct Inner in;",
		"int a, b;", "int *x, **px;",
		"int * id(int *v) {", "return v;",
		"p = malloc();", "free(p);", "p = null;",
		"if (*) {", "} else {",
		"if (p == x) {", "while (a < b) {",
		"fp = &id;", "p = (*fp)(p);", "(*fp)(p);",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted output missing %q:\n%s", want, out)
		}
	}
}

func TestBinaryParenthesization(t *testing.T) {
	f, err := Parse(`
		int a, b, c; int *p;
		void main() { if (a + b == c) { p = null; } }
	`)
	if err != nil {
		t.Fatal(err)
	}
	out := Format(f)
	if !strings.Contains(out, "(a + b) == c") {
		t.Errorf("nested binary not parenthesized:\n%s", out)
	}
	// And the parenthesized form reparses to the same shape.
	f2, err := Parse(out)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if Format(f2) != out {
		t.Error("parenthesized output not canonical")
	}
}
