// Package cliutil holds the flag surface shared by the repo's binaries
// (bootstrap, benchtab, clusterfig): the analysis-configuration flags
// that build a core.Config, and the observability flags (-trace,
// -metrics-addr, -profile) with the session plumbing behind them. Each
// binary registers the groups it needs on its own FlagSet, so a new
// shared flag lands in every command at once.
package cliutil

import (
	"flag"
	"fmt"
	"time"

	"bootstrap/internal/cache"
	"bootstrap/internal/core"
	"bootstrap/internal/dist"
)

// AnalysisFlags is the cascade-configuration flag group: everything a
// binary needs to build a core.Config. Zero value + Register = ready.
type AnalysisFlags struct {
	Mode       string
	Threshold  int
	UseOneFlow bool
	Workers    int
	Budget     int64

	RunTimeout     time.Duration
	ClusterTimeout time.Duration
	Retries        int

	NoIntern   bool
	NoPipeline bool
	CycleElim  bool
	CacheDir   string

	NoDelta           bool
	NoParSolve        bool
	ParSolveThreshold int
	SteensPrecise     bool
}

// Register installs the analysis flags on fs.
func (f *AnalysisFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Mode, "mode", "andersen", "clustering mode: none|steensgaard|andersen|syntactic")
	fs.IntVar(&f.Threshold, "threshold", 0, "Andersen threshold (0 = default 60)")
	fs.BoolVar(&f.UseOneFlow, "oneflow", false, "insert the One-Flow cascade stage")
	fs.IntVar(&f.Workers, "workers", 0, "parallel cluster workers (0 = GOMAXPROCS)")
	fs.Int64Var(&f.Budget, "budget", 0, "per-cluster work budget (0 = unlimited)")

	fs.DurationVar(&f.RunTimeout, "timeout", 0, "whole-run wall-clock deadline; on expiry remaining clusters degrade to the flow-insensitive fallback (0 = none)")
	fs.DurationVar(&f.ClusterTimeout, "cluster-timeout", 0, "per-cluster wall-clock deadline, the paper's 15-minute analogue (0 = none)")
	fs.IntVar(&f.Retries, "retries", 1, "degradation-ladder retries per failed cluster, each halving budget and condition width (0 = demote immediately)")

	fs.BoolVar(&f.NoIntern, "no-intern", false, "disable condition-interning memo tables (slower; results identical)")
	fs.BoolVar(&f.NoPipeline, "no-pipeline", false, "run the clustering cascade serially before FSCS instead of pipelined (slower; results identical)")
	fs.BoolVar(&f.CycleElim, "cycle-elim", true, "online cycle elimination in the Andersen solver (results identical either way)")
	fs.StringVar(&f.CacheDir, "cache-dir", "", "directory for the persistent per-cluster result cache; warm re-runs import unchanged clusters instead of re-solving (results identical)")

	fs.BoolVar(&f.NoDelta, "no-delta", false, "disable difference propagation in the Andersen solver, reverting to the legacy full-propagation worklist (slower; results identical)")
	fs.BoolVar(&f.NoParSolve, "no-par-solve", false, "keep Andersen delta solves serial even on oversized partitions (slower; results identical)")
	fs.IntVar(&f.ParSolveThreshold, "par-solve-threshold", 0, "constrained-node count above which an Andersen solve fans wave fronts across the worker pool (0 = default 512)")
	fs.BoolVar(&f.SteensPrecise, "steens-precise", false, "oversharing-resistant Steensgaard: write-only sinks join source partitions via an overlay instead of unifying them (smaller max partition; sound, may be more precise)")
}

// DistFlags is the distributed-execution flag group shared by
// bootstrap, benchtab and aliaswork: shard count, binning policy and
// lease TTL. Zero value + Register = ready; Shards == 0 (or 1 with the
// other flags untouched) means single-process execution.
type DistFlags struct {
	Shards   int
	Binning  string
	LeaseTTL time.Duration
}

// Register installs the distributed-execution flags on fs.
func (f *DistFlags) Register(fs *flag.FlagSet) {
	fs.IntVar(&f.Shards, "shards", 0, "distribute the eager per-cluster solve across N worker processes (0 = single-process)")
	fs.StringVar(&f.Binning, "binning", string(dist.BinningSteal), "cluster-to-shard policy: steal (greedy bins + work stealing) or greedy (the paper's static bins)")
	fs.DurationVar(&f.LeaseTTL, "lease-ttl", 0, "work-item lease duration before a silent worker's cluster is re-issued (0 = default 5s)")
}

// Enabled reports whether the flags request distributed execution.
func (f *DistFlags) Enabled() bool { return f.Shards > 0 }

// Options builds the dist.RunOptions the flags describe. cacheDir is
// the shared result-cache directory ("" = a run-scoped temp dir).
func (f *DistFlags) Options(cacheDir string) (dist.RunOptions, error) {
	binning, err := dist.ParseBinning(f.Binning)
	if err != nil {
		return dist.RunOptions{}, err
	}
	return dist.RunOptions{
		Shards:   f.Shards,
		Binning:  binning,
		LeaseTTL: f.LeaseTTL,
		CacheDir: cacheDir,
	}, nil
}

// ParseMode maps a -mode flag value to a core.Mode.
func ParseMode(s string) (core.Mode, error) {
	switch s {
	case "none":
		return core.ModeNone, nil
	case "steensgaard", "steens":
		return core.ModeSteensgaard, nil
	case "andersen":
		return core.ModeAndersen, nil
	case "syntactic":
		return core.ModeSyntactic, nil
	}
	return 0, fmt.Errorf("unknown mode %q", s)
}

// LadderRetries maps a -retries flag value to core.Config.Retries, where
// the config's 0 means "use the default" and negative disables retries.
func LadderRetries(n int) int {
	if n <= 0 {
		return -1 // demote on the first failure
	}
	return n
}

// Config builds the core.Config the flags describe, creating the result
// cache when -cache-dir was given.
func (f *AnalysisFlags) Config() (core.Config, error) {
	m, err := ParseMode(f.Mode)
	if err != nil {
		return core.Config{}, err
	}
	cfg := core.Config{
		Mode:              m,
		AndersenThreshold: f.Threshold,
		UseOneFlow:        f.UseOneFlow,
		Workers:           f.Workers,
		ClusterBudget:     f.Budget,
		ClusterTimeout:    f.ClusterTimeout,
		RunTimeout:        f.RunTimeout,
		Retries:           LadderRetries(f.Retries),
		DisableInterning:  f.NoIntern,
		DisablePipelining: f.NoPipeline,
		DisableCycleElim:  !f.CycleElim,
		DisableDeltaProp:  f.NoDelta,
		DisableParSolve:   f.NoParSolve,
		ParSolveThreshold: f.ParSolveThreshold,
		SteensPrecise:     f.SteensPrecise,
	}
	if f.CacheDir != "" {
		cfg.Cache = cache.New(cache.Options{Dir: f.CacheDir})
	}
	return cfg, nil
}
