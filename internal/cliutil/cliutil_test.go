package cliutil

import (
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bootstrap/internal/core"
)

func TestParseMode(t *testing.T) {
	cases := map[string]core.Mode{
		"none": core.ModeNone, "steensgaard": core.ModeSteensgaard,
		"steens": core.ModeSteensgaard, "andersen": core.ModeAndersen,
		"syntactic": core.ModeSyntactic,
	}
	for s, want := range cases {
		got, err := ParseMode(s)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("ParseMode should reject unknown modes")
	}
}

func TestLadderRetries(t *testing.T) {
	for in, want := range map[int]int{-3: -1, 0: -1, 1: 1, 4: 4} {
		if got := LadderRetries(in); got != want {
			t.Errorf("LadderRetries(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestAnalysisFlagsConfig(t *testing.T) {
	var af AnalysisFlags
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	af.Register(fs)
	dir := t.TempDir()
	err := fs.Parse([]string{
		"-mode", "steensgaard", "-threshold", "12", "-workers", "3",
		"-budget", "500", "-retries", "0", "-no-intern", "-cycle-elim=false",
		"-cache-dir", dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := af.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Mode != core.ModeSteensgaard || cfg.AndersenThreshold != 12 ||
		cfg.Workers != 3 || cfg.ClusterBudget != 500 {
		t.Errorf("config fields not mapped: %+v", cfg)
	}
	if cfg.Retries != -1 {
		t.Errorf("Retries = %d, want -1 (flag 0 means demote immediately)", cfg.Retries)
	}
	if !cfg.DisableInterning || !cfg.DisableCycleElim {
		t.Errorf("toggles not mapped: %+v", cfg)
	}
	if cfg.Cache == nil {
		t.Error("cache-dir should create a cache")
	}

	af.Mode = "bogus"
	if _, err := af.Config(); err == nil {
		t.Error("bad mode should error")
	}
}

func TestObsFlagsDisabled(t *testing.T) {
	var of ObsFlags
	sess, err := of.Start()
	if err != nil {
		t.Fatal(err)
	}
	if sess.Tracer != nil || sess.Metrics != nil || sess.MetricsAddr() != "" {
		t.Errorf("disabled flags should produce a nil tracer and metrics: %+v", sess)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestObsFlagsTraceAndMetrics(t *testing.T) {
	dir := t.TempDir()
	of := ObsFlags{Trace: filepath.Join(dir, "out.json"), MetricsAddr: "127.0.0.1:0"}
	sess, err := of.Start()
	if err != nil {
		t.Fatal(err)
	}
	if sess.Tracer == nil || sess.Metrics == nil {
		t.Fatal("tracer and metrics should be live")
	}
	sess.Metrics.Counter("cliutil_test_total", "test counter").Add(7)
	sess.Tracer.Start("phase", "t", 0).End()

	addr := sess.MetricsAddr()
	if addr == "" {
		t.Fatal("server should have bound an address")
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "cliutil_test_total 7") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}

	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(of.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"traceEvents"`) {
		t.Errorf("trace file is not a Chrome trace envelope:\n%s", data)
	}
}

func TestObsFlagsBadProfile(t *testing.T) {
	of := ObsFlags{Profile: "bogus"}
	if _, err := of.Start(); err == nil {
		t.Error("unknown profile kind should error")
	}
}

func TestObsFlagsMemProfile(t *testing.T) {
	dir := t.TempDir()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)

	of := ObsFlags{Profile: "mem"}
	sess, err := of.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat("mem.pprof"); err != nil || fi.Size() == 0 {
		t.Errorf("mem.pprof not written: %v", err)
	}
}
