package cliutil

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	rpprof "runtime/pprof"
	"time"

	"bootstrap/internal/obs"
)

// ObsFlags is the observability flag group shared by every binary:
// Chrome-trace capture, the metrics/pprof debug server, and one-shot
// runtime profiles.
type ObsFlags struct {
	Trace       string
	MetricsAddr string
	Profile     string
}

// Register installs the observability flags on fs.
func (f *ObsFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Trace, "trace", "", "write a Chrome trace (chrome://tracing, Perfetto) of the cascade's phases and cluster attempts to this file")
	fs.StringVar(&f.MetricsAddr, "metrics-addr", "", "serve /metrics (Prometheus text), /debug/vars (expvar) and /debug/pprof on this address for the life of the process")
	fs.StringVar(&f.Profile, "profile", "", "write a runtime profile: cpu (cpu.pprof, whole run), mem (mem.pprof, at exit) or mutex (mutex.pprof, at exit)")
}

// Session is the live observability state behind the flags. Tracer and
// Metrics are nil when the corresponding flag is off, so they plug
// straight into core.Config — disabled observability stays free.
type Session struct {
	Tracer  *obs.Tracer
	Metrics *obs.Metrics

	tracePath string
	profile   string
	cpuFile   *os.File
	ln        net.Listener
	srv       *http.Server
}

// mutexProfileFraction samples 1/5 of mutex contention events — dense
// enough for the coarse per-phase locks here, cheap enough to leave on.
const mutexProfileFraction = 5

// Start brings up everything the flags ask for: the tracer, the metrics
// registry plus debug server (bound before returning, so address errors
// surface here), and the requested profile. Always returns a usable
// session; call Close when the run is done.
func (f *ObsFlags) Start() (*Session, error) {
	s := &Session{tracePath: f.Trace, profile: f.Profile}
	if f.Trace != "" {
		s.Tracer = obs.NewTracer()
	}
	if f.MetricsAddr != "" {
		s.Metrics = obs.NewMetrics()
		s.Metrics.GaugeFunc("bootstrap_goroutines",
			"live goroutines", func() float64 { return float64(runtime.NumGoroutine()) })
		s.Metrics.GaugeFunc("bootstrap_heap_alloc_bytes",
			"bytes of allocated heap objects", func() float64 {
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				return float64(ms.HeapAlloc)
			})
		ln, err := net.Listen("tcp", f.MetricsAddr)
		if err != nil {
			return nil, fmt.Errorf("metrics-addr: %w", err)
		}
		s.ln = ln
		s.srv = &http.Server{Handler: s.Metrics.ServeMux()}
		go s.srv.Serve(ln) //nolint:errcheck // ends via Close's Shutdown
	}
	switch f.Profile {
	case "":
	case "cpu":
		cf, err := os.Create("cpu.pprof")
		if err != nil {
			s.shutdown()
			return nil, err
		}
		if err := rpprof.StartCPUProfile(cf); err != nil {
			cf.Close()
			s.shutdown()
			return nil, err
		}
		s.cpuFile = cf
	case "mem":
		// Written at Close; nothing to arm.
	case "mutex":
		runtime.SetMutexProfileFraction(mutexProfileFraction)
	default:
		s.shutdown()
		return nil, fmt.Errorf("unknown -profile %q (want cpu, mem or mutex)", f.Profile)
	}
	return s, nil
}

// MetricsAddr returns the address the debug server actually bound
// (useful with ":0"), or "" when it is off.
func (s *Session) MetricsAddr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close flushes everything the session owes the filesystem: the Chrome
// trace, the armed profile, and the expvar publication of the final
// metric values. The first error wins; the rest still run.
func (s *Session) Close() error {
	var first error
	keep := func(err error) {
		if first == nil && err != nil {
			first = err
		}
	}
	if s.cpuFile != nil {
		rpprof.StopCPUProfile()
		keep(s.cpuFile.Close())
	}
	switch s.profile {
	case "mem":
		runtime.GC() // settle the heap so the profile reflects live data
		keep(writeProfile("heap", "mem.pprof"))
	case "mutex":
		keep(writeProfile("mutex", "mutex.pprof"))
		runtime.SetMutexProfileFraction(0)
	}
	if s.Tracer != nil {
		f, err := os.Create(s.tracePath)
		if err != nil {
			keep(err)
		} else {
			keep(s.Tracer.WriteJSON(f))
			keep(f.Close())
		}
	}
	s.Metrics.PublishExpvar("")
	s.shutdown()
	return first
}

// shutdownTimeout bounds how long Close waits for in-flight metrics
// scrapes (a scrape is quick; a stuck client should not wedge exit).
const shutdownTimeout = 2 * time.Second

func (s *Session) shutdown() {
	if s.srv != nil {
		// Graceful: stop accepting, let in-flight /metrics and pprof
		// requests finish, then close whatever remains. Shutdown also
		// closes the listener.
		ctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
		s.srv.Shutdown(ctx) //nolint:errcheck // best-effort at exit
		cancel()
		s.srv.Close()
		s.srv = nil
		s.ln = nil
		return
	}
	if s.ln != nil {
		s.ln.Close()
		s.ln = nil
	}
}

func writeProfile(kind, path string) error {
	p := rpprof.Lookup(kind)
	if p == nil {
		return fmt.Errorf("no %s profile", kind)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := p.WriteTo(f, 0); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
