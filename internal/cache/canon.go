// Package cache implements the content-addressed per-cluster result
// cache behind warm-start analysis runs.
//
// Theorem 6 of the paper proves that a cluster's aliases depend only on
// its slice: the pointers V_P and statements St_P computed by
// Algorithm 1, plus the surrounding control-flow/call structure the
// backward walks traverse. A cluster whose canonical slice encoding is
// unchanged between two runs therefore provably has unchanged results,
// so the expensive FSCS stage can be skipped entirely — the cached
// summary tables and points-to sets are re-imported instead.
//
// The cache is two-tiered: a byte-bounded in-memory LRU (always on) and
// an optional on-disk tier (Options.Dir) whose entries are versioned and
// checksummed. Corruption is tolerated by construction: a bad entry is a
// miss, never an error.
package cache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"

	"bootstrap/internal/bitset"
	"bootstrap/internal/callgraph"
	"bootstrap/internal/cluster"
	"bootstrap/internal/intern"
	"bootstrap/internal/ir"
	"bootstrap/internal/steens"
)

// encodingVersion is hashed into every key; bump it whenever the
// canonical encoding below (or the payload format in package fscs)
// changes shape, so stale entries from older builds can never be
// misinterpreted.
const encodingVersion = "bootstrap-cluster-canon/v2\x00"

// Key is the content-addressed identity of one cluster's analysis
// problem: the SHA-256 of the canonical slice encoding.
type Key [sha256.Size]byte

// String renders the key as lowercase hex (also the on-disk file stem).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Params are the precision knobs that shape an engine's results and are
// therefore part of the cache key. Result-neutral knobs — interning,
// pipelining, cycle elimination — are deliberately excluded, so one
// cache entry serves every combination of them.
type Params struct {
	MaxCond int   // condition-width bound (fscs.WithMaxCond)
	Budget  int64 // worklist tuple budget (fscs.WithBudget)
}

// Canon is the canonical form of one cluster's analysis problem. It
// carries both the fingerprint Key and the bidirectional renamings
// (variables, functions, statement locations) between the program's
// arbitrary IDs and dense canonical indices — the coordinate system
// cached payloads are expressed in, which is what makes entries stable
// under VarID/FuncID/Loc renumbering.
//
// The encoding covers everything the FSCS engine's result depends on:
//
//   - F*: the cluster's functions plus their caller closure — exactly
//     the functions backward walks and summary fixpoints can enter
//     (a callee outside F* never modifies a V_P variable, so its call
//     sites act as skips and are encoded as such);
//   - the CFG skeleton of every F* function (successor edges, entry and
//     exit), with per-node classes: sliced statements with operands,
//     relevant assume nodes, calls into F*, indirect calls, and skips;
//   - the Steensgaard structure of every referenced variable — content
//     class, location class (jointly renumbered, since the transfer
//     function compares them against each other) and hierarchy depth —
//     plus V_P and P membership as canonical-index bit sets;
//   - the precision Params.
type Canon struct {
	prog *ir.Program
	key  Key

	fns      []ir.FuncID
	fnLocal  map[ir.FuncID]int32
	vars     []ir.VarID
	varLocal map[ir.VarID]int32
	locIdx   map[ir.Loc]int32 // node's index within its function
}

// Per-node class bytes of the canonical CFG encoding.
const (
	classSkip      = iota // no effect on any cluster walk
	classStmt             // sliced statement (or in-slice assume): op + operands
	classCall             // direct call to an F* callee
	classIndirect         // undevirtualized indirect call
	classAssumeOut        // assume outside St_P whose operands are both in V_P
)

// NewCanon computes the canonical form and fingerprint of one cluster.
func NewCanon(prog *ir.Program, sa *steens.Analysis, cg *callgraph.Graph, c *cluster.Cluster, params Params) *Canon {
	cn := &Canon{
		prog:     prog,
		fnLocal:  map[ir.FuncID]int32{},
		varLocal: map[ir.VarID]int32{},
		locIdx:   map[ir.Loc]int32{},
	}

	// F*: the caller closure of the cluster's functions. Walks start in
	// c.Funcs (sliced statements) and propagate upward into callers;
	// summary splices only ever descend into functions that can reach a
	// sliced statement, which is again F*.
	inStar := map[ir.FuncID]bool{}
	queue := append([]ir.FuncID(nil), c.Funcs...)
	for _, f := range queue {
		inStar[f] = true
	}
	for len(queue) > 0 {
		f := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, g := range cg.Callers(f) {
			if !inStar[g] {
				inStar[g] = true
				queue = append(queue, g)
			}
		}
	}
	cn.fns = make([]ir.FuncID, 0, len(inStar))
	for f := range inStar {
		cn.fns = append(cn.fns, f)
	}
	// Order functions by name: stable under FuncID renumbering.
	sort.Slice(cn.fns, func(i, j int) bool {
		ni, nj := prog.Func(cn.fns[i]).Name, prog.Func(cn.fns[j]).Name
		if ni != nj {
			return ni < nj
		}
		return cn.fns[i] < cn.fns[j]
	})
	for i, f := range cn.fns {
		cn.fnLocal[f] = int32(i)
		for idx, loc := range prog.Func(f).Nodes {
			cn.locIdx[loc] = int32(idx)
		}
	}

	buf := make([]byte, 0, 4096)
	buf = append(buf, encodingVersion...)
	buf = binary.AppendVarint(buf, int64(params.MaxCond))
	buf = binary.AppendVarint(buf, params.Budget)
	buf = binary.AppendUvarint(buf, uint64(len(cn.fns)))
	if l, ok := cn.fnLocal[prog.Entry]; ok {
		buf = binary.AppendUvarint(buf, uint64(l)+1)
	} else {
		buf = binary.AppendUvarint(buf, 0)
	}

	// varRef assigns canonical variable indices in first-encounter order
	// of the (deterministic) statement walk below.
	varRef := func(v ir.VarID) uint64 {
		if v == ir.NoVar {
			return 0
		}
		l, ok := cn.varLocal[v]
		if !ok {
			l = int32(len(cn.vars))
			cn.varLocal[v] = l
			cn.vars = append(cn.vars, v)
		}
		return uint64(l) + 1
	}

	for _, f := range cn.fns {
		fn := prog.Func(f)
		buf = binary.AppendUvarint(buf, uint64(len(fn.Nodes)))
		buf = binary.AppendUvarint(buf, uint64(cn.locIdx[fn.Entry]))
		buf = binary.AppendUvarint(buf, uint64(cn.locIdx[fn.Exit]))
		for _, loc := range fn.Nodes {
			n := prog.Node(loc)
			st := n.Stmt
			switch st.Op {
			case ir.OpCopy, ir.OpAddr, ir.OpLoad, ir.OpStore, ir.OpNullify:
				if c.HasStmt(loc) {
					buf = append(buf, classStmt, byte(st.Op))
					buf = binary.AppendUvarint(buf, varRef(st.Dst))
					buf = binary.AppendUvarint(buf, varRef(st.Src))
				} else {
					// Outside St_P these cannot modify V_P variables
					// (Algorithm 1 is closed under destinations): skips.
					buf = append(buf, classSkip)
				}
			case ir.OpAssumeEq, ir.OpAssumeNeq:
				// Assume nodes contribute path constraints whenever both
				// operands are tracked, even outside St_P; whether the
				// node is in the slice additionally decides hasAssumes
				// (terminated tokens keep walking), so the two cases get
				// distinct classes.
				if c.HasVar(st.Dst) && c.HasVar(st.Src) {
					cls := byte(classStmt)
					if !c.HasStmt(loc) {
						cls = classAssumeOut
					}
					buf = append(buf, cls, byte(st.Op))
					buf = binary.AppendUvarint(buf, varRef(st.Dst))
					buf = binary.AppendUvarint(buf, varRef(st.Src))
				} else {
					buf = append(buf, classSkip)
				}
			case ir.OpCall:
				switch {
				case st.Callee == ir.NoFunc:
					buf = append(buf, classIndirect)
				case inStar[st.Callee]:
					buf = append(buf, classCall)
					buf = binary.AppendUvarint(buf, uint64(cn.fnLocal[st.Callee]))
				default:
					// The callee cannot reach a sliced statement, so it
					// modifies nothing in V_P: the call is a skip.
					buf = append(buf, classSkip)
				}
			default: // skip, ret, touch
				buf = append(buf, classSkip)
			}
			buf = binary.AppendUvarint(buf, uint64(len(n.Succs)))
			for _, s := range n.Succs {
				buf = binary.AppendUvarint(buf, uint64(cn.locIdx[s]))
			}
		}
	}

	// V_P members never referenced by an encoded statement (they still
	// matter: the cyclic-load case enumerates all of V_P by location
	// class, and they appear in results). Order them by name — stable
	// under renumbering; a rename is a conservative miss.
	leftovers := make([]ir.VarID, 0, len(c.Vars))
	for _, v := range c.Vars {
		if _, ok := cn.varLocal[v]; !ok {
			leftovers = append(leftovers, v)
		}
	}
	sort.Slice(leftovers, func(i, j int) bool {
		ni, nj := prog.VarName(leftovers[i]), prog.VarName(leftovers[j])
		if ni != nj {
			return ni < nj
		}
		return leftovers[i] < leftovers[j]
	})
	for _, v := range leftovers {
		varRef(v)
	}

	// Per-variable Steensgaard structure. Content and location classes
	// are renumbered densely in one shared space because the transfer
	// function compares them against each other (o ∈ pts(q) iff
	// LocClass(o) == ContentClass(q), and partition equality is content-
	// class equality).
	classLocal := map[int]uint64{}
	classRef := func(g int) uint64 {
		l, ok := classLocal[g]
		if !ok {
			l = uint64(len(classLocal))
			classLocal[g] = l
		}
		return l
	}
	buf = binary.AppendUvarint(buf, uint64(len(cn.vars)))
	for _, v := range cn.vars {
		buf = binary.AppendUvarint(buf, classRef(sa.ContentClass(v)))
		buf = binary.AppendUvarint(buf, classRef(sa.LocClass(v)))
		buf = binary.AppendUvarint(buf, uint64(sa.Depth(v)))
		// Precise-mode overlay memberships. Sink status is a whole-program
		// property (a var is a sink only if *no* statement anywhere reads
		// it), so two structurally identical slices can disagree on it;
		// without this the key would collide across programs and serve a
		// summary computed under different partition semantics.
		sinks := sa.SinkClasses(v)
		buf = binary.AppendUvarint(buf, uint64(len(sinks)))
		for _, g := range sinks {
			buf = binary.AppendUvarint(buf, classRef(g))
		}
	}

	// V_P and P membership over canonical indices.
	vp := bitset.New(len(cn.vars))
	for _, v := range c.Vars {
		vp.Add(int(cn.varLocal[v]))
	}
	pp := bitset.New(len(cn.vars))
	for _, v := range c.Pointers {
		pp.Add(int(cn.varLocal[v]))
	}
	buf = vp.AppendCanonical(buf)
	buf = pp.AppendCanonical(buf)

	cn.key = sha256.Sum256(buf)
	return cn
}

// Key returns the cluster's fingerprint.
func (cn *Canon) Key() Key { return cn.key }

// MapVar translates a program VarID to its canonical index.
func (cn *Canon) MapVar(v ir.VarID) (int32, bool) {
	l, ok := cn.varLocal[v]
	return l, ok
}

// UnmapVar translates a canonical index back to this program's VarID.
func (cn *Canon) UnmapVar(l int32) (ir.VarID, bool) {
	if l < 0 || int(l) >= len(cn.vars) {
		return ir.NoVar, false
	}
	return cn.vars[l], true
}

// MapFunc translates a FuncID to its canonical index.
func (cn *Canon) MapFunc(f ir.FuncID) (int32, bool) {
	l, ok := cn.fnLocal[f]
	return l, ok
}

// UnmapFunc translates a canonical index back to this program's FuncID.
func (cn *Canon) UnmapFunc(l int32) (ir.FuncID, bool) {
	if l < 0 || int(l) >= len(cn.fns) {
		return ir.NoFunc, false
	}
	return cn.fns[l], true
}

// MapLoc translates a statement location to its canonical coordinate:
// (function index, node index) packed into one uint64. Only locations
// inside F* functions map.
func (cn *Canon) MapLoc(loc ir.Loc) (uint64, bool) {
	idx, ok := cn.locIdx[loc]
	if !ok {
		return 0, false
	}
	f := cn.prog.Node(loc).Fn
	fl, ok := cn.fnLocal[f]
	if !ok {
		return 0, false
	}
	return intern.Pack2x32(fl, idx), true
}

// UnmapLoc translates a canonical coordinate back to this program's Loc.
func (cn *Canon) UnmapLoc(packed uint64) (ir.Loc, bool) {
	fl, idx := intern.Unpack2x32(packed)
	f, ok := cn.UnmapFunc(fl)
	if !ok {
		return ir.NoLoc, false
	}
	nodes := cn.prog.Func(f).Nodes
	if idx < 0 || int(idx) >= len(nodes) {
		return ir.NoLoc, false
	}
	return nodes[idx], true
}
