//go:build !(linux || darwin || freebsd || netbsd || openbsd)

package cache

// tryLockKey is a no-op where flock is unavailable: every writer
// proceeds, and the temp-file + atomic-rename protocol keeps concurrent
// same-key stores safe (identical content, last rename wins).
func tryLockKey(string) (unlock func(), ok bool) { return func() {}, true }
