package cache

import (
	"crypto/sha256"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

func keyOf(b byte) Key {
	return sha256.Sum256([]byte{b})
}

func TestMemTierRoundTrip(t *testing.T) {
	c := New(Options{})
	k := keyOf(1)
	if _, ok := c.Get(k); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put(k, []byte("payload"))
	got, ok := c.Get(k)
	if !ok || string(got) != "payload" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", st)
	}
	if st.BytesWritten != int64(len("payload")) || st.BytesRead != int64(len("payload")) {
		t.Errorf("byte counters = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	// Three 8-byte entries under a 20-byte bound: inserting the third
	// must evict the least recently used one.
	c := New(Options{MaxBytes: 20})
	a, b, d := keyOf(1), keyOf(2), keyOf(3)
	c.Put(a, make([]byte, 8))
	c.Put(b, make([]byte, 8))
	c.Get(a) // a is now more recent than b
	c.Put(d, make([]byte, 8))
	if _, ok := c.Get(b); ok {
		t.Error("LRU entry b survived eviction")
	}
	if _, ok := c.Get(a); !ok {
		t.Error("recently used entry a was evicted")
	}
	if _, ok := c.Get(d); !ok {
		t.Error("newest entry d was evicted")
	}
}

func TestDiskTierRoundTrip(t *testing.T) {
	dir := t.TempDir()
	k := keyOf(7)
	w := New(Options{Dir: dir})
	w.Put(k, []byte("persisted"))

	// A fresh cache with an empty memory tier must serve from disk.
	r := New(Options{Dir: dir})
	got, ok := r.Get(k)
	if !ok || string(got) != "persisted" {
		t.Fatalf("disk Get = %q, %v", got, ok)
	}
	// The hit must have been promoted into memory.
	if r.Len() != 1 {
		t.Errorf("Len = %d after disk promotion, want 1", r.Len())
	}
}

func TestDiskCorruptionIsAMiss(t *testing.T) {
	dir := t.TempDir()
	k := keyOf(9)
	w := New(Options{Dir: dir})
	w.Put(k, []byte("some payload bytes"))
	path := filepath.Join(dir, k.String()+".bsc")

	corrupt := func(t *testing.T, mutate func([]byte)) {
		t.Helper()
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		mutate(raw)
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		r := New(Options{Dir: dir})
		if _, ok := r.Get(k); ok {
			t.Error("corrupt entry served as a hit")
		}
		if st := r.Stats(); st.Misses != 1 {
			t.Errorf("misses = %d, want 1", st.Misses)
		}
		// Restore for the next subtest.
		w.writeDisk(k, []byte("some payload bytes"))
	}

	t.Run("flipped payload byte", func(t *testing.T) {
		corrupt(t, func(raw []byte) { raw[len(raw)-1] ^= 0xff })
	})
	t.Run("version bump", func(t *testing.T) {
		corrupt(t, func(raw []byte) {
			binary.LittleEndian.PutUint32(raw[len(diskMagic):], Version+1)
		})
	})
	t.Run("wrong magic", func(t *testing.T) {
		corrupt(t, func(raw []byte) { raw[0] = 'x' })
	})
	t.Run("key mismatch", func(t *testing.T) {
		corrupt(t, func(raw []byte) { raw[len(diskMagic)+4] ^= 0xff })
	})

	t.Run("truncated", func(t *testing.T) {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		r := New(Options{Dir: dir})
		if _, ok := r.Get(k); ok {
			t.Error("truncated entry served as a hit")
		}
	})
}

func TestCorruptRebooksHitAsMiss(t *testing.T) {
	c := New(Options{})
	k := keyOf(4)
	c.Put(k, []byte("bad"))
	if _, ok := c.Get(k); !ok {
		t.Fatal("expected a hit")
	}
	c.Corrupt(k)
	st := c.Stats()
	if st.Hits != 0 || st.Misses != 1 {
		t.Errorf("after Corrupt: stats = %+v, want 0 hits / 1 miss", st)
	}
	if _, ok := c.Get(k); ok {
		t.Error("corrupt entry still present")
	}
}

func TestHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Error("empty stats hit rate != 0")
	}
	s = Stats{Hits: 3, Misses: 1}
	if got := s.HitRate(); got != 0.75 {
		t.Errorf("HitRate = %v, want 0.75", got)
	}
}
