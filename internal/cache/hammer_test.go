package cache

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
)

// hammerEnv marks a re-exec'd test binary as a hammer child process.
const hammerEnv = "BOOTSTRAP_CACHE_HAMMER_DIR"

// hammerKey derives the i-th hammer key and its expected payload. The
// payload is a deterministic function of the key, like real entries
// (content addressing), so any process can validate any entry.
func hammerKey(i int) (Key, []byte) {
	k := Key(sha256.Sum256([]byte(fmt.Sprintf("hammer-%d", i))))
	data := make([]byte, 64+i*7)
	for j := range data {
		data[j] = byte(i + j)
	}
	return k, data
}

// hammer runs 8 goroutines storing and loading an overlapping key set
// against one shared directory — the access pattern of a shard fleet
// publishing per-cluster results.
func hammer(dir string, seed int64) {
	c := New(Options{Dir: dir, MaxBytes: 1 << 12}) // tiny memory tier: force disk traffic
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(g)))
			for iter := 0; iter < 200; iter++ {
				i := rng.Intn(16)
				k, want := hammerKey(i)
				if rng.Intn(2) == 0 {
					c.Put(k, append([]byte(nil), want...))
				} else if data, ok := c.Get(k); ok {
					if len(data) != len(want) || (len(data) > 0 && data[0] != want[0]) {
						panic(fmt.Sprintf("hammer: key %d returned wrong payload (%d bytes)", i, len(data)))
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestHammerChild is not a test of its own: it is the body of the
// child processes TestConcurrentProcessesHammer re-execs.
func TestHammerChild(t *testing.T) {
	dir := os.Getenv(hammerEnv)
	if dir == "" {
		t.Skip("not a hammer child")
	}
	hammer(dir, 1)
}

// TestConcurrentProcessesHammer drives the disk tier the way shard mode
// does: 8 goroutines in each of 2 OS processes (plus this process)
// hammering one cache directory, while a corruptor keeps garbling and
// truncating entry files under them. The invariants: no process may
// panic, and a corrupted entry must read as a miss — never as a wrong
// payload or a crash.
func TestConcurrentProcessesHammer(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process hammer")
	}
	dir := t.TempDir()
	children := make([]*exec.Cmd, 2)
	outputs := make([]*bytes.Buffer, 2)
	for i := range children {
		cmd := exec.Command(os.Args[0], "-test.run", "^TestHammerChild$", "-test.v")
		cmd.Env = append(os.Environ(), hammerEnv+"="+dir)
		outputs[i] = &bytes.Buffer{}
		cmd.Stdout, cmd.Stderr = outputs[i], outputs[i]
		if err := cmd.Start(); err != nil {
			t.Fatalf("spawn hammer child: %v", err)
		}
		children[i] = cmd
	}

	// The corruptor: while the children run, repeatedly garble or
	// truncate whatever entries exist.
	stop := make(chan struct{})
	var corrWG sync.WaitGroup
	corrWG.Add(1)
	go func() {
		defer corrWG.Done()
		rng := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stop:
				return
			default:
			}
			ents, _ := filepath.Glob(filepath.Join(dir, "*.bsc"))
			for _, e := range ents {
				switch rng.Intn(3) {
				case 0:
					os.WriteFile(e, []byte("garbage"), 0o644)
				case 1:
					os.Truncate(e, 3)
				}
			}
		}
	}()

	hammer(dir, 2) // this process participates too
	for i, cmd := range children {
		if err := cmd.Wait(); err != nil {
			t.Fatalf("hammer child %d failed: %v\n%s", i, err, outputs[i])
		}
	}
	close(stop)
	corrWG.Wait()

	// Post-mortem with a fresh cache: every key reads back either its
	// exact expected payload or a clean miss.
	c := New(Options{Dir: dir})
	misses := 0
	for i := 0; i < 16; i++ {
		k, want := hammerKey(i)
		data, ok := c.Get(k)
		if !ok {
			misses++
			continue
		}
		if string(data) != string(want) {
			t.Errorf("key %d: corrupted entry served as a hit (%d bytes)", i, len(data))
		}
	}
	t.Logf("post-hammer: %d/16 keys corrupted away (clean misses)", misses)
}

// TestWriteDiskDedupesExistingEntry checks the stampede guard: once an
// entry is published, a second Put of the same key skips the disk write
// entirely (no temp-file churn), because content-addressed entries are
// immutable.
func TestWriteDiskDedupesExistingEntry(t *testing.T) {
	dir := t.TempDir()
	k, data := hammerKey(0)

	c1 := New(Options{Dir: dir})
	c1.Put(k, append([]byte(nil), data...))
	path := filepath.Join(dir, k.String()+".bsc")
	before, err := os.Stat(path)
	if err != nil {
		t.Fatalf("entry not published: %v", err)
	}

	c2 := New(Options{Dir: dir})
	c2.Put(k, append([]byte(nil), data...))
	after, err := os.Stat(path)
	if err != nil {
		t.Fatalf("entry vanished: %v", err)
	}
	if !after.ModTime().Equal(before.ModTime()) {
		t.Error("second Put of an existing key rewrote the entry")
	}
	if got, ok := c2.Get(k); !ok || string(got) != string(data) {
		t.Fatalf("entry unreadable after dedup: ok=%v", ok)
	}
}
