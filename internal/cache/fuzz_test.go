package cache

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"testing"
)

// fuzzKey is the fixed lookup key every fuzz decode runs under; the key
// echo in the envelope must match it for a decode to succeed.
var fuzzKey = Key(sha256.Sum256([]byte("fuzz")))

// FuzzDecodeEntry throws arbitrary bytes at the disk-entry decoder. Two
// properties must hold for every input: the decoder never panics (disk
// corruption is a miss, not a crash), and any accepted payload
// re-encodes to exactly the input bytes (accept only what encodeEntry
// could have produced).
func FuzzDecodeEntry(f *testing.F) {
	// A valid entry, and one for each field of the envelope: truncations
	// at every header boundary, flipped magic, wrong version, wrong key
	// echo, inconsistent length, bad checksum, trailing garbage.
	valid := encodeEntry(fuzzKey, []byte("payload bytes"))
	f.Add(valid)
	f.Add(encodeEntry(fuzzKey, nil))
	f.Add([]byte{})
	for _, cut := range []int{1, len(diskMagic), len(diskMagic) + 4,
		len(diskMagic) + 4 + len(Key{}), headerSize - 1, headerSize, len(valid) - 1} {
		f.Add(append([]byte(nil), valid[:cut]...))
	}
	flip := func(i int) []byte {
		c := append([]byte(nil), valid...)
		c[i] ^= 0xff
		return c
	}
	f.Add(flip(0))                               // magic
	f.Add(flip(len(diskMagic)))                  // version
	f.Add(flip(len(diskMagic) + 4))              // key echo
	f.Add(flip(len(diskMagic) + 4 + len(Key{}))) // length
	f.Add(flip(headerSize - 1))                  // checksum
	f.Add(flip(len(valid) - 1))                  // payload
	f.Add(append(append([]byte(nil), valid...), 0xcc))

	f.Fuzz(func(t *testing.T, raw []byte) {
		payload, ok := decodeEntry(fuzzKey, raw)
		if !ok {
			return
		}
		if got := encodeEntry(fuzzKey, payload); !bytes.Equal(got, raw) {
			t.Fatalf("accepted envelope does not round-trip:\n raw    %x\nencode %x", raw, got)
		}
	})
}

// TestEncodeDecodeEntryRoundTrip pins the envelope layout byte by byte
// so a format change cannot slip through as a silent cache flush.
func TestEncodeDecodeEntryRoundTrip(t *testing.T) {
	data := []byte("cluster result")
	raw := encodeEntry(fuzzKey, data)
	if len(raw) != headerSize+len(data) {
		t.Fatalf("envelope is %d bytes, want %d", len(raw), headerSize+len(data))
	}
	if string(raw[:len(diskMagic)]) != diskMagic {
		t.Errorf("magic = %q", raw[:len(diskMagic)])
	}
	if v := binary.LittleEndian.Uint32(raw[len(diskMagic):]); v != Version {
		t.Errorf("version = %d, want %d", v, Version)
	}
	got, ok := decodeEntry(fuzzKey, raw)
	if !ok || !bytes.Equal(got, data) {
		t.Fatalf("decodeEntry = (%q, %v), want (%q, true)", got, ok, data)
	}
	// The same bytes under a different key are a miss: entries are bound
	// to the key they were stored under.
	other := Key(sha256.Sum256([]byte("other")))
	if _, ok := decodeEntry(other, raw); ok {
		t.Errorf("entry decoded under the wrong key")
	}
}
