//go:build linux || darwin || freebsd || netbsd || openbsd

package cache

import (
	"os"
	"syscall"
)

// tryLockKey takes a non-blocking advisory flock on the entry's ".lock"
// sidecar. Failure to acquire means another process is mid-store of the
// same content-addressed entry, so the caller can skip its own write.
// Any error (filesystem without flock, permission) degrades to "locked
// by nobody": the write proceeds, and temp-file + atomic rename keeps
// it safe regardless — the lock only dedupes effort, it never guards
// correctness. Sidecars are tiny, immutable and reused for the entry's
// whole lifetime, so they are never unlinked (unlinking a held lock
// file is the classic three-process flock race).
func tryLockKey(path string) (unlock func(), ok bool) {
	f, err := os.OpenFile(path+".lock", os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return func() {}, true
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, false
	}
	return func() {
		syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		f.Close()
	}, true
}
