package cache

import (
	"container/list"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"bootstrap/internal/obs"
)

// Version is the on-disk entry format version. A version mismatch on
// read is a miss, so bumping it invalidates every existing disk tier
// without deleting anything.
const Version uint32 = 1

// diskMagic brands every on-disk entry.
const diskMagic = "BTSCACHE"

// headerSize is the fixed envelope prefix: magic, version, key echo,
// payload length, payload checksum.
const headerSize = len(diskMagic) + 4 + len(Key{}) + 8 + 4

// DefaultMaxBytes bounds the in-memory tier when Options.MaxBytes is 0.
const DefaultMaxBytes = 64 << 20

// Stats are the cache's monotone traffic counters.
type Stats struct {
	Hits         int64
	Misses       int64
	BytesRead    int64 // payload bytes served by Get
	BytesWritten int64 // payload bytes accepted by Put
}

// Sub returns the counter deltas s - t, for per-run windows over a
// shared cache.
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		Hits:         s.Hits - t.Hits,
		Misses:       s.Misses - t.Misses,
		BytesRead:    s.BytesRead - t.BytesRead,
		BytesWritten: s.BytesWritten - t.BytesWritten,
	}
}

// HitRate returns Hits / (Hits + Misses), or 0 with no traffic.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Options configure a Cache.
type Options struct {
	// MaxBytes bounds the in-memory tier's total payload bytes; least
	// recently used entries are evicted past it. 0 = DefaultMaxBytes;
	// negative = unbounded.
	MaxBytes int64
	// Dir, when non-empty, enables the on-disk tier: entries are written
	// as versioned, checksummed files under it and survive the process.
	// Disk writes are best-effort (an I/O error drops the entry); disk
	// reads validate everything and treat any mismatch as a miss.
	Dir string
}

type memEntry struct {
	key  Key
	data []byte
}

// Cache is a two-tier content-addressed store for serialized per-cluster
// results: an in-memory LRU over an optional on-disk tier. Safe for
// concurrent use.
type Cache struct {
	mu    sync.Mutex
	opts  Options
	ll    *list.List // front = most recently used
	items map[Key]*list.Element
	bytes int64
	stats Stats
}

// New creates a cache.
func New(opts Options) *Cache {
	if opts.MaxBytes == 0 {
		opts.MaxBytes = DefaultMaxBytes
	}
	return &Cache{
		opts:  opts,
		ll:    list.New(),
		items: map[Key]*list.Element{},
	}
}

// Get returns the payload stored under k. A disk-tier hit is promoted
// into memory. Every call counts exactly one hit or miss.
func (c *Cache) Get(k Key) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		data := el.Value.(*memEntry).data
		c.stats.Hits++
		c.stats.BytesRead += int64(len(data))
		return data, true
	}
	if data, ok := c.readDisk(k); ok {
		c.insert(k, data)
		c.stats.Hits++
		c.stats.BytesRead += int64(len(data))
		return data, true
	}
	c.stats.Misses++
	return nil, false
}

// Put stores the payload under k in both tiers. The cache takes
// ownership of data.
func (c *Cache) Put(k Key, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.BytesWritten += int64(len(data))
	c.insert(k, data)
	c.writeDisk(k, data)
}

// Corrupt reports that the payload Get returned for k failed to decode:
// the entry is dropped from both tiers and the hit is re-booked as a
// miss, keeping the counters truthful. The decode failure itself stays
// an ordinary miss for the caller — never an error.
func (c *Cache) Corrupt(k Key) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.remove(el)
	}
	if c.opts.Dir != "" {
		os.Remove(c.path(k))
	}
	c.stats.Hits--
	c.stats.Misses++
}

// Stats returns a snapshot of the traffic counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len returns the number of in-memory entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Bytes returns the total payload bytes held by the in-memory tier.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Register exposes the cache's live counters on a metrics registry
// (nil-safe no-op without one): traffic as counters read at scrape time,
// occupancy as gauges. Register once per cache — the metrics read
// through to this cache for its whole lifetime.
func (c *Cache) Register(m *obs.Metrics) {
	m.CounterFunc("bootstrap_cache_hits_total",
		"result-cache lookups served from memory or disk", func() int64 { return c.Stats().Hits })
	m.CounterFunc("bootstrap_cache_misses_total",
		"result-cache lookups that found nothing", func() int64 { return c.Stats().Misses })
	m.CounterFunc("bootstrap_cache_read_bytes_total",
		"payload bytes served by result-cache hits", func() int64 { return c.Stats().BytesRead })
	m.CounterFunc("bootstrap_cache_written_bytes_total",
		"payload bytes accepted by result-cache stores", func() int64 { return c.Stats().BytesWritten })
	m.GaugeFunc("bootstrap_cache_entries",
		"entries in the result cache's in-memory tier", func() float64 { return float64(c.Len()) })
	m.GaugeFunc("bootstrap_cache_bytes",
		"payload bytes in the result cache's in-memory tier", func() float64 { return float64(c.Bytes()) })
}

// insert adds or replaces the in-memory entry and evicts LRU entries
// past the byte bound. Caller holds c.mu.
func (c *Cache) insert(k Key, data []byte) {
	if el, ok := c.items[k]; ok {
		c.remove(el)
	}
	el := c.ll.PushFront(&memEntry{key: k, data: data})
	c.items[k] = el
	c.bytes += int64(len(data))
	if c.opts.MaxBytes < 0 {
		return
	}
	for c.bytes > c.opts.MaxBytes && c.ll.Len() > 1 {
		c.remove(c.ll.Back())
	}
}

// remove drops one in-memory entry. Caller holds c.mu.
func (c *Cache) remove(el *list.Element) {
	e := el.Value.(*memEntry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.bytes -= int64(len(e.data))
}

func (c *Cache) path(k Key) string {
	return filepath.Join(c.opts.Dir, k.String()+".bsc")
}

// encodeEntry builds the on-disk envelope around one payload: magic,
// version, key echo, payload length, payload checksum, payload. The
// envelope is the unit FuzzDecodeEntry exercises.
func encodeEntry(k Key, data []byte) []byte {
	buf := make([]byte, 0, headerSize+len(data))
	buf = append(buf, diskMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, Version)
	buf = append(buf, k[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(data)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(data))
	buf = append(buf, data...)
	return buf
}

// decodeEntry validates one on-disk envelope against the key it was
// looked up under and returns the payload. Any defect — short input,
// wrong magic/version/key echo, length or checksum mismatch — is
// reported as absence, never a panic: disk corruption must read as a
// cache miss.
func decodeEntry(k Key, raw []byte) ([]byte, bool) {
	if len(raw) < headerSize {
		return nil, false
	}
	off := 0
	if string(raw[:len(diskMagic)]) != diskMagic {
		return nil, false
	}
	off += len(diskMagic)
	if binary.LittleEndian.Uint32(raw[off:]) != Version {
		return nil, false
	}
	off += 4
	var echo Key
	copy(echo[:], raw[off:])
	if echo != k {
		return nil, false
	}
	off += len(Key{})
	n := binary.LittleEndian.Uint64(raw[off:])
	off += 8
	sum := binary.LittleEndian.Uint32(raw[off:])
	off += 4
	payload := raw[off:]
	if uint64(len(payload)) != n || crc32.ChecksumIEEE(payload) != sum {
		return nil, false
	}
	return payload, true
}

// readDisk loads and validates one disk entry. Any problem — missing
// file, short read, wrong magic/version/key, length or checksum
// mismatch — is reported as absence.
func (c *Cache) readDisk(k Key) ([]byte, bool) {
	if c.opts.Dir == "" {
		return nil, false
	}
	raw, err := os.ReadFile(c.path(k))
	if err != nil {
		return nil, false
	}
	return decodeEntry(k, raw)
}

// writeDisk stores one disk entry atomically (temp file + rename) so a
// crash never leaves a half-written entry under the final name — a
// reader racing a writer sees either the complete old file or the
// complete new one, never a torn entry, and concurrent writers of the
// same key are harmless because content addressing makes their payloads
// identical. Errors are swallowed: the disk tier is an optimization,
// not a requirement.
//
// The tier is multi-process safe by construction, and two cheap guards
// keep a shard fleet from stampeding: entries are immutable once
// renamed into place, so an existing file short-circuits the write
// entirely, and a non-blocking flock on a per-key sidecar skips the
// write when another process is already mid-store of the same content.
func (c *Cache) writeDisk(k Key, data []byte) {
	if c.opts.Dir == "" {
		return
	}
	path := c.path(k)
	if _, err := os.Stat(path); err == nil {
		return // immutable entry already published (by us or a peer)
	}
	if err := os.MkdirAll(c.opts.Dir, 0o755); err != nil {
		return
	}
	unlock, ok := tryLockKey(path)
	if !ok {
		return // a peer process is writing these exact bytes right now
	}
	defer unlock()
	if _, err := os.Stat(path); err == nil {
		return // the peer won the lock race and already published
	}
	buf := encodeEntry(k, data)
	tmp, err := os.CreateTemp(c.opts.Dir, "put-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(buf)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
	}
}
