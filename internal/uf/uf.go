// Package uf implements a union-find (disjoint-set) forest with union by
// rank and path compression. It is the substrate for Steensgaard's
// unification-based points-to analysis, which requires near-constant-time
// Find/Union to achieve its almost-linear overall complexity.
package uf

// Forest is a disjoint-set forest over the dense integer universe
// [0, Len()). The zero value is an empty forest; use New or Grow to add
// elements.
type Forest struct {
	parent []int32
	rank   []uint8
	sets   int
}

// New returns a forest of n singleton sets, labeled 0..n-1.
func New(n int) *Forest {
	f := &Forest{}
	f.Grow(n)
	return f
}

// Len returns the number of elements in the universe.
func (f *Forest) Len() int { return len(f.parent) }

// Sets returns the current number of disjoint sets.
func (f *Forest) Sets() int { return f.sets }

// Grow extends the universe to at least n elements, adding each new element
// as a singleton set. Growing to a smaller or equal size is a no-op.
func (f *Forest) Grow(n int) {
	for i := len(f.parent); i < n; i++ {
		f.parent = append(f.parent, int32(i))
		f.rank = append(f.rank, 0)
		f.sets++
	}
}

// Add appends one fresh singleton element and returns its label.
func (f *Forest) Add() int {
	id := len(f.parent)
	f.Grow(id + 1)
	return id
}

// Find returns the canonical representative of x's set, compressing the
// path from x to the root.
func (f *Forest) Find(x int) int {
	root := x
	for f.parent[root] != int32(root) {
		root = int(f.parent[root])
	}
	for f.parent[x] != int32(root) {
		x, f.parent[x] = int(f.parent[x]), int32(root)
	}
	return root
}

// Union merges the sets containing x and y and returns the representative
// of the merged set. Union of elements already in the same set is a no-op.
func (f *Forest) Union(x, y int) int {
	rx, ry := f.Find(x), f.Find(y)
	if rx == ry {
		return rx
	}
	if f.rank[rx] < f.rank[ry] {
		rx, ry = ry, rx
	}
	f.parent[ry] = int32(rx)
	if f.rank[rx] == f.rank[ry] {
		f.rank[rx]++
	}
	f.sets--
	return rx
}

// Same reports whether x and y are in the same set.
func (f *Forest) Same(x, y int) bool { return f.Find(x) == f.Find(y) }

// Groups returns the members of every set, keyed by representative.
// Members appear in increasing order within each group.
func (f *Forest) Groups() map[int][]int {
	g := make(map[int][]int, f.sets)
	for i := 0; i < len(f.parent); i++ {
		r := f.Find(i)
		g[r] = append(g[r], i)
	}
	return g
}
