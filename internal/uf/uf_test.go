package uf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingletons(t *testing.T) {
	f := New(5)
	if f.Len() != 5 {
		t.Fatalf("Len = %d, want 5", f.Len())
	}
	if f.Sets() != 5 {
		t.Fatalf("Sets = %d, want 5", f.Sets())
	}
	for i := 0; i < 5; i++ {
		if f.Find(i) != i {
			t.Errorf("Find(%d) = %d, want %d", i, f.Find(i), i)
		}
	}
}

func TestUnionFind(t *testing.T) {
	f := New(6)
	f.Union(0, 1)
	f.Union(2, 3)
	f.Union(1, 2)
	if !f.Same(0, 3) {
		t.Error("0 and 3 should be in the same set")
	}
	if f.Same(0, 4) {
		t.Error("0 and 4 should be in different sets")
	}
	if f.Sets() != 3 {
		t.Errorf("Sets = %d, want 3", f.Sets())
	}
}

func TestUnionIdempotent(t *testing.T) {
	f := New(3)
	f.Union(0, 1)
	before := f.Sets()
	f.Union(0, 1)
	f.Union(1, 0)
	if f.Sets() != before {
		t.Errorf("repeated union changed set count: %d -> %d", before, f.Sets())
	}
}

func TestGrowAndAdd(t *testing.T) {
	f := &Forest{}
	a := f.Add()
	b := f.Add()
	if a == b {
		t.Fatalf("Add returned duplicate label %d", a)
	}
	f.Grow(10)
	if f.Len() != 10 {
		t.Fatalf("Len = %d, want 10", f.Len())
	}
	f.Grow(4) // shrinking is a no-op
	if f.Len() != 10 {
		t.Fatalf("Len after no-op Grow = %d, want 10", f.Len())
	}
	f.Union(a, 9)
	if !f.Same(b, b) || !f.Same(a, 9) {
		t.Error("union across grown region failed")
	}
}

func TestGroups(t *testing.T) {
	f := New(5)
	f.Union(0, 2)
	f.Union(2, 4)
	g := f.Groups()
	if len(g) != 3 {
		t.Fatalf("got %d groups, want 3", len(g))
	}
	r := f.Find(0)
	members := g[r]
	if len(members) != 3 {
		t.Fatalf("group of 0 has %d members, want 3", len(members))
	}
	want := []int{0, 2, 4}
	for i, m := range members {
		if m != want[i] {
			t.Errorf("members[%d] = %d, want %d", i, m, want[i])
		}
	}
}

// TestEquivalenceRelation checks that Same is an equivalence relation
// consistent with the sequence of unions, against a naive quadratic oracle.
func TestEquivalenceRelation(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 40
		f := New(n)
		// Oracle: naive labels.
		label := make([]int, n)
		for i := range label {
			label[i] = i
		}
		relabel := func(from, to int) {
			for i := range label {
				if label[i] == from {
					label[i] = to
				}
			}
		}
		for k := 0; k < 60; k++ {
			x, y := rng.Intn(n), rng.Intn(n)
			f.Union(x, y)
			relabel(label[x], label[y])
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if f.Same(i, j) != (label[i] == label[j]) {
					return false
				}
			}
		}
		// Set count matches the oracle's distinct labels.
		distinct := map[int]bool{}
		for _, l := range label {
			distinct[l] = true
		}
		return f.Sets() == len(distinct)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUnionFind(b *testing.B) {
	const n = 1 << 16
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f := New(n)
		for j := 1; j < n; j++ {
			f.Union(j, j/2)
		}
		if f.Sets() != 1 {
			b.Fatal("expected a single set")
		}
	}
}
