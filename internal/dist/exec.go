package dist

import (
	"context"
	"fmt"
	"os"
	"os/exec"

	"bootstrap/internal/faults"
)

// Env vars that flip a re-exec'd binary into worker mode. Spawned
// workers are the same binary as the coordinator (bootstrap, benchtab
// or aliaswork) re-exec'd with workerEnv set — no second binary to
// ship, and the worker is guaranteed to be the same build.
const (
	workerEnv = "BOOTSTRAP_DIST_WORKER" // coordinator URL; presence selects worker mode
	nameEnv   = "BOOTSTRAP_DIST_NAME"   // optional worker name override

	// killEnv arms a faults.Kill in the worker: "cluster,afterTuples".
	// A negative cluster arms the kill globally (the first cluster this
	// worker attempts dies). Test-only: this is how the lease-expiry e2e
	// kills a real worker process at a deterministic solve position.
	killEnv = "BOOTSTRAP_DIST_KILL"
)

// MaybeWorker checks the environment and, when this process was
// spawned as a shard worker, runs the worker loop and exits — it never
// returns in that case. Call it first thing in main() of any binary
// that spawns workers via SpawnWorkers.
func MaybeWorker() {
	url := os.Getenv(workerEnv)
	if url == "" {
		return
	}
	opts := WorkerOptions{Coordinator: url, Name: os.Getenv(nameEnv)}
	if spec := os.Getenv(killEnv); spec != "" {
		var clusterID int
		var after int64
		if _, err := fmt.Sscanf(spec, "%d,%d", &clusterID, &after); err == nil {
			f := faults.Fault{Kind: faults.Kill, AfterTuples: after}
			if clusterID < 0 {
				opts.Faults = faults.NewPlan().EveryNth(1, f)
			} else {
				opts.Faults = faults.NewPlan().Set(clusterID, f)
			}
		}
	}
	if _, err := RunWorker(context.Background(), opts); err != nil {
		fmt.Fprintf(os.Stderr, "dist worker: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// SpawnWorkers re-execs this binary n times in worker mode against the
// coordinator at url. Extra env entries ("K=V") are appended — the
// kill-fault e2e uses this to arm exactly one worker. Returns the
// running commands; Wait on them (or don't — the coordinator's lease
// expiry owns failure handling either way).
func SpawnWorkers(n int, url string, extraEnv ...string) ([]*exec.Cmd, error) {
	self, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("dist: cannot re-exec: %w", err)
	}
	cmds := make([]*exec.Cmd, 0, n)
	for i := 0; i < n; i++ {
		cmd := exec.Command(self)
		cmd.Env = append(os.Environ(),
			workerEnv+"="+url,
			fmt.Sprintf("%s=worker-%d", nameEnv, i),
		)
		cmd.Env = append(cmd.Env, extraEnv...)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			for _, c := range cmds {
				c.Process.Kill()
			}
			return nil, fmt.Errorf("dist: spawn worker %d: %w", i, err)
		}
		cmds = append(cmds, cmd)
	}
	return cmds, nil
}

func pid() int { return os.Getpid() }
