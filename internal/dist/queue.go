package dist

import (
	"sort"
	"sync"
	"time"

	"bootstrap/internal/cluster"
)

// itemState is the lease state machine of one work item:
//
//	pending ──claim──▶ leased ──complete──▶ done
//	   ▲                  │
//	   └──lease expired───┘   (attempts++, re-issued to the next claimer)
//
// after maxLeases expirations the item goes abandoned: the coordinator
// stops handing it out and the merge pass solves it locally.
type itemState uint8

const (
	statePending itemState = iota
	stateLeased
	stateDone
	stateAbandoned
)

// maxLeases bounds how often an item is re-issued after lease expiry
// before the coordinator gives up on the fleet for it. It mirrors the
// scheduler's retry-then-demote ladder one level up: retry the cluster
// on (presumably) another worker, then demote it to local solving.
const maxLeases = 3

type queueItem struct {
	Item
	state    itemState
	attempts int   // leases issued so far
	lease    int64 // current lease ID while leased
	worker   string
	expiry   time.Time
	busyNS   int64 // reported by the completing worker
	stolen   bool  // completed via a steal
	outcome  string
}

// queue is the coordinator's lease queue: the greedy bins, the lease
// state machine, and the steal policy. All methods are safe for
// concurrent use; time is injectable for deterministic expiry tests.
type queue struct {
	mu      sync.Mutex
	items   []*queueItem // indexed by position, not cluster ID
	byID    map[int]int  // cluster ID -> items index
	bins    [][]int      // per shard: item indexes, largest-first claim order
	binning Binning
	ttl     time.Duration
	leaseID int64
	now     func() time.Time

	// aggregate counters (guarded by mu)
	claims      int64
	steals      int64
	completions int64
	expirations int64
	abandoned   int64
}

// GreedyBins is the paper's static binning heuristic: walk the clusters
// in cover order accumulating pointer counts, and close a bin once it
// holds at least 1/k of the total — the simulated-multiple-machines
// partitioning of the paper's Section 5. The last bin takes the
// remainder. Exported for the benchmark table, which reports bin skew.
func GreedyBins(clusters []*cluster.Cluster, k int) [][]int {
	bins := make([][]int, k)
	if len(clusters) == 0 {
		return bins
	}
	total := 0
	for _, c := range clusters {
		total += c.Size()
	}
	per := total / k
	if per == 0 {
		per = 1
	}
	bin, acc := 0, 0
	for i, c := range clusters {
		bins[bin] = append(bins[bin], i)
		acc += c.Size()
		if acc >= per && bin < k-1 {
			bin, acc = bin+1, 0
		}
	}
	return bins
}

// newQueue builds the queue over a plan's clusters. The items slice is
// parallel to clusters (cover order); bins index into it.
func newQueue(clusters []*cluster.Cluster, shards int, binning Binning, ttl time.Duration) *queue {
	q := &queue{
		byID:    make(map[int]int, len(clusters)),
		bins:    GreedyBins(clusters, shards),
		binning: binning,
		ttl:     ttl,
		now:     time.Now,
	}
	q.items = make([]*queueItem, len(clusters))
	for i, c := range clusters {
		q.items[i] = &queueItem{Item: Item{Cluster: c.ID, Size: c.Size()}}
		q.byID[c.ID] = i
	}
	for b, idxs := range q.bins {
		// Largest-first within a bin: expensive clusters start earliest,
		// which shortens the critical path under both policies.
		sort.SliceStable(idxs, func(x, y int) bool {
			return q.items[idxs[x]].Size > q.items[idxs[y]].Size
		})
		for _, i := range idxs {
			q.items[i].Bin = b
		}
	}
	return q
}

// manifestItems returns the items in cover order for the manifest.
func (q *queue) manifestItems() []Item {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Item, len(q.items))
	for i, it := range q.items {
		out[i] = it.Item
	}
	return out
}

// reapExpired walks leased items and returns expired ones to pending
// (or abandons them past maxLeases). Caller holds q.mu.
func (q *queue) reapExpired(now time.Time) (expired []int) {
	for i, it := range q.items {
		if it.state == stateLeased && now.After(it.expiry) {
			q.expirations++
			it.lease, it.worker = 0, ""
			if it.attempts >= maxLeases {
				it.state = stateAbandoned
				q.abandoned++
			} else {
				it.state = statePending
			}
			expired = append(expired, i)
		}
	}
	return expired
}

// reap returns expired leases to pending (or abandons them) without
// claiming anything — the coordinator's drain poll, which must never
// lease work to itself.
func (q *queue) reap() (expired []int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.reapExpired(q.now())
}

// pendingIn returns the index of the first pending item of bin b, or -1.
// Caller holds q.mu.
func (q *queue) pendingIn(b int) int {
	for _, i := range q.bins[b] {
		if q.items[i].state == statePending {
			return i
		}
	}
	return -1
}

// claimResult is what claim hands the coordinator to answer a worker.
type claimResult struct {
	status  string // "work" | "wait" | "done"
	item    *queueItem
	expired []int // items whose leases were reaped by this claim
}

// claim issues the next lease to a worker serving shard. Policy: reap
// expired leases first; take the largest pending item of the home bin;
// under BinningSteal, when the home bin is dry, steal the largest
// pending item from the bin with the most pending weight. "wait" means
// everything reachable is currently leased; "done" means nothing this
// worker could ever receive remains.
func (q *queue) claim(worker string, shard int) claimResult {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()
	expired := q.reapExpired(now)
	if shard < 0 || shard >= len(q.bins) {
		shard = 0
	}

	pick, stolen := q.pendingIn(shard), false
	if pick < 0 && q.binning == BinningSteal {
		// Steal from the bin with the most pending pointer weight — the
		// fullest victim levels fastest.
		best, bestWeight := -1, 0
		for b := range q.bins {
			if b == shard {
				continue
			}
			w := 0
			for _, i := range q.bins[b] {
				if q.items[i].state == statePending {
					w += q.items[i].Size
				}
			}
			if w > bestWeight {
				best, bestWeight = b, w
			}
		}
		if best >= 0 {
			pick, stolen = q.pendingIn(best), true
		}
	}
	if pick < 0 {
		// Nothing pending in reach: distinguish "all done/abandoned"
		// from "leased out elsewhere, come back".
		open := false
		for _, it := range q.items {
			if it.state == statePending || it.state == stateLeased {
				open = true
				break
			}
		}
		if open {
			return claimResult{status: "wait", expired: expired}
		}
		return claimResult{status: "done", expired: expired}
	}

	it := q.items[pick]
	q.leaseID++
	it.state = stateLeased
	it.lease = q.leaseID
	it.worker = worker
	it.expiry = now.Add(q.ttl)
	it.attempts++
	it.stolen = stolen
	q.claims++
	if stolen {
		q.steals++
	}
	return claimResult{status: "work", item: it, expired: expired}
}

// renew extends a live lease by one TTL. A stale lease (expired and
// possibly re-issued) renews nothing.
func (q *queue) renew(cluster int, lease int64) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	i, ok := q.byID[cluster]
	if !ok {
		return false
	}
	it := q.items[i]
	if it.state != stateLeased || it.lease != lease {
		return false
	}
	it.expiry = q.now().Add(q.ttl)
	return true
}

// complete finishes a leased item. Stale leases are rejected: if the
// lease expired and the item was re-issued (or already completed by a
// successor), the late worker's result is ignored — the cache made the
// duplicate solve harmless, but the accounting must not double-count.
func (q *queue) complete(req CompleteRequest) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	i, ok := q.byID[req.Cluster]
	if !ok {
		return false
	}
	it := q.items[i]
	if it.state != stateLeased || it.lease != req.Lease {
		return false
	}
	it.state = stateDone
	it.busyNS = req.BusyNS
	it.outcome = req.Outcome
	q.completions++
	return true
}

// done reports whether no pending or leased work remains.
func (q *queue) done() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, it := range q.items {
		if it.state == statePending || it.state == stateLeased {
			return false
		}
	}
	return true
}
