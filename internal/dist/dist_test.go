package dist

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strings"
	"testing"
	"time"

	"bootstrap/internal/cache"
	"bootstrap/internal/core"
	"bootstrap/internal/faults"
	"bootstrap/internal/frontend"
	"bootstrap/internal/ir"
	"bootstrap/internal/synth"
)

func frontendLower(src string) (*ir.Program, error) { return frontend.LowerSource(src) }

func newDirCache(dir string) *cache.Cache { return cache.New(cache.Options{Dir: dir}) }

// TestMain flips the re-exec'd test binary into worker mode: spawned
// workers are this binary with workerEnv set, and MaybeWorker never
// returns for them.
func TestMain(m *testing.M) {
	MaybeWorker()
	os.Exit(m.Run())
}

// testSource is a small multi-cluster workload: autofs at reduced
// scale still fractures into enough clusters to shard meaningfully.
func testSource(t *testing.T) string {
	t.Helper()
	b, ok := synth.FindBenchmark("autofs")
	if !ok {
		t.Fatal("autofs benchmark missing")
	}
	return synth.Generate(b, 0.1)
}

func testConfig() core.Config {
	return core.Config{Mode: core.ModeAndersen, Workers: 1}
}

// dump serializes every public query surface of an analysis: the
// cover, health dispositions, and per-pointer points-to/alias answers
// at program exit. Two analyses with equal dumps are observably
// identical — the distributed runs must match a single-process solve
// exactly (Theorem 6 end to end).
func dump(a *core.Analysis) string {
	var sb strings.Builder
	for _, c := range a.Clusters {
		fmt.Fprintf(&sb, "cluster %d %s %v\n", c.ID, c.Kind, c.Pointers)
	}
	for _, h := range a.Health {
		fmt.Fprintf(&sb, "health %d demoted=%v\n", h.ClusterID, h.Demoted)
	}
	exit := a.Prog.Func(a.Prog.Entry).Exit
	seen := map[ir.VarID]bool{}
	var ptrs []ir.VarID
	for _, c := range a.Clusters {
		for _, p := range c.Pointers {
			if !seen[p] {
				seen[p] = true
				ptrs = append(ptrs, p)
			}
		}
	}
	sort.Slice(ptrs, func(i, j int) bool { return ptrs[i] < ptrs[j] })
	for _, p := range ptrs {
		objs, precise := a.PointsTo(p, exit)
		fmt.Fprintf(&sb, "pts %d %v %v\n", p, objs, precise)
		fmt.Fprintf(&sb, "aliases %d %v\n", p, a.Aliases(p, exit))
	}
	return sb.String()
}

// TestDistributedMatchesSingleProcess is the protocol e2e with
// in-process workers: a 3-shard work-stealing run must produce an
// analysis observably identical to a plain single-process solve, with
// every item completed by the fleet.
func TestDistributedMatchesSingleProcess(t *testing.T) {
	src := testSource(t)
	single, err := core.AnalyzeSource(src, testConfig())
	if err != nil {
		t.Fatal(err)
	}

	res, err := Run(context.Background(), src, testConfig(), RunOptions{
		Shards:    3,
		InProcess: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Report
	if r.Items == 0 || r.Completed != r.Items {
		t.Fatalf("fleet completed %d/%d items", r.Completed, r.Items)
	}
	if r.Abandoned != 0 || r.Expirations != 0 {
		t.Fatalf("healthy run had abandoned=%d expirations=%d", r.Abandoned, r.Expirations)
	}
	if got, want := dump(res.Analysis), dump(single); got != want {
		t.Errorf("distributed result diverges from single-process solve:\n got: %.400s\nwant: %.400s", got, want)
	}
	// Merge pass must have imported the fleet's results, not re-solved:
	// every non-demoted cluster answers from the cache.
	cached := 0
	for _, h := range res.Analysis.Health {
		if h.Cached {
			cached++
		}
	}
	if cached == 0 {
		t.Error("merge pass imported nothing from the shared cache")
	}
}

// TestGreedyBinningMode exercises the paper's static policy end to
// end: no steals may occur, and the result is still exact.
func TestGreedyBinningMode(t *testing.T) {
	src := testSource(t)
	res, err := Run(context.Background(), src, testConfig(), RunOptions{
		Shards:    2,
		Binning:   BinningGreedy,
		InProcess: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Steals != 0 {
		t.Fatalf("greedy binning stole %d times", res.Report.Steals)
	}
	single, err := core.AnalyzeSource(src, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if dump(res.Analysis) != dump(single) {
		t.Error("greedy-binned result diverges from single-process solve")
	}
}

// TestMultiProcessWorkers runs real re-exec'd worker processes — the
// production path of bootstrap -shards.
func TestMultiProcessWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	src := testSource(t)
	res, err := Run(context.Background(), src, testConfig(), RunOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Completed != res.Report.Items {
		t.Fatalf("fleet completed %d/%d", res.Report.Completed, res.Report.Items)
	}
	if res.Report.Workers != 2 {
		t.Fatalf("workers joined = %d, want 2", res.Report.Workers)
	}
	single, err := core.AnalyzeSource(src, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if dump(res.Analysis) != dump(single) {
		t.Error("multi-process result diverges from single-process solve")
	}
}

// TestWorkerKillLeaseExpiry is the fault-tolerance acceptance test: a
// worker process is killed mid-solve by the faults injector (a real
// os.Exit, no recover), its lease expires, the coordinator re-issues
// the cluster to a healthy worker, and the merged Analysis is still
// bit-identical to a single-process solve.
func TestWorkerKillLeaseExpiry(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	src := testSource(t)
	cacheDir := t.TempDir()
	cfg := testConfig()

	prog, err := frontendLower(src)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := core.BuildPlan(context.Background(), prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Clusters) < 2 {
		t.Fatalf("workload too small to shard: %d clusters", len(pl.Clusters))
	}
	coord, err := NewCoordinator(pl, src, Options{
		Shards:   2,
		Binning:  BinningSteal,
		LeaseTTL: 300 * time.Millisecond,
		CacheDir: cacheDir,
		Config:   cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// Phase 1: a worker armed to die on the first tuple of the first
	// cluster it attempts. It joins, claims, and is killed by the
	// injector — verified by the distinctive exit code.
	doomed := spawnTestWorker(t, coord.Addr(), "doomed", "-1,0")
	err = doomed.Wait()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != faults.KillExitCode {
		t.Fatalf("doomed worker exit = %v, want injected-kill code %d", err, faults.KillExitCode)
	}

	// Phase 2: a healthy worker joins the second shard. Work stealing
	// plus lease expiry must route every cluster — including the dead
	// worker's — through it.
	healthy := spawnTestWorker(t, coord.Addr(), "healthy", "")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := coord.WaitDrained(ctx); err != nil {
		t.Fatal(err)
	}
	if err := healthy.Wait(); err != nil {
		t.Fatalf("healthy worker: %v", err)
	}

	r := coord.Report()
	if r.Expirations == 0 {
		t.Fatalf("kill did not surface as a lease expiry: %+v", r)
	}
	if r.Completed != r.Items {
		t.Fatalf("fleet completed %d/%d after kill", r.Completed, r.Items)
	}

	// Merge and compare bit-for-bit with a single-process solve.
	mcfg := cfg
	mcfg.Cache = newDirCache(cacheDir)
	merged, err := core.AnalyzeFromPlan(context.Background(), pl, mcfg)
	if err != nil {
		t.Fatal(err)
	}
	single, err := core.AnalyzeSource(src, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if dump(merged) != dump(single) {
		t.Error("post-kill merged result diverges from single-process solve")
	}
}

// spawnTestWorker re-execs the test binary as one worker, optionally
// armed with a kill fault ("cluster,afterTuples"; cluster -1 = first
// cluster attempted).
func spawnTestWorker(t *testing.T, url, name, killSpec string) *exec.Cmd {
	t.Helper()
	self, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(self)
	cmd.Env = append(os.Environ(), workerEnv+"="+url, nameEnv+"="+name)
	if killSpec != "" {
		cmd.Env = append(cmd.Env, killEnv+"="+killSpec)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	return cmd
}
