package dist

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"bootstrap/internal/core"
	"bootstrap/internal/obs"
)

// DefaultLeaseTTL is the lease duration when Options.LeaseTTL is zero.
// Long enough that a healthy worker solving a heavy cluster (with the
// renewal goroutine extending at TTL/3) never expires; short enough
// that a killed worker's clusters come back quickly.
const DefaultLeaseTTL = 5 * time.Second

// Options configure a Coordinator.
type Options struct {
	// Shards is the number of greedy bins / worker slots (>= 1).
	Shards int
	// Binning picks static greedy bins or greedy-seeded work stealing
	// (the default).
	Binning Binning
	// LeaseTTL is the claim lease duration (0 = DefaultLeaseTTL).
	LeaseTTL time.Duration
	// CacheDir is the shared result-cache directory workers publish
	// into. Required: it is the only result channel.
	CacheDir string
	// Config is the analysis configuration; its wire subset is served to
	// workers, and its Tracer/Metrics receive the coordinator's
	// dist_* instrumentation.
	Config core.Config
	// Addr is the listen address (default "127.0.0.1:0": loopback,
	// kernel-assigned port).
	Addr string
}

// Coordinator owns the lease queue for one program's eager phase and
// serves it over HTTP. Create with NewCoordinator, hand workers
// Addr(), then WaitDrained and run the merge pass
// (core.AnalyzeFromPlan with the same CacheDir).
type Coordinator struct {
	opts     Options
	source   string
	manifest Manifest
	q        *queue
	srv      *http.Server
	ln       net.Listener
	started  time.Time

	mu      sync.Mutex
	shards  map[string]int // worker name -> shard
	joined  int
	perSh   []ShardReport
	spans   map[int]*obs.Span // cluster -> open lease span
	drained chan struct{}
	once    sync.Once
}

// NewCoordinator builds the work manifest from a plan and starts
// serving the queue. source must be the exact text the plan was built
// from — workers rebuild the plan from it.
func NewCoordinator(pl *core.Plan, source string, opts Options) (*Coordinator, error) {
	if opts.Shards < 1 {
		opts.Shards = 1
	}
	if opts.Binning == "" {
		opts.Binning = BinningSteal
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = DefaultLeaseTTL
	}
	if opts.CacheDir == "" {
		return nil, fmt.Errorf("dist: coordinator requires a cache dir (the result channel)")
	}
	if opts.Addr == "" {
		opts.Addr = "127.0.0.1:0"
	}
	wc := WireFromConfig(opts.Config)
	c := &Coordinator{
		opts:    opts,
		source:  source,
		q:       newQueue(pl.Clusters, opts.Shards, opts.Binning, opts.LeaseTTL),
		shards:  map[string]int{},
		perSh:   make([]ShardReport, opts.Shards),
		spans:   map[int]*obs.Span{},
		drained: make(chan struct{}),
		started: time.Now(),
	}
	for s := range c.perSh {
		c.perSh[s].Shard = s
		opts.Config.Tracer.NameThread(obs.ShardTID(s), fmt.Sprintf("dist-shard-%d", s))
	}
	c.manifest = Manifest{
		Fingerprint: Fingerprint(source, wc),
		Shards:      opts.Shards,
		Binning:     opts.Binning,
		LeaseTTLMS:  opts.LeaseTTL.Milliseconds(),
		CacheDir:    opts.CacheDir,
		Config:      wc,
		Items:       c.q.manifestItems(),
	}
	if len(c.manifest.Items) == 0 {
		c.once.Do(func() { close(c.drained) })
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /dist/manifest", c.handleManifest)
	mux.HandleFunc("GET /dist/program", c.handleProgram)
	mux.HandleFunc("POST /dist/join", c.handleJoin)
	mux.HandleFunc("POST /dist/claim", c.handleClaim)
	mux.HandleFunc("POST /dist/complete", c.handleComplete)
	mux.HandleFunc("POST /dist/renew", c.handleRenew)
	mux.HandleFunc("GET /dist/status", c.handleStatus)
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("dist: listen: %w", err)
	}
	c.ln = ln
	c.srv = &http.Server{Handler: mux}
	go c.srv.Serve(ln)
	return c, nil
}

// Addr returns the coordinator's URL (http://host:port).
func (c *Coordinator) Addr() string { return "http://" + c.ln.Addr().String() }

// Fingerprint returns the manifest fingerprint.
func (c *Coordinator) Fingerprint() string { return c.manifest.Fingerprint }

// Close stops serving. Leases die with the coordinator; the merge pass
// handles whatever was not completed.
func (c *Coordinator) Close() error { return c.srv.Close() }

// WaitDrained blocks until every item is done or abandoned — the
// moment the merge pass may start. A nil channel receive on ctx.Done
// aborts early.
func (c *Coordinator) WaitDrained(ctx interface{ Done() <-chan struct{} }) error {
	// The drained channel closes on the complete/claim path; leases
	// expiring with no worker left to claim would stall it, so poll the
	// queue as a fallback reaper.
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-c.drained:
			return nil
		case <-ctx.Done():
			return fmt.Errorf("dist: drain aborted")
		case <-tick.C:
			c.noteExpired(c.q.reap())
			c.checkDrained()
		}
	}
}

func (c *Coordinator) checkDrained() {
	if c.q.done() {
		c.once.Do(func() { close(c.drained) })
	}
}

// Report returns the run's accounting. Call after WaitDrained.
func (c *Coordinator) Report() Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.q.mu.Lock()
	r := Report{
		Shards:      c.opts.Shards,
		Binning:     c.opts.Binning,
		Items:       len(c.q.items),
		Completed:   int(c.q.completions),
		Abandoned:   int(c.q.abandoned),
		Steals:      c.q.steals,
		Expirations: c.q.expirations,
		Workers:     c.joined,
		WallNS:      time.Since(c.started).Nanoseconds(),
		PerShard:    append([]ShardReport(nil), c.perSh...),
	}
	c.q.mu.Unlock()
	r.finalize()
	return r
}

func (c *Coordinator) metrics() *obs.Metrics { return c.opts.Config.Metrics }
func (c *Coordinator) tracer() *obs.Tracer   { return c.opts.Config.Tracer }

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, "bad request body", http.StatusBadRequest)
		return false
	}
	return true
}

func (c *Coordinator) handleManifest(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, c.manifest)
}

func (c *Coordinator) handleProgram(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, c.source)
}

func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req JoinRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Fingerprint != c.manifest.Fingerprint {
		http.Error(w, "fingerprint mismatch (worker built a different plan)", http.StatusConflict)
		return
	}
	c.mu.Lock()
	shard, ok := c.shards[req.Worker]
	if !ok {
		shard = c.joined % c.opts.Shards
		c.shards[req.Worker] = shard
		c.joined++
		c.perSh[shard].Workers++
	}
	c.mu.Unlock()
	c.metrics().Counter("bootstrap_dist_workers_joined_total",
		"workers that joined the distributed eager phase").Add(1)
	writeJSON(w, JoinResponse{Shard: shard})
}

func (c *Coordinator) handleClaim(w http.ResponseWriter, r *http.Request) {
	var req ClaimRequest
	if !readJSON(w, r, &req) {
		return
	}
	res := c.q.claim(req.Worker, req.Shard)
	c.noteExpired(res.expired)
	switch res.status {
	case "work":
		it := res.item
		c.mu.Lock()
		c.perSh[req.Shard].Claims++
		if it.stolen {
			c.perSh[req.Shard].Steals++
		}
		// One lease span per item on the claiming shard's track, closed
		// on complete or expiry — the Perfetto view of who ran what.
		c.spans[it.Cluster] = c.tracer().Start("dist", fmt.Sprintf("lease-%d", it.Cluster), obs.ShardTID(req.Shard)).
			Arg("cluster", it.Cluster).Arg("worker", req.Worker).
			Arg("stolen", it.stolen).Arg("attempt", it.attempts)
		c.mu.Unlock()
		c.metrics().Counter("bootstrap_dist_claims_total",
			"cluster leases issued to shard workers").Add(1)
		if it.stolen {
			c.metrics().Counter("bootstrap_dist_steals_total",
				"leases stolen from another shard's bin").Add(1)
		}
		writeJSON(w, ClaimResponse{
			Status:  "work",
			Cluster: it.Cluster,
			Lease:   it.lease,
			TTLMS:   c.opts.LeaseTTL.Milliseconds(),
			Stolen:  it.stolen,
		})
	case "wait":
		writeJSON(w, ClaimResponse{Status: "wait", RetryMS: claimWait.Milliseconds()})
	default:
		c.checkDrained()
		writeJSON(w, ClaimResponse{Status: "done"})
	}
}

// noteExpired books lease expirations observed by a claim's reap pass.
func (c *Coordinator) noteExpired(clusterIdx []int) {
	if len(clusterIdx) == 0 {
		return
	}
	c.mu.Lock()
	for _, i := range clusterIdx {
		id := c.q.items[i].Cluster
		if sp := c.spans[id]; sp != nil {
			sp.Arg("expired", true).End()
			delete(c.spans, id)
		}
	}
	c.mu.Unlock()
	c.metrics().Counter("bootstrap_dist_lease_expirations_total",
		"leases that expired before completion (lost or hung workers)").Add(int64(len(clusterIdx)))
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !readJSON(w, r, &req) {
		return
	}
	if !c.q.complete(req) {
		// Stale lease: the item expired and moved on. Harmless — the
		// worker's cache store (if any) is still valid content.
		http.Error(w, "stale lease", http.StatusConflict)
		return
	}
	c.mu.Lock()
	shard, ok := c.shards[req.Worker]
	if ok {
		c.perSh[shard].Completions++
		c.perSh[shard].BusyNS += req.BusyNS
	}
	if sp := c.spans[req.Cluster]; sp != nil {
		sp.Arg("outcome", req.Outcome).Arg("busy_ns", req.BusyNS).Arg("stored", req.Stored).End()
		delete(c.spans, req.Cluster)
	}
	c.mu.Unlock()
	c.metrics().Counter("bootstrap_dist_completions_total",
		"cluster leases completed by shard workers").Add(1)
	writeJSON(w, Ack{OK: true})
	c.checkDrained()
}

func (c *Coordinator) handleRenew(w http.ResponseWriter, r *http.Request) {
	var req RenewRequest
	if !readJSON(w, r, &req) {
		return
	}
	// Renewal is keyed by lease alone; find its cluster.
	c.q.mu.Lock()
	cl, found := -1, false
	for _, it := range c.q.items {
		if it.state == stateLeased && it.lease == req.Lease {
			cl, found = it.Cluster, true
			break
		}
	}
	c.q.mu.Unlock()
	if found {
		found = c.q.renew(cl, req.Lease)
	}
	if !found {
		http.Error(w, "stale lease", http.StatusConflict)
		return
	}
	writeJSON(w, Ack{OK: true})
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, c.Report())
}
