package dist

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"bootstrap/internal/cache"
	"bootstrap/internal/core"
	"bootstrap/internal/frontend"
)

// RunOptions configure one distributed analysis run.
type RunOptions struct {
	// Shards is the worker-process count (>= 1); one worker serves each
	// greedy bin.
	Shards int
	// Binning is the assignment policy (default BinningSteal).
	Binning Binning
	// LeaseTTL overrides the claim lease duration.
	LeaseTTL time.Duration
	// CacheDir is the shared result-cache directory. Empty creates a
	// temporary directory that is removed when Run returns.
	CacheDir string
	// SpawnEnv is appended to each spawned worker's environment —
	// the chaos hook (killEnv) rides in here from tests.
	SpawnEnv []string
	// InProcess runs the workers as goroutines of this process instead
	// of re-exec'd children. Worker loss cannot be exercised this way;
	// it exists for fast protocol tests.
	InProcess bool
	// Announce, when non-nil, receives a one-line "coordinator
	// listening on <url>" note once the queue is being served — the
	// address an external aliaswork process needs to join the fleet.
	Announce io.Writer
}

// RunResult is a distributed run's merged analysis plus the
// coordinator's accounting.
type RunResult struct {
	Analysis *core.Analysis
	Report   Report
}

// Run executes the full distributed eager phase for one program: build
// the plan, serve the lease queue, spawn (or start) Shards workers,
// wait for the queue to drain — or for the whole fleet to die — and
// then run the merge pass over the shared cache. The merged Analysis
// is bit-identical to a single-process solve: worker-solved clusters
// import from the cache (Theorem 6), and anything the fleet failed to
// deliver is solved locally through the ordinary ladder.
func Run(ctx context.Context, source string, cfg core.Config, opts RunOptions) (*RunResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Shards < 1 {
		opts.Shards = 1
	}
	cacheDir := opts.CacheDir
	if cacheDir == "" {
		dir, err := os.MkdirTemp("", "bootstrap-dist-*")
		if err != nil {
			return nil, fmt.Errorf("dist: cache dir: %w", err)
		}
		defer os.RemoveAll(dir)
		cacheDir = dir
	}

	prog, err := frontend.LowerSource(source)
	if err != nil {
		return nil, fmt.Errorf("dist: lower: %w", err)
	}
	pl, err := core.BuildPlan(ctx, prog, cfg)
	if err != nil {
		return nil, err
	}

	coord, err := NewCoordinator(pl, source, Options{
		Shards:   opts.Shards,
		Binning:  opts.Binning,
		LeaseTTL: opts.LeaseTTL,
		CacheDir: cacheDir,
		Config:   cfg,
	})
	if err != nil {
		return nil, err
	}
	defer coord.Close()
	if opts.Announce != nil {
		fmt.Fprintf(opts.Announce, "dist: coordinator listening on %s (cache %s)\n", coord.Addr(), cacheDir)
	}

	// fleetDone closes when every worker has exited. If that happens
	// before the queue drains (all workers killed), the drain wait stops
	// and the merge pass takes over the remainder — worker loss degrades
	// throughput, never the result.
	fleetDone := make(chan struct{})
	if opts.InProcess {
		go func() {
			defer close(fleetDone)
			done := make(chan struct{}, opts.Shards)
			for i := 0; i < opts.Shards; i++ {
				go func(i int) {
					defer func() { done <- struct{}{} }()
					_, err := RunWorker(ctx, WorkerOptions{
						Coordinator: coord.Addr(),
						Name:        fmt.Sprintf("inproc-%d", i),
					})
					if err != nil && ctx.Err() == nil {
						fmt.Fprintf(os.Stderr, "dist worker %d: %v\n", i, err)
					}
				}(i)
			}
			for i := 0; i < opts.Shards; i++ {
				<-done
			}
		}()
	} else {
		cmds, err := SpawnWorkers(opts.Shards, coord.Addr(), opts.SpawnEnv...)
		if err != nil {
			return nil, err
		}
		go func() {
			defer close(fleetDone)
			for _, cmd := range cmds {
				cmd.Wait() // non-zero exits (kills) are the lease layer's problem
			}
		}()
		defer func() {
			for _, cmd := range cmds {
				if cmd.ProcessState == nil {
					cmd.Process.Kill()
				}
			}
		}()
	}

	drainCtx, cancel := context.WithCancel(ctx)
	go func() {
		select {
		case <-fleetDone:
			cancel() // fleet gone: stop waiting, merge handles the rest
		case <-drainCtx.Done():
		}
	}()
	err = coord.WaitDrained(drainCtx)
	cancel()
	if err != nil && ctx.Err() != nil {
		return nil, ctx.Err()
	}
	// Let the workers see "done" and exit cleanly before the server
	// goes away; a wedged fleet doesn't hold the merge hostage.
	select {
	case <-fleetDone:
	case <-time.After(5 * time.Second):
	case <-ctx.Done():
	}
	report := coord.Report()

	// Merge pass: same plan, shared cache. Everything the fleet solved
	// imports warm; everything else solves here.
	mcfg := cfg
	mcfg.Cache = cache.New(cache.Options{Dir: cacheDir})
	a, err := core.AnalyzeFromPlan(ctx, pl, mcfg)
	if err != nil {
		return nil, err
	}
	return &RunResult{Analysis: a, Report: report}, nil
}
