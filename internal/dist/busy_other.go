//go:build !(linux || darwin || freebsd || netbsd || openbsd)

package dist

import "time"

var busyEpoch = time.Now()

// processCPUNS falls back to wall clock where rusage is unavailable;
// the speedup report is then load-dependent rather than CPU-true.
func processCPUNS() int64 { return time.Since(busyEpoch).Nanoseconds() }
