package dist

// ShardReport is one shard's slice of the run.
type ShardReport struct {
	Shard       int     `json:"shard"`
	Workers     int     `json:"workers"`
	Claims      int64   `json:"claims"`
	Steals      int64   `json:"steals"` // claims this shard's workers stole from other bins
	Completions int64   `json:"completions"`
	BusyNS      int64   `json:"busy_ns"`
	Utilization float64 `json:"utilization"` // BusyNS / max-shard BusyNS
}

// Report is the coordinator's accounting of one distributed eager
// phase. EagerSpeedup is the paper's simulated-k-machines metric:
// total solve cost over the critical path (the busiest shard's cost).
// It is machine-independent — busy time is per-cluster CPU (rusage)
// time, so the number answers "how much faster would the eager phase
// finish on k real machines", which is exactly what the paper's
// Section 5 estimates, rather than being an artifact of how many cores
// the coordinator's host happens to have. WallNS is the observed local
// wall clock for reference.
type Report struct {
	Shards      int     `json:"shards"`
	Binning     Binning `json:"binning"`
	Items       int     `json:"items"`
	Completed   int     `json:"completed"`
	Abandoned   int     `json:"abandoned"`
	Steals      int64   `json:"steals"`
	Expirations int64   `json:"lease_expirations"`
	Workers     int     `json:"workers_joined"`

	WallNS         int64   `json:"wall_ns"`
	BusyTotalNS    int64   `json:"busy_total_ns"`
	CriticalPathNS int64   `json:"critical_path_ns"`
	EagerSpeedup   float64 `json:"eager_speedup"`

	PerShard []ShardReport `json:"per_shard"`
}

// finalize computes the derived columns from the raw per-shard sums.
func (r *Report) finalize() {
	var total, max int64
	for _, s := range r.PerShard {
		total += s.BusyNS
		if s.BusyNS > max {
			max = s.BusyNS
		}
	}
	r.BusyTotalNS, r.CriticalPathNS = total, max
	if max > 0 {
		r.EagerSpeedup = float64(total) / float64(max)
		for i := range r.PerShard {
			r.PerShard[i].Utilization = float64(r.PerShard[i].BusyNS) / float64(max)
		}
	}
}
