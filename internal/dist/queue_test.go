package dist

import (
	"testing"
	"time"

	"bootstrap/internal/cluster"
	"bootstrap/internal/ir"
)

// fakeClusters builds clusters with the given pointer counts, IDs in
// slice order — enough structure for the queue, which only reads ID
// and Size.
func fakeClusters(sizes ...int) []*cluster.Cluster {
	out := make([]*cluster.Cluster, len(sizes))
	v := ir.VarID(0)
	for i, n := range sizes {
		c := &cluster.Cluster{ID: i}
		for j := 0; j < n; j++ {
			c.Pointers = append(c.Pointers, v)
			v++
		}
		out[i] = c
	}
	return out
}

func TestGreedyBinsSplitByPointerWeight(t *testing.T) {
	// 3+3 | 4 | 2+... — total 12 over 3 bins, 4 per bin: the paper's
	// accumulate-until-1/k walk in cover order.
	cs := fakeClusters(3, 3, 4, 2, 0)
	bins := GreedyBins(cs, 3)
	if len(bins) != 3 {
		t.Fatalf("bins = %d, want 3", len(bins))
	}
	want := [][]int{{0, 1}, {2}, {3, 4}}
	for b := range want {
		if len(bins[b]) != len(want[b]) {
			t.Fatalf("bin %d = %v, want %v", b, bins[b], want[b])
		}
		for i := range want[b] {
			if bins[b][i] != want[b][i] {
				t.Fatalf("bin %d = %v, want %v", b, bins[b], want[b])
			}
		}
	}
	// Determinism: same inputs, same bins.
	again := GreedyBins(cs, 3)
	for b := range bins {
		for i := range bins[b] {
			if again[b][i] != bins[b][i] {
				t.Fatal("GreedyBins is not deterministic")
			}
		}
	}
}

func TestClaimLargestFirstWithinHomeBin(t *testing.T) {
	q := newQueue(fakeClusters(2, 8, 5), 1, BinningSteal, time.Minute)
	order := []int{}
	for {
		res := q.claim("w", 0)
		if res.status != "work" {
			break
		}
		order = append(order, res.item.Cluster)
		q.complete(CompleteRequest{Lease: res.item.lease, Cluster: res.item.Cluster})
	}
	want := []int{1, 2, 0} // sizes 8, 5, 2
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("claim order = %v, want %v", order, want)
		}
	}
	if !q.done() {
		t.Fatal("queue not done after all completions")
	}
}

func TestStealFromFullestBinOnlyInStealMode(t *testing.T) {
	for _, tc := range []struct {
		binning   Binning
		wantSteal bool
	}{{BinningSteal, true}, {BinningGreedy, false}} {
		// Two bins: shard 0 gets clusters {0,1}, shard 1 gets {2}.
		q := newQueue(fakeClusters(3, 3, 6), 2, tc.binning, time.Minute)
		res := q.claim("w1", 1)
		if res.status != "work" || res.item.Cluster != 2 {
			t.Fatalf("[%s] shard 1 first claim = %+v, want cluster 2", tc.binning, res)
		}
		res = q.claim("w1", 1) // home bin dry
		if tc.wantSteal {
			if res.status != "work" || !res.item.stolen {
				t.Fatalf("[steal] dry home bin should steal, got %+v", res)
			}
			if res.item.Bin != 0 {
				t.Fatalf("[steal] stole from bin %d, want 0", res.item.Bin)
			}
		} else {
			if res.status != "wait" {
				t.Fatalf("[greedy] dry home bin must wait, got %q", res.status)
			}
			if q.steals != 0 {
				t.Fatalf("[greedy] steals = %d, want 0", q.steals)
			}
		}
	}
}

func TestLeaseExpiryReissuesThenAbandons(t *testing.T) {
	q := newQueue(fakeClusters(4), 1, BinningSteal, time.Second)
	now := time.Unix(1000, 0)
	q.now = func() time.Time { return now }

	var lastLease int64
	for i := 1; i <= maxLeases; i++ {
		res := q.claim("w", 0)
		if res.status != "work" {
			t.Fatalf("claim %d: %+v", i, res)
		}
		if res.item.attempts != i {
			t.Fatalf("claim %d: attempts = %d", i, res.item.attempts)
		}
		if res.item.lease == lastLease {
			t.Fatalf("claim %d: lease not re-issued", i)
		}
		lastLease = res.item.lease
		now = now.Add(2 * time.Second) // blow the TTL
	}
	res := q.claim("w", 0)
	if res.status != "done" {
		t.Fatalf("after %d expirations want done (abandoned), got %q", maxLeases, res.status)
	}
	if q.abandoned != 1 || q.expirations != int64(maxLeases) {
		t.Fatalf("abandoned=%d expirations=%d, want 1, %d", q.abandoned, q.expirations, maxLeases)
	}
	// The abandoned item must reject the zombie's late completion.
	if q.complete(CompleteRequest{Lease: lastLease, Cluster: 0}) {
		t.Fatal("stale complete accepted on abandoned item")
	}
}

func TestRenewExtendsOnlyLiveLeases(t *testing.T) {
	q := newQueue(fakeClusters(4), 1, BinningSteal, time.Second)
	now := time.Unix(1000, 0)
	q.now = func() time.Time { return now }

	res := q.claim("w", 0)
	lease := res.item.lease
	now = now.Add(700 * time.Millisecond)
	if !q.renew(0, lease) {
		t.Fatal("live lease refused renewal")
	}
	now = now.Add(700 * time.Millisecond) // 1.4s after claim, 0.7s after renew
	if got := q.claim("w2", 0); got.status != "wait" {
		t.Fatalf("renewed lease expired anyway: %+v", got)
	}
	now = now.Add(time.Second) // now past the renewed expiry
	got := q.claim("w2", 0)
	if got.status != "work" {
		t.Fatalf("expired lease not re-issued: %+v", got)
	}
	if q.renew(0, lease) {
		t.Fatal("stale lease accepted renewal")
	}
	if q.complete(CompleteRequest{Lease: lease, Cluster: 0}) {
		t.Fatal("stale lease accepted completion")
	}
	if !q.complete(CompleteRequest{Lease: got.item.lease, Cluster: 0}) {
		t.Fatal("successor lease refused completion")
	}
}

func TestWaitVersusDone(t *testing.T) {
	q := newQueue(fakeClusters(3), 1, BinningSteal, time.Minute)
	res := q.claim("w", 0)
	if res.status != "work" {
		t.Fatalf("first claim: %+v", res)
	}
	if got := q.claim("w2", 0); got.status != "wait" {
		t.Fatalf("leased-out queue should answer wait, got %q", got.status)
	}
	q.complete(CompleteRequest{Lease: res.item.lease, Cluster: res.item.Cluster})
	if got := q.claim("w2", 0); got.status != "done" {
		t.Fatalf("drained queue should answer done, got %q", got.status)
	}
}
