package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"bootstrap/internal/core"
	"bootstrap/internal/faults"
	"bootstrap/internal/frontend"
)

// WorkerOptions configure one shard worker.
type WorkerOptions struct {
	// Coordinator is the coordinator's base URL (http://host:port).
	Coordinator string
	// Name identifies the worker in leases and reports. Empty derives
	// one from the PID.
	Name string
	// Faults, when non-nil, is installed into the worker's solve config
	// — the chaos hook. A Kill fault terminates this process mid-solve,
	// which is the scenario the lease-expiry machinery exists for.
	Faults *faults.Plan
	// Client overrides the HTTP client (tests); nil uses a default with
	// a short timeout (everything is loopback).
	Client *http.Client
}

// WorkerStats summarize one worker's run.
type WorkerStats struct {
	Shard     int
	Claimed   int
	Stolen    int
	Completed int
	BusyNS    int64
}

// RunWorker joins a coordinator, rebuilds its plan from the served
// program, and solves claimed clusters until the queue drains. Results
// flow exclusively through the shared cache directory: the worker's
// only obligations to the coordinator are lease bookkeeping and busy
// accounting. Returns the worker's stats.
func RunWorker(ctx context.Context, opts WorkerOptions) (WorkerStats, error) {
	var st WorkerStats
	if ctx == nil {
		ctx = context.Background()
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	name := opts.Name
	if name == "" {
		name = fmt.Sprintf("worker-%d", pid())
	}
	w := &worker{base: opts.Coordinator, client: client, name: name}

	// Fetch the manifest and the program, rebuild the plan, and prove we
	// built the same one by echoing the locally recomputed fingerprint.
	var m Manifest
	if err := w.getJSON(ctx, "/dist/manifest", &m); err != nil {
		return st, err
	}
	source, err := w.getText(ctx, "/dist/program")
	if err != nil {
		return st, err
	}
	if got := Fingerprint(source, m.Config); got != m.Fingerprint {
		return st, fmt.Errorf("dist: fingerprint mismatch: coordinator %s, worker %s", m.Fingerprint[:12], got[:12])
	}
	cfg, err := m.Config.ToConfig(m.CacheDir)
	if err != nil {
		return st, err
	}
	cfg.Faults = opts.Faults
	prog, err := frontend.LowerSource(source)
	if err != nil {
		return st, fmt.Errorf("dist: worker lower: %w", err)
	}
	pl, err := core.BuildPlan(ctx, prog, cfg)
	if err != nil {
		return st, fmt.Errorf("dist: worker plan: %w", err)
	}

	var join JoinResponse
	if err := w.postJSON(ctx, "/dist/join", JoinRequest{Worker: name, Fingerprint: m.Fingerprint}, &join); err != nil {
		return st, err
	}
	st.Shard = join.Shard
	ttl := time.Duration(m.LeaseTTLMS) * time.Millisecond

	for {
		if err := ctx.Err(); err != nil {
			return st, err
		}
		var cl ClaimResponse
		if err := w.postJSON(ctx, "/dist/claim", ClaimRequest{Worker: name, Shard: join.Shard}, &cl); err != nil {
			return st, err
		}
		switch cl.Status {
		case "done":
			return st, nil
		case "wait":
			wait := time.Duration(cl.RetryMS) * time.Millisecond
			if wait <= 0 {
				wait = claimWait
			}
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return st, ctx.Err()
			}
			continue
		}
		st.Claimed++
		if cl.Stolen {
			st.Stolen++
		}

		c := pl.Cluster(cl.Cluster)
		if c == nil {
			// Plan divergence should be impossible past the fingerprint
			// check; refuse loudly rather than solving the wrong thing.
			return st, fmt.Errorf("dist: claimed unknown cluster %d", cl.Cluster)
		}

		// Renew the lease at TTL/3 while the solve runs, so only a dead
		// or wedged worker ever expires.
		renewCtx, stopRenew := context.WithCancel(ctx)
		go w.renewLoop(renewCtx, cl.Lease, ttl)

		busy0 := processCPUNS()
		eng, h := core.RunCluster(ctx, pl.Prog, pl.CallGraph, pl.Steens, c, pl.Andersen, cfg)
		busy := processCPUNS() - busy0
		stopRenew()
		_ = eng // the engine dies with the worker; the cache entry is the product
		st.Completed++
		st.BusyNS += busy

		var ack Ack
		if err := w.postJSON(ctx, "/dist/complete", CompleteRequest{
			Worker:  name,
			Lease:   cl.Lease,
			Cluster: cl.Cluster,
			BusyNS:  busy,
			Outcome: h.Outcome(),
			Stored:  h.Status == core.HealthOK && !h.Cached && !h.Demoted,
		}, &ack); err != nil {
			// A rejected complete means the lease expired under us (e.g.
			// a Slow fault outlived the TTL). The solve still populated
			// the cache; keep claiming.
			continue
		}
	}
}

// worker is the HTTP client side of the protocol.
type worker struct {
	base   string
	client *http.Client
	name   string
}

func (w *worker) renewLoop(ctx context.Context, lease int64, ttl time.Duration) {
	ivl := ttl / 3
	if ivl <= 0 {
		ivl = time.Second
	}
	tick := time.NewTicker(ivl)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			var ack Ack
			// A failed renewal (stale lease) just means a successor owns
			// the item now; the solve continues and complete will be
			// rejected — correctness is unaffected.
			_ = w.postJSON(ctx, "/dist/renew", RenewRequest{Worker: w.name, Lease: lease}, &ack)
		}
	}
}

func (w *worker) getJSON(ctx context.Context, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.base+path, nil)
	if err != nil {
		return err
	}
	res, err := w.client.Do(req)
	if err != nil {
		return fmt.Errorf("dist: GET %s: %w", path, err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return fmt.Errorf("dist: GET %s: %s", path, res.Status)
	}
	return json.NewDecoder(res.Body).Decode(v)
}

func (w *worker) getText(ctx context.Context, path string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.base+path, nil)
	if err != nil {
		return "", err
	}
	res, err := w.client.Do(req)
	if err != nil {
		return "", fmt.Errorf("dist: GET %s: %w", path, err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return "", fmt.Errorf("dist: GET %s: %s", path, res.Status)
	}
	b, err := io.ReadAll(res.Body)
	return string(b), err
}

func (w *worker) postJSON(ctx context.Context, path string, body, v any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+path, bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	res, err := w.client.Do(req)
	if err != nil {
		return fmt.Errorf("dist: POST %s: %w", path, err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return fmt.Errorf("dist: POST %s: %s", path, res.Status)
	}
	return json.NewDecoder(res.Body).Decode(v)
}
