// Package dist shards the eager per-cluster FSCS stage of one analysis
// across OS processes — the paper's third scalability prong (its
// simulated 5-machine binning) made real.
//
// The architecture leans on two earlier layers instead of inventing a
// data plane:
//
//   - core.BuildPlan is deterministic: every process that lowers the
//     same source under the same knobs computes the same alias cover
//     with the same cluster IDs. Work items are therefore bare cluster
//     IDs; nothing else needs to move.
//   - The content-addressed result cache (package cache) is the entire
//     result-exchange medium: a worker that solves a cluster publishes
//     the engine's exported state into the shared cache directory under
//     the cluster's slice fingerprint, and the coordinator's merge pass
//     (core.AnalyzeFromPlan over the same cache) imports it bit-for-bit
//     (Theorem 6). A result that never arrives — lost worker, expired
//     lease, failed store — is simply solved locally by the merge pass
//     through the ordinary retry-then-demote ladder, so worker loss can
//     degrade throughput but never correctness.
//
// The coordinator serves a claim/complete/renew lease queue over a
// local HTTP endpoint. Clusters are pre-binned with the paper's static
// greedy heuristic; in the default work-stealing mode a worker whose
// home bin runs dry steals from the fullest remaining bin, which is
// what beats static binning when cluster solve times are skewed (the
// measured comparison lives in BENCH_shard.json).
package dist

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"

	"bootstrap/internal/cache"
	"bootstrap/internal/core"
)

// protocolVersion is hashed into every manifest fingerprint: a
// coordinator and worker from different builds of the protocol can
// never exchange work.
const protocolVersion = "bootstrap-dist/v1"

// Binning names the cluster-to-shard assignment policy.
type Binning string

const (
	// BinningSteal seeds shards with the greedy bins but lets an idle
	// worker steal pending clusters from the fullest remaining bin —
	// dynamic load balance (the default).
	BinningSteal Binning = "steal"
	// BinningGreedy is the paper's static policy: each shard owns
	// exactly its greedy bin, idle or not.
	BinningGreedy Binning = "greedy"
)

// ParseBinning validates a -binning flag value.
func ParseBinning(s string) (Binning, error) {
	switch Binning(s) {
	case BinningSteal, BinningGreedy:
		return Binning(s), nil
	}
	return "", fmt.Errorf("unknown binning %q (want steal or greedy)", s)
}

// WireConfig is the result-shaping subset of core.Config a worker needs
// to rebuild the coordinator's exact plan and engine parameters.
// Speed-only knobs (interning, pipelining, parallel solve) are local
// choices and deliberately absent.
type WireConfig struct {
	Mode              string        `json:"mode"`
	AndersenThreshold int           `json:"andersen_threshold"`
	UseOneFlow        bool          `json:"use_one_flow,omitempty"`
	MaxCond           int           `json:"max_cond,omitempty"`
	ClusterBudget     int64         `json:"cluster_budget,omitempty"`
	ClusterTimeout    time.Duration `json:"cluster_timeout,omitempty"`
	Retries           int           `json:"retries,omitempty"`
	SteensPrecise     bool          `json:"steens_precise,omitempty"`
	DisableCycleElim  bool          `json:"disable_cycle_elim,omitempty"`
	DisableDeltaProp  bool          `json:"disable_delta_prop,omitempty"`
}

// WireFromConfig extracts the wire subset of a config.
func WireFromConfig(cfg core.Config) WireConfig {
	return WireConfig{
		Mode:              cfg.Mode.String(),
		AndersenThreshold: cfg.AndersenThreshold,
		UseOneFlow:        cfg.UseOneFlow,
		MaxCond:           cfg.MaxCond,
		ClusterBudget:     cfg.ClusterBudget,
		ClusterTimeout:    cfg.ClusterTimeout,
		Retries:           cfg.Retries,
		SteensPrecise:     cfg.SteensPrecise,
		DisableCycleElim:  cfg.DisableCycleElim,
		DisableDeltaProp:  cfg.DisableDeltaProp,
	}
}

// ToConfig rebuilds the core.Config a worker solves under. Workers run
// one engine at a time (per-cluster parallelism lives in the shard
// fanout, not inside a worker), and the shared cache directory is the
// result channel.
func (w WireConfig) ToConfig(cacheDir string) (core.Config, error) {
	var mode core.Mode
	switch w.Mode {
	case "none":
		mode = core.ModeNone
	case "steensgaard":
		mode = core.ModeSteensgaard
	case "andersen":
		mode = core.ModeAndersen
	case "syntactic":
		mode = core.ModeSyntactic
	default:
		return core.Config{}, fmt.Errorf("dist: unknown mode %q", w.Mode)
	}
	cfg := core.Config{
		Mode:              mode,
		AndersenThreshold: w.AndersenThreshold,
		UseOneFlow:        w.UseOneFlow,
		MaxCond:           w.MaxCond,
		ClusterBudget:     w.ClusterBudget,
		ClusterTimeout:    w.ClusterTimeout,
		Retries:           w.Retries,
		SteensPrecise:     w.SteensPrecise,
		DisableCycleElim:  w.DisableCycleElim,
		DisableDeltaProp:  w.DisableDeltaProp,
		Workers:           1,
	}
	if cacheDir != "" {
		cfg.Cache = cache.New(cache.Options{Dir: cacheDir})
	}
	return cfg, nil
}

// Fingerprint is the front-end identity a worker must reproduce before
// it may claim work: protocol version, the exact source text, and the
// result-shaping knobs. Claiming with a mismatched fingerprint is a
// protocol error — it would solve the wrong clusters under the wrong
// parameters.
func Fingerprint(source string, wc WireConfig) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%d\x00", protocolVersion, len(source))
	h.Write([]byte(source))
	fmt.Fprintf(h, "\x00%+v", wc)
	return hex.EncodeToString(h.Sum(nil))
}

// Item is one unit of distributable work: a cluster of the shared plan.
type Item struct {
	Cluster int `json:"cluster"`
	Size    int `json:"size"` // pointer count, the greedy heuristic's weight
	Bin     int `json:"bin"`  // home shard under the greedy binning
}

// Manifest is what a joining worker downloads once: the work list, the
// binning policy, the knobs, and where results go.
type Manifest struct {
	Fingerprint string     `json:"fingerprint"`
	Shards      int        `json:"shards"`
	Binning     Binning    `json:"binning"`
	LeaseTTLMS  int64      `json:"lease_ttl_ms"`
	CacheDir    string     `json:"cache_dir"`
	Config      WireConfig `json:"config"`
	Items       []Item     `json:"items"`
}

// Claim/complete/renew wire bodies. Leases are opaque increasing IDs;
// a stale lease (expired and re-issued) is rejected so a zombie worker
// can never complete an item out from under its successor.
type (
	JoinRequest struct {
		Worker string `json:"worker"`
		// Fingerprint echoes the manifest fingerprint the worker
		// recomputed locally; a mismatch refuses the join.
		Fingerprint string `json:"fingerprint"`
	}
	JoinResponse struct {
		Shard int `json:"shard"`
	}
	ClaimRequest struct {
		Worker string `json:"worker"`
		Shard  int    `json:"shard"`
	}
	ClaimResponse struct {
		// Status: "work" (an item is leased to you), "wait" (everything
		// is leased out; retry after RetryMS), "done" (queue drained).
		Status  string `json:"status"`
		Cluster int    `json:"cluster,omitempty"`
		Lease   int64  `json:"lease,omitempty"`
		TTLMS   int64  `json:"ttl_ms,omitempty"`
		Stolen  bool   `json:"stolen,omitempty"`
		RetryMS int64  `json:"retry_ms,omitempty"`
	}
	CompleteRequest struct {
		Worker  string `json:"worker"`
		Lease   int64  `json:"lease"`
		Cluster int    `json:"cluster"`
		// BusyNS is the CPU time the worker spent solving the cluster
		// (rusage delta) — the machine-independent cost the speedup and
		// utilization columns are computed from.
		BusyNS int64 `json:"busy_ns"`
		// Outcome is the cluster's ClusterHealth outcome word
		// (solved/cached/demoted) as observed by the worker.
		Outcome string `json:"outcome"`
		// Stored reports whether the worker published the result into
		// the shared cache (false for demoted or store-failed solves —
		// the merge pass then solves locally).
		Stored bool `json:"stored"`
	}
	RenewRequest struct {
		Worker string `json:"worker"`
		Lease  int64  `json:"lease"`
	}
	// Ack is the generic success body; errors use plain HTTP statuses.
	Ack struct {
		OK bool `json:"ok"`
	}
)

// claimWait is how long a worker is told to sleep when every pending
// item is leased out.
const claimWait = 25 * time.Millisecond
