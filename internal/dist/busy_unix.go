//go:build linux || darwin || freebsd || netbsd || openbsd

package dist

import "syscall"

// processCPUNS returns this process's consumed CPU time (user + system)
// in nanoseconds. Deltas around a cluster solve give its true cost
// independent of how many worker processes are time-slicing the same
// cores — which is what makes the speedup report machine-independent.
func processCPUNS() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	toNS := func(tv syscall.Timeval) int64 {
		return int64(tv.Sec)*1e9 + int64(tv.Usec)*1e3
	}
	return toNS(ru.Utime) + toNS(ru.Stime)
}
