package lockset

import (
	"testing"

	"bootstrap/internal/core"
	"bootstrap/internal/ir"
)

// driverSrc models a small driver: two entry points share counters, one
// protected by a lock, one not.
const driverSrc = `
	lock mtx;
	lock *lp;
	int counter;
	int unprot;
	int *cp;
	void acquire(lock *l) { }
	void release(lock *l) { }
	void thread_open() {
		lp = &mtx;
		acquire(lp);
		counter = 1;
		release(lp);
		unprot = 1;
	}
	void thread_ioctl() {
		lp = &mtx;
		acquire(lp);
		counter = 2;
		release(lp);
		unprot = 2;
	}
	void main() {
		thread_open();
		thread_ioctl();
	}
`

func detect(t *testing.T, src string, cfg Config) (*core.Analysis, []Race, []Access) {
	t.Helper()
	a, err := core.AnalyzeSource(src, core.Config{Mode: core.ModeSteensgaard, Workers: 1})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	d := NewDetector(a, cfg)
	races, accesses := d.Detect()
	return a, races, accesses
}

func racesOn(a *core.Analysis, races []Race, name string) []Race {
	var out []Race
	for _, r := range races {
		if a.Prog.VarName(r.Var) == name {
			out = append(out, r)
		}
	}
	return out
}

func TestProtectedVsUnprotected(t *testing.T) {
	a, races, accesses := detect(t, driverSrc, Config{})
	if len(accesses) == 0 {
		t.Fatal("no accesses collected")
	}
	if got := racesOn(a, races, "counter"); len(got) != 0 {
		t.Errorf("counter is lock-protected; found races: %v", got[0].Format(a.Prog))
	}
	if got := racesOn(a, races, "unprot"); len(got) == 0 {
		t.Error("unprot is unprotected and written by two threads; expected a race")
	}
}

func TestLockResolutionThroughAlias(t *testing.T) {
	// The two threads take the same lock through different pointers; the
	// must-alias analysis must see through the copies.
	src := `
		lock mtx;
		lock *l1, *l2;
		int shared;
		void acquire(lock *l) { }
		void release(lock *l) { }
		void thread_a() {
			l1 = &mtx;
			acquire(l1);
			shared = 1;
			release(l1);
		}
		void thread_b() {
			l2 = &mtx;
			acquire(l2);
			shared = 2;
			release(l2);
		}
		void main() { thread_a(); thread_b(); }
	`
	a, races, _ := detect(t, src, Config{})
	if got := racesOn(a, races, "shared"); len(got) != 0 {
		t.Errorf("same lock through aliased pointers; got race: %s", got[0].Format(a.Prog))
	}
}

func TestDifferentLocksRace(t *testing.T) {
	src := `
		lock m1, m2;
		lock *l1, *l2;
		int shared;
		void acquire(lock *l) { }
		void release(lock *l) { }
		void thread_a() {
			l1 = &m1;
			acquire(l1);
			shared = 1;
			release(l1);
		}
		void thread_b() {
			l2 = &m2;
			acquire(l2);
			shared = 2;
			release(l2);
		}
		void main() { thread_a(); thread_b(); }
	`
	a, races, _ := detect(t, src, Config{})
	if got := racesOn(a, races, "shared"); len(got) == 0 {
		t.Error("different locks guard the accesses; expected a race")
	}
}

func TestBranchLosesLock(t *testing.T) {
	// Acquire on only one branch: the must-lockset at the access is empty.
	src := `
		lock mtx;
		lock *lp;
		int shared;
		void acquire(lock *l) { }
		void release(lock *l) { }
		void thread_a() {
			lp = &mtx;
			if (*) { acquire(lp); }
			shared = 1;
		}
		void thread_b() {
			lp = &mtx;
			acquire(lp);
			shared = 2;
			release(lp);
		}
		void main() { thread_a(); thread_b(); }
	`
	a, races, _ := detect(t, src, Config{})
	if got := racesOn(a, races, "shared"); len(got) == 0 {
		t.Error("conditional acquire does not protect; expected a race")
	}
}

func TestInterproceduralLockset(t *testing.T) {
	// The lock is held across a helper call; accesses inside the helper
	// inherit it.
	src := `
		lock mtx;
		lock *lp;
		int shared;
		void acquire(lock *l) { }
		void release(lock *l) { }
		void work() { shared = 1; }
		void thread_a() {
			lp = &mtx;
			acquire(lp);
			work();
			release(lp);
		}
		void thread_b() {
			lp = &mtx;
			acquire(lp);
			shared = 2;
			release(lp);
		}
		void main() { thread_a(); thread_b(); }
	`
	a, races, _ := detect(t, src, Config{})
	if got := racesOn(a, races, "shared"); len(got) != 0 {
		t.Errorf("helper runs under the lock; got race: %s", got[0].Format(a.Prog))
	}
}

func TestSelfParallelDefault(t *testing.T) {
	src := `
		int shared;
		void thread_a() { shared = 1; }
		void main() { thread_a(); }
	`
	a, races, _ := detect(t, src, Config{})
	if got := racesOn(a, races, "shared"); len(got) == 0 {
		t.Error("a reentrant entry point races with itself by default")
	}
	_, races2, _ := detect(t, src, Config{SequentialSelf: true})
	if len(races2) != 0 {
		t.Error("SequentialSelf should suppress self races")
	}
}

func TestDemandDrivenDetection(t *testing.T) {
	// The demand-driven pipeline (lock clusters only) must reach the same
	// verdicts as the full analysis.
	a, err := core.AnalyzeSource(driverSrc, core.Config{
		Mode: core.ModeSteensgaard, Workers: 1, Demand: LockDemand,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDetector(a, Config{})
	races, _ := d.Detect()
	if got := racesOn(a, races, "counter"); len(got) != 0 {
		t.Errorf("demand-driven: counter protected, got race %s", got[0].Format(a.Prog))
	}
	if got := racesOn(a, races, "unprot"); len(got) == 0 {
		t.Error("demand-driven: unprot should race")
	}
}

func TestHeapLockObjects(t *testing.T) {
	src := `
		lock *lp;
		int shared;
		void acquire(lock *l) { }
		void release(lock *l) { }
		void thread_a() {
			acquire(lp);
			shared = 1;
			release(lp);
		}
		void main() {
			lp = malloc;
			thread_a();
		}
	`
	a, races, _ := detect(t, src, Config{})
	// lp resolves to the single allocation site: a must-lock.
	if got := racesOn(a, races, "shared"); len(got) != 0 {
		t.Errorf("heap lock protects both instances; got race: %s", got[0].Format(a.Prog))
	}
	var _ ir.VarID
}

func TestRaceFormat(t *testing.T) {
	a, races, _ := detect(t, driverSrc, Config{})
	for _, r := range races {
		s := r.Format(a.Prog)
		if s == "" {
			t.Error("empty race format")
		}
	}
}

func TestUnknownReleaseClearsLockset(t *testing.T) {
	// Releasing through an ambiguous pointer must drop every held lock
	// (conservative for a must-set).
	src := `
		lock m1, m2;
		lock *lp, *amb;
		int shared;
		void acquire(lock *l) { }
		void release(lock *l) { }
		void thread_a() {
			lp = &m1;
			acquire(lp);
			if (*) { amb = &m1; } else { amb = &m2; }
			release(amb);
			shared = 1;
		}
		void thread_b() { shared = 2; }
		void main() { thread_a(); thread_b(); }
	`
	a, races, _ := detect(t, src, Config{})
	if got := racesOn(a, races, "shared"); len(got) == 0 {
		t.Error("after an ambiguous release nothing is definitely held; expected a race")
	}
}

func TestUnknownAcquireDoesNotProtect(t *testing.T) {
	src := `
		lock m1, m2;
		lock *amb;
		int shared;
		void acquire(lock *l) { }
		void release(lock *l) { }
		void thread_a() {
			if (*) { amb = &m1; } else { amb = &m2; }
			acquire(amb);
			shared = 1;
		}
		void thread_b() { shared = 2; }
		void main() { thread_a(); thread_b(); }
	`
	a, races, _ := detect(t, src, Config{})
	if got := racesOn(a, races, "shared"); len(got) == 0 {
		t.Error("an ambiguous acquire must not count as protection")
	}
}

func TestNestedLocks(t *testing.T) {
	src := `
		lock m1, m2;
		lock *l1, *l2;
		int inner, outer;
		void acquire(lock *l) { }
		void release(lock *l) { }
		void thread_a() {
			l1 = &m1;
			l2 = &m2;
			acquire(l1);
			outer = 1;
			acquire(l2);
			inner = 1;
			release(l2);
			release(l1);
		}
		void thread_b() {
			l1 = &m1;
			l2 = &m2;
			acquire(l1);
			outer = 2;
			acquire(l2);
			inner = 2;
			release(l2);
			release(l1);
		}
		void main() { thread_a(); thread_b(); }
	`
	a, races, accesses := detect(t, src, Config{})
	if len(races) != 0 {
		t.Errorf("all accesses protected; got races: %v", races[0].Format(a.Prog))
	}
	// The inner access must hold BOTH locks.
	for _, acc := range accesses {
		if a.Prog.VarName(acc.Var) == "inner" && len(acc.Locks) != 2 {
			t.Errorf("inner access holds %d locks, want 2", len(acc.Locks))
		}
	}
}

func TestLoopLockset(t *testing.T) {
	// A lock acquired before a loop protects accesses inside it; the
	// must-dataflow has to converge through the back edge.
	src := `
		lock m;
		lock *lp;
		int shared;
		void acquire(lock *l) { }
		void release(lock *l) { }
		void thread_a() {
			lp = &m;
			acquire(lp);
			while (*) { shared = 1; }
			release(lp);
		}
		void thread_b() {
			lp = &m;
			acquire(lp);
			shared = 2;
			release(lp);
		}
		void main() { thread_a(); thread_b(); }
	`
	a, races, _ := detect(t, src, Config{})
	if got := racesOn(a, races, "shared"); len(got) != 0 {
		t.Errorf("loop body runs under the lock; got %s", got[0].Format(a.Prog))
	}
}

func TestAcquireInLoopBody(t *testing.T) {
	// Acquired and released inside the loop: protected at the access.
	src := `
		lock m;
		lock *lp;
		int shared;
		void acquire(lock *l) { }
		void release(lock *l) { }
		void thread_a() {
			lp = &m;
			while (*) {
				acquire(lp);
				shared = 1;
				release(lp);
			}
		}
		void thread_b() {
			lp = &m;
			acquire(lp);
			shared = 2;
			release(lp);
		}
		void main() { thread_a(); thread_b(); }
	`
	a, races, _ := detect(t, src, Config{})
	if got := racesOn(a, races, "shared"); len(got) != 0 {
		t.Errorf("both accesses protected by m; got %s", got[0].Format(a.Prog))
	}
}

func TestNoThreads(t *testing.T) {
	src := `
		int shared;
		void main() { shared = 1; }
	`
	_, races, accesses := detect(t, src, Config{})
	if len(races) != 0 || len(accesses) != 0 {
		t.Error("no thread entries: nothing to report")
	}
}

func TestReadsDoNotRaceWithReads(t *testing.T) {
	src := `
		int shared;
		int sink;
		void thread_a() { sink = shared; }
		void thread_b() { sink = shared; }
		void main() { thread_a(); thread_b(); }
	`
	a, races, _ := detect(t, src, Config{})
	if got := racesOn(a, races, "shared"); len(got) != 0 {
		t.Errorf("read-read pairs never race; got %s", got[0].Format(a.Prog))
	}
	// sink is written by both: that IS a race.
	if got := racesOn(a, races, "sink"); len(got) == 0 {
		t.Error("write-write on sink should race")
	}
}
