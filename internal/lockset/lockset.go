// Package lockset implements the application that motivated the paper:
// static data-race detection via lockset computation. It is the
// demand-driven consumer of the bootstrapped alias analysis — "for lockset
// computation used in data race detection, we need to compute must-aliases
// only for lock pointers. Thus we need to consider only clusters having at
// least one lock pointer."
//
// The concurrency model is the usual one for driver-style code: designated
// thread entry functions (by name prefix) run concurrently; locks are
// acquired and released through designated functions taking a lock
// pointer. A must-lockset is propagated through each thread's code
// (intersection at joins, interprocedural via call-site intersection), the
// held lock pointers are resolved to lock *objects* with the
// flow-sensitive must-alias analysis, and two accesses to the same shared
// object race when they come from concurrent threads, at least one writes,
// and their locksets are disjoint.
package lockset

import (
	"fmt"
	"sort"
	"strings"

	"bootstrap/internal/core"
	"bootstrap/internal/ir"
)

// Config tunes detection.
type Config struct {
	// ThreadPrefix marks thread entry functions (default "thread_").
	ThreadPrefix string
	// AcquireNames and ReleaseNames are the lock-manipulation functions
	// (defaults: acquire/lock and release/unlock).
	AcquireNames []string
	ReleaseNames []string
	// SequentialSelf treats each thread entry as never racing with
	// itself. The default (false) matches reentrant driver entry points,
	// which may run concurrently with themselves.
	SequentialSelf bool
}

func (c *Config) fill() {
	if c.ThreadPrefix == "" {
		c.ThreadPrefix = "thread_"
	}
	if c.AcquireNames == nil {
		c.AcquireNames = []string{"acquire", "lock_acquire", "spin_lock"}
	}
	if c.ReleaseNames == nil {
		c.ReleaseNames = []string{"release", "lock_release", "spin_unlock"}
	}
}

// Access is one shared-memory access with the lock objects definitely held.
type Access struct {
	Loc    ir.Loc
	Var    ir.VarID // the accessed object
	Write  bool
	Thread ir.FuncID // the thread entry this access runs under
	Locks  []ir.VarID
}

// Race is a pair of conflicting accesses with disjoint locksets.
type Race struct {
	Var  ir.VarID
	A, B Access
}

// Format renders the race against the program's symbol table.
func (r Race) Format(p *ir.Program) string {
	return fmt.Sprintf("race on %s: %s at L%d (thread %s, locks %s) vs %s at L%d (thread %s, locks %s)",
		p.VarName(r.Var),
		rw(r.A.Write), r.A.Loc, p.Func(r.A.Thread).Name, lockNames(p, r.A.Locks),
		rw(r.B.Write), r.B.Loc, p.Func(r.B.Thread).Name, lockNames(p, r.B.Locks))
}

func rw(w bool) string {
	if w {
		return "write"
	}
	return "read"
}

func lockNames(p *ir.Program, locks []ir.VarID) string {
	if len(locks) == 0 {
		return "{}"
	}
	names := make([]string, len(locks))
	for i, l := range locks {
		names[i] = p.VarName(l)
	}
	return "{" + strings.Join(names, ",") + "}"
}

// lockSet is a must-set of lock objects; nil means ⊤ (everything held —
// the lattice top used before a node is first reached).
type lockSet map[ir.VarID]bool

func topSet() lockSet { return nil }

func (s lockSet) isTop() bool { return s == nil }

func (s lockSet) clone() lockSet {
	if s == nil {
		return nil
	}
	c := make(lockSet, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

// intersect returns s ∩ t (top is identity).
func intersect(s, t lockSet) lockSet {
	if s.isTop() {
		return t.clone()
	}
	if t.isTop() {
		return s.clone()
	}
	out := lockSet{}
	for k := range s {
		if t[k] {
			out[k] = true
		}
	}
	return out
}

func equalSets(s, t lockSet) bool {
	if s.isTop() || t.isTop() {
		return s.isTop() && t.isTop()
	}
	if len(s) != len(t) {
		return false
	}
	for k := range s {
		if !t[k] {
			return false
		}
	}
	return true
}

// Source is the analysis surface the detector consumes: the program and
// a points-to query for resolving lock pointers to lock objects.
// *core.Analysis is the classic provider (see NewDetector); the checker
// framework adapts its deadline-scoped, demand-driven query handle.
type Source interface {
	Program() *ir.Program
	PointsTo(p ir.VarID, loc ir.Loc) ([]ir.VarID, bool)
}

// analysisSource adapts *core.Analysis to Source (PointsTo is promoted).
type analysisSource struct{ *core.Analysis }

func (s analysisSource) Program() *ir.Program { return s.Prog }

// OrderEdge is one observed lock-order fact: while Held was definitely
// held, the thread acquired Acquired at Loc. The deadlock checker builds
// the lock-order graph from these edges; a cycle is a potential deadlock
// and each edge's Loc is its acquisition witness.
type OrderEdge struct {
	Held, Acquired ir.VarID
	Loc            ir.Loc
	Thread         ir.FuncID
}

// Detector runs lockset-based race detection over a completed analysis.
type Detector struct {
	src  Source
	prog *ir.Program
	cfg  Config

	acquire map[ir.FuncID]bool
	release map[ir.FuncID]bool

	// in[loc] is the must-lockset when control reaches loc.
	in map[ir.Loc]lockSet
	// entrySets[f] is the must-lockset at f's entry (∩ over call sites).
	entrySets map[ir.FuncID]lockSet

	// order accumulates the lock-order edges observed by Detect.
	order []OrderEdge
}

// NewDetector prepares detection over an analysis. For best results the
// analysis should have been run with core.Config.Demand selecting lock
// pointers (see LockDemand).
func NewDetector(a *core.Analysis, cfg Config) *Detector {
	return NewDetectorSource(analysisSource{a}, cfg)
}

// NewDetectorSource prepares detection over any Source — the seam the
// checker framework uses to route lock resolution through its
// demand-driven, deadline-degrading query handle.
func NewDetectorSource(src Source, cfg Config) *Detector {
	cfg.fill()
	prog := src.Program()
	d := &Detector{
		src: src, prog: prog, cfg: cfg,
		acquire:   map[ir.FuncID]bool{},
		release:   map[ir.FuncID]bool{},
		in:        map[ir.Loc]lockSet{},
		entrySets: map[ir.FuncID]lockSet{},
	}
	for _, name := range cfg.AcquireNames {
		if f, ok := prog.FuncByName[name]; ok {
			d.acquire[f] = true
		}
	}
	for _, name := range cfg.ReleaseNames {
		if f, ok := prog.FuncByName[name]; ok {
			d.release[f] = true
		}
	}
	return d
}

// LockDemand is the demand predicate for core.Config: analyze only
// clusters containing lock pointers.
func LockDemand(v *ir.Var) bool { return v.IsLock }

// Threads returns the thread entry functions.
func (d *Detector) Threads() []ir.FuncID {
	var out []ir.FuncID
	for _, f := range d.prog.Funcs {
		if strings.HasPrefix(f.Name, d.cfg.ThreadPrefix) {
			out = append(out, f.ID)
		}
	}
	return out
}

// resolveLock resolves the lock object a lock-pointer argument must refer
// to at a call site; ok is false when it is not a must-singleton.
func (d *Detector) resolveLock(arg ir.VarID, loc ir.Loc) (ir.VarID, bool) {
	if arg == ir.NoVar {
		return ir.NoVar, false
	}
	objs, precise := d.src.PointsTo(arg, loc)
	if !precise || len(objs) != 1 {
		return ir.NoVar, false
	}
	return objs[0], true
}

// transfer applies the lock effect of the node at loc.
func (d *Detector) transfer(loc ir.Loc, s lockSet) lockSet {
	n := d.prog.Node(loc)
	if n.Stmt.Op != ir.OpCall || n.Stmt.Callee == ir.NoFunc {
		return s
	}
	callee := n.Stmt.Callee
	var arg ir.VarID = ir.NoVar
	if len(n.Stmt.Args) > 0 {
		arg = n.Stmt.Args[0]
	}
	switch {
	case d.acquire[callee]:
		obj, ok := d.resolveLock(arg, loc)
		if !ok {
			return s // unknown lock: must-set unchanged (conservative)
		}
		out := s.clone()
		if out.isTop() {
			out = lockSet{}
		}
		out[obj] = true
		return out
	case d.release[callee]:
		obj, ok := d.resolveLock(arg, loc)
		if !ok {
			// Unknown release may free any lock: drop everything.
			return lockSet{}
		}
		out := s.clone()
		if out.isTop() {
			return lockSet{}
		}
		delete(out, obj)
		return out
	}
	return s
}

// flowFunction runs the must-lockset dataflow over one function's CFG
// starting from the given entry set, updating d.in, and returns the
// locksets observed at each call site of non-special callees (for
// interprocedural propagation).
func (d *Detector) flowFunction(f ir.FuncID, entry lockSet) map[ir.FuncID]lockSet {
	fn := d.prog.Func(f)
	callEntries := map[ir.FuncID]lockSet{}
	d.in[fn.Entry] = intersect(d.in[fn.Entry], entry)
	work := []ir.Loc{fn.Entry}
	for len(work) > 0 {
		loc := work[len(work)-1]
		work = work[:len(work)-1]
		out := d.transfer(loc, d.in[loc])
		n := d.prog.Node(loc)
		if n.Stmt.Op == ir.OpCall && n.Stmt.Callee != ir.NoFunc &&
			!d.acquire[n.Stmt.Callee] && !d.release[n.Stmt.Callee] {
			cur, seen := callEntries[n.Stmt.Callee]
			if !seen {
				cur = topSet()
			}
			callEntries[n.Stmt.Callee] = intersect(cur, d.in[loc])
		}
		for _, s := range n.Succs {
			merged := intersect(d.in[s], out)
			if old, seen := d.in[s]; !seen || !equalSets(old, merged) {
				d.in[s] = merged
				work = append(work, s)
			}
		}
	}
	return callEntries
}

// Detect runs the analysis and reports the races and all shared accesses.
// It also (re)computes the lock-order edges returned by Order.
func (d *Detector) Detect() ([]Race, []Access) {
	prog := d.prog
	var accesses []Access
	d.order = nil
	orderSeen := map[OrderEdge]bool{}
	for _, thread := range d.Threads() {
		// Interprocedural must-lockset propagation: iterate over the
		// functions reachable from this thread to a fixpoint of entry
		// sets.
		d.in = map[ir.Loc]lockSet{}
		entry := map[ir.FuncID]lockSet{thread: lockSet{}}
		for changed := true; changed; {
			changed = false
			funcs := make([]ir.FuncID, 0, len(entry))
			for f := range entry {
				funcs = append(funcs, f)
			}
			sort.Slice(funcs, func(i, j int) bool { return funcs[i] < funcs[j] })
			for _, f := range funcs {
				for callee, ls := range d.flowFunction(f, entry[f]) {
					cur, seen := entry[callee]
					if !seen {
						cur = topSet()
					}
					merged := intersect(cur, ls)
					if !seen || !equalSets(cur, merged) {
						entry[callee] = merged
						changed = true
					}
				}
			}
		}
		// Collect shared accesses and lock-order edges under the computed
		// (converged) locksets — transient fixpoint states are supersets
		// of the final must-sets and would fabricate spurious edges.
		for f := range entry {
			accesses = append(accesses, d.collectAccesses(f, thread)...)
			for _, e := range d.collectOrder(f, thread) {
				if !orderSeen[e] {
					orderSeen[e] = true
					d.order = append(d.order, e)
				}
			}
		}
	}
	sort.Slice(d.order, func(i, j int) bool {
		a, b := d.order[i], d.order[j]
		if a.Held != b.Held {
			return a.Held < b.Held
		}
		if a.Acquired != b.Acquired {
			return a.Acquired < b.Acquired
		}
		if a.Loc != b.Loc {
			return a.Loc < b.Loc
		}
		return a.Thread < b.Thread
	})
	sort.Slice(accesses, func(i, j int) bool {
		if accesses[i].Loc != accesses[j].Loc {
			return accesses[i].Loc < accesses[j].Loc
		}
		return accesses[i].Thread < accesses[j].Thread
	})

	var races []Race
	seen := map[string]bool{}
	for i := 0; i < len(accesses); i++ {
		for j := i; j < len(accesses); j++ {
			a, b := accesses[i], accesses[j]
			if i == j && (a.Thread != b.Thread || d.cfg.SequentialSelf) {
				continue
			}
			if a.Var != b.Var || (!a.Write && !b.Write) {
				continue
			}
			if a.Thread == b.Thread && d.cfg.SequentialSelf {
				continue
			}
			if locksIntersect(a.Locks, b.Locks) {
				continue
			}
			key := fmt.Sprintf("%d|%d|%d|%d|%d", a.Var, a.Loc, b.Loc, a.Thread, b.Thread)
			if seen[key] {
				continue
			}
			seen[key] = true
			races = append(races, Race{Var: a.Var, A: a, B: b})
		}
	}
	_ = prog
	return races, accesses
}

// Order returns the lock-order edges observed by the last Detect call,
// canonically sorted: for every acquisition site reached with a
// non-empty must-lockset, one edge per (held, acquired) lock-object
// pair. Valid only after Detect.
func (d *Detector) Order() []OrderEdge { return d.order }

// collectOrder lists f's lock-order edges under thread: at every reached
// acquire site whose lock resolves to a must-singleton object, each
// definitely-held lock precedes the acquired one.
func (d *Detector) collectOrder(f, thread ir.FuncID) []OrderEdge {
	fn := d.prog.Func(f)
	var out []OrderEdge
	for _, loc := range fn.Nodes {
		held, reached := d.in[loc]
		if !reached || held.isTop() || len(held) == 0 {
			continue
		}
		st := d.prog.Node(loc).Stmt
		if st.Op != ir.OpCall || st.Callee == ir.NoFunc || !d.acquire[st.Callee] {
			continue
		}
		var arg ir.VarID = ir.NoVar
		if len(st.Args) > 0 {
			arg = st.Args[0]
		}
		obj, ok := d.resolveLock(arg, loc)
		if !ok {
			continue
		}
		hs := make([]ir.VarID, 0, len(held))
		for h := range held {
			hs = append(hs, h)
		}
		sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
		for _, h := range hs {
			if h != obj {
				out = append(out, OrderEdge{Held: h, Acquired: obj, Loc: loc, Thread: thread})
			}
		}
	}
	return out
}

// collectAccesses lists the shared-object accesses of f under thread.
func (d *Detector) collectAccesses(f, thread ir.FuncID) []Access {
	prog := d.prog
	fn := prog.Func(f)
	var out []Access
	shared := func(v ir.VarID) bool {
		if v == ir.NoVar {
			return false
		}
		vr := prog.Var(v)
		if vr.IsLock {
			return false
		}
		return vr.Kind == ir.KindGlobal || vr.Kind == ir.KindHeap
	}
	locks := func(loc ir.Loc) []ir.VarID {
		s := d.in[loc]
		if s.isTop() {
			return nil
		}
		var ls []ir.VarID
		for l := range s {
			ls = append(ls, l)
		}
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
		return ls
	}
	for _, loc := range fn.Nodes {
		if _, reached := d.in[loc]; !reached {
			continue
		}
		st := prog.Node(loc).Stmt
		add := func(v ir.VarID, write bool) {
			if shared(v) {
				out = append(out, Access{Loc: loc, Var: v, Write: write, Thread: thread, Locks: locks(loc)})
			}
		}
		switch st.Op {
		case ir.OpCopy, ir.OpLoad, ir.OpNullify:
			add(st.Dst, true)
			if st.Op != ir.OpNullify {
				add(st.Src, false)
			}
		case ir.OpAddr:
			add(st.Dst, true)
		case ir.OpStore:
			// The written objects are whatever the pointer may reference.
			objs, _ := d.src.PointsTo(st.Dst, loc)
			for _, o := range objs {
				add(o, true)
			}
			add(st.Src, false)
		case ir.OpTouch:
			add(st.Dst, true)
			if st.Src != ir.NoVar {
				objs, _ := d.src.PointsTo(st.Src, loc)
				for _, o := range objs {
					add(o, true)
				}
			}
		}
	}
	return out
}

func locksIntersect(a, b []ir.VarID) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}
