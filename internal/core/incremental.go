package core

// Incremental reanalysis: ApplyEdit maps a batch of ir.Edits onto the
// previous analysis' cluster cover and re-solves only the clusters whose
// Algorithm-1 footprint the batch touches. The paper's Theorem 6 is the
// license: a cluster's flow/context-sensitive result depends only on its
// slice (V_P, St_P) plus the Steensgaard class structure of the slice
// variables. An edit therefore dirties a cluster iff it
//
//   - rewrites a statement inside the cluster's slice (location check),
//   - names a variable of V_P as an operand of a removed or added
//     statement — including, for stores, the pointees the store may
//     overwrite (operand check),
//   - drifts the Steensgaard signature of a V_P variable: a remote edit
//     can merge location classes and change transfer-function outcomes
//     without touching any slice operand (signature check), or
//   - adds/removes/alters an assume in a sliced function: Algorithm 1
//     pulls every sliced function's assumes into the slice wholesale
//     (function check).
//
// Everything else is reused verbatim: the cluster object, its solved
// engine (rebound to the new program via fscs.Engine.Rebind), and its
// health record. Edits ApplyEdit cannot map — added/removed/rebuilt
// functions, call/return rewrites, signature changes, indirect-call
// programs, or a changed cluster-cover partition — fall back to a full
// Reanalyze (warm through the result cache) instead of ever producing a
// stale cover; EditReport.FellBack says so.

import (
	"context"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"time"

	"bootstrap/internal/andersen"
	"bootstrap/internal/cache"
	"bootstrap/internal/callgraph"
	"bootstrap/internal/cluster"
	"bootstrap/internal/frontend"
	"bootstrap/internal/fscs"
	"bootstrap/internal/ir"
	"bootstrap/internal/obs"
	"bootstrap/internal/steens"
)

// EditReport describes what one ApplyEdit call did.
type EditReport struct {
	// Clusters is the size of the new cover.
	Clusters int
	// Reused counts clusters carried over verbatim (engine and health
	// transplanted when present).
	Reused int
	// Dirty counts invalidated clusters (rebuilt slices, fingerprints
	// recomputed, results discarded).
	Dirty int
	// Resolved counts dirty clusters eagerly re-solved by this call;
	// the rest (lazy mode) solve on first query.
	Resolved int
	// CacheHits counts re-solves served from the result cache.
	CacheHits int
	// SteensDrift counts variables whose Steensgaard class signature
	// changed — the remote-merge signal feeding the dirty set.
	SteensDrift int
	// DirtyIDs lists the new cover's invalidated cluster IDs (nil when
	// FellBack: everything was recomputed).
	DirtyIDs []int
	// FellBack reports that the batch could not be mapped incrementally
	// and a full Reanalyze ran instead; Reason says why.
	FellBack bool
	Reason   string
	Elapsed  time.Duration
}

// ApplyEdit applies an edit batch to the previous analysis' program and
// returns a new Analysis for the edited program, re-solving only the
// clusters the batch dirties. prev is not mutated, but solved engines
// move to the successor: the two analyses share a query lock, so
// queries against prev keep working (and stay sound) while traffic
// migrates. Results are bit-identical — fingerprints and query answers —
// to a from-scratch analysis of the edited program.
func ApplyEdit(prev *Analysis, edits []ir.Edit) (*Analysis, *EditReport, error) {
	return ApplyEditContext(context.Background(), prev, edits)
}

// ApplyEditContext is ApplyEdit under a cancellation context: the
// context bounds the dirty-cluster re-solves exactly as
// AnalyzeProgramContext's does (expiry degrades clusters through the
// retry ladder; explicit cancellation aborts).
func ApplyEditContext(ctx context.Context, prev *Analysis, edits []ir.Edit) (*Analysis, *EditReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	cfg := prev.cfg
	planDefaults(&cfg)
	tr := cfg.Tracer
	sp := tr.Start("phase", "applyedit", obs.TIDMain).Arg("edits", len(edits))
	a, rep, err := applyEdit(ctx, prev, edits, cfg)
	if rep != nil {
		rep.Elapsed = time.Since(start)
		sp.Arg("dirty", rep.Dirty).Arg("reused", rep.Reused).Arg("fellback", rep.FellBack)
		recordEditMetrics(cfg.Metrics, rep)
	}
	sp.End()
	return a, rep, err
}

func recordEditMetrics(m *obs.Metrics, rep *EditReport) {
	if m == nil {
		return
	}
	m.Counter("incr_edits_total", "ApplyEdit batches applied").Add(1)
	m.Counter("incr_clusters_dirty_total", "clusters invalidated by edits").Add(int64(rep.Dirty))
	m.Counter("incr_clusters_reused_total", "clusters reused verbatim across edits").Add(int64(rep.Reused))
	m.Counter("incr_resolves_total", "dirty clusters eagerly re-solved").Add(int64(rep.Resolved))
	m.Counter("incr_steens_drift_total", "variables with drifted Steensgaard signatures").Add(int64(rep.SteensDrift))
	if rep.FellBack {
		m.Counter("incr_fallbacks_total", "ApplyEdit batches that fell back to full Reanalyze").Add(1)
	}
	m.Histogram("incr_edit_seconds", "ApplyEdit latency", obs.SecondsBuckets).Observe(rep.Elapsed.Seconds())
}

func applyEdit(ctx context.Context, prev *Analysis, edits []ir.Edit, cfg Config) (*Analysis, *EditReport, error) {
	newProg := prev.Prog.Clone()
	sum, err := ir.ApplyEdits(newProg, edits)
	if err != nil {
		return nil, nil, fmt.Errorf("core: bad edit batch: %w", err)
	}

	fallback := func(reason string) (*Analysis, *EditReport, error) {
		a, ferr := ReanalyzeContext(ctx, prev, newProg)
		if ferr != nil {
			return nil, nil, ferr
		}
		return a, &EditReport{
			Clusters: len(a.Clusters),
			Dirty:    len(a.Clusters),
			FellBack: true,
			Reason:   reason,
		}, nil
	}

	switch {
	case sum.Structural:
		return fallback(sum.Reason)
	case cfg.Mode != ModeAndersen || cfg.UseOneFlow:
		return fallback("incremental path supports the default Andersen cascade only")
	case cfg.Faults.Active():
		return fallback("fault injection active")
	case frontend.HasIndirectCalls(newProg):
		return fallback("program has unresolved indirect calls")
	}

	// Front-end phases on the edited program. The Andersen fallback and
	// the call graph overlap the cover rebuild below; Steensgaard is
	// needed first (signatures and partition enumeration).
	tSteens := time.Now()
	sa2 := steens.Analyze(newProg, cfg.steensOpts()...)
	steensElapsed := time.Since(tSteens)

	var aa *andersen.Analysis
	var cg *callgraph.Graph
	auxDone := make(chan struct{})
	go func() {
		defer close(auxDone)
		aa = andersen.Analyze(newProg, cfg.andersenOpts()...)
		cg = callgraph.Build(newProg)
	}()

	sig := collectSignals(prev, sa2, sum, len(newProg.Vars))

	// Attribute every old cluster to its Steensgaard partition via the
	// provenance the cover builder recorded, keyed by member list
	// (VarIDs are stable across Clone, so keys compare across
	// generations). The pointer set alone could not do this: sink
	// pointers belong to several overlapping partitions.
	oldByID := make(map[int]*cluster.Cluster, len(prev.Clusters))
	for _, c := range prev.Clusters {
		oldByID[c.ID] = c
	}
	groups := make(map[string][]int, len(prev.Clusters))
	for _, c := range prev.Clusters {
		if c.Part == nil {
			return fallback("cluster cover not attributable to partitions")
		}
		key := memberKey(c.Part)
		groups[key] = append(groups[key], c.ID)
	}
	for _, ids := range groups {
		sort.Ints(ids)
	}
	demoted := demotedSet(prev)

	// Rebuild the cover partition by partition, in enumeration order —
	// the same dense-ID assignment BuildAndersen and StreamAndersen use,
	// so IDs match a from-scratch run. Clean partitions transplant their
	// old clusters; everything else recomputes and re-solves.
	tCluster := time.Now()
	ix := cluster.NewIndex(newProg, sa2)
	parts2 := sa2.Partitions()
	threshold := cfg.AndersenThreshold
	aopts := cfg.andersenOpts()
	newBases := make(map[string]*cluster.Cluster, len(parts2))

	type transplant struct {
		newID int
		oldID int
	}
	var cover []*cluster.Cluster
	var moves []transplant
	var dirtyIDs []int
	prevBases := prev.partBases
	for _, part := range parts2 {
		key := memberKey(part)
		group, hasOld := groups[key]
		clean := hasOld
		var base *cluster.Cluster
		if clean {
			for _, id := range group {
				if demoted[id] {
					clean = false
					break
				}
			}
		}
		if clean {
			base = prevBases[key]
			if base == nil {
				base = cluster.NewWithIndex(ix, 0, cluster.KindSteensgaard, part)
			}
			clean = sig.cleanSlice(base)
		}
		if clean {
			newBases[key] = base
			for _, oldID := range group {
				oc := oldByID[oldID]
				nc := new(cluster.Cluster)
				*nc = *oc
				nc.ID = len(cover)
				nc.Part = part
				moves = append(moves, transplant{newID: nc.ID, oldID: oldID})
				cover = append(cover, nc)
			}
			continue
		}
		b2, cs := cluster.BuildPartitionWithBase(ix, part, threshold, aopts)
		if b2 != nil {
			newBases[key] = b2
		}
		for _, c := range cs {
			c.ID = len(cover)
			dirtyIDs = append(dirtyIDs, c.ID)
			cover = append(cover, c)
		}
	}
	clusteringElapsed := time.Since(tCluster)
	<-auxDone

	a2 := newAnalysis(newProg, cfg)
	a2.mu = prev.mu // engines migrate; both generations share the lock
	a2.Steens = sa2
	a2.Andersen = aa
	a2.CallGraph = cg
	a2.Clusters = cover
	a2.partBases = newBases
	a2.Timing.Steensgaard = steensElapsed
	a2.Timing.Clustering = clusteringElapsed

	// Selection: reused clusters inherit the previous decision (the
	// predicate inputs are unchanged); recomputed clusters re-apply the
	// demand/hybrid predicates exactly as AnalyzeFromPlan does.
	selects := func(c *cluster.Cluster) bool {
		if cfg.HybridSizeLimit > 0 && c.Size() > cfg.HybridSizeLimit {
			return false
		}
		if cfg.Demand == nil {
			return true
		}
		for _, v := range c.Pointers {
			if cfg.Demand(newProg.Var(v)) {
				return true
			}
		}
		return false
	}
	oldHealth := make(map[int]ClusterHealth, len(prev.Health))
	for _, h := range prev.Health {
		oldHealth[h.ClusterID] = h
	}

	rep := &EditReport{
		Clusters:    len(cover),
		Reused:      len(moves),
		Dirty:       len(dirtyIDs),
		SteensDrift: sig.drift,
		DirtyIDs:    dirtyIDs,
	}

	// Transplants: engine moves and rebinds under the shared query lock
	// so in-flight queries on prev never observe a half-rebound engine.
	groupHadEngine := false
	a2.mu.Lock()
	for _, mv := range moves {
		nc := cover[mv.newID]
		if _, sel := prev.selected[mv.oldID]; sel {
			a2.selected[mv.newID] = nc
		}
		if eng := prev.engines[mv.oldID]; eng != nil {
			eng.Rebind(newProg, cg, sa2, nc, aa)
			a2.engines[mv.newID] = eng
			groupHadEngine = true
		}
		if h, ok := oldHealth[mv.oldID]; ok {
			h.ClusterID = mv.newID
			a2.Health = append(a2.Health, h)
		} else if h, ok := prev.queryHealth[mv.oldID]; ok {
			h.ClusterID = mv.newID
			a2.queryHealth[mv.newID] = h
		}
	}
	a2.mu.Unlock()

	var solve []*cluster.Cluster
	for _, id := range dirtyIDs {
		c := cover[id]
		if !selects(c) {
			continue
		}
		a2.selected[id] = c
		// Eager analyses re-solve every dirty cluster now. Lazy ones
		// (the daemon) re-solve only when some engine was already warm —
		// a cold lazy cover stays lazy.
		if !cfg.Lazy || groupHadEngine || len(prev.engines) > 0 {
			solve = append(solve, c)
		}
	}
	for id, c := range a2.selected {
		for _, p := range c.Pointers {
			a2.byPointer[p] = append(a2.byPointer[p], id)
		}
	}

	healths := runClusters(ctx, a2, solve, cfg)
	if err := ctx.Err(); err != nil {
		return nil, nil, fmt.Errorf("core: applyedit cancelled: %w", err)
	}
	for i, c := range solve {
		h := healths[i]
		rep.Resolved++
		if h.Cached {
			rep.CacheHits++
		}
		if cfg.Lazy {
			a2.mu.Lock()
			a2.queryHealth[c.ID] = h
			a2.mu.Unlock()
		} else {
			a2.Health = append(a2.Health, h)
		}
		a2.Timing.FSCS += h.Elapsed
	}
	sort.Slice(a2.Health, func(i, j int) bool { return a2.Health[i].ClusterID < a2.Health[j].ClusterID })
	if cfg.Cache != nil {
		a2.CacheStats = cfg.Cache.Stats()
	}
	return a2, rep, nil
}

// runClusters solves the given clusters through the fault-tolerant
// ladder with the configured worker parallelism, recording engines into
// a2 and returning per-cluster health in input order.
func runClusters(ctx context.Context, a2 *Analysis, work []*cluster.Cluster, cfg Config) []ClusterHealth {
	healths := make([]ClusterHealth, len(work))
	if len(work) == 0 {
		return healths
	}
	engines := make([]*fscs.Engine, len(work))
	if cfg.Workers <= 1 {
		for i, c := range work {
			engines[i], healths[i] = RunCluster(ctx, a2.Prog, a2.CallGraph, a2.Steens, c, a2.Andersen, cfg)
		}
	} else {
		sem := make(chan struct{}, cfg.Workers)
		done := make(chan int)
		for i, c := range work {
			go func(i int, c *cluster.Cluster) {
				sem <- struct{}{}
				defer func() { <-sem; done <- i }()
				engines[i], healths[i] = RunCluster(ctx, a2.Prog, a2.CallGraph, a2.Steens, c, a2.Andersen, cfg)
			}(i, c)
		}
		for range work {
			<-done
		}
	}
	a2.mu.Lock()
	for i, c := range work {
		if engines[i] != nil {
			a2.engines[c.ID] = engines[i]
		} else {
			// Demoted through the ladder: deselect, exactly as the eager
			// scheduler does, so queries answer from the fallback.
			delete(a2.selected, c.ID)
			dropPointerIndex(a2, c)
		}
	}
	a2.mu.Unlock()
	return healths
}

func dropPointerIndex(a *Analysis, c *cluster.Cluster) {
	for _, p := range c.Pointers {
		ids := a.byPointer[p]
		kept := ids[:0]
		for _, id := range ids {
			if id != c.ID {
				kept = append(kept, id)
			}
		}
		if len(kept) == 0 {
			delete(a.byPointer, p)
		} else {
			a.byPointer[p] = kept
		}
	}
}

// editSignals is the dirty set an edit batch induces, in slice terms.
type editSignals struct {
	vars  map[ir.VarID]bool
	locs  map[ir.Loc]bool
	fns   map[ir.FuncID]bool
	drift int
}

// cleanSlice reports whether a cluster's slice is untouched by the
// signals: no dirtied function, edited location, or dirty variable.
func (sg *editSignals) cleanSlice(c *cluster.Cluster) bool {
	for _, f := range c.Funcs {
		if sg.fns[f] {
			return false
		}
	}
	if len(sg.locs) <= len(c.Stmts) {
		for l := range sg.locs {
			if c.HasStmt(l) {
				return false
			}
		}
	} else {
		for _, l := range c.Stmts {
			if sg.locs[l] {
				return false
			}
		}
	}
	if len(sg.vars) <= len(c.Vars) {
		for v := range sg.vars {
			if c.HasVar(v) {
				return false
			}
		}
	} else {
		for _, v := range c.Vars {
			if sg.vars[v] {
				return false
			}
		}
	}
	return true
}

func collectSignals(prev *Analysis, sa2 *steens.Analysis, sum *ir.EditSummary, newN int) *editSignals {
	sg := &editSignals{
		vars: make(map[ir.VarID]bool, len(sum.Vars)*2),
		locs: make(map[ir.Loc]bool, len(sum.Locs)),
		fns:  make(map[ir.FuncID]bool, len(sum.AssumeFns)),
	}
	for _, v := range sum.Vars {
		sg.vars[v] = true
	}
	for _, l := range sum.Locs {
		sg.locs[l] = true
	}
	for _, f := range sum.AssumeFns {
		sg.fns[f] = true
	}
	// Store expansion: *q = r is relevant to any cluster holding a
	// variable q may overwrite, whether or not that variable is an
	// operand. Pull the pointee classes under both generations.
	for _, ch := range sum.Changes {
		if ch.Old.Op == ir.OpStore {
			for _, o := range prev.Steens.PointsToVars(ch.Old.Dst) {
				sg.vars[o] = true
			}
		}
		if ch.New.Op == ir.OpStore {
			for _, o := range sa2.PointsToVars(ch.New.Dst) {
				sg.vars[o] = true
			}
		}
	}
	// Signature drift: variables whose Steensgaard class structure
	// changed anywhere in the program, not just at the edit site. Both
	// tables span their full variable universe — a new variable joining
	// an old class must change that class's member hash so the class's
	// old members drift — but only old variables have a counterpart to
	// compare against.
	oldSig := steensSigs(prev.Steens, len(prev.Prog.Vars))
	newSig := steensSigs(sa2, newN)
	for v := 0; v < len(oldSig) && v < len(newSig); v++ {
		if oldSig[v] != newSig[v] {
			sg.vars[ir.VarID(v)] = true
			sg.drift++
		}
	}
	return sg
}

// steensSigs computes one order-independent hash per variable over its
// Steensgaard class structure: the member lists of its location class,
// content class and sink classes, plus its chain depth. Two variables
// with equal signatures across two analyses of id-stable programs get
// identical answers from every class query the transfer functions make
// (PointsToVars, SamePartition, class comparisons) — modulo 64-bit hash
// collisions, which the differential gate would surface.
func steensSigs(sa *steens.Analysis, n int) []uint64 {
	classMembers := map[int][]ir.VarID{}
	for v := 0; v < n; v++ {
		lc := sa.LocClass(ir.VarID(v))
		classMembers[lc] = append(classMembers[lc], ir.VarID(v))
	}
	classHash := make(map[int]uint64, len(classMembers))
	for cls, ms := range classMembers {
		h := fnvOffset
		for _, m := range ms { // ms is in increasing VarID order
			h = fnvMix(h, uint64(m))
		}
		classHash[cls] = h
	}
	sigs := make([]uint64, n)
	var sinks []int
	for v := 0; v < n; v++ {
		id := ir.VarID(v)
		h := fnvOffset
		h = fnvMix(h, classHash[sa.LocClass(id)])
		h = fnvMix(h, classHash[sa.ContentClass(id)])
		h = fnvMix(h, uint64(sa.Depth(id)))
		if sc := sa.SinkClasses(id); len(sc) > 0 {
			sinks = append(sinks[:0], sc...)
			sort.Ints(sinks)
			h = fnvMix(h, uint64(len(sinks)))
			for _, c := range sinks {
				h = fnvMix(h, classHash[c])
			}
		}
		sigs[v] = h
	}
	return sigs
}

const fnvOffset uint64 = 14695981039346656037

func fnvMix(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= 1099511628211
		x >>= 8
	}
	return h
}

func demotedSet(prev *Analysis) map[int]bool {
	out := map[int]bool{}
	for _, h := range prev.Health {
		if h.Demoted {
			out[h.ClusterID] = true
		}
	}
	prev.mu.Lock()
	for id, h := range prev.queryHealth {
		if h.Demoted {
			out[id] = true
		}
	}
	prev.mu.Unlock()
	return out
}

// memberKey is a partition's identity across program generations: its
// member VarIDs, little-endian packed. Ids are stable under Clone and
// ApplyEdits, so equal keys mean the identical variable set.
func memberKey(members []ir.VarID) string {
	b := make([]byte, 4*len(members))
	for i, v := range members {
		binary.LittleEndian.PutUint32(b[4*i:], uint32(v))
	}
	return string(b)
}

// Fingerprints returns the canonical content-addressed fingerprint of
// every selected cluster, keyed by cluster ID — the same keys the
// result cache stores first-attempt solves under. They are computed on
// demand from the analysis' current program, Steensgaard partitioning
// and call graph, so an analysis produced by ApplyEdit reports exactly
// the fingerprints a from-scratch run on the same program would: the
// differential identity the incremental gate asserts.
func (a *Analysis) Fingerprints() map[int]string {
	params := cache.Params{MaxCond: maxCondOrDefault(a.cfg.MaxCond), Budget: a.cfg.ClusterBudget}
	a.mu.Lock()
	sel := make(map[int]*cluster.Cluster, len(a.selected))
	for id, c := range a.selected {
		sel[id] = c
	}
	a.mu.Unlock()
	out := make(map[int]string, len(sel))
	for id, c := range sel {
		cn := cache.NewCanon(a.Prog, a.Steens, a.CallGraph, c, params)
		k := cn.Key()
		out[id] = hex.EncodeToString(k[:])
	}
	return out
}
