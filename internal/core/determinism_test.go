package core

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"bootstrap/internal/cache"
	"bootstrap/internal/ir"
)

// aliasDump serializes every query surface the facade exposes into one
// canonical string: the cover (IDs, kinds, pointer sets), per-pointer
// cluster membership, points-to sets, alias sets and health statuses.
// Two analyses with equal dumps are observably identical.
func aliasDump(a *Analysis) string {
	var b strings.Builder
	for _, c := range a.Clusters {
		fmt.Fprintf(&b, "cluster %d %s %v\n", c.ID, c.Kind, c.Pointers)
	}
	for _, h := range a.Health {
		fmt.Fprintf(&b, "health %d %s demoted=%v\n", h.ClusterID, h.Status, h.Demoted)
	}
	exit := a.Prog.Func(a.Prog.Entry).Exit
	var ptrs []ir.VarID
	for p := range a.byPointer {
		ptrs = append(ptrs, p)
	}
	sort.Slice(ptrs, func(i, j int) bool { return ptrs[i] < ptrs[j] })
	for _, p := range ptrs {
		objs, precise := a.PointsTo(p, exit)
		fmt.Fprintf(&b, "pts %d %v %v\n", p, objs, precise)
		fmt.Fprintf(&b, "aliases %d %v clusters=%v\n", p, a.Aliases(p, exit), a.ClustersOf(p))
	}
	return b.String()
}

// TestDeterministicAcrossWorkersAndKnobs is the PR's determinism
// acceptance check: alias results must be bit-for-bit identical across
// worker counts and with the interning, pipelining and cycle-elimination
// optimizations toggled off — the knobs and the parallelism trade work,
// never answers.
func TestDeterministicAcrossWorkersAndKnobs(t *testing.T) {
	var want string
	first := true
	for _, workers := range []int{1, 8} {
		for _, noIntern := range []bool{false, true} {
			for _, noPipe := range []bool{false, true} {
				for _, noCycle := range []bool{false, true} {
					cfg := Config{
						Mode:              ModeAndersen,
						Workers:           workers,
						AndersenThreshold: 2, // force Andersen refinement
						DisableInterning:  noIntern,
						DisablePipelining: noPipe,
						DisableCycleElim:  noCycle,
					}
					a, err := AnalyzeSource(testProgram, cfg)
					if err != nil {
						t.Fatalf("workers=%d noIntern=%v noPipe=%v noCycle=%v: %v",
							workers, noIntern, noPipe, noCycle, err)
					}
					dump := aliasDump(a)
					if first {
						want, first = dump, false
						continue
					}
					if dump != want {
						t.Errorf("workers=%d noIntern=%v noPipe=%v noCycle=%v: results diverge\n--- want\n%s--- got\n%s",
							workers, noIntern, noPipe, noCycle, want, dump)
					}
				}
			}
		}
	}
}

// TestDeterministicWithWarmCache extends the determinism check to the
// result cache: with one cache shared across every knob combination, each
// run after the first must serve entirely from it (the fingerprint
// excludes the result-neutral knobs) and still produce the same
// bit-for-bit dump as a cache-free analysis. Caching trades time, never
// answers.
func TestDeterministicWithWarmCache(t *testing.T) {
	fresh, err := AnalyzeSource(testProgram, Config{
		Mode: ModeAndersen, Workers: 1, AndersenThreshold: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := aliasDump(fresh)

	shared := cache.New(cache.Options{})
	first := true
	for _, workers := range []int{1, 8} {
		for _, noIntern := range []bool{false, true} {
			for _, noPipe := range []bool{false, true} {
				for _, noCycle := range []bool{false, true} {
					cfg := Config{
						Mode:              ModeAndersen,
						Workers:           workers,
						AndersenThreshold: 2,
						DisableInterning:  noIntern,
						DisablePipelining: noPipe,
						DisableCycleElim:  noCycle,
						Cache:             shared,
					}
					a, err := AnalyzeSource(testProgram, cfg)
					if err != nil {
						t.Fatalf("workers=%d noIntern=%v noPipe=%v noCycle=%v: %v",
							workers, noIntern, noPipe, noCycle, err)
					}
					if dump := aliasDump(a); dump != want {
						t.Errorf("workers=%d noIntern=%v noPipe=%v noCycle=%v: cached results diverge from fresh\n--- fresh\n%s--- got\n%s",
							workers, noIntern, noPipe, noCycle, want, dump)
					}
					if first {
						first = false
						if a.CacheStats.Misses != int64(len(a.Health)) {
							t.Errorf("first run stats = %+v, want all misses", a.CacheStats)
						}
						continue
					}
					if a.CacheStats.Misses != 0 {
						t.Errorf("workers=%d noIntern=%v noPipe=%v noCycle=%v: warm run missed %d times, want pure hits",
							workers, noIntern, noPipe, noCycle, a.CacheStats.Misses)
					}
				}
			}
		}
	}
}

// TestPipelinedMatchesSerialCover: the streamed cover must be the
// BuildAndersen cover exactly — same clusters, same IDs, same order —
// including under demand selection and the hybrid size cut-off.
func TestPipelinedMatchesSerialCover(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"plain", Config{Mode: ModeAndersen, AndersenThreshold: 2, Workers: 4}},
		{"demand", Config{Mode: ModeAndersen, AndersenThreshold: 2, Workers: 4,
			Demand: func(v *ir.Var) bool { return v.IsLock }}},
		{"hybrid", Config{Mode: ModeAndersen, AndersenThreshold: 2, Workers: 4, HybridSizeLimit: 2}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			piped, err := AnalyzeSource(testProgram, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			serialCfg := tc.cfg
			serialCfg.DisablePipelining = true
			serial, err := AnalyzeSource(testProgram, serialCfg)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := aliasDump(piped), aliasDump(serial); got != want {
				t.Errorf("pipelined cover/results diverge from serial\n--- serial\n%s--- pipelined\n%s", want, got)
			}
			if len(piped.Clusters) != len(serial.Clusters) {
				t.Fatalf("cover sizes differ: %d vs %d", len(piped.Clusters), len(serial.Clusters))
			}
		})
	}
}
