package core

import (
	"math/rand"
	"testing"
	"time"

	"bootstrap/internal/exact"
	"bootstrap/internal/frontend"
	"bootstrap/internal/ir"
	"bootstrap/internal/synth"
)

// TestSolverKnobsAgree pins the PR-7 differential contract at the facade:
// the delta-propagation and parallel-solve knobs change speed only, so
// every configuration must answer the alias queries identically.
func TestSolverKnobsAgree(t *testing.T) {
	configs := map[string]Config{
		"default":    {Mode: ModeAndersen, Workers: 2, AndersenThreshold: 2},
		"no-delta":   {Mode: ModeAndersen, Workers: 2, AndersenThreshold: 2, DisableDeltaProp: true},
		"no-par":     {Mode: ModeAndersen, Workers: 2, AndersenThreshold: 2, DisableParSolve: true},
		"par-always": {Mode: ModeAndersen, Workers: 4, AndersenThreshold: 2, ParSolveThreshold: 1},
	}
	results := map[string]*Analysis{}
	for name, cfg := range configs {
		a, err := AnalyzeSource(testProgram, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		results[name] = a
	}
	base := results["default"]
	exit := exitLoc(base)
	pairs := [][2]string{
		{"x", "y"}, {"x", "p"}, {"y", "p"}, {"l1", "l2"}, {"x", "l1"}, {"px", "y"},
	}
	for name, a := range results {
		for _, pair := range pairs {
			want := base.MayAlias(v(t, base, pair[0]), v(t, base, pair[1]), exit)
			if got := a.MayAlias(v(t, a, pair[0]), v(t, a, pair[1]), exit); got != want {
				t.Errorf("%s: MayAlias(%s,%s) = %v, default = %v", name, pair[0], pair[1], got, want)
			}
		}
	}
}

// TestPreciseCascadeSoundRandom runs the whole cascade under the
// oversharing-resistant partitioner (with and without the One-Flow
// stage, whose partition dedup must be overlap-safe) on random programs
// and checks every exact alias pair is still reported: the overlapping
// cover must lose no soundness end to end.
func TestPreciseCascadeSoundRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short mode")
	}
	gen := synth.DefaultRandomConfig()
	gen.Funcs = 3
	gen.Recursion = true
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		src := synth.RandomSource(rng, gen)
		prog, err := frontend.LowerSource(src)
		if err != nil {
			t.Fatal(err)
		}
		r := exact.Explore(prog, exact.Options{})
		for _, oneflow := range []bool{false, true} {
			// Random programs can hand the FSCS stage a pathological
			// cluster (exponential condition churn regardless of this PR's
			// knobs); the ladder demotes those to the flow-insensitive
			// fallback, which keeps the run finite and the answers sound —
			// exactly what this test asserts.
			cfg := Config{
				Mode:              ModeAndersen,
				Workers:           2,
				AndersenThreshold: 4,
				SteensPrecise:     true,
				UseOneFlow:        oneflow,
				ClusterTimeout:    time.Second,
				Retries:           -1,
			}
			a, err := AnalyzeProgram(prog, cfg)
			if err != nil {
				t.Fatalf("seed %d oneflow=%v: %v", seed, oneflow, err)
			}
			// Querying every pair at every node is too slow for CI (each
			// MayAlias is a context-sensitive FSCS query); the function
			// exits see every fact that escapes a call, which is where an
			// unsound cover would be observable.
			var locs []ir.Loc
			for fid := range prog.Funcs {
				locs = append(locs, prog.Func(ir.FuncID(fid)).Exit)
			}
			for _, loc := range locs {
				for i := 0; i < prog.NumVars(); i++ {
					for j := i + 1; j < prog.NumVars(); j++ {
						pi, pj := ir.VarID(i), ir.VarID(j)
						if r.MayAlias(pi, pj, loc) && !a.MayAlias(pi, pj, loc) {
							t.Fatalf("seed %d oneflow=%v: UNSOUND: %s and %s alias at L%d (exact), cascade says no\nprogram:\n%s",
								seed, oneflow, prog.VarName(pi), prog.VarName(pj), loc, src)
						}
					}
				}
			}
		}
	}
}
