package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"bootstrap/internal/cluster"
	"bootstrap/internal/faults"
	"bootstrap/internal/fscs"
	"bootstrap/internal/ir"
)

func errorsIsBudget(err error) bool { return errors.Is(err, fscs.ErrBudget) }

const testProgram = `
	int a, b, c;
	int *x, *y, *p;
	int **px;
	lock m1, m2;
	lock *l1, *l2;
	void swap() {
		int *t;
		t = x;
		x = y;
		y = t;
	}
	void locks() {
		l1 = &m1;
		l2 = l1;
	}
	void main() {
		x = &a;
		y = &b;
		p = &c;
		px = &x;
		swap();
		*px = p;
		locks();
	}
`

func v(t *testing.T, a *Analysis, name string) ir.VarID {
	t.Helper()
	id, ok := a.Prog.VarByName[name]
	if !ok {
		t.Fatalf("no variable %q", name)
	}
	return id
}

func exitLoc(a *Analysis) ir.Loc { return a.Prog.Func(a.Prog.Entry).Exit }

func TestModesAgreeOnAliases(t *testing.T) {
	var results []*Analysis
	for _, mode := range []Mode{ModeNone, ModeSteensgaard, ModeAndersen, ModeSyntactic} {
		a, err := AnalyzeSource(testProgram, Config{Mode: mode, Workers: 1, AndersenThreshold: 2})
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		results = append(results, a)
	}
	exit := exitLoc(results[0])
	pairs := [][2]string{
		{"x", "y"}, {"x", "p"}, {"y", "p"}, {"l1", "l2"}, {"x", "l1"},
	}
	for _, pair := range pairs {
		base := results[0]
		want := base.MayAlias(v(t, base, pair[0]), v(t, base, pair[1]), exit)
		for i, a := range results[1:] {
			got := a.MayAlias(v(t, a, pair[0]), v(t, a, pair[1]), exit)
			if got != want {
				t.Errorf("mode %d: MayAlias(%s,%s) = %v, baseline (no clustering) = %v",
					i+1, pair[0], pair[1], got, want)
			}
		}
	}
}

func TestAnalyzeEndToEnd(t *testing.T) {
	a, err := AnalyzeSource(testProgram, Config{Mode: ModeAndersen, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	exit := exitLoc(a)
	// swap + *px = p: x ends as &c (store through px), y as &a.
	objs, _ := a.PointsTo(v(t, a, "x"), exit)
	names := map[string]bool{}
	for _, o := range objs {
		names[a.Prog.VarName(o)] = true
	}
	if !names["c"] {
		t.Errorf("PointsTo(x) = %v, want c after *px = p", names)
	}
	if !a.MustAlias(v(t, a, "l1"), v(t, a, "l2"), exit) {
		t.Error("l1 and l2 must alias")
	}
	if a.MayAlias(v(t, a, "x"), v(t, a, "l1"), exit) {
		t.Error("int pointers and lock pointers cannot alias")
	}
	if len(a.Clusters) < 2 {
		t.Errorf("expected multiple clusters, got %d", len(a.Clusters))
	}
	if a.Timing.Steensgaard <= 0 || a.Timing.FSCS <= 0 {
		t.Error("timings should be recorded")
	}
}

func TestDemandDrivenLocks(t *testing.T) {
	a, err := AnalyzeSource(testProgram, Config{
		Mode:    ModeAndersen,
		Workers: 1,
		Demand:  func(vr *ir.Var) bool { return vr.IsLock },
	})
	if err != nil {
		t.Fatal(err)
	}
	exit := exitLoc(a)
	if !a.MustAlias(v(t, a, "l1"), v(t, a, "l2"), exit) {
		t.Error("demand-driven lock analysis should still prove l1 == l2")
	}
	// Non-lock pointers were not analyzed precisely.
	if ids := a.ClustersOf(v(t, a, "x")); len(ids) != 0 {
		t.Errorf("x should not be in any analyzed cluster, got %v", ids)
	}
	// Queries on unanalyzed pointers fall back soundly.
	if !a.MayAlias(v(t, a, "x"), v(t, a, "y"), exit) {
		t.Error("fallback should report x/y as possible aliases")
	}
	// Fewer engines ran than in full mode.
	full, err := AnalyzeSource(testProgram, Config{Mode: ModeAndersen, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Timing.PerCluster) >= len(full.Timing.PerCluster) {
		t.Errorf("demand mode ran %d engines, full mode %d — expected fewer",
			len(a.Timing.PerCluster), len(full.Timing.PerCluster))
	}
}

// clusterOf returns the ID of the first analyzed cluster containing the
// named pointer in a healthy reference analysis.
func clusterOf(t *testing.T, a *Analysis, name string) int {
	t.Helper()
	ids := a.ClustersOf(v(t, a, name))
	if len(ids) == 0 {
		t.Fatalf("%s is in no analyzed cluster", name)
	}
	return ids[0]
}

// healthOf returns the health entry of one cluster.
func healthOf(t *testing.T, a *Analysis, id int) ClusterHealth {
	t.Helper()
	for _, h := range a.Health {
		if h.ClusterID == id {
			return h
		}
	}
	t.Fatalf("no health entry for cluster %d (have %d entries)", id, len(a.Health))
	return ClusterHealth{}
}

// soundnessPairs is the pointer sample the fault tests probe.
var soundnessPairs = []string{"x", "y", "p", "px", "l1", "l2"}

// assertSound checks the two soundness directions on every sampled pair:
// an alias the healthy precise analysis reports must survive degradation,
// and a degraded run must never report aliases beyond the flow-insensitive
// Andersen over-approximation.
func assertSound(t *testing.T, healthy, faulty *Analysis) {
	t.Helper()
	exit := exitLoc(healthy)
	for i, pn := range soundnessPairs {
		for _, qn := range soundnessPairs[i+1:] {
			want := healthy.MayAlias(v(t, healthy, pn), v(t, healthy, qn), exit)
			got := faulty.MayAlias(v(t, faulty, pn), v(t, faulty, qn), exit)
			if want && !got {
				t.Errorf("MayAlias(%s,%s): degraded run lost a may-alias (unsound)", pn, qn)
			}
			andersen := faulty.Andersen.MayAlias(v(t, faulty, pn), v(t, faulty, qn))
			if got && !andersen {
				t.Errorf("MayAlias(%s,%s): degraded run reports an alias Andersen refutes", pn, qn)
			}
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	seq, err := AnalyzeSource(testProgram, Config{Mode: ModeSteensgaard, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := AnalyzeSource(testProgram, Config{Mode: ModeSteensgaard, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	exit := exitLoc(seq)
	for _, pair := range [][2]string{{"x", "y"}, {"x", "p"}, {"l1", "l2"}} {
		s := seq.MayAlias(v(t, seq, pair[0]), v(t, seq, pair[1]), exit)
		p := par.MayAlias(v(t, par, pair[0]), v(t, par, pair[1]), exit)
		if s != p {
			t.Errorf("MayAlias(%s,%s): sequential %v != parallel %v", pair[0], pair[1], s, p)
		}
	}

	// Fault injection: with one cluster panicking, one forced out of
	// budget and one timing out, the run must still complete, report the
	// failures in Health, and keep every query sound — sequentially and
	// under the parallel scheduler alike.
	xID := clusterOf(t, seq, "x")
	lockID := clusterOf(t, seq, "l1")
	pxID := clusterOf(t, seq, "px")
	if xID == lockID || xID == pxID || lockID == pxID {
		t.Fatalf("fault targets must be distinct clusters: x=%d l1=%d px=%d", xID, lockID, pxID)
	}
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("faults/workers=%d", workers), func(t *testing.T) {
			plan := faults.NewPlan().
				Set(xID, faults.Fault{Kind: faults.Panic}).
				Set(lockID, faults.Fault{Kind: faults.Budget}).
				Set(pxID, faults.Fault{Kind: faults.Slow, Delay: 400 * time.Millisecond})
			a, err := AnalyzeSource(testProgram, Config{
				Mode:           ModeSteensgaard,
				Workers:        workers,
				ClusterTimeout: 150 * time.Millisecond,
				Faults:         plan,
			})
			if err != nil {
				t.Fatalf("a faulty cluster must not fail the analysis: %v", err)
			}
			if len(a.Health) != len(seq.Health) {
				t.Errorf("Health has %d entries, want %d", len(a.Health), len(seq.Health))
			}
			hx := healthOf(t, a, xID)
			if hx.Status != HealthDegraded || !hx.Demoted || hx.Stack == "" || hx.Err == nil {
				t.Errorf("panicked cluster: %+v, want degraded+demoted with stack and error", hx)
			}
			hl := healthOf(t, a, lockID)
			if hl.Status != HealthExhausted || !hl.Demoted || !errorsIsBudget(hl.Err) {
				t.Errorf("budget cluster: %+v, want exhausted+demoted with ErrBudget", hl)
			}
			hp := healthOf(t, a, pxID)
			if hp.Status != HealthTimedOut || !hp.Demoted {
				t.Errorf("slow cluster: %+v, want timed-out+demoted", hp)
			}
			for _, h := range []ClusterHealth{hx, hl, hp} {
				if h.Attempts != 2 {
					t.Errorf("cluster %d: %d attempts, want 2 (ladder retry before demotion)", h.ClusterID, h.Attempts)
				}
			}
			assertSound(t, seq, a)
		})
	}
}

func TestPanicRecoveredByRetry(t *testing.T) {
	healthy, err := AnalyzeSource(testProgram, Config{Mode: ModeSteensgaard, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	xID := clusterOf(t, healthy, "x")
	// The panic fires only on the first attempt; the ladder retry runs
	// clean and the cluster keeps its precise engine.
	plan := faults.NewPlan().Set(xID, faults.Fault{Kind: faults.Panic, Attempts: 1})
	a, err := AnalyzeSource(testProgram, Config{Mode: ModeSteensgaard, Workers: 2, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	h := healthOf(t, a, xID)
	if h.Status != HealthRecovered || h.Demoted || h.Attempts != 2 {
		t.Errorf("health = %+v, want recovered after 2 attempts, not demoted", h)
	}
	if h.Stack == "" {
		t.Error("the recovered panic's stack should be captured")
	}
	if a.Engine(xID) == nil {
		t.Error("recovered cluster should keep its engine")
	}
	// With the engine recovered, answers match the healthy run exactly.
	exit := exitLoc(healthy)
	for i, pn := range soundnessPairs {
		for _, qn := range soundnessPairs[i+1:] {
			want := healthy.MayAlias(v(t, healthy, pn), v(t, healthy, qn), exit)
			got := a.MayAlias(v(t, a, pn), v(t, a, qn), exit)
			if want != got {
				t.Errorf("MayAlias(%s,%s) = %v after recovery, healthy run says %v", pn, qn, got, want)
			}
		}
	}
}

func TestClusterTimeoutDegradesEverything(t *testing.T) {
	healthy, err := AnalyzeSource(testProgram, Config{Mode: ModeSteensgaard, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, err := AnalyzeSource(testProgram, Config{
		Mode: ModeSteensgaard, Workers: 4, ClusterTimeout: time.Nanosecond,
	})
	if err != nil {
		t.Fatalf("an impossible deadline must degrade, not fail: %v", err)
	}
	if len(a.Health) == 0 {
		t.Fatal("Health should be populated")
	}
	for _, h := range a.Health {
		if h.Status != HealthTimedOut || !h.Demoted {
			t.Errorf("cluster %d: %+v, want timed-out+demoted under a 1ns deadline", h.ClusterID, h)
		}
	}
	assertSound(t, healthy, a)
}

func TestRunTimeoutDegradesEverything(t *testing.T) {
	healthy, err := AnalyzeSource(testProgram, Config{Mode: ModeSteensgaard, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, err := AnalyzeSource(testProgram, Config{
		Mode: ModeSteensgaard, Workers: 4, RunTimeout: time.Nanosecond,
	})
	if err != nil {
		t.Fatalf("an expired run deadline must degrade, not fail: %v", err)
	}
	for _, h := range a.Health {
		if h.Status != HealthTimedOut || !h.Demoted {
			t.Errorf("cluster %d: %+v, want timed-out+demoted under an expired run deadline", h.ClusterID, h)
		}
	}
	assertSound(t, healthy, a)
}

func TestCallerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := AnalyzeSourceContext(ctx, testProgram, Config{Mode: ModeSteensgaard, Workers: 1}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled caller context: err = %v, want context.Canceled", err)
	}
}

func TestTimingLowerDirect(t *testing.T) {
	// The frontend phase is measured directly; it must never go negative
	// even though parallel FSCS makes Wall < FSCS.
	a, err := AnalyzeSource(testProgram, Config{Mode: ModeAndersen, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.Timing.Lower <= 0 {
		t.Errorf("Timing.Lower = %v, want > 0", a.Timing.Lower)
	}
}

func TestOneFlowMode(t *testing.T) {
	a, err := AnalyzeSource(testProgram, Config{
		Mode: ModeAndersen, UseOneFlow: true, Workers: 1, AndersenThreshold: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	exit := exitLoc(a)
	if !a.MustAlias(v(t, a, "l1"), v(t, a, "l2"), exit) {
		t.Error("one-flow cascade should preserve lock must-alias")
	}
	base, err := AnalyzeSource(testProgram, Config{Mode: ModeAndersen, Workers: 1, AndersenThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]string{{"x", "y"}, {"x", "p"}, {"y", "p"}} {
		got := a.MayAlias(v(t, a, pair[0]), v(t, a, pair[1]), exit)
		want := base.MayAlias(v(t, base, pair[0]), v(t, base, pair[1]), exit)
		if got != want {
			t.Errorf("one-flow cascade changed MayAlias(%s,%s): %v vs %v", pair[0], pair[1], got, want)
		}
	}
}

func TestBudgetTimeout(t *testing.T) {
	a, err := AnalyzeSource(testProgram, Config{Mode: ModeNone, Workers: 1, ClusterBudget: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Health) != 1 {
		t.Fatalf("Health has %d entries, want 1", len(a.Health))
	}
	h := a.Health[0]
	if h.Status != HealthExhausted || !h.Demoted {
		t.Errorf("health = %+v, want exhausted+demoted", h)
	}
	if h.Attempts != 2 {
		t.Errorf("ladder should retry once before demoting, got %d attempts", h.Attempts)
	}
	if !errorsIsBudget(h.Err) {
		t.Errorf("health error = %v, want fscs.ErrBudget", h.Err)
	}
	// The demoted cluster has no engine; queries fall back soundly.
	if eng := a.Engine(a.Clusters[0].ID); eng != nil {
		t.Error("demoted cluster should have no engine")
	}
	exit := exitLoc(a)
	if !a.MayAlias(v(t, a, "x"), v(t, a, "y"), exit) {
		t.Error("fallback must keep the sound may-alias answer")
	}
}

func TestAliasesUnion(t *testing.T) {
	a, err := AnalyzeSource(testProgram, Config{Mode: ModeAndersen, Workers: 1, AndersenThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	exit := exitLoc(a)
	al := a.Aliases(v(t, a, "l1"), exit)
	found := false
	for _, q := range al {
		if a.Prog.VarName(q) == "l2" {
			found = true
		}
	}
	if !found {
		t.Errorf("Aliases(l1) should contain l2, got %d entries", len(al))
	}
}

func TestSimulateParallel(t *testing.T) {
	mk := func(sizes ...int) []*cluster.Cluster {
		a, err := AnalyzeSource(testProgram, Config{Mode: ModeSteensgaard, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		_ = a
		var cs []*cluster.Cluster
		for range sizes {
			cs = append(cs, a.Clusters[0])
		}
		return cs
	}
	cs := mk(1, 1, 1, 1, 1)
	times := []time.Duration{10, 20, 30, 40, 50}
	tot := SimulateParallel(cs, times, 1)
	if tot != 150 {
		t.Errorf("k=1 should serialize: got %v, want 150", tot)
	}
	five := SimulateParallel(cs, times, 5)
	if five >= tot {
		t.Errorf("k=5 (%v) should beat k=1 (%v)", five, tot)
	}
	if five < 50 {
		t.Errorf("k=5 (%v) cannot beat the largest single cluster", five)
	}
	if got := SimulateParallel(nil, nil, 5); got != 0 {
		t.Errorf("empty cluster list: got %v, want 0", got)
	}
}

func TestEngineAccessors(t *testing.T) {
	a, err := AnalyzeSource(testProgram, Config{Mode: ModeSteensgaard, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	l1 := v(t, a, "l1")
	ids := a.ClustersOf(l1)
	if len(ids) == 0 {
		t.Fatal("l1 must be in an analyzed cluster")
	}
	eng := a.Engine(ids[0])
	if eng == nil {
		t.Fatal("engine missing")
	}
	if !eng.Cluster().HasPointer(l1) {
		t.Error("engine cluster should contain l1")
	}
	var _ *fscs.Engine = eng
}

func TestAnalyzeSourceErrors(t *testing.T) {
	if _, err := AnalyzeSource("int", Config{}); err == nil {
		t.Error("parse error should propagate")
	}
	if _, err := AnalyzeSource("void main() { x = y; }", Config{}); err == nil {
		t.Error("lowering error should propagate")
	}
}

func TestLazyMode(t *testing.T) {
	a, err := AnalyzeSource(testProgram, Config{Mode: ModeSteensgaard, Workers: 1, Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	// No eager engine runs.
	if len(a.Timing.PerCluster) != 0 {
		t.Errorf("lazy mode ran %d engines eagerly", len(a.Timing.PerCluster))
	}
	exit := exitLoc(a)
	// First query creates exactly the engines of l1's clusters and still
	// answers correctly.
	if !a.MustAlias(v(t, a, "l1"), v(t, a, "l2"), exit) {
		t.Error("lazy query should still prove l1 == l2")
	}
	// Matches eager results on the standard pairs.
	eager, err := AnalyzeSource(testProgram, Config{Mode: ModeSteensgaard, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]string{{"x", "y"}, {"x", "p"}, {"x", "l1"}} {
		lz := a.MayAlias(v(t, a, pair[0]), v(t, a, pair[1]), exit)
		eg := eager.MayAlias(v(t, eager, pair[0]), v(t, eager, pair[1]), exit)
		if lz != eg {
			t.Errorf("lazy MayAlias(%s,%s) = %v, eager = %v", pair[0], pair[1], lz, eg)
		}
	}
}

func TestHybridSizeLimit(t *testing.T) {
	a, err := AnalyzeSource(testProgram, Config{
		Mode: ModeSteensgaard, Workers: 1, HybridSizeLimit: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	exit := exitLoc(a)
	// The x/y/p cluster exceeds the limit: queries fall back to the
	// flow-insensitive answer — still sound (may-aliases preserved).
	if !a.MayAlias(v(t, a, "x"), v(t, a, "y"), exit) {
		t.Error("hybrid fallback must keep sound may-aliases")
	}
	// The small lock cluster is still analyzed precisely.
	if !a.MustAlias(v(t, a, "l1"), v(t, a, "l2"), exit) {
		t.Error("small cluster should keep the precise treatment")
	}
	// Fewer engines ran than without the limit.
	full, _ := AnalyzeSource(testProgram, Config{Mode: ModeSteensgaard, Workers: 1})
	if len(a.Timing.PerCluster) >= len(full.Timing.PerCluster) {
		t.Errorf("hybrid ran %d engines, full %d", len(a.Timing.PerCluster), len(full.Timing.PerCluster))
	}
}

func TestValuesInContext(t *testing.T) {
	src := `
		int a1, a2;
		int *g;
		void set(int *v) { g = v; }
		void main() {
			set(&a1);
			set(&a2);
		}
	`
	a, err := AnalyzeSource(src, Config{Mode: ModeSteensgaard, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var sites []ir.Loc
	setID := a.Prog.FuncByName["set"]
	for _, n := range a.Prog.Nodes {
		if n.Stmt.Op == ir.OpCall && n.Stmt.Callee == setID {
			sites = append(sites, n.Loc)
		}
	}
	if len(sites) != 2 {
		t.Fatalf("found %d call sites", len(sites))
	}
	setExit := a.Prog.Func(setID).Exit
	for i, want := range []string{"a1", "a2"} {
		objs, precise, err := a.ValuesInContext(v(t, a, "g"), setExit, fscs.Context{sites[i]})
		if err != nil {
			t.Fatal(err)
		}
		if !precise || len(objs) != 1 || a.Prog.VarName(objs[0]) != want {
			names := make([]string, len(objs))
			for j, o := range objs {
				names[j] = a.Prog.VarName(o)
			}
			t.Errorf("context %d: objs=%v precise=%v, want exactly {%s}", i, names, precise, want)
		}
	}
	// Context validation errors propagate.
	if _, _, err := a.ValuesInContext(v(t, a, "g"), setExit, fscs.Context{}); err == nil {
		t.Error("bad context should error")
	}
	// Must-alias in context.
	ok, err := a.MustAliasInContext(v(t, a, "g"), v(t, a, "g"), setExit, fscs.Context{sites[0]})
	if err != nil || !ok {
		t.Errorf("g must alias itself in a valid context: %v %v", ok, err)
	}
}

func TestDerefState(t *testing.T) {
	src := `
		int a;
		int *ok, *nul, *mix;
		void main() {
			ok = &a;
			nul = null;
			mix = &a;
			if (*) { mix = null; }
		}
	`
	a, err := AnalyzeSource(src, Config{Mode: ModeSteensgaard, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	exit := exitLoc(a)
	objs, mayNull, _, precise := a.DerefState(v(t, a, "ok"), exit)
	if !precise || mayNull || len(objs) != 1 {
		t.Errorf("ok: objs=%d null=%v precise=%v", len(objs), mayNull, precise)
	}
	objs, mayNull, _, precise = a.DerefState(v(t, a, "nul"), exit)
	if !precise || !mayNull || len(objs) != 0 {
		t.Errorf("nul: objs=%d null=%v precise=%v", len(objs), mayNull, precise)
	}
	_, mayNull, _, _ = a.DerefState(v(t, a, "mix"), exit)
	if !mayNull {
		t.Error("mix: expected a null path")
	}
}
