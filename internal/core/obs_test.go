package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"bootstrap/internal/cache"
	"bootstrap/internal/obs"
)

// normalizeTrace renders the canonical event stream with timestamps and
// durations zeroed — everything that is allowed to differ between two
// runs of the same configuration.
func normalizeTrace(t *testing.T, tr *obs.Tracer) string {
	t.Helper()
	evs := tr.Events()
	for i := range evs {
		evs[i].TS = 0
		evs[i].Dur = 0
	}
	data, err := json.MarshalIndent(evs, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestTraceDeterministicWorkers1 is the tracing acceptance check: two
// Workers=1 runs of the same configuration must produce identical event
// streams up to timestamps — on the serial path (inline cluster loop)
// and on the pipelined path (single-writer tracks, canonical order).
func TestTraceDeterministicWorkers1(t *testing.T) {
	for _, noPipe := range []bool{true, false} {
		var want string
		for run := 0; run < 2; run++ {
			tr := obs.NewTracer()
			cfg := Config{
				Mode:              ModeAndersen,
				Workers:           1,
				AndersenThreshold: 2,
				DisablePipelining: noPipe,
				Tracer:            tr,
			}
			if _, err := AnalyzeSource(testProgram, cfg); err != nil {
				t.Fatal(err)
			}
			got := normalizeTrace(t, tr)
			if run == 0 {
				want = got
			} else if got != want {
				t.Errorf("pipelining=%v: run 1 and run 2 traces differ:\n--- run 1:\n%s\n--- run 2:\n%s",
					!noPipe, want, got)
			}
		}
	}
}

// eventNames indexes the stream: name -> the events carrying it.
func eventNames(evs []obs.Event) map[string][]obs.Event {
	m := map[string][]obs.Event{}
	for _, ev := range evs {
		m[ev.Name] = append(m[ev.Name], ev)
	}
	return m
}

func outcomes(evs []obs.Event) map[string]int {
	counts := map[string]int{}
	for _, ev := range evs {
		if o, ok := ev.Args["outcome"].(string); ok {
			counts[o]++
		}
	}
	return counts
}

// TestTracePhaseAndOutcomeSpans drives one cluster through each outcome
// and checks the span taxonomy: every phase appears once per run, and
// cluster spans carry solved, cached and demoted outcomes.
func TestTracePhaseAndOutcomeSpans(t *testing.T) {
	cc := cache.New(cache.Options{})
	base := Config{
		Mode:              ModeAndersen,
		Workers:           1,
		AndersenThreshold: 2,
		DisablePipelining: true,
		Cache:             cc,
	}

	// Cold run: every cluster solves and stores.
	cold := obs.NewTracer()
	cfg := base
	cfg.Tracer = cold
	if _, err := AnalyzeSource(testProgram, cfg); err != nil {
		t.Fatal(err)
	}
	byName := eventNames(cold.Events())
	for _, phase := range []string{"parse", "steensgaard", "clustering", "fallback", "fscs"} {
		if n := len(byName[phase]); n != 1 {
			t.Errorf("cold run: %d %q phase spans, want 1", n, phase)
		}
	}
	if len(byName["attempt"]) == 0 || len(byName["cache.probe"]) == 0 || len(byName["cache.store"]) == 0 {
		t.Errorf("cold run: missing attempt/cache spans: attempts=%d probes=%d stores=%d",
			len(byName["attempt"]), len(byName["cache.probe"]), len(byName["cache.store"]))
	}
	if oc := outcomes(cold.Events()); oc["solved"] == 0 || oc["cached"] != 0 {
		t.Errorf("cold run outcomes = %v, want only solved", oc)
	}

	// Warm run: every cluster imports from the cache.
	warm := obs.NewTracer()
	cfg = base
	cfg.Tracer = warm
	if _, err := AnalyzeSource(testProgram, cfg); err != nil {
		t.Fatal(err)
	}
	byName = eventNames(warm.Events())
	if len(byName["cache.import"]) == 0 {
		t.Error("warm run: no cache.import spans")
	}
	if oc := outcomes(warm.Events()); oc["cached"] == 0 || oc["solved"] != 0 {
		t.Errorf("warm run outcomes = %v, want only cached", oc)
	}

	// Starved run: a 1-tuple budget demotes every cluster, attempts fail.
	starved := obs.NewTracer()
	demoted, err := AnalyzeSource(testProgram, Config{
		Mode:              ModeAndersen,
		Workers:           1,
		AndersenThreshold: 2,
		DisablePipelining: true,
		ClusterBudget:     1,
		Retries:           -1,
		Tracer:            starved,
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, h := range demoted.Health {
		found = found || h.Demoted
	}
	if !found {
		t.Fatal("1-tuple budget should demote at least one cluster")
	}
	evs := starved.Events()
	if oc := outcomes(evs); oc["demoted"] == 0 {
		t.Errorf("starved run outcomes = %v, want demoted > 0", oc)
	}
	sawFailed := false
	for _, ev := range evs {
		if ev.Name == "attempt" && ev.Args["ok"] == false {
			sawFailed = true
			if _, hasErr := ev.Args["error"].(string); !hasErr {
				t.Error("failed attempt span should carry the error")
			}
		}
	}
	if !sawFailed {
		t.Error("starved run: no failed attempt spans")
	}
}

// TestTraceJSONRoundTrip checks the Chrome trace export survives
// encoding/json both ways: decode(encode(trace)) re-encodes to the same
// bytes, and the envelope keeps the traceEvents key.
func TestTraceJSONRoundTrip(t *testing.T) {
	tr := obs.NewTracer()
	if _, err := AnalyzeSource(testProgram, Config{
		Mode: ModeAndersen, Workers: 1, AndersenThreshold: 2, Tracer: tr,
	}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"traceEvents"`) {
		t.Fatal("missing traceEvents envelope")
	}
	var decoded obs.Trace
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("exported trace does not parse: %v", err)
	}
	if len(decoded.TraceEvents) == 0 {
		t.Fatal("decoded trace is empty")
	}
	re1, err := json.Marshal(decoded)
	if err != nil {
		t.Fatal(err)
	}
	var again obs.Trace
	if err := json.Unmarshal(re1, &again); err != nil {
		t.Fatal(err)
	}
	re2, err := json.Marshal(again)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re1, re2) {
		t.Error("trace JSON does not round-trip stably through encoding/json")
	}
}

// TestMetricsRecorded runs the cascade with a registry attached and
// checks the counters the phases are contracted to book.
func TestMetricsRecorded(t *testing.T) {
	m := obs.NewMetrics()
	if _, err := AnalyzeSource(testProgram, Config{
		Mode: ModeAndersen, Workers: 2, AndersenThreshold: 2, Metrics: m,
	}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"bootstrap_steens_unions_total",
		"bootstrap_andersen_passes_total",
		"bootstrap_clusters_solved_total",
		"bootstrap_cluster_solve_seconds_count",
		"bootstrap_fscs_tuples_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing metric %s in:\n%s", want, text)
		}
	}
	if c := m.Counter("bootstrap_clusters_solved_total", "").Value(); c == 0 {
		t.Error("no solved clusters recorded")
	}
	if c := m.Counter("bootstrap_fscs_tuples_total", "").Value(); c == 0 {
		t.Error("no FSCS tuples recorded")
	}
}
