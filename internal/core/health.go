package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"bootstrap/internal/andersen"
	"bootstrap/internal/cache"
	"bootstrap/internal/callgraph"
	"bootstrap/internal/cluster"
	"bootstrap/internal/fscs"
	"bootstrap/internal/ir"
	"bootstrap/internal/obs"
	"bootstrap/internal/steens"
)

// HealthStatus is the final disposition of one cluster under the
// fault-tolerant scheduler.
type HealthStatus uint8

const (
	// HealthOK: the first attempt completed within budget and deadline.
	HealthOK HealthStatus = iota
	// HealthRetried: an attempt blew its budget or deadline, but a
	// degradation-ladder retry (halved MaxCond and budget) completed.
	HealthRetried
	// HealthRecovered: an attempt panicked; the panic was isolated and a
	// ladder retry completed.
	HealthRecovered
	// HealthExhausted: the final attempt ran out of work budget; the
	// cluster is demoted to the flow-insensitive fallback.
	HealthExhausted
	// HealthTimedOut: the final attempt hit its wall-clock deadline (or
	// the whole-run deadline expired); demoted to the fallback.
	HealthTimedOut
	// HealthDegraded: the final attempt panicked or failed with an
	// unexpected engine error; demoted to the fallback.
	HealthDegraded
)

var healthNames = [...]string{"ok", "retried", "recovered", "exhausted", "timed-out", "degraded"}

func (s HealthStatus) String() string {
	if int(s) < len(healthNames) {
		return healthNames[s]
	}
	return fmt.Sprintf("status(%d)", s)
}

// ClusterHealth reports how one cluster's FSCS engine fared: the final
// status, how many ladder attempts ran, the wall-clock spent across them,
// and — for failures — the captured error and panic stack.
type ClusterHealth struct {
	ClusterID int
	Status    HealthStatus
	Attempts  int
	Elapsed   time.Duration
	// Err is the last attempt's failure: fscs.ErrBudget (wrapped) on
	// exhaustion, a context error on deadline/cancellation, a synthesized
	// error for panics. Nil when the final attempt succeeded.
	Err error
	// Stack is the captured stack trace of the last panicked attempt.
	Stack string
	// Cached reports that the engine was imported from Config.Cache
	// instead of solved: the cluster's fingerprint hit a stored result
	// (bit-for-bit identical to a fresh solve, per Theorem 6).
	Cached bool
	// Demoted reports that no engine survived: queries on this cluster's
	// pointers answer from the flow-insensitive Andersen fallback (still
	// sound, flow-insensitively precise).
	Demoted bool
}

// Outcome is the one-word disposition used by traces and metrics:
// "cached" (imported from the result cache), "demoted" (fell back to the
// flow-insensitive answer) or "solved" (an engine ran to completion).
func (h ClusterHealth) Outcome() string {
	switch {
	case h.Cached:
		return "cached"
	case h.Demoted:
		return "demoted"
	default:
		return "solved"
	}
}

// defaultRetries is the degradation ladder's default: one retry with
// halved MaxCond and budget before demotion.
const defaultRetries = 1

func ladderRetries(n int) int {
	switch {
	case n < 0:
		return 0
	case n == 0:
		return defaultRetries
	default:
		return n
	}
}

// ctxErr reports ctx's failure, treating an already-passed deadline as
// exceeded even when the context's timer has not fired yet — keeps
// nanosecond (test) deadlines deterministic.
func ctxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d, ok := ctx.Deadline(); ok && !time.Now().Before(d) {
		return context.DeadlineExceeded
	}
	return nil
}

// runAttempt builds and runs one engine, converting a panic anywhere in
// engine construction or the worklist loops into an error plus captured
// stack — the isolation boundary that keeps one broken cluster from
// taking down the whole analysis.
func runAttempt(prog *ir.Program, cg *callgraph.Graph, sa *steens.Analysis,
	c *cluster.Cluster, opts []fscs.Option) (eng *fscs.Engine, err error, stack string) {
	defer func() {
		if r := recover(); r != nil {
			eng = nil
			err = fmt.Errorf("core: cluster %d engine panicked: %v", c.ID, r)
			stack = string(debug.Stack())
		}
	}()
	eng = fscs.NewEngine(prog, cg, sa, c, opts...)
	return eng, eng.Run(), ""
}

// RunCluster runs one cluster's FSCS engine under the fault-tolerant
// degradation ladder: each attempt gets cfg.ClusterTimeout of wall clock
// (the paper's 15-minute analogue) and cfg.ClusterBudget tuples; on
// budget exhaustion, deadline or panic the cluster is retried with halved
// MaxCond and budget (cfg.Retries times, default one), and after the last
// failure it is demoted — the returned engine is nil and callers must
// answer its queries from the flow-insensitive fallback. ctx cancels the
// remaining attempts (nil means background). fallback may be nil.
func RunCluster(ctx context.Context, prog *ir.Program, cg *callgraph.Graph, sa *steens.Analysis,
	c *cluster.Cluster, fallback *andersen.Analysis, cfg Config) (*fscs.Engine, ClusterHealth) {
	if ctx == nil {
		ctx = context.Background()
	}
	worker := obs.WorkerFrom(ctx)
	tid := obs.WorkerTID(worker)
	sp := cfg.Tracer.Start("cluster", fmt.Sprintf("cluster-%d", c.ID), tid).
		Arg("cluster", c.ID).Arg("size", c.Size()).Arg("worker", worker)
	eng, h := runLadder(ctx, prog, cg, sa, c, fallback, cfg, tid)
	sp.Arg("attempts", h.Attempts).
		Arg("status", h.Status.String()).
		Arg("outcome", h.Outcome()).
		End()
	recordClusterMetrics(cfg.Metrics, c, h)
	return eng, h
}

// recordClusterMetrics books one finished cluster into the registry.
func recordClusterMetrics(m *obs.Metrics, c *cluster.Cluster, h ClusterHealth) {
	if m == nil {
		return
	}
	m.Counter("bootstrap_clusters_"+h.Outcome()+"_total",
		"clusters by final outcome (solved, cached, demoted)").Add(1)
	if h.Attempts > 1 {
		m.Counter("bootstrap_ladder_retries_total",
			"degradation-ladder retry attempts across all clusters").Add(int64(h.Attempts - 1))
	}
	m.Histogram("bootstrap_cluster_solve_seconds",
		"wall-clock per cluster across all ladder attempts", obs.SecondsBuckets).
		Observe(h.Elapsed.Seconds())
	m.Histogram("bootstrap_cluster_size_pointers",
		"pointers per scheduled cluster", obs.SizeBuckets).
		Observe(float64(c.Size()))
}

// runLadder is RunCluster's body: the cache probe plus the degradation
// ladder itself, emitting attempt and cache spans on the worker's track.
func runLadder(ctx context.Context, prog *ir.Program, cg *callgraph.Graph, sa *steens.Analysis,
	c *cluster.Cluster, fallback *andersen.Analysis, cfg Config, tid int) (*fscs.Engine, ClusterHealth) {
	tr := cfg.Tracer
	budget := cfg.ClusterBudget
	maxCond := maxCondOrDefault(cfg.MaxCond)
	attempts := 1 + ladderRetries(cfg.Retries)
	h := ClusterHealth{ClusterID: c.ID}
	start := time.Now()

	// Consult the result cache before paying for a solve. The fingerprint
	// covers everything the engine's result can depend on (slice, reachable
	// CFG skeletons, Steensgaard structure, precision knobs), so a hit
	// imports the stored summaries and value sets directly. Armed fault
	// injection bypasses the cache: injected behavior is attempt-local by
	// design. A plan with nothing armed (a live server whose chaos mode is
	// off) leaves caching on.
	var cn *cache.Canon
	useCache := cfg.Cache != nil && !cfg.Faults.Active()
	if useCache {
		psp := tr.Start("cache", "cache.probe", tid).Arg("cluster", c.ID)
		cn = cache.NewCanon(prog, sa, cg, c, cache.Params{MaxCond: maxCond, Budget: budget})
		data, ok := cfg.Cache.Get(cn.Key())
		psp.Arg("hit", ok).End()
		if ok {
			isp := tr.Start("cache", "cache.import", tid).
				Arg("cluster", c.ID).Arg("bytes", len(data))
			eng, err := fscs.ImportEngine(prog, cg, sa, c, cn, data,
				fscs.WithFallback(fallback),
				fscs.WithBudget(budget),
				fscs.WithMaxCond(maxCond),
				fscs.WithInterning(!cfg.DisableInterning),
				fscs.WithMetrics(cfg.Metrics))
			isp.Arg("ok", err == nil).End()
			if err == nil {
				h.Status = HealthOK
				h.Cached = true
				h.Elapsed = time.Since(start)
				return eng, h
			}
			// Undecodable payload: demote the hit to a miss and solve.
			cfg.Cache.Corrupt(cn.Key())
		}
	}
	anyPanic := false     // some attempt panicked
	lastPanicked := false // the most recent attempt panicked
	for attempt := 0; attempt < attempts; attempt++ {
		if err := ctxErr(ctx); err != nil {
			// The whole run is cancelled or out of time: don't burn
			// retries on a deadline that can never be met.
			h.Err = err
			lastPanicked = false
			break
		}
		attemptCtx, cancel := ctx, context.CancelFunc(func() {})
		if cfg.ClusterTimeout > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, cfg.ClusterTimeout)
		}
		opts := []fscs.Option{
			fscs.WithFallback(fallback),
			fscs.WithBudget(budget),
			fscs.WithMaxCond(maxCond),
			fscs.WithContext(attemptCtx),
			fscs.WithInterning(!cfg.DisableInterning),
			fscs.WithMetrics(cfg.Metrics),
		}
		if cfg.Faults != nil {
			if hook := cfg.Faults.Hook(c.ID); hook != nil {
				opts = append(opts, fscs.WithHook(hook))
			}
		}
		asp := tr.Start("cluster", "attempt", tid).
			Arg("cluster", c.ID).Arg("attempt", attempt).
			Arg("budget", budget).Arg("max_cond", maxCond)
		eng, err, stack := runAttempt(prog, cg, sa, c, opts)
		cancel()
		if err == nil {
			asp.Arg("ok", true).End()
		} else {
			asp.Arg("ok", false).Arg("error", err.Error()).End()
		}
		h.Attempts = attempt + 1
		if err == nil {
			// The solve is complete: shed the attempt's context and fault
			// hook so later query-driven computation on this engine cannot
			// abort on the long-dead attempt deadline (or trip a fault
			// that was injected into the solve).
			eng.Detach()
			h.Err = nil
			h.Elapsed = time.Since(start)
			switch {
			case attempt == 0:
				h.Status = HealthOK
				// Only a clean first attempt is stored: retried engines ran
				// with halved knobs, and the fingerprint keys the originals.
				if useCache {
					if payload, ok := eng.ExportState(cn); ok {
						ssp := tr.Start("cache", "cache.store", tid).
							Arg("cluster", c.ID).Arg("bytes", len(payload))
						cfg.Cache.Put(cn.Key(), payload)
						ssp.End()
					}
				}
			case anyPanic:
				h.Status = HealthRecovered
			default:
				h.Status = HealthRetried
			}
			return eng, h
		}
		h.Err = err
		lastPanicked = stack != ""
		if lastPanicked {
			h.Stack = stack
			anyPanic = true
		}
		// Walk down the ladder: the retry runs cheaper, trading condition
		// width and budget for a chance to finish.
		if budget > 1 {
			budget /= 2
		}
		if maxCond > 1 {
			maxCond /= 2
		}
	}
	// Every attempt failed (or the run deadline expired first): demote
	// permanently to the flow-insensitive answer.
	h.Elapsed = time.Since(start)
	h.Demoted = true
	switch {
	case lastPanicked:
		h.Status = HealthDegraded
	case errors.Is(h.Err, fscs.ErrBudget):
		h.Status = HealthExhausted
	case errors.Is(h.Err, context.DeadlineExceeded) || errors.Is(h.Err, context.Canceled):
		h.Status = HealthTimedOut
	default:
		h.Status = HealthDegraded
	}
	return nil, h
}
