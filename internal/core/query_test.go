package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"bootstrap/internal/obs"
)

func lazyConfig() Config {
	return Config{Mode: ModeAndersen, Workers: 2, AndersenThreshold: 2, Lazy: true}
}

// TestContextQueriesMatchEager: the context-first API on a lazy analysis
// must agree with the classic API on an eager one, pair by pair.
func TestContextQueriesMatchEager(t *testing.T) {
	lazy, err := AnalyzeSource(testProgram, lazyConfig())
	if err != nil {
		t.Fatal(err)
	}
	eager, err := AnalyzeSource(testProgram, Config{Mode: ModeAndersen, Workers: 1, AndersenThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	exit := exitLoc(eager)
	ctx := context.Background()
	pairs := [][2]string{
		{"x", "y"}, {"x", "p"}, {"y", "p"}, {"l1", "l2"}, {"x", "l1"},
		{"a", "b"}, {"px", "x"},
	}
	for _, pair := range pairs {
		p, q := v(t, lazy, pair[0]), v(t, lazy, pair[1])
		got, precise := lazy.MayAliasContext(ctx, p, q, exit)
		want := eager.MayAlias(v(t, eager, pair[0]), v(t, eager, pair[1]), exit)
		if got != want {
			t.Errorf("MayAliasContext(%s,%s) = %v, eager MayAlias = %v", pair[0], pair[1], got, want)
		}
		if !precise {
			t.Errorf("MayAliasContext(%s,%s) imprecise under background context", pair[0], pair[1])
		}
	}
	for _, name := range []string{"x", "y", "p", "px", "l1"} {
		p := v(t, lazy, name)
		got, _ := lazy.PointsToContext(ctx, p, exit)
		want, _ := eager.PointsTo(v(t, eager, name), exit)
		if len(got) != len(want) {
			t.Errorf("PointsToContext(%s) = %v, eager = %v", name, got, want)
			continue
		}
		for i := range got {
			if lazy.Prog.VarName(got[i]) != eager.Prog.VarName(want[i]) {
				t.Errorf("PointsToContext(%s)[%d] = %s, eager %s",
					name, i, lazy.Prog.VarName(got[i]), eager.Prog.VarName(want[i]))
			}
		}
	}
}

// TestEnsureClusterSingleFlight: 50 concurrent first touches of the same
// cluster must run exactly one solve.
func TestEnsureClusterSingleFlight(t *testing.T) {
	m := obs.NewMetrics()
	cfg := lazyConfig()
	cfg.Metrics = m
	a, err := AnalyzeSource(testProgram, cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := v(t, a, "x")
	ids := a.ClustersOf(x)
	if len(ids) == 0 {
		t.Fatal("x not covered by any cluster")
	}
	const n = 50
	var wg sync.WaitGroup
	engines := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			eng, _, final := a.EnsureCluster(context.Background(), ids[0])
			engines[i] = final && eng != nil
		}(i)
	}
	wg.Wait()
	for i, ok := range engines {
		if !ok {
			t.Fatalf("caller %d did not get the solved engine", i)
		}
	}
	if solved := m.Counter("bootstrap_clusters_solved_total", "").Value(); solved != 1 {
		t.Errorf("%d solves for one cluster under 50 concurrent callers", solved)
	}
	if !a.ClusterSolved(ids[0]) {
		t.Errorf("ClusterSolved false after solve")
	}
	if qh := a.QueryHealth(); len(qh) != 1 || qh[0].ClusterID != ids[0] {
		t.Errorf("QueryHealth = %+v, want one record for cluster %d", qh, ids[0])
	}
}

// TestExpiredContextDegrades: an already-dead context cannot wait for a
// solve; the answer must come from the fallback, flagged imprecise, and
// must still be sound (a superset of the true may-alias relation).
func TestExpiredContextDegrades(t *testing.T) {
	a, err := AnalyzeSource(testProgram, lazyConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	exit := exitLoc(a)
	x, p := v(t, a, "x"), v(t, a, "p")
	got, precise := a.MayAliasContext(ctx, x, p, exit)
	// x,p do alias at exit; Andersen must agree (soundness).
	if !got {
		t.Errorf("degraded MayAlias(x,p) = false; fallback unsound")
	}
	if precise {
		// The first touch may occasionally finish before the expired
		// context is observed (the solve is detached); in that case the
		// full-precision answer is fine. But a degraded answer must be
		// flagged. Only assert when the cluster is still unsolved.
		for _, id := range a.ClustersOf(x) {
			if !a.ClusterSolved(id) {
				t.Errorf("precise=true while cluster %d still unsolved", id)
			}
		}
	}
	// The detached solve keeps going: the cluster must land solved and a
	// later query must be precise.
	deadline := time.Now().Add(10 * time.Second)
	for {
		all := true
		for _, id := range a.ClustersOf(x) {
			if !a.ClusterSolved(id) {
				all = false
			}
		}
		if all {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("detached solve never completed")
		}
		time.Sleep(time.Millisecond)
	}
	got, precise = a.MayAliasContext(context.Background(), x, p, exit)
	if !got || !precise {
		t.Errorf("after detached solve: MayAlias(x,p) = (%v, precise=%v), want (true, true)", got, precise)
	}
}

// TestNeedsSolvePredicates: the admission-routing predicates must say
// "no solve" exactly when the context queries answer structurally.
func TestNeedsSolvePredicates(t *testing.T) {
	a, err := AnalyzeSource(testProgram, lazyConfig())
	if err != nil {
		t.Fatal(err)
	}
	x, y, l1 := v(t, a, "x"), v(t, a, "y"), v(t, a, "l1")
	if a.MayAliasNeedsSolve(x, x) {
		t.Errorf("identity pair needs a solve")
	}
	if a.MayAliasNeedsSolve(x, l1) {
		t.Errorf("partition-disjoint pair needs a solve")
	}
	if !a.MayAliasNeedsSolve(x, y) {
		t.Errorf("cold same-partition pair needs no solve")
	}
	if !a.PointsToNeedsSolve(x) {
		t.Errorf("cold covered pointer needs no solve")
	}
	exit := exitLoc(a)
	a.MayAliasContext(context.Background(), x, y, exit)
	if a.MayAliasNeedsSolve(x, y) {
		t.Errorf("pair still needs a solve after its clusters solved")
	}
	if a.PointsToNeedsSolve(x) {
		t.Errorf("pointer still needs a solve after its clusters solved")
	}
}

// TestSolveStatsAndCoveredPointers sanity-checks the serve-facing
// accessors.
func TestSolveStatsAndCoveredPointers(t *testing.T) {
	a, err := AnalyzeSource(testProgram, lazyConfig())
	if err != nil {
		t.Fatal(err)
	}
	covered := a.CoveredPointers()
	if len(covered) == 0 {
		t.Fatal("no covered pointers")
	}
	names := map[string]bool{}
	for _, p := range covered {
		names[a.Prog.VarName(p)] = true
	}
	for _, want := range []string{"x", "y"} {
		if !names[want] {
			t.Errorf("%s missing from CoveredPointers", want)
		}
	}
	if solved, demoted := a.SolveStats(); solved != 0 || demoted != 0 {
		t.Errorf("fresh lazy analysis: SolveStats = (%d, %d), want (0, 0)", solved, demoted)
	}
	x := v(t, a, "x")
	a.EnsureCluster(context.Background(), a.ClustersOf(x)[0])
	if solved, _ := a.SolveStats(); solved != 1 {
		t.Errorf("after one EnsureCluster: solved = %d, want 1", solved)
	}
}
