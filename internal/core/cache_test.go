package core

import (
	"os"
	"path/filepath"
	"testing"

	"bootstrap/internal/cache"
	"bootstrap/internal/frontend"
)

// Two structurally distinct modules in disjoint Steensgaard partitions.
// main calls both, so main is in every cluster's reachable-function set:
// an edit inside a module function must invalidate exactly the clusters
// of that module, while an edit in main would invalidate everything.
const cacheProgA = `
	int a, b;
	int *x, *y;
	lock m1, m2;
	lock *l1, *l2;
	void ints() {
		x = &a;
		y = x;
		y = &b;
	}
	void locks() {
		l1 = &m1;
		l2 = l1;
	}
	void main() {
		ints();
		locks();
	}
`

// cacheProgB is cacheProgA with ONE statement added inside locks().
const cacheProgB = `
	int a, b;
	int *x, *y;
	lock m1, m2;
	lock *l1, *l2;
	void ints() {
		x = &a;
		y = x;
		y = &b;
	}
	void locks() {
		l1 = &m1;
		l2 = l1;
		l2 = &m2;
	}
	void main() {
		ints();
		locks();
	}
`

// cacheProgC is cacheProgA with declarations and function definitions
// reordered, renumbering every VarID, FuncID and Loc without changing
// the program's meaning.
const cacheProgC = `
	lock *l1, *l2;
	lock m1, m2;
	int *x, *y;
	int a, b;
	void locks() {
		l1 = &m1;
		l2 = l1;
	}
	void ints() {
		x = &a;
		y = x;
		y = &b;
	}
	void main() {
		ints();
		locks();
	}
`

func cacheCfg(c *cache.Cache) Config {
	return Config{Mode: ModeAndersen, Workers: 1, Cache: c}
}

func TestCacheColdThenWarmIdentical(t *testing.T) {
	shared := cache.New(cache.Options{})
	cold, err := AnalyzeSource(cacheProgA, cacheCfg(shared))
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheStats.Hits != 0 || cold.CacheStats.Misses != int64(len(cold.Health)) {
		t.Errorf("cold run stats = %+v, want 0 hits / %d misses", cold.CacheStats, len(cold.Health))
	}
	warm, err := AnalyzeSource(cacheProgA, cacheCfg(shared))
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheStats.Misses != 0 || warm.CacheStats.Hits != int64(len(warm.Health)) {
		t.Errorf("warm run stats = %+v, want %d hits / 0 misses", warm.CacheStats, len(warm.Health))
	}
	for _, h := range warm.Health {
		if !h.Cached || h.Status != HealthOK {
			t.Errorf("warm cluster %d: health = %+v, want cached+ok", h.ClusterID, h)
		}
	}
	if got, want := aliasDump(warm), aliasDump(cold); got != want {
		t.Errorf("warm results diverge from fresh\n--- fresh\n%s--- warm\n%s", want, got)
	}
}

// TestCacheEditInvalidatesExactly is the incremental acceptance check: a
// one-statement edit inside locks() re-solves exactly the clusters whose
// slice reaches locks; the int-pointer clusters still hit.
func TestCacheEditInvalidatesExactly(t *testing.T) {
	shared := cache.New(cache.Options{})
	if _, err := AnalyzeSource(cacheProgA, cacheCfg(shared)); err != nil {
		t.Fatal(err)
	}
	b, err := AnalyzeSource(cacheProgB, cacheCfg(shared))
	if err != nil {
		t.Fatal(err)
	}
	cachedByID := map[int]bool{}
	for _, h := range b.Health {
		cachedByID[h.ClusterID] = h.Cached
	}
	lockClusters := map[int]bool{}
	for _, id := range b.ClustersOf(v(t, b, "l1")) {
		lockClusters[id] = true
		if cachedByID[id] {
			t.Errorf("lock cluster %d hit the cache across the edit in locks()", id)
		}
	}
	for _, id := range b.ClustersOf(v(t, b, "x")) {
		if !cachedByID[id] {
			t.Errorf("int cluster %d missed: the edit in locks() cannot affect it", id)
		}
	}
	if len(lockClusters) == 0 {
		t.Fatal("no clusters contain l1")
	}
	if got, want := b.CacheStats.Misses, int64(len(lockClusters)); got != want {
		t.Errorf("misses = %d, want %d (exactly the clusters reaching the edit)", got, want)
	}
	if got, want := b.CacheStats.Hits, int64(len(b.Health))-int64(len(lockClusters)); got != want {
		t.Errorf("hits = %d, want %d", got, want)
	}
}

// TestCacheRenumberingStillHits: the fingerprint is canonical, so a pure
// VarID/FuncID/Loc renumbering of an unchanged program hits on every
// cluster.
func TestCacheRenumberingStillHits(t *testing.T) {
	shared := cache.New(cache.Options{})
	a, err := AnalyzeSource(cacheProgA, cacheCfg(shared))
	if err != nil {
		t.Fatal(err)
	}
	c, err := AnalyzeSource(cacheProgC, cacheCfg(shared))
	if err != nil {
		t.Fatal(err)
	}
	// Premise: the reordering really renumbered the variables.
	if a.Prog.VarByName["x"] == c.Prog.VarByName["x"] {
		t.Fatal("test premise broken: reordered program kept the same VarIDs")
	}
	if c.CacheStats.Misses != 0 || c.CacheStats.Hits != int64(len(c.Health)) {
		t.Errorf("renumbered run stats = %+v, want %d hits / 0 misses", c.CacheStats, len(c.Health))
	}
	// Same aliasing facts, by name.
	exit := exitLoc(c)
	if !c.MustAlias(v(t, c, "l1"), v(t, c, "l2"), exit) {
		t.Error("renumbered warm run lost l1/l2 must-alias")
	}
	if c.MayAlias(v(t, c, "x"), v(t, c, "l1"), exit) {
		t.Error("renumbered warm run aliases across partitions")
	}
}

// TestCacheDiskCorruptionFallsBack: truncating every on-disk entry turns
// the warm run into a cold one — misses, never errors — with identical
// results.
func TestCacheDiskCorruptionFallsBack(t *testing.T) {
	dir := t.TempDir()
	cold, err := AnalyzeSource(cacheProgA, cacheCfg(cache.New(cache.Options{Dir: dir})))
	if err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.bsc"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no disk entries written (err=%v)", err)
	}
	for _, path := range entries {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
			t.Fatal(err)
		}
	}
	warm, err := AnalyzeSource(cacheProgA, cacheCfg(cache.New(cache.Options{Dir: dir})))
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheStats.Hits != 0 || warm.CacheStats.Misses != int64(len(warm.Health)) {
		t.Errorf("corrupt-disk run stats = %+v, want all misses", warm.CacheStats)
	}
	if got, want := aliasDump(warm), aliasDump(cold); got != want {
		t.Errorf("corrupt-disk run diverges from fresh\n--- fresh\n%s--- got\n%s", want, got)
	}
}

// TestReanalyzeWarmStart: Reanalyze without a configured cache warms a
// fresh one from the previous analysis' live engines, so an unchanged
// program is all hits and a one-statement edit re-solves only the
// affected clusters.
func TestReanalyzeWarmStart(t *testing.T) {
	prev, err := AnalyzeSource(cacheProgA, Config{Mode: ModeAndersen, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	same, err := frontend.LowerSource(cacheProgA)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Reanalyze(prev, same)
	if err != nil {
		t.Fatal(err)
	}
	if a2.CacheStats.Misses != 0 || a2.CacheStats.Hits != int64(len(a2.Health)) {
		t.Errorf("unchanged reanalysis stats = %+v, want all hits", a2.CacheStats)
	}
	if got, want := aliasDump(a2), aliasDump(prev); got != want {
		t.Errorf("reanalysis of the unchanged program diverges\n--- prev\n%s--- got\n%s", want, got)
	}

	edited, err := frontend.LowerSource(cacheProgB)
	if err != nil {
		t.Fatal(err)
	}
	a3, err := Reanalyze(prev, edited)
	if err != nil {
		t.Fatal(err)
	}
	if a3.CacheStats.Hits == 0 {
		t.Error("edited reanalysis should still hit the unaffected clusters")
	}
	if a3.CacheStats.Misses == 0 {
		t.Error("edited reanalysis should re-solve the affected clusters")
	}
	fresh, err := AnalyzeSource(cacheProgB, Config{Mode: ModeAndersen, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := aliasDump(a3), aliasDump(fresh); got != want {
		t.Errorf("edited reanalysis diverges from a fresh analysis\n--- fresh\n%s--- got\n%s", want, got)
	}
}
