package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"bootstrap/internal/andersen"
	"bootstrap/internal/cache"
	"bootstrap/internal/callgraph"
	"bootstrap/internal/cluster"
	"bootstrap/internal/frontend"
	"bootstrap/internal/fscs"
	"bootstrap/internal/ir"
	"bootstrap/internal/obs"
	"bootstrap/internal/oneflow"
	"bootstrap/internal/steens"
)

// Plan is the front-end's deterministic product: everything the eager
// per-cluster FSCS stage needs before any engine has run — the lowered
// (devirtualized) program, the Steensgaard base analysis, the
// flow-insensitive fallback, the call graph, and the alias cover with
// its final cluster IDs.
//
// The plan is the scheduler seam for remote execution: two processes
// that BuildPlan the same source under the same Config compute
// bit-identical covers with identical cluster IDs (every builder is
// deterministic), so a distributed coordinator can hand out bare
// cluster IDs as work items and a worker can resolve them against its
// own plan. Package dist is built entirely on this property.
type Plan struct {
	Prog      *ir.Program
	Steens    *steens.Analysis
	Andersen  *andersen.Analysis
	CallGraph *callgraph.Graph
	Clusters  []*cluster.Cluster

	// Timing covers the front-end stages (Steensgaard, One-Flow,
	// Clustering); AnalyzeFromPlan copies it into the Analysis and adds
	// the FSCS stage.
	Timing Timing
}

// Cluster returns the plan's cluster with the given ID, or nil. Cover
// builders assign IDs densely in cover order, so this is an index probe
// with a defensive scan fallback.
func (pl *Plan) Cluster(id int) *cluster.Cluster {
	if id >= 0 && id < len(pl.Clusters) && pl.Clusters[id].ID == id {
		return pl.Clusters[id]
	}
	for _, c := range pl.Clusters {
		if c.ID == id {
			return c
		}
	}
	return nil
}

// planDefaults normalizes the config knobs both BuildPlan and the
// analyze entry points depend on.
func planDefaults(cfg *Config) {
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.AndersenThreshold == 0 {
		cfg.AndersenThreshold = cluster.DefaultAndersenThreshold
	}
}

// steensFront runs the Steensgaard base stage: analyze, devirtualize
// indirect calls with the resolved targets, and re-analyze when the
// program changed.
func steensFront(prog *ir.Program, cfg Config) (*steens.Analysis, error) {
	sa := steens.Analyze(prog, cfg.steensOpts()...)
	if frontend.HasIndirectCalls(prog) {
		if err := frontend.Devirtualize(prog, func(_ ir.Loc, fp ir.VarID) []ir.FuncID {
			return sa.Targets(fp)
		}); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		sa = steens.Analyze(prog, cfg.steensOpts()...)
	}
	return sa, nil
}

// newAnalysis allocates the Analysis shell with its query-state maps.
func newAnalysis(prog *ir.Program, cfg Config) *Analysis {
	return &Analysis{
		Prog:        prog,
		cfg:         cfg,
		mu:          &sync.Mutex{},
		engines:     map[int]*fscs.Engine{},
		selected:    map[int]*cluster.Cluster{},
		byPointer:   map[ir.VarID][]int{},
		solving:     map[int]*inflight{},
		queryHealth: map[int]ClusterHealth{},
	}
}

// BuildPlan runs the serial front-end of the cascade — Steensgaard (plus
// devirtualization), optional One-Flow, the alias cover, the
// flow-insensitive fallback and the call graph — and returns the plan
// without running any per-cluster engine. AnalyzeProgramContext is
// BuildPlan + AnalyzeFromPlan (modulo the pipelined fast path, which
// overlaps the two on purpose).
func BuildPlan(ctx context.Context, prog *ir.Program, cfg Config) (*Plan, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	planDefaults(&cfg)
	pl := &Plan{Prog: prog}
	tr := cfg.Tracer
	tr.NameThread(obs.TIDMain, "cascade")

	t0 := time.Now()
	sp := tr.Start("phase", "steensgaard", obs.TIDMain)
	sa, err := steensFront(prog, cfg)
	if err != nil {
		sp.End()
		return nil, err
	}
	pl.Steens = sa
	sp.Arg("partitions", sa.NumPartitions()).Arg("max_partition", sa.MaxPartitionSize()).End()
	sa.Record(cfg.Metrics)
	pl.Timing.Steensgaard = time.Since(t0)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: analysis cancelled: %w", err)
	}

	var of *oneflow.Analysis
	if cfg.UseOneFlow {
		t := time.Now()
		sp := tr.Start("phase", "oneflow", obs.TIDMain)
		of = oneflow.AnalyzeWith(prog, sa)
		sp.End()
		pl.Timing.OneFlow = time.Since(t)
	}

	t1 := time.Now()
	sp = tr.Start("phase", "clustering", obs.TIDMain).Arg("mode", cfg.Mode.String())
	switch cfg.Mode {
	case ModeNone:
		pl.Clusters = []*cluster.Cluster{cluster.BuildWhole(prog, sa)}
	case ModeSteensgaard:
		pl.Clusters = cluster.BuildSteensgaard(prog, sa)
	case ModeAndersen:
		threshold := cfg.AndersenThreshold
		if of != nil {
			pl.Clusters = buildWithOneFlow(prog, sa, of, threshold, cfg.andersenOpts())
		} else {
			pl.Clusters = cluster.BuildAndersen(prog, sa, threshold, cfg.andersenOpts()...)
		}
	case ModeSyntactic:
		pl.Clusters = cluster.BuildSyntactic(prog, sa)
	default:
		sp.End()
		return nil, fmt.Errorf("core: unknown mode %d", cfg.Mode)
	}
	sp.Arg("clusters", len(pl.Clusters)).End()
	pl.Timing.Clustering = time.Since(t1)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: analysis cancelled: %w", err)
	}

	sp = tr.Start("phase", "fallback", obs.TIDMain)
	pl.Andersen = andersen.Analyze(prog,
		append(cfg.andersenOpts(), andersen.WithTracer(tr, obs.TIDMain))...)
	pl.CallGraph = callgraph.Build(prog)
	sp.End()
	pl.Andersen.SolverStats().Record(cfg.Metrics)
	return pl, nil
}

// AnalyzeFromPlan runs the eager per-cluster FSCS stage over an already
// built plan, under the fault-tolerant scheduler, and returns the full
// query facade. This is the serial Stage 2 of AnalyzeProgramContext
// made callable on its own: the distributed coordinator uses it as the
// merge pass — with the shard fleet's shared result cache in
// cfg.Cache, every worker-solved cluster imports instead of solving,
// and any cluster the fleet failed (lost workers, expired leases)
// simply solves locally through the usual retry-then-demote ladder.
func AnalyzeFromPlan(ctx context.Context, pl *Plan, cfg Config) (*Analysis, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	planDefaults(&cfg)
	a := newAnalysis(pl.Prog, cfg)
	a.Steens = pl.Steens
	a.Andersen = pl.Andersen
	a.CallGraph = pl.CallGraph
	a.Clusters = pl.Clusters
	a.Timing = pl.Timing

	var cacheBefore cache.Stats
	if cfg.Cache != nil {
		cacheBefore = cfg.Cache.Stats()
	}
	finish := func() *Analysis {
		if cfg.Cache != nil {
			a.CacheStats = cfg.Cache.Stats().Sub(cacheBefore)
		}
		return a
	}
	tr := cfg.Tracer
	prog, sa := pl.Prog, pl.Steens

	// Demand-driven selection, then the hybrid size cut-off: oversized
	// clusters keep the cheap flow-insensitive answer.
	work := a.Clusters
	if cfg.Demand != nil {
		work = cluster.SelectClusters(a.Clusters, prog, cfg.Demand)
	}
	if cfg.HybridSizeLimit > 0 {
		kept := work[:0:0]
		for _, c := range work {
			if c.Size() <= cfg.HybridSizeLimit {
				kept = append(kept, c)
			}
		}
		work = kept
	}
	for _, c := range work {
		a.selected[c.ID] = c
		for _, p := range c.Pointers {
			a.byPointer[p] = append(a.byPointer[p], c.ID)
		}
	}

	if cfg.Lazy {
		// Engines are created (and compute) on first query.
		return finish(), nil
	}

	// Stage 2: the precise per-cluster FSCS analyses, in parallel, under
	// the fault-tolerant scheduler: each cluster gets a wall-clock
	// deadline and panic isolation, and on failure walks the degradation
	// ladder (retry with halved knobs, then demote to the fallback) so
	// one hard or broken cluster degrades only itself, never the run.
	runCtx := ctx
	if cfg.RunTimeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, cfg.RunTimeout)
		defer cancel()
	}
	a.Timing.PerCluster = make([]time.Duration, len(work))
	engines := make([]*fscs.Engine, len(work))
	healths := make([]ClusterHealth, len(work))

	tw := time.Now()
	fsp := tr.Start("phase", "fscs", obs.TIDMain).
		Arg("clusters", len(work)).Arg("workers", cfg.Workers)
	if cfg.Workers == 1 {
		// Single-worker runs execute inline in cover order — no goroutine
		// scheduling, so a Workers=1 run (and its trace) is deterministic.
		tr.NameThread(obs.WorkerTID(0), "fscs-worker-0")
		wctx := obs.ContextWithWorker(runCtx, 0)
		for i, c := range work {
			engines[i], healths[i] = RunCluster(wctx, prog, a.CallGraph, sa, c, a.Andersen, cfg)
			a.Timing.PerCluster[i] = healths[i].Elapsed
		}
	} else {
		// Workers are identities, not just permits: each goroutine borrows
		// a worker id from the pool so its spans land on that worker's
		// trace track, and the pool's capacity bounds the parallelism the
		// way the former semaphore did.
		var wg sync.WaitGroup
		ids := make(chan int, cfg.Workers)
		for w := 0; w < cfg.Workers; w++ {
			ids <- w
			tr.NameThread(obs.WorkerTID(w), fmt.Sprintf("fscs-worker-%d", w))
		}
		for i, c := range work {
			wg.Add(1)
			go func(i int, c *cluster.Cluster) {
				defer wg.Done()
				w := <-ids
				defer func() { ids <- w }()
				wctx := obs.ContextWithWorker(runCtx, w)
				engines[i], healths[i] = RunCluster(wctx, prog, a.CallGraph, sa, c, a.Andersen, cfg)
				a.Timing.PerCluster[i] = healths[i].Elapsed
			}(i, c)
		}
		wg.Wait()
	}
	a.Timing.Wall = time.Since(tw)
	fsp.End()
	if err := ctx.Err(); err != nil {
		// Explicit caller cancellation aborts; cfg deadlines never land
		// here (runCtx expiring only degrades clusters).
		return nil, fmt.Errorf("core: analysis cancelled: %w", err)
	}
	for i, c := range work {
		if engines[i] != nil {
			a.engines[c.ID] = engines[i]
		} else {
			// Permanently demoted: queries on this cluster's pointers
			// answer from the Andersen fallback (the HybridSizeLimit
			// path, generalized). Deselect it so lazy queries cannot
			// resurrect the engine.
			delete(a.selected, c.ID)
		}
		a.Timing.FSCS += a.Timing.PerCluster[i]
		a.Health = append(a.Health, healths[i])
	}
	sort.Slice(a.Health, func(i, j int) bool { return a.Health[i].ClusterID < a.Health[j].ClusterID })
	return finish(), nil
}
