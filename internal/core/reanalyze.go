package core

import (
	"context"

	"bootstrap/internal/cache"
	"bootstrap/internal/ir"
)

// Reanalyze re-runs the bootstrap cascade on newProg with prev's
// configuration, against a cache warmed with prev's per-cluster results.
// Clusters of newProg whose slices are equivalent to a cluster of prev
// (same fingerprint — stable under VarID/Loc renumbering) import the
// stored result instead of solving; only clusters actually affected by
// the program change are re-solved. This is the incremental-reanalysis
// mode the clustering makes possible: per Theorem 6 a cluster's result
// depends only on its slice, so an unchanged slice means an unchanged
// result.
//
// When prev already ran with a Config.Cache, that cache is reused as-is
// (prev's solves populated it). Otherwise a fresh in-memory cache is
// created and warmed from prev's live engines.
//
// Reanalyze is also the safety net under ApplyEdit: whenever an edit
// batch changes something the cluster-dirtiness mapping cannot express —
// a function added, removed or rebuilt, a call or return statement
// rewritten (any of which changes a function signature or the shape of
// the call graph), or any change that can alter the cluster cover
// itself — ApplyEdit falls back to this full path and reports
// EditReport.FellBack. The fall-back is still warm: unaffected clusters
// fingerprint-match prev's cached results and import instead of
// solving, so "full" means full cover construction, not full solving.
func Reanalyze(prev *Analysis, newProg *ir.Program) (*Analysis, error) {
	return ReanalyzeContext(context.Background(), prev, newProg)
}

// ReanalyzeContext is Reanalyze under a cancellation context.
func ReanalyzeContext(ctx context.Context, prev *Analysis, newProg *ir.Program) (*Analysis, error) {
	cfg := prev.cfg
	if cfg.Cache == nil {
		cfg.Cache = cache.New(cache.Options{})
		prev.ExportToCache(cfg.Cache)
	}
	return AnalyzeProgramContext(ctx, newProg, cfg)
}

// ExportToCache stores the results of every healthy (HealthOK) cluster
// engine into dst, keyed by the cluster's fingerprint, and returns how
// many were stored. Engines that were retried, recovered or demoted are
// skipped: their state reflects degraded knobs, not the fingerprinted
// configuration. The receiver is usable afterwards; queries are
// unaffected.
func (a *Analysis) ExportToCache(dst *cache.Cache) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	healthy := map[int]bool{}
	for _, h := range a.Health {
		if h.Status == HealthOK {
			healthy[h.ClusterID] = true
		}
	}
	params := cache.Params{
		MaxCond: maxCondOrDefault(a.cfg.MaxCond),
		Budget:  a.cfg.ClusterBudget,
	}
	n := 0
	for id, eng := range a.engines {
		if !healthy[id] {
			continue
		}
		c, ok := a.selected[id]
		if !ok {
			continue
		}
		cn := cache.NewCanon(a.Prog, a.Steens, a.CallGraph, c, params)
		payload, ok := eng.ExportState(cn)
		if !ok {
			continue
		}
		dst.Put(cn.Key(), payload)
		n++
	}
	return n
}
