package core_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"bootstrap/internal/cache"
	"bootstrap/internal/core"
	"bootstrap/internal/frontend"
	"bootstrap/internal/ir"
	"bootstrap/internal/synth"
)

// incrProg lowers a mid-sized synthetic workload: rich enough to produce
// a multi-cluster cover with calls, small enough for the knob matrix.
func incrProg(t testing.TB) *ir.Program {
	t.Helper()
	b, ok := synth.FindBenchmark("sock")
	if !ok {
		t.Fatal("no sock benchmark")
	}
	p, err := frontend.LowerSource(synth.Generate(b, 0.05))
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p
}

// randomStmtEdits picks n single-statement replace/delete edits on
// plain (non-call-bound) copy/addr/load nodes, deterministically from
// rng. Replacements swap Src with the source of another eligible node,
// so operands stay valid without any type bookkeeping.
func randomStmtEdits(p *ir.Program, rng *rand.Rand, n int) []ir.Edit {
	var eligible []ir.Loc
	for _, node := range p.Nodes {
		switch node.Stmt.Op {
		case ir.OpCopy, ir.OpAddr, ir.OpLoad:
			if node.CallLoc == ir.NoLoc {
				eligible = append(eligible, node.Loc)
			}
		}
	}
	if len(eligible) < 2 {
		return nil
	}
	var edits []ir.Edit
	for len(edits) < n {
		loc := eligible[rng.Intn(len(eligible))]
		if rng.Intn(5) == 0 {
			edits = append(edits, ir.Edit{Kind: ir.EditDeleteStmt, Loc: loc})
			continue
		}
		donor := eligible[rng.Intn(len(eligible))]
		st := p.Node(loc).Stmt
		st.Src = p.Node(donor).Stmt.Src
		st.Comment = ""
		edits = append(edits, ir.Edit{Kind: ir.EditReplaceStmt, Loc: loc, Stmt: st})
	}
	return edits
}

// sampleQueries compares PointsTo and MayAlias answers between two
// analyses of the same program at every function exit, over a bounded
// deterministic sample of covered pointers.
func sampleQueries(t *testing.T, tag string, got, want *core.Analysis) {
	t.Helper()
	prog := want.Prog
	ptrs := want.CoveredPointers()
	if len(ptrs) > 40 {
		ptrs = ptrs[:40]
	}
	var locs []ir.Loc
	for _, f := range prog.Funcs {
		locs = append(locs, f.Exit)
	}
	if len(locs) > 8 {
		locs = locs[:8]
	}
	for _, v := range ptrs {
		for _, loc := range locs {
			wp, wprec := want.PointsTo(v, loc)
			gp, gprec := got.PointsTo(v, loc)
			sort.Slice(wp, func(i, j int) bool { return wp[i] < wp[j] })
			sort.Slice(gp, func(i, j int) bool { return gp[i] < gp[j] })
			if wprec != gprec || !reflect.DeepEqual(wp, gp) {
				t.Fatalf("%s: PointsTo(%s, L%d) = %v/%v, fresh %v/%v",
					tag, prog.Var(v).Name, loc, gp, gprec, wp, wprec)
			}
		}
	}
	for i := 0; i+1 < len(ptrs) && i < 20; i += 2 {
		p, q := ptrs[i], ptrs[i+1]
		for _, loc := range locs {
			if got.MayAlias(p, q, loc) != want.MayAlias(p, q, loc) {
				t.Fatalf("%s: MayAlias(%s, %s, L%d) diverged", tag,
					prog.Var(p).Name, prog.Var(q).Name, loc)
			}
		}
	}
}

func diffFingerprints(t *testing.T, tag string, got, want map[int]string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d selected clusters incrementally, %d fresh", tag, len(got), len(want))
	}
	for id, fp := range want {
		if got[id] != fp {
			t.Fatalf("%s: cluster %d fingerprint %s != fresh %s", tag, id, got[id], fp)
		}
	}
}

// TestApplyEditMatchesFreshMatrix is the differential gate: a chain of
// random edit batches, applied incrementally, must leave the analysis
// bit-identical — cluster fingerprints and query answers — to a
// from-scratch analysis of the edited program, across the knob matrix.
func TestApplyEditMatchesFreshMatrix(t *testing.T) {
	matrix := []struct {
		name string
		cfg  core.Config
	}{
		{"default", core.Config{Mode: core.ModeAndersen}},
		{"workers1", core.Config{Mode: core.ModeAndersen, Workers: 1}},
		{"workers8", core.Config{Mode: core.ModeAndersen, Workers: 8}},
		{"no-delta", core.Config{Mode: core.ModeAndersen, DisableDeltaProp: true}},
		{"steens-precise", core.Config{Mode: core.ModeAndersen, SteensPrecise: true}},
		{"warm-cache", core.Config{Mode: core.ModeAndersen, Cache: cache.New(cache.Options{})}},
	}
	for _, m := range matrix {
		t.Run(m.name, func(t *testing.T) {
			prog := incrProg(t)
			a, err := core.AnalyzeProgram(prog, m.cfg)
			if err != nil {
				t.Fatalf("initial analyze: %v", err)
			}
			rng := rand.New(rand.NewSource(7))
			for batch := 0; batch < 3; batch++ {
				tag := fmt.Sprintf("batch%d", batch)
				edits := randomStmtEdits(a.Prog, rng, 5)
				if len(edits) == 0 {
					t.Fatal("no eligible edits")
				}
				a2, rep, err := core.ApplyEdit(a, edits)
				if err != nil {
					t.Fatalf("%s: ApplyEdit: %v", tag, err)
				}
				if rep.FellBack {
					t.Fatalf("%s: unexpected fallback: %s", tag, rep.Reason)
				}
				if rep.Dirty == 0 {
					t.Fatalf("%s: edits dirtied nothing", tag)
				}
				if rep.Reused+rep.Dirty != rep.Clusters {
					t.Fatalf("%s: reused %d + dirty %d != clusters %d",
						tag, rep.Reused, rep.Dirty, rep.Clusters)
				}
				// Fresh run over an independent clone of the edited
				// program, same knobs, cold cache.
				fcfg := m.cfg
				fcfg.Cache = nil
				fresh, err := core.AnalyzeProgram(a2.Prog.Clone(), fcfg)
				if err != nil {
					t.Fatalf("%s: fresh analyze: %v", tag, err)
				}
				diffFingerprints(t, tag, a2.Fingerprints(), fresh.Fingerprints())
				sampleQueries(t, tag, a2, fresh)
				// Old snapshot must keep answering while the new one is
				// live (shared engine lock, transplanted engines).
				if ptrs := a.CoveredPointers(); len(ptrs) > 0 {
					f := a.Prog.Funcs[0]
					a.PointsTo(ptrs[0], f.Exit)
				}
				a = a2
			}
		})
	}
}

// TestApplyEditStructuralFallback: edits ApplyEdit cannot map onto the
// cluster cover degrade to a full Reanalyze with FellBack reported —
// the documented Reanalyze contract.
func TestApplyEditStructuralFallback(t *testing.T) {
	prog := incrProg(t)
	cfg := core.Config{Mode: core.ModeAndersen, Workers: 2}
	a, err := core.AnalyzeProgram(prog, cfg)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	g := a.Prog.Vars[0].ID
	edits := []ir.Edit{{
		Kind: ir.EditAddFunc,
		Spec: &ir.FuncSpec{
			Name:     "injected",
			Stmts:    []ir.Stmt{{Op: ir.OpNullify, Dst: g, Src: ir.NoVar, Callee: ir.NoFunc, FPtr: ir.NoVar}},
			Succs:    [][]int{{}},
			CallLocs: []int{-1},
			Entry:    0,
			Exit:     0,
		},
	}}
	a2, rep, err := core.ApplyEdit(a, edits)
	if err != nil {
		t.Fatalf("ApplyEdit: %v", err)
	}
	if !rep.FellBack || rep.Reason == "" {
		t.Fatalf("adding a function must fall back, got %+v", rep)
	}
	fresh, err := core.AnalyzeProgram(a2.Prog.Clone(), core.Config{Mode: core.ModeAndersen, Workers: 2})
	if err != nil {
		t.Fatalf("fresh: %v", err)
	}
	diffFingerprints(t, "fallback", a2.Fingerprints(), fresh.Fingerprints())
	if _, ok := a2.Prog.FuncByName["injected"]; !ok {
		t.Fatal("edit not applied")
	}
}

// TestApplyEditLazy: lazy analyses stay lazy across edits — no eager
// re-solving when no engine was ever materialized — and still answer
// identically to a fresh lazy analysis.
func TestApplyEditLazy(t *testing.T) {
	prog := incrProg(t)
	cfg := core.Config{Mode: core.ModeAndersen, Lazy: true, Workers: 1}
	a, err := core.AnalyzeProgram(prog, cfg)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	rng := rand.New(rand.NewSource(11))
	edits := randomStmtEdits(a.Prog, rng, 4)
	a2, rep, err := core.ApplyEdit(a, edits)
	if err != nil {
		t.Fatalf("ApplyEdit: %v", err)
	}
	if rep.FellBack {
		t.Fatalf("unexpected fallback: %s", rep.Reason)
	}
	if rep.Resolved != 0 {
		t.Fatalf("cold lazy analysis eagerly resolved %d clusters", rep.Resolved)
	}
	fresh, err := core.AnalyzeProgram(a2.Prog.Clone(), cfg)
	if err != nil {
		t.Fatalf("fresh: %v", err)
	}
	sampleQueries(t, "lazy", a2, fresh)

	// Warm a lazy analysis through queries, then edit: dirty clusters
	// with warmed siblings re-solve eagerly so answers stay fresh.
	for _, v := range a2.CoveredPointers() {
		a2.PointsTo(v, a2.Prog.Funcs[0].Exit)
	}
	edits = randomStmtEdits(a2.Prog, rng, 4)
	a3, rep, err := core.ApplyEdit(a2, edits)
	if err != nil {
		t.Fatalf("ApplyEdit warm: %v", err)
	}
	if rep.FellBack {
		t.Fatalf("unexpected warm fallback: %s", rep.Reason)
	}
	fresh, err = core.AnalyzeProgram(a3.Prog.Clone(), cfg)
	if err != nil {
		t.Fatalf("fresh warm: %v", err)
	}
	sampleQueries(t, "lazy-warm", a3, fresh)
}

// TestApplyEditBadBatch: malformed edits error out without touching the
// previous analysis.
func TestApplyEditBadBatch(t *testing.T) {
	prog := incrProg(t)
	a, err := core.AnalyzeProgram(prog, core.Config{Mode: core.ModeAndersen, Workers: 1})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	before := len(a.Prog.Nodes)
	if _, _, err := core.ApplyEdit(a, []ir.Edit{{Kind: ir.EditReplaceStmt, Loc: ir.Loc(1 << 30)}}); err == nil {
		t.Fatal("bad edit accepted")
	}
	if len(a.Prog.Nodes) != before {
		t.Fatal("failed batch mutated the previous program")
	}
}

const fuzzEditProg = `
	int a, b, c, d;
	int *x, *y, *p, *q;
	int **pp, **qq;
	void leaf() {
		q = &d;
		qq = &q;
	}
	void main() {
		x = &a;
		y = &b;
		p = &c;
		pp = &x;
		*pp = y;
		x = *qq;
		leaf();
		x = y;
	}
`

// FuzzApplyEdit feeds byte-derived edit sequences through ApplyEdit and
// asserts bit-identity with a from-scratch analysis after every batch:
// same selected-cluster fingerprints, same answers.
func FuzzApplyEdit(f *testing.F) {
	f.Add([]byte{0x01, 0x02})
	f.Add([]byte{0xff, 0x10, 0x20, 0x30})
	f.Add([]byte{7, 7, 7, 7, 7, 7})
	base, err := frontend.LowerSource(fuzzEditProg)
	if err != nil {
		f.Fatalf("lower: %v", err)
	}
	cfg := core.Config{Mode: core.ModeAndersen, Workers: 1}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 || len(data) > 64 {
			t.Skip()
		}
		a, err := core.AnalyzeProgram(base.Clone(), cfg)
		if err != nil {
			t.Fatalf("analyze: %v", err)
		}
		var eligible []ir.Loc
		for _, n := range a.Prog.Nodes {
			switch n.Stmt.Op {
			case ir.OpCopy, ir.OpAddr, ir.OpLoad, ir.OpStore:
				if n.CallLoc == ir.NoLoc {
					eligible = append(eligible, n.Loc)
				}
			}
		}
		if len(eligible) == 0 {
			t.Skip()
		}
		var edits []ir.Edit
		for i := 0; i+1 < len(data); i += 2 {
			loc := eligible[int(data[i])%len(eligible)]
			st := a.Prog.Node(loc).Stmt
			switch data[i+1] % 4 {
			case 0:
				edits = append(edits, ir.Edit{Kind: ir.EditDeleteStmt, Loc: loc})
			case 1:
				st.Src = ir.VarID(int(data[i+1]/4) % len(a.Prog.Vars))
				edits = append(edits, ir.Edit{Kind: ir.EditReplaceStmt, Loc: loc, Stmt: st})
			case 2:
				st.Dst = ir.VarID(int(data[i+1]/4) % len(a.Prog.Vars))
				edits = append(edits, ir.Edit{Kind: ir.EditReplaceStmt, Loc: loc, Stmt: st})
			case 3:
				ins := ir.Stmt{Op: ir.OpNullify, Dst: st.Dst, Src: ir.NoVar, Callee: ir.NoFunc, FPtr: ir.NoVar}
				edits = append(edits, ir.Edit{Kind: ir.EditInsertAfter, Loc: loc, Stmt: ins})
			}
		}
		a2, rep, err := core.ApplyEdit(a, edits)
		if err != nil {
			t.Skip() // malformed batch; rejection is the contract
		}
		fresh, err := core.AnalyzeProgram(a2.Prog.Clone(), cfg)
		if err != nil {
			t.Fatalf("fresh analyze: %v", err)
		}
		gf, wf := a2.Fingerprints(), fresh.Fingerprints()
		if len(gf) != len(wf) {
			t.Fatalf("selected %d clusters incrementally, %d fresh (fellback=%v)", len(gf), len(wf), rep.FellBack)
		}
		for id, fp := range wf {
			if gf[id] != fp {
				t.Fatalf("cluster %d fingerprint mismatch (fellback=%v)", id, rep.FellBack)
			}
		}
		for _, v := range fresh.CoveredPointers() {
			for _, fn := range fresh.Prog.Funcs {
				wp, wprec := fresh.PointsTo(v, fn.Exit)
				gp, gprec := a2.PointsTo(v, fn.Exit)
				sort.Slice(wp, func(i, j int) bool { return wp[i] < wp[j] })
				sort.Slice(gp, func(i, j int) bool { return gp[i] < gp[j] })
				if wprec != gprec || !reflect.DeepEqual(wp, gp) {
					t.Fatalf("PointsTo(%d, L%d) = %v/%v, fresh %v/%v",
						v, fn.Exit, gp, gprec, wp, wprec)
				}
			}
		}
	})
}
