// Package core implements the paper's bootstrapping framework end to end:
// the cascade of increasingly precise analyses (Steensgaard → [One-Flow] →
// Andersen → summarization-based FSCS), where each stage runs only on the
// pointer subsets produced by the previous stage; per-cluster slicing via
// Algorithm 1; parallel execution of the independent per-cluster analyses;
// the paper's greedy k-machine simulation; and the demand-driven mode that
// analyzes only clusters whose pointers an application cares about (e.g.
// lock pointers for race detection).
//
// This is the public facade of the repository: parse/lower a program, call
// Analyze, and query flow- and context-sensitive aliases.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"bootstrap/internal/andersen"
	"bootstrap/internal/cache"
	"bootstrap/internal/callgraph"
	"bootstrap/internal/cluster"
	"bootstrap/internal/faults"
	"bootstrap/internal/frontend"
	"bootstrap/internal/fscs"
	"bootstrap/internal/ir"
	"bootstrap/internal/obs"
	"bootstrap/internal/oneflow"
	"bootstrap/internal/steens"
)

// Mode selects the clustering cascade.
type Mode uint8

// Clustering modes, in increasing bootstrap depth. The paper's Table 1
// compares ModeNone (column "without clustering"), ModeSteensgaard and
// ModeAndersen; ModeSyntactic is the Zhang et al. related-work baseline.
const (
	ModeNone Mode = iota
	ModeSteensgaard
	ModeAndersen
	ModeSyntactic
)

var modeNames = [...]string{"none", "steensgaard", "andersen", "syntactic"}

func (m Mode) String() string { return modeNames[m] }

// Config tunes an analysis run.
type Config struct {
	// Mode selects the clustering cascade stage (default ModeAndersen:
	// the full bootstrap).
	Mode Mode
	// AndersenThreshold is the partition size above which Andersen
	// clustering kicks in (paper: 60). Zero selects the default.
	AndersenThreshold int
	// UseOneFlow inserts Das's One-Level-Flow analysis between
	// Steensgaard and Andersen, refining which partitions are considered
	// oversized (the cascade extension the paper suggests in Section 4).
	UseOneFlow bool
	// Workers bounds the per-cluster parallelism. Zero means GOMAXPROCS;
	// 1 forces sequential execution.
	Workers int
	// ClusterBudget caps the worklist tuples each per-cluster engine may
	// process — the analogue of the paper's 15-minute timeout. Zero means
	// unlimited.
	ClusterBudget int64
	// ClusterTimeout bounds the wall-clock time of each per-cluster
	// engine attempt — the paper's 15-minute timeout made literal. On
	// expiry the cluster walks the degradation ladder (see Retries). Zero
	// means no per-cluster deadline.
	ClusterTimeout time.Duration
	// RunTimeout bounds the wall-clock time of the whole per-cluster FSCS
	// stage; when it expires, clusters still running (or not yet started)
	// are demoted to the flow-insensitive fallback — the run completes
	// with degraded precision instead of erroring. Zero means no
	// whole-run deadline.
	RunTimeout time.Duration
	// Retries is the degradation ladder's retry count after a failed
	// attempt (budget, deadline or panic); each retry halves MaxCond and
	// ClusterBudget. Zero selects the default (1); negative disables
	// retries, demoting on the first failure.
	Retries int
	// Faults injects deterministic faults into chosen clusters — the
	// testing/chaos hook for the fault-tolerance layer. Nil injects
	// nothing. Faults apply to the eager scheduler and to query-time
	// solves (EnsureCluster); engines created implicitly by the classic
	// query methods in Lazy mode are not covered. While the plan has any
	// armed fault (Plan.Active), the result cache is bypassed: injected
	// behavior is attempt-local by design.
	Faults *faults.Plan
	// MaxCond bounds constraint conjunctions (default 8).
	MaxCond int
	// Demand restricts the precise analysis to clusters containing at
	// least one pointer satisfying the predicate (the paper's
	// demand-driven mode). Nil analyzes every cluster.
	Demand func(*ir.Var) bool
	// Lazy defers all per-cluster FSCS work: no engines run during
	// AnalyzeProgram; a cluster is analyzed the first time one of its
	// pointers is queried. This is the paper's "ability to pick and
	// choose which clusters to explore ... adapted on-the-fly based on
	// the demands of the application".
	Lazy bool
	// HybridSizeLimit, when positive, enables the paper's hybrid mode:
	// clusters larger than the limit are not given the expensive FSCS
	// treatment — queries on their pointers answer from the
	// flow-insensitive Andersen result instead ("one may choose to engage
	// different pointer analysis methods to analyze different clusters
	// based on their sizes and access densities").
	HybridSizeLimit int
	// DisableInterning turns off the FSCS engines' memoized hash-consed
	// condition operators; every conjunction is recomputed structurally.
	// Alias results are bit-for-bit identical either way — the knob trades
	// speed only, and exists for benchmarking and as an escape hatch.
	DisableInterning bool
	// DisablePipelining forces the serial front-end: the complete Andersen
	// cover is built before any FSCS engine starts. By default (false) the
	// eager ModeAndersen cascade streams clusters from the cover builder
	// into the FSCS workers as partitions finish, overlapping the two
	// stages. Results are identical; the knob trades speed only.
	DisablePipelining bool
	// DisableCycleElim turns off the Andersen solver's online cycle
	// elimination (SCC collapsing) in both the whole-program fallback and
	// the per-partition clustering solves. Points-to results are identical
	// either way — the knob trades speed only.
	DisableCycleElim bool
	// DisableDeltaProp turns off the Andersen solver's difference
	// propagation (per-node delta sets drained in wave order over the
	// collapsed SCC DAG) in both the fallback and the clustering solves,
	// reverting to the legacy full-propagation worklist. Points-to results
	// are bit-for-bit identical either way — the knob keeps the old path
	// alive as a differential baseline.
	DisableDeltaProp bool
	// DisableParSolve keeps the delta solver serial even on partitions
	// above ParSolveThreshold. The parallel solve fans each wave front
	// across a bounded worker pool; results are identical, the knob trades
	// speed only. Implied by DisableDeltaProp and by Workers == 1.
	DisableParSolve bool
	// ParSolveThreshold is the constrained-node count above which an
	// Andersen solve switches from the serial to the parallel wave-front
	// path. Zero selects andersen.DefaultParSolveThreshold.
	ParSolveThreshold int
	// SteensPrecise enables the oversharing-resistant Steensgaard
	// variant: write-only sink variables no longer eagerly unify the
	// partitions copied into them; instead the sink joins each source's
	// partition through a post-fixpoint overlay, producing an overlapping
	// alias cover with measurably smaller maximum partitions. Sound per
	// the Theorem 7 overlap semantics the cascade already supports;
	// results may be strictly more precise than the default.
	SteensPrecise bool
	// Cache, when non-nil, warm-starts the per-cluster FSCS stage: before
	// a cluster is dispatched to an engine its slice fingerprint is looked
	// up, hits import the stored summary tables and points-to sets instead
	// of solving (bit-for-bit identical results, per Theorem 6), and
	// first-attempt healthy solves are stored back. The cache may be
	// shared across runs and programs; see package cache. Fault injection
	// (Faults) bypasses it, and lazy query-time engines are not cached.
	Cache *cache.Cache
	// Tracer, when non-nil, records one span per cascade phase (parse,
	// Steensgaard, One-Flow, clustering, fallback, FSCS stage), per
	// scheduled cluster and ladder attempt (with cluster id, size, worker
	// and outcome — solved, cached or demoted), and per cache
	// probe/import/store, in the Chrome trace event format (see package
	// obs). Nil disables tracing; every span call is a nil-check no-op.
	Tracer *obs.Tracer
	// Metrics, when non-nil, accumulates the run's work counters and
	// histograms (worklist tuples, interning hits, cluster outcomes,
	// solve-time distribution, solver passes; see DESIGN.md §10). The
	// registry may be shared across runs — counters only ever add. Nil
	// disables; engines then skip even the end-of-run flush.
	Metrics *obs.Metrics
}

// andersenOpts translates the config's solver knobs into Andersen
// options, shared by the fallback analysis and the clustering solves.
func (cfg Config) andersenOpts() []andersen.Option {
	var opts []andersen.Option
	if !cfg.DisableCycleElim {
		opts = append(opts, andersen.WithCycleElimination())
	}
	if !cfg.DisableDeltaProp {
		opts = append(opts, andersen.WithDeltaPropagation())
		if !cfg.DisableParSolve && cfg.Workers != 1 {
			w := cfg.Workers
			if w <= 0 {
				w = runtime.GOMAXPROCS(0)
			}
			opts = append(opts, andersen.WithParallelSolve(w, cfg.ParSolveThreshold))
		}
	}
	return opts
}

// steensOpts translates the config's partitioning knobs into Steensgaard
// options.
func (cfg Config) steensOpts() []steens.Option {
	if cfg.SteensPrecise {
		return []steens.Option{steens.Precise()}
	}
	return nil
}

// Timing records where the analysis spent its time, mirroring the columns
// of the paper's Table 1.
type Timing struct {
	Lower       time.Duration // frontend (parse + lower + devirtualize)
	Steensgaard time.Duration // partitioning
	OneFlow     time.Duration // optional cascade stage
	Clustering  time.Duration // Andersen clustering (refinement of oversized partitions)
	FSCS        time.Duration // total sequential per-cluster FSCS time
	Wall        time.Duration // wall-clock FSCS time (parallel)
	PerCluster  []time.Duration
}

// Analysis is a completed bootstrapped analysis with query access.
type Analysis struct {
	Prog      *ir.Program
	Steens    *steens.Analysis
	Andersen  *andersen.Analysis
	CallGraph *callgraph.Graph
	Clusters  []*cluster.Cluster
	Timing    Timing

	// Health reports, per selected cluster (sorted by cluster ID), how
	// its engine fared under the fault-tolerant scheduler: completed,
	// retried, recovered from a panic, served from the result cache, or
	// demoted to the fallback. Empty in Lazy mode, where engines run at
	// query time.
	Health []ClusterHealth

	// CacheStats is this run's window over Config.Cache's counters
	// (zero without a cache). Under concurrent runs sharing one cache
	// the window includes the other runs' traffic.
	CacheStats cache.Stats

	cfg Config
	// mu serializes engine access (engines are single-threaded). It is a
	// pointer because ApplyEdit transplants engines from the previous
	// analysis into its successor: both generations must serialize
	// through the same lock while old-snapshot queries drain.
	mu        *sync.Mutex
	engines   map[int]*fscs.Engine
	selected  map[int]*cluster.Cluster // clusters eligible for engines (lazy mode)
	byPointer map[ir.VarID][]int       // pointer -> cluster ids containing it

	// Query-time solve state (see query.go): in-flight single-flight
	// solves and the health of clusters solved on first touch.
	solving     map[int]*inflight
	queryHealth map[int]ClusterHealth

	// partBases caches, per Steensgaard partition (keyed by member
	// list), the partition's Algorithm-1 base slice. ApplyEdit consults
	// it to decide partition reuse without recomputing the slice and
	// refreshes it for the successor analysis; nil after a from-scratch
	// run (ApplyEdit then computes bases on first use).
	partBases map[string]*cluster.Cluster
}

// AnalyzeSource parses, lowers and analyzes CPL source text.
func AnalyzeSource(src string, cfg Config) (*Analysis, error) {
	return AnalyzeSourceContext(context.Background(), src, cfg)
}

// AnalyzeSourceContext is AnalyzeSource under a cancellation context (see
// AnalyzeProgramContext).
func AnalyzeSourceContext(ctx context.Context, src string, cfg Config) (*Analysis, error) {
	// The frontend phase is timed directly: deriving it by subtracting
	// the other stages from the total underflows once stages overlap
	// wall-clock (parallel FSCS makes Wall < FSCS).
	t0 := time.Now()
	sp := cfg.Tracer.Start("phase", "parse", obs.TIDMain).Arg("bytes", len(src))
	prog, err := frontend.LowerSource(src)
	if err != nil {
		sp.Arg("error", err.Error()).End()
		return nil, err
	}
	sp.Arg("vars", prog.NumVars()).End()
	lower := time.Since(t0)
	a, err := AnalyzeProgramContext(ctx, prog, cfg)
	if err != nil {
		return nil, err
	}
	a.Timing.Lower = lower
	return a, nil
}

// AnalyzeProgram runs the full bootstrap cascade over an IR program. The
// program may still contain indirect-call placeholders; they are
// devirtualized with Steensgaard-resolved targets first.
func AnalyzeProgram(prog *ir.Program, cfg Config) (*Analysis, error) {
	return AnalyzeProgramContext(context.Background(), prog, cfg)
}

// AnalyzeProgramContext is AnalyzeProgram under a cancellation context.
// Cancelling ctx aborts the run with ctx's error. Deadlines configured in
// cfg (RunTimeout, ClusterTimeout) are softer: they degrade clusters to
// the flow-insensitive fallback and the analysis still completes, every
// query remaining sound.
func AnalyzeProgramContext(ctx context.Context, prog *ir.Program, cfg Config) (*Analysis, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	planDefaults(&cfg)

	// The eager full-bootstrap cascade runs pipelined by default: clusters
	// stream from the cover builder straight into the FSCS workers instead
	// of waiting for the whole cover, and the fallback runs concurrently.
	// Every other configuration (other modes, One-Flow refinement, lazy
	// mode, DisablePipelining) takes the serial BuildPlan +
	// AnalyzeFromPlan path below.
	if cfg.Mode == ModeAndersen && !cfg.UseOneFlow && !cfg.DisablePipelining && !cfg.Lazy {
		a := newAnalysis(prog, cfg)
		var cacheBefore cache.Stats
		if cfg.Cache != nil {
			cacheBefore = cfg.Cache.Stats()
		}
		tr := cfg.Tracer
		tr.NameThread(obs.TIDMain, "cascade")

		// Stage 0: Steensgaard over the whole program (the scalable base
		// of the cascade), plus function-pointer devirtualization.
		t0 := time.Now()
		sp := tr.Start("phase", "steensgaard", obs.TIDMain)
		sa, err := steensFront(prog, cfg)
		if err != nil {
			sp.End()
			return nil, err
		}
		a.Steens = sa
		sp.Arg("partitions", sa.NumPartitions()).Arg("max_partition", sa.MaxPartitionSize()).End()
		sa.Record(cfg.Metrics)
		a.Timing.Steensgaard = time.Since(t0)
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: analysis cancelled: %w", err)
		}
		if _, err := a.runPipelined(ctx, prog, sa, cfg); err != nil {
			return nil, err
		}
		if cfg.Cache != nil {
			a.CacheStats = cfg.Cache.Stats().Sub(cacheBefore)
		}
		return a, nil
	}

	pl, err := BuildPlan(ctx, prog, cfg)
	if err != nil {
		return nil, err
	}
	return AnalyzeFromPlan(ctx, pl, cfg)
}

// runPipelined is the overlapped eager ModeAndersen cascade: the Andersen
// cover is built partition-by-partition on a worker pool and each finished
// cluster streams straight into the FSCS stage, while the whole-program
// flow-insensitive fallback and the call graph are computed concurrently
// (FSCS workers block on their readiness before the first engine runs).
//
// Output is identical to the serial path: the stream delivers clusters in
// BuildAndersen order with BuildAndersen IDs, per-cluster results land in
// indexed slots (never raced), and Health is sorted by cluster ID. The
// cover is built under the caller's ctx, not the RunTimeout context —
// RunTimeout degrades FSCS precision per cluster but must never truncate
// the cover itself, or queries on missing clusters would be unsound.
func (a *Analysis) runPipelined(ctx context.Context, prog *ir.Program, sa *steens.Analysis, cfg Config) (*Analysis, error) {
	tr := cfg.Tracer
	tr.NameThread(obs.TIDFallback, "fallback")
	fallbackReady := make(chan struct{})
	go func() {
		defer close(fallbackReady)
		sp := tr.Start("phase", "fallback", obs.TIDFallback)
		a.Andersen = andersen.Analyze(prog,
			append(cfg.andersenOpts(), andersen.WithTracer(tr, obs.TIDFallback))...)
		a.CallGraph = callgraph.Build(prog)
		sp.End()
	}()

	runCtx := ctx
	if cfg.RunTimeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, cfg.RunTimeout)
		defer cancel()
	}

	t1 := time.Now()
	fsp := tr.Start("phase", "fscs", obs.TIDMain).Arg("workers", cfg.Workers)
	csp := tr.Start("phase", "clustering", obs.TIDMain).Arg("mode", cfg.Mode.String())
	stream := cluster.StreamAndersen(obs.ContextWithTracer(ctx, tr), prog, sa,
		cfg.AndersenThreshold, cfg.Workers, cfg.andersenOpts()...)

	type slot struct {
		c   *cluster.Cluster
		eng *fscs.Engine
		h   ClusterHealth
	}
	jobs := make(chan *slot, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		tr.NameThread(obs.WorkerTID(w), fmt.Sprintf("fscs-worker-%d", w))
		go func(w int) {
			defer wg.Done()
			<-fallbackReady
			wctx := obs.ContextWithWorker(runCtx, w)
			for s := range jobs {
				s.eng, s.h = RunCluster(wctx, prog, a.CallGraph, sa, s.c, a.Andersen, cfg)
			}
		}(w)
	}

	// Demand-driven selection and the hybrid size cut-off apply per
	// streamed cluster — both are local predicates, so filtering needs no
	// cover-completion barrier.
	selects := func(c *cluster.Cluster) bool {
		if cfg.HybridSizeLimit > 0 && c.Size() > cfg.HybridSizeLimit {
			return false
		}
		if cfg.Demand == nil {
			return true
		}
		for _, v := range c.Pointers {
			if cfg.Demand(prog.Var(v)) {
				return true
			}
		}
		return false
	}

	var slots []*slot
	for c := range stream {
		a.Clusters = append(a.Clusters, c)
		if !selects(c) {
			continue
		}
		s := &slot{c: c}
		slots = append(slots, s)
		jobs <- s
	}
	// Under pipelining the clustering span overlaps the FSCS wall clock; it
	// ends when the last partition's refinement has been delivered.
	a.Timing.Clustering = time.Since(t1)
	csp.Arg("clusters", len(a.Clusters)).End()
	close(jobs)
	wg.Wait()
	a.Timing.Wall = time.Since(t1)
	fsp.Arg("clusters", len(slots)).End()
	a.Andersen.SolverStats().Record(cfg.Metrics)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: analysis cancelled: %w", err)
	}

	a.Timing.PerCluster = make([]time.Duration, len(slots))
	for i, s := range slots {
		a.selected[s.c.ID] = s.c
		for _, p := range s.c.Pointers {
			a.byPointer[p] = append(a.byPointer[p], s.c.ID)
		}
		if s.eng != nil {
			a.engines[s.c.ID] = s.eng
		} else {
			// Permanently demoted (see the serial path).
			delete(a.selected, s.c.ID)
		}
		a.Timing.PerCluster[i] = s.h.Elapsed
		a.Timing.FSCS += s.h.Elapsed
		a.Health = append(a.Health, s.h)
	}
	sort.Slice(a.Health, func(i, j int) bool { return a.Health[i].ClusterID < a.Health[j].ClusterID })
	return a, nil
}

func maxCondOrDefault(n int) int {
	if n <= 0 {
		return 8
	}
	return n
}

// buildWithOneFlow refines the oversized judgement with One-Flow: an
// oversized Steensgaard partition whose largest One-Flow refinement is
// within the threshold is split along the One-Flow refinement instead of
// paying for an Andersen run.
func buildWithOneFlow(prog *ir.Program, sa *steens.Analysis, of *oneflow.Analysis, threshold int, aopts []andersen.Option) []*cluster.Cluster {
	var out []*cluster.Cluster
	andersenCover := cluster.BuildAndersen(prog, sa, threshold, aopts...)
	// BuildAndersen already keeps small partitions; reuse it, but first
	// check the One-Flow split for the oversized ones. For simplicity the
	// One-Flow stage only changes which partitions get the expensive
	// Andersen treatment; correctness is unchanged (both are alias
	// covers). When One-Flow refines an oversized partition into pieces
	// within the threshold, those pieces are used directly.
	// partKey identifies a partition by the base representative of its
	// first non-sink member. Under the precise-Steensgaard overlapping
	// cover, a multi-membership sink's Rep points at its *base* partition,
	// so keying blindly by element 0 could collide two distinct expanded
	// partitions and drop a needed Andersen cluster. Non-sink members are
	// unambiguous; a group with no non-sink member (all overlay sinks)
	// gets no key and is never replaced — keeping it is sound, merely
	// redundant.
	partKey := func(vs []ir.VarID) int {
		for _, v := range vs {
			if sa.SinkClasses(v) == nil {
				return sa.Rep(v)
			}
		}
		return -1
	}
	refined := map[int]bool{}
	for _, part := range sa.Partitions() {
		if len(part) <= threshold {
			continue
		}
		key := partKey(part)
		if key < 0 {
			continue
		}
		pieces := of.Refine(part)
		max := 0
		for _, p := range pieces {
			if len(p) > max {
				max = len(p)
			}
		}
		if max <= threshold && len(pieces) > 1 {
			refined[key] = true
			for _, piece := range pieces {
				out = append(out, cluster.New(prog, sa, len(out), cluster.KindOneFlow, piece))
			}
		}
	}
	for _, c := range andersenCover {
		if len(c.Pointers) > 0 && c.Kind == cluster.KindAndersen {
			if key := partKey(c.Pointers); key >= 0 && refined[key] {
				continue // replaced by One-Flow pieces
			}
		}
		cc := *c
		cc.ID = len(out)
		out = append(out, &cc)
	}
	return out
}

// getEngine returns (creating lazily when Config.Lazy) the engine of a
// selected cluster; nil if the cluster was not selected. Callers must hold
// a.mu.
func (a *Analysis) getEngine(clusterID int) *fscs.Engine {
	if e, ok := a.engines[clusterID]; ok {
		return e
	}
	c, ok := a.selected[clusterID]
	if !ok || !a.cfg.Lazy {
		return nil
	}
	// Lazy mode: create the engine without a Run — the query itself
	// drives exactly the summary and points-to computation it needs.
	e := fscs.NewEngine(a.Prog, a.CallGraph, a.Steens, c,
		fscs.WithFallback(a.Andersen),
		fscs.WithBudget(a.cfg.ClusterBudget),
		fscs.WithMaxCond(maxCondOrDefault(a.cfg.MaxCond)),
		fscs.WithInterning(!a.cfg.DisableInterning),
		fscs.WithMetrics(a.cfg.Metrics))
	a.engines[clusterID] = e
	return e
}

// Engine returns the FSCS engine of a cluster (nil if the cluster was not
// selected for analysis). In lazy mode the engine is created on first use.
func (a *Analysis) Engine(clusterID int) *fscs.Engine {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.getEngine(clusterID)
}

// ClustersOf returns the IDs of the analyzed clusters containing p.
func (a *Analysis) ClustersOf(p ir.VarID) []int { return a.byPointer[p] }

// MayAlias reports whether p and q may alias at loc: per Theorems 6 and 7
// it suffices to check the clusters containing p. Engines are not
// concurrency-safe, so queries are serialized.
func (a *Analysis) MayAlias(p, q ir.VarID, loc ir.Loc) bool {
	if p == q {
		return true
	}
	if !a.Steens.SamePartition(p, q) {
		return false // disjoint cover: cannot alias
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	ids := a.byPointer[p]
	if len(ids) == 0 {
		// p was not selected (demand-driven or hybrid mode) — fall back
		// soundly to the flow-insensitive result.
		return a.Andersen.MayAlias(p, q)
	}
	for _, id := range ids {
		eng := a.getEngine(id)
		if eng == nil {
			continue
		}
		if !eng.Cluster().HasPointer(q) {
			continue
		}
		if eng.MayAlias(p, q, loc) {
			return true
		}
	}
	// If no analyzed cluster contains both, they share no Andersen
	// object; under the disjunctive cover they cannot alias unless the
	// flow-insensitive fallback says so for unanalyzed pairs.
	for _, id := range ids {
		if eng := a.getEngine(id); eng != nil && eng.Cluster().HasPointer(q) {
			return false
		}
	}
	return a.Andersen.MayAlias(p, q)
}

// Aliases returns the pointers that may alias p at loc: the union of the
// per-cluster alias sets (condition (ii) of Section 2).
func (a *Analysis) Aliases(p ir.VarID, loc ir.Loc) []ir.VarID {
	a.mu.Lock()
	defer a.mu.Unlock()
	set := map[ir.VarID]bool{}
	for _, id := range a.byPointer[p] {
		eng := a.getEngine(id)
		if eng == nil {
			continue
		}
		for _, q := range eng.Aliases(p, loc) {
			set[q] = true
		}
	}
	out := make([]ir.VarID, 0, len(set))
	for q := range set {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MustAlias reports whether p and q must alias at loc, via any analyzed
// cluster containing both.
func (a *Analysis) MustAlias(p, q ir.VarID, loc ir.Loc) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, id := range a.byPointer[p] {
		eng := a.getEngine(id)
		if eng == nil || !eng.Cluster().HasPointer(q) {
			continue
		}
		if eng.MustAlias(p, q, loc) {
			return true
		}
	}
	return false
}

// PointsTo returns the objects p may reference at loc (union over p's
// clusters), and whether every contributing engine was precise.
func (a *Analysis) PointsTo(p ir.VarID, loc ir.Loc) ([]ir.VarID, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	set := map[ir.VarID]bool{}
	precise := true
	found := false
	for _, id := range a.byPointer[p] {
		eng := a.getEngine(id)
		if eng == nil {
			continue
		}
		found = true
		objs, ok := eng.Values(p, loc)
		precise = precise && ok
		for _, o := range objs {
			set[o] = true
		}
	}
	if !found {
		var objs []ir.VarID
		a.Andersen.PointsToSet(p).ForEach(func(o int) bool {
			objs = append(objs, ir.VarID(o))
			return true
		})
		return objs, false
	}
	out := make([]ir.VarID, 0, len(set))
	for o := range set {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, precise
}

// DerefState resolves what a dereference of p at loc may observe: the
// referable objects, whether some path arrives with p null or
// uninitialized, and whether the answer is precise. Pointers outside every
// analyzed cluster fall back to the flow-insensitive set with
// precise=false and unknown flags cleared.
func (a *Analysis) DerefState(p ir.VarID, loc ir.Loc) (objs []ir.VarID, mayNull, mayUninit, precise bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	set := map[ir.VarID]bool{}
	precise = true
	found := false
	for _, id := range a.byPointer[p] {
		eng := a.getEngine(id)
		if eng == nil {
			continue
		}
		found = true
		st := eng.ValueState(p, loc)
		precise = precise && !st.Unknown
		mayNull = mayNull || st.Null
		mayUninit = mayUninit || st.Uninit
		for _, o := range st.Objs {
			set[o] = true
		}
	}
	if !found {
		objs, _ = a.PointsToLockedFallback(p)
		return objs, false, false, false
	}
	objs = make([]ir.VarID, 0, len(set))
	for o := range set {
		objs = append(objs, o)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
	return objs, mayNull, mayUninit, precise
}

// ValuesInContext returns the objects p may reference at loc when reached
// via the given call path (fully flow- AND context-sensitive), unioned
// over p's clusters. The boolean reports precision.
func (a *Analysis) ValuesInContext(p ir.VarID, loc ir.Loc, ctx fscs.Context) ([]ir.VarID, bool, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	set := map[ir.VarID]bool{}
	precise := true
	found := false
	for _, id := range a.byPointer[p] {
		eng := a.getEngine(id)
		if eng == nil {
			continue
		}
		objs, ok, err := eng.ValuesInContext(p, loc, ctx)
		if err != nil {
			return nil, false, err
		}
		found = true
		precise = precise && ok
		for _, o := range objs {
			set[o] = true
		}
	}
	if !found {
		objs, ok := a.PointsToLockedFallback(p)
		return objs, ok, nil
	}
	out := make([]ir.VarID, 0, len(set))
	for o := range set {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, precise, nil
}

// PointsToLockedFallback returns the flow-insensitive points-to set; the
// caller must hold a.mu. The boolean is always false (imprecise).
func (a *Analysis) PointsToLockedFallback(p ir.VarID) ([]ir.VarID, bool) {
	var objs []ir.VarID
	a.Andersen.PointsToSet(p).ForEach(func(o int) bool {
		objs = append(objs, ir.VarID(o))
		return true
	})
	return objs, false
}

// MustAliasInContext reports whether p and q must alias at loc in the
// given call path, via any analyzed cluster containing both.
func (a *Analysis) MustAliasInContext(p, q ir.VarID, loc ir.Loc, ctx fscs.Context) (bool, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, id := range a.byPointer[p] {
		eng := a.getEngine(id)
		if eng == nil || !eng.Cluster().HasPointer(q) {
			continue
		}
		ok, err := eng.MustAliasInContext(p, q, loc, ctx)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// SimulateParallel reproduces the paper's experiment setup: distribute the
// clusters into k parts with the greedy heuristic (accumulate clusters
// until a part's pointer count reaches total/k), time each part as the sum
// of its per-cluster times, and return the maximum over parts — the
// simulated wall-clock on k machines.
func SimulateParallel(clusters []*cluster.Cluster, times []time.Duration, k int) time.Duration {
	if len(clusters) == 0 || k <= 0 {
		return 0
	}
	total := 0
	for _, c := range clusters {
		total += c.Size()
	}
	perPart := total / k
	if perPart == 0 {
		perPart = 1
	}
	var maxPart, curTime time.Duration
	curSize := 0
	for i, c := range clusters {
		curSize += c.Size()
		if i < len(times) {
			curTime += times[i]
		}
		if curSize >= perPart {
			if curTime > maxPart {
				maxPart = curTime
			}
			curSize, curTime = 0, 0
		}
	}
	if curTime > maxPart {
		maxPart = curTime
	}
	return maxPart
}
