package core

import (
	"context"
	"sort"

	"bootstrap/internal/cluster"
	"bootstrap/internal/fscs"
	"bootstrap/internal/ir"
)

// This file is the context-first query surface: the demand-driven API a
// long-lived caller (the aliasd daemon, an IDE loop) uses to answer alias
// queries lazily under a per-query deadline. Unlike the classic query
// methods (MayAlias, PointsTo, ...), which create lazy engines implicitly
// and compute under the analysis lock, these methods solve a cluster at
// most once through the fault-tolerant RunCluster ladder — concurrent
// first touches coalesce into one solve (single flight) — and degrade to
// the flow-insensitive fallback when the caller's context expires before
// the solve lands, instead of blocking or erroring.

// inflight is one single-flight cluster solve. done is closed when the
// solve finished (successfully or demoted); eng/health are valid after.
type inflight struct {
	done   chan struct{}
	eng    *fscs.Engine
	health ClusterHealth
}

// EnsureCluster solves (or imports from Config.Cache) the engine of
// cluster id at most once, through the same fault-tolerant degradation
// ladder the eager scheduler uses. Safe for concurrent use: concurrent
// calls on a cold cluster coalesce into a single solve, and every caller
// blocks until the solve finishes or ctx is done.
//
// The returned bool reports whether the cluster's final state was
// reached: false means ctx expired while the solve was still running —
// the solve continues in the background for future callers, and the
// caller should degrade to the flow-insensitive fallback for this query.
// When it is true, a nil engine means the cluster was demoted (or never
// selected); queries answer from the fallback, permanently.
//
// The solve itself runs detached from ctx so one impatient caller cannot
// kill work other callers are waiting on; Config.ClusterTimeout bounds
// each ladder attempt as usual.
func (a *Analysis) EnsureCluster(ctx context.Context, id int) (*fscs.Engine, ClusterHealth, bool) {
	if ctx == nil {
		ctx = context.Background()
	}
	a.mu.Lock()
	if eng, ok := a.engines[id]; ok {
		h := a.queryHealth[id]
		h.ClusterID = id
		a.mu.Unlock()
		return eng, h, true
	}
	c, selected := a.selected[id]
	if !selected {
		// Demoted earlier, or never part of the analyzed cover: the
		// fallback answer is the cluster's final state.
		h := a.queryHealth[id]
		h.ClusterID = id
		h.Demoted = true
		a.mu.Unlock()
		return nil, h, true
	}
	s, solving := a.solving[id]
	if !solving {
		s = &inflight{done: make(chan struct{})}
		a.solving[id] = s
		go a.solveCluster(id, c, s)
	}
	a.mu.Unlock()

	select {
	case <-s.done:
		return s.eng, s.health, true
	case <-ctx.Done():
		h := ClusterHealth{ClusterID: id, Err: ctx.Err()}
		return nil, h, false
	}
}

// solveCluster runs one detached single-flight solve and installs the
// result.
func (a *Analysis) solveCluster(id int, c *cluster.Cluster, s *inflight) {
	eng, h := RunCluster(context.Background(), a.Prog, a.CallGraph, a.Steens, c, a.Andersen, a.cfg)
	a.mu.Lock()
	if eng != nil {
		a.engines[id] = eng
	} else {
		// Permanently demoted: deselect so neither this path nor the
		// classic lazy getEngine path can resurrect the engine.
		delete(a.selected, id)
	}
	a.queryHealth[id] = h
	delete(a.solving, id)
	a.mu.Unlock()
	s.eng, s.health = eng, h
	close(s.done)
}

// ClusterSolved reports whether a query touching cluster id would be
// answered without triggering a solve: the engine already exists (solved
// or imported), or the cluster was demoted or never selected (fallback
// answers are free). A server uses this to route warm queries around its
// admission queue.
func (a *Analysis) ClusterSolved(id int) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.engines[id]; ok {
		return true
	}
	_, selected := a.selected[id]
	return !selected
}

// MayAliasNeedsSolve reports whether MayAliasContext(p, q) could
// trigger a cluster solve. Pairs answered structurally — identical,
// partition-disjoint, or outside every analyzed cluster — never touch
// an engine, so a server must route them around cold admission even
// when p's clusters are still unsolved.
func (a *Analysis) MayAliasNeedsSolve(p, q ir.VarID) bool {
	if p == q || !a.Steens.SamePartition(p, q) {
		return false
	}
	for _, id := range a.byPointer[p] {
		if !a.ClusterSolved(id) {
			return true
		}
	}
	return false
}

// PointsToNeedsSolve reports whether PointsToContext(p) could trigger
// a cluster solve — the admission-routing counterpart of
// MayAliasNeedsSolve.
func (a *Analysis) PointsToNeedsSolve(p ir.VarID) bool {
	for _, id := range a.byPointer[p] {
		if !a.ClusterSolved(id) {
			return true
		}
	}
	return false
}

// QueryHealth returns the health records of the clusters solved at query
// time (EnsureCluster), sorted by cluster ID — the lazy-mode counterpart
// of Analysis.Health.
func (a *Analysis) QueryHealth() []ClusterHealth {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]ClusterHealth, 0, len(a.queryHealth))
	for id, h := range a.queryHealth {
		h.ClusterID = id
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ClusterID < out[j].ClusterID })
	return out
}

// SolveStats summarizes engine state for dashboards: how many clusters
// currently hold a solved (or cache-imported) engine, and how many were
// demoted to the fallback — by the eager scheduler or at query time.
func (a *Analysis) SolveStats() (solved, demoted int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	solved = len(a.engines)
	for _, h := range a.queryHealth {
		if h.Demoted {
			demoted++
		}
	}
	for _, h := range a.Health {
		if h.Demoted {
			demoted++
		}
	}
	return solved, demoted
}

// CoveredPointers returns, sorted, every pointer that belongs to at
// least one analyzed cluster — the population for which flow-sensitive
// answers exist (or can be solved on demand). Queries on other variables
// answer from the flow-insensitive fallback.
func (a *Analysis) CoveredPointers() []ir.VarID {
	out := make([]ir.VarID, 0, len(a.byPointer))
	for p := range a.byPointer {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MayAliasContext is the context-first MayAlias: cluster membership is
// resolved once (per Theorems 6 and 7 the clusters containing p
// suffice), cold clusters solve on first touch through EnsureCluster,
// and a deadline expiring mid-solve degrades the answer to the
// flow-insensitive fallback instead of blocking.
//
// precise is false when the fallback had to stand in for a cluster that
// was demoted or still solving when ctx expired: the answer is then
// Andersen-precision (sound for may-alias, possibly wider than the FSCS
// answer). It is true when every cluster of p was consulted at full
// precision.
func (a *Analysis) MayAliasContext(ctx context.Context, p, q ir.VarID, loc ir.Loc) (aliased, precise bool) {
	if p == q {
		return true, true
	}
	if !a.Steens.SamePartition(p, q) {
		return false, true // disjoint cover: cannot alias
	}
	ids := a.byPointer[p]
	if len(ids) == 0 {
		// p was never selected: the flow-insensitive answer is this
		// configuration's full-precision answer for p.
		return a.Andersen.MayAlias(p, q), true
	}
	complete := true // every cluster consulted at full precision
	covered := false // some consulted cluster contains both p and q
	for _, id := range ids {
		eng, _, final := a.EnsureCluster(ctx, id)
		if !final || eng == nil {
			complete = false
			continue
		}
		a.mu.Lock()
		has := eng.Cluster().HasPointer(q)
		may := has && eng.MayAlias(p, q, loc)
		a.mu.Unlock()
		if may {
			return true, true
		}
		covered = covered || has
	}
	if complete {
		if covered {
			return false, true
		}
		// No analyzed cluster contains both: under the disjunctive cover
		// they share no Andersen object unless the fallback says so.
		return a.Andersen.MayAlias(p, q), true
	}
	// Some cluster degraded or ran past the deadline: widen soundly.
	return a.Andersen.MayAlias(p, q), false
}

// MustAliasContext is the context-first MustAlias: p and q must alias at
// loc when some analyzed cluster containing both proves it. Cold clusters
// solve on first touch through EnsureCluster. precise is false when a
// cluster of p was demoted or still solving at the deadline — must-alias
// facts cannot be recovered from the flow-insensitive fallback, so the
// answer is then a sound "false" (never a spurious must).
func (a *Analysis) MustAliasContext(ctx context.Context, p, q ir.VarID, loc ir.Loc) (must, precise bool) {
	if p == q {
		return true, true
	}
	precise = true
	for _, id := range a.byPointer[p] {
		eng, _, final := a.EnsureCluster(ctx, id)
		if !final || eng == nil {
			precise = false
			continue
		}
		a.mu.Lock()
		ok := eng.Cluster().HasPointer(q) && eng.MustAlias(p, q, loc)
		a.mu.Unlock()
		if ok {
			return true, precise
		}
	}
	return false, precise
}

// DerefStateContext is the context-first DerefState: what a dereference
// of p at loc may observe — the referable objects, whether some path
// arrives with p null or uninitialized, and whether the answer is
// precise. Cold clusters solve on first touch; a cluster demoted or
// still solving at the deadline clears precise (the flags stay sound for
// the clusters that did answer). Pointers outside every analyzed cluster
// fall back to the flow-insensitive set with precise=false and unknown
// flags cleared, mirroring the classic DerefState.
func (a *Analysis) DerefStateContext(ctx context.Context, p ir.VarID, loc ir.Loc) (objs []ir.VarID, mayNull, mayUninit, precise bool) {
	set := map[ir.VarID]bool{}
	precise = true
	found := false
	for _, id := range a.byPointer[p] {
		eng, _, final := a.EnsureCluster(ctx, id)
		if !final || eng == nil {
			precise = false
			continue
		}
		found = true
		a.mu.Lock()
		st := eng.ValueState(p, loc)
		a.mu.Unlock()
		precise = precise && !st.Unknown
		mayNull = mayNull || st.Null
		mayUninit = mayUninit || st.Uninit
		for _, o := range st.Objs {
			set[o] = true
		}
	}
	if !found {
		a.mu.Lock()
		objs, _ = a.PointsToLockedFallback(p)
		a.mu.Unlock()
		return objs, false, false, false
	}
	objs = make([]ir.VarID, 0, len(set))
	for o := range set {
		objs = append(objs, o)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
	return objs, mayNull, mayUninit, precise
}

// PointsToContext is the context-first PointsTo: the union of p's
// per-cluster value sets at loc, solving cold clusters on first touch.
// precise is false when any contributing engine lost precision, when a
// cluster was demoted or out-deadlined (the flow-insensitive set is then
// merged in, keeping the answer sound), or when p is outside every
// analyzed cluster.
func (a *Analysis) PointsToContext(ctx context.Context, p ir.VarID, loc ir.Loc) ([]ir.VarID, bool) {
	ids := a.byPointer[p]
	set := map[ir.VarID]bool{}
	precise := true
	found := false
	for _, id := range ids {
		eng, _, final := a.EnsureCluster(ctx, id)
		if !final || eng == nil {
			precise = false
			continue
		}
		found = true
		a.mu.Lock()
		objs, ok := eng.Values(p, loc)
		a.mu.Unlock()
		precise = precise && ok
		for _, o := range objs {
			set[o] = true
		}
	}
	if !found || !precise {
		// Sound widening: fold in the flow-insensitive set.
		a.Andersen.PointsToSet(p).ForEach(func(o int) bool {
			set[ir.VarID(o)] = true
			return true
		})
		precise = false
	}
	out := make([]ir.VarID, 0, len(set))
	for o := range set {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, precise
}
