package serve

// POST /edit: incremental streaming mode. An edit batch mutates the live
// program in place — statement replaced/deleted/inserted, variable added
// — and the server re-solves only the clusters the batch dirties
// (core.ApplyEdit), publishing the result as a new snapshot exactly like
// /reload does: atomically, all-or-nothing, with in-flight queries
// draining on the snapshot they pinned.
//
// Concurrent edits coalesce: every request queues its resolved batch,
// and whichever request first takes the reload lock becomes the leader —
// it drains the whole queue, applies the batches in arrival order
// (chained ApplyEdit calls), and publishes ONE snapshot that includes
// them all. Followers just wait; their responses report their own
// batch's incremental stats plus coalesced:true. Edit addressing
// survives the chain because the IR is id-stable under edits: locations
// are tombstoned, never renumbered, and variable ids only grow.

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"bootstrap/internal/core"
	"bootstrap/internal/ir"
)

// editWaiter is one queued edit batch and its eventual outcome.
type editWaiter struct {
	edits []ir.Edit
	ddl   time.Duration

	done      chan struct{}
	resp      EditResponse
	dirtyIDs  []int // the batch's dirty clusters, in its generation's ids
	err       error
	errStatus int
}

// handleEdit decodes, resolves and enqueues one edit batch, then pumps
// the queue (becoming leader if no other request holds the reload lock)
// and reports this batch's outcome.
func (s *Server) handleEdit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "draining"})
		return
	}
	sn := s.snap.Load()
	if sn == nil {
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "no program loaded"})
		return
	}
	var req EditRequest
	if err := decodeBody(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	if len(req.Edits) == 0 {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "empty edit batch"})
		return
	}
	// Resolution runs against the pinned snapshot; ids stay valid even if
	// a coalescing leader applies other batches first (id-stable IR).
	edits, err := resolveEdits(sn.Prog, req.Edits)
	if err != nil {
		s.mEditFail.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	ddl := s.cfg.EditTimeout
	if req.TimeoutMS > 0 {
		if o := time.Duration(req.TimeoutMS) * time.Millisecond; o < ddl {
			ddl = o
		}
	}
	wtr := &editWaiter{edits: edits, ddl: ddl, done: make(chan struct{})}
	s.editMu.Lock()
	s.editQ = append(s.editQ, wtr)
	s.editMu.Unlock()
	s.pumpEdits()
	<-wtr.done
	if wtr.err != nil {
		s.mEditFail.Add(1)
		writeJSON(w, wtr.errStatus, ErrorResponse{Error: wtr.err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, wtr.resp)
}

// pumpEdits drains the edit queue under the reload lock. Exactly one
// caller at a time gets the lock (the leader); by the time a blocked
// caller acquires it, its own batch may already be done — the drain loop
// then finds an empty queue and returns immediately.
func (s *Server) pumpEdits() {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	for {
		s.editMu.Lock()
		q := s.editQ
		s.editQ = nil
		s.editMu.Unlock()
		if len(q) == 0 {
			return
		}
		s.processEdits(q)
	}
}

// processEdits applies the queued batches in arrival order against the
// current snapshot and publishes one successor snapshot for the whole
// group. Caller holds reloadMu.
func (s *Server) processEdits(q []*editWaiter) {
	old := s.snap.Load()
	a := old.A
	applied := 0
	coalesced := len(q) > 1
	for _, wtr := range q {
		start := time.Now()
		ctx, cancel := context.WithTimeout(context.Background(), wtr.ddl)
		a2, rep, err := core.ApplyEditContext(ctx, a, wtr.edits)
		cancel()
		if err != nil {
			// A bad batch rejects alone; earlier batches in the group (and
			// the analysis chain) are unaffected.
			wtr.err = fmt.Errorf("edit rejected: %w", err)
			wtr.errStatus = http.StatusUnprocessableEntity
			close(wtr.done)
			continue
		}
		s.invalidateQueries(a2, rep)
		a = a2
		applied++
		wtr.dirtyIDs = rep.DirtyIDs
		wtr.resp = EditResponse{
			Applied:   len(wtr.edits),
			Coalesced: coalesced,
			Clusters:  rep.Clusters,
			Dirty:     rep.Dirty,
			Reused:    rep.Reused,
			Resolved:  rep.Resolved,
			FellBack:  rep.FellBack,
			Reason:    rep.Reason,
			ElapsedUS: time.Since(start).Microseconds(),
		}
		s.mEdits.Add(1)
		if coalesced {
			s.mCoalesced.Add(1)
		}
		if rep.FellBack {
			s.mEditFellTo.Add(1)
		}
		s.hEdit.Observe(time.Since(start).Seconds())
	}
	if applied == 0 {
		return // every batch was rejected; old snapshot keeps serving
	}
	sn := &Snapshot{
		ID:        old.ID + 1,
		Desc:      old.Desc,
		Prog:      a.Prog,
		A:         a,
		lockDone:  make(chan struct{}),
		checkRuns: map[string]*checkRun{},
	}
	s.snap.Store(sn)
	s.mReloads.Add(1)
	for _, wtr := range q {
		if wtr.err != nil {
			continue // already closed
		}
		wtr.resp.Snapshot = sn.ID
		close(wtr.done)
	}
	// Stream the outcome: one snapshot event for the group, then the
	// final generation's dirty clusters with their re-solve status.
	var lastResp EditResponse
	var lastDirty []int
	for i := len(q) - 1; i >= 0; i-- {
		if q[i].err == nil {
			lastResp = q[i].resp
			lastDirty = q[i].dirtyIDs
			break
		}
	}
	s.publishEvent(StreamEvent{
		Type:     "snapshot",
		Snapshot: sn.ID,
		Clusters: lastResp.Clusters,
		Dirty:    lastResp.Dirty,
		Reused:   lastResp.Reused,
		FellBack: lastResp.FellBack,
	})
	s.publishClusterEvents(sn, lastDirty)
}

// editStreamClusterCap bounds per-edit cluster events: they are a
// progress signal, not a dump.
const editStreamClusterCap = 256

// publishClusterEvents emits one event per dirty cluster of the newest
// generation, with its solve status under the published snapshot
// ("resolved" for eagerly re-solved clusters, "pending" for lazy ones
// that re-solve on first query).
func (s *Server) publishClusterEvents(sn *Snapshot, dirty []int) {
	if len(dirty) > editStreamClusterCap {
		dirty = dirty[:editStreamClusterCap]
	}
	for _, id := range dirty {
		status := "pending"
		if sn.A.ClusterSolved(id) {
			status = "resolved"
		}
		s.publishEvent(StreamEvent{
			Type: "cluster", Snapshot: sn.ID, Cluster: id, Status: status,
		})
	}
}

// resolveEdits maps the request's symbolic edit specs to ir.Edits in the
// program's id space.
func resolveEdits(prog *ir.Program, specs []EditSpec) ([]ir.Edit, error) {
	edits := make([]ir.Edit, 0, len(specs))
	for i, sp := range specs {
		e, err := resolveEdit(prog, sp)
		if err != nil {
			return nil, fmt.Errorf("edit %d: %w", i, err)
		}
		edits = append(edits, e)
	}
	return edits, nil
}

func resolveEdit(prog *ir.Program, sp EditSpec) (ir.Edit, error) {
	switch sp.Action {
	case "replace", "insert":
		st, err := resolveStmt(prog, sp)
		if err != nil {
			return ir.Edit{}, err
		}
		kind := ir.EditReplaceStmt
		if sp.Action == "insert" {
			kind = ir.EditInsertAfter
		}
		return ir.Edit{Kind: kind, Loc: ir.Loc(sp.Loc), Stmt: st}, nil
	case "delete":
		return ir.Edit{Kind: ir.EditDeleteStmt, Loc: ir.Loc(sp.Loc)}, nil
	case "addvar":
		if sp.Name == "" {
			return ir.Edit{}, fmt.Errorf("addvar: missing name")
		}
		e := ir.Edit{Kind: ir.EditAddVar, Name: sp.Name, Var: ir.KindGlobal, Fn: ir.NoFunc}
		if sp.Kind == "local" {
			fid, ok := prog.FuncByName[sp.Fn]
			if !ok {
				return ir.Edit{}, fmt.Errorf("addvar %q: unknown function %q", sp.Name, sp.Fn)
			}
			e.Var, e.Fn = ir.KindLocal, fid
		}
		return e, nil
	default:
		return ir.Edit{}, fmt.Errorf("unknown action %q", sp.Action)
	}
}

var specOps = map[string]ir.Op{
	"copy":       ir.OpCopy,
	"addr":       ir.OpAddr,
	"load":       ir.OpLoad,
	"store":      ir.OpStore,
	"nullify":    ir.OpNullify,
	"assume_eq":  ir.OpAssumeEq,
	"assume_neq": ir.OpAssumeNeq,
}

func resolveStmt(prog *ir.Program, sp EditSpec) (ir.Stmt, error) {
	op, ok := specOps[sp.Op]
	if !ok {
		return ir.Stmt{}, fmt.Errorf("unknown op %q", sp.Op)
	}
	st := ir.Stmt{Op: op, Dst: ir.NoVar, Src: ir.NoVar, Callee: ir.NoFunc, FPtr: ir.NoVar}
	dst, ok := prog.VarByName[sp.Dst]
	if !ok {
		return ir.Stmt{}, fmt.Errorf("unknown variable %q", sp.Dst)
	}
	st.Dst = dst
	if op != ir.OpNullify {
		src, ok := prog.VarByName[sp.Src]
		if !ok {
			return ir.Stmt{}, fmt.Errorf("unknown variable %q", sp.Src)
		}
		st.Src = src
	}
	return st, nil
}
