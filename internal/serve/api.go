package serve

import (
	"encoding/json"
	"net/http"
)

// QueryRequest is the body of POST /v1/mayalias and POST /v1/pointsto.
type QueryRequest struct {
	// P is the queried pointer's variable name (required).
	P string `json:"p"`
	// Q is the second pointer of a may-alias query.
	Q string `json:"q,omitempty"`
	// At names the function whose exit is the query location; empty
	// means the program's entry function.
	At string `json:"at,omitempty"`
	// TimeoutMS overrides the server's per-query deadline, capped by it.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// QueryResponse is the body of a successful alias query.
type QueryResponse struct {
	MayAlias *bool    `json:"may_alias,omitempty"`
	PointsTo []string `json:"points_to,omitempty"`
	Precise  *bool    `json:"precise,omitempty"` // points-to only: every engine precise
	// Degraded marks an answer served at Andersen precision because a
	// cluster was still solving at the deadline, was demoted by the
	// degradation ladder, or the query could not get a solve slot in
	// time. Degraded answers are still sound for may-alias.
	Degraded bool `json:"degraded"`
	// Warm reports the query bypassed the admission queue: every cluster
	// it touches was already solved (or permanently demoted).
	Warm bool `json:"warm"`
	// Snapshot identifies the program snapshot that produced the whole
	// answer; it changes only on a successful /reload.
	Snapshot  int64 `json:"snapshot"`
	ElapsedUS int64 `json:"elapsed_us"`
}

// ErrorResponse is the body of every non-200 response.
type ErrorResponse struct {
	Error string `json:"error"`
	// RetryAfterMS accompanies 429 responses (the header carries the
	// same value in seconds).
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// ReloadRequest is the body of POST /reload. Source, when non-empty, is
// the new program's CPL text. Otherwise the server's regenerator (the
// -synth workload or the original program file) rebuilds the source,
// with Variant salting synthetic workloads so successive reloads really
// change the program.
type ReloadRequest struct {
	Source  string `json:"source,omitempty"`
	Variant int    `json:"variant,omitempty"`
}

// ReloadResponse reports a successful snapshot swap.
type ReloadResponse struct {
	Snapshot  int64  `json:"snapshot"`
	Desc      string `json:"desc"`
	Vars      int    `json:"vars"`
	Clusters  int    `json:"clusters"`
	ElapsedUS int64  `json:"elapsed_us"`
}

// InfoResponse is the body of GET /v1/info.
type InfoResponse struct {
	Snapshot    int64  `json:"snapshot"`
	Desc        string `json:"desc"`
	Vars        int    `json:"vars"`
	Funcs       int    `json:"funcs"`
	Clusters    int    `json:"clusters"`
	Solved      int    `json:"solved"`
	Demoted     int    `json:"demoted"`
	Draining    bool   `json:"draining"`
	ChaosArmed  bool   `json:"chaos_armed"`
	QueueDepth  int    `json:"queue_depth"`
	MaxSolves   int    `json:"max_solves"`
	QueryTimeMS int64  `json:"query_timeout_ms"`
}

// VarsResponse is the body of GET /v1/vars: the query population a load
// driver samples from.
type VarsResponse struct {
	Snapshot int64    `json:"snapshot"`
	Funcs    []string `json:"funcs"`
	Pointers []string `json:"pointers"`
	// Partitions groups covered pointers by Steensgaard partition (size
	// >= 2 only, capped): pairs drawn inside a group can actually alias,
	// pairs across groups never do.
	Partitions [][]string `json:"partitions,omitempty"`
}

// LocksetResponse is the body of POST /v1/lockset. When the detector is
// still running at the query's deadline, Ready is false and the caller
// should retry; the computation continues server-side and is shared by
// all callers of the same snapshot.
type LocksetResponse struct {
	Ready        bool     `json:"ready"`
	Threads      int      `json:"threads,omitempty"`
	Accesses     int      `json:"accesses,omitempty"`
	Races        []string `json:"races,omitempty"`
	Snapshot     int64    `json:"snapshot"`
	RetryAfterMS int64    `json:"retry_after_ms,omitempty"`
}

// CheckRequest is the body of POST /check (and /v1/check): run one
// named static-analysis pass against the live snapshot.
type CheckRequest struct {
	// Pass names the checker pass: lockset, deadlock, nullcheck or uaf.
	Pass string `json:"pass"`
	// TimeoutMS overrides the server's per-query deadline, capped by it.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// CheckFinding is one diagnostic of a served check, mirroring the batch
// checker's output: the fingerprint matches aliaslint's for the same
// source, and Snapshot stamps which live snapshot produced it.
type CheckFinding struct {
	Rule        string `json:"rule"`
	Severity    string `json:"severity"`
	Loc         int64  `json:"loc"`
	Func        string `json:"func"`
	Message     string `json:"message"`
	Fingerprint string `json:"fingerprint"`
	Snapshot    int64  `json:"snapshot"`
}

// CheckResponse is the body of POST /check. Like /v1/lockset the pass
// runs once per (snapshot, pass) pair; a request whose deadline fires
// first gets ready=false and a retry hint while the run continues
// server-side.
type CheckResponse struct {
	Ready bool   `json:"ready"`
	Pass  string `json:"pass"`
	// Incomplete reports the pass degraded mid-run (deadline expired):
	// findings may be missing, never spurious.
	Incomplete   bool           `json:"incomplete,omitempty"`
	Findings     []CheckFinding `json:"findings,omitempty"`
	Snapshot     int64          `json:"snapshot"`
	RetryAfterMS int64          `json:"retry_after_ms,omitempty"`
}

// EditSpec is one program edit of POST /edit, addressed symbolically:
// statement locations are the stable Loc values the program keeps across
// edits (tombstoning, never renumbering), variables and functions go by
// name.
type EditSpec struct {
	// Action selects the edit: "replace" or "insert" (statement payload
	// from Op/Dst/Src), "delete" (Loc only), or "addvar" (Name, Kind and,
	// for locals, Fn).
	Action string `json:"action"`
	// Loc is the edited statement ("replace"/"delete") or the insertion
	// anchor ("insert": the new statement is spliced after it).
	Loc int64 `json:"loc,omitempty"`
	// Op names the replacement/inserted statement's operator: copy, addr,
	// load, store, nullify, assume_eq or assume_neq.
	Op  string `json:"op,omitempty"`
	Dst string `json:"dst,omitempty"`
	Src string `json:"src,omitempty"`
	// Name/Kind/Fn describe an "addvar" edit (Kind "global" or "local";
	// local variables require Fn).
	Name string `json:"name,omitempty"`
	Kind string `json:"kind,omitempty"`
	Fn   string `json:"fn,omitempty"`
}

// EditRequest is the body of POST /edit: a batch of edits applied
// atomically to the live snapshot. Concurrent requests are coalesced —
// one leader applies every queued batch in arrival order and publishes a
// single new snapshot; every caller's response still reports its own
// batch.
type EditRequest struct {
	Edits []EditSpec `json:"edits"`
	// TimeoutMS lowers the server's per-edit deadline (never raises it).
	// On expiry, affected clusters degrade through the analysis' retry
	// ladder; the edit itself still lands.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// EditResponse reports one applied edit batch.
type EditResponse struct {
	// Snapshot is the snapshot id that first includes this batch.
	Snapshot int64 `json:"snapshot"`
	// Applied counts the batch's edits.
	Applied int `json:"applied"`
	// Coalesced reports the batch was processed together with other
	// concurrently submitted batches (they share the published snapshot).
	Coalesced bool `json:"coalesced"`
	// Clusters/Dirty/Reused/Resolved summarize the incremental re-solve:
	// cover size, invalidated clusters, clusters carried over verbatim,
	// and dirty clusters eagerly re-solved.
	Clusters int `json:"clusters"`
	Dirty    int `json:"dirty"`
	Reused   int `json:"reused"`
	Resolved int `json:"resolved"`
	// FellBack reports the batch could not be mapped incrementally (e.g.
	// it changed a function signature or the cluster cover) and a full
	// warm reanalysis ran instead; Reason says why.
	FellBack  bool   `json:"fell_back,omitempty"`
	Reason    string `json:"reason,omitempty"`
	ElapsedUS int64  `json:"elapsed_us"`
}

// StreamEvent is one GET /subscribe server-sent event (the JSON `data:`
// payload; the SSE `event:` field repeats Type).
type StreamEvent struct {
	// Type is "snapshot" (a new snapshot was published), "cluster" (one
	// cluster's incremental status under that snapshot) or "invalidate"
	// (a previously answered query may answer differently now).
	Type     string `json:"type"`
	Snapshot int64  `json:"snapshot"`

	// snapshot events.
	Clusters int  `json:"clusters,omitempty"`
	Dirty    int  `json:"dirty,omitempty"`
	Reused   int  `json:"reused,omitempty"`
	FellBack bool `json:"fell_back,omitempty"`
	Reloaded bool `json:"reloaded,omitempty"` // full /reload, not an edit

	// cluster events: the cluster id and "resolved" or "pending" (lazy
	// clusters re-solve on first query).
	Cluster int    `json:"cluster,omitempty"`
	Status  string `json:"status,omitempty"`

	// invalidate events: the query key whose cached answer is stale.
	Kind string `json:"kind,omitempty"`
	P    string `json:"p,omitempty"`
	Q    string `json:"q,omitempty"`
	At   string `json:"at,omitempty"`
}

// ChaosRequest arms (or, all-zero, disarms) the server's fault
// injection. Only served when the daemon was started with chaos enabled.
type ChaosRequest struct {
	// LatencyEvery/LatencyMS: every nth admitted query sleeps LatencyMS
	// (bounded by the query's own deadline).
	LatencyEvery int `json:"latency_every,omitempty"`
	LatencyMS    int `json:"latency_ms,omitempty"`
	// SolveFaultEvery/SolveFaultKind: every nth cluster-solve attempt
	// receives a fault of the given kind (budget, panic or slow).
	SolveFaultEvery int    `json:"solve_fault_every,omitempty"`
	SolveFaultKind  string `json:"solve_fault_kind,omitempty"`
	SolveSlowMS     int    `json:"solve_slow_ms,omitempty"`
	// FaultAttempts bounds how many ladder attempts per cluster the
	// fault fires on (0 = every attempt, so the cluster demotes).
	FaultAttempts int `json:"fault_attempts,omitempty"`
	// ReloadPauseMS widens the window between analyzing a reloaded
	// program and swapping it in — the torn-snapshot race amplifier.
	ReloadPauseMS int `json:"reload_pause_ms,omitempty"`
}

// ChaosResponse echoes the armed state.
type ChaosResponse struct {
	Armed bool `json:"armed"`
}

// writeJSON writes one JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
