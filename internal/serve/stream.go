package serve

// GET /subscribe: live server-sent events. Subscribers get a "snapshot"
// event whenever a new snapshot is published (edit or reload), "cluster"
// events for the clusters an edit dirtied, and "invalidate" events for
// recently answered queries whose answer the edit may have changed —
// the signal an IDE or cache layer needs to re-ask only what moved.
//
// Invalidation is computed, not guessed: the server keeps a bounded ring
// of recently answered query keys; after an incremental edit, a recorded
// query is invalidated exactly when one of its pointer's clusters in the
// new cover was dirtied (reused clusters are fingerprint-identical, so
// their answers provably did not change). A full reload — or an edit
// that fell back to full reanalysis — invalidates the whole ring.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"bootstrap/internal/core"
)

// subscriber is one live /subscribe connection. Events are delivered
// best-effort: a subscriber that cannot keep up has events dropped, not
// buffered without bound (the stream is a change signal, not a journal).
type subscriber struct {
	ch chan StreamEvent
}

const subscriberBuffer = 256

// publishEvent fans one event out to every live subscriber.
func (s *Server) publishEvent(ev StreamEvent) {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	for sub := range s.subs {
		select {
		case sub.ch <- ev:
		default: // slow consumer: drop
		}
	}
}

// handleSubscribe serves the SSE stream until the client disconnects or
// the server drains.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	sub := &subscriber{ch: make(chan StreamEvent, subscriberBuffer)}
	s.subMu.Lock()
	s.subs[sub] = struct{}{}
	s.subMu.Unlock()
	defer func() {
		s.subMu.Lock()
		delete(s.subs, sub)
		s.subMu.Unlock()
	}()

	// Opening event: the currently serving snapshot, so a subscriber can
	// anchor before the first change arrives.
	if sn := s.snap.Load(); sn != nil {
		writeSSE(w, StreamEvent{Type: "snapshot", Snapshot: sn.ID, Clusters: len(sn.A.Clusters)})
	}
	fl.Flush()

	ping := time.NewTicker(15 * time.Second)
	defer ping.Stop()
	for {
		select {
		case ev := <-sub.ch:
			writeSSE(w, ev)
			fl.Flush()
		case <-ping.C:
			if s.draining.Load() {
				return
			}
			fmt.Fprint(w, ": ping\n\n")
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func writeSSE(w http.ResponseWriter, ev StreamEvent) {
	data, _ := json.Marshal(ev)
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
}

// ringCap bounds the recent-query ring invalidation scans over.
const ringCap = 512

// ringEntry is one recently answered query key, tagged with the
// snapshot that answered it.
type ringEntry struct {
	snap int64
	kind string
	p, q string
	at   string
}

// queryRing is a bounded ring of recently answered queries.
type queryRing struct {
	mu      sync.Mutex
	entries [ringCap]ringEntry
	n       int // total appended (next slot = n % ringCap)
}

func (qr *queryRing) add(e ringEntry) {
	qr.mu.Lock()
	qr.entries[qr.n%ringCap] = e
	qr.n++
	qr.mu.Unlock()
}

// sweep visits every live entry; the visitor returns the entry's
// replacement, or nil to drop it.
func (qr *queryRing) sweep(visit func(ringEntry) *ringEntry) {
	qr.mu.Lock()
	defer qr.mu.Unlock()
	live := qr.n
	if live > ringCap {
		live = ringCap
	}
	for i := 0; i < live; i++ {
		e := qr.entries[i]
		if e.kind == "" {
			continue
		}
		if r := visit(e); r != nil {
			qr.entries[i] = *r
		} else {
			qr.entries[i] = ringEntry{}
		}
	}
}

// recordQuery remembers one answered query for later invalidation.
func (s *Server) recordQuery(snap int64, kind queryKind, p, q, at string) {
	s.ring.add(ringEntry{snap: snap, kind: kind.String(), p: p, q: q, at: at})
}

// invalidateQueries sweeps the recent-query ring after one incremental
// edit generation: entries whose pointers only touch reused clusters are
// retagged to the successor snapshot (their answers are unchanged —
// reused clusters are fingerprint-identical); entries touching a dirty
// cluster, or predating a fallback reanalysis, are dropped and announced
// to subscribers.
func (s *Server) invalidateQueries(a2 *core.Analysis, rep *core.EditReport) {
	dirty := make(map[int]bool, len(rep.DirtyIDs))
	for _, id := range rep.DirtyIDs {
		dirty[id] = true
	}
	nextSnap := int64(0)
	if sn := s.snap.Load(); sn != nil {
		nextSnap = sn.ID + 1
	}
	s.ring.sweep(func(e ringEntry) *ringEntry {
		stale := rep.FellBack
		if !stale {
			for _, name := range []string{e.p, e.q} {
				if name == "" {
					continue
				}
				v, ok := a2.Prog.VarByName[name]
				if !ok {
					stale = true
					break
				}
				for _, id := range a2.ClustersOf(v) {
					if dirty[id] {
						stale = true
						break
					}
				}
				if stale {
					break
				}
			}
		}
		if !stale {
			e.snap = nextSnap
			return &e
		}
		s.mInvalidated.Add(1)
		s.publishEvent(StreamEvent{
			Type: "invalidate", Snapshot: nextSnap,
			Kind: e.kind, P: e.p, Q: e.q, At: e.at,
		})
		return nil
	})
}

// invalidateAllQueries drops the whole ring (full /reload: a different
// program answers from now on).
func (s *Server) invalidateAllQueries(nextSnap int64) {
	s.ring.sweep(func(e ringEntry) *ringEntry {
		s.mInvalidated.Add(1)
		s.publishEvent(StreamEvent{
			Type: "invalidate", Snapshot: nextSnap,
			Kind: e.kind, P: e.p, Q: e.q, At: e.at,
		})
		return nil
	})
}
