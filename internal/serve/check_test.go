package serve

import (
	"context"
	"net/http"
	"sort"
	"strings"
	"testing"
	"time"

	"bootstrap/internal/check"
	"bootstrap/internal/core"
	"bootstrap/internal/frontend"
	"bootstrap/internal/synth"
)

// TestCheckEndpoint: POST /check runs a pass against the live snapshot,
// stamps findings with the snapshot id, and produces exactly the batch
// checker's fingerprints for the same source.
func TestCheckEndpoint(t *testing.T) {
	src, bugs := synth.LockHeavy(synth.LockHeavyWorkloads()[0].Cfg)
	s := newTestServer(t, src, nil)

	served := map[string][]CheckFinding{}
	for _, pass := range []string{"lockset", "deadlock", "nullcheck", "uaf"} {
		var resp CheckResponse
		// The first request may out-deadline while footprint clusters
		// solve; retry until the memoized run lands.
		deadline := time.Now().Add(30 * time.Second)
		for {
			code := do(t, s, "POST", "/check", `{"pass":"`+pass+`"}`, &resp)
			if code != http.StatusOK {
				t.Fatalf("/check %s: status %d", pass, code)
			}
			if resp.Ready {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("/check %s: never became ready", pass)
			}
			time.Sleep(10 * time.Millisecond)
		}
		if resp.Pass != pass {
			t.Errorf("pass echo = %q, want %q", resp.Pass, pass)
		}
		if resp.Incomplete {
			t.Errorf("pass %s incomplete on a small snapshot", pass)
		}
		for _, f := range resp.Findings {
			if f.Snapshot != s.Snapshot().ID {
				t.Errorf("finding %s stamped with snapshot %d, want %d",
					f.Fingerprint, f.Snapshot, s.Snapshot().ID)
			}
		}
		served[pass] = resp.Findings
	}

	// Seeded-bug recall through the served surface.
	for _, bug := range bugs {
		foundBug := false
		for _, findings := range served {
			for _, f := range findings {
				if f.Rule == bug.Rule && strings.Contains(f.Message, bug.Var) {
					foundBug = true
				}
			}
		}
		if !foundBug {
			t.Errorf("seeded %s on %s not found via /check", bug.Rule, bug.Var)
		}
	}

	// Batch/served agreement: identical fingerprint sets.
	prog, err := frontend.LowerSource(src)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	passes := check.All()
	cfg := testConfig().Analysis
	cfg.Lazy = true
	cfg.Demand = check.DemandFor(prog, passes)
	a, err := core.AnalyzeProgram(prog, cfg)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	rep := check.Run(context.Background(), a, check.Options{Passes: passes})
	batch := rep.Fingerprints()
	var remote []string
	for _, findings := range served {
		for _, f := range findings {
			remote = append(remote, f.Fingerprint)
		}
	}
	sort.Strings(remote)
	if len(batch) != len(remote) {
		t.Fatalf("batch %d findings, served %d", len(batch), len(remote))
	}
	for i := range batch {
		if batch[i] != remote[i] {
			t.Errorf("fingerprint drift at %d: batch %s vs served %s", i, batch[i], remote[i])
		}
	}
}

// TestCheckUnknownPass: a bad pass name is a 400, not a 500.
func TestCheckUnknownPass(t *testing.T) {
	src, _ := synth.LockHeavy(synth.LockHeavyWorkloads()[0].Cfg)
	s := newTestServer(t, src, nil)
	if code := do(t, s, "POST", "/check", `{"pass":"nosuch"}`, nil); code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", code)
	}
}

// TestCheckNoSnapshot: /check before any Load is a 503.
func TestCheckNoSnapshot(t *testing.T) {
	s := newTestServer(t, "", nil)
	if code := do(t, s, "POST", "/check", `{"pass":"lockset"}`, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", code)
	}
}

// TestCheckMemoized: the second request for the same (snapshot, pass)
// reuses the finished run — it answers ready immediately even with a
// tiny deadline.
func TestCheckMemoized(t *testing.T) {
	src, _ := synth.LockHeavy(synth.LockHeavyWorkloads()[0].Cfg)
	s := newTestServer(t, src, nil)
	var first CheckResponse
	for {
		do(t, s, "POST", "/check", `{"pass":"uaf"}`, &first)
		if first.Ready {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	var second CheckResponse
	if code := do(t, s, "POST", "/check", `{"pass":"uaf","timeout_ms":1}`, &second); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !second.Ready {
		t.Fatal("memoized run should answer within 1ms")
	}
	if len(second.Findings) != len(first.Findings) {
		t.Fatalf("memoized findings drifted: %d vs %d", len(second.Findings), len(first.Findings))
	}
}
