package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"bootstrap/internal/check"
	"bootstrap/internal/core"
	"bootstrap/internal/frontend"
	"bootstrap/internal/ir"
	"bootstrap/internal/lockset"
)

// Snapshot is one immutable loaded program plus its (lazily solved)
// analysis. The server publishes snapshots through an atomic pointer;
// every request loads the pointer exactly once and works against that
// snapshot for its whole lifetime, so a concurrent reload can never hand
// a request half of one program and half of another. Old snapshots stay
// valid until their last in-flight query returns, then the collector
// reclaims them.
type Snapshot struct {
	// ID increases by one per successful load; it is echoed in every
	// response so clients (and the torn-snapshot chaos test) can tell
	// which program answered.
	ID   int64
	Desc string
	Prog *ir.Program
	A    *core.Analysis

	// Lockset results are snapshot-scoped and computed at most once, by
	// whichever request arrives first; later requests (and requests that
	// time out waiting) share the same computation.
	lockOnce sync.Once
	lockDone chan struct{}
	lockRes  *locksetResult

	// Checker runs are snapshot-scoped and memoized per pass name, with
	// the same compute-once/share semantics as the lockset result.
	checkMu   sync.Mutex
	checkRuns map[string]*checkRun
}

// checkRun is one memoized (snapshot, pass) checker execution.
type checkRun struct {
	done chan struct{}
	rep  *check.Report
}

type locksetResult struct {
	threads  int
	accesses int
	races    []string
}

// buildSnapshot parses, lowers and analyzes src in the server's lazy
// configuration. Any error — parse, lowering, validation, analysis —
// leaves the server's current snapshot untouched.
func (s *Server) buildSnapshot(ctx context.Context, id int64, desc, src string) (*Snapshot, error) {
	prog, err := frontend.LowerSource(src)
	if err != nil {
		return nil, fmt.Errorf("load %q: %w", desc, err)
	}
	a, err := core.AnalyzeProgramContext(ctx, prog, s.acfg)
	if err != nil {
		return nil, fmt.Errorf("analyze %q: %w", desc, err)
	}
	return &Snapshot{
		ID:        id,
		Desc:      desc,
		Prog:      prog,
		A:         a,
		lockDone:  make(chan struct{}),
		checkRuns: map[string]*checkRun{},
	}, nil
}

// Load analyzes src and publishes it as the first snapshot. It is the
// boot-time counterpart of Reload (no old snapshot to protect).
func (s *Server) Load(ctx context.Context, desc, src string) (*Snapshot, error) {
	return s.swap(ctx, desc, src)
}

// Reload analyzes src and, only on success, atomically swaps it in as
// the serving snapshot. In-flight queries keep answering from the
// snapshot they started on; queries that arrive after the swap see the
// new program. A failed reload is reported to the caller and leaves the
// old snapshot serving — reload is all-or-nothing.
//
// Reloads are serialized: concurrent calls run one at a time, each
// against the then-current snapshot ID.
func (s *Server) Reload(ctx context.Context, desc, src string) (*Snapshot, error) {
	sn, err := s.swap(ctx, desc, src)
	if err != nil {
		s.mReloadFail.Add(1)
		return nil, err
	}
	s.mReloads.Add(1)
	return sn, nil
}

func (s *Server) swap(ctx context.Context, desc, src string) (*Snapshot, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	var oldID int64
	if old := s.snap.Load(); old != nil {
		oldID = old.ID
	}
	sn, err := s.buildSnapshot(ctx, oldID+1, desc, src)
	if err != nil {
		return nil, err
	}
	// Chaos hook: widen the window between "new snapshot fully built"
	// and "new snapshot published". Queries running in this window must
	// still answer entirely from the old snapshot.
	if d := s.inj.ReloadPause(); d > 0 {
		time.Sleep(d)
	}
	s.snap.Store(sn)
	// A different program answers from here on: every remembered query
	// answer is stale, and subscribers need the new anchor.
	s.invalidateAllQueries(sn.ID)
	s.publishEvent(StreamEvent{
		Type: "snapshot", Snapshot: sn.ID,
		Clusters: len(sn.A.Clusters), Reloaded: true,
	})
	return sn, nil
}

// Lockset returns the snapshot's race-detection result, computing it on
// first demand. The computation pre-solves every cluster (bounded by the
// server's solve semaphore) and then runs the lockset detector; it
// continues even if ctx expires — the caller gets ready=false and
// retries while later callers reuse the finished result.
func (sn *Snapshot) Lockset(ctx context.Context, s *Server) (*locksetResult, bool) {
	sn.lockOnce.Do(func() {
		go sn.computeLockset(s)
	})
	select {
	case <-sn.lockDone:
		return sn.lockRes, true
	case <-ctx.Done():
		return nil, false
	}
}

func (sn *Snapshot) computeLockset(s *Server) {
	defer close(sn.lockDone)
	// Pre-solve the whole cover so the detector's PointsTo probes are
	// warm; each solve holds one solve-semaphore slot, sharing capacity
	// fairly with cold user queries.
	var wg sync.WaitGroup
	for _, c := range sn.A.Clusters {
		if sn.A.ClusterSolved(c.ID) {
			continue
		}
		wg.Add(1)
		s.solveSem <- struct{}{}
		go func(id int) {
			defer wg.Done()
			defer func() { <-s.solveSem }()
			sn.A.EnsureCluster(context.Background(), id)
		}(c.ID)
	}
	wg.Wait()

	det := lockset.NewDetector(sn.A, lockset.Config{})
	races, accesses := det.Detect()
	res := &locksetResult{
		threads:  len(det.Threads()),
		accesses: len(accesses),
	}
	for _, r := range races {
		res.races = append(res.races, r.Format(sn.Prog))
	}
	sn.lockRes = res
}

// CheckPass runs one named checker pass against this snapshot, at most
// once per (snapshot, pass): the first request starts the run, later
// requests share it, and a request whose ctx expires first gets
// ready=false while the run continues for future callers.
func (sn *Snapshot) CheckPass(ctx context.Context, s *Server, pass check.Pass) (*check.Report, bool) {
	sn.checkMu.Lock()
	run, ok := sn.checkRuns[pass.Name()]
	if !ok {
		run = &checkRun{done: make(chan struct{})}
		sn.checkRuns[pass.Name()] = run
		go sn.computeCheck(s, pass, run)
	}
	sn.checkMu.Unlock()
	select {
	case <-run.done:
		return run.rep, true
	case <-ctx.Done():
		return nil, false
	}
}

func (sn *Snapshot) computeCheck(s *Server, pass check.Pass, run *checkRun) {
	defer close(run.done)
	// Pre-solve only the pass's footprint clusters (demand-driven: lock
	// pointers for lockset/deadlock, dereferenced pointers for
	// nullcheck/uaf), each solve holding one solve-semaphore slot so
	// checker warmup shares capacity fairly with cold user queries.
	pred := pass.Footprint(sn.Prog)
	var wg sync.WaitGroup
	for _, c := range sn.A.Clusters {
		if sn.A.ClusterSolved(c.ID) {
			continue
		}
		needed := false
		for _, p := range c.Pointers {
			if pred(sn.Prog.Var(p)) {
				needed = true
				break
			}
		}
		if !needed {
			continue
		}
		wg.Add(1)
		s.solveSem <- struct{}{}
		go func(id int) {
			defer wg.Done()
			defer func() { <-s.solveSem }()
			sn.A.EnsureCluster(context.Background(), id)
		}(c.ID)
	}
	wg.Wait()

	run.rep = check.Run(context.Background(), sn.A, check.Options{
		Passes:   []check.Pass{pass},
		Source:   sn.Desc,
		Snapshot: sn.ID,
		Tracer:   s.cfg.Tracer,
		Metrics:  s.cfg.Metrics,
	})
}
